// Loadtest: a client load driver for the pllserved serving subsystem.
//
// It builds an index over a synthetic social network, serves it from an
// in-process internal/server instance (the same handlers cmd/pllserved
// mounts), then hammers it over real HTTP with concurrent workers:
// point queries on /distance, amortized single-source sweeps on /batch,
// and — halfway through the run — an atomic hot-reload of a freshly
// built index under full load, demonstrating that no request fails
// during the swap.
//
// Run with:
//
//	go run ./examples/loadtest [-workers 8] [-requests 2000] [-n 5000]
//
// Point it at an already-running server instead with -addr:
//
//	go run ./cmd/pllserved -index g.pllbox &
//	go run ./examples/loadtest -addr http://localhost:8355
//
// Saturation mode (-saturate) proves graceful degradation instead:
// the in-process server gets a concurrency cap of -cap, then 2×cap
// slow-client workers hammer it with amortized /batch sweeps whose
// uploads dribble in over a few milliseconds — the overload shape a
// concurrency cap exists for, where each admitted request holds its
// slot in wall-clock time. A healthy serving tier sheds the excess
// with immediate 429s (Retry-After set) while the admitted requests
// keep a bounded latency tail; the run reports p50/p99/p999 over
// admitted requests plus the shed rate and fails on any response that
// is neither 200 nor 429:
//
//	go run ./examples/loadtest -saturate [-cap 8] [-requests 4000]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pll/internal/gen"
	"pll/internal/rng"
	"pll/internal/server"
	"pll/pll"
)

func main() {
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	requests := flag.Int("requests", 2000, "total /distance requests")
	n := flag.Int("n", 5000, "vertices in the synthetic graph (in-process mode)")
	addr := flag.String("addr", "", "base URL of a running pllserved (empty starts one in-process)")
	saturate := flag.Bool("saturate", false, "saturation scenario: cap server concurrency at -cap, offer 2x that, report shed rate + tail latency")
	capInflight := flag.Int("cap", 8, "server concurrency cap for -saturate (in-process mode)")
	flag.Parse()

	cfg := server.Config{CacheSize: 4096}
	if *saturate {
		// No caching in saturation mode: every admitted request must pay
		// the real /batch scan, or the workload would not saturate.
		cfg = server.Config{MaxInflight: *capInflight}
	}
	base := *addr
	var srv *server.Server
	if base == "" {
		var err error
		base, srv, err = startInProcess(*n, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	numV := probeVertices(client, base)

	if *saturate {
		runSaturation(client, base, *capInflight, *requests, numV)
		return
	}
	fmt.Printf("target: %s (%d vertices), %d workers, %d requests\n",
		base, numV, *workers, *requests)

	// Phase 1: concurrent point queries, with one hot-reload fired
	// mid-flight when we own the server.
	var failures atomic.Int64
	latencies := make([][]time.Duration, *workers)
	var wg sync.WaitGroup
	perWorker := *requests / *workers
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.New(uint64(1000 + id))
			lat := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				s, t := r.Int31n(int32(numV)), r.Int31n(int32(numV))
				q := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", base, s, t))
				if err != nil {
					failures.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				lat = append(lat, time.Since(q))
			}
			latencies[id] = lat
		}(w)
	}
	if srv != nil {
		// Swap in a rebuilt index while every worker is mid-loop.
		go func() {
			time.Sleep(50 * time.Millisecond)
			if _, err := srv.Reload(indexPath); err != nil {
				log.Printf("hot-reload failed: %v", err)
			} else {
				fmt.Printf("hot-reloaded the index under load (generation %d)\n",
					srv.Oracle().Generation())
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	fmt.Printf("point queries: %d ok, %d failed in %v (%.0f req/s)\n",
		len(all), failures.Load(), elapsed.Round(time.Millisecond),
		float64(len(all))/elapsed.Seconds())
	if len(all) > 0 {
		fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v\n",
			pct(all, 50), pct(all, 95), pct(all, 99), all[len(all)-1])
	}

	// Phase 2: one amortized single-source batch covering 1000 targets.
	targets := make([]int32, 0, 1000)
	for i := 0; i < 1000 && i < numV; i++ {
		targets = append(targets, int32(i))
	}
	src := int32(0)
	body, _ := json.Marshal(map[string]any{"source": src, "targets": targets})
	q := time.Now()
	resp, err := client.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var batch struct {
		Count int `json:"count"`
	}
	json.NewDecoder(resp.Body).Decode(&batch)
	resp.Body.Close()
	fmt.Printf("batch: %d single-source distances in %v (%.2f us/pair amortized)\n",
		batch.Count, time.Since(q).Round(time.Microsecond),
		float64(time.Since(q).Microseconds())/float64(max(batch.Count, 1)))

	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// indexPath is where the in-process mode persists its index so the
// hot-reload demonstration has a file to re-read.
var indexPath string

// pause is an io.Reader that sleeps once, then reports EOF; stitched
// between two body halves with io.MultiReader it turns a request into
// a slow client whose upload dribbles in over the wire.
type pause struct {
	d    time.Duration
	done bool
}

func (p *pause) Read([]byte) (int, error) {
	if !p.done {
		time.Sleep(p.d)
		p.done = true
	}
	return 0, io.EOF
}

// runSaturation drives the server past its concurrency cap with the
// overload shape the cap exists for: slow clients. Each /batch upload
// arrives in two segments a few milliseconds apart, so the handler
// holds its concurrency slot in wall-clock time (blocked in the body
// read) rather than just a CPU burst — on a WAN that is every client.
// With offered concurrency at 2× the cap, the excess requests find no
// free slot and shed immediately with 429 + Retry-After, while the
// admitted requests keep a bounded latency near the uncontended
// service time. The run reports shed rate and p50/p99/p999 over
// admitted requests, and fails on any response that is neither 200
// nor a header-complete 429 — degradation must be graceful, never a
// collapse or a crash.
func runSaturation(client *http.Client, base string, capSlots, requests, numV int) {
	workers := 2 * capSlots
	perWorker := requests / workers
	targets := make([]int32, 0, 1000)
	for i := 0; i < 1000 && i < numV; i++ {
		targets = append(targets, int32(i))
	}
	const uploadStall = 2 * time.Millisecond
	fmt.Printf("saturation: concurrency cap %d, %d slow-client workers (2x cap), %d /batch requests of %d targets, %v upload stall\n",
		capSlots, workers, workers*perWorker, len(targets), uploadStall)

	var okLat []time.Duration
	var mu sync.Mutex
	var shed, failed, noRetryAfter atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.New(uint64(9000 + id))
			lat := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				src := r.Int31n(int32(numV))
				body, _ := json.Marshal(map[string]any{"source": src, "targets": targets})
				half := len(body) / 2
				req, err := http.NewRequest(http.MethodPost, base+"/batch", io.MultiReader(
					bytes.NewReader(body[:half]), &pause{d: uploadStall}, bytes.NewReader(body[half:])))
				if err != nil {
					failed.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				req.ContentLength = int64(len(body))
				q := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					continue
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					lat = append(lat, time.Since(q))
				case http.StatusTooManyRequests:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						noRetryAfter.Add(1)
					}
				default:
					failed.Add(1)
				}
			}
			mu.Lock()
			okLat = append(okLat, lat...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	total := len(okLat) + int(shed.Load()) + int(failed.Load())
	fmt.Printf("offered: %d requests in %v; admitted %d (%.0f req/s), shed %d (%.1f%%), failed %d\n",
		total, elapsed.Round(time.Millisecond), len(okLat),
		float64(len(okLat))/elapsed.Seconds(), shed.Load(),
		100*float64(shed.Load())/float64(max(total, 1)), failed.Load())
	if len(okLat) > 0 {
		fmt.Printf("admitted latency: p50=%v p99=%v p999=%v max=%v\n",
			pct(okLat, 50), pct(okLat, 99), pctN(okLat, 999, 1000), okLat[len(okLat)-1])
	}
	if n := noRetryAfter.Load(); n > 0 {
		fmt.Printf("FAIL: %d shed responses missing Retry-After\n", n)
		os.Exit(1)
	}
	if failed.Load() > 0 {
		fmt.Printf("FAIL: %d responses were neither 200 nor 429\n", failed.Load())
		os.Exit(1)
	}
	fmt.Println("saturation: graceful degradation confirmed (only 200s and header-complete 429s)")
}

// startInProcess builds a Barabasi-Albert index, writes it to a temp
// container file, and serves it on a loopback listener.
func startInProcess(n int, cfg server.Config) (string, *server.Server, error) {
	raw := gen.BarabasiAlbert(n, 4, 42)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		return "", nil, err
	}
	start := time.Now()
	ix, err := pll.Build(g, pll.WithBitParallel(16))
	if err != nil {
		return "", nil, err
	}
	fmt.Printf("built index over %d vertices in %v\n", n, time.Since(start).Round(time.Millisecond))

	dir, err := os.MkdirTemp("", "pll-loadtest")
	if err != nil {
		return "", nil, err
	}
	indexPath = filepath.Join(dir, "loadtest.pllbox")
	if err := pll.WriteFile(indexPath, ix); err != nil {
		return "", nil, err
	}

	cfg.IndexPath = indexPath
	srv := server.New(pll.NewConcurrentOracle(ix), cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go http.Serve(ln, srv.Handler())
	return "http://" + ln.Addr().String(), srv, nil
}

// probeVertices asks /healthz for the served vertex count.
func probeVertices(client *http.Client, base string) int {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		log.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Vertices int `json:"vertices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Vertices == 0 {
		log.Fatalf("healthz: bad response (err=%v)", err)
	}
	return h.Vertices
}

// pct returns the p-th percentile of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	return pctN(sorted, p, 100)
}

// pctN returns the (p/q)-quantile of sorted latencies (p999 = 999/1000).
func pctN(sorted []time.Duration, p, q int) time.Duration {
	i := len(sorted) * p / q
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
