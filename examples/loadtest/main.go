// Loadtest: a client load driver for the pllserved serving subsystem.
//
// It builds an index over a synthetic social network, serves it from an
// in-process internal/server instance (the same handlers cmd/pllserved
// mounts), then hammers it over real HTTP with concurrent workers:
// point queries on /distance, amortized single-source sweeps on /batch,
// and — halfway through the run — an atomic hot-reload of a freshly
// built index under full load, demonstrating that no request fails
// during the swap.
//
// Run with:
//
//	go run ./examples/loadtest [-workers 8] [-requests 2000] [-n 5000]
//
// Point it at an already-running server instead with -addr:
//
//	go run ./cmd/pllserved -index g.pllbox &
//	go run ./examples/loadtest -addr http://localhost:8355
//
// Saturation mode (-saturate) proves graceful degradation instead:
// the in-process server gets a concurrency cap of -cap, then 2×cap
// slow-client workers hammer it with amortized /batch sweeps whose
// uploads dribble in over a few milliseconds — the overload shape a
// concurrency cap exists for, where each admitted request holds its
// slot in wall-clock time. A healthy serving tier sheds the excess
// with immediate 429s (Retry-After set) while the admitted requests
// keep a bounded latency tail; the run reports p50/p99/p999 over
// admitted requests plus the shed rate and fails on any response that
// is neither 200 nor 429:
//
//	go run ./examples/loadtest -saturate [-cap 8] [-requests 4000]
//
// Distributed mode (-replicas N) measures the scatter-gather tier
// instead: one index served by N in-process replicas behind a cluster
// coordinator (the same wiring cmd/pllrouted mounts). The same point-
// query workload runs three ways — directly against one replica,
// through a coordinator with a single backend (isolating the proxy
// hop), and through a coordinator spreading keys over the whole pool —
// and the run reports the per-hop latency overhead and the QPS scaling
// factor:
//
//	go run ./examples/loadtest -replicas 3 [-workers 8] [-requests 2000]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pll/internal/cluster"
	"pll/internal/gen"
	"pll/internal/rng"
	"pll/internal/server"
	"pll/pll"
)

func main() {
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	requests := flag.Int("requests", 2000, "total /distance requests")
	n := flag.Int("n", 5000, "vertices in the synthetic graph (in-process mode)")
	addr := flag.String("addr", "", "base URL of a running pllserved (empty starts one in-process)")
	saturate := flag.Bool("saturate", false, "saturation scenario: cap server concurrency at -cap, offer 2x that, report shed rate + tail latency")
	capInflight := flag.Int("cap", 8, "server concurrency cap for -saturate (in-process mode)")
	replicas := flag.Int("replicas", 0, "distributed scenario: serve the index from N replicas behind a cluster coordinator, report proxy overhead + QPS scaling")
	traceSample := flag.Float64("trace-sample", 0, "head-sampling rate for the in-process server's tracer (overhead experiments)")
	flag.Parse()

	if *replicas > 0 {
		if *addr != "" {
			log.Fatal("-replicas starts its own in-process pool; it cannot combine with -addr")
		}
		runReplicas(*n, *replicas, *workers, *requests)
		return
	}

	cfg := server.Config{CacheSize: 4096}
	if *saturate {
		// No caching in saturation mode: every admitted request must pay
		// the real /batch scan, or the workload would not saturate.
		cfg = server.Config{MaxInflight: *capInflight}
	}
	cfg.TraceSampleRate = *traceSample
	base := *addr
	var srv *server.Server
	if base == "" {
		var err error
		base, srv, err = startInProcess(*n, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	numV := probeVertices(client, base)

	if *saturate {
		runSaturation(client, base, *capInflight, *requests, numV)
		return
	}
	fmt.Printf("target: %s (%d vertices), %d workers, %d requests\n",
		base, numV, *workers, *requests)

	// Phase 1: concurrent point queries, with one hot-reload fired
	// mid-flight when we own the server.
	if srv != nil {
		// Swap in a rebuilt index while every worker is mid-loop.
		go func() {
			time.Sleep(50 * time.Millisecond)
			if _, err := srv.Reload(indexPath); err != nil {
				log.Printf("hot-reload failed: %v", err)
			} else {
				fmt.Printf("hot-reloaded the index under load (generation %d)\n",
					srv.Oracle().Generation())
			}
		}()
	}
	all, failed, elapsed := measurePoint(client, base, *workers, *requests, numV, 1000)
	fmt.Printf("point queries: %d ok, %d failed in %v (%.0f req/s)\n",
		len(all), failed, elapsed.Round(time.Millisecond),
		float64(len(all))/elapsed.Seconds())
	if len(all) > 0 {
		fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v\n",
			pct(all, 50), pct(all, 95), pct(all, 99), all[len(all)-1])
	}

	// Phase 2: one amortized single-source batch covering 1000 targets.
	targets := make([]int32, 0, 1000)
	for i := 0; i < 1000 && i < numV; i++ {
		targets = append(targets, int32(i))
	}
	src := int32(0)
	body, _ := json.Marshal(map[string]any{"source": src, "targets": targets})
	q := time.Now()
	resp, err := client.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var batch struct {
		Count int `json:"count"`
	}
	json.NewDecoder(resp.Body).Decode(&batch)
	resp.Body.Close()
	fmt.Printf("batch: %d single-source distances in %v (%.2f us/pair amortized)\n",
		batch.Count, time.Since(q).Round(time.Microsecond),
		float64(time.Since(q).Microseconds())/float64(max(batch.Count, 1)))

	if failed > 0 {
		os.Exit(1)
	}
}

// measurePoint drives the /distance workload: workers concurrent
// clients, each issuing uniformly random (s, t) lookups. It returns the
// sorted per-request latencies of the successful lookups, the failure
// count, and the wall-clock elapsed time.
func measurePoint(client *http.Client, base string, workers, requests, numV, seedBase int) ([]time.Duration, int64, time.Duration) {
	var failures atomic.Int64
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	perWorker := requests / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.New(uint64(seedBase + id))
			lat := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				s, t := r.Int31n(int32(numV)), r.Int31n(int32(numV))
				q := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", base, s, t))
				if err != nil {
					failures.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				lat = append(lat, time.Since(q))
			}
			latencies[id] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, failures.Load(), elapsed
}

// runReplicas measures the distributed tier: one index served by
// -replicas in-process server instances behind a cluster coordinator.
// Caching is disabled so the three measurements differ only in the
// serving topology, and each target gets a warmup pass so connection
// pools are established before the measured run.
func runReplicas(n, replicas, workers, requests int) {
	raw := gen.BarabasiAlbert(n, 4, 42)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		log.Fatal(err)
	}
	buildStart := time.Now()
	ix, err := pll.Build(g, pll.WithBitParallel(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built index over %d vertices in %v\n", n, time.Since(buildStart).Round(time.Millisecond))

	serve := func(h http.Handler) string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, h)
		return "http://" + ln.Addr().String()
	}
	urls := make([]string, replicas)
	for i := range urls {
		urls[i] = serve(server.New(pll.NewConcurrentOracle(ix), server.Config{}).Handler())
	}
	startCoord := func(backends []string) string {
		coord, err := cluster.New(cluster.Config{Backends: backends})
		if err != nil {
			log.Fatal(err)
		}
		return serve(coord.Handler())
	}
	coord1 := startCoord(urls[:1])
	coordN := startCoord(urls)

	// The default transport idles only two connections per host; with
	// every worker hammering one host that would churn a fresh TCP
	// connection per request and measure the dialer, not the server.
	client := &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 64},
	}
	// Probing the coordinator (not a replica) also proves its /healthz
	// carries the pooled index identity the probe reads.
	numV := probeVertices(client, coordN)
	fmt.Printf("distributed: %d replicas behind one coordinator, %d workers, %d /distance requests per target\n",
		replicas, workers, requests)

	type result struct {
		lat     []time.Duration
		failed  int64
		elapsed time.Duration
	}
	var results []result
	for _, tgt := range []struct{ name, base string }{
		{"direct (replica 0)", urls[0]},
		{"coordinator, 1 replica", coord1},
		{fmt.Sprintf("coordinator, %d replicas", replicas), coordN},
	} {
		measurePoint(client, tgt.base, workers, requests/4, numV, 7000)
		lat, failed, elapsed := measurePoint(client, tgt.base, workers, requests, numV, 1000)
		res := result{lat, failed, elapsed}
		results = append(results, res)
		line := fmt.Sprintf("%-24s %d ok, %d failed in %v (%.0f req/s)",
			tgt.name+":", len(lat), failed, elapsed.Round(time.Millisecond),
			float64(len(lat))/elapsed.Seconds())
		if len(lat) > 0 {
			line += fmt.Sprintf("  p50=%v p99=%v", pct(lat, 50), pct(lat, 99))
		}
		fmt.Println(line)
	}

	direct, one, all := results[0], results[1], results[2]
	if len(direct.lat) == 0 || len(one.lat) == 0 || len(all.lat) == 0 {
		fmt.Println("FAIL: a target answered no requests")
		os.Exit(1)
	}
	fmt.Printf("coordinator hop overhead: p50 %+v, p99 %+v\n",
		(pct(one.lat, 50) - pct(direct.lat, 50)).Round(time.Microsecond),
		(pct(one.lat, 99) - pct(direct.lat, 99)).Round(time.Microsecond))
	for _, r := range results {
		if r.failed > 0 {
			fmt.Println("FAIL: requests failed")
			os.Exit(1)
		}
	}

	// Phase B: QPS scaling. On one host every in-process replica shares
	// the same cores, so raw throughput cannot scale with the pool; what
	// scales in a real deployment is per-node capacity. Emulate that
	// with each replica's own admission limiter — RatePerSec is a wall-
	// clock bound, independent of shared CPU — and offer more load than
	// the pool admits: the coordinator's admitted QPS must then track
	// the number of replicas behind it, because rendezvous routing
	// spreads the keys across every replica's token bucket.
	const perReplicaRate = 400
	capped := make([]string, replicas)
	for i := range capped {
		capped[i] = serve(server.New(pll.NewConcurrentOracle(ix),
			server.Config{RatePerSec: perReplicaRate, RateBurst: 40}).Handler())
	}
	// A fixed 250ms hedge delay keeps hedges out of the measurement:
	// shed 429s answer in microseconds and would otherwise drag the
	// adaptive delay down until every admitted request hedges.
	cappedCoord := func(backends []string) string {
		coord, err := cluster.New(cluster.Config{Backends: backends, HedgeAfter: 250 * time.Millisecond})
		if err != nil {
			log.Fatal(err)
		}
		return serve(coord.Handler())
	}
	offered := 3 * requests
	fmt.Printf("scaling: each replica capped at %d admitted req/s, %d offered per target\n",
		perReplicaRate, offered)
	var admittedQPS []float64
	for _, tgt := range []struct {
		name     string
		backends []string
	}{
		{"coordinator, 1 capped replica", capped[:1]},
		{fmt.Sprintf("coordinator, %d capped replicas", replicas), capped},
	} {
		ok, shed, failed, elapsed := measureAdmitted(client, cappedCoord(tgt.backends), workers, offered, numV, 3000)
		qps := float64(ok) / elapsed.Seconds()
		admittedQPS = append(admittedQPS, qps)
		fmt.Printf("%-31s admitted %d (%.0f req/s), shed %d, failed %d in %v\n",
			tgt.name+":", ok, qps, shed, failed, elapsed.Round(time.Millisecond))
		if failed > 0 {
			fmt.Println("FAIL: responses that were neither 200 nor 429")
			os.Exit(1)
		}
	}
	fmt.Printf("scaling: %d-replica pool admitted %.2fx the single-replica QPS\n",
		replicas, admittedQPS[1]/admittedQPS[0])
}

// measureAdmitted drives /distance at full speed and classifies the
// responses: 200 admitted, 429 shed by a replica's admission limiter
// (and relayed by the coordinator with its Retry-After), anything else
// a failure.
func measureAdmitted(client *http.Client, base string, workers, requests, numV, seedBase int) (int64, int64, int64, time.Duration) {
	var ok, shed, failed atomic.Int64
	var wg sync.WaitGroup
	perWorker := requests / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.New(uint64(seedBase + id))
			for i := 0; i < perWorker; i++ {
				s, t := r.Int31n(int32(numV)), r.Int31n(int32(numV))
				resp, err := client.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", base, s, t))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	return ok.Load(), shed.Load(), failed.Load(), time.Since(start)
}

// indexPath is where the in-process mode persists its index so the
// hot-reload demonstration has a file to re-read.
var indexPath string

// pause is an io.Reader that sleeps once, then reports EOF; stitched
// between two body halves with io.MultiReader it turns a request into
// a slow client whose upload dribbles in over the wire.
type pause struct {
	d    time.Duration
	done bool
}

func (p *pause) Read([]byte) (int, error) {
	if !p.done {
		time.Sleep(p.d)
		p.done = true
	}
	return 0, io.EOF
}

// runSaturation drives the server past its concurrency cap with the
// overload shape the cap exists for: slow clients. Each /batch upload
// arrives in two segments a few milliseconds apart, so the handler
// holds its concurrency slot in wall-clock time (blocked in the body
// read) rather than just a CPU burst — on a WAN that is every client.
// With offered concurrency at 2× the cap, the excess requests find no
// free slot and shed immediately with 429 + Retry-After, while the
// admitted requests keep a bounded latency near the uncontended
// service time. The run reports shed rate and p50/p99/p999 over
// admitted requests, and fails on any response that is neither 200
// nor a header-complete 429 — degradation must be graceful, never a
// collapse or a crash.
func runSaturation(client *http.Client, base string, capSlots, requests, numV int) {
	workers := 2 * capSlots
	perWorker := requests / workers
	targets := make([]int32, 0, 1000)
	for i := 0; i < 1000 && i < numV; i++ {
		targets = append(targets, int32(i))
	}
	const uploadStall = 2 * time.Millisecond
	fmt.Printf("saturation: concurrency cap %d, %d slow-client workers (2x cap), %d /batch requests of %d targets, %v upload stall\n",
		capSlots, workers, workers*perWorker, len(targets), uploadStall)

	var okLat []time.Duration
	var mu sync.Mutex
	var shed, failed, noRetryAfter atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.New(uint64(9000 + id))
			lat := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				src := r.Int31n(int32(numV))
				body, _ := json.Marshal(map[string]any{"source": src, "targets": targets})
				half := len(body) / 2
				req, err := http.NewRequest(http.MethodPost, base+"/batch", io.MultiReader(
					bytes.NewReader(body[:half]), &pause{d: uploadStall}, bytes.NewReader(body[half:])))
				if err != nil {
					failed.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				req.ContentLength = int64(len(body))
				q := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					continue
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					lat = append(lat, time.Since(q))
				case http.StatusTooManyRequests:
					shed.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						noRetryAfter.Add(1)
					}
				default:
					failed.Add(1)
				}
			}
			mu.Lock()
			okLat = append(okLat, lat...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	total := len(okLat) + int(shed.Load()) + int(failed.Load())
	fmt.Printf("offered: %d requests in %v; admitted %d (%.0f req/s), shed %d (%.1f%%), failed %d\n",
		total, elapsed.Round(time.Millisecond), len(okLat),
		float64(len(okLat))/elapsed.Seconds(), shed.Load(),
		100*float64(shed.Load())/float64(max(total, 1)), failed.Load())
	if len(okLat) > 0 {
		fmt.Printf("admitted latency: p50=%v p99=%v p999=%v max=%v\n",
			pct(okLat, 50), pct(okLat, 99), pctN(okLat, 999, 1000), okLat[len(okLat)-1])
	}
	if n := noRetryAfter.Load(); n > 0 {
		fmt.Printf("FAIL: %d shed responses missing Retry-After\n", n)
		os.Exit(1)
	}
	if failed.Load() > 0 {
		fmt.Printf("FAIL: %d responses were neither 200 nor 429\n", failed.Load())
		os.Exit(1)
	}
	fmt.Println("saturation: graceful degradation confirmed (only 200s and header-complete 429s)")
}

// startInProcess builds a Barabasi-Albert index, writes it to a temp
// container file, and serves it on a loopback listener.
func startInProcess(n int, cfg server.Config) (string, *server.Server, error) {
	raw := gen.BarabasiAlbert(n, 4, 42)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		return "", nil, err
	}
	start := time.Now()
	ix, err := pll.Build(g, pll.WithBitParallel(16))
	if err != nil {
		return "", nil, err
	}
	fmt.Printf("built index over %d vertices in %v\n", n, time.Since(start).Round(time.Millisecond))

	dir, err := os.MkdirTemp("", "pll-loadtest")
	if err != nil {
		return "", nil, err
	}
	indexPath = filepath.Join(dir, "loadtest.pllbox")
	if err := pll.WriteFile(indexPath, ix); err != nil {
		return "", nil, err
	}

	cfg.IndexPath = indexPath
	srv := server.New(pll.NewConcurrentOracle(ix), cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go http.Serve(ln, srv.Handler())
	return "http://" + ln.Addr().String(), srv, nil
}

// probeVertices asks /healthz for the served vertex count.
func probeVertices(client *http.Client, base string) int {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		log.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Vertices int `json:"vertices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Vertices == 0 {
		log.Fatalf("healthz: bad response (err=%v)", err)
	}
	return h.Vertices
}

// pct returns the p-th percentile of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	return pctN(sorted, p, 100)
}

// pctN returns the (p/q)-quantile of sorted latencies (p999 = 999/1000).
func pctN(sorted []time.Duration, p, q int) time.Duration {
	i := len(sorted) * p / q
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
