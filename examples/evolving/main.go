// Evolving network (paper §8): social networks gain edges continuously,
// and rebuilding a distance index from scratch on every change is
// wasteful. This example maintains an exact oracle under a stream of
// edge insertions using resumed pruned BFSs (pll.DynamicIndex) and
// verifies a sample of answers against fresh BFS truth as it goes.
//
// Run with:
//
//	go run ./examples/evolving
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/rng"
	"pll/pll"
)

func main() {
	// Day 0: a 10k-user social network.
	raw := gen.BarabasiAlbert(10_000, 4, 21)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	di, err := pll.BuildDynamic(g, pll.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial network: %d users, %d friendships; indexed in %v (avg label %.1f)\n",
		g.NumVertices(), g.NumEdges(), time.Since(start), di.AvgLabelSize())

	// A stream of new friendships arrives. New friendships in social
	// networks skew preferential (popular users gain more), which we
	// approximate by endpoint sampling from the edge multiset.
	r := rng.New(77)
	edges := raw.Edges()
	endpoints := make([]int32, 0, 2*len(edges))
	for _, e := range edges {
		endpoints = append(endpoints, e.U, e.V)
	}

	const streamLen = 2000
	var inserted int
	var totalUpdates int
	begin := time.Now()
	for i := 0; i < streamLen; i++ {
		a := endpoints[r.Intn(len(endpoints))]
		b := r.Int31n(int32(g.NumVertices()))
		if a == b {
			continue
		}
		upd, err := di.InsertEdge(a, b)
		if err != nil {
			log.Fatal(err)
		}
		if upd > 0 {
			edges = append(edges, pll.Edge{U: a, V: b})
			endpoints = append(endpoints, a, b)
			inserted++
			totalUpdates += upd
		}
	}
	elapsed := time.Since(begin)
	fmt.Printf("streamed %d insertions in %v (%.1f us each, %.1f label updates each)\n",
		inserted, elapsed,
		float64(elapsed.Microseconds())/float64(inserted),
		float64(totalUpdates)/float64(inserted))
	fmt.Printf("label size after stream: %.1f\n", di.AvgLabelSize())

	// Spot-check exactness against BFS on the final graph.
	final, err := graph.NewGraph(g.NumVertices(), edges)
	if err != nil {
		log.Fatal(err)
	}
	mismatches := 0
	for i := 0; i < 500; i++ {
		s := r.Int31n(int32(g.NumVertices()))
		t := r.Int31n(int32(g.NumVertices()))
		want := int64(bfs.Distance(final, s, t))
		got := di.Distance(s, t)
		if want == int64(bfs.Unreachable) {
			want = pll.Unreachable
		}
		if got != want {
			mismatches++
		}
	}
	fmt.Printf("verification: 500 sampled queries, %d mismatches\n", mismatches)

	// Nightly snapshot: freeze the evolving oracle and ship it in the
	// self-describing container format; any serving process loads it
	// back with pll.LoadFile, no variant knowledge needed.
	snap := filepath.Join(os.TempDir(), "evolving-snapshot.pllbox")
	if err := pll.WriteFile(snap, di); err != nil {
		log.Fatal(err)
	}
	o, err := pll.LoadFile(snap)
	if err != nil {
		log.Fatal(err)
	}
	st := o.Stats()
	fmt.Printf("snapshot: %s -> %s variant, %d label entries; d(0,1)=%d\n",
		snap, st.Variant, st.TotalLabelEntries, o.Distance(0, 1))
	os.Remove(snap)
}
