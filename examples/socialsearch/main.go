// Socially-sensitive search (paper §1): rank search results by the
// social distance between the querying user and each result's author.
// The application needs distances for many candidate pairs per search,
// interactively — exactly the workload that rules out per-query BFS and
// motivates a microsecond-latency exact oracle.
//
// Run with:
//
//	go run ./examples/socialsearch
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"pll/internal/gen"
	"pll/internal/rng"
	"pll/pll"
)

// result is a search hit authored by some user of the social network.
type result struct {
	title    string
	author   int32
	textRank float64 // content relevance before social re-ranking
}

func main() {
	// The social network: 30k users.
	raw := gen.BarabasiAlbert(30_000, 6, 7)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ix, err := pll.Build(g, pll.WithBitParallel(16), pll.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d users, %d friendships; indexed in %v\n",
		g.NumVertices(), g.NumEdges(), time.Since(start))

	// A search returns candidate results authored across the network.
	r := rng.New(99)
	candidates := make([]result, 200)
	for i := range candidates {
		candidates[i] = result{
			title:    fmt.Sprintf("post-%03d", i),
			author:   r.Int31n(int32(g.NumVertices())),
			textRank: r.Float64(),
		}
	}

	// Re-rank for a specific user: closeness in the social graph boosts
	// results (the paper cites exactly this use of distance queries).
	// One search compares one user against every candidate author, so
	// the Batcher capability applies: the user's label is pinned once
	// and each author costs a single label scan (§4.5), instead of a
	// full merge join per candidate.
	user := int32(4242)
	authors := make([]int32, len(candidates))
	for i, c := range candidates {
		authors[i] = c.author
	}
	type scored struct {
		result
		dist  int64
		score float64
	}
	begin := time.Now()
	batcher, ok := ix.(pll.Batcher)
	if !ok {
		log.Fatal("index does not support batched distance queries")
	}
	dists := batcher.DistanceFrom(user, authors, nil)
	ranked := make([]scored, 0, len(candidates))
	for i, c := range candidates {
		d := dists[i]
		social := 0.0
		if d >= 0 {
			social = 1.0 / float64(1+d) // closer authors score higher
		}
		ranked = append(ranked, scored{
			result: c,
			dist:   d,
			score:  0.5*c.textRank + 0.5*social,
		})
	}
	rerankTime := time.Since(begin)
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })

	fmt.Printf("re-ranked %d candidates for user %d in %v (%.2f us per distance)\n",
		len(candidates), user, rerankTime,
		float64(rerankTime.Nanoseconds())/float64(len(candidates))/1e3)
	fmt.Println("top results (title, author, social distance, score):")
	for _, s := range ranked[:5] {
		fmt.Printf("  %-9s author=%-6d d=%-2d score=%.3f\n", s.title, s.author, s.dist, s.score)
	}
}
