// Geofenced dispatch over composite queries: a delivery network where a
// dispatcher wants couriers that are close to the pickup AND close to
// the dropoff, outside the congested depot zone, ranked by the total
// detour — one composite query instead of three neighborhood scans and
// a hand-rolled intersection.
//
// The demo shows the CompositeSearcher capability end to end: build the
// constraint tree (near/and/not), attach combined-distance ranking,
// and let the streaming engine answer it straight from the inverted
// labels — constraints ordered by estimated selectivity, distance
// cutoffs pushed into the label-run scans, and the ranked scan cut off
// the moment the k-th best score is out of reach. A brute-force
// cross-check (materialize each neighborhood with Range, intersect,
// re-rank) verifies the answers and shows what the engine avoids.
//
// Run with:
//
//	go run ./examples/geofence
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"pll/internal/gen"
	"pll/internal/rng"
	"pll/pll"
)

func main() {
	// The street network: 30k intersections, scale-free shortcuts.
	raw := gen.BarabasiAlbert(30_000, 4, 17)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ix, err := pll.Build(g, pll.WithBitParallel(16), pll.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d vertices, %d edges; indexed in %v\n\n",
		g.NumVertices(), g.NumEdges(), time.Since(start))

	// Composite search is a capability — probe for it.
	cs, ok := ix.(pll.CompositeSearcher)
	if !ok {
		log.Fatalf("%T does not support composite queries", ix)
	}
	sr, ok := ix.(pll.Searcher)
	if !ok {
		log.Fatalf("%T does not support search queries", ix)
	}

	r := rng.New(99)
	n := int32(g.NumVertices())
	for job := 0; job < 4; job++ {
		pickup, dropoff, depot := r.Int31n(n), r.Int31n(n), r.Int31n(n)

		// Couriers within 4 hops of the pickup AND 5 of the dropoff,
		// outside the depot's 1-hop congestion zone, ranked by the sum
		// of both legs, best 5.
		req := &pll.CompositeRequest{
			Where: &pll.CompositeClause{And: []*pll.CompositeClause{
				{Near: &pll.NearClause{Source: pickup, MaxDist: 4}},
				{Near: &pll.NearClause{Source: dropoff, MaxDist: 5}},
				{Not: &pll.CompositeClause{Near: &pll.NearClause{Source: depot, MaxDist: 1}}},
			}},
			// Rank by the two legs only: left to the default, every near
			// source in the tree (the depot included) becomes a term.
			Rank: &pll.CompositeRank{Terms: []pll.CompositeTerm{
				{Source: pickup}, {Source: dropoff},
			}},
			K: 5,
		}
		start = time.Now()
		res, err := cs.Composite(req)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		fmt.Printf("job %d: pickup %d, dropoff %d, avoid depot %d\n", job, pickup, dropoff, depot)
		for _, m := range res.Matches {
			fmt.Printf("  courier at %5d: pickup leg %d + dropoff leg %d = score %d\n",
				m.Vertex, m.Terms[0], m.Terms[1], m.Score)
		}
		exactness := "exactly"
		if !res.Exact {
			exactness = "at least"
		}
		fmt.Printf("  [%v streamed; %s %d candidates satisfy the fence]\n", elapsed, exactness, res.Total)

		// The materialize-and-intersect plan the engine replaces: two
		// full Range scans, a set intersection, an exclusion filter and
		// a re-rank. Same answers, strictly more work.
		start = time.Now()
		brute := bruteDispatch(sr, pickup, dropoff, depot, 5)
		bruteElapsed := time.Since(start)
		if len(brute) != len(res.Matches) {
			log.Fatalf("brute force found %d couriers, composite %d", len(brute), len(res.Matches))
		}
		for i, m := range res.Matches {
			if brute[i] != m.Vertex {
				log.Fatalf("rank %d: brute force picked %d, composite %d", i, brute[i], m.Vertex)
			}
		}
		fmt.Printf("  [brute force agrees in %v]\n\n", bruteElapsed)
	}
}

// bruteDispatch is the hand-rolled plan: materialize both
// neighborhoods, intersect, drop the depot zone, rank by total detour.
func bruteDispatch(sr pll.Searcher, pickup, dropoff, depot int32, k int) []int32 {
	nearPickup, err := sr.Range(pickup, 4)
	if err != nil {
		log.Fatal(err)
	}
	nearDropoff, err := sr.Range(dropoff, 5)
	if err != nil {
		log.Fatal(err)
	}
	congested, err := sr.Range(depot, 1)
	if err != nil {
		log.Fatal(err)
	}
	// Range excludes its source; composite near() includes it.
	pickupDist := map[int32]int64{pickup: 0}
	for _, nb := range nearPickup {
		pickupDist[nb.Vertex] = nb.Distance
	}
	dropDist := map[int32]int64{dropoff: 0}
	for _, nb := range nearDropoff {
		dropDist[nb.Vertex] = nb.Distance
	}
	blocked := map[int32]bool{depot: true}
	for _, nb := range congested {
		blocked[nb.Vertex] = true
	}
	type cand struct {
		v     int32
		score int64
	}
	var cands []cand
	for v, dp := range pickupDist {
		dd, ok := dropDist[v]
		if !ok || blocked[v] {
			continue
		}
		cands = append(cands, cand{v, dp + dd})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		return cands[i].v < cands[j].v
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]int32, len(cands))
	for i, c := range cands {
		out[i] = c.v
	}
	return out
}
