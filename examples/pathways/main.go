// Pathway discovery (paper §1): in metabolic networks, distance queries
// find optimal pathways between compounds. Unlike the ranking examples,
// this application needs the actual shortest *path*, not just its
// length — exercising the paper's §6 shortest-path extension (labels
// with parent pointers) and the weighted variant (reaction costs).
//
// Run with:
//
//	go run ./examples/pathways
package main

import (
	"fmt"
	"log"
	"time"

	"pll/internal/gen"
	"pll/pll"
)

func main() {
	// A core–fringe network: a dense hub of central metabolites with
	// tree-like peripheral pathways — the core–fringe structure the
	// paper highlights (§1, Theorem 4.4).
	raw := gen.CoreFringe(400, 4_000, 20_000, 13)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		log.Fatal(err)
	}

	// Path-reconstructing index: labels carry parent pointers.
	start := time.Now()
	ix, err := pll.Build(g, pll.WithPaths(), pll.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compound graph: %d compounds, %d reactions; path index built in %v\n",
		g.NumVertices(), g.NumEdges(), time.Since(start))

	// Find optimal pathways between peripheral compounds.
	pairs := [][2]int32{{5_000, 18_000}, {401, 20_399}, {12_345, 6_789}}
	for _, p := range pairs {
		begin := time.Now()
		path, err := ix.Path(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pathway %d -> %d (%d steps, %v): %v\n",
			p[0], p[1], len(path)-1, time.Since(begin), abbreviate(path))
	}

	// Weighted variant: reactions have energetic costs; the pruned
	// Dijkstra index answers minimum-cost distances exactly.
	wraw := gen.RandomWeights(raw, 1, 20, 17)
	var wedges []pll.WeightedEdge
	for v := int32(0); int(v) < raw.NumVertices(); v++ {
		ws := wraw.Weights(v)
		for i, u := range wraw.Neighbors(v) {
			if v < u {
				wedges = append(wedges, pll.WeightedEdge{U: v, V: u, Weight: ws[i]})
			}
		}
	}
	wg, err := pll.NewWeightedGraph(raw.NumVertices(), wedges)
	if err != nil {
		log.Fatal(err)
	}
	// The generic Build dispatches on the graph kind: handing it the
	// *WeightedGraph yields the pruned-Dijkstra variant.
	start = time.Now()
	wix, err := pll.Build(wg, pll.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted index built in %v (avg label %.1f)\n", time.Since(start), wix.Stats().AvgLabelSize)
	for _, p := range pairs {
		fmt.Printf("min reaction cost %d -> %d = %d\n", p[0], p[1], wix.Distance(p[0], p[1]))
	}
}

// abbreviate shortens long paths for display.
func abbreviate(path []int32) string {
	if len(path) <= 8 {
		return fmt.Sprint(path)
	}
	return fmt.Sprintf("%v ... %v", path[:4], path[len(path)-3:])
}
