// Quickstart: build a pruned-landmark-labeling index over a small social
// network and answer distance queries in microseconds.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"pll/internal/gen"
	"pll/pll"
)

func main() {
	// A synthetic social network: 20k users, preferential attachment
	// (power-law degrees, small world) — the graph class the paper's
	// method is designed for.
	raw := gen.BarabasiAlbert(20_000, 5, 42)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Index it. Degree ordering and 16 bit-parallel BFSs are the paper's
	// defaults for networks of this size.
	start := time.Now()
	ix, err := pll.Build(g, pll.WithBitParallel(16), pll.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("indexed in %v: %.1f avg label entries + %d bit-parallel roots, %.1f MB\n",
		time.Since(start), st.AvgLabelSize, st.NumBitParallel,
		float64(st.IndexBytes)/(1<<20))

	// Exact distances, instantly.
	queries := [][2]int32{{0, 19_999}, {123, 15_678}, {7, 7}, {100, 200}}
	for _, q := range queries {
		start := time.Now()
		d := ix.Distance(q[0], q[1])
		fmt.Printf("d(%d, %d) = %d   (%v)\n", q[0], q[1], d, time.Since(start))
	}

	// Indexes serialize to a compact binary format; see cmd/pll for a
	// CLI around construct/query/stats and the disk-resident mode.
}
