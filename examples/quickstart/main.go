// Quickstart: build a pruned-landmark-labeling index over a small social
// network and answer distance queries in microseconds.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pll/internal/gen"
	"pll/pll"
)

func main() {
	// A synthetic social network: 20k users, preferential attachment
	// (power-law degrees, small world) — the graph class the paper's
	// method is designed for.
	raw := gen.BarabasiAlbert(20_000, 5, 42)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Index it. Degree ordering and 16 bit-parallel BFSs are the paper's
	// defaults for networks of this size.
	start := time.Now()
	ix, err := pll.Build(g, pll.WithBitParallel(16), pll.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("indexed in %v: %.1f avg label entries + %d bit-parallel roots, %.1f MB\n",
		time.Since(start), st.AvgLabelSize, st.NumBitParallel,
		float64(st.IndexBytes)/(1<<20))

	// Exact distances, instantly.
	queries := [][2]int32{{0, 19_999}, {123, 15_678}, {7, 7}, {100, 200}}
	for _, q := range queries {
		start := time.Now()
		d := ix.Distance(q[0], q[1])
		fmt.Printf("d(%d, %d) = %d   (%v)\n", q[0], q[1], d, time.Since(start))
	}

	// Serving restarts shouldn't pay a decode pass: write the index as a
	// flat (version-2) container once, then pll.Open memory-maps it and
	// answers identically with zero label copying — time-to-first-query
	// is microseconds regardless of index size.
	path := filepath.Join(os.TempDir(), "quickstart.flat.pllbox")
	if err := pll.WriteFlatFile(path, ix); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	start = time.Now()
	fi, err := pll.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer fi.Close()
	fmt.Printf("reopened zero-copy in %v: d(0, 19999) = %d\n",
		time.Since(start), fi.Distance(0, 19_999))

	// One-to-many workloads use the Batcher capability: the source label
	// is pinned once, each target costs a single label scan.
	targets := []int32{19_999, 15_678, 7, 200}
	fmt.Printf("batch from 0: %v\n", fi.DistanceFrom(0, targets, nil))

	// Indexes serialize to a compact binary format; see cmd/pll for a
	// CLI around construct/query/stats/convert and pllserved for HTTP
	// serving.
}
