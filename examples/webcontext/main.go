// Context-aware web search (paper §1): when a user is reading page P,
// re-rank search results by link distance from P — pages "near" the
// current context are more relevant. Distances between web pages are
// queried at interactive rates over a crawl graph, so the oracle must be
// both exact (close pages matter most) and microsecond-fast.
//
// This example also exercises the directed variant: web links have
// direction, and distance-from-context is a directed query.
//
// Run with:
//
//	go run ./examples/webcontext
package main

import (
	"fmt"
	"log"
	"time"

	"pll/internal/gen"
	"pll/internal/rng"
	"pll/pll"
)

func main() {
	// A web-graph stand-in: R-MAT with the standard skew, arcs directed.
	und := gen.RMAT(15, 8, 0.57, 0.19, 0.19, 11) // 32768 pages
	r := rng.New(5)
	var arcs []pll.Edge
	for _, e := range und.Edges() {
		// Keep each link directed; add ~30% reciprocal links.
		arcs = append(arcs, pll.Edge{U: e.U, V: e.V})
		if r.Float64() < 0.3 {
			arcs = append(arcs, pll.Edge{U: e.V, V: e.U})
		}
	}
	g, err := pll.NewDigraph(und.NumVertices(), arcs)
	if err != nil {
		log.Fatal(err)
	}
	// The generic Build sees a *Digraph and constructs the directed
	// variant; the returned Oracle surface is the same for every kind.
	start := time.Now()
	ix, err := pll.Build(g, pll.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("web graph: %d pages, %d links; %s index built in %v (avg label %.1f)\n",
		g.NumVertices(), g.NumArcs(), st.Variant, time.Since(start), st.AvgLabelSize)

	// The user is reading page `context`; a keyword search produced
	// candidate pages. Boost candidates reachable in few clicks.
	context := int32(77)
	candidates := make([]int32, 50)
	for i := range candidates {
		candidates[i] = r.Int31n(int32(g.NumVertices()))
	}
	begin := time.Now()
	fmt.Printf("distances from context page %d:\n", context)
	shown := 0
	for _, c := range candidates {
		d := ix.Distance(context, c)
		if d != pll.Unreachable && shown < 8 {
			fmt.Printf("  page %-6d %d clicks away\n", c, d)
			shown++
		}
	}
	fmt.Printf("(%d candidates scored in %v)\n", len(candidates), time.Since(begin))

	// Directedness matters: reachability is asymmetric on the web.
	a, b := candidates[0], candidates[1]
	fmt.Printf("asymmetry check: d(%d->%d)=%d, d(%d->%d)=%d\n",
		a, b, ix.Distance(a, b), b, a, ix.Distance(b, a))
}
