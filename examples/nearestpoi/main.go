// Nearest-POI search over 2-hop labels: a city-scale road-ish network
// where a fraction of vertices carry points of interest (charging
// stations, say), and every query asks for the k stations nearest to a
// user — by exact network distance, not geometry.
//
// The demo shows the Searcher capability end to end: register the POI
// list once as a pll.VertexSet (a filtered inverted index over just
// the members' labels), then answer NearestIn queries in microseconds
// with no graph traversal, and cross-check a few answers against the
// brute-force alternative (one batched distance sweep over the whole
// POI list per query). KNN and Range ride along for comparison.
//
// Run with:
//
//	go run ./examples/nearestpoi
package main

import (
	"fmt"
	"log"
	"time"

	"pll/internal/gen"
	"pll/internal/rng"
	"pll/pll"
)

func main() {
	// The network: 40k locations with small-world shortcuts.
	raw := gen.BarabasiAlbert(40_000, 4, 11)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	ix, err := pll.Build(g, pll.WithBitParallel(16), pll.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d vertices, %d edges; indexed in %v\n",
		g.NumVertices(), g.NumEdges(), time.Since(start))

	// One vertex in 200 hosts a charging station.
	r := rng.New(42)
	n := int32(g.NumVertices())
	var pois []int32
	for v := int32(0); v < n; v++ {
		if r.Int31n(200) == 0 {
			pois = append(pois, v)
		}
	}

	// Register the POI list once: the filtered inverted index costs
	// O(total label mass of the members) and is then shared by every
	// query. Search is a capability — probe for it instead of depending
	// on the concrete index type.
	sr, ok := ix.(pll.Searcher)
	if !ok {
		log.Fatalf("%T does not support search queries", ix)
	}
	start = time.Now()
	set, err := sr.NewVertexSet(pois)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d charging stations in %v\n\n", set.Size(), time.Since(start))

	// Interactive queries: nearest stations for a handful of users.
	users := make([]int32, 5)
	for i := range users {
		users[i] = r.Int31n(n)
	}
	for _, u := range users {
		start = time.Now()
		nearest, err := sr.NearestIn(u, set, 3)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("user %5d: nearest stations", u)
		for _, nb := range nearest {
			fmt.Printf("  %d (d=%d)", nb.Vertex, nb.Distance)
		}
		fmt.Printf("  [%v]\n", elapsed)

		// Cross-check against the brute-force plan: batch-compute the
		// distance to every station and scan. Same answers, much more
		// work per query.
		batcher, ok := ix.(pll.Batcher)
		if !ok {
			log.Fatal("index does not support batched distance queries")
		}
		dists := batcher.DistanceFrom(u, pois, nil)
		for _, nb := range nearest {
			for i, p := range pois {
				if p == nb.Vertex && dists[i] != nb.Distance {
					log.Fatalf("mismatch at station %d: %d vs %d", p, nb.Distance, dists[i])
				}
			}
		}
	}

	// The same capability answers open-ended neighborhood queries.
	u := users[0]
	knn, err := sr.KNN(u, 5)
	if err != nil {
		log.Fatal(err)
	}
	within, err := sr.Range(u, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuser %d: 5 nearest vertices overall: %v\n", u, knn)
	fmt.Printf("user %d: %d vertices within 2 hops\n", u, len(within))
}
