package pll_test

// Integration tests: cross-module flows exercised through the public API
// plus the internal baselines, mirroring how the experiment harness
// composes the pieces.

import (
	"bytes"
	"path/filepath"
	"testing"

	"pll/internal/baseline"
	"pll/internal/bfs"
	"pll/internal/datasets"
	"pll/internal/graph"
	"pll/internal/hhl"
	"pll/internal/order"
	"pll/internal/rng"
	"pll/internal/treedec"
	"pll/pll"
)

// TestFourOraclesAgreeOnDatasetStandIn cross-validates every exact
// oracle in the repository on a generated dataset stand-in.
func TestFourOraclesAgreeOnDatasetStandIn(t *testing.T) {
	rec, err := datasets.ByName("Gnutella")
	if err != nil {
		t.Fatal(err)
	}
	raw := rec.Generate(256, 5)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pll.Build(g, pll.WithBitParallel(8), pll.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	hix, err := hhl.Build(raw, order.ByDegree(raw, 5))
	if err != nil {
		t.Fatal(err)
	}
	tix, terr := treedec.Build(raw, treedec.Options{MaxBag: 16, MaxCore: 4000})
	oracle := baseline.NewOracle(raw)

	r := rng.New(9)
	n := int32(raw.NumVertices())
	for i := 0; i < 300; i++ {
		s, u := r.Int31n(n), r.Int31n(n)
		want := oracle.Query(s, u)
		if got := ix.Distance(s, u); got != int64(want) {
			t.Fatalf("PLL disagrees with BFS at (%d,%d): %d vs %d", s, u, got, want)
		}
		if got := hix.Query(s, u); got != want {
			t.Fatalf("HHL disagrees with BFS at (%d,%d): %d vs %d", s, u, got, want)
		}
		if terr == nil {
			got := tix.Query(s, u)
			if (want == baseline.Unreachable) != (got == treedec.Unreachable) ||
				(want != baseline.Unreachable && got != int64(want)) {
				t.Fatalf("treedec disagrees with BFS at (%d,%d): %d vs %d", s, u, got, want)
			}
		}
	}
}

// TestFullPersistencePipeline walks graph -> build -> save (both
// formats) -> load -> disk query, checking agreement at every step.
func TestFullPersistencePipeline(t *testing.T) {
	rec, err := datasets.ByName("Epinions")
	if err != nil {
		t.Fatal(err)
	}
	raw := rec.Generate(512, 3)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pll.BuildIndex(g, pll.WithBitParallel(4))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	plain := filepath.Join(dir, "ix.pll")
	comp := filepath.Join(dir, "ix.pllc")
	if err := pll.WriteFile(plain, ix); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveCompressedFile(comp); err != nil {
		t.Fatal(err)
	}
	fromPlain, err := pll.LoadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	fromComp, err := pll.LoadCompressedFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := pll.OpenDiskIndex(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	r := rng.New(4)
	n := int32(g.NumVertices())
	for i := 0; i < 200; i++ {
		s, u := r.Int31n(n), r.Int31n(n)
		want := ix.Distance(s, u)
		if fromPlain.Distance(s, u) != want {
			t.Fatal("plain load mismatch")
		}
		if fromComp.Distance(s, u) != want {
			t.Fatal("compressed load mismatch")
		}
		got, err := disk.Distance(s, u)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatal("disk query mismatch")
		}
	}
}

// TestGraphTextRoundTripThroughAPI writes a generated graph as text and
// reloads it through the public loader.
func TestGraphTextRoundTripThroughAPI(t *testing.T) {
	rec, err := datasets.ByName("Slashdot")
	if err != nil {
		t.Fatal(err)
	}
	raw := rec.Generate(1024, 9)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("# header comment\n")
	for _, e := range g.Edges() {
		buf.WriteString(itoa(e.U) + " " + itoa(e.V) + "\n")
	}
	g2, err := pll.LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("text round trip: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
}

// TestDynamicConvergesToStatic inserts edges one by one into a dynamic
// index and checks it matches a fresh static build of the final graph.
func TestDynamicConvergesToStatic(t *testing.T) {
	base, err := pll.NewGraph(120, nil)
	_ = base
	if err != nil {
		t.Fatal(err)
	}
	// Start from a sparse ring, add chords dynamically.
	var ringEdges []pll.Edge
	for i := int32(0); i < 120; i++ {
		ringEdges = append(ringEdges, pll.Edge{U: i, V: (i + 1) % 120})
	}
	g, err := pll.NewGraph(120, ringEdges)
	if err != nil {
		t.Fatal(err)
	}
	di, err := pll.BuildDynamic(g, pll.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	all := append([]pll.Edge(nil), ringEdges...)
	for i := 0; i < 25; i++ {
		a, b := r.Int31n(120), r.Int31n(120)
		if a == b {
			continue
		}
		if _, err := di.InsertEdge(a, b); err != nil {
			t.Fatal(err)
		}
		all = append(all, pll.Edge{U: a, V: b})
	}
	final, err := pll.NewGraph(120, all)
	if err != nil {
		t.Fatal(err)
	}
	static, err := pll.Build(final, pll.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for s := int32(0); s < 120; s += 3 {
		for u := int32(0); u < 120; u += 5 {
			if di.Distance(s, u) != static.Distance(s, u) {
				t.Fatalf("dynamic/static mismatch at (%d,%d): %d vs %d",
					s, u, di.Distance(s, u), static.Distance(s, u))
			}
		}
	}
}

// TestWeightedAgainstDijkstraOnStandIn cross-checks the weighted public
// oracle on a weighted dataset stand-in.
func TestWeightedAgainstDijkstraOnStandIn(t *testing.T) {
	rec, err := datasets.ByName("Gnutella")
	if err != nil {
		t.Fatal(err)
	}
	raw := rec.Generate(1024, 11)
	var wedges []pll.WeightedEdge
	r := rng.New(6)
	for _, e := range raw.Edges() {
		wedges = append(wedges, pll.WeightedEdge{U: e.U, V: e.V, Weight: uint32(r.Intn(9) + 1)})
	}
	wg, err := pll.NewWeightedGraph(raw.NumVertices(), wedges)
	if err != nil {
		t.Fatal(err)
	}
	wix, err := pll.BuildWeighted(wg)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the same weighted graph for the Dijkstra ground truth.
	truthG, err := rebuildWeighted(raw.NumVertices(), wedges)
	if err != nil {
		t.Fatal(err)
	}
	n := int32(raw.NumVertices())
	for i := 0; i < 120; i++ {
		s, u := r.Int31n(n), r.Int31n(n)
		want := bfs.DijkstraDistance(truthG, s, u)
		got := wix.Distance(s, u)
		if want == bfs.InfWeight {
			if got != pll.Unreachable {
				t.Fatalf("reachability mismatch at (%d,%d)", s, u)
			}
		} else if got != int64(want) {
			t.Fatalf("weighted mismatch at (%d,%d): %d vs %d", s, u, got, want)
		}
	}
}

// rebuildWeighted constructs the internal weighted graph for ground
// truth (pll.WeightedEdge aliases graph.WeightedEdge).
func rebuildWeighted(n int, edges []pll.WeightedEdge) (*graph.Weighted, error) {
	return graph.NewWeighted(n, edges)
}

func itoa(v int32) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
