package pll_test

// Atomic, durable WriteFile: a failed or interrupted write must never
// leave path torn or replace it with a partial container — the reload
// path (pllserved SIGHUP) depends on it.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pll/pll"
)

func TestWriteFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.pllbox")
	cases := buildFlatCases(t)

	if err := pll.WriteFile(path, cases[0].oracle); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a different variant; the file must read back as
	// the new index and the directory must hold no temp litter.
	if err := pll.WriteFile(path, cases[3].oracle); err != nil {
		t.Fatal(err)
	}
	o, err := pll.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := o.Stats().Variant; v != pll.VariantDirected {
		t.Fatalf("replaced file holds the %s variant, want directed", v)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileFailureKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.pllbox")
	cases := buildFlatCases(t)
	if err := pll.WriteFile(path, cases[0].oracle); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A weighted index built WithPaths cannot serialize: WriteFile must
	// fail without touching the existing container or leaving a temp.
	wg, err := pll.NewWeightedGraph(3, []pll.WeightedEdge{{U: 0, V: 1, Weight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	unserializable, err := pll.BuildWeighted(wg, pll.WithPaths())
	if err != nil {
		t.Fatal(err)
	}
	if err := pll.WriteFile(path, unserializable); err == nil {
		t.Fatal("WriteFile of an unserializable index succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed WriteFile modified the existing container")
	}
	assertNoTempFiles(t, dir)

	if err := pll.WriteFile(filepath.Join(dir, "no/such/dir/ix.pllbox"), cases[0].oracle); err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}
