package pll_test

// Native fuzz target for the container/payload parsers behind pll.Load.
// The contract under test: any input either loads successfully or fails
// with an error wrapping ErrBadIndexFile — never a panic, never an
// unbounded allocation (see allocChunk in internal/core/serialize.go).
// The seed corpus holds a round-tripped index of every variant and
// payload flavor, so mutations explore each branch of the dispatcher.
//
// CI runs a short coverage-guided session (-fuzz=FuzzLoad -fuzztime=30s,
// see .github/workflows/ci.yml); plain `go test` replays the corpus.

import (
	"bytes"
	"errors"
	"testing"

	"pll/pll"
)

// fuzzCorpus serializes one index per variant, plus the bare legacy
// payloads (a container is header + legacy payload, so slicing off the
// 16-byte header yields the legacy encoding Load also accepts).
func fuzzCorpus(f *testing.F) [][]byte {
	f.Helper()
	var out [][]byte
	add := func(b []byte, err error) {
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, b, b[16:])
	}

	edges := []pll.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 1, V: 4}, {U: 4, V: 5}}
	g, err := pll.NewGraph(7, edges) // vertex 6 isolated: exercises empty labels
	if err != nil {
		f.Fatal(err)
	}

	marshal := func(o pll.Oracle, err error) ([]byte, error) {
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if _, err := o.WriteTo(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	add(marshal(pll.BuildIndex(g, pll.WithBitParallel(2))))
	add(marshal(pll.BuildIndex(g, pll.WithBitParallel(0))))
	add(marshal(pll.BuildIndex(g, pll.WithPaths())))

	// Compressed payload.
	ix, err := pll.BuildIndex(g, pll.WithBitParallel(2))
	if err != nil {
		f.Fatal(err)
	}
	var cbuf bytes.Buffer
	if _, err := ix.WriteToCompressed(&cbuf); err != nil {
		f.Fatal(err)
	}
	out = append(out, cbuf.Bytes(), cbuf.Bytes()[16:])

	dg, err := pll.NewDigraph(6, edges)
	if err != nil {
		f.Fatal(err)
	}
	add(marshal(pll.BuildDirected(dg)))

	wedges := make([]pll.WeightedEdge, len(edges))
	for i, e := range edges {
		wedges[i] = pll.WeightedEdge{U: e.U, V: e.V, Weight: uint32(i%3 + 1)}
	}
	wg, err := pll.NewWeightedGraph(6, wedges)
	if err != nil {
		f.Fatal(err)
	}
	add(marshal(pll.BuildWeighted(wg)))

	di, err := pll.BuildDynamic(g)
	if err != nil {
		f.Fatal(err)
	}
	add(marshal(pll.Oracle(di), nil))

	// Flat (version-2) containers of every variant: the columnar parser
	// behind Load's v2 branch must reject any mutation with
	// ErrBadIndexFile, never panic.
	marshalFlat := func(o pll.Oracle, err error) ([]byte, error) {
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if _, err := pll.WriteFlat(&buf, o); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	add(marshalFlat(pll.BuildIndex(g, pll.WithBitParallel(2))))
	add(marshalFlat(pll.BuildIndex(g, pll.WithPaths())))
	add(marshalFlat(pll.BuildDirected(dg)))
	add(marshalFlat(pll.BuildWeighted(wg)))
	add(marshalFlat(pll.Oracle(di), nil))

	// Flat containers carrying the persisted hub-inverted search
	// sections: the secInv* parsing and validation paths must reject
	// truncated or misaligned mutants with ErrBadIndexFile.
	marshalSearch := func(o pll.Oracle, err error) ([]byte, error) {
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if _, err := pll.WriteFlat(&buf, o, pll.FlatSearch()); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	add(marshalSearch(pll.BuildIndex(g, pll.WithBitParallel(2))))
	add(marshalSearch(pll.BuildDirected(dg)))
	add(marshalSearch(pll.BuildWeighted(wg)))
	return out
}

func FuzzLoad(f *testing.F) {
	for _, b := range fuzzCorpus(f) {
		f.Add(b)
		// A few deterministic malformations as extra seeds: truncations
		// and single-byte corruption in the header region.
		if len(b) > 20 {
			f.Add(b[:len(b)/2])
			f.Add(b[:17])
			mut := append([]byte(nil), b...)
			mut[9] ^= 0xff // container version / payload header byte
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("PLLBOX\x00\x00"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := pll.Load(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, pll.ErrBadIndexFile) {
				t.Fatalf("Load error does not wrap ErrBadIndexFile: %v", err)
			}
			return
		}
		if o == nil {
			t.Fatal("Load returned nil oracle without error")
		}
		// A successful load must yield a structurally usable oracle:
		// stats and a couple of queries must not panic. (Bound n so a
		// fuzzer-grown giant header cannot make the check itself slow.)
		n := o.NumVertices()
		if n < 0 {
			t.Fatalf("negative vertex count %d", n)
		}
		if n > 0 && n <= 1<<12 {
			_ = o.Stats()
			_ = o.Distance(0, int32(n-1))
			var buf bytes.Buffer
			if _, err := o.WriteTo(&buf); err != nil {
				// Round-tripping a loaded index may only fail for
				// unserializable features, never crash; directed and
				// weighted paths cannot be loaded, so no error is
				// acceptable here.
				t.Fatalf("re-serializing a loaded index failed: %v", err)
			}
		}
	})
}
