package pll

// Profiled query capabilities: the same answers as Distance /
// DistanceFrom / KNN with a per-query profile threaded into the label
// engines, so the serving tiers can attribute request latency to
// admission wait, cache probes, label merging and hub scanning. Like
// Batcher and Searcher, the capability is discovered by type-assertion:
//
//	p := trace.ProfileFromContext(ctx) // nil when untraced
//	if po, ok := o.(pll.ProfiledOracle); ok {
//		d = po.DistanceProfiled(s, t, p)
//	} else {
//		d = o.Distance(s, t)
//	}
//
// A nil profile is always valid and costs one branch, so callers probe
// for the capability once and never fork on whether tracing is active.

import (
	"pll/internal/core"
	"pll/internal/trace"
)

// QueryProfile is the per-request stage-timer sink; see
// internal/trace. All methods are safe on a nil receiver.
type QueryProfile = trace.QueryProfile

// ProfiledOracle answers distance queries while attributing their
// label-merge work to a QueryProfile. Implementations return exactly
// what Distance / DistanceFrom return; a nil profile records nothing.
type ProfiledOracle interface {
	// DistanceProfiled is Distance with merge profiling.
	DistanceProfiled(s, t int32, p *QueryProfile) int64
	// DistanceFromProfiled is Batcher.DistanceFrom with merge profiling.
	DistanceFromProfiled(s int32, targets []int32, dst []int64, p *QueryProfile) []int64
}

// SearchProfiler answers KNN queries while attributing their hub-scan
// work to a QueryProfile, with the exact Searcher.KNN contract.
type SearchProfiler interface {
	KNNProfiled(s int32, k int, p *QueryProfile) ([]Neighbor, error)
}

// DistanceProfiled is Distance with merge profiling (see
// ProfiledOracle).
func (ix *Index) DistanceProfiled(s, t int32, p *QueryProfile) int64 {
	return int64(ix.ix.DistanceProfiled(s, t, p))
}

// DistanceFromProfiled is DistanceFrom with merge profiling (see
// ProfiledOracle).
func (ix *Index) DistanceFromProfiled(s int32, targets []int32, dst []int64, p *QueryProfile) []int64 {
	return ix.ix.DistanceFromProfiled(s, targets, dst, p)
}

// KNNProfiled is KNN with hub-scan profiling (see SearchProfiler).
func (ix *Index) KNNProfiled(s int32, k int, p *QueryProfile) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	return ix.ix.KNNProfiled(s, k, p), nil
}

// DistanceProfiled is Distance with merge profiling (see
// ProfiledOracle).
func (ix *DirectedIndex) DistanceProfiled(s, t int32, p *QueryProfile) int64 {
	return int64(ix.ix.DistanceProfiled(s, t, p))
}

// DistanceFromProfiled is DistanceFrom with merge profiling (see
// ProfiledOracle).
func (ix *DirectedIndex) DistanceFromProfiled(s int32, targets []int32, dst []int64, p *QueryProfile) []int64 {
	return ix.ix.DistanceFromProfiled(s, targets, dst, p)
}

// KNNProfiled is KNN with hub-scan profiling (see SearchProfiler).
func (ix *DirectedIndex) KNNProfiled(s int32, k int, p *QueryProfile) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	return ix.ix.KNNProfiled(s, k, p), nil
}

// DistanceProfiled is Distance with merge profiling (see
// ProfiledOracle).
func (ix *WeightedIndex) DistanceProfiled(s, t int32, p *QueryProfile) int64 {
	d := ix.ix.DistanceProfiled(s, t, p)
	if d == core.UnreachableW {
		return Unreachable
	}
	return int64(d)
}

// DistanceFromProfiled is DistanceFrom with merge profiling (see
// ProfiledOracle).
func (ix *WeightedIndex) DistanceFromProfiled(s int32, targets []int32, dst []int64, p *QueryProfile) []int64 {
	return ix.ix.DistanceFromProfiled(s, targets, dst, p)
}

// KNNProfiled is KNN with hub-scan profiling (see SearchProfiler).
func (ix *WeightedIndex) KNNProfiled(s int32, k int, p *QueryProfile) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	return ix.ix.KNNProfiled(s, k, p), nil
}

// DistanceProfiled is Distance with merge profiling (see
// ProfiledOracle). Like every DynamicIndex read it needs external
// synchronization against InsertEdge.
func (d *DynamicIndex) DistanceProfiled(s, t int32, p *QueryProfile) int64 {
	return int64(d.di.DistanceProfiled(s, t, p))
}

// DistanceFromProfiled is DistanceFrom with merge profiling (see
// ProfiledOracle).
func (d *DynamicIndex) DistanceFromProfiled(s int32, targets []int32, dst []int64, p *QueryProfile) []int64 {
	return d.di.DistanceFromProfiled(s, targets, dst, p)
}

// DistanceProfiled is Distance with merge profiling straight from the
// mapping (see ProfiledOracle).
//
//pllvet:ignore capassert fi.o is always one of the package's index variants, all ProfiledOracle by construction
func (fi *FlatIndex) DistanceProfiled(s, t int32, p *QueryProfile) int64 {
	return fi.o.(ProfiledOracle).DistanceProfiled(s, t, p)
}

// DistanceFromProfiled is DistanceFrom with merge profiling (see
// ProfiledOracle).
//
//pllvet:ignore capassert fi.o is always one of the package's index variants, all ProfiledOracle by construction
func (fi *FlatIndex) DistanceFromProfiled(s int32, targets []int32, dst []int64, p *QueryProfile) []int64 {
	return fi.o.(ProfiledOracle).DistanceFromProfiled(s, targets, dst, p)
}

// KNNProfiled is KNN with hub-scan profiling (see SearchProfiler). The
// wrapped oracle may be a *DynamicIndex, which cannot search — that
// case falls back to the Searcher assertion's contract.
func (fi *FlatIndex) KNNProfiled(s int32, k int, p *QueryProfile) ([]Neighbor, error) {
	if sp, ok := fi.o.(SearchProfiler); ok {
		return sp.KNNProfiled(s, k, p)
	}
	sr, ok := fi.o.(Searcher)
	if !ok {
		return nil, ErrNoSearch
	}
	return sr.KNN(s, k)
}
