package pll_test

// Flat (version-2) container coverage: byte/answer equivalence against
// the version-1 format across all variants × paths × bit-parallel,
// zero-copy Open on files, rejection of malformed input, and
// concurrent FlatIndex querying (run under -race in CI).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pll/pll"
)

// flatCase builds one oracle flavor for the equivalence matrix.
type flatCase struct {
	name   string
	oracle pll.Oracle
}

// buildFlatCases constructs every serializable variant over one small
// graph family (plus an isolated vertex to exercise empty labels).
func buildFlatCases(t testing.TB) []flatCase {
	t.Helper()
	edges := []pll.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0},
		{U: 1, V: 4}, {U: 4, V: 5}, {U: 5, V: 6}, {U: 2, V: 6},
	}
	g, err := pll.NewGraph(8, edges) // vertex 7 isolated
	if err != nil {
		t.Fatal(err)
	}
	dg, err := pll.NewDigraph(8, edges)
	if err != nil {
		t.Fatal(err)
	}
	wedges := make([]pll.WeightedEdge, len(edges))
	for i, e := range edges {
		wedges[i] = pll.WeightedEdge{U: e.U, V: e.V, Weight: uint32(i%4 + 1)}
	}
	wg, err := pll.NewWeightedGraph(8, wedges)
	if err != nil {
		t.Fatal(err)
	}

	must := func(o pll.Oracle, err error) pll.Oracle {
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	return []flatCase{
		{"undirected", must(pll.BuildIndex(g, pll.WithBitParallel(0)))},
		{"undirected-bp4", must(pll.BuildIndex(g, pll.WithBitParallel(4)))},
		{"undirected-paths", must(pll.BuildIndex(g, pll.WithPaths()))},
		{"directed", must(pll.BuildDirected(dg))},
		{"weighted", must(pll.BuildWeighted(wg))},
		{"dynamic", must(pll.BuildDynamic(g))},
	}
}

// sameAnswers compares two oracles exhaustively: every pair's distance
// and, when both sides support it, the path endpoints and length.
func sameAnswers(t *testing.T, name string, want, got pll.Oracle) {
	t.Helper()
	if want.NumVertices() != got.NumVertices() {
		t.Fatalf("%s: NumVertices %d vs %d", name, want.NumVertices(), got.NumVertices())
	}
	n := int32(want.NumVertices())
	for s := int32(0); s < n; s++ {
		for v := int32(0); v < n; v++ {
			dw, dg := want.Distance(s, v), got.Distance(s, v)
			if dw != dg {
				t.Fatalf("%s: d(%d,%d) = %d, want %d", name, s, v, dg, dw)
			}
			pw, errW := want.Path(s, v)
			pg, errG := got.Path(s, v)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("%s: path(%d,%d) errors diverge: %v vs %v", name, s, v, errW, errG)
			}
			if errW == nil && !equalPath(pw, pg) {
				t.Fatalf("%s: path(%d,%d) = %v, want %v", name, s, v, pg, pw)
			}
		}
	}
	// A live DynamicIndex estimates its footprint over growable
	// per-vertex slices; what serializes is the frozen snapshot, so
	// that is the stats baseline.
	if di, ok := want.(*pll.DynamicIndex); ok {
		want = di.Freeze()
	}
	sw, sg := want.Stats(), got.Stats()
	if sw != sg {
		t.Fatalf("%s: stats diverge:\n built: %+v\nloaded: %+v", name, sw, sg)
	}
}

func equalPath(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFlatRoundTripAllVariants proves the tentpole equivalence: for
// every variant, flat bytes heap-load (Load) into an oracle whose
// answers match the original exhaustively, and whose version-1
// re-serialization is byte-identical to the original's — so v1 -> flat
// -> v1 conversion is lossless.
func TestFlatRoundTripAllVariants(t *testing.T) {
	for _, tc := range buildFlatCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			var v1 bytes.Buffer
			if _, err := tc.oracle.WriteTo(&v1); err != nil {
				t.Fatal(err)
			}
			var flat bytes.Buffer
			if _, err := pll.WriteFlat(&flat, tc.oracle); err != nil {
				t.Fatal(err)
			}
			loaded, err := pll.Load(bytes.NewReader(flat.Bytes()))
			if err != nil {
				t.Fatalf("Load(flat): %v", err)
			}
			sameAnswers(t, tc.name, tc.oracle, loaded)
			var back bytes.Buffer
			if _, err := loaded.WriteTo(&back); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(v1.Bytes(), back.Bytes()) {
				t.Fatalf("v1 -> flat -> v1 is not byte-identical (%d vs %d bytes)",
					v1.Len(), back.Len())
			}
		})
	}
}

// TestOpenServesFlatFiles proves the mmap path: Open answers match the
// heap-loaded oracle on every variant, the variant tag is preserved,
// WriteTo inverts the conversion byte-identically, and Close is
// idempotent.
func TestOpenServesFlatFiles(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range buildFlatCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".pllbox")
			if err := pll.WriteFlatFile(path, tc.oracle); err != nil {
				t.Fatal(err)
			}
			fi, err := pll.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer fi.Close()
			sameAnswers(t, tc.name, tc.oracle, fi)

			wantVariant := tc.oracle.Stats().Variant
			if fi.Variant() != wantVariant {
				t.Fatalf("variant %s, want %s", fi.Variant(), wantVariant)
			}
			var v1, back bytes.Buffer
			if _, err := tc.oracle.WriteTo(&v1); err != nil {
				t.Fatal(err)
			}
			if _, err := fi.WriteTo(&back); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(v1.Bytes(), back.Bytes()) {
				t.Fatal("FlatIndex.WriteTo is not byte-identical to the source index's")
			}
			if err := fi.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := fi.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
		})
	}
}

// TestOpenBatchesZeroCopy covers the Batcher capability on the mapped
// oracle and the zero-copy property itself.
func TestOpenBatchesZeroCopy(t *testing.T) {
	tc := buildFlatCases(t)[1] // undirected-bp4
	path := filepath.Join(t.TempDir(), "bp.pllbox")
	if err := pll.WriteFlatFile(path, tc.oracle); err != nil {
		t.Fatal(err)
	}
	fi, err := pll.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fi.Close()
	if !fi.ZeroCopy() {
		t.Skip("host cannot alias file bytes (big-endian); zero-copy not applicable")
	}
	n := int32(fi.NumVertices())
	targets := make([]int32, n)
	for i := range targets {
		targets[i] = int32(i)
	}
	for s := int32(0); s < n; s++ {
		got := fi.DistanceFrom(s, targets, nil)
		for i, tv := range targets {
			if want := tc.oracle.Distance(s, tv); got[i] != want {
				t.Fatalf("DistanceFrom(%d)[%d] = %d, want %d", s, tv, got[i], want)
			}
		}
	}
}

// TestOpenRejectsNonFlat: version-1 containers and legacy payloads are
// valid indexes but not Open-able; the sentinel tells callers to fall
// back to LoadFile.
func TestOpenRejectsNonFlat(t *testing.T) {
	dir := t.TempDir()
	tc := buildFlatCases(t)[0]

	v1 := filepath.Join(dir, "v1.pllbox")
	if err := pll.WriteFile(v1, tc.oracle); err != nil {
		t.Fatal(err)
	}
	if _, err := pll.Open(v1); !errors.Is(err, pll.ErrNotFlat) {
		t.Fatalf("Open(v1 container): got %v, want ErrNotFlat", err)
	}

	// Bare legacy payload = v1 container minus its 16-byte header.
	var buf bytes.Buffer
	if _, err := tc.oracle.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(dir, "legacy.pll")
	if err := os.WriteFile(legacy, buf.Bytes()[16:], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pll.Open(legacy); !errors.Is(err, pll.ErrNotFlat) {
		t.Fatalf("Open(legacy payload): got %v, want ErrNotFlat", err)
	}

	if _, err := pll.Open(filepath.Join(dir, "missing.pllbox")); err == nil {
		t.Fatal("Open(missing) succeeded")
	}
}

// TestOpenAndLoadRejectMalformedFlat corrupts a valid flat container in
// targeted ways; both the mmap and the heap loader must fail with
// ErrBadIndexFile and never panic.
func TestOpenAndLoadRejectMalformedFlat(t *testing.T) {
	tc := buildFlatCases(t)[1] // bp variant: most sections
	var buf bytes.Buffer
	if _, err := pll.WriteFlat(&buf, tc.oracle); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	dir := t.TempDir()

	check := func(name string, mut []byte) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if fi, err := pll.Open(path); err == nil {
			fi.Close()
			t.Fatalf("%s: Open accepted malformed input", name)
		} else if !errors.Is(err, pll.ErrBadIndexFile) {
			t.Fatalf("%s: Open error %v does not wrap ErrBadIndexFile", name, err)
		}
		if _, err := pll.Load(bytes.NewReader(mut)); !errors.Is(err, pll.ErrBadIndexFile) {
			t.Fatalf("%s: Load error does not wrap ErrBadIndexFile", name)
		}
	}

	for _, cut := range []int{33, 48, len(valid) / 2, len(valid) - 1} {
		check(fmt.Sprintf("truncated-%d", cut), append([]byte(nil), valid[:cut]...))
	}
	flip := func(off int) []byte {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xff
		return mut
	}
	check("bad-section-count", flip(24))
	check("bad-section-id", flip(32))
	check("bad-section-elem", flip(36))
	check("bad-section-off", flip(40))
	check("bad-section-count-field", flip(48))
	// Corrupt the first permutation entry (first section payload): the
	// payload starts 8-aligned after header, flat header and table.
	nsec := int(binary.LittleEndian.Uint32(valid[24:28]))
	permOff := (16 + 16 + 24*nsec + 7) &^ 7
	check("bad-perm", flip(permOff))
}

// TestFlatConcurrentQueries hammers one mapped FlatIndex from many
// goroutines — point queries, paths-free batches and Stats — so the
// race detector can certify the zero-copy read path (CI runs this test
// under -race explicitly).
func TestFlatConcurrentQueries(t *testing.T) {
	tc := buildFlatCases(t)[1] // undirected-bp4
	path := filepath.Join(t.TempDir(), "conc.pllbox")
	if err := pll.WriteFlatFile(path, tc.oracle); err != nil {
		t.Fatal(err)
	}
	fi, err := pll.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fi.Close()

	n := int32(fi.NumVertices())
	targets := make([]int32, n)
	for i := range targets {
		targets[i] = int32(i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			var dst []int64
			for iter := 0; iter < 200; iter++ {
				s := (seed + int32(iter)) % n
				dst = fi.DistanceFrom(s, targets, dst)
				for i, tv := range targets {
					if got := fi.Distance(s, tv); got != dst[i] {
						t.Errorf("concurrent d(%d,%d): %d vs batch %d", s, tv, got, dst[i])
						return
					}
				}
				_ = fi.Stats()
			}
		}(int32(w))
	}
	wg.Wait()
}
