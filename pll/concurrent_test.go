package pll

import (
	"sync"
	"testing"
)

// line returns the path graph 0-1-...-(n-1).
func line(n int) *Graph {
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{U: int32(i), V: int32(i + 1)}
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestConcurrentOracleStatic(t *testing.T) {
	ix, err := Build(line(6))
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrentOracle(ix)
	if d := c.Distance(0, 5); d != 5 {
		t.Fatalf("Distance(0,5) = %d, want 5", d)
	}
	if c.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d", c.NumVertices())
	}
	if _, err := c.InsertEdge(0, 5); err != ErrNotDynamic {
		t.Fatalf("InsertEdge on static = %v, want ErrNotDynamic", err)
	}
	if got := c.Stats().Variant; got != VariantUndirected {
		t.Fatalf("variant = %v", got)
	}
	if c.Snapshot() != Oracle(ix) {
		t.Fatal("Snapshot should return the wrapped oracle")
	}
}

func TestConcurrentOracleDynamicUpdates(t *testing.T) {
	di, err := BuildDynamic(line(6))
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrentOracle(di)
	if d := c.Distance(0, 5); d != 5 {
		t.Fatalf("before insert: Distance(0,5) = %d, want 5", d)
	}
	if _, err := c.InsertEdge(0, 5); err != nil {
		t.Fatal(err)
	}
	if d := c.Distance(0, 5); d != 1 {
		t.Fatalf("after insert: Distance(0,5) = %d, want 1", d)
	}
}

func TestConcurrentOracleSwap(t *testing.T) {
	small, err := Build(line(4))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(line(10))
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrentOracle(small)
	if g := c.Generation(); g != 0 {
		t.Fatalf("fresh generation = %d", g)
	}
	old := c.Swap(big)
	if old != Oracle(small) {
		t.Fatal("Swap should return the previous oracle")
	}
	if c.Generation() != 1 {
		t.Fatalf("generation after swap = %d", c.Generation())
	}
	if c.NumVertices() != 10 {
		t.Fatalf("NumVertices after swap = %d", c.NumVertices())
	}
	if d := c.Distance(0, 9); d != 9 {
		t.Fatalf("Distance(0,9) = %d, want 9", d)
	}
}

func TestConcurrentOracleView(t *testing.T) {
	ix, err := Build(line(5))
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrentOracle(ix)
	var n int
	if err := c.View(func(o Oracle) error {
		n = o.NumVertices()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("View saw %d vertices", n)
	}
}

// TestConcurrentOracleRace hammers a dynamic index with concurrent
// readers, one writer inserting shortcut edges, and one swapper
// hot-replacing the whole oracle. Run with -race; correctness of each
// read is only sanity-checked (distances never increase under edge
// insertion on a fixed generation, but swaps reset the oracle, so the
// invariant here is just "exact index answers stay in range").
func TestConcurrentOracleRace(t *testing.T) {
	const n = 40
	di, err := BuildDynamic(line(n))
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrentOracle(di)

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int32) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := (seed + int32(i)) % n
				tt := (seed + 2*int32(i)) % n
				d := c.Distance(s, tt)
				if d < 0 || d >= n {
					t.Errorf("Distance(%d,%d) = %d out of range", s, tt, d)
					return
				}
				c.NumVertices()
			}
		}(int32(r))
	}

	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := int32(0); i < n-2; i++ {
			if _, err := c.InsertEdge(i, i+2); err != nil && err != ErrNotDynamic {
				t.Errorf("InsertEdge: %v", err)
				return
			}
		}
	}()

	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 5; i++ {
			fresh, err := BuildDynamic(line(n))
			if err != nil {
				t.Errorf("rebuild: %v", err)
				return
			}
			c.Swap(fresh)
		}
	}()

	// Let the writer and swapper finish under reader pressure, then
	// release the readers.
	writers.Wait()
	close(stop)
	readers.Wait()
}
