package pll_test

// Batcher capability conformance: DistanceFrom must equal per-pair
// Distance on every variant (including the mapped FlatIndex and the
// ConcurrentOracle wrapper), reuse the destination slice, and the
// deprecated BatchSource wrapper must validate inputs with errors
// instead of panics while following the Oracle int64/-1 convention.

import (
	"path/filepath"
	"testing"

	"pll/pll"
)

// batcherOracles returns every oracle flavor that must implement
// Batcher, including wrappers.
func batcherOracles(t *testing.T) []flatCase {
	cases := buildFlatCases(t)
	// Mapped flat oracle.
	path := filepath.Join(t.TempDir(), "batch.pllbox")
	if err := pll.WriteFlatFile(path, cases[1].oracle); err != nil {
		t.Fatal(err)
	}
	fi, err := pll.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fi.Close() })
	cases = append(cases, flatCase{"flat", fi})
	// Concurrent wrappers around a static and a dynamic oracle.
	cases = append(cases,
		flatCase{"concurrent-static", pll.NewConcurrentOracle(cases[0].oracle)},
		flatCase{"concurrent-dynamic", pll.NewConcurrentOracle(cases[5].oracle)},
	)
	return cases
}

func TestBatcherConformanceAllVariants(t *testing.T) {
	for _, tc := range batcherOracles(t) {
		t.Run(tc.name, func(t *testing.T) {
			b, ok := tc.oracle.(pll.Batcher)
			if !ok {
				t.Fatalf("%T does not implement Batcher", tc.oracle)
			}
			n := int32(tc.oracle.NumVertices())
			targets := make([]int32, 0, n)
			for v := n - 1; v >= 0; v-- { // reversed: order must be preserved
				targets = append(targets, v)
			}
			var dst []int64
			for s := int32(0); s < n; s++ {
				dst = b.DistanceFrom(s, targets, dst)
				if len(dst) != len(targets) {
					t.Fatalf("DistanceFrom returned %d distances for %d targets", len(dst), len(targets))
				}
				for i, tv := range targets {
					if want := tc.oracle.Distance(s, tv); dst[i] != want {
						t.Fatalf("DistanceFrom(%d)[target %d] = %d, want Distance %d", s, tv, dst[i], want)
					}
				}
			}
			// Capacity reuse: an ample dst must come back with the same
			// backing array; an empty batch must return an empty slice.
			big := make([]int64, 2*n)
			out := b.DistanceFrom(0, targets, big)
			if len(out) != int(n) || &out[0] != &big[0] {
				t.Fatal("DistanceFrom did not reuse the destination slice")
			}
			if got := b.DistanceFrom(0, nil, nil); len(got) != 0 {
				t.Fatalf("empty batch returned %d distances", len(got))
			}
		})
	}
}

// TestBatchSourceValidates covers the deprecated wrapper's repaired
// semantics: errors (not panics) for out-of-range vertices, int64
// distances with Unreachable (-1), and Reset keeping the old source on
// a rejected input.
func TestBatchSourceValidates(t *testing.T) {
	g, err := pll.NewGraph(4, []pll.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pll.BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ix.NewBatchSource(-1); err == nil {
		t.Fatal("NewBatchSource(-1) succeeded")
	}
	if _, err := ix.NewBatchSource(4); err == nil {
		t.Fatal("NewBatchSource(n) succeeded")
	}
	bs, err := ix.NewBatchSource(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Distance(99); err == nil {
		t.Fatal("Distance(out of range) succeeded")
	}
	d, err := bs.Distance(2)
	if err != nil || d != 2 {
		t.Fatalf("Distance(2) = %d, %v; want 2, nil", d, err)
	}
	d, err = bs.Distance(3) // vertex 3 is isolated
	if err != nil || d != pll.Unreachable {
		t.Fatalf("Distance(disconnected) = %d, %v; want -1, nil", d, err)
	}
	if err := bs.Reset(-7); err == nil {
		t.Fatal("Reset(-7) succeeded")
	}
	if bs.Source() != 0 {
		t.Fatalf("rejected Reset moved the source to %d", bs.Source())
	}
	if err := bs.Reset(2); err != nil {
		t.Fatal(err)
	}
	if d, err := bs.Distance(0); err != nil || d != 2 {
		t.Fatalf("after Reset(2): Distance(0) = %d, %v; want 2, nil", d, err)
	}
}
