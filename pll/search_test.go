package pll_test

// Search-capability conformance: KNN/Range/NearestIn answers must be
// exact (vs BFS/Dijkstra ground truth) and *identical* across every
// serving form of the same index — heap-built, heap-loaded, memory-
// mapped flat (lazy inversion), memory-mapped flat with the persisted
// search sections, and behind a ConcurrentOracle — because the result
// ordering contract (distance, then vertex ID, smallest IDs at a
// k-cutoff) leaves no room for implementation-defined variation.

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/pll"
)

// searchCase is one variant under test: an oracle plus its
// ground-truth distance rows.
type searchCase struct {
	name  string
	o     pll.Oracle
	truth func(s int32) []int64
	n     int
}

func searchCases(t *testing.T) []searchCase {
	t.Helper()
	const n, m, seed = 64, 160, 9
	var cases []searchCase

	gg := gen.ErdosRenyi(n, m, seed)
	pg, err := pll.NewGraph(n, gg.Edges())
	if err != nil {
		t.Fatal(err)
	}
	undirTruth := func(s int32) []int64 {
		row := bfs.AllDistances(gg, s)
		out := make([]int64, len(row))
		for i, d := range row {
			out[i] = int64(d)
		}
		return out
	}
	for _, bp := range []int{0, 8} {
		ix, err := pll.BuildIndex(pg, pll.WithBitParallel(bp), pll.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, searchCase{name: map[int]string{0: "undirected-bp0", 8: "undirected-bp8"}[bp], o: ix, truth: undirTruth, n: n})
	}

	dg := gen.RandomDigraph(n, 2*m, seed)
	arcs := make([]pll.Edge, 0, 2*m)
	for v := int32(0); v < int32(n); v++ {
		for _, u := range dg.OutNeighbors(v) {
			arcs = append(arcs, pll.Edge{U: v, V: u})
		}
	}
	pdg, err := pll.NewDigraph(n, arcs)
	if err != nil {
		t.Fatal(err)
	}
	dix, err := pll.BuildDirected(pdg, pll.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, searchCase{name: "directed", o: dix, truth: func(s int32) []int64 {
		row := bfs.DirectedAllDistances(dg, s, true)
		out := make([]int64, len(row))
		for i, d := range row {
			out[i] = int64(d)
		}
		return out
	}, n: n})

	wg := gen.RandomWeights(gg, 1, 9, seed+1)
	var wedges []pll.WeightedEdge
	for v := int32(0); v < int32(n); v++ {
		ws := wg.Weights(v)
		for i, u := range wg.Neighbors(v) {
			if v < u {
				wedges = append(wedges, pll.WeightedEdge{U: v, V: u, Weight: ws[i]})
			}
		}
	}
	pwg, err := pll.NewWeightedGraph(n, wedges)
	if err != nil {
		t.Fatal(err)
	}
	wix, err := pll.BuildWeighted(pwg, pll.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, searchCase{name: "weighted", o: wix, truth: func(s int32) []int64 {
		row := bfs.DijkstraAll(wg, s)
		out := make([]int64, len(row))
		for i, d := range row {
			if d == bfs.InfWeight {
				out[i] = -1
			} else {
				out[i] = int64(d)
			}
		}
		return out
	}, n: n})

	di, err := pll.BuildDynamic(pg, pll.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, searchCase{name: "frozen-dynamic", o: di.Freeze(), truth: undirTruth, n: n})
	return cases
}

// bruteSearch derives the expected answer set from a ground-truth row.
func bruteSearch(row []int64, s int32, radius int64, k int, members map[int32]bool) []pll.Neighbor {
	var out []pll.Neighbor
	for v, d := range row {
		if int32(v) == s || d < 0 {
			continue
		}
		if radius >= 0 && d > radius {
			continue
		}
		if members != nil && !members[int32(v)] {
			continue
		}
		out = append(out, pll.Neighbor{Vertex: int32(v), Distance: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Vertex < out[j].Vertex
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// servingForms wraps one oracle in every production serving form. The
// returned map includes the persisted-search flat container, whose
// answers must match the lazily inverted forms byte for byte.
func servingForms(t *testing.T, tc searchCase) map[string]pll.Oracle {
	t.Helper()
	dir := t.TempDir()
	forms := map[string]pll.Oracle{"heap": tc.o}

	lazyPath := filepath.Join(dir, "lazy.pllbox")
	if err := pll.WriteFlatFile(lazyPath, tc.o); err != nil {
		t.Fatal(err)
	}
	lazy, err := pll.Open(lazyPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lazy.Close() })
	forms["flat-lazy"] = lazy

	persistPath := filepath.Join(dir, "search.pllbox")
	if err := pll.WriteFlatFile(persistPath, tc.o, pll.FlatSearch()); err != nil {
		t.Fatal(err)
	}
	persisted, err := pll.Open(persistPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { persisted.Close() })
	forms["flat-persisted"] = persisted

	// Heap-loading the persisted container must validate and keep the
	// inverted sections.
	heap2, err := pll.LoadFile(persistPath)
	if err != nil {
		t.Fatal(err)
	}
	forms["heap-loaded-v2"] = heap2

	forms["concurrent"] = pll.NewConcurrentOracle(tc.o)
	return forms
}

func TestSearchConformanceAllForms(t *testing.T) {
	for _, tc := range searchCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			members := map[int32]bool{}
			var memberList []int32
			for v := 0; v < tc.n; v += 3 {
				members[int32(v)] = true
				memberList = append(memberList, int32(v))
			}
			forms := servingForms(t, tc)
			// The heap form's answers double as the cross-form reference;
			// they are themselves checked against ground truth first.
			type key struct {
				form string
				q    string
			}
			answers := map[key][]byte{}
			for name, o := range forms {
				sr, ok := o.(pll.Searcher)
				if !ok {
					t.Fatalf("%s does not implement Searcher", name)
				}
				set, err := sr.NewVertexSet(memberList)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range []int32{0, 7, int32(tc.n - 1)} {
					row := tc.truth(s)
					for _, k := range []int{1, 3, tc.n} {
						got, err := sr.KNN(s, k)
						if err != nil {
							t.Fatalf("%s: KNN: %v", name, err)
						}
						if want := bruteSearch(row, s, -1, k, nil); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
							t.Fatalf("%s: KNN(%d,%d) = %v, want %v", name, s, k, got, want)
						}
						b, _ := json.Marshal(got)
						answers[key{name, "knn"}] = append(answers[key{name, "knn"}], b...)

						gotIn, err := sr.NearestIn(s, set, k)
						if err != nil {
							t.Fatalf("%s: NearestIn: %v", name, err)
						}
						if want := bruteSearch(row, s, -1, k, members); !reflect.DeepEqual(gotIn, want) && !(len(gotIn) == 0 && len(want) == 0) {
							t.Fatalf("%s: NearestIn(%d,%d) = %v, want %v", name, s, k, gotIn, want)
						}
						b, _ = json.Marshal(gotIn)
						answers[key{name, "nearest"}] = append(answers[key{name, "nearest"}], b...)
					}
					for _, radius := range []int64{0, 2, 5} {
						got, err := sr.Range(s, radius)
						if err != nil {
							t.Fatalf("%s: Range: %v", name, err)
						}
						if want := bruteSearch(row, s, radius, 0, nil); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
							t.Fatalf("%s: Range(%d,%d) = %v, want %v", name, s, radius, got, want)
						}
						b, _ := json.Marshal(got)
						answers[key{name, "range"}] = append(answers[key{name, "range"}], b...)
					}
				}
			}
			// Byte-identity across forms: in particular the persisted
			// inverted sections must answer exactly like the lazy build.
			for _, q := range []string{"knn", "nearest", "range"} {
				ref := answers[key{"heap", q}]
				for name := range forms {
					if got := answers[key{name, q}]; string(got) != string(ref) {
						t.Fatalf("%s: %s answers differ from the heap form", name, q)
					}
				}
			}
		})
	}
}

// TestSearchPersistedSections pins the container plumbing: FlatSearch
// grows the file, Open still works on both, and a version-1 container
// can never carry the search flag.
func TestSearchPersistedSections(t *testing.T) {
	gg := gen.ErdosRenyi(40, 90, 5)
	pg, err := pll.NewGraph(40, gg.Edges())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pll.BuildIndex(pg, pll.WithBitParallel(4))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plain, search := filepath.Join(dir, "p.pllbox"), filepath.Join(dir, "s.pllbox")
	if err := pll.WriteFlatFile(plain, ix); err != nil {
		t.Fatal(err)
	}
	if err := pll.WriteFlatFile(search, ix, pll.FlatSearch()); err != nil {
		t.Fatal(err)
	}
	sizeOf := func(p string) int64 {
		fi, err := pll.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer fi.Close()
		return fi.MappedBytes()
	}
	if sizeOf(search) <= sizeOf(plain) {
		t.Fatalf("FlatSearch did not grow the container (%d vs %d)", sizeOf(search), sizeOf(plain))
	}
}

// TestSearchConcurrent hammers one index from many goroutines,
// including the very first query (the lazy inversion build) — run
// under -race in CI.
func TestSearchConcurrent(t *testing.T) {
	gg := gen.ErdosRenyi(80, 240, 21)
	pg, err := pll.NewGraph(80, gg.Edges())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pll.BuildIndex(pg, pll.WithBitParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.pllbox")
	if err := pll.WriteFlatFile(path, ix); err != nil {
		t.Fatal(err)
	}
	fi, err := pll.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fi.Close()

	for _, sr := range []pll.Searcher{ix, fi} {
		set, err := sr.NewVertexSet([]int32{1, 5, 9, 13, 44})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := sr.KNN(0, 10)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					s := int32((g*50 + i) % 80)
					if _, err := sr.KNN(s, 5); err != nil {
						t.Error(err)
						return
					}
					if _, err := sr.Range(s, 3); err != nil {
						t.Error(err)
						return
					}
					if _, err := sr.NearestIn(s, set, 2); err != nil {
						t.Error(err)
						return
					}
					got, err := sr.KNN(0, 10)
					if err != nil || !reflect.DeepEqual(got, ref) {
						t.Errorf("concurrent KNN diverged: %v (err %v)", got, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestSearchCapabilityErrors pins the error surface: dynamic indexes
// cannot search, sets die with their snapshot, foreign sets are
// rejected, bad sources error instead of panicking.
func TestSearchCapabilityErrors(t *testing.T) {
	gg := gen.ErdosRenyi(30, 60, 13)
	pg, err := pll.NewGraph(30, gg.Edges())
	if err != nil {
		t.Fatal(err)
	}
	di, err := pll.BuildDynamic(pg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pll.Oracle(di).(pll.Searcher); ok {
		t.Fatal("DynamicIndex must not implement Searcher")
	}
	co := pll.NewConcurrentOracle(di)
	if _, err := co.KNN(0, 3); !errors.Is(err, pll.ErrNoSearch) {
		t.Fatalf("KNN on a wrapped dynamic index: err = %v, want ErrNoSearch", err)
	}

	ix, err := pll.BuildIndex(pg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.KNN(99, 3); err == nil {
		t.Fatal("KNN accepted an out-of-range source")
	}
	if _, err := ix.NearestIn(0, nil, 3); !errors.Is(err, pll.ErrForeignSet) {
		t.Fatalf("NearestIn(nil set): err = %v, want ErrForeignSet", err)
	}

	co = pll.NewConcurrentOracle(ix)
	set, err := co.NewVertexSet([]int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.NearestIn(0, set, 2); err != nil {
		t.Fatalf("NearestIn on the registering snapshot: %v", err)
	}
	ix2, err := pll.BuildIndex(pg)
	if err != nil {
		t.Fatal(err)
	}
	co.Swap(ix2)
	if _, err := co.NearestIn(0, set, 2); !errors.Is(err, pll.ErrStaleSet) {
		t.Fatalf("NearestIn after Swap: err = %v, want ErrStaleSet", err)
	}
	fresh, err := co.NewVertexSet([]int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.NearestIn(0, fresh, 2); err != nil {
		t.Fatalf("NearestIn after re-registering: %v", err)
	}
}
