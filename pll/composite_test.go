package pll_test

// CompositeSearcher conformance: composite answers must be exact (vs
// the materialize-and-compose reference over BFS/Dijkstra ground truth)
// and byte-identical across every serving form of the same index —
// heap-built, heap-loaded, memory-mapped flat (lazy inversion),
// memory-mapped flat with persisted search sections, and behind a
// ConcurrentOracle — because the (score, vertex ID) ordering contract
// leaves no room for implementation-defined variation.

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pll/internal/gen"
	"pll/pll"
)

// naivePllComposite is the materialize-and-compose reference: evaluate
// the clause tree per vertex against ground-truth rows, score, sort by
// (reachability class, score, vertex), trim to exactly k.
func naivePllComposite(n int, rows [][]int64, req *pll.CompositeRequest) *pll.CompositeResult {
	var ms []pll.CompositeMatch
	for v := int32(0); int(v) < n; v++ {
		if !naivePllClause(rows, req.Where, v) {
			continue
		}
		m := pll.CompositeMatch{Vertex: v}
		if len(req.Rank.Terms) > 0 {
			m.Terms = make([]int64, len(req.Rank.Terms))
		}
		for i, t := range req.Rank.Terms {
			d := rows[t.Source][v]
			m.Terms[i] = d
			if d < 0 {
				m.Score = -1
			} else if m.Score >= 0 {
				if w := t.Weight * d; req.Rank.By == "max" {
					if w > m.Score {
						m.Score = w
					}
				} else {
					m.Score += w
				}
			}
		}
		ms = append(ms, m)
	}
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0; j-- {
			a, b := ms[j], ms[j-1]
			less := false
			if (a.Score < 0) != (b.Score < 0) {
				less = b.Score < 0
			} else if a.Score != b.Score {
				less = a.Score < b.Score
			} else {
				less = a.Vertex < b.Vertex
			}
			if !less {
				break
			}
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	out := &pll.CompositeResult{Total: len(ms), Exact: true}
	if req.K > 0 && len(ms) > req.K {
		ms = ms[:req.K]
	}
	out.Matches = ms
	return out
}

func naivePllClause(rows [][]int64, c *pll.CompositeClause, v int32) bool {
	switch {
	case c.Near != nil:
		d := rows[c.Near.Source][v]
		return d >= 0 && d <= c.Near.MaxDist
	case c.In != nil:
		for _, m := range c.In {
			if m == v {
				return true
			}
		}
		return false
	case c.Not != nil:
		return !naivePllClause(rows, c.Not, v)
	case c.And != nil:
		for _, k := range c.And {
			if !naivePllClause(rows, k, v) {
				return false
			}
		}
		return true
	default:
		for _, k := range c.Or {
			if naivePllClause(rows, k, v) {
				return true
			}
		}
		return false
	}
}

// compositeRequests yields a deterministic request mix: the scenario
// shapes from the docs (geofence AND, friend-of-either OR, exclusion
// AND-NOT, in-set filter, weighted top-k) plus seeded random trees.
func compositeRequests(rng *rand.Rand, n int, maxDist int64) []*pll.CompositeRequest {
	near := func(s int32, d int64) *pll.CompositeClause {
		return &pll.CompositeClause{Near: &pll.NearClause{Source: s, MaxDist: d}}
	}
	reqs := []*pll.CompositeRequest{
		{Where: &pll.CompositeClause{And: []*pll.CompositeClause{near(0, 3), near(1, 4)}}},
		{Where: &pll.CompositeClause{Or: []*pll.CompositeClause{near(2, 2), near(3, 2)}}, K: 5},
		{Where: &pll.CompositeClause{And: []*pll.CompositeClause{
			near(0, 4), {Not: near(5, 1)},
		}}, K: 3},
		{Where: &pll.CompositeClause{And: []*pll.CompositeClause{
			near(1, 5), {In: []int32{0, 3, 6, 9, 12, 15}},
		}}},
		{Where: near(4, 3), Rank: &pll.CompositeRank{
			By:    "max",
			Terms: []pll.CompositeTerm{{Source: 4, Weight: 2}, {Source: 7, Weight: 1}},
		}, K: 4},
	}
	for trial := 0; trial < 40; trial++ {
		var clause func(depth int, underAnd bool) *pll.CompositeClause
		clause = func(depth int, underAnd bool) *pll.CompositeClause {
			if depth <= 0 || rng.Intn(3) == 0 {
				if rng.Intn(4) == 0 {
					count := 1 + rng.Intn(4)
					members := make([]int32, 0, count)
					for i := 0; i < count; i++ {
						members = append(members, int32(rng.Intn(n)))
					}
					return &pll.CompositeClause{In: members}
				}
				return near(int32(rng.Intn(n)), int64(rng.Intn(int(maxDist)+1)))
			}
			if rng.Intn(2) == 0 {
				kids := []*pll.CompositeClause{clause(depth-1, false)}
				for extra := rng.Intn(2); extra > 0; extra-- {
					if rng.Intn(3) == 0 {
						kids = append(kids, &pll.CompositeClause{Not: clause(depth-1, false)})
					} else {
						kids = append(kids, clause(depth-1, true))
					}
				}
				return &pll.CompositeClause{And: kids}
			}
			kids := []*pll.CompositeClause{clause(depth-1, false)}
			for extra := rng.Intn(2); extra > 0; extra-- {
				kids = append(kids, clause(depth-1, false))
			}
			return &pll.CompositeClause{Or: kids}
		}
		req := &pll.CompositeRequest{Where: clause(3, false), K: rng.Intn(6)}
		if rng.Intn(3) == 0 {
			req.Rank = &pll.CompositeRank{By: "max"}
		}
		reqs = append(reqs, req)
	}
	return reqs
}

func TestCompositeConformanceAllForms(t *testing.T) {
	for _, tc := range searchCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			rows := make([][]int64, tc.n)
			for s := 0; s < tc.n; s++ {
				rows[s] = tc.truth(int32(s))
			}
			var maxDist int64 = 1
			for _, row := range rows {
				for _, d := range row {
					if d > maxDist {
						maxDist = d
					}
				}
			}
			forms := servingForms(t, tc)
			heapOracle := forms["heap"].(pll.CompositeSearcher)
			rng := rand.New(rand.NewSource(31))
			for i, req := range compositeRequests(rng, tc.n, maxDist) {
				req.Normalize()
				want := naivePllComposite(tc.n, rows, req)
				base, err := heapOracle.Composite(req)
				if err != nil {
					t.Fatalf("request %d: heap Composite: %v", i, err)
				}
				if !reflect.DeepEqual(base.Matches, want.Matches) {
					t.Fatalf("request %d: heap matches diverge from reference\nreq: %s\ngot:  %+v\nwant: %+v",
						i, mustJSON(req), base.Matches, want.Matches)
				}
				if base.Exact && base.Total != want.Total {
					t.Fatalf("request %d: exact Total %d, want %d", i, base.Total, want.Total)
				}
				for name, o := range forms {
					cs, ok := o.(pll.CompositeSearcher)
					if !ok {
						t.Fatalf("form %s does not implement CompositeSearcher", name)
					}
					got, err := cs.Composite(req)
					if err != nil {
						t.Fatalf("request %d on %s: %v", i, name, err)
					}
					if !reflect.DeepEqual(got, base) {
						t.Fatalf("request %d: form %s diverges from heap\ngot:  %+v\nheap: %+v",
							i, name, got, base)
					}
				}
			}
		})
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return err.Error()
	}
	return string(b)
}

// TestCompositeConcurrent hammers Composite from many goroutines on a
// freshly built index (racing the lazy inversion build), a persisted
// flat mapping and a ConcurrentOracle. Run with -race.
func TestCompositeConcurrent(t *testing.T) {
	const n = 80
	gg := gen.ErdosRenyi(n, 220, 3)
	pg, err := pll.NewGraph(n, gg.Edges())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pll.BuildIndex(pg, pll.WithBitParallel(4), pll.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	forms := []pll.CompositeSearcher{ix, pll.NewConcurrentOracle(ix)}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				// Each goroutine builds its own request: Composite
				// normalizes requests in place, so sharing one value
				// across goroutines would race.
				a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
				req := &pll.CompositeRequest{
					Where: &pll.CompositeClause{And: []*pll.CompositeClause{
						{Near: &pll.NearClause{Source: a, MaxDist: int64(1 + rng.Intn(4))}},
						{Near: &pll.NearClause{Source: b, MaxDist: int64(1 + rng.Intn(4))}},
					}},
					K: 1 + rng.Intn(5),
				}
				if _, err := forms[i%len(forms)].Composite(req); err != nil {
					t.Errorf("concurrent Composite: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
}

// TestCompositeDynamicNoSearch pins the capability boundary: a
// ConcurrentOracle over a DynamicIndex reports ErrNoSearch, and the
// raw DynamicIndex does not satisfy the interface at all.
func TestCompositeDynamicNoSearch(t *testing.T) {
	pg, err := pll.NewGraph(4, []pll.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	di, err := pll.BuildDynamic(pg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := any(di).(pll.CompositeSearcher); ok {
		t.Fatal("DynamicIndex unexpectedly implements CompositeSearcher")
	}
	co := pll.NewConcurrentOracle(di)
	req := &pll.CompositeRequest{Where: &pll.CompositeClause{Near: &pll.NearClause{Source: 0, MaxDist: 2}}}
	if _, err := co.Composite(req); !errors.Is(err, pll.ErrNoSearch) {
		t.Fatalf("Composite on dynamic oracle: err = %v, want ErrNoSearch", err)
	}
	// Freezing restores the capability.
	frozen := di.Freeze()
	if _, err := frozen.Composite(req); err != nil {
		t.Fatalf("Composite on frozen index: %v", err)
	}
}

var fuzzCompositeOracle struct {
	once sync.Once
	ix   *pll.Index
}

// FuzzCompositeDecode feeds arbitrary JSON through the request decoder
// and, when it validates, executes it: malformed input must error
// cleanly and valid input must never panic.
func FuzzCompositeDecode(f *testing.F) {
	seeds := []string{
		`{"where":{"near":{"source":0,"max_dist":3}}}`,
		`{"where":{"and":[{"near":{"source":0,"max_dist":3}},{"near":{"source":1,"max_dist":2}}]},"k":5}`,
		`{"where":{"or":[{"near":{"source":2,"max_dist":1}},{"in":[1,3,5]}]}}`,
		`{"where":{"and":[{"near":{"source":0,"max_dist":9}},{"not":{"near":{"source":3,"max_dist":1}}}]}}`,
		`{"where":{"near":{"source":4,"max_dist":2}},"rank":{"by":"max","terms":[{"source":4,"weight":2},{"source":1}]},"k":3}`,
		`{"where":{"in":[0,0,0]},"rank":{"by":"nope"}}`,
		`{"where":{"near":{"source":-1,"max_dist":-5}},"k":-2}`,
		`{"where":{"and":[]}}`,
		`[1,2,3]`,
		`{"where":{"near":{"source":0,"max_dist":18446744073709551615}}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzCompositeOracle.once.Do(func() {
			pg, err := pll.NewGraph(12, []pll.Edge{
				{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
				{U: 4, V: 5}, {U: 0, V: 5}, {U: 6, V: 7}, {U: 7, V: 8},
			})
			if err != nil {
				panic(err)
			}
			ix, err := pll.BuildIndex(pg, pll.WithBitParallel(2))
			if err != nil {
				panic(err)
			}
			fuzzCompositeOracle.ix = ix
		})
		var req pll.CompositeRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		res, err := fuzzCompositeOracle.ix.Composite(&req)
		if err != nil {
			return
		}
		if res.Total < len(res.Matches) {
			t.Fatalf("Total %d below match count %d", res.Total, len(res.Matches))
		}
		for i := 1; i < len(res.Matches); i++ {
			a, b := res.Matches[i-1], res.Matches[i]
			if a.Score >= 0 && b.Score >= 0 && a.Score > b.Score {
				t.Fatalf("matches out of order: %+v before %+v", a, b)
			}
			if a.Score < 0 && b.Score >= 0 {
				t.Fatalf("unreachable match %+v sorted before reachable %+v", a, b)
			}
		}
	})
}
