package pll

import (
	"bytes"
	"testing"
)

func TestPublicCompressedRoundTrip(t *testing.T) {
	g := square()
	ix, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.SaveCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Distance(0, 2) != 2 {
		t.Fatal("compressed round trip broke queries")
	}
}

func TestPublicCompressedFile(t *testing.T) {
	g := square()
	ix, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/c.pllc"
	if err := ix.SaveCompressedFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCompressedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Distance(1, 3) != 2 {
		t.Fatal("compressed file index wrong")
	}
}

func TestPublicWorkers(t *testing.T) {
	g := square()
	ix, err := Build(g, WithWorkers(4), WithBitParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Distance(0, 2) != 2 {
		t.Fatal("parallel build wrong")
	}
}

func TestPublicDynamic(t *testing.T) {
	g, err := NewGraph(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	di, err := BuildDynamic(g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if di.Distance(0, 3) != Unreachable {
		t.Fatal("pre-insert distance wrong")
	}
	if _, err := di.InsertEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if d := di.Distance(0, 3); d != 3 {
		t.Fatalf("post-insert distance = %d, want 3", d)
	}
	if di.NumVertices() != 4 || di.AvgLabelSize() <= 0 {
		t.Fatal("dynamic accessors wrong")
	}
}

func TestPublicGraphHelpers(t *testing.T) {
	g := square()
	if len(g.Edges()) != 4 {
		t.Fatal("Edges() wrong")
	}
	_, count := g.Components()
	if count != 1 {
		t.Fatalf("components = %d, want 1", count)
	}
}
