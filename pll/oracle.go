package pll

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pll/internal/core"
)

// Oracle is the uniform query surface implemented by every index
// variant: *Index, *DirectedIndex, *WeightedIndex and *DynamicIndex.
// Servers and tools program against this interface and stay agnostic of
// which flavor an index file contains:
//
//	o, _ := pll.LoadFile("any.pllbox") // auto-detects the variant
//	d := o.Distance(s, t)              // -1 (Unreachable) if disconnected
//
// Distance returns int64 across all variants — hop counts for the
// unweighted flavors, summed edge weights for the weighted one — with
// Unreachable (-1) for disconnected pairs. Path requires an index built
// WithPaths (and is unavailable on dynamic indexes). WriteTo serializes
// the index as a self-describing container that Load reads back.
//
// Beyond this minimal contract, oracles advertise optional capabilities
// through type-assertion — Batcher for amortized single-source batch
// queries (implemented by every variant), Searcher for exact kNN /
// range / nearest-in-subset queries over the inverted labels
// (implemented by every immutable variant), and Closer for
// resource-backed oracles such as the memory-mapped *FlatIndex. Probe
// for them instead of switching on concrete types; see the Batcher
// documentation for the pattern.
//
// Distance contract: distances are int64 end to end and Unreachable
// (-1) marks disconnected pairs. Narrowing a distance (int32(d),
// uint8(d)) corrupts the sentinel, and ordering comparisons (d < best,
// min) rank -1 below every real distance — guard with d >= 0 or
// d != Unreachable first. Both mistakes are flagged mechanically by
// `go run ./cmd/pllvet ./...` (the distsentinel analyzer).
//
// Concurrency contract: the static variants (*Index, *DirectedIndex,
// *WeightedIndex, and frozen dynamic snapshots) are immutable after
// construction, so any number of goroutines may call Distance, Path,
// NumVertices, Stats and WriteTo concurrently without synchronization.
// Construction itself is internally concurrent (WithWorkers, GOMAXPROCS
// workers by default) but externally synchronous: Build returns only
// after every worker goroutine has finished, the returned oracle is
// already immutable, and the worker count never changes the result —
// parallel builds are byte-identical to sequential ones.
// *DynamicIndex is NOT safe for concurrent use — InsertEdge mutates the
// labels in place, so callers must either serialize all access
// externally or wrap the index in a ConcurrentOracle, which takes the
// read/write locks automatically and adds atomic hot-swapping. Helper
// objects with per-call state (BatchSource, DiskIndex) are never safe
// for concurrent use regardless of variant.
type Oracle interface {
	// Distance returns the exact shortest-path distance from s to t, or
	// Unreachable (-1) if t cannot be reached from s.
	Distance(s, t int32) int64
	// Path returns one exact shortest path including both endpoints, or
	// nil for disconnected pairs. The index must have been built
	// WithPaths.
	Path(s, t int32) ([]int32, error)
	// NumVertices returns the number of vertices the index covers.
	NumVertices() int
	// Stats summarizes the index (variant, label entries, bytes, ...).
	Stats() Stats
	// WriteTo serializes the index in the versioned container format.
	io.WriterTo
}

// Variant tags the index flavor in Stats and in the container header.
type Variant = core.Variant

// Variant tags reported by Stats().Variant.
const (
	VariantUndirected = core.VariantUndirected
	VariantDirected   = core.VariantDirected
	VariantWeighted   = core.VariantWeighted
	VariantDynamic    = core.VariantDynamic
)

// BuildableGraph is the sealed set of graph types accepted by Build:
// *Graph, *Digraph and *WeightedGraph.
type BuildableGraph interface {
	// NumVertices returns the number of vertices.
	NumVertices() int
	// build dispatches to the variant-specific builder.
	build(opts []Option) (Oracle, error)
}

// Build constructs the pruned-landmark-labeling oracle matching the
// graph kind: an *Index for a *Graph, a *DirectedIndex for a *Digraph,
// a *WeightedIndex for a *WeightedGraph. Options that do not apply to a
// variant (e.g. WithBitParallel on weighted graphs) are rejected by the
// underlying builder. Use the typed builders (BuildIndex, BuildDirected,
// BuildWeighted, BuildDynamic) when the concrete type is needed.
func Build(g BuildableGraph, opts ...Option) (Oracle, error) {
	return g.build(opts)
}

// Load reads an index serialized by any Oracle's WriteTo (or by the
// deprecated per-variant Save methods) and returns the matching oracle.
// The container header names the variant, so callers need not know what
// kind of index the stream holds; bare pre-container payloads are also
// recognized by their magic. A VariantDynamic container loads as a
// static *Index snapshot whose Stats keep the dynamic tag. Malformed
// input yields an error wrapping ErrBadIndexFile.
func Load(r io.Reader) (Oracle, error) {
	v, err := core.LoadAny(r)
	if err != nil {
		return nil, err
	}
	return wrapOracle(v)
}

// LoadFile reads an index file written in the container format (or a
// bare legacy payload) and returns the matching oracle.
func LoadFile(path string) (Oracle, error) {
	v, err := core.LoadAnyFile(path)
	if err != nil {
		return nil, err
	}
	return wrapOracle(v)
}

// ErrBadIndexFile is wrapped by all load-time format errors.
var ErrBadIndexFile = core.ErrBadIndexFile

// variantOf names an oracle's flavor without the full Stats scan
// (mismatch errors shouldn't pay an O(n log n) quantile sort). For
// *Index it reports the recorded provenance, so a frozen-dynamic
// snapshot is named "dynamic", matching its container header.
func variantOf(o Oracle) Variant {
	switch ix := o.(type) {
	case *Index:
		return ix.ix.Variant()
	case *DirectedIndex:
		return VariantDirected
	case *WeightedIndex:
		return VariantWeighted
	case *DynamicIndex:
		return VariantDynamic
	case *FlatIndex:
		return ix.Variant()
	}
	return 0
}

// wrapOracle lifts a core index into its public wrapper.
func wrapOracle(v any) (Oracle, error) {
	switch ix := v.(type) {
	case *core.Index:
		return &Index{ix: ix}, nil
	case *core.DirectedIndex:
		return &DirectedIndex{ix: ix}, nil
	case *core.WeightedIndex:
		return &WeightedIndex{ix: ix}, nil
	}
	return nil, fmt.Errorf("pll: unsupported index type %T", v)
}

// WriteFile serializes any oracle to path in the version-1 container
// format, atomically and durably: the bytes land in a temp file that is
// fsynced and renamed over path, so concurrent readers (and SIGHUP
// reloads) never see a torn container. Use WriteFlatFile for the
// mmap-servable flat format.
func WriteFile(path string, o Oracle) error {
	return writeFileWith(path, o.WriteTo)
}

// writeFileWith is the shared file lifecycle for every save entry
// point: the container is written to a temp file in the destination
// directory, fsynced, and renamed over path, so a concurrent reader —
// in particular a pllserved SIGHUP reload — can never observe a torn
// or half-written container, and a crash after return cannot lose the
// rename. The old file, if any, stays intact until the atomic swap.
func writeFileWith(path string, write func(io.Writer) (int64, error)) error {
	f, tmp, err := createTemp(path)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable. Best effort: some filesystems
	// reject directory fsync, and the data file is already synced.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
	return nil
}

// createTemp opens a fresh temp file next to path with os.Create's
// permission semantics (0666 filtered by the umask — os.CreateTemp's
// hardwired 0600 would silently tighten saved indexes).
func createTemp(path string) (*os.File, string, error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	for i := 0; ; i++ {
		tmp := filepath.Join(dir, fmt.Sprintf(".%s.tmp-%d-%d", base, os.Getpid(), i))
		f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
		if err == nil {
			return f, tmp, nil
		}
		if !os.IsExist(err) || i >= 10000 {
			return nil, "", err
		}
	}
}

// Validate sanity-checks vertex IDs against an oracle's range, returning
// a descriptive error rather than letting a query panic.
func Validate(o Oracle, vertices ...int32) error {
	n := int32(o.NumVertices())
	for _, v := range vertices {
		if v < 0 || v >= n {
			return fmt.Errorf("pll: vertex %d out of range [0,%d)", v, n)
		}
	}
	return nil
}
