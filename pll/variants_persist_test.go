package pll

import (
	"bytes"
	"testing"
)

func TestPublicWeightedPersistence(t *testing.T) {
	g, err := NewWeightedGraph(4, []WeightedEdge{
		{U: 0, V: 1, Weight: 2}, {U: 1, V: 2, Weight: 3}, {U: 2, V: 3, Weight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildWeighted(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadWeighted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Distance(0, 3) != 9 {
		t.Fatalf("loaded weighted distance = %d, want 9", loaded.Distance(0, 3))
	}
	path := t.TempDir() + "/w.pll"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadWeightedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Distance(1, 3) != 7 {
		t.Fatal("file round trip wrong")
	}
}

func TestPublicWeightedPath(t *testing.T) {
	g, err := NewWeightedGraph(4, []WeightedEdge{
		{U: 0, V: 1, Weight: 2}, {U: 1, V: 2, Weight: 3}, {U: 0, V: 2, Weight: 10}, {U: 2, V: 3, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildWeighted(g, WithPaths())
	if err != nil {
		t.Fatal(err)
	}
	p, w, err := ix.PathWeight(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w != 6 || len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Fatalf("weighted path = %v (w=%d), want 0-1-2-3 at weight 6", p, w)
	}
}

func TestPublicDirectedPath(t *testing.T) {
	g, err := NewDigraph(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildDirected(g, WithPaths())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ix.Path(0, 2)
	if err != nil || len(p) != 3 {
		t.Fatalf("directed path = %v, %v", p, err)
	}
	p, err = ix.Path(2, 0)
	if err != nil || p != nil {
		t.Fatalf("unreachable path = %v, %v", p, err)
	}
}

func TestPublicDirectedPersistence(t *testing.T) {
	g, err := NewDigraph(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildDirected(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDirected(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Distance(0, 2) != 2 || loaded.Distance(2, 0) != Unreachable {
		t.Fatal("loaded directed distances wrong")
	}
	path := t.TempDir() + "/d.pll"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadDirectedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Distance(0, 1) != 1 {
		t.Fatal("file round trip wrong")
	}
}
