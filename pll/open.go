package pll

import (
	"fmt"
	"io"

	"pll/internal/core"
)

// ErrNotFlat is returned by Open for index files that are valid but not
// flat (version-2) containers: version-1 containers and bare legacy
// payloads must be heap-loaded with LoadFile, or rewritten once with
// WriteFlatFile (or `pll convert`) to become Open-able.
var ErrNotFlat = core.ErrNotFlat

// FlatIndex serves a flat (version-2) container zero-copy: Open
// memory-maps the file and the query arrays alias the mapping, so
// startup does no per-entry decoding and no label-array copies
// regardless of index size, the kernel shares the pages across
// processes serving the same file, and an index larger than the heap
// still serves in microseconds.
//
// FlatIndex implements Oracle, Batcher and Closer. Queries answer
// identically to the heap-loaded oracle of the same index. Any number
// of goroutines may query concurrently; Close releases the mapping and
// must only be called once no queries are in flight (queries after
// Close fault).
//
// Open validates the container's structural metadata (section table,
// permutation, offsets, sentinels) but trusts label contents, exactly
// like the arrays of a freshly built index — feed untrusted files to
// LoadFile, which fully validates every entry, instead.
//
// Aliasing contract: the query arrays are unsafe.Slice views over the
// mapped file image, whose pages the kernel shares read-only with
// every process serving the same file. They must be treated as
// immutable everywhere; writes through such a view are flagged
// mechanically by `go run ./cmd/pllvet ./...` (the mmapwrite
// analyzer).
type FlatIndex struct {
	store *core.FlatStore
	o     Oracle // wrapper over the index aliasing the mapping
}

// Open memory-maps a flat container and returns its zero-copy oracle.
// Non-flat index files yield ErrNotFlat; malformed files yield errors
// wrapping ErrBadIndexFile.
//
// Open vs LoadFile: Open decodes, copies and allocates nothing — its
// structural validation is O(n) in the vertex count (perm/offset
// checks plus one sentinel probe per vertex, a single streaming sweep
// of the mapped hub section when the page cache is cold, and
// effectively instant when warm) and keeps the index off the heap, but
// requires the flat format and trusts label contents. LoadFile reads
// any supported format onto the heap with full validation, paying a
// per-entry decode pass plus allocations proportional to the index
// size. Serving restarts and hot reloads want Open; ad-hoc tooling and
// untrusted input want LoadFile.
func Open(path string) (*FlatIndex, error) {
	st, err := core.OpenFlat(path)
	if err != nil {
		return nil, err
	}
	o, err := wrapOracle(st.Oracle())
	if err != nil {
		st.Close() //nolint:errcheck // the wrap error is the one to report
		return nil, err
	}
	return &FlatIndex{store: st, o: o}, nil
}

// Distance returns the exact s-t distance, or Unreachable (-1).
func (fi *FlatIndex) Distance(s, t int32) int64 { return fi.o.Distance(s, t) }

// Path returns one exact shortest path, or nil for disconnected pairs.
// The container must have been written from an index built WithPaths.
func (fi *FlatIndex) Path(s, t int32) ([]int32, error) { return fi.o.Path(s, t) }

// DistanceFrom answers a single-source batch straight from the mapping
// (see Batcher). Safe for concurrent use.
//
//pllvet:ignore capassert fi.o is always one of the package's index variants, all Batcher by construction
func (fi *FlatIndex) DistanceFrom(s int32, targets []int32, dst []int64) []int64 {
	return fi.o.(Batcher).DistanceFrom(s, targets, dst)
}

// NumVertices returns the number of vertices the index covers.
func (fi *FlatIndex) NumVertices() int { return fi.o.NumVertices() }

// Stats summarizes the index (the scan reads the mapped pages).
func (fi *FlatIndex) Stats() Stats { return fi.o.Stats() }

// Variant reports the container's variant tag without scanning.
func (fi *FlatIndex) Variant() Variant { return fi.store.Header().Variant }

// WriteTo serializes the index as a version-1 container (the
// heap-loadable record format) — the inverse of `pll convert`.
func (fi *FlatIndex) WriteTo(w io.Writer) (int64, error) { return fi.o.WriteTo(w) }

// MappedBytes returns the size of the mapped file image.
func (fi *FlatIndex) MappedBytes() int64 { return fi.store.MappedBytes() }

// ZeroCopy reports whether the query arrays alias the mapping (false
// only on big-endian hosts, where Open decodes copies instead).
func (fi *FlatIndex) ZeroCopy() bool { return fi.store.ZeroCopy() }

// Close releases the mapping. Idempotent. The index must not be
// queried afterwards.
func (fi *FlatIndex) Close() error { return fi.store.Close() }

// FlatOption configures WriteFlat and WriteFlatFile.
type FlatOption = core.FlatOption

// FlatSearch makes WriteFlat persist the hub-inverted search index
// (see Searcher) as optional aligned sections, so Open serves
// KNN/Range/NearestIn zero-copy with no lazy build. The inversion is
// computed first if the oracle has not searched yet; containers grow
// by roughly one (int32, uint32) pair per label entry.
func FlatSearch() FlatOption { return core.FlatSearch() }

// WriteFlat serializes any oracle as a flat (version-2) container that
// Open can serve zero-copy. Dynamic indexes are frozen first (like
// WriteTo); a ConcurrentOracle writes its current snapshot. Directed
// and weighted indexes built WithPaths cannot be serialized, matching
// WriteTo. Pass FlatSearch() to persist the search inversion too.
func WriteFlat(w io.Writer, o Oracle, opts ...FlatOption) (int64, error) {
	switch ix := o.(type) {
	case *Index:
		return ix.ix.WriteFlat(w, opts...)
	case *DirectedIndex:
		return ix.ix.WriteFlat(w, opts...)
	case *WeightedIndex:
		return ix.ix.WriteFlat(w, opts...)
	case *DynamicIndex:
		return ix.di.WriteFlat(w, opts...)
	case *FlatIndex:
		return WriteFlat(w, ix.o, opts...)
	case *ConcurrentOracle:
		var n int64
		err := ix.View(func(inner Oracle) error {
			var werr error
			n, werr = WriteFlat(w, inner, opts...)
			return werr
		})
		return n, err
	}
	return 0, fmt.Errorf("pll: %T cannot be written as a flat container", o)
}

// WriteFlatFile writes o to path as a flat container, atomically and
// durably (temp file, fsync, rename) like WriteFile.
func WriteFlatFile(path string, o Oracle, opts ...FlatOption) error {
	return writeFileWith(path, func(w io.Writer) (int64, error) { return WriteFlat(w, o, opts...) })
}
