package pll

// Composite-search capability: one request combining several distance
// constraints — "within d₁ of A and d₂ of B, not within d₃ of C, ranked
// by combined distance, top k" — answered by a streaming engine over
// the hub-inverted labels (internal/runquery) that pushes cutoffs into
// the label-run scans, orders constraints by estimated selectivity, and
// stops a ranked scan the moment the k-th best score is out of reach.
// No intermediate neighborhood is materialized.
//
// Like Batcher and Searcher, the capability is discovered by
// type-assertion:
//
//	if cs, ok := o.(pll.CompositeSearcher); ok {
//		res, _ := cs.Composite(&pll.CompositeRequest{
//			Where: &pll.CompositeClause{And: []*pll.CompositeClause{
//				{Near: &pll.NearClause{Source: a, MaxDist: 3}},
//				{Near: &pll.NearClause{Source: b, MaxDist: 4}},
//			}},
//			K: 10,
//		})
//	}
//
// *Index, *DirectedIndex, *WeightedIndex, *FlatIndex and
// *ConcurrentOracle implement CompositeSearcher; *DynamicIndex does not
// (a ConcurrentOracle wrapping one reports ErrNoSearch). Answers are
// deterministic — matches ordered by (score, vertex ID), unreachable-
// scored matches last — and identical across heap-loaded, memory-mapped
// and hot-swapped servings of the same index.

import "pll/internal/core"

// NearClause matches every vertex within MaxDist of Source, the source
// itself included (d(s,s) = 0) — note this differs from Searcher.KNN
// and Range, which exclude the source from their answers.
type NearClause = core.NearClause

// CompositeClause is one constraint-tree node; exactly one field (near,
// and, or, not, in) must be set. See CompositeRequest.Validate for the
// structural rules.
type CompositeClause = core.CompositeClause

// CompositeTerm is one ranking term: the distance from Source scaled by
// Weight.
type CompositeTerm = core.CompositeTerm

// CompositeRank selects the ranking expression ("sum" or "max" of the
// weighted term distances).
type CompositeRank = core.CompositeRank

// CompositeRequest is a full composite query; see the package-level
// example. Validate checks structure without an index; Normalize fills
// defaults in place.
type CompositeRequest = core.CompositeRequest

// CompositeMatch is one composite answer with its per-term distances.
type CompositeMatch = core.CompositeMatch

// CompositeResult is a composite answer set; Total counts matches
// before the K trim and is exact iff Exact is set.
type CompositeResult = core.CompositeResult

// CompositeSearcher answers multi-constraint queries over the labels.
// Implementations are safe for concurrent use.
type CompositeSearcher interface {
	Composite(req *CompositeRequest) (*CompositeResult, error)
}

// Composite answers a multi-constraint query (see CompositeSearcher).
func (ix *Index) Composite(req *CompositeRequest) (*CompositeResult, error) {
	return ix.ix.Composite(req)
}

// Composite answers a multi-constraint query over forward directed
// distances d(s → v) (see CompositeSearcher).
func (ix *DirectedIndex) Composite(req *CompositeRequest) (*CompositeResult, error) {
	return ix.ix.Composite(req)
}

// Composite answers a multi-constraint query over weighted distances
// (see CompositeSearcher).
func (ix *WeightedIndex) Composite(req *CompositeRequest) (*CompositeResult, error) {
	return ix.ix.Composite(req)
}

// Composite answers a multi-constraint query straight from the mapping
// (see CompositeSearcher). When the container was written with
// FlatSearch, the inverted index behind the constraint scans is served
// zero-copy.
//
//pllvet:ignore capassert fi.o is always one of the package's index variants, all CompositeSearcher by construction
func (fi *FlatIndex) Composite(req *CompositeRequest) (*CompositeResult, error) {
	return fi.o.(CompositeSearcher).Composite(req)
}

// Composite answers a multi-constraint query on the current snapshot
// (see CompositeSearcher); ErrNoSearch if the snapshot cannot search.
func (c *ConcurrentOracle) Composite(req *CompositeRequest) (*CompositeResult, error) {
	var out *CompositeResult
	err := c.View(func(o Oracle) error {
		cs, ok := o.(CompositeSearcher)
		if !ok {
			return ErrNoSearch
		}
		var err error
		out, err = cs.Composite(req)
		return err
	})
	return out, err
}
