package pll

import (
	"io"

	"pll/internal/core"
	"pll/internal/graph"
)

// WithWorkers parallelizes the bit-parallel construction phase across
// the given number of goroutines (the pruned phase is inherently
// sequential). Identical results to a sequential build.
func WithWorkers(n int) Option {
	return func(opt *core.Options) { opt.Workers = n }
}

// SaveCompressed writes the index with delta-varint label compression
// (typically 40-60% smaller than Save). Indexes built WithPaths are not
// supported by the compressed format.
func (ix *Index) SaveCompressed(w io.Writer) error { return ix.ix.SaveCompressed(w) }

// SaveCompressedFile writes the compressed index to a path.
func (ix *Index) SaveCompressedFile(path string) error { return ix.ix.SaveCompressedFile(path) }

// LoadCompressed reads an index written by SaveCompressed.
func LoadCompressed(r io.Reader) (*Index, error) {
	ix, err := core.LoadCompressed(r)
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// LoadCompressedFile reads a compressed index file.
func LoadCompressedFile(path string) (*Index, error) {
	ix, err := core.LoadCompressedFile(path)
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// DynamicIndex is an incrementally updatable exact distance oracle:
// edges may be inserted after construction and queries remain exact
// (the evolving-network direction of the paper's §8, implemented with
// resumed pruned BFSs). Bit-parallel labels and path reconstruction are
// not available in dynamic mode.
type DynamicIndex struct {
	di *core.DynamicIndex
}

// BuildDynamic constructs a dynamic index over g.
func BuildDynamic(g *Graph, opts ...Option) (*DynamicIndex, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	o.NumBitParallel = 0
	o.StorePaths = false
	di, err := core.BuildDynamic(g.g, o)
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{di: di}, nil
}

// Distance returns the exact s-t distance under all insertions so far.
func (d *DynamicIndex) Distance(s, t int32) int { return d.di.Query(s, t) }

// InsertEdge adds the undirected edge {a,b} and repairs the labels.
// Inserting an existing edge or a self-loop is a no-op. It returns the
// number of label entries added or decreased.
func (d *DynamicIndex) InsertEdge(a, b int32) (int, error) { return d.di.InsertEdge(a, b) }

// NumVertices returns the number of vertices the index covers.
func (d *DynamicIndex) NumVertices() int { return d.di.NumVertices() }

// AvgLabelSize returns the mean label size per vertex.
func (d *DynamicIndex) AvgLabelSize() float64 { return d.di.AvgLabelSize() }

// BatchSource answers many queries sharing one source faster than
// repeated Distance calls (one label scan per target instead of a merge
// join). Not safe for concurrent use; Reset re-targets it to another
// source.
type BatchSource struct {
	bs *core.BatchSource
}

// NewBatchSource prepares batched querying from source s.
func (ix *Index) NewBatchSource(s int32) *BatchSource {
	return &BatchSource{bs: ix.ix.NewBatchSource(s)}
}

// Distance returns the exact distance from the batch source to t.
func (b *BatchSource) Distance(t int32) int { return b.bs.Query(t) }

// Reset switches the batch to a new source vertex.
func (b *BatchSource) Reset(s int32) { b.bs.Reset(s) }

// Source returns the current source vertex.
func (b *BatchSource) Source() int32 { return b.bs.Source() }

// Verify cross-checks the index against the graph it was built from:
// structural label invariants plus sampledPairs random queries against
// BFS ground truth (0 uses a default of 1000). Expensive; intended for
// debugging index pipelines.
func (ix *Index) Verify(g *Graph, sampledPairs int, seed uint64) error {
	return ix.ix.Verify(g.g, core.VerifyOptions{SampledPairs: sampledPairs, Seed: seed})
}

// Edges returns a copy of the graph's edge list (U < V per edge), handy
// for feeding a Graph into other tooling.
func (g *Graph) Edges() []Edge { return g.g.Edges() }

// Components labels each vertex with a connected-component ID and
// returns the number of components.
func (g *Graph) Components() (labels []int32, count int) {
	return graph.ConnectedComponents(g.g)
}
