package pll

import (
	"fmt"
	"io"

	"pll/internal/core"
	"pll/internal/graph"
)

// WithWorkers parallelizes index construction across n goroutines: both
// the bit-parallel prelude and the pruned labeling phase itself, which
// runs rank-ordered batches of pruned searches against the frozen labels
// of earlier ranks and merges them deterministically. The resulting
// index is byte-identical to a sequential build for every variant and
// option combination — worker count is purely a speed knob. n = 0 (the
// default) uses GOMAXPROCS; n = 1 forces the sequential code path.
// Build remains externally synchronous: it returns only after all
// workers have finished, and the returned index is immutable.
func WithWorkers(n int) Option {
	return func(opt *core.Options) { opt.Workers = n }
}

// EffectiveWorkers resolves a WithWorkers value to the worker count a
// build will actually use: 0 maps to GOMAXPROCS, negative values clamp
// to 1. Useful for logging build setups next to wall-time measurements.
func EffectiveWorkers(n int) int { return core.EffectiveWorkers(n) }

// WriteToCompressed serializes the index as a container whose payload
// uses delta-varint label compression (typically 40-60% smaller than
// WriteTo). Load reads it back transparently; disk-resident querying
// requires the uncompressed layout. Indexes built WithPaths are not
// supported by the compressed payload.
func (ix *Index) WriteToCompressed(w io.Writer) (int64, error) { return ix.ix.WriteToCompressed(w) }

// SaveCompressed writes the index with delta-varint label compression.
//
// Deprecated: use WriteToCompressed.
func (ix *Index) SaveCompressed(w io.Writer) error {
	_, err := ix.WriteToCompressed(w)
	return err
}

// SaveCompressedFile writes the compressed index to a path.
func (ix *Index) SaveCompressedFile(path string) error {
	return writeFileWith(path, ix.WriteToCompressed)
}

// LoadCompressed reads an undirected index (compressed or not).
//
// Deprecated: use Load; the container header records the compression
// flag, so no dedicated entry point is needed.
func LoadCompressed(r io.Reader) (*Index, error) { return LoadIndex(r) }

// LoadCompressedFile reads a compressed index file.
//
// Deprecated: use LoadFile.
func LoadCompressedFile(path string) (*Index, error) { return LoadIndexFile(path) }

// DynamicIndex is an incrementally updatable exact distance oracle:
// edges may be inserted after construction and queries remain exact
// (the evolving-network direction of the paper's §8, implemented with
// resumed pruned BFSs). Bit-parallel labels and path reconstruction are
// not available in dynamic mode.
//
// Unlike the static variants, a DynamicIndex is not safe for concurrent
// use: InsertEdge mutates labels in place, so interleave queries and
// inserts from one goroutine, synchronize externally, or wrap the index
// in a ConcurrentOracle.
type DynamicIndex struct {
	di *core.DynamicIndex
}

// BuildDynamic constructs a dynamic index over g.
func BuildDynamic(g *Graph, opts ...Option) (*DynamicIndex, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	o.NumBitParallel = 0
	o.StorePaths = false
	di, err := core.BuildDynamic(g.g, o)
	if err != nil {
		return nil, err
	}
	return &DynamicIndex{di: di}, nil
}

// Distance returns the exact s-t distance under all insertions so far,
// or Unreachable.
func (d *DynamicIndex) Distance(s, t int32) int64 { return int64(d.di.Query(s, t)) }

// Path is unavailable on dynamic indexes (labels carry no parent
// pointers); it always returns an error. It exists so *DynamicIndex
// satisfies Oracle.
func (d *DynamicIndex) Path(s, t int32) ([]int32, error) {
	return nil, fmt.Errorf("pll: dynamic indexes do not support path reconstruction")
}

// InsertEdge adds the undirected edge {a,b} and repairs the labels.
// Inserting an existing edge or a self-loop is a no-op. It returns the
// number of label entries added or decreased.
func (d *DynamicIndex) InsertEdge(a, b int32) (int, error) { return d.di.InsertEdge(a, b) }

// NumVertices returns the number of vertices the index covers.
func (d *DynamicIndex) NumVertices() int { return d.di.NumVertices() }

// Stats summarizes the index.
func (d *DynamicIndex) Stats() Stats { return d.di.ComputeStats() }

// AvgLabelSize returns the mean label size per vertex.
//
// Deprecated: use Stats().AvgLabelSize.
func (d *DynamicIndex) AvgLabelSize() float64 { return d.di.AvgLabelSize() }

// Freeze snapshots the dynamic index into a static *Index covering all
// insertions so far. The snapshot is independent of later InsertEdge
// calls and supports everything a statically built index does
// (serialization, disk querying, batch sources).
func (d *DynamicIndex) Freeze() *Index { return &Index{ix: d.di.Freeze()} }

// WriteTo freezes the index and serializes the snapshot as a container
// tagged with the dynamic variant. Loading it yields a static *Index;
// the insertion log does not survive serialization.
func (d *DynamicIndex) WriteTo(w io.Writer) (int64, error) { return d.di.WriteTo(w) }

// BatchSource answers many queries sharing one source faster than
// repeated Distance calls (one label scan per target instead of a merge
// join). It validates vertex IDs like Validate instead of panicking and
// follows the Oracle convention (int64 distances, Unreachable (-1) for
// disconnected pairs). Not safe for concurrent use; Reset re-targets it
// to another source.
//
// Deprecated: use the Batcher capability — DistanceFrom pins the source
// label once per call, works on every variant (not just *Index), is
// safe for concurrent use, and needs no explicit lifecycle.
type BatchSource struct {
	ix *Index
	bs *core.BatchSource
}

// NewBatchSource prepares batched querying from source s, rejecting an
// out-of-range s with an error.
//
// Deprecated: use the Batcher capability (DistanceFrom).
func (ix *Index) NewBatchSource(s int32) (*BatchSource, error) {
	if err := Validate(ix, s); err != nil {
		return nil, err
	}
	return &BatchSource{ix: ix, bs: ix.ix.NewBatchSource(s)}, nil
}

// Distance returns the exact distance from the batch source to t, or
// Unreachable (-1); an out-of-range t yields an error.
func (b *BatchSource) Distance(t int32) (int64, error) {
	if err := Validate(b.ix, t); err != nil {
		return 0, err
	}
	return int64(b.bs.Query(t)), nil
}

// Reset switches the batch to a new source vertex, rejecting an
// out-of-range s with an error (the previous source stays active).
func (b *BatchSource) Reset(s int32) error {
	if err := Validate(b.ix, s); err != nil {
		return err
	}
	b.bs.Reset(s)
	return nil
}

// Source returns the current source vertex.
func (b *BatchSource) Source() int32 { return b.bs.Source() }

// Verify cross-checks the index against the graph it was built from:
// structural label invariants plus sampledPairs random queries against
// BFS ground truth (0 uses a default of 1000). Expensive; intended for
// debugging index pipelines.
func (ix *Index) Verify(g *Graph, sampledPairs int, seed uint64) error {
	return ix.ix.Verify(g.g, core.VerifyOptions{SampledPairs: sampledPairs, Seed: seed})
}

// Edges returns a copy of the graph's edge list (U < V per edge), handy
// for feeding a Graph into other tooling.
func (g *Graph) Edges() []Edge { return g.g.Edges() }

// Components labels each vertex with a connected-component ID and
// returns the number of components.
func (g *Graph) Components() (labels []int32, count int) {
	return graph.ConnectedComponents(g.g)
}
