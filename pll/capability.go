package pll

// Capability interfaces: optional query surfaces discovered by
// type-assertion on an Oracle. The Oracle interface stays the minimal
// contract every index satisfies; capabilities extend it where a
// variant can do better, and callers probe for them instead of
// special-casing concrete types:
//
//	if b, ok := o.(pll.Batcher); ok {
//		dists = b.DistanceFrom(src, targets, dists) // amortized
//	} else {
//		for i, t := range targets {
//			dists[i] = o.Distance(src, t) // always works
//		}
//	}
//
// Every index variant in this package (*Index, *DirectedIndex,
// *WeightedIndex, *DynamicIndex, *FlatIndex and *ConcurrentOracle)
// implements Batcher; *FlatIndex and *DiskIndex implement Closer.

// Batcher answers many distance queries that share one source faster
// than repeated Distance calls: the source's label is expanded into a
// rank-indexed array once per call (the paper's §4.5 "Querying"
// technique), after which each target costs a single scan of its own
// label — O(|L(t)|) instead of O(|L(s)|+|L(t)|).
type Batcher interface {
	// DistanceFrom returns the exact distances from s to every target,
	// in target order: dst[i] = Distance(s, targets[i]), with
	// Unreachable (-1) for disconnected pairs. dst is reused when its
	// capacity suffices; the returned slice has len(targets).
	//
	// Like Distance, out-of-range vertices panic — validate inputs with
	// Validate first. Implementations are safe for concurrent use under
	// the same conditions as Distance on the same oracle.
	DistanceFrom(s int32, targets []int32, dst []int64) []int64
}

// Closer marks oracles backed by an external resource (a memory
// mapping, an open file) that must be released when the oracle is no
// longer queried. Close is idempotent; queries after Close are invalid.
type Closer interface {
	Close() error
}

// DistanceFrom answers a single-source batch with the source label
// pinned once (see Batcher). Safe for concurrent use.
func (ix *Index) DistanceFrom(s int32, targets []int32, dst []int64) []int64 {
	return ix.ix.DistanceFrom(s, targets, dst)
}

// DistanceFrom answers a single-source directed batch: L_OUT(s) is
// expanded once, each target costs one scan of its L_IN label. Safe for
// concurrent use.
func (ix *DirectedIndex) DistanceFrom(s int32, targets []int32, dst []int64) []int64 {
	return ix.ix.DistanceFrom(s, targets, dst)
}

// DistanceFrom answers a single-source weighted batch (summed edge
// weights, -1 unreachable). Safe for concurrent use.
func (ix *WeightedIndex) DistanceFrom(s int32, targets []int32, dst []int64) []int64 {
	return ix.ix.DistanceFrom(s, targets, dst)
}

// DistanceFrom answers a single-source batch over the current labels.
// Like every DynamicIndex read it needs external synchronization
// against InsertEdge (or a ConcurrentOracle wrapper).
func (d *DynamicIndex) DistanceFrom(s int32, targets []int32, dst []int64) []int64 {
	return d.di.DistanceFrom(s, targets, dst)
}
