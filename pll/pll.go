// Package pll is the public API of this repository: an exact
// shortest-path distance oracle for large networks, implementing
// "Fast Exact Shortest-Path Distance Queries on Large Networks by Pruned
// Landmark Labeling" (Akiba, Iwata, Yoshida; SIGMOD 2013).
//
// Basic use:
//
//	g, _ := pll.NewGraph(4, []pll.Edge{{0, 1}, {1, 2}, {2, 3}})
//	ix, _ := pll.Build(g, pll.WithBitParallel(16))
//	d := ix.Distance(0, 3) // 3, in ~microseconds regardless of graph size
//
// The index construction runs a pruned breadth-first search from every
// vertex in degree order (optionally preceded by bit-parallel BFSs), and
// queries merge-join two small sorted label arrays.
//
// Construction is parallel by default (WithWorkers; 0 means GOMAXPROCS):
// pruned searches run in rank-ordered batches against the frozen labels
// of earlier ranks and merge deterministically, so the index — every
// label, parent pointer and serialized byte — is identical to a
// sequential build regardless of worker count. Build returns only after
// all workers finish.
//
// Every index flavor — undirected (*Index), directed (*DirectedIndex),
// weighted (*WeightedIndex) and dynamic (*DynamicIndex) — implements
// the Oracle interface, Build dispatches on the graph kind, and all
// variants serialize through WriteTo into one self-describing container
// format that Load reads back without being told the variant. The
// per-variant Save/Load entry points remain as deprecated wrappers.
//
// Two ways to get an index file serving:
//
//   - Load / LoadFile decode any supported format (version-1
//     containers, flat version-2 containers, bare legacy payloads)
//     onto the heap with full validation — right for ad-hoc tooling
//     and untrusted input.
//   - Open memory-maps a flat (version-2) container written by
//     WriteFlatFile and serves it zero-copy: startup is O(1) in the
//     label count, pages are shared across processes and the index may
//     exceed the heap — right for servers that restart or hot-reload.
//
// Optional query surfaces are capability interfaces discovered by
// type-assertion: Batcher (amortized single-source batch distances,
// implemented by every variant), Searcher (exact kNN, range and
// nearest-in-subset queries over the inverted labels, implemented by
// every immutable variant) and Closer (resource-backed oracles).
package pll

import (
	"fmt"
	"io"

	"pll/internal/core"
	"pll/internal/graph"
	"pll/internal/order"
)

// Edge is an undirected edge (or a directed arc U -> V for digraphs).
type Edge = graph.Edge

// WeightedEdge is an undirected edge with a non-negative integer weight.
type WeightedEdge = graph.WeightedEdge

// Unreachable is returned by distance queries for disconnected pairs.
const Unreachable = core.Unreachable

// Graph is an immutable undirected, unweighted graph.
type Graph struct {
	g *graph.Graph
}

// NewGraph builds an undirected graph with n vertices. Self-loops are
// dropped and parallel edges collapsed.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// LoadGraph reads a whitespace-separated edge list ("u v" per line,
// '#'/'%' comments) from r, compacting sparse vertex IDs.
func LoadGraph(r io.Reader) (*Graph, error) {
	edges, n, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return NewGraph(n, edges)
}

// LoadGraphFile reads an edge-list file.
func LoadGraphFile(path string) (*Graph, error) {
	g, err := graph.LoadGraphFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.g.NumVertices() }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.g.NumEdges() }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int { return g.g.Degree(v) }

// Neighbors returns the sorted adjacency list of v. The slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 { return g.g.Neighbors(v) }

// Ordering selects the vertex-ordering strategy used during construction
// (paper §4.4). The default, OrderDegree, is almost always right.
type Ordering = order.Strategy

// Ordering strategies. Degree, Random and Closeness are the paper's
// §4.4.2 strategies; Betweenness (sampled Brandes) computes the paper's
// motivating quantity — how many shortest paths pass through a vertex —
// directly, as an ablation.
const (
	OrderDegree      = order.Degree
	OrderRandom      = order.Random
	OrderCloseness   = order.Closeness
	OrderBetweenness = order.Betweenness
)

// Option configures Build.
type Option func(*core.Options)

// WithOrdering selects the vertex-ordering strategy.
func WithOrdering(o Ordering) Option {
	return func(opt *core.Options) { opt.Ordering = o }
}

// WithSeed fixes the randomness seed; identical seeds give identical
// indexes.
func WithSeed(seed uint64) Option {
	return func(opt *core.Options) { opt.Seed = seed }
}

// WithBitParallel sets t, the number of bit-parallel BFSs performed
// before pruned labeling (paper §5.4; 16-64 is a good range for large
// networks, 0 disables).
func WithBitParallel(t int) Option {
	return func(opt *core.Options) { opt.NumBitParallel = t }
}

// WithPaths stores per-label parent pointers so Path can reconstruct
// shortest paths. Implies bit-parallel labeling off.
func WithPaths() Option {
	return func(opt *core.Options) { opt.StorePaths = true }
}

// WithCustomOrder overrides the ordering strategy with an explicit
// permutation perm[rank] = vertex.
func WithCustomOrder(perm []int32) Option {
	return func(opt *core.Options) { opt.CustomOrder = perm }
}

// Index is an exact distance oracle over an undirected, unweighted graph.
type Index struct {
	ix *core.Index
}

// build dispatches Build for undirected graphs.
func (g *Graph) build(opts []Option) (Oracle, error) { return BuildIndex(g, opts...) }

// BuildIndex constructs the pruned-landmark-labeling index for an
// undirected, unweighted graph. It is the typed form of Build(g).
func BuildIndex(g *Graph, opts ...Option) (*Index, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	ix, err := core.Build(g.g, o)
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// Distance returns the exact shortest-path distance between s and t, or
// Unreachable (-1) if they are in different components.
func (ix *Index) Distance(s, t int32) int64 { return int64(ix.ix.Query(s, t)) }

// Path returns one exact shortest path including both endpoints, or nil
// for disconnected pairs. The index must have been built WithPaths.
func (ix *Index) Path(s, t int32) ([]int32, error) { return ix.ix.QueryPath(s, t) }

// NumVertices returns the number of vertices the index covers.
func (ix *Index) NumVertices() int { return ix.ix.NumVertices() }

// Stats describes the index (average label size, byte footprint, ...).
type Stats = core.Stats

// Stats summarizes the index.
func (ix *Index) Stats() Stats { return ix.ix.ComputeStats() }

// WriteTo serializes the index in the self-describing container format
// read back by Load. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) { return ix.ix.WriteTo(w) }

// Save writes the index in the container format.
//
// Deprecated: use WriteTo, which also reports the bytes written.
func (ix *Index) Save(w io.Writer) error {
	_, err := ix.WriteTo(w)
	return err
}

// SaveFile writes the index to a file in the container format.
//
// Deprecated: use WriteFile.
func (ix *Index) SaveFile(path string) error { return WriteFile(path, ix) }

// LoadIndex reads an undirected index, rejecting other variants with a
// descriptive error. Use Load when the variant is not known up front.
func LoadIndex(r io.Reader) (*Index, error) {
	o, err := Load(r)
	if err != nil {
		return nil, err
	}
	return asIndex(o)
}

// LoadIndexFile reads an undirected index file, rejecting other
// variants.
func LoadIndexFile(path string) (*Index, error) {
	o, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	return asIndex(o)
}

func asIndex(o Oracle) (*Index, error) {
	ix, ok := o.(*Index)
	if !ok {
		return nil, fmt.Errorf("pll: expected an undirected index, the file holds the %s variant", variantOf(o))
	}
	return ix, nil
}

// DiskIndex answers queries directly from a version-1 index file with
// two ranged reads per query (paper §6, disk-based query answering).
// It validates vertex IDs (errors, not panics) and follows the Oracle
// convention: int64 distances, Unreachable (-1) for disconnected pairs.
// Not safe for concurrent use.
//
// Deprecated: convert the file to the flat format (`pll convert`, or
// WriteFlatFile) and use Open — the memory-mapped FlatIndex also keeps
// the labels out of the heap, but serves reads from shared page-cache
// pages instead of issuing two syscalls per query, is safe for
// concurrent use, and supports every variant plus batch queries.
type DiskIndex struct {
	di *core.DiskIndex
}

// OpenDiskIndex opens a version-1 index file for disk-resident
// querying.
//
// Deprecated: use Open on a flat container (see DiskIndex).
func OpenDiskIndex(path string) (*DiskIndex, error) {
	di, err := core.OpenDiskIndex(path)
	if err != nil {
		return nil, err
	}
	return &DiskIndex{di: di}, nil
}

// Distance returns the exact s-t distance or Unreachable. Out-of-range
// vertices yield an error.
func (d *DiskIndex) Distance(s, t int32) (int64, error) {
	v, err := d.di.Query(s, t)
	return int64(v), err
}

// NumVertices returns the number of vertices the index covers.
func (d *DiskIndex) NumVertices() int { return d.di.NumVertices() }

// Close releases the underlying file.
func (d *DiskIndex) Close() error { return d.di.Close() }

// Validate sanity-checks vertex IDs against the index's range.
//
// Deprecated: use the package-level Validate, which accepts any Oracle.
func (ix *Index) Validate(vertices ...int32) error { return Validate(ix, vertices...) }
