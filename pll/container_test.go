package pll_test

// Container-format tests: every variant's WriteTo must round-trip
// through the single pll.Load entry point, the header must be honest
// about the variant, and malformed headers must be rejected with
// ErrBadIndexFile rather than a panic or a misparse.

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"pll/internal/gen"
	"pll/internal/rng"
	"pll/pll"
)

// testGraph is a small scale-free stand-in shared by the round-trip
// tests; deterministic seed so failures reproduce.
func testGraph(t *testing.T) *pll.Graph {
	t.Helper()
	raw := gen.BarabasiAlbert(300, 3, 42)
	g, err := pll.NewGraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// roundTrip serializes o, loads it back through the unified Load, and
// checks the loaded oracle agrees with the original on random pairs.
func roundTrip(t *testing.T, o pll.Oracle, wantVariant pll.Variant) pll.Oracle {
	t.Helper()
	var buf bytes.Buffer
	n, err := o.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := pll.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.NumVertices() != o.NumVertices() {
		t.Fatalf("loaded n=%d, want %d", loaded.NumVertices(), o.NumVertices())
	}
	r := rng.New(7)
	nv := int32(o.NumVertices())
	for i := 0; i < 200; i++ {
		s, u := r.Int31n(nv), r.Int31n(nv)
		if got, want := loaded.Distance(s, u), o.Distance(s, u); got != want {
			t.Fatalf("distance mismatch after round trip at (%d,%d): %d vs %d", s, u, got, want)
		}
	}
	if v := loaded.Stats().Variant; wantVariant != 0 && v != wantVariant {
		t.Fatalf("loaded variant = %s, want %s", v, wantVariant)
	}
	return loaded
}

func TestContainerRoundTripPlain(t *testing.T) {
	ix, err := pll.BuildIndex(testGraph(t), pll.WithBitParallel(4), pll.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, ix, pll.VariantUndirected)
}

func TestContainerRoundTripCompressed(t *testing.T) {
	ix, err := pll.BuildIndex(testGraph(t), pll.WithBitParallel(4), pll.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var plain, comp bytes.Buffer
	if _, err := ix.WriteTo(&plain); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteToCompressed(&comp); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= plain.Len() {
		t.Fatalf("compressed container (%d bytes) not smaller than plain (%d bytes)", comp.Len(), plain.Len())
	}
	loaded, err := pll.Load(&comp)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	n := int32(ix.NumVertices())
	for i := 0; i < 200; i++ {
		s, u := r.Int31n(n), r.Int31n(n)
		if loaded.Distance(s, u) != ix.Distance(s, u) {
			t.Fatalf("compressed round trip mismatch at (%d,%d)", s, u)
		}
	}
}

func TestContainerRoundTripPaths(t *testing.T) {
	ix, err := pll.BuildIndex(testGraph(t), pll.WithPaths(), pll.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, ix, pll.VariantUndirected)
	if !loaded.Stats().HasParentPointers {
		t.Fatal("parent pointers lost in round trip")
	}
	p, err := loaded.Path(0, int32(ix.NumVertices()-1))
	if err != nil {
		t.Fatal(err)
	}
	if len(p) == 0 {
		t.Fatal("loaded path-reconstructing index returned empty path")
	}
}

func TestContainerRoundTripDirected(t *testing.T) {
	raw := gen.BarabasiAlbert(300, 3, 9)
	g, err := pll.NewDigraph(raw.NumVertices(), raw.Edges())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pll.BuildDirected(g, pll.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, ix, pll.VariantDirected)
}

func TestContainerRoundTripWeighted(t *testing.T) {
	raw := gen.BarabasiAlbert(300, 3, 11)
	r := rng.New(5)
	var wedges []pll.WeightedEdge
	for _, e := range raw.Edges() {
		wedges = append(wedges, pll.WeightedEdge{U: e.U, V: e.V, Weight: uint32(r.Intn(20) + 1)})
	}
	g, err := pll.NewWeightedGraph(raw.NumVertices(), wedges)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pll.BuildWeighted(g, pll.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, ix, pll.VariantWeighted)
}

func TestContainerRoundTripDynamicFrozen(t *testing.T) {
	g := testGraph(t)
	di, err := pll.BuildDynamic(g, pll.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	n := int32(g.NumVertices())
	for i := 0; i < 30; i++ {
		if _, err := di.InsertEdge(r.Int31n(n), r.Int31n(n)); err != nil {
			t.Fatal(err)
		}
	}
	// A dynamic container loads back as a static snapshot answering the
	// same distances; Stats keep the dynamic provenance tag.
	loaded := roundTrip(t, di, pll.VariantDynamic)
	if _, ok := loaded.(*pll.Index); !ok {
		t.Fatalf("frozen dynamic index loaded as %T, want *pll.Index", loaded)
	}
	// Freezing explicitly, then compressing, keeps the tag too.
	var comp bytes.Buffer
	if _, err := di.Freeze().WriteToCompressed(&comp); err != nil {
		t.Fatal(err)
	}
	fromComp, err := pll.Load(&comp)
	if err != nil {
		t.Fatal(err)
	}
	if v := fromComp.Stats().Variant; v != pll.VariantDynamic {
		t.Fatalf("compressed frozen snapshot variant = %s, want dynamic", v)
	}
	if fromComp.Distance(0, 5) != di.Distance(0, 5) {
		t.Fatal("compressed frozen snapshot distance mismatch")
	}
}

// Every WriteTo output must load through LoadFile too, and the unified
// file loader must reject a variant-specific legacy wrapper mismatch.
func TestContainerFileRoundTripAndVariantMismatch(t *testing.T) {
	g := testGraph(t)
	ix, err := pll.BuildIndex(g, pll.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.pllbox")
	if err := pll.WriteFile(path, ix); err != nil {
		t.Fatal(err)
	}
	o, err := pll.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if o.Distance(0, 5) != ix.Distance(0, 5) {
		t.Fatal("file round trip mismatch")
	}
	// The deprecated typed loaders must reject the wrong variant with a
	// descriptive error instead of misparsing bytes.
	if _, err := pll.LoadWeightedFile(path); err == nil {
		t.Fatal("LoadWeightedFile accepted an undirected container")
	}
	if _, err := pll.LoadDirectedFile(path); err == nil {
		t.Fatal("LoadDirectedFile accepted an undirected container")
	}
}

// Dropping the 16-byte container header leaves a bare legacy payload;
// Load must still recognize it by its inner magic (pre-container files
// stay loadable).
func TestLoadAcceptsBareLegacyPayload(t *testing.T) {
	ix, err := pll.BuildIndex(testGraph(t), pll.WithBitParallel(2), pll.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	legacy := buf.Bytes()[16:]
	o, err := pll.Load(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("bare legacy payload rejected: %v", err)
	}
	if o.Distance(1, 7) != ix.Distance(1, 7) {
		t.Fatal("legacy payload loaded wrong")
	}
}

// A WriteTo that cannot serialize (parent pointers on variants whose
// payload lacks them) must fail before emitting any bytes, so a failed
// save never leaves a partial header on the destination.
func TestContainerWriteToFailsBeforeWriting(t *testing.T) {
	dg, err := pll.NewDigraph(3, []pll.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	dix, err := pll.BuildDirected(dg, pll.WithPaths())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n, err := dix.WriteTo(&buf); err == nil || n != 0 || buf.Len() != 0 {
		t.Fatalf("directed WithPaths WriteTo: n=%d len=%d err=%v, want 0 bytes and an error", n, buf.Len(), err)
	}
	ix, err := pll.BuildIndex(testGraph(t), pll.WithPaths())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if n, err := ix.WriteToCompressed(&buf); err == nil || n != 0 || buf.Len() != 0 {
		t.Fatalf("compressed WithPaths WriteTo: n=%d len=%d err=%v, want 0 bytes and an error", n, buf.Len(), err)
	}
}

func TestContainerRejectsCorruptHeaders(t *testing.T) {
	ix, err := pll.BuildIndex(testGraph(t), pll.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = mutate(b)
		if _, err := pll.Load(bytes.NewReader(b)); !errors.Is(err, pll.ErrBadIndexFile) {
			t.Errorf("%s: got %v, want ErrBadIndexFile", name, err)
		}
	}
	corrupt("empty input", func(b []byte) []byte { return nil })
	corrupt("truncated header", func(b []byte) []byte { return b[:10] })
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("unknown version", func(b []byte) []byte { b[8], b[9] = 0xFF, 0xFF; return b })
	corrupt("unknown variant", func(b []byte) []byte { b[10] = 99; return b })
	corrupt("unknown flags", func(b []byte) []byte { b[11] |= 0x80; return b })
	corrupt("compressed flag on directed tag", func(b []byte) []byte { b[10], b[11] = 2, 1; return b })
	corrupt("truncated payload", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("variant/payload mismatch", func(b []byte) []byte { b[10] = 3; return b }) // weighted tag, plain payload
}

// Disk-resident querying must work on container files (the §6 fast
// path reads label blocks at offsets shifted by the header).
func TestDiskIndexOnContainerFile(t *testing.T) {
	ix, err := pll.BuildIndex(testGraph(t), pll.WithBitParallel(2), pll.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.pllbox")
	if err := pll.WriteFile(path, ix); err != nil {
		t.Fatal(err)
	}
	di, err := pll.OpenDiskIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	r := rng.New(21)
	n := int32(ix.NumVertices())
	for i := 0; i < 100; i++ {
		s, u := r.Int31n(n), r.Int31n(n)
		got, err := di.Distance(s, u)
		if err != nil {
			t.Fatal(err)
		}
		if got != ix.Distance(s, u) {
			t.Fatalf("disk mismatch at (%d,%d)", s, u)
		}
	}
	// Compressed containers cannot be disk-queried.
	cpath := filepath.Join(dir, "ix.pllc")
	if err := ix.SaveCompressedFile(cpath); err != nil {
		t.Fatal(err)
	}
	if _, err := pll.OpenDiskIndex(cpath); !errors.Is(err, pll.ErrBadIndexFile) {
		t.Fatalf("OpenDiskIndex on compressed container: got %v, want ErrBadIndexFile", err)
	}
}
