package pll

import (
	"io"

	"pll/internal/core"
	"pll/internal/graph"
)

// UnreachableW is returned by weighted distance queries for disconnected
// pairs.
const UnreachableW = core.UnreachableW

// WeightedGraph is an immutable undirected graph with non-negative
// integer edge weights.
type WeightedGraph struct {
	g *graph.Weighted
}

// NewWeightedGraph builds a weighted undirected graph with n vertices.
// Parallel edges keep the minimum weight; self-loops are dropped.
func NewWeightedGraph(n int, edges []WeightedEdge) (*WeightedGraph, error) {
	g, err := graph.NewWeighted(n, edges)
	if err != nil {
		return nil, err
	}
	return &WeightedGraph{g: g}, nil
}

// LoadWeightedGraph reads "u v w" lines from r.
func LoadWeightedGraph(r io.Reader) (*WeightedGraph, error) {
	edges, n, err := graph.ReadWeightedEdgeList(r)
	if err != nil {
		return nil, err
	}
	return NewWeightedGraph(n, edges)
}

// NumVertices returns the number of vertices.
func (g *WeightedGraph) NumVertices() int { return g.g.NumVertices() }

// NumEdges returns the number of undirected edges.
func (g *WeightedGraph) NumEdges() int64 { return g.g.NumEdges() }

// WeightedIndex is the exact distance oracle for weighted graphs (paper
// §6): identical labeling framework with pruned Dijkstra searches.
type WeightedIndex struct {
	ix *core.WeightedIndex
}

// BuildWeighted constructs a weighted pruned-landmark-labeling index.
// Ordering, seed, custom-order and WithPaths options apply; bit-parallel
// labeling does not exist for the weighted variant (§6).
func BuildWeighted(g *WeightedGraph, opts ...Option) (*WeightedIndex, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	ix, err := core.BuildWeighted(g.g, core.WeightedOptions{
		Ordering:    o.Ordering,
		Seed:        o.Seed,
		CustomOrder: o.CustomOrder,
		StorePaths:  o.StorePaths,
	})
	if err != nil {
		return nil, err
	}
	return &WeightedIndex{ix: ix}, nil
}

// Path returns one minimum-weight path and its total weight, or
// (nil, UnreachableW) for disconnected pairs. Requires WithPaths.
func (ix *WeightedIndex) Path(s, t int32) ([]int32, uint64, error) {
	return ix.ix.QueryPath(s, t)
}

// Distance returns the exact weighted s-t distance, or UnreachableW.
func (ix *WeightedIndex) Distance(s, t int32) uint64 { return ix.ix.Query(s, t) }

// Save writes the weighted index in a versioned binary format.
func (ix *WeightedIndex) Save(w io.Writer) error { return ix.ix.Save(w) }

// SaveFile writes the weighted index to a file.
func (ix *WeightedIndex) SaveFile(path string) error { return ix.ix.SaveFile(path) }

// LoadWeighted reads an index written by WeightedIndex.Save.
func LoadWeighted(r io.Reader) (*WeightedIndex, error) {
	ix, err := core.LoadWeighted(r)
	if err != nil {
		return nil, err
	}
	return &WeightedIndex{ix: ix}, nil
}

// LoadWeightedFile reads a weighted index file.
func LoadWeightedFile(path string) (*WeightedIndex, error) {
	ix, err := core.LoadWeightedFile(path)
	if err != nil {
		return nil, err
	}
	return &WeightedIndex{ix: ix}, nil
}

// NumVertices returns the number of vertices the index covers.
func (ix *WeightedIndex) NumVertices() int { return ix.ix.NumVertices() }

// AvgLabelSize returns the mean label size per vertex.
func (ix *WeightedIndex) AvgLabelSize() float64 { return ix.ix.AvgLabelSize() }

// Digraph is an immutable directed, unweighted graph.
type Digraph struct {
	g *graph.Digraph
}

// NewDigraph builds a directed graph with n vertices; each Edge{U,V} is
// the arc U -> V.
func NewDigraph(n int, arcs []Edge) (*Digraph, error) {
	g, err := graph.NewDigraph(n, arcs)
	if err != nil {
		return nil, err
	}
	return &Digraph{g: g}, nil
}

// LoadDigraph reads "u v" arc lines from r.
func LoadDigraph(r io.Reader) (*Digraph, error) {
	edges, n, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return NewDigraph(n, edges)
}

// NumVertices returns the number of vertices.
func (g *Digraph) NumVertices() int { return g.g.NumVertices() }

// NumArcs returns the number of directed arcs.
func (g *Digraph) NumArcs() int64 { return g.g.NumArcs() }

// DirectedIndex is the exact distance oracle for digraphs (paper §6):
// two labels per vertex, built by forward and backward pruned BFSs.
type DirectedIndex struct {
	ix *core.DirectedIndex
}

// BuildDirected constructs a directed pruned-landmark-labeling index.
// Ordering, seed, custom-order and WithPaths options apply.
func BuildDirected(g *Digraph, opts ...Option) (*DirectedIndex, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	ix, err := core.BuildDirected(g.g, core.DirectedOptions{
		Ordering:    o.Ordering,
		Seed:        o.Seed,
		CustomOrder: o.CustomOrder,
		StorePaths:  o.StorePaths,
	})
	if err != nil {
		return nil, err
	}
	return &DirectedIndex{ix: ix}, nil
}

// Path returns one directed shortest s-to-t path, or nil if t is
// unreachable from s. Requires WithPaths.
func (ix *DirectedIndex) Path(s, t int32) ([]int32, error) {
	return ix.ix.QueryPath(s, t)
}

// Distance returns the exact directed distance from s to t, or
// Unreachable.
func (ix *DirectedIndex) Distance(s, t int32) int { return ix.ix.Query(s, t) }

// Save writes the directed index in a versioned binary format.
func (ix *DirectedIndex) Save(w io.Writer) error { return ix.ix.Save(w) }

// SaveFile writes the directed index to a file.
func (ix *DirectedIndex) SaveFile(path string) error { return ix.ix.SaveFile(path) }

// LoadDirected reads an index written by DirectedIndex.Save.
func LoadDirected(r io.Reader) (*DirectedIndex, error) {
	ix, err := core.LoadDirected(r)
	if err != nil {
		return nil, err
	}
	return &DirectedIndex{ix: ix}, nil
}

// LoadDirectedFile reads a directed index file.
func LoadDirectedFile(path string) (*DirectedIndex, error) {
	ix, err := core.LoadDirectedFile(path)
	if err != nil {
		return nil, err
	}
	return &DirectedIndex{ix: ix}, nil
}

// NumVertices returns the number of vertices the index covers.
func (ix *DirectedIndex) NumVertices() int { return ix.ix.NumVertices() }

// AvgLabelSize returns the mean of |L_IN|+|L_OUT| per vertex.
func (ix *DirectedIndex) AvgLabelSize() float64 { return ix.ix.AvgLabelSize() }
