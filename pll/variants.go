package pll

import (
	"fmt"
	"io"

	"pll/internal/core"
	"pll/internal/graph"
)

// UnreachableW is the sentinel the deprecated WeightedIndex.Weight
// query space used for disconnected pairs.
//
// Deprecated: Distance now returns Unreachable (-1) for every variant.
const UnreachableW = core.UnreachableW

// WeightedGraph is an immutable undirected graph with non-negative
// integer edge weights.
type WeightedGraph struct {
	g *graph.Weighted
}

// NewWeightedGraph builds a weighted undirected graph with n vertices.
// Parallel edges keep the minimum weight; self-loops are dropped.
func NewWeightedGraph(n int, edges []WeightedEdge) (*WeightedGraph, error) {
	g, err := graph.NewWeighted(n, edges)
	if err != nil {
		return nil, err
	}
	return &WeightedGraph{g: g}, nil
}

// LoadWeightedGraph reads "u v w" lines from r.
func LoadWeightedGraph(r io.Reader) (*WeightedGraph, error) {
	edges, n, err := graph.ReadWeightedEdgeList(r)
	if err != nil {
		return nil, err
	}
	return NewWeightedGraph(n, edges)
}

// NumVertices returns the number of vertices.
func (g *WeightedGraph) NumVertices() int { return g.g.NumVertices() }

// NumEdges returns the number of undirected edges.
func (g *WeightedGraph) NumEdges() int64 { return g.g.NumEdges() }

// build dispatches Build for weighted graphs.
func (g *WeightedGraph) build(opts []Option) (Oracle, error) { return BuildWeighted(g, opts...) }

// WeightedIndex is the exact distance oracle for weighted graphs (paper
// §6): identical labeling framework with pruned Dijkstra searches.
type WeightedIndex struct {
	ix *core.WeightedIndex
}

// BuildWeighted constructs a weighted pruned-landmark-labeling index.
// It is the typed form of Build(g) for a *WeightedGraph. Ordering,
// seed, custom-order, WithPaths and WithWorkers options apply;
// bit-parallel labeling does not exist for the weighted variant (§6).
func BuildWeighted(g *WeightedGraph, opts ...Option) (*WeightedIndex, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	ix, err := core.BuildWeighted(g.g, core.WeightedOptions{
		Ordering:    o.Ordering,
		Seed:        o.Seed,
		CustomOrder: o.CustomOrder,
		StorePaths:  o.StorePaths,
		Workers:     o.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &WeightedIndex{ix: ix}, nil
}

// Distance returns the exact minimum-weight s-t distance, or
// Unreachable (-1) for disconnected pairs.
func (ix *WeightedIndex) Distance(s, t int32) int64 {
	d := ix.ix.Query(s, t)
	if d == core.UnreachableW {
		return Unreachable
	}
	return int64(d)
}

// Path returns one minimum-weight path including both endpoints, or nil
// for disconnected pairs. Requires WithPaths; use PathWeight to also
// get the path's total weight.
func (ix *WeightedIndex) Path(s, t int32) ([]int32, error) {
	p, _, err := ix.ix.QueryPath(s, t)
	return p, err
}

// PathWeight returns one minimum-weight path and its total weight, or
// (nil, Unreachable) for disconnected pairs. Requires WithPaths.
func (ix *WeightedIndex) PathWeight(s, t int32) ([]int32, int64, error) {
	p, w, err := ix.ix.QueryPath(s, t)
	if err != nil || p == nil {
		return nil, Unreachable, err
	}
	return p, int64(w), nil
}

// NumVertices returns the number of vertices the index covers.
func (ix *WeightedIndex) NumVertices() int { return ix.ix.NumVertices() }

// Stats summarizes the index.
func (ix *WeightedIndex) Stats() Stats { return ix.ix.ComputeStats() }

// AvgLabelSize returns the mean label size per vertex.
//
// Deprecated: use Stats().AvgLabelSize.
func (ix *WeightedIndex) AvgLabelSize() float64 { return ix.ix.AvgLabelSize() }

// WriteTo serializes the index in the self-describing container format
// read back by Load. Indexes built WithPaths cannot be serialized.
func (ix *WeightedIndex) WriteTo(w io.Writer) (int64, error) { return ix.ix.WriteTo(w) }

// Save writes the weighted index in the container format.
//
// Deprecated: use WriteTo.
func (ix *WeightedIndex) Save(w io.Writer) error {
	_, err := ix.WriteTo(w)
	return err
}

// SaveFile writes the weighted index to a file in the container format.
//
// Deprecated: use WriteFile.
func (ix *WeightedIndex) SaveFile(path string) error { return WriteFile(path, ix) }

// LoadWeighted reads a weighted index, rejecting other variants.
//
// Deprecated: use Load, which detects the variant from the header.
func LoadWeighted(r io.Reader) (*WeightedIndex, error) {
	o, err := Load(r)
	if err != nil {
		return nil, err
	}
	return asWeighted(o)
}

// LoadWeightedFile reads a weighted index file, rejecting other
// variants.
//
// Deprecated: use LoadFile.
func LoadWeightedFile(path string) (*WeightedIndex, error) {
	o, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	return asWeighted(o)
}

func asWeighted(o Oracle) (*WeightedIndex, error) {
	ix, ok := o.(*WeightedIndex)
	if !ok {
		return nil, fmt.Errorf("pll: expected a weighted index, the file holds the %s variant", variantOf(o))
	}
	return ix, nil
}

// Digraph is an immutable directed, unweighted graph.
type Digraph struct {
	g *graph.Digraph
}

// NewDigraph builds a directed graph with n vertices; each Edge{U,V} is
// the arc U -> V.
func NewDigraph(n int, arcs []Edge) (*Digraph, error) {
	g, err := graph.NewDigraph(n, arcs)
	if err != nil {
		return nil, err
	}
	return &Digraph{g: g}, nil
}

// LoadDigraph reads "u v" arc lines from r.
func LoadDigraph(r io.Reader) (*Digraph, error) {
	edges, n, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return NewDigraph(n, edges)
}

// NumVertices returns the number of vertices.
func (g *Digraph) NumVertices() int { return g.g.NumVertices() }

// NumArcs returns the number of directed arcs.
func (g *Digraph) NumArcs() int64 { return g.g.NumArcs() }

// build dispatches Build for directed graphs.
func (g *Digraph) build(opts []Option) (Oracle, error) { return BuildDirected(g, opts...) }

// DirectedIndex is the exact distance oracle for digraphs (paper §6):
// two labels per vertex, built by forward and backward pruned BFSs.
type DirectedIndex struct {
	ix *core.DirectedIndex
}

// BuildDirected constructs a directed pruned-landmark-labeling index.
// It is the typed form of Build(g) for a *Digraph. Ordering, seed,
// custom-order, WithPaths and WithWorkers options apply.
func BuildDirected(g *Digraph, opts ...Option) (*DirectedIndex, error) {
	var o core.Options
	for _, f := range opts {
		f(&o)
	}
	ix, err := core.BuildDirected(g.g, core.DirectedOptions{
		Ordering:    o.Ordering,
		Seed:        o.Seed,
		CustomOrder: o.CustomOrder,
		StorePaths:  o.StorePaths,
		Workers:     o.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &DirectedIndex{ix: ix}, nil
}

// Path returns one directed shortest s-to-t path, or nil if t is
// unreachable from s. Requires WithPaths.
func (ix *DirectedIndex) Path(s, t int32) ([]int32, error) {
	return ix.ix.QueryPath(s, t)
}

// Distance returns the exact directed distance from s to t, or
// Unreachable.
func (ix *DirectedIndex) Distance(s, t int32) int64 { return int64(ix.ix.Query(s, t)) }

// NumVertices returns the number of vertices the index covers.
func (ix *DirectedIndex) NumVertices() int { return ix.ix.NumVertices() }

// Stats summarizes the index; per-vertex sizes are |L_OUT| + |L_IN|.
func (ix *DirectedIndex) Stats() Stats { return ix.ix.ComputeStats() }

// AvgLabelSize returns the mean of |L_IN|+|L_OUT| per vertex.
//
// Deprecated: use Stats().AvgLabelSize.
func (ix *DirectedIndex) AvgLabelSize() float64 { return ix.ix.AvgLabelSize() }

// WriteTo serializes the index in the self-describing container format
// read back by Load. Indexes built WithPaths cannot be serialized.
func (ix *DirectedIndex) WriteTo(w io.Writer) (int64, error) { return ix.ix.WriteTo(w) }

// Save writes the directed index in the container format.
//
// Deprecated: use WriteTo.
func (ix *DirectedIndex) Save(w io.Writer) error {
	_, err := ix.WriteTo(w)
	return err
}

// SaveFile writes the directed index to a file in the container format.
//
// Deprecated: use WriteFile.
func (ix *DirectedIndex) SaveFile(path string) error { return WriteFile(path, ix) }

// LoadDirected reads a directed index, rejecting other variants.
//
// Deprecated: use Load, which detects the variant from the header.
func LoadDirected(r io.Reader) (*DirectedIndex, error) {
	o, err := Load(r)
	if err != nil {
		return nil, err
	}
	return asDirected(o)
}

// LoadDirectedFile reads a directed index file, rejecting other
// variants.
//
// Deprecated: use LoadFile.
func LoadDirectedFile(path string) (*DirectedIndex, error) {
	o, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	return asDirected(o)
}

func asDirected(o Oracle) (*DirectedIndex, error) {
	ix, ok := o.(*DirectedIndex)
	if !ok {
		return nil, fmt.Errorf("pll: expected a directed index, the file holds the %s variant", variantOf(o))
	}
	return ix, nil
}
