package pll_test

// Public-API half of the parallel-equivalence layer: whatever the
// variant, a Build with WithWorkers(n) must serialize to exactly the
// bytes of a sequential build, and worker counts 0 (GOMAXPROCS) and
// negative (clamped) must behave like documented.

import (
	"bytes"
	"testing"

	"pll/internal/rng"
	"pll/pll"
)

func oracleBytes(t *testing.T, o pll.Oracle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// testGraphs builds one moderately sized graph per buildable kind.
func testUndirected(t *testing.T, n int, seed uint64) *pll.Graph {
	t.Helper()
	r := rng.New(seed)
	edges := make([]pll.Edge, 0, 3*n)
	for v := 1; v < n; v++ { // connected backbone
		edges = append(edges, pll.Edge{U: int32(r.Intn(v)), V: int32(v)})
	}
	for i := 0; i < 2*n; i++ {
		edges = append(edges, pll.Edge{U: r.Int31n(int32(n)), V: r.Int31n(int32(n))})
	}
	g, err := pll.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParallelBuildByteIdenticalUndirected(t *testing.T) {
	g := testUndirected(t, 600, 1)
	for _, opts := range [][]pll.Option{
		{pll.WithBitParallel(16)},
		{pll.WithBitParallel(0)},
		{pll.WithPaths()},
		{pll.WithOrdering(pll.OrderRandom), pll.WithSeed(9)},
	} {
		seq, err := pll.BuildIndex(g, append(opts, pll.WithWorkers(1))...)
		if err != nil {
			t.Fatal(err)
		}
		want := oracleBytes(t, seq)
		for _, w := range []int{2, 8} {
			par, err := pll.BuildIndex(g, append(opts, pll.WithWorkers(w))...)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(oracleBytes(t, par), want) {
				t.Fatalf("opts %d, workers=%d: container bytes differ from sequential build", len(opts), w)
			}
		}
	}
}

func TestParallelBuildByteIdenticalDirected(t *testing.T) {
	r := rng.New(3)
	n := 400
	arcs := make([]pll.Edge, 0, 4*n)
	for i := 0; i < 4*n; i++ {
		arcs = append(arcs, pll.Edge{U: r.Int31n(int32(n)), V: r.Int31n(int32(n))})
	}
	g, err := pll.NewDigraph(n, arcs)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := pll.BuildDirected(g, pll.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := pll.BuildDirected(g, pll.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleBytes(t, seq), oracleBytes(t, par)) {
		t.Fatal("directed container bytes differ from sequential build")
	}
}

func TestParallelBuildByteIdenticalWeighted(t *testing.T) {
	r := rng.New(5)
	n := 400
	edges := make([]pll.WeightedEdge, 0, 3*n)
	for v := 1; v < n; v++ {
		edges = append(edges, pll.WeightedEdge{U: int32(r.Intn(v)), V: int32(v), Weight: uint32(r.Intn(9) + 1)})
	}
	for i := 0; i < 2*n; i++ {
		edges = append(edges, pll.WeightedEdge{U: r.Int31n(int32(n)), V: r.Int31n(int32(n)), Weight: uint32(r.Intn(9) + 1)})
	}
	g, err := pll.NewWeightedGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := pll.BuildWeighted(g, pll.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := pll.BuildWeighted(g, pll.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleBytes(t, seq), oracleBytes(t, par)) {
		t.Fatal("weighted container bytes differ from sequential build")
	}
}

func TestParallelBuildByteIdenticalDynamic(t *testing.T) {
	g := testUndirected(t, 500, 7)
	seq, err := pll.BuildDynamic(g, pll.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := pll.BuildDynamic(g, pll.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleBytes(t, seq), oracleBytes(t, par)) {
		t.Fatal("dynamic initial build differs from sequential build")
	}
	// Updates stay sequential: identical insertions keep them identical.
	r := rng.New(99)
	for i := 0; i < 30; i++ {
		a, b := r.Int31n(500), r.Int31n(500)
		if _, err := seq.InsertEdge(a, b); err != nil {
			t.Fatal(err)
		}
		if _, err := par.InsertEdge(a, b); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(oracleBytes(t, seq), oracleBytes(t, par)) {
		t.Fatal("dynamic indexes diverged after identical insertions")
	}
}

func TestWithWorkersDefaultAndClamp(t *testing.T) {
	g := testUndirected(t, 300, 11)
	base, err := pll.BuildIndex(g, pll.WithBitParallel(8), pll.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want := oracleBytes(t, base)
	// 0 = GOMAXPROCS default, negative clamps to sequential; both must
	// produce the sequential bytes.
	for _, w := range []int{0, -3} {
		ix, err := pll.BuildIndex(g, pll.WithBitParallel(8), pll.WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(oracleBytes(t, ix), want) {
			t.Fatalf("WithWorkers(%d): container bytes differ", w)
		}
	}
	// Omitting WithWorkers entirely equals the explicit default.
	ix, err := pll.BuildIndex(g, pll.WithBitParallel(8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oracleBytes(t, ix), want) {
		t.Fatal("default build: container bytes differ")
	}
}

// TestParallelBuildDistancesAgree is a belt-and-braces check through the
// Oracle interface: distances from a parallel build match a sequential
// build for every variant (byte-identity already implies this for the
// serializable combinations).
func TestParallelBuildDistancesAgree(t *testing.T) {
	g := testUndirected(t, 500, 13)
	seq, err := pll.Build(g, pll.WithBitParallel(16), pll.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := pll.Build(g, pll.WithBitParallel(16), pll.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	for i := 0; i < 500; i++ {
		s, u := r.Int31n(500), r.Int31n(500)
		if ds, dp := seq.Distance(s, u), par.Distance(s, u); ds != dp {
			t.Fatalf("Distance(%d,%d): sequential %d, parallel %d", s, u, ds, dp)
		}
	}
}
