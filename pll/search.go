package pll

// Search capability: neighborhood queries served straight from the
// 2-hop labels. Inverting the pruned-landmark labels (hub -> the
// dist-sorted vertices carrying it) turns the distance oracle into a
// search structure that answers "k nearest vertices to s", "everything
// within distance r of s" and "nearest members of a registered subset"
// without touching the graph — the workloads behind social search,
// nearest-POI lookup and local centrality.
//
// Like Batcher, the capability is discovered by type-assertion:
//
//	if sr, ok := o.(pll.Searcher); ok {
//		nearest, _ := sr.KNN(src, 10)
//	}
//
// *Index, *DirectedIndex, *WeightedIndex, *FlatIndex and
// *ConcurrentOracle implement Searcher. *DynamicIndex does not (edge
// insertions would invalidate the inversion); a ConcurrentOracle
// wrapping one reports ErrNoSearch. The first search query on an index
// builds and caches the inverted index — O(total label size) plus
// per-hub sorting — unless the index was Opened from a flat container
// written with FlatSearch, which memory-maps a persisted inversion and
// starts cold in O(1).

import (
	"errors"

	"pll/internal/core"
)

// Neighbor is one search answer: a vertex and its exact distance from
// the query source.
type Neighbor = core.Neighbor

// ErrNoSearch is returned by search queries on oracles without the
// search capability (a ConcurrentOracle wrapping a *DynamicIndex).
var ErrNoSearch = errors.New("pll: oracle does not support search queries")

// ErrForeignSet is returned by NearestIn when the set was registered
// on a different oracle (or is nil).
var ErrForeignSet = core.ErrForeignSet

// Searcher answers exact neighborhood queries over the labels. All
// three queries exclude the source vertex itself, order results by
// (distance, vertex ID), and resolve ties at a k-cutoff to the
// smallest vertex IDs — so answers are deterministic and identical
// across heap-loaded, memory-mapped and hot-swapped servings of the
// same index. Implementations are safe for concurrent use.
type Searcher interface {
	// KNN returns the (up to) k nearest vertices to s. Fewer than k
	// results mean fewer than k vertices are reachable from s.
	KNN(s int32, k int) ([]Neighbor, error)
	// Range returns every vertex within distance radius of s. A
	// negative radius yields no results.
	Range(s int32, radius int64) ([]Neighbor, error)
	// NearestIn returns the (up to) k members of set nearest to s. The
	// set must have been registered on this oracle with NewVertexSet.
	NearestIn(s int32, set *VertexSet, k int) ([]Neighbor, error)
	// NewVertexSet registers a vertex subset (the "POI" list) for
	// NearestIn queries, building a filtered inverted index over just
	// the members' labels — registration costs O(total label mass of
	// the members), after which NearestIn is as cheap as a kNN over an
	// index containing only the subset.
	NewVertexSet(members []int32) (*VertexSet, error)
}

// VertexSet is a registered vertex subset with its own filtered
// inverted index. It is immutable, safe for concurrent use, and valid
// only with the oracle that created it (a ConcurrentOracle set dies
// with the snapshot it was registered on — re-register after Swap or
// a server reload).
type VertexSet struct {
	set  *core.VertexSet
	snap Oracle // the snapshot a ConcurrentOracle registered on, else nil
}

// Size returns the number of distinct vertices in the set.
func (vs *VertexSet) Size() int { return vs.set.Size() }

// checkSource validates the query source against an oracle.
func checkSource(o Oracle, s int32) error { return Validate(o, s) }

// ---------------------------------------------------------------------
// Undirected Index
// ---------------------------------------------------------------------

// KNN returns the k nearest vertices to s (see Searcher).
func (ix *Index) KNN(s int32, k int) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	return ix.ix.KNN(s, k), nil
}

// Range returns every vertex within distance radius of s (see
// Searcher).
func (ix *Index) Range(s int32, radius int64) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	return ix.ix.SearchRange(s, radius), nil
}

// NearestIn returns the k members of set nearest to s (see Searcher).
func (ix *Index) NearestIn(s int32, set *VertexSet, k int) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	if set == nil {
		return nil, ErrForeignSet
	}
	return ix.ix.KNNIn(s, set.set, k)
}

// NewVertexSet registers a vertex subset for NearestIn queries (see
// Searcher).
func (ix *Index) NewVertexSet(members []int32) (*VertexSet, error) {
	set, err := ix.ix.NewVertexSet(members)
	if err != nil {
		return nil, err
	}
	return &VertexSet{set: set}, nil
}

// ---------------------------------------------------------------------
// DirectedIndex: queries rank candidates by the directed distance
// d(s, v) — "which vertices does s reach fastest".
// ---------------------------------------------------------------------

// KNN returns the k vertices s reaches with the smallest directed
// distance (see Searcher).
func (ix *DirectedIndex) KNN(s int32, k int) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	return ix.ix.KNN(s, k), nil
}

// Range returns every vertex v with directed d(s, v) <= radius (see
// Searcher).
func (ix *DirectedIndex) Range(s int32, radius int64) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	return ix.ix.SearchRange(s, radius), nil
}

// NearestIn returns the k members of set with the smallest directed
// distance from s (see Searcher).
func (ix *DirectedIndex) NearestIn(s int32, set *VertexSet, k int) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	if set == nil {
		return nil, ErrForeignSet
	}
	return ix.ix.KNNIn(s, set.set, k)
}

// NewVertexSet registers a vertex subset for NearestIn queries (see
// Searcher).
func (ix *DirectedIndex) NewVertexSet(members []int32) (*VertexSet, error) {
	set, err := ix.ix.NewVertexSet(members)
	if err != nil {
		return nil, err
	}
	return &VertexSet{set: set}, nil
}

// ---------------------------------------------------------------------
// WeightedIndex
// ---------------------------------------------------------------------

// KNN returns the k nearest vertices to s by summed edge weight (see
// Searcher).
func (ix *WeightedIndex) KNN(s int32, k int) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	return ix.ix.KNN(s, k), nil
}

// Range returns every vertex within weighted distance radius of s
// (see Searcher).
func (ix *WeightedIndex) Range(s int32, radius int64) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	return ix.ix.SearchRange(s, radius), nil
}

// NearestIn returns the k members of set nearest to s by weighted
// distance (see Searcher).
func (ix *WeightedIndex) NearestIn(s int32, set *VertexSet, k int) ([]Neighbor, error) {
	if err := checkSource(ix, s); err != nil {
		return nil, err
	}
	if set == nil {
		return nil, ErrForeignSet
	}
	return ix.ix.KNNIn(s, set.set, k)
}

// NewVertexSet registers a vertex subset for NearestIn queries (see
// Searcher).
func (ix *WeightedIndex) NewVertexSet(members []int32) (*VertexSet, error) {
	set, err := ix.ix.NewVertexSet(members)
	if err != nil {
		return nil, err
	}
	return &VertexSet{set: set}, nil
}

// ---------------------------------------------------------------------
// FlatIndex: the wrapped oracle is always one of the variants above,
// so search queries run straight off the mapping — and when the
// container was written with FlatSearch, the inverted index itself is
// served zero-copy (no lazy build, O(1) cold start).
// ---------------------------------------------------------------------

// KNN returns the k nearest vertices to s straight from the mapping
// (see Searcher).
//
//pllvet:ignore capassert fi.o is always one of the package's index variants, all Searcher by construction
func (fi *FlatIndex) KNN(s int32, k int) ([]Neighbor, error) {
	return fi.o.(Searcher).KNN(s, k)
}

// Range returns every vertex within distance radius of s straight
// from the mapping (see Searcher).
//
//pllvet:ignore capassert fi.o is always one of the package's index variants, all Searcher by construction
func (fi *FlatIndex) Range(s int32, radius int64) ([]Neighbor, error) {
	return fi.o.(Searcher).Range(s, radius)
}

// NearestIn returns the k members of set nearest to s (see Searcher).
//
//pllvet:ignore capassert fi.o is always one of the package's index variants, all Searcher by construction
func (fi *FlatIndex) NearestIn(s int32, set *VertexSet, k int) ([]Neighbor, error) {
	return fi.o.(Searcher).NearestIn(s, set, k)
}

// NewVertexSet registers a vertex subset for NearestIn queries (see
// Searcher). The set references the mapping and must not outlive
// Close.
//
//pllvet:ignore capassert fi.o is always one of the package's index variants, all Searcher by construction
func (fi *FlatIndex) NewVertexSet(members []int32) (*VertexSet, error) {
	return fi.o.(Searcher).NewVertexSet(members)
}

// ---------------------------------------------------------------------
// ConcurrentOracle: search queries run against a consistent snapshot
// under View; a wrapped *DynamicIndex yields ErrNoSearch.
// ---------------------------------------------------------------------

// KNN returns the k nearest vertices to s on the current snapshot (see
// Searcher); ErrNoSearch if the snapshot cannot search.
func (c *ConcurrentOracle) KNN(s int32, k int) ([]Neighbor, error) {
	var out []Neighbor
	err := c.View(func(o Oracle) error {
		sr, ok := o.(Searcher)
		if !ok {
			return ErrNoSearch
		}
		var err error
		out, err = sr.KNN(s, k)
		return err
	})
	return out, err
}

// Range returns every vertex within distance radius of s on the
// current snapshot (see Searcher).
func (c *ConcurrentOracle) Range(s int32, radius int64) ([]Neighbor, error) {
	var out []Neighbor
	err := c.View(func(o Oracle) error {
		sr, ok := o.(Searcher)
		if !ok {
			return ErrNoSearch
		}
		var err error
		out, err = sr.Range(s, radius)
		return err
	})
	return out, err
}

// ErrStaleSet is returned by ConcurrentOracle.NearestIn when the set
// was registered on a snapshot that a Swap (hot reload) has since
// retired; re-register with NewVertexSet.
var ErrStaleSet = errors.New("pll: vertex set was registered on a retired snapshot; re-register after Swap")

// NearestIn returns the k members of set nearest to s (see Searcher).
// The set must have been registered on the *current* snapshot: after a
// Swap, previously registered sets yield ErrStaleSet.
func (c *ConcurrentOracle) NearestIn(s int32, set *VertexSet, k int) ([]Neighbor, error) {
	var out []Neighbor
	err := c.View(func(o Oracle) error {
		sr, ok := o.(Searcher)
		if !ok {
			return ErrNoSearch
		}
		if set == nil {
			return ErrForeignSet
		}
		if set.snap != o {
			return ErrStaleSet
		}
		var err error
		out, err = sr.NearestIn(s, set, k)
		return err
	})
	return out, err
}

// NewVertexSet registers a vertex subset on the current snapshot (see
// Searcher and NearestIn for the staleness contract).
func (c *ConcurrentOracle) NewVertexSet(members []int32) (*VertexSet, error) {
	var out *VertexSet
	err := c.View(func(o Oracle) error {
		sr, ok := o.(Searcher)
		if !ok {
			return ErrNoSearch
		}
		var err error
		out, err = sr.NewVertexSet(members)
		if out != nil {
			out.snap = o
		}
		return err
	})
	return out, err
}
