package pll

import (
	"path/filepath"
	"strings"
	"testing"
)

func square() *Graph {
	g, err := NewGraph(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	if err != nil {
		panic(err)
	}
	return g
}

func TestPublicQuickstart(t *testing.T) {
	g := square()
	ix, err := Build(g, WithBitParallel(2), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Distance(0, 2); d != 2 {
		t.Fatalf("Distance(0,2) = %d, want 2", d)
	}
	if d := ix.Distance(0, 0); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	if ix.NumVertices() != 4 {
		t.Fatal("vertex count wrong")
	}
}

func TestPublicPath(t *testing.T) {
	g := square()
	ix, err := Build(g, WithPaths())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ix.Path(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0] != 0 || p[2] != 2 {
		t.Fatalf("path = %v", p)
	}
}

func TestPublicOrderingOptions(t *testing.T) {
	g := square()
	for _, o := range []Ordering{OrderDegree, OrderRandom, OrderCloseness} {
		ix, err := Build(g, WithOrdering(o))
		if err != nil {
			t.Fatal(err)
		}
		if ix.Distance(0, 2) != 2 {
			t.Fatalf("ordering %v gives wrong distance", o)
		}
	}
}

func TestPublicCustomOrder(t *testing.T) {
	g := square()
	ix, err := Build(g, WithCustomOrder([]int32{3, 2, 1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Distance(1, 3) != 2 {
		t.Fatal("custom order gives wrong distance")
	}
}

func TestPublicLoadGraphText(t *testing.T) {
	g, err := LoadGraph(strings.NewReader("# demo\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("loaded n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(1) != 2 || len(g.Neighbors(1)) != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestPublicSaveLoadAndDisk(t *testing.T) {
	g := square()
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.pll")
	if err := WriteFile(path, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Distance(1, 3) != 2 {
		t.Fatal("loaded index wrong")
	}
	di, err := OpenDiskIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	d, err := di.Distance(1, 3)
	if err != nil || d != 2 {
		t.Fatalf("disk distance = %d, %v", d, err)
	}
}

func TestPublicStats(t *testing.T) {
	g := square()
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.NumVertices != 4 || st.AvgLabelSize <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublicValidate(t *testing.T) {
	g := square()
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ix, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := Validate(ix, 4); err == nil {
		t.Fatal("expected range error")
	}
	if err := Validate(ix, -1); err == nil {
		t.Fatal("expected range error for negative")
	}
}

func TestPublicWeighted(t *testing.T) {
	g, err := NewWeightedGraph(3, []WeightedEdge{
		{U: 0, V: 1, Weight: 4},
		{U: 1, V: 2, Weight: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildWeighted(g, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Distance(0, 2); d != 10 {
		t.Fatalf("weighted distance = %d, want 10", d)
	}
	if ix.NumVertices() != 3 || ix.AvgLabelSize() <= 0 {
		t.Fatal("weighted accessors wrong")
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatal("weighted graph accessors wrong")
	}
}

func TestPublicWeightedLoad(t *testing.T) {
	g, err := LoadWeightedGraph(strings.NewReader("0 1 5\n1 2 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildWeighted(g)
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Distance(0, 2); d != 12 {
		t.Fatalf("weighted distance = %d, want 12", d)
	}
}

func TestPublicDirected(t *testing.T) {
	g, err := NewDigraph(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildDirected(g)
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Distance(0, 2); d != 2 {
		t.Fatalf("directed distance = %d, want 2", d)
	}
	if d := ix.Distance(2, 0); d != Unreachable {
		t.Fatalf("reverse distance = %d, want Unreachable", d)
	}
	if ix.NumVertices() != 3 || ix.AvgLabelSize() <= 0 {
		t.Fatal("directed accessors wrong")
	}
	if g.NumVertices() != 3 || g.NumArcs() != 2 {
		t.Fatal("digraph accessors wrong")
	}
}

func TestPublicDirectedLoad(t *testing.T) {
	g, err := LoadDigraph(strings.NewReader("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 2 {
		t.Fatal("arcs wrong")
	}
}

func TestPublicErrors(t *testing.T) {
	if _, err := NewGraph(1, []Edge{{U: 0, V: 5}}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := LoadGraph(strings.NewReader("bogus line\n")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected missing-file error")
	}
	if _, err := OpenDiskIndex(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected missing-file error")
	}
}
