package pll_test

import (
	"bytes"
	"fmt"

	"pll/pll"
)

// Build an index over a small graph and answer exact distance queries.
func Example() {
	g, _ := pll.NewGraph(5, []pll.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4},
	})
	ix, _ := pll.Build(g)
	fmt.Println(ix.Distance(0, 2))
	fmt.Println(ix.Distance(0, 3)) // around the short side of the ring
	// Output:
	// 2
	// 2
}

// Reconstruct a shortest path, not just its length (§6 of the paper).
func ExampleOracle_path() {
	g, _ := pll.NewGraph(4, []pll.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	ix, _ := pll.Build(g, pll.WithPaths())
	p, _ := ix.Path(0, 3)
	fmt.Println(p)
	// Output:
	// [0 1 2 3]
}

// Build dispatches on the graph kind: a *Digraph yields the directed
// variant, whose distances are asymmetric.
func ExampleBuild_directed() {
	g, _ := pll.NewDigraph(3, []pll.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	ix, _ := pll.Build(g)
	fmt.Println(ix.Distance(0, 2))
	fmt.Println(ix.Distance(2, 0))
	// Output:
	// 2
	// -1
}

// A *WeightedGraph yields the pruned-Dijkstra variant; Distance reports
// summed edge weights through the same Oracle surface.
func ExampleBuild_weighted() {
	g, _ := pll.NewWeightedGraph(3, []pll.WeightedEdge{
		{U: 0, V: 1, Weight: 4},
		{U: 1, V: 2, Weight: 5},
		{U: 0, V: 2, Weight: 20},
	})
	ix, _ := pll.Build(g)
	fmt.Println(ix.Distance(0, 2))
	// Output:
	// 9
}

// Every variant serializes through WriteTo into one self-describing
// container; Load reads the header and returns the right oracle
// without being told what the stream holds.
func ExampleLoad() {
	g, _ := pll.NewDigraph(3, []pll.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	built, _ := pll.Build(g)

	var buf bytes.Buffer
	built.WriteTo(&buf)

	o, _ := pll.Load(&buf) // auto-detects the directed variant
	fmt.Println(o.Stats().Variant)
	fmt.Println(o.Distance(0, 2))
	// Output:
	// directed
	// 2
}

// Dynamic indexes accept edge insertions and stay exact.
func ExampleDynamicIndex() {
	g, _ := pll.NewGraph(4, []pll.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	di, _ := pll.BuildDynamic(g)
	fmt.Println(di.Distance(0, 3))
	di.InsertEdge(1, 2)
	fmt.Println(di.Distance(0, 3))
	// Output:
	// -1
	// 3
}

// The Batcher capability accelerates one-to-many query patterns
// (search ranking): the source label is pinned once, each target costs
// one label scan. Every variant implements it — probe any Oracle by
// type-assertion.
func ExampleBatcher() {
	g, _ := pll.NewGraph(5, []pll.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	o, _ := pll.Build(g)
	if b, ok := o.(pll.Batcher); ok {
		fmt.Println(b.DistanceFrom(0, []int32{1, 2, 3, 4}, nil))
	}
	// Output:
	// [1 2 3 4]
}
