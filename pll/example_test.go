package pll_test

import (
	"fmt"

	"pll/pll"
)

// Build an index over a small graph and answer exact distance queries.
func Example() {
	g, _ := pll.NewGraph(5, []pll.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4},
	})
	ix, _ := pll.Build(g)
	fmt.Println(ix.Distance(0, 2))
	fmt.Println(ix.Distance(0, 3)) // around the short side of the ring
	// Output:
	// 2
	// 2
}

// Reconstruct a shortest path, not just its length (§6 of the paper).
func ExampleIndex_Path() {
	g, _ := pll.NewGraph(4, []pll.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	ix, _ := pll.Build(g, pll.WithPaths())
	p, _ := ix.Path(0, 3)
	fmt.Println(p)
	// Output:
	// [0 1 2 3]
}

// Directed graphs keep two labels per vertex; distances are asymmetric.
func ExampleBuildDirected() {
	g, _ := pll.NewDigraph(3, []pll.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	ix, _ := pll.BuildDirected(g)
	fmt.Println(ix.Distance(0, 2))
	fmt.Println(ix.Distance(2, 0))
	// Output:
	// 2
	// -1
}

// Weighted graphs use pruned Dijkstra with 32-bit distances.
func ExampleBuildWeighted() {
	g, _ := pll.NewWeightedGraph(3, []pll.WeightedEdge{
		{U: 0, V: 1, Weight: 4},
		{U: 1, V: 2, Weight: 5},
		{U: 0, V: 2, Weight: 20},
	})
	ix, _ := pll.BuildWeighted(g)
	fmt.Println(ix.Distance(0, 2))
	// Output:
	// 9
}

// Dynamic indexes accept edge insertions and stay exact.
func ExampleDynamicIndex() {
	g, _ := pll.NewGraph(4, []pll.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	di, _ := pll.BuildDynamic(g)
	fmt.Println(di.Distance(0, 3))
	di.InsertEdge(1, 2)
	fmt.Println(di.Distance(0, 3))
	// Output:
	// -1
	// 3
}

// BatchSource accelerates one-to-many query patterns (search ranking).
func ExampleBatchSource() {
	g, _ := pll.NewGraph(5, []pll.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
	})
	ix, _ := pll.Build(g)
	bs := ix.NewBatchSource(0)
	for _, t := range []int32{1, 2, 3, 4} {
		fmt.Print(bs.Distance(t), " ")
	}
	fmt.Println()
	// Output:
	// 1 2 3 4
}
