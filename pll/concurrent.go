package pll

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// ErrNotDynamic is returned by ConcurrentOracle.InsertEdge when the
// wrapped oracle is a frozen/static variant.
var ErrNotDynamic = errors.New("pll: oracle is not a dynamic index")

// ConcurrentOracle makes any Oracle safe for concurrent use and
// atomically replaceable, which is what a long-lived query server
// needs:
//
//   - Static variants (*Index, *DirectedIndex, *WeightedIndex and
//     frozen dynamic snapshots) are immutable, so reads go straight
//     through a single atomic pointer load — no lock, no contention,
//     same per-query cost as calling the index directly.
//   - A wrapped *DynamicIndex additionally gets an RWMutex: Distance
//     and friends take the read lock, InsertEdge takes the write lock,
//     so online updates interleave safely with queries.
//   - Swap installs a different oracle (e.g. a freshly loaded index
//     file) in one atomic store. In-flight operations finish against
//     the oracle they started on; new operations see the replacement.
//     Nothing blocks, no request is dropped.
//
// A ConcurrentOracle itself implements Oracle, so servers and tools
// can program against it unchanged.
type ConcurrentOracle struct {
	state atomic.Pointer[concurrentState]
	gen   atomic.Uint64
}

// concurrentState pairs an oracle with the lock discipline it needs.
// The two travel together through the atomic pointer so a swap can
// never mix one oracle with another's mutex.
type concurrentState struct {
	oracle Oracle
	mu     *sync.RWMutex // nil for immutable (static) oracles
}

func newConcurrentState(o Oracle) *concurrentState {
	st := &concurrentState{oracle: o}
	if _, dynamic := o.(*DynamicIndex); dynamic {
		st.mu = &sync.RWMutex{}
	}
	return st
}

// NewConcurrentOracle wraps o for concurrent querying, updating and
// hot-swapping.
func NewConcurrentOracle(o Oracle) *ConcurrentOracle {
	c := &ConcurrentOracle{}
	c.state.Store(newConcurrentState(o))
	return c
}

// View runs f against a consistent snapshot of the current oracle,
// holding the read lock (when the oracle is dynamic) for the whole
// call. Use it when several calls must observe the same index — e.g.
// validating vertex IDs and then querying, or answering a batch — so a
// concurrent Swap cannot change the oracle mid-sequence. f must not
// retain the oracle after returning and must not call InsertEdge or
// Swap (the former would deadlock on the write lock).
func (c *ConcurrentOracle) View(f func(o Oracle) error) error {
	st := c.state.Load()
	if st.mu != nil {
		st.mu.RLock()
		defer st.mu.RUnlock()
	}
	return f(st.oracle)
}

// Distance returns the exact s-t distance, or Unreachable.
func (c *ConcurrentOracle) Distance(s, t int32) int64 {
	st := c.state.Load()
	if st.mu == nil {
		return st.oracle.Distance(s, t)
	}
	st.mu.RLock()
	d := st.oracle.Distance(s, t)
	st.mu.RUnlock()
	return d
}

// Path returns one exact shortest path, or nil for disconnected pairs.
func (c *ConcurrentOracle) Path(s, t int32) ([]int32, error) {
	st := c.state.Load()
	if st.mu == nil {
		return st.oracle.Path(s, t)
	}
	st.mu.RLock()
	p, err := st.oracle.Path(s, t)
	st.mu.RUnlock()
	return p, err
}

// DistanceFrom answers a single-source batch against one consistent
// snapshot of the current oracle (see Batcher), forwarding to the
// snapshot's own Batcher implementation when it has one and falling
// back to per-target Distance calls otherwise. For a wrapped
// *DynamicIndex the read lock covers the whole batch, so a concurrent
// InsertEdge can never split it.
func (c *ConcurrentOracle) DistanceFrom(s int32, targets []int32, dst []int64) []int64 {
	st := c.state.Load()
	if st.mu != nil {
		st.mu.RLock()
		defer st.mu.RUnlock()
	}
	if b, ok := st.oracle.(Batcher); ok {
		return b.DistanceFrom(s, targets, dst)
	}
	if cap(dst) < len(targets) {
		dst = make([]int64, len(targets))
	}
	dst = dst[:len(targets)]
	for i, t := range targets {
		dst[i] = st.oracle.Distance(s, t)
	}
	return dst
}

// NumVertices returns the number of vertices the current oracle covers.
func (c *ConcurrentOracle) NumVertices() int {
	st := c.state.Load()
	if st.mu == nil {
		return st.oracle.NumVertices()
	}
	st.mu.RLock()
	n := st.oracle.NumVertices()
	st.mu.RUnlock()
	return n
}

// Stats summarizes the current oracle.
func (c *ConcurrentOracle) Stats() Stats {
	st := c.state.Load()
	if st.mu == nil {
		return st.oracle.Stats()
	}
	st.mu.RLock()
	s := st.oracle.Stats()
	st.mu.RUnlock()
	return s
}

// WriteTo serializes the current oracle, excluding concurrent updates
// for the duration of the write.
func (c *ConcurrentOracle) WriteTo(w io.Writer) (int64, error) {
	st := c.state.Load()
	if st.mu == nil {
		return st.oracle.WriteTo(w)
	}
	st.mu.RLock()
	n, err := st.oracle.WriteTo(w)
	st.mu.RUnlock()
	return n, err
}

// Update runs f against the wrapped *DynamicIndex under the write
// lock, so a multi-step mutation (validate, then insert several edges)
// is atomic with respect to queries and other updates, and observes
// one oracle even if Swap runs concurrently. Wrapping any other
// variant yields ErrNotDynamic without calling f. An update that races
// with Swap applies to whichever oracle it loaded first and may
// therefore land on the retired index; callers that swap and update
// from the same goroutine never observe this.
func (c *ConcurrentOracle) Update(f func(di *DynamicIndex) error) error {
	st := c.state.Load()
	di, ok := st.oracle.(*DynamicIndex)
	if !ok {
		return ErrNotDynamic
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return f(di)
}

// InsertEdge adds the undirected edge {a,b} to a wrapped *DynamicIndex
// under the write lock and returns the number of label entries
// repaired. See Update for the interaction with Swap.
func (c *ConcurrentOracle) InsertEdge(a, b int32) (int, error) {
	var delta int
	err := c.Update(func(di *DynamicIndex) error {
		var err error
		delta, err = di.InsertEdge(a, b)
		return err
	})
	return delta, err
}

// Snapshot returns the current oracle. The result is stable — a later
// Swap does not mutate it — and safe to query directly when it is a
// static variant. A *DynamicIndex snapshot must not be queried or
// updated directly while others may be writing; go through the
// ConcurrentOracle (or View) instead.
func (c *ConcurrentOracle) Snapshot() Oracle { return c.state.Load().oracle }

// Swap atomically installs o as the serving oracle and returns the
// previous one. Operations already running complete against the old
// oracle; every operation starting after Swap returns sees o. The
// swap itself never blocks on readers.
func (c *ConcurrentOracle) Swap(o Oracle) Oracle {
	old := c.state.Swap(newConcurrentState(o))
	c.gen.Add(1)
	return old.oracle
}

// Generation counts completed Swaps, starting at 0. Servers use it to
// tag cached results and report reloads.
func (c *ConcurrentOracle) Generation() uint64 { return c.gen.Load() }
