// Package benches holds the top-level benchmark harness: one benchmark
// family per table and figure of the paper's evaluation (§7), each
// delegating to the same internal/exp drivers that cmd/experiments uses.
// Run everything with:
//
//	go test -bench=. -benchmem .
//
// Dataset stand-ins are generated once per size and cached; sizes are
// laptop-scale (see EXPERIMENTS.md for reference output, the meaning of
// benchScaleDiv, and how to run the evaluation at larger scales via
// cmd/experiments -scalediv).
package benches

import (
	"sync"
	"testing"

	"pll/internal/baseline"
	"pll/internal/core"
	"pll/internal/datasets"
	"pll/internal/exp"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/hhl"
	"pll/internal/order"
	"pll/internal/rng"
	"pll/internal/stats"
	"pll/internal/treedec"
)

// benchScaleDiv keeps per-iteration work in the tens of milliseconds.
const benchScaleDiv = 256

var (
	graphCacheMu sync.Mutex
	graphCache   = map[string]*graph.Graph{}
)

func standIn(b *testing.B, name string) *graph.Graph {
	b.Helper()
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	if g, ok := graphCache[name]; ok {
		return g
	}
	rec, err := datasets.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g := rec.Generate(benchScaleDiv, 7)
	graphCache[name] = g
	return g
}

func benchPairs(n int, k int) [][2]int32 {
	r := rng.New(99)
	pairs := make([][2]int32, k)
	for i := range pairs {
		pairs[i] = [2]int32{r.Int31n(int32(n)), r.Int31n(int32(n))}
	}
	return pairs
}

// ---- Table 3: indexing time and query time per method per dataset ----

func benchTable3Construct(b *testing.B, name string, bp int) {
	g := standIn(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Options{Ordering: order.Degree, Seed: 7, NumBitParallel: bp}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_PLL_Construct_Gnutella(b *testing.B)  { benchTable3Construct(b, "Gnutella", 16) }
func BenchmarkTable3_PLL_Construct_Epinions(b *testing.B)  { benchTable3Construct(b, "Epinions", 16) }
func BenchmarkTable3_PLL_Construct_Slashdot(b *testing.B)  { benchTable3Construct(b, "Slashdot", 16) }
func BenchmarkTable3_PLL_Construct_NotreDame(b *testing.B) { benchTable3Construct(b, "NotreDame", 16) }
func BenchmarkTable3_PLL_Construct_WikiTalk(b *testing.B)  { benchTable3Construct(b, "WikiTalk", 16) }
func BenchmarkTable3_PLL_Construct_Skitter(b *testing.B)   { benchTable3Construct(b, "Skitter", 64) }
func BenchmarkTable3_PLL_Construct_Flickr(b *testing.B)    { benchTable3Construct(b, "Flickr", 64) }

func benchTable3Query(b *testing.B, name string, bp int) {
	g := standIn(b, name)
	ix, err := core.Build(g, core.Options{Ordering: order.Degree, Seed: 7, NumBitParallel: bp})
	if err != nil {
		b.Fatal(err)
	}
	pairs := benchPairs(g.NumVertices(), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		ix.Query(p[0], p[1])
	}
}

func BenchmarkTable3_PLL_Query_Gnutella(b *testing.B) { benchTable3Query(b, "Gnutella", 16) }
func BenchmarkTable3_PLL_Query_Epinions(b *testing.B) { benchTable3Query(b, "Epinions", 16) }
func BenchmarkTable3_PLL_Query_Slashdot(b *testing.B) { benchTable3Query(b, "Slashdot", 16) }
func BenchmarkTable3_PLL_Query_WikiTalk(b *testing.B) { benchTable3Query(b, "WikiTalk", 16) }
func BenchmarkTable3_PLL_Query_Skitter(b *testing.B)  { benchTable3Query(b, "Skitter", 64) }

func BenchmarkTable3_HHL_Construct_Gnutella(b *testing.B) {
	g := standIn(b, "Gnutella")
	perm := order.ByDegree(g, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hhl.Build(g, perm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_HHL_Construct_Epinions(b *testing.B) {
	g := standIn(b, "Epinions")
	perm := order.ByDegree(g, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hhl.Build(g, perm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_TD_Construct_Gnutella(b *testing.B) {
	g := standIn(b, "Gnutella")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treedec.Build(g, treedec.Options{MaxBag: 16, MaxCore: 4000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_BFS_Query_Slashdot(b *testing.B) {
	g := standIn(b, "Slashdot")
	oracle := baseline.NewOracle(g)
	pairs := benchPairs(g.NumVertices(), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&255]
		oracle.Query(p[0], p[1])
	}
}

// ---- Table 1 is the summary view of Table 3; bench the driver once ----

func BenchmarkTable1_SummaryDriver(b *testing.B) {
	cfg := exp.Config{ScaleDiv: 1024, Seed: 7, QueryPairs: 512, HHLMaxN: 2000, TDMaxCore: 1000}
	recipes := datasets.Small()[:2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3(cfg, recipes)
		if err != nil {
			b.Fatal(err)
		}
		exp.Table1(rows)
	}
}

// ---- Table 5: ordering-strategy ablation ----

func benchTable5(b *testing.B, s order.Strategy) {
	g := standIn(b, "Epinions")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Options{Ordering: s, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5_Ordering_Degree(b *testing.B)    { benchTable5(b, order.Degree) }
func BenchmarkTable5_Ordering_Random(b *testing.B)    { benchTable5(b, order.Random) }
func BenchmarkTable5_Ordering_Closeness(b *testing.B) { benchTable5(b, order.Closeness) }

// Betweenness is this repository's ablation beyond the paper's three
// strategies (§4.4 motivates it; Degree/Closeness are its proxies).
func BenchmarkTable5_Ordering_Betweenness(b *testing.B) { benchTable5(b, order.Betweenness) }

// ---- Figure 1: the pruned-BFS walkthrough ----

func BenchmarkFig1_Walkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 2: dataset statistics ----

func BenchmarkFig2_DegreeCCDF(b *testing.B) {
	g := standIn(b, "WikiTalk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.DegreeCCDF(g)
	}
}

func BenchmarkFig2_DistanceDistribution(b *testing.B) {
	g := standIn(b, "WikiTalk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.DistanceDistribution(g, 2000, uint64(i))
	}
}

// ---- Figure 3: construction traces ----

func BenchmarkFig3_ConstructionTrace_Skitter(b *testing.B) {
	g := standIn(b, "Skitter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bs core.BuildStats
		if _, err := core.Build(g, core.Options{Ordering: order.Degree, Seed: 7, CollectStats: &bs}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 4: pair coverage sweep ----

func BenchmarkFig4_CoverageSweep_Gnutella(b *testing.B) {
	g := standIn(b, "Gnutella")
	perm := order.ByDegree(g, 7)
	lm := baseline.BuildLandmarks(g, perm, 256)
	ps := stats.SamplePairs(g, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range stats.LogSpacedIndexes(257) {
			stats.Coverage(ps, stats.QuerierFunc(func(s, t int32) int {
				return lm.EstimateWithPrefix(s, t, k)
			}))
		}
	}
}

// ---- Figure 5: bit-parallel sweep ----

func benchFig5(b *testing.B, t int) {
	g := standIn(b, "Skitter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Options{Ordering: order.Degree, Seed: 7, NumBitParallel: t}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_BitParallel_1(b *testing.B)   { benchFig5(b, 1) }
func BenchmarkFig5_BitParallel_16(b *testing.B)  { benchFig5(b, 16) }
func BenchmarkFig5_BitParallel_64(b *testing.B)  { benchFig5(b, 64) }
func BenchmarkFig5_BitParallel_256(b *testing.B) { benchFig5(b, 256) }

// ---- Ablations beyond the paper's figures (DESIGN.md §7) ----

// Pruning on/off: the naive §4.1 labeling vs pruned labeling.
func BenchmarkAblation_NaiveLabeling(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 7)
	perm := order.ByDegree(g, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.BuildNaive(g, perm)
	}
}

func BenchmarkAblation_PrunedLabeling(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 7)
	perm := order.ByDegree(g, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Options{CustomOrder: perm}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Construction scaling: the batch-parallel pruned labeling ----
//
// BenchmarkBuildWorkers{1,2,4,8}_* measure index-construction wall time
// per variant and worker count on one fixed synthetic benchmark graph
// per variant (the index is byte-identical at every worker count, so
// only time changes). EXPERIMENTS.md records a reference scaling table;
// regenerate it with:
//
//	go test -bench 'BenchmarkBuildWorkers' -benchtime 3x .

var (
	buildBenchGraphOnce sync.Once
	buildBenchGraph     *graph.Graph    // undirected + dynamic benchmark graph
	buildBenchDigraph   *graph.Digraph  // directed benchmark graph
	buildBenchWeighted  *graph.Weighted // weighted benchmark graph
)

func buildBenchInputs() {
	buildBenchGraphOnce.Do(func() {
		buildBenchGraph = gen.BarabasiAlbert(20000, 5, 1)
		buildBenchDigraph = gen.RandomDigraph(4000, 20000, 2)
		buildBenchWeighted = gen.RandomWeights(gen.BarabasiAlbert(8000, 4, 3), 1, 16, 4)
	})
}

func benchBuildWorkersUndirected(b *testing.B, workers int) {
	buildBenchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(buildBenchGraph, core.Options{Seed: 7, NumBitParallel: 16, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBuildWorkersDirected(b *testing.B, workers int) {
	buildBenchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildDirected(buildBenchDigraph, core.DirectedOptions{Seed: 7, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBuildWorkersWeighted(b *testing.B, workers int) {
	buildBenchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildWeighted(buildBenchWeighted, core.WeightedOptions{Seed: 7, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBuildWorkersDynamic(b *testing.B, workers int) {
	buildBenchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildDynamic(buildBenchGraph, core.Options{Seed: 7, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildWorkers1_Undirected(b *testing.B) { benchBuildWorkersUndirected(b, 1) }
func BenchmarkBuildWorkers2_Undirected(b *testing.B) { benchBuildWorkersUndirected(b, 2) }
func BenchmarkBuildWorkers4_Undirected(b *testing.B) { benchBuildWorkersUndirected(b, 4) }
func BenchmarkBuildWorkers8_Undirected(b *testing.B) { benchBuildWorkersUndirected(b, 8) }

func BenchmarkBuildWorkers1_Directed(b *testing.B) { benchBuildWorkersDirected(b, 1) }
func BenchmarkBuildWorkers2_Directed(b *testing.B) { benchBuildWorkersDirected(b, 2) }
func BenchmarkBuildWorkers4_Directed(b *testing.B) { benchBuildWorkersDirected(b, 4) }
func BenchmarkBuildWorkers8_Directed(b *testing.B) { benchBuildWorkersDirected(b, 8) }

func BenchmarkBuildWorkers1_Weighted(b *testing.B) { benchBuildWorkersWeighted(b, 1) }
func BenchmarkBuildWorkers2_Weighted(b *testing.B) { benchBuildWorkersWeighted(b, 2) }
func BenchmarkBuildWorkers4_Weighted(b *testing.B) { benchBuildWorkersWeighted(b, 4) }
func BenchmarkBuildWorkers8_Weighted(b *testing.B) { benchBuildWorkersWeighted(b, 8) }

func BenchmarkBuildWorkers1_Dynamic(b *testing.B) { benchBuildWorkersDynamic(b, 1) }
func BenchmarkBuildWorkers2_Dynamic(b *testing.B) { benchBuildWorkersDynamic(b, 2) }
func BenchmarkBuildWorkers4_Dynamic(b *testing.B) { benchBuildWorkersDynamic(b, 4) }
func BenchmarkBuildWorkers8_Dynamic(b *testing.B) { benchBuildWorkersDynamic(b, 8) }

// Theorem 4.4's regime: low tree-width inputs.
func BenchmarkAblation_TreeWidth_PLL_Grid(b *testing.B) {
	g := gen.Grid(30, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Options{Ordering: order.Degree, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_TreeWidth_TD_Grid(b *testing.B) {
	g := gen.Grid(30, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treedec.Build(g, treedec.Options{MaxBag: 34, MaxCore: 4000}); err != nil {
			b.Fatal(err)
		}
	}
}
