// Package benches holds the top-level benchmark harness: one benchmark
// family per table and figure of the paper's evaluation (§7), each
// delegating to the same internal/exp drivers that cmd/experiments uses.
// Run everything with:
//
//	go test -bench=. -benchmem .
//
// Dataset stand-ins are generated once per size and cached; sizes are
// laptop-scale (see EXPERIMENTS.md for reference output, the meaning of
// benchScaleDiv, and how to run the evaluation at larger scales via
// cmd/experiments -scalediv).
package benches

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"pll/internal/baseline"
	"pll/internal/core"
	"pll/internal/datasets"
	"pll/internal/exp"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/hhl"
	"pll/internal/order"
	"pll/internal/rng"
	"pll/internal/stats"
	"pll/internal/treedec"
	"pll/pll"
)

// benchScaleDiv keeps per-iteration work in the tens of milliseconds.
const benchScaleDiv = 256

var (
	graphCacheMu sync.Mutex
	graphCache   = map[string]*graph.Graph{}
)

func standIn(b *testing.B, name string) *graph.Graph {
	b.Helper()
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	if g, ok := graphCache[name]; ok {
		return g
	}
	rec, err := datasets.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g := rec.Generate(benchScaleDiv, 7)
	graphCache[name] = g
	return g
}

func benchPairs(n int, k int) [][2]int32 {
	r := rng.New(99)
	pairs := make([][2]int32, k)
	for i := range pairs {
		pairs[i] = [2]int32{r.Int31n(int32(n)), r.Int31n(int32(n))}
	}
	return pairs
}

// ---- Table 3: indexing time and query time per method per dataset ----

func benchTable3Construct(b *testing.B, name string, bp int) {
	g := standIn(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Options{Ordering: order.Degree, Seed: 7, NumBitParallel: bp}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_PLL_Construct_Gnutella(b *testing.B)  { benchTable3Construct(b, "Gnutella", 16) }
func BenchmarkTable3_PLL_Construct_Epinions(b *testing.B)  { benchTable3Construct(b, "Epinions", 16) }
func BenchmarkTable3_PLL_Construct_Slashdot(b *testing.B)  { benchTable3Construct(b, "Slashdot", 16) }
func BenchmarkTable3_PLL_Construct_NotreDame(b *testing.B) { benchTable3Construct(b, "NotreDame", 16) }
func BenchmarkTable3_PLL_Construct_WikiTalk(b *testing.B)  { benchTable3Construct(b, "WikiTalk", 16) }
func BenchmarkTable3_PLL_Construct_Skitter(b *testing.B)   { benchTable3Construct(b, "Skitter", 64) }
func BenchmarkTable3_PLL_Construct_Flickr(b *testing.B)    { benchTable3Construct(b, "Flickr", 64) }

func benchTable3Query(b *testing.B, name string, bp int) {
	g := standIn(b, name)
	ix, err := core.Build(g, core.Options{Ordering: order.Degree, Seed: 7, NumBitParallel: bp})
	if err != nil {
		b.Fatal(err)
	}
	pairs := benchPairs(g.NumVertices(), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		ix.Query(p[0], p[1])
	}
}

func BenchmarkTable3_PLL_Query_Gnutella(b *testing.B) { benchTable3Query(b, "Gnutella", 16) }
func BenchmarkTable3_PLL_Query_Epinions(b *testing.B) { benchTable3Query(b, "Epinions", 16) }
func BenchmarkTable3_PLL_Query_Slashdot(b *testing.B) { benchTable3Query(b, "Slashdot", 16) }
func BenchmarkTable3_PLL_Query_WikiTalk(b *testing.B) { benchTable3Query(b, "WikiTalk", 16) }
func BenchmarkTable3_PLL_Query_Skitter(b *testing.B)  { benchTable3Query(b, "Skitter", 64) }

func BenchmarkTable3_HHL_Construct_Gnutella(b *testing.B) {
	g := standIn(b, "Gnutella")
	perm := order.ByDegree(g, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hhl.Build(g, perm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_HHL_Construct_Epinions(b *testing.B) {
	g := standIn(b, "Epinions")
	perm := order.ByDegree(g, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hhl.Build(g, perm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_TD_Construct_Gnutella(b *testing.B) {
	g := standIn(b, "Gnutella")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treedec.Build(g, treedec.Options{MaxBag: 16, MaxCore: 4000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_BFS_Query_Slashdot(b *testing.B) {
	g := standIn(b, "Slashdot")
	oracle := baseline.NewOracle(g)
	pairs := benchPairs(g.NumVertices(), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&255]
		oracle.Query(p[0], p[1])
	}
}

// ---- Table 1 is the summary view of Table 3; bench the driver once ----

func BenchmarkTable1_SummaryDriver(b *testing.B) {
	cfg := exp.Config{ScaleDiv: 1024, Seed: 7, QueryPairs: 512, HHLMaxN: 2000, TDMaxCore: 1000}
	recipes := datasets.Small()[:2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table3(cfg, recipes)
		if err != nil {
			b.Fatal(err)
		}
		exp.Table1(rows)
	}
}

// ---- Table 5: ordering-strategy ablation ----

func benchTable5(b *testing.B, s order.Strategy) {
	g := standIn(b, "Epinions")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Options{Ordering: s, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5_Ordering_Degree(b *testing.B)    { benchTable5(b, order.Degree) }
func BenchmarkTable5_Ordering_Random(b *testing.B)    { benchTable5(b, order.Random) }
func BenchmarkTable5_Ordering_Closeness(b *testing.B) { benchTable5(b, order.Closeness) }

// Betweenness is this repository's ablation beyond the paper's three
// strategies (§4.4 motivates it; Degree/Closeness are its proxies).
func BenchmarkTable5_Ordering_Betweenness(b *testing.B) { benchTable5(b, order.Betweenness) }

// ---- Figure 1: the pruned-BFS walkthrough ----

func BenchmarkFig1_Walkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 2: dataset statistics ----

func BenchmarkFig2_DegreeCCDF(b *testing.B) {
	g := standIn(b, "WikiTalk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.DegreeCCDF(g)
	}
}

func BenchmarkFig2_DistanceDistribution(b *testing.B) {
	g := standIn(b, "WikiTalk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.DistanceDistribution(g, 2000, uint64(i))
	}
}

// ---- Figure 3: construction traces ----

func BenchmarkFig3_ConstructionTrace_Skitter(b *testing.B) {
	g := standIn(b, "Skitter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bs core.BuildStats
		if _, err := core.Build(g, core.Options{Ordering: order.Degree, Seed: 7, CollectStats: &bs}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 4: pair coverage sweep ----

func BenchmarkFig4_CoverageSweep_Gnutella(b *testing.B) {
	g := standIn(b, "Gnutella")
	perm := order.ByDegree(g, 7)
	lm := baseline.BuildLandmarks(g, perm, 256)
	ps := stats.SamplePairs(g, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range stats.LogSpacedIndexes(257) {
			stats.Coverage(ps, stats.QuerierFunc(func(s, t int32) int {
				return lm.EstimateWithPrefix(s, t, k)
			}))
		}
	}
}

// ---- Figure 5: bit-parallel sweep ----

func benchFig5(b *testing.B, t int) {
	g := standIn(b, "Skitter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Options{Ordering: order.Degree, Seed: 7, NumBitParallel: t}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_BitParallel_1(b *testing.B)   { benchFig5(b, 1) }
func BenchmarkFig5_BitParallel_16(b *testing.B)  { benchFig5(b, 16) }
func BenchmarkFig5_BitParallel_64(b *testing.B)  { benchFig5(b, 64) }
func BenchmarkFig5_BitParallel_256(b *testing.B) { benchFig5(b, 256) }

// ---- Ablations beyond the paper's figures (DESIGN.md §7) ----

// Pruning on/off: the naive §4.1 labeling vs pruned labeling.
func BenchmarkAblation_NaiveLabeling(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 7)
	perm := order.ByDegree(g, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.BuildNaive(g, perm)
	}
}

func BenchmarkAblation_PrunedLabeling(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 3, 7)
	perm := order.ByDegree(g, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Options{CustomOrder: perm}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Construction scaling: the batch-parallel pruned labeling ----
//
// BenchmarkBuildWorkers{1,2,4,8}_* measure index-construction wall time
// per variant and worker count on one fixed synthetic benchmark graph
// per variant (the index is byte-identical at every worker count, so
// only time changes). EXPERIMENTS.md records a reference scaling table;
// regenerate it with:
//
//	go test -bench 'BenchmarkBuildWorkers' -benchtime 3x .

var (
	buildBenchGraphOnce sync.Once
	buildBenchGraph     *graph.Graph    // undirected + dynamic benchmark graph
	buildBenchDigraph   *graph.Digraph  // directed benchmark graph
	buildBenchWeighted  *graph.Weighted // weighted benchmark graph
)

func buildBenchInputs() {
	buildBenchGraphOnce.Do(func() {
		buildBenchGraph = gen.BarabasiAlbert(20000, 5, 1)
		buildBenchDigraph = gen.RandomDigraph(4000, 20000, 2)
		buildBenchWeighted = gen.RandomWeights(gen.BarabasiAlbert(8000, 4, 3), 1, 16, 4)
	})
}

func benchBuildWorkersUndirected(b *testing.B, workers int) {
	buildBenchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(buildBenchGraph, core.Options{Seed: 7, NumBitParallel: 16, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBuildWorkersDirected(b *testing.B, workers int) {
	buildBenchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildDirected(buildBenchDigraph, core.DirectedOptions{Seed: 7, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBuildWorkersWeighted(b *testing.B, workers int) {
	buildBenchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildWeighted(buildBenchWeighted, core.WeightedOptions{Seed: 7, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBuildWorkersDynamic(b *testing.B, workers int) {
	buildBenchInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildDynamic(buildBenchGraph, core.Options{Seed: 7, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildWorkers1_Undirected(b *testing.B) { benchBuildWorkersUndirected(b, 1) }
func BenchmarkBuildWorkers2_Undirected(b *testing.B) { benchBuildWorkersUndirected(b, 2) }
func BenchmarkBuildWorkers4_Undirected(b *testing.B) { benchBuildWorkersUndirected(b, 4) }
func BenchmarkBuildWorkers8_Undirected(b *testing.B) { benchBuildWorkersUndirected(b, 8) }

func BenchmarkBuildWorkers1_Directed(b *testing.B) { benchBuildWorkersDirected(b, 1) }
func BenchmarkBuildWorkers2_Directed(b *testing.B) { benchBuildWorkersDirected(b, 2) }
func BenchmarkBuildWorkers4_Directed(b *testing.B) { benchBuildWorkersDirected(b, 4) }
func BenchmarkBuildWorkers8_Directed(b *testing.B) { benchBuildWorkersDirected(b, 8) }

func BenchmarkBuildWorkers1_Weighted(b *testing.B) { benchBuildWorkersWeighted(b, 1) }
func BenchmarkBuildWorkers2_Weighted(b *testing.B) { benchBuildWorkersWeighted(b, 2) }
func BenchmarkBuildWorkers4_Weighted(b *testing.B) { benchBuildWorkersWeighted(b, 4) }
func BenchmarkBuildWorkers8_Weighted(b *testing.B) { benchBuildWorkersWeighted(b, 8) }

func BenchmarkBuildWorkers1_Dynamic(b *testing.B) { benchBuildWorkersDynamic(b, 1) }
func BenchmarkBuildWorkers2_Dynamic(b *testing.B) { benchBuildWorkersDynamic(b, 2) }
func BenchmarkBuildWorkers4_Dynamic(b *testing.B) { benchBuildWorkersDynamic(b, 4) }
func BenchmarkBuildWorkers8_Dynamic(b *testing.B) { benchBuildWorkersDynamic(b, 8) }

// ---- Cold start: Open (mmap, zero-copy) vs LoadFile (heap decode) ----
//
// BenchmarkOpenColdStart* measure time-to-first-query on the largest
// bench graph (the BA n=20000 construction graph, bp=16): open or load
// the container, answer one query, release. Open does no per-entry
// decoding, so its cost is a handful of page faults regardless of
// index size; LoadFile pays a decode pass over every label entry.

var (
	coldStartOnce sync.Once
	coldStartDir  string
	coldStartErr  error
)

// coldStartFiles builds the bench index once and writes it in both
// container formats, returning the v1 and flat paths.
func coldStartFiles(b *testing.B) (v1Path, flatPath string) {
	b.Helper()
	coldStartOnce.Do(func() {
		buildBenchInputs()
		pg, err := pll.NewGraph(buildBenchGraph.NumVertices(), buildBenchGraph.Edges())
		if err != nil {
			coldStartErr = err
			return
		}
		ix, err := pll.BuildIndex(pg, pll.WithSeed(7), pll.WithBitParallel(16))
		if err != nil {
			coldStartErr = err
			return
		}
		coldStartDir, err = os.MkdirTemp("", "pll-coldstart-*")
		if err != nil {
			coldStartErr = err
			return
		}
		if err := pll.WriteFile(filepath.Join(coldStartDir, "ix.v1.pllbox"), ix); err != nil {
			coldStartErr = err
			return
		}
		coldStartErr = pll.WriteFlatFile(filepath.Join(coldStartDir, "ix.flat.pllbox"), ix)
	})
	if coldStartErr != nil {
		b.Fatal(coldStartErr)
	}
	return filepath.Join(coldStartDir, "ix.v1.pllbox"), filepath.Join(coldStartDir, "ix.flat.pllbox")
}

func BenchmarkOpenColdStart_Open(b *testing.B) {
	_, flat := coldStartFiles(b)
	b.ResetTimer()
	sink := int64(0)
	for i := 0; i < b.N; i++ {
		fi, err := pll.Open(flat)
		if err != nil {
			b.Fatal(err)
		}
		sink += fi.Distance(0, 19999)
		fi.Close()
	}
	_ = sink
}

func BenchmarkOpenColdStart_LoadFile(b *testing.B) {
	v1, _ := coldStartFiles(b)
	b.ResetTimer()
	sink := int64(0)
	for i := 0; i < b.N; i++ {
		o, err := pll.LoadFile(v1)
		if err != nil {
			b.Fatal(err)
		}
		sink += o.Distance(0, 19999)
	}
	_ = sink
}

// Heap-loading the flat format isolates layout from load path: the
// columnar image decodes faster than the v1 record stream, but still
// pays the full-validation pass Open skips.
func BenchmarkOpenColdStart_LoadFlatFile(b *testing.B) {
	_, flat := coldStartFiles(b)
	b.ResetTimer()
	sink := int64(0)
	for i := 0; i < b.N; i++ {
		o, err := pll.LoadFile(flat)
		if err != nil {
			b.Fatal(err)
		}
		sink += o.Distance(0, 19999)
	}
	_ = sink
}

// ---- Batch distances: Batcher vs N independent merge joins ----
//
// BenchmarkBatchDistances* compare one DistanceFrom call (source label
// pinned once, one label scan per target) against the same 1024
// targets answered by per-pair Distance calls, on the heap-built index
// and on the memory-mapped flat container. The source is the vertex
// with the heaviest label — the regime the §4.5 trick targets: a
// merge join pays |L(s)|+|L(t)| per target, the pinned batch pays
// |L(s)| once and |L(t)| per target, so the win scales with |L(s)|
// (the bit-parallel root checks are per-target either way).

func batchBenchSetup(b *testing.B) (pll.Oracle, int32, []int32) {
	b.Helper()
	v1, _ := coldStartFiles(b)
	o, err := pll.LoadFile(v1)
	if err != nil {
		b.Fatal(err)
	}
	// The heaviest-label source (batch workloads like social search key
	// on ordinary users, not hub vertices — and ordinary means a large
	// label).
	cix, err := core.LoadAnyFile(v1)
	if err != nil {
		b.Fatal(err)
	}
	ix := cix.(*core.Index)
	src, best := int32(0), -1
	for v := 0; v < o.NumVertices(); v++ {
		if sz := ix.LabelSize(int32(v)); sz > best {
			src, best = int32(v), sz
		}
	}
	r := rng.New(42)
	targets := make([]int32, 1024)
	for i := range targets {
		targets[i] = r.Int31n(int32(o.NumVertices()))
	}
	return o, src, targets
}

func BenchmarkBatchDistances_Batcher(b *testing.B) {
	o, src, targets := batchBenchSetup(b)
	batcher := o.(pll.Batcher)
	var dst []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = batcher.DistanceFrom(src, targets, dst)
	}
	_ = dst
}

func BenchmarkBatchDistances_SingleQueries(b *testing.B) {
	o, src, targets := batchBenchSetup(b)
	sink := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range targets {
			sink += o.Distance(src, t)
		}
	}
	_ = sink
}

func BenchmarkBatchDistances_FlatBatcher(b *testing.B) {
	_, src, targets := batchBenchSetup(b)
	_, flat := coldStartFiles(b)
	fi, err := pll.Open(flat)
	if err != nil {
		b.Fatal(err)
	}
	defer fi.Close()
	var dst []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = fi.DistanceFrom(src, targets, dst)
	}
	_ = dst
}

// Theorem 4.4's regime: low tree-width inputs.
func BenchmarkAblation_TreeWidth_PLL_Grid(b *testing.B) {
	g := gen.Grid(30, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(g, core.Options{Ordering: order.Degree, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_TreeWidth_TD_Grid(b *testing.B) {
	g := gen.Grid(30, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treedec.Build(g, treedec.Options{MaxBag: 34, MaxCore: 4000}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Hub search: inverted-index kNN vs brute-force sweeps ----
//
// BenchmarkKNN* compare KNN(s, 10) answered by the hub-inverted index
// (heap merge over s's label runs with upper-bound pruning) against
// the two alternatives the plain oracle offers: n per-pair Distance
// calls (the naive plan), and one amortized DistanceFrom batch over
// all n targets (itself ~4x faster than the naive plan) followed by
// top-k selection. The inverted path scans only entries whose merge
// key can still reach the k-th candidate; both sweeps touch all n
// labels. Largest bench graph (BA n=20000, bp=16), 64 rotating
// sources. Bit-parallel runs pay a 2-hop ordering slack for their
// §5.3 mask corrections — a bp=0 index answers the same query ~30x
// faster still (see EXPERIMENTS.md).

var (
	knnBenchOnce    sync.Once
	knnBenchErr     error
	knnBenchOracle  *pll.Index
	knnBenchSources []int32
)

func knnBenchSetup(b *testing.B) (*pll.Index, []int32) {
	b.Helper()
	knnBenchOnce.Do(func() {
		buildBenchInputs()
		pg, err := pll.NewGraph(buildBenchGraph.NumVertices(), buildBenchGraph.Edges())
		if err != nil {
			knnBenchErr = err
			return
		}
		knnBenchOracle, err = pll.BuildIndex(pg, pll.WithSeed(7), pll.WithBitParallel(16))
		if err != nil {
			knnBenchErr = err
			return
		}
		// Warm the lazy inversion so both benchmarks measure steady state.
		if _, err := knnBenchOracle.KNN(0, 1); err != nil {
			knnBenchErr = err
			return
		}
		r := rng.New(42)
		knnBenchSources = make([]int32, 64)
		for i := range knnBenchSources {
			knnBenchSources[i] = r.Int31n(int32(pg.NumVertices()))
		}
	})
	if knnBenchErr != nil {
		b.Fatal(knnBenchErr)
	}
	return knnBenchOracle, knnBenchSources
}

func BenchmarkKNN_Inverted(b *testing.B) {
	ix, sources := knnBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.KNN(sources[i%len(sources)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNN_BruteForceDistance(b *testing.B) {
	ix, sources := knnBenchSetup(b)
	n := int32(ix.NumVertices())
	sink := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := sources[i%len(sources)]
		for v := int32(0); v < n; v++ {
			sink += ix.Distance(src, v)
		}
	}
	_ = sink
}

func BenchmarkKNN_BruteForceBatch(b *testing.B) {
	ix, sources := knnBenchSetup(b)
	n := ix.NumVertices()
	targets := make([]int32, n)
	for i := range targets {
		targets[i] = int32(i)
	}
	var dst []int64
	top := make([]pll.Neighbor, 0, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := sources[i%len(sources)]
		dst = ix.DistanceFrom(src, targets, dst)
		top = top[:0]
		for v, d := range dst {
			if int32(v) == src || d < 0 {
				continue
			}
			if len(top) == 10 && d >= top[9].Distance {
				continue
			}
			j := len(top)
			if j < 10 {
				top = append(top, pll.Neighbor{})
			} else {
				j = 9
			}
			for j > 0 && (top[j-1].Distance > d || (top[j-1].Distance == d && top[j-1].Vertex > int32(v))) {
				top[j] = top[j-1]
				j--
			}
			top[j] = pll.Neighbor{Vertex: int32(v), Distance: d}
		}
	}
	_ = top
}

func BenchmarkRange_Inverted(b *testing.B) {
	ix, sources := knnBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Range(sources[i%len(sources)], 2); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Composite queries: streaming engine vs materialize-and-intersect ----
//
// BenchmarkComposite* compare one composite query — "within 1 of A AND
// within 4 of B", ranked by the summed legs — answered by the streaming
// engine (internal/runquery: selectivity-ordered constraints, cutoffs
// pushed into the label-run scans, point probes for the non-driver
// constraint) against the plan it replaces: materialize each
// neighborhood with Range, hash-intersect, score and sort. The top-k
// variant additionally stops the ranked scan once the k-th best score
// is out of reach. Same graph and sources as the KNN benches (BA
// n=20000, bp=16, 64 rotating source pairs).

// The constraints are asymmetric on purpose: real fences usually pair
// a tight constraint with a loose one, and the planner's selectivity
// ordering turns the tight side into the driver — the loose
// neighborhood is never materialized, only point-probed. A symmetric
// pair degrades both plans to roughly the same two-scan cost.
func compositeBenchRequest(a, c int32, k int) *pll.CompositeRequest {
	return &pll.CompositeRequest{
		Where: &pll.CompositeClause{And: []*pll.CompositeClause{
			{Near: &pll.NearClause{Source: a, MaxDist: 1}},
			{Near: &pll.NearClause{Source: c, MaxDist: 4}},
		}},
		K: k,
	}
}

func BenchmarkCompositeAND(b *testing.B) {
	ix, sources := knnBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := sources[i%len(sources)], sources[(i+1)%len(sources)]
		if _, err := ix.Composite(compositeBenchRequest(a, c, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompositeTopK(b *testing.B) {
	ix, sources := knnBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := sources[i%len(sources)], sources[(i+1)%len(sources)]
		if _, err := ix.Composite(compositeBenchRequest(a, c, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompositeAND_Materialize is the baseline the engine
// replaces: one Range per constraint, hash-intersect, score and sort.
func BenchmarkCompositeAND_Materialize(b *testing.B) {
	ix, sources := knnBenchSetup(b)
	type match struct {
		v     int32
		score int64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := sources[i%len(sources)], sources[(i+1)%len(sources)]
		nearA, err := ix.Range(a, 1)
		if err != nil {
			b.Fatal(err)
		}
		nearC, err := ix.Range(c, 4)
		if err != nil {
			b.Fatal(err)
		}
		distA := make(map[int32]int64, len(nearA)+1)
		distA[a] = 0
		for _, nb := range nearA {
			distA[nb.Vertex] = nb.Distance
		}
		var ms []match
		if dc, ok := distA[c]; ok {
			ms = append(ms, match{c, dc})
		}
		for _, nb := range nearC {
			if da, ok := distA[nb.Vertex]; ok {
				ms = append(ms, match{nb.Vertex, da + nb.Distance})
			}
		}
		sort.Slice(ms, func(x, y int) bool {
			if ms[x].score != ms[y].score {
				return ms[x].score < ms[y].score
			}
			return ms[x].v < ms[y].v
		})
	}
}
