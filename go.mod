module pll

go 1.24
