// Package gen generates the synthetic networks used as stand-ins for the
// paper's real-world datasets (see DESIGN.md §3) and the structured
// graphs (paths, grids, trees, core–fringe) used to exercise the
// theoretical properties of pruned landmark labeling.
//
// Every generator is deterministic given its seed; all randomness flows
// through internal/rng.
package gen

import (
	"fmt"

	"pll/internal/graph"
	"pll/internal/rng"
)

// Path returns the path graph 0-1-...-(n-1).
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, max(0, n-1))
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	return must(graph.NewGraph(n, edges))
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle needs n >= 3")
	}
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32((i + 1) % n)})
	}
	return must(graph.NewGraph(n, edges))
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, max(0, n-1))
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(i)})
	}
	return must(graph.NewGraph(n, edges))
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	return must(graph.NewGraph(n, edges))
}

// Grid returns the rows x cols king-free grid (4-neighborhood). Grids
// have tree-width min(rows, cols), exercising Theorem 4.4.
func Grid(rows, cols int) *graph.Graph {
	id := func(r, c int) int32 { return int32(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return must(graph.NewGraph(rows*cols, edges))
}

// RandomTree returns a uniformly random recursive tree on n vertices:
// vertex i attaches to a uniform earlier vertex. Trees have tree-width 1.
func RandomTree(n int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, max(0, n-1))
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: r.Int31n(int32(i))})
	}
	return must(graph.NewGraph(n, edges))
}

// ErdosRenyi returns a G(n, m) random graph with exactly m distinct
// non-loop edges (requires m <= n*(n-1)/2).
func ErdosRenyi(n int, m int64, seed uint64) *graph.Graph {
	maxEdges := int64(n) * int64(n-1) / 2
	if m > maxEdges {
		panic(fmt.Sprintf("gen: ErdosRenyi m=%d exceeds max %d for n=%d", m, maxEdges, n))
	}
	r := rng.New(seed)
	seen := make(map[uint64]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	for int64(len(edges)) < m {
		u := r.Int31n(int32(n))
		v := r.Int31n(int32(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return must(graph.NewGraph(n, edges))
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// small clique of m+1 vertices, each new vertex attaches to m existing
// vertices chosen proportionally to degree. The result is connected with
// a power-law degree tail — the paper's social-network shape (Fig. 2a).
func BarabasiAlbert(n, m int, seed uint64) *graph.Graph {
	if m < 1 {
		panic("gen: BarabasiAlbert needs m >= 1")
	}
	if n < m+1 {
		panic(fmt.Sprintf("gen: BarabasiAlbert needs n >= m+1 (n=%d, m=%d)", n, m))
	}
	r := rng.New(seed)
	// endpoint multiset: vertex v appears deg(v) times; uniform sampling
	// from it is degree-proportional sampling.
	endpoints := make([]int32, 0, 2*int64(n)*int64(m))
	edges := make([]graph.Edge, 0, int64(n)*int64(m))
	// Seed clique on m+1 vertices.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
			endpoints = append(endpoints, int32(i), int32(j))
		}
	}
	chosen := make([]int32, 0, m)
	for v := int32(m + 1); int(v) < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			u := endpoints[r.Intn(len(endpoints))]
			dup := false
			for _, c := range chosen {
				if c == u {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, u)
			}
		}
		for _, u := range chosen {
			edges = append(edges, graph.Edge{U: v, V: u})
			endpoints = append(endpoints, v, u)
		}
	}
	return must(graph.NewGraph(n, edges))
}

// WattsStrogatz returns a small-world ring lattice on n vertices where
// each vertex starts with k/2 neighbors on each side (k even) and each
// edge is rewired with probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	if k%2 != 0 || k < 2 || k >= n {
		panic(fmt.Sprintf("gen: WattsStrogatz needs even 2 <= k < n (n=%d, k=%d)", n, k))
	}
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, n*k/2)
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			u, v := int32(i), int32((i+j)%n)
			if r.Float64() < beta {
				// Rewire the far endpoint to a uniform non-u vertex.
				for {
					w := r.Int31n(int32(n))
					if w != u {
						v = w
						break
					}
				}
			}
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return must(graph.NewGraph(n, edges))
}

// RMAT returns a recursive-matrix (Kronecker-style) graph on 2^scale
// vertices with avgDegree*2^scale sampled arcs, treated as undirected
// edges (duplicates and self-loops are dropped by the builder, so the
// final edge count is slightly below the sample count, as in the
// reference R-MAT construction). Skew parameters (a,b,c) follow the
// usual convention with d = 1-a-b-c; the default web-graph skew in
// internal/datasets is (0.57, 0.19, 0.19).
func RMAT(scale int, avgDegree int, a, b, c float64, seed uint64) *graph.Graph {
	if scale < 1 || scale > 30 {
		panic("gen: RMAT scale out of range [1,30]")
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < 0 {
		panic("gen: RMAT probabilities must be a non-negative partition of 1")
	}
	n := 1 << scale
	m := int64(avgDegree) * int64(n)
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		var u, v int32
		for level := 0; level < scale; level++ {
			p := r.Float64()
			switch {
			case p < a:
				// top-left: no bits set
			case p < a+b:
				v |= 1 << level
			case p < a+b+c:
				u |= 1 << level
			default:
				u |= 1 << level
				v |= 1 << level
			}
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return must(graph.NewGraph(n, edges))
}

// CoreFringe returns a graph with a dense Erdős–Rényi core of coreN
// vertices and coreM edges, plus tree-like fringes: fringeN extra
// vertices each attached to a uniformly random earlier vertex (core or
// fringe), giving low tree-width outside the core — the structure the
// tree-decomposition baselines and Theorem 4.4 exploit.
func CoreFringe(coreN int, coreM int64, fringeN int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	core := ErdosRenyi(coreN, coreM, seed^0x5eed)
	edges := core.Edges()
	n := coreN + fringeN
	for v := coreN; v < n; v++ {
		parent := r.Int31n(int32(v))
		edges = append(edges, graph.Edge{U: int32(v), V: parent})
	}
	return must(graph.NewGraph(n, edges))
}

// RandomWeights lifts g to a weighted graph with uniform random integer
// weights in [minW, maxW].
func RandomWeights(g *graph.Graph, minW, maxW uint32, seed uint64) *graph.Weighted {
	if minW > maxW {
		panic("gen: RandomWeights needs minW <= maxW")
	}
	r := rng.New(seed)
	span := uint64(maxW-minW) + 1
	var wedges []graph.WeightedEdge
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				w := minW + uint32(r.Uint64n(span))
				wedges = append(wedges, graph.WeightedEdge{U: v, V: u, Weight: w})
			}
		}
	}
	wg, err := graph.NewWeighted(g.NumVertices(), wedges)
	if err != nil {
		panic(err)
	}
	return wg
}

// RandomDigraph returns a digraph with n vertices and m arcs sampled
// uniformly (self-loops excluded, duplicates collapsed by the builder).
func RandomDigraph(n int, m int64, seed uint64) *graph.Digraph {
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		u := r.Int31n(int32(n))
		v := r.Int31n(int32(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	dg, err := graph.NewDigraph(n, edges)
	if err != nil {
		panic(err)
	}
	return dg
}

// ExampleGraph12 returns the small 12-vertex illustration graph used by
// the Figure 1 walkthrough. The paper's figure is a drawing whose exact
// adjacency is not recoverable from the text, so this is a structurally
// equivalent stand-in: a high-degree hub (vertex 0), a secondary hub
// (vertex 1), and peripheral vertices, which reproduces the figure's
// phenomenon — each successive pruned BFS labels fewer vertices.
func ExampleGraph12() *graph.Graph {
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5},
		{U: 1, V: 6}, {U: 1, V: 7}, {U: 1, V: 8},
		{U: 2, V: 9}, {U: 3, V: 10},
		{U: 4, V: 5}, {U: 6, V: 7},
		{U: 9, V: 11}, {U: 10, V: 11},
	}
	return must(graph.NewGraph(12, edges))
}

func must(g *graph.Graph, err error) *graph.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
