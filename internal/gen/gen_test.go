package gen

import (
	"testing"
	"testing/quick"

	"pll/internal/graph"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("path(5): n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatal("path degrees wrong")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.NumEdges() != 6 {
		t.Fatalf("cycle(6) edges = %d", g.NumEdges())
	}
	for v := int32(0); v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("cycle degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestCyclePanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Cycle(2)")
		}
	}()
	Cycle(2)
}

func TestStar(t *testing.T) {
	g := Star(7)
	if g.Degree(0) != 6 {
		t.Fatalf("star center degree = %d", g.Degree(0))
	}
	for v := int32(1); v < 7; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("star leaf degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.NumEdges() != 10 {
		t.Fatalf("K5 edges = %d, want 10", g.NumEdges())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("grid n = %d", g.NumVertices())
	}
	// 3*3 horizontal + 2*4 vertical = 9+8 = 17 edges.
	if g.NumEdges() != 17 {
		t.Fatalf("grid edges = %d, want 17", g.NumEdges())
	}
	if !graph.IsConnected(g) {
		t.Fatal("grid should be connected")
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(50, 3)
	if g.NumEdges() != 49 {
		t.Fatalf("tree edges = %d, want 49", g.NumEdges())
	}
	if !graph.IsConnected(g) {
		t.Fatal("tree should be connected")
	}
}

func TestErdosRenyiExactEdges(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumEdges() != 300 {
		t.Fatalf("ER edges = %d, want 300", g.NumEdges())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 100, 9)
	b := ErdosRenyi(50, 100, 9)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestErdosRenyiPanicsOnTooManyEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ErdosRenyi(3, 4, 1)
}

func TestBarabasiAlbertProperties(t *testing.T) {
	g := BarabasiAlbert(500, 3, 42)
	if g.NumVertices() != 500 {
		t.Fatalf("BA n = %d", g.NumVertices())
	}
	if !graph.IsConnected(g) {
		t.Fatal("BA graph should be connected")
	}
	// Every non-seed vertex attaches with m=3 edges; m is about 3n.
	if g.NumEdges() < 3*(500-4) {
		t.Fatalf("BA edges = %d, too few", g.NumEdges())
	}
	// Power-law-ish: max degree should be far above the mean.
	mean := float64(2*g.NumEdges()) / 500
	if float64(g.MaxDegree()) < 4*mean {
		t.Fatalf("BA max degree %d not heavy-tailed (mean %.1f)", g.MaxDegree(), mean)
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	for _, f := range []func(){
		func() { BarabasiAlbert(2, 3, 1) },
		func() { BarabasiAlbert(10, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(100, 4, 0.1, 5)
	if g.NumVertices() != 100 {
		t.Fatalf("WS n = %d", g.NumVertices())
	}
	// Base lattice has n*k/2 = 200 edges; rewiring can only merge a few.
	if g.NumEdges() < 180 {
		t.Fatalf("WS edges = %d, too few", g.NumEdges())
	}
}

func TestWattsStrogatzZeroBeta(t *testing.T) {
	g := WattsStrogatz(20, 4, 0, 1)
	for v := int32(0); v < 20; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("unrewired WS degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd k")
		}
	}()
	WattsStrogatz(10, 3, 0.1, 1)
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 3)
	if g.NumVertices() != 1024 {
		t.Fatalf("RMAT n = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 8*1024 {
		t.Fatalf("RMAT edges = %d out of range", g.NumEdges())
	}
	// Skewed generators produce heavy-tailed degree distributions.
	mean := float64(2*g.NumEdges()) / 1024
	if float64(g.MaxDegree()) < 3*mean {
		t.Fatalf("RMAT max degree %d not skewed (mean %.1f)", g.MaxDegree(), mean)
	}
}

func TestRMATPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad probabilities")
		}
	}()
	RMAT(5, 4, 0.9, 0.9, 0.9, 1)
}

func TestCoreFringe(t *testing.T) {
	g := CoreFringe(50, 400, 200, 11)
	if g.NumVertices() != 250 {
		t.Fatalf("core-fringe n = %d", g.NumVertices())
	}
	if g.NumEdges() != 600 {
		t.Fatalf("core-fringe edges = %d, want 600", g.NumEdges())
	}
	if !graph.IsConnected(g) {
		// The core itself may be disconnected; the fringe attaches to
		// earlier vertices so extra components come only from the core.
		_, count := graph.ConnectedComponents(g)
		if count > 5 {
			t.Fatalf("core-fringe highly disconnected: %d components", count)
		}
	}
}

func TestRandomWeights(t *testing.T) {
	g := Path(10)
	wg := RandomWeights(g, 2, 9, 7)
	if wg.NumEdges() != 9 {
		t.Fatal("weight lift changed edges")
	}
	for v := int32(0); v < 10; v++ {
		for _, w := range wg.Weights(v) {
			if w < 2 || w > 9 {
				t.Fatalf("weight %d out of [2,9]", w)
			}
		}
	}
}

func TestRandomDigraph(t *testing.T) {
	g := RandomDigraph(50, 200, 13)
	if g.NumVertices() != 50 {
		t.Fatalf("digraph n = %d", g.NumVertices())
	}
	if g.NumArcs() == 0 || g.NumArcs() > 200 {
		t.Fatalf("digraph arcs = %d", g.NumArcs())
	}
}

func TestExampleGraph12(t *testing.T) {
	g := ExampleGraph12()
	if g.NumVertices() != 12 {
		t.Fatalf("example n = %d", g.NumVertices())
	}
	if !graph.IsConnected(g) {
		t.Fatal("example graph should be connected")
	}
	if g.MaxDegree() < 4 {
		t.Fatal("example graph needs a hub")
	}
}

func TestGeneratorsDeterministicProperty(t *testing.T) {
	check := func(seed uint64) bool {
		a := BarabasiAlbert(60, 2, seed)
		b := BarabasiAlbert(60, 2, seed)
		if a.NumEdges() != b.NumEdges() {
			return false
		}
		ea, eb := a.Edges(), b.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
