package core

// Composite-search capability: multi-constraint queries over the
// hub-inverted labels, answered by the streaming engine in
// internal/runquery. A request is a small boolean tree of distance
// constraints (near / and / or / not / in) plus a ranking expression
// (sum, max or weighted sum of distances to named sources) and an
// optional top-k limit — "within d₁ of A and d₂ of B, not within d₃ of
// C, ranked by combined distance, top k" in one call, with no
// intermediate neighborhood materialized.
//
// This file owns the ID-space request/response types shared by the
// public API, the HTTP server and the CLI, the per-variant adapters
// that present each index to the rank-space engine, and the pinned-
// label probers (the §4.5 single-source trick of batchfrom.go) the
// engine uses to test candidates against non-driving constraints.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"pll/internal/hubsearch"
	"pll/internal/runquery"
)

// NearClause matches every vertex within MaxDist of Source (the source
// itself included — d(s,s) = 0).
type NearClause struct {
	Source  int32 `json:"source"`
	MaxDist int64 `json:"max_dist"`
}

// CompositeClause is one constraint-tree node; exactly one field must
// be set. Not-clauses may appear only as direct children of an
// and-clause with at least one positive sibling — anything else would
// describe an unbounded complement set.
type CompositeClause struct {
	Near *NearClause        `json:"near,omitempty"`
	And  []*CompositeClause `json:"and,omitempty"`
	Or   []*CompositeClause `json:"or,omitempty"`
	Not  *CompositeClause   `json:"not,omitempty"`
	In   []int32            `json:"in,omitempty"`
}

// CompositeTerm is one ranking term: the distance from Source scaled by
// Weight (0 normalizes to 1).
type CompositeTerm struct {
	Source int32 `json:"source"`
	Weight int64 `json:"weight,omitempty"`
}

// CompositeRank selects the ranking expression: By is "sum" (default)
// or "max" over the weighted term distances. Empty Terms default to the
// tree's near-constraint sources, in tree order, weight 1.
type CompositeRank struct {
	By    string          `json:"by,omitempty"`
	Terms []CompositeTerm `json:"terms,omitempty"`
}

// CompositeRequest is a full composite query in vertex-ID space.
type CompositeRequest struct {
	Where *CompositeClause `json:"where"`
	Rank  *CompositeRank   `json:"rank,omitempty"`
	// K trims to the k best-scored matches (smallest vertex IDs win
	// ties); 0 returns every match.
	K int `json:"k,omitempty"`
}

// CompositeMatch is one answer: a vertex, its combined score, and the
// per-term raw distances (-1 for an unreachable term, which also makes
// Score -1 and sorts the match after every fully reachable one).
type CompositeMatch struct {
	Vertex int32   `json:"vertex"`
	Score  int64   `json:"score"`
	Terms  []int64 `json:"terms,omitempty"`
}

// CompositeResult is a composite answer: matches sorted by (score,
// vertex ID) with unreachable-scored matches last. Total counts the
// matches before the K trim — exact when Exact is set, a lower bound
// when top-k pruning stopped the scan early.
type CompositeResult struct {
	Matches []CompositeMatch `json:"matches"`
	Total   int              `json:"total"`
	Exact   bool             `json:"exact"`
	// Scanned counts the label entries the hub-run scans advanced; it is
	// a profiling figure, not part of the wire shape.
	Scanned int64 `json:"-"`
}

// maxCompositeDepth caps constraint-tree nesting so a hostile request
// cannot drive unbounded recursion.
const maxCompositeDepth = 16

// Validate checks the request's structure — clause shape, not
// placement, nesting depth, ranking sanity — without an index: vertex
// range errors surface from Composite itself. Safe on untrusted input.
func (r *CompositeRequest) Validate() error {
	if r.Where == nil {
		return errors.New("core: composite request has no where-clause")
	}
	if r.K < 0 {
		return fmt.Errorf("core: negative k %d", r.K)
	}
	if err := validateClause(r.Where, 0, false); err != nil {
		return err
	}
	if r.Rank == nil {
		return nil
	}
	switch r.Rank.By {
	case "", "sum", "max":
	default:
		return fmt.Errorf("core: unknown ranking %q (want \"sum\" or \"max\")", r.Rank.By)
	}
	if len(r.Rank.Terms) > runquery.MaxTerms {
		return fmt.Errorf("core: %d ranking terms exceed the limit of %d", len(r.Rank.Terms), runquery.MaxTerms)
	}
	seen := make(map[int32]struct{}, len(r.Rank.Terms))
	for _, t := range r.Rank.Terms {
		if t.Weight < 0 || t.Weight > runquery.MaxWeight {
			return fmt.Errorf("core: ranking weight %d outside [0,%d]", t.Weight, runquery.MaxWeight)
		}
		if _, dup := seen[t.Source]; dup {
			return fmt.Errorf("core: duplicate ranking term for vertex %d", t.Source)
		}
		seen[t.Source] = struct{}{}
	}
	return nil
}

func validateClause(c *CompositeClause, depth int, underAnd bool) error {
	if c == nil {
		return errors.New("core: nil clause")
	}
	if depth > maxCompositeDepth {
		return fmt.Errorf("core: clause tree deeper than %d", maxCompositeDepth)
	}
	fields := 0
	if c.Near != nil {
		fields++
	}
	if c.And != nil {
		fields++
	}
	if c.Or != nil {
		fields++
	}
	if c.Not != nil {
		fields++
	}
	if c.In != nil {
		fields++
	}
	if fields != 1 {
		return fmt.Errorf("core: clause must set exactly one of near/and/or/not/in, has %d", fields)
	}
	switch {
	case c.Near != nil:
		if c.Near.MaxDist < 0 {
			return fmt.Errorf("core: negative max_dist %d", c.Near.MaxDist)
		}
	case c.In != nil:
		if len(c.In) == 0 {
			return errors.New("core: empty in-clause")
		}
	case c.And != nil:
		if len(c.And) == 0 {
			return errors.New("core: empty and-clause")
		}
		positive := 0
		for _, k := range c.And {
			if k != nil && k.Not == nil {
				positive++
			}
			if err := validateClause(k, depth+1, true); err != nil {
				return err
			}
		}
		if positive == 0 {
			return errors.New("core: and-clause needs at least one positive child")
		}
	case c.Or != nil:
		if len(c.Or) == 0 {
			return errors.New("core: empty or-clause")
		}
		for _, k := range c.Or {
			if k != nil && k.Not != nil {
				return errors.New("core: not-clause must sit directly under an and-clause")
			}
			if err := validateClause(k, depth+1, false); err != nil {
				return err
			}
		}
	case c.Not != nil:
		if !underAnd {
			return errors.New("core: not-clause must sit directly under an and-clause")
		}
		if c.Not.Not != nil {
			return errors.New("core: nested not-clauses are not supported")
		}
		return validateClause(c.Not, depth+1, false)
	}
	return nil
}

// Normalize fills defaults in place so equal queries become equal
// values: missing Rank expands to the tree's near sources in tree order
// with weight 1, zero weights become 1, By defaults to "sum", and
// in-clauses are sorted and deduplicated. Idempotent; callers may
// canonicalize a normalized request (e.g. as a cache key). Call after
// Validate.
func (r *CompositeRequest) Normalize() {
	normalizeClause(r.Where)
	if r.Rank == nil {
		r.Rank = &CompositeRank{}
	}
	if r.Rank.By == "" {
		r.Rank.By = "sum"
	}
	if r.Rank.Terms == nil {
		for _, s := range nearSources(r.Where, nil) {
			r.Rank.Terms = append(r.Rank.Terms, CompositeTerm{Source: s, Weight: 1})
		}
	}
	for i := range r.Rank.Terms {
		if r.Rank.Terms[i].Weight == 0 {
			r.Rank.Terms[i].Weight = 1
		}
	}
}

func normalizeClause(c *CompositeClause) {
	switch {
	case c == nil:
	case c.In != nil:
		sort.Slice(c.In, func(i, j int) bool { return c.In[i] < c.In[j] })
		out := c.In[:0]
		var prev int32
		for i, v := range c.In {
			if i == 0 || v != prev {
				out = append(out, v)
			}
			prev = v
		}
		c.In = out
	case c.Not != nil:
		normalizeClause(c.Not)
	default:
		for _, k := range append(c.And, c.Or...) {
			normalizeClause(k)
		}
	}
}

// nearSources appends every near-clause source in tree order, without
// duplicates.
func nearSources(c *CompositeClause, dst []int32) []int32 {
	switch {
	case c == nil:
	case c.Near != nil:
		for _, s := range dst {
			if s == c.Near.Source {
				return dst
			}
		}
		return append(dst, c.Near.Source)
	case c.Not != nil:
		return nearSources(c.Not, dst)
	default:
		for _, k := range append(c.And, c.Or...) {
			dst = nearSources(k, dst)
		}
	}
	return dst
}

// Fanout counts the request's leaf work items — near constraints,
// in-clause members and ranking terms — the quantity servers cap
// against their batch limits.
func (r *CompositeRequest) Fanout() int {
	total := clauseFanout(r.Where)
	if r.Rank != nil {
		total += len(r.Rank.Terms)
	}
	return total
}

func clauseFanout(c *CompositeClause) int {
	switch {
	case c == nil:
		return 0
	case c.Near != nil:
		return 1
	case c.In != nil:
		return len(c.In)
	case c.Not != nil:
		return clauseFanout(c.Not)
	default:
		total := 0
		for _, k := range append(c.And, c.Or...) {
			total += clauseFanout(k)
		}
		return total
	}
}

// toRankQuery validates vertex ranges, maps the request into rank space
// and normalizes defaults. rank is the ID→rank permutation.
func (r *CompositeRequest) toRankQuery(n int, rank []int32) (*runquery.Query, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	r.Normalize()
	root, err := clauseToNode(r.Where, n, rank)
	if err != nil {
		return nil, err
	}
	q := &runquery.Query{Root: root, K: r.K}
	if r.Rank.By == "max" {
		q.Agg = runquery.AggMax
	}
	for _, t := range r.Rank.Terms {
		if t.Source < 0 || int(t.Source) >= n {
			return nil, fmt.Errorf("core: ranking term vertex %d out of range [0,%d)", t.Source, n)
		}
		q.Terms = append(q.Terms, runquery.Term{Source: rank[t.Source], Weight: t.Weight})
	}
	return q, nil
}

func clauseToNode(c *CompositeClause, n int, rank []int32) (*runquery.Node, error) {
	switch {
	case c.Near != nil:
		s := c.Near.Source
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("core: near vertex %d out of range [0,%d)", s, n)
		}
		return &runquery.Node{Op: runquery.OpNear, Source: rank[s], Cutoff: c.Near.MaxDist}, nil
	case c.In != nil:
		members := make([]int32, 0, len(c.In))
		for _, v := range c.In {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("core: in-clause vertex %d out of range [0,%d)", v, n)
			}
			members = append(members, rank[v])
		}
		// Distinct IDs map to distinct ranks, so sorting restores the
		// engine's strictly ascending contract.
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		return &runquery.Node{Op: runquery.OpIn, Members: members}, nil
	case c.Not != nil:
		kid, err := clauseToNode(c.Not, n, rank)
		if err != nil {
			return nil, err
		}
		return &runquery.Node{Op: runquery.OpNot, Kids: []*runquery.Node{kid}}, nil
	default:
		op := runquery.OpAnd
		kids := c.And
		if c.Or != nil {
			op = runquery.OpOr
			kids = c.Or
		}
		nd := &runquery.Node{Op: op, Kids: make([]*runquery.Node, 0, len(kids))}
		for _, k := range kids {
			kid, err := clauseToNode(k, n, rank)
			if err != nil {
				return nil, err
			}
			nd.Kids = append(nd.Kids, kid)
		}
		return nd, nil
	}
}

// finishComposite maps rank-space matches back to vertex IDs, applies
// the deterministic public ordering — reachable scores ascending, then
// vertex ID; unreachable-scored matches last — and trims to exactly k.
func finishComposite(perm []int32, rs *runquery.ResultSet, k int) *CompositeResult {
	out := &CompositeResult{Total: rs.Total, Exact: rs.Exact, Scanned: rs.Scanned}
	if len(rs.Matches) == 0 {
		return out
	}
	ms := make([]CompositeMatch, len(rs.Matches))
	for i, m := range rs.Matches {
		ms[i] = CompositeMatch{Vertex: perm[m.Rank], Score: m.Score, Terms: m.Terms}
	}
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if (a.Score < 0) != (b.Score < 0) {
			return b.Score < 0
		}
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.Vertex < b.Vertex
	})
	if k > 0 && len(ms) > k {
		ms = ms[:k]
	}
	out.Matches = ms
	return out
}

// ---------------------------------------------------------------------
// Undirected (and frozen-dynamic) Index
// ---------------------------------------------------------------------

// indexBackend presents an Index to the rank-space engine.
type indexBackend struct{ ix *Index }

func (b indexBackend) NumVertices() int              { return b.ix.n }
func (b indexBackend) Inverted() *hubsearch.Inverted { return b.ix.EnsureSearch() }
func (b indexBackend) GetScratch() *hubsearch.Scratch {
	return b.ix.search.getScratch(b.ix.n)
}
func (b indexBackend) PutScratch(sc *hubsearch.Scratch) { b.ix.search.pool.Put(sc) }
func (b indexBackend) SourceRuns(rs int32) ([]hubsearch.Run, []uint64, []uint64) {
	return b.ix.searchSource(rs)
}

// indexProber pins one source through the pooled BatchSource engine
// (bit-parallel §5.3 corrections included), converting the engine's
// ranks back to IDs at the boundary.
type indexProber struct {
	ix *Index
	bs *BatchSource
}

func (p indexProber) Dist(rv int32) int64 { return int64(p.bs.Query(p.ix.perm[rv])) }
func (p indexProber) Release()            { p.ix.batchPool.Put(p.bs) }

func (b indexBackend) NewProber(rs int32) runquery.Prober {
	s := b.ix.perm[rs]
	bs, _ := b.ix.batchPool.Get().(*BatchSource)
	if bs == nil {
		bs = b.ix.NewBatchSource(s)
	} else {
		bs.Reset(s)
	}
	return indexProber{ix: b.ix, bs: bs}
}

// Composite answers a multi-constraint query; see CompositeRequest.
// Results follow the deterministic (score, vertex ID) ordering shared
// by every variant and container form. Safe for concurrent use.
func (ix *Index) Composite(req *CompositeRequest) (*CompositeResult, error) {
	q, err := req.toRankQuery(ix.n, ix.rank)
	if err != nil {
		return nil, err
	}
	rs, err := runquery.Execute(indexBackend{ix}, q)
	if err != nil {
		return nil, err
	}
	return finishComposite(ix.perm, rs, req.K), nil
}

// ---------------------------------------------------------------------
// DirectedIndex: forward constraints d(s -> v), like its KNN.
// ---------------------------------------------------------------------

type directedBackend struct{ ix *DirectedIndex }

func (b directedBackend) NumVertices() int              { return b.ix.n }
func (b directedBackend) Inverted() *hubsearch.Inverted { return b.ix.EnsureSearch() }
func (b directedBackend) GetScratch() *hubsearch.Scratch {
	return b.ix.search.getScratch(b.ix.n)
}
func (b directedBackend) PutScratch(sc *hubsearch.Scratch) { b.ix.search.pool.Put(sc) }
func (b directedBackend) SourceRuns(rs int32) ([]hubsearch.Run, []uint64, []uint64) {
	return b.ix.searchSource(rs), nil, nil
}

// directedProber pins L_OUT(source) once; each probe scans L_IN of the
// candidate — the batchfrom.go single-source idiom in rank space.
type directedProber struct {
	ix *DirectedIndex
	sc *rankScratch8
	rs int32
}

func (p directedProber) Dist(rv int32) int64 {
	if rv == p.rs {
		return 0
	}
	ix := p.ix
	best := infQuery
	for j := ix.inOff[rv]; j < ix.inOff[rv+1]-1; j++ {
		if tw := p.sc.t[ix.inVertex[j]]; tw != InfDist {
			if d := int(tw) + int(ix.inDist[j]); d < best {
				best = d
			}
		}
	}
	if best >= infQuery {
		return Unreachable
	}
	return int64(best)
}

func (p directedProber) Release() { p.sc.release(&p.ix.batchPool) }

func (b directedBackend) NewProber(rs int32) runquery.Prober {
	ix := b.ix
	sc := getScratch8(&ix.batchPool, ix.n)
	for i := ix.outOff[rs]; i < ix.outOff[rs+1]-1; i++ {
		w := ix.outVertex[i]
		sc.t[w] = ix.outDist[i]
		sc.loaded = append(sc.loaded, w)
	}
	return directedProber{ix: ix, sc: sc, rs: rs}
}

// Composite answers a multi-constraint query over forward distances
// d(s → v); see Index.Composite for the contract.
func (ix *DirectedIndex) Composite(req *CompositeRequest) (*CompositeResult, error) {
	q, err := req.toRankQuery(ix.n, ix.rank)
	if err != nil {
		return nil, err
	}
	rs, err := runquery.Execute(directedBackend{ix}, q)
	if err != nil {
		return nil, err
	}
	return finishComposite(ix.perm, rs, req.K), nil
}

// ---------------------------------------------------------------------
// WeightedIndex
// ---------------------------------------------------------------------

type weightedBackend struct{ ix *WeightedIndex }

func (b weightedBackend) NumVertices() int              { return b.ix.n }
func (b weightedBackend) Inverted() *hubsearch.Inverted { return b.ix.EnsureSearch() }
func (b weightedBackend) GetScratch() *hubsearch.Scratch {
	return b.ix.search.getScratch(b.ix.n)
}
func (b weightedBackend) PutScratch(sc *hubsearch.Scratch) { b.ix.search.pool.Put(sc) }
func (b weightedBackend) SourceRuns(rs int32) ([]hubsearch.Run, []uint64, []uint64) {
	return b.ix.searchSource(rs), nil, nil
}

func getScratch32(pool *sync.Pool, n int) *rankScratch32 {
	sc, _ := pool.Get().(*rankScratch32)
	if sc == nil {
		sc = &rankScratch32{t: make([]uint32, n+1)}
		for i := range sc.t {
			sc.t[i] = InfWeight32
		}
	}
	return sc
}

type weightedProber struct {
	ix *WeightedIndex
	sc *rankScratch32
	rs int32
}

func (p weightedProber) Dist(rv int32) int64 {
	if rv == p.rs {
		return 0
	}
	ix := p.ix
	best := UnreachableW
	for j := ix.labelOff[rv]; j < ix.labelOff[rv+1]-1; j++ {
		if tw := p.sc.t[ix.labelVertex[j]]; tw != InfWeight32 {
			if d := uint64(tw) + uint64(ix.labelDist[j]); d < best {
				best = d
			}
		}
	}
	if best == UnreachableW {
		return Unreachable
	}
	return int64(best)
}

func (p weightedProber) Release() {
	for _, w := range p.sc.loaded {
		p.sc.t[w] = InfWeight32
	}
	p.sc.loaded = p.sc.loaded[:0]
	p.ix.batchPool.Put(p.sc)
}

func (b weightedBackend) NewProber(rs int32) runquery.Prober {
	ix := b.ix
	sc := getScratch32(&ix.batchPool, ix.n)
	for i := ix.labelOff[rs]; i < ix.labelOff[rs+1]-1; i++ {
		w := ix.labelVertex[i]
		sc.t[w] = ix.labelDist[i]
		sc.loaded = append(sc.loaded, w)
	}
	return weightedProber{ix: ix, sc: sc, rs: rs}
}

// Composite answers a multi-constraint query over weighted distances;
// see Index.Composite for the contract.
func (ix *WeightedIndex) Composite(req *CompositeRequest) (*CompositeResult, error) {
	q, err := req.toRankQuery(ix.n, ix.rank)
	if err != nil {
		return nil, err
	}
	rs, err := runquery.Execute(weightedBackend{ix}, q)
	if err != nil {
		return nil, err
	}
	return finishComposite(ix.perm, rs, req.K), nil
}
