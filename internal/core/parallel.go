package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel pruned labeling.
//
// The pruned phase looks inherently sequential: the BFS from the k-th
// root prunes against the labels added by roots 1..k-1. This file runs
// it in rank-ordered batches instead. All searches of a batch run
// concurrently against the *frozen* label set of every earlier batch
// (reads only — nobody writes labels while a batch is in flight), each
// producing a candidate list; then a sequential merge walks the batch in
// rank order and replays exactly the pruning decisions the sequential
// algorithm would have made, so the final labels are byte-identical to a
// sequential build.
//
// Why the merge can be exact and still cheap:
//
//  1. A pruned search that prunes against *fewer* labels visits a
//     superset of vertices, and every vertex it labels is at its exact
//     distance from the root (the standard PLL invariant: a vertex
//     reachable only through pruned predecessors is already covered, so
//     over-estimated visits always fail the prune test and are never
//     labeled). Hence each batch search's candidate list is a superset
//     of the sequential label set, with identical distances.
//  2. The only labels a batch search could not see are those added by
//     earlier roots of the *same* batch — and those hubs all have rank
//     >= the batch's first rank. Labels are stored sorted by hub rank
//     and appended in rank order, so the invisible entries are exactly
//     the tails of L(u) and of the root's own label T with hub >=
//     batchStart. The merge therefore re-tests each candidate (u, d)
//     against just those tails: a hub pair can newly cover (root, u)
//     only if the hub itself belongs to this batch.
//
// Together: sequential label set = candidates that survive the tail
// test, in the same order, with the same distances. For path-storing
// builds the BFS-tree parents must also match the sequential visit
// order, so the merge instead replays the full BFS queue discipline but
// with O(tail) prune tests (see replayPrunedBFS).
//
// Batches are sized by a ramp (see prunedBatchSize): the first,
// highest-ranked roots label huge swaths of the graph, so batching them
// against a near-empty frozen set would make every same-batch search
// re-traverse the whole graph; once a few dozen roots are in, the
// frozen set prunes almost as hard as the live one and batches grow.
// Batch size affects only performance, never the output.

// EffectiveWorkers resolves an Options.Workers value: 0 selects
// GOMAXPROCS, negative values clamp to 1 (sequential), anything else is
// returned unchanged.
func EffectiveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// Batch-ramp knobs. Variables rather than constants so the equivalence
// tests can force extreme schedules (batch everything / batch nothing)
// and assert the output never changes.
var (
	// parallelSeqPrefix is how many pruned roots run strictly
	// sequentially before batching starts.
	parallelSeqPrefix = 32
	// parallelBatchDiv ramps the batch size as done/parallelBatchDiv.
	parallelBatchDiv = 8
	// maxPrunedBatch caps the batch size, bounding candidate memory and
	// keeping the sequential merge close behind the searches.
	maxPrunedBatch = 512
)

// prunedBatchSize picks the next batch size after done pruned roots.
// The ramp deliberately has no worker floor: early high-rank roots run
// in small batches even if that leaves workers idle, because batching
// them against a barely-populated frozen label set wastes far more work
// (every batch member re-traverses what its predecessors would have
// pruned) than the lost concurrency costs.
func prunedBatchSize(done, workers int) int {
	if done < parallelSeqPrefix {
		return 1
	}
	b := done / parallelBatchDiv
	if b > maxPrunedBatch {
		b = maxPrunedBatch
	}
	if b < 1 {
		b = 1
	}
	return b
}

// labelCand is one vertex visited by a relaxed batch search: a proposed
// label entry (v, d) with its BFS-tree parent (meaningful only when
// storing paths), or — kept only for path replays — a vertex the search
// visited but pruned against the frozen labels.
type labelCand struct {
	v      int32
	par    int32
	d      uint8
	pruned bool
}

// runPrunedPhaseParallel is runPrunedPhase with the batch-parallel
// scheme above. It requires workers > 1 and no stats collection.
func (b *builder) runPrunedPhaseParallel(workers int) error {
	roots := make([]int32, 0, b.n)
	for v := int32(0); int(v) < b.n; v++ {
		if !b.used[v] {
			roots = append(roots, v)
		}
	}
	if b.storePaths {
		b.candD = make([]uint8, b.n)
		b.candPruned = make([]bool, b.n)
		for i := range b.candD {
			b.candD[i] = InfDist
		}
	}

	scratches := make([]*prunedScratch, workers)
	cands := make([][]labelCand, maxPrunedBatch)
	needSeq := make([]bool, maxPrunedBatch)

	done := 0
	for done < len(roots) {
		size := prunedBatchSize(done, workers)
		if size > len(roots)-done {
			size = len(roots) - done
		}
		batch := roots[done : done+size]
		done += size
		if size == 1 {
			if _, _, err := b.prunedBFS(batch[0]); err != nil {
				return err
			}
			continue
		}

		// Concurrent relaxed searches over the frozen labels.
		spawn := workers
		if spawn > size {
			spawn = size
		}
		var wg sync.WaitGroup
		next := int32(-1)
		for w := 0; w < spawn; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if scratches[w] == nil {
					scratches[w] = newPrunedScratch(b.n, b.ix.numBP, b.storePaths)
				}
				sc := scratches[w]
				for {
					i := int(atomic.AddInt32(&next, 1))
					if i >= size {
						return
					}
					cands[i], needSeq[i] = b.relaxedPrunedBFS(batch[i], sc, cands[i][:0])
				}
			}(w)
		}
		wg.Wait()

		// Deterministic merge in rank order.
		batchStart := batch[0]
		for i, vk := range batch {
			switch {
			case needSeq[i]:
				// The relaxed search overran — or brushed against — the
				// 8-bit distance budget. Re-run this root with the real
				// algorithm: if the sequential build would have failed
				// here, this fails identically, and if not (it prunes
				// harder), the labels come out right.
				if _, _, err := b.prunedBFS(vk); err != nil {
					return err
				}
			case b.storePaths:
				if err := b.replayPrunedBFS(vk, batchStart, cands[i]); err != nil {
					return err
				}
			default:
				b.mergeCands(vk, batchStart, cands[i])
			}
		}
	}
	return nil
}

// relaxedPrunedBFS runs root vk's pruned BFS against the frozen label
// set, appending every labeled vertex (and, when storing paths, every
// pruned visit) to cands. It only reads shared builder state — labels,
// bit-parallel arrays, the graph — and writes nothing but sc and cands.
// needSeq asks the caller to discard the candidates and fall back to a
// sequential search for this root. It is set when the search exceeded
// MaxDist — and, for distance-only builds, when any candidate sits
// exactly at MaxDist: the sequential search's overflow check fires when
// an *expanded* vertex at MaxDist meets a then-unvisited neighbor,
// which depends on sequential visit state the candidate filter does not
// replay. Expanded vertices carry exact distances, so every vertex that
// could trigger a sequential overflow is a candidate at MaxDist here —
// the flag conservatively covers all such roots, keeping even the
// failure behavior identical to a sequential build. (Path-storing
// builds replay the full queue discipline and need no such guard.)
func (b *builder) relaxedPrunedBFS(vk int32, sc *prunedScratch, cands []labelCand) (_ []labelCand, needSeq bool) {
	lv, ld := b.labV[vk], b.labD[vk]
	for i, w := range lv {
		sc.rootLab[w] = ld[i]
	}
	b.mirrorBP(sc, vk)

	que := sc.queue[:0]
	que = append(que, vk)
	sc.dist[vk] = 0
	if b.storePaths {
		sc.par[vk] = -1
	}
search:
	for qh := 0; qh < len(que); qh++ {
		u := que[qh]
		d := sc.dist[u]
		if b.pruned(sc, u, d) {
			if b.storePaths {
				cands = append(cands, labelCand{v: u, d: d, pruned: true})
			}
			continue
		}
		c := labelCand{v: u, d: d}
		if b.storePaths {
			c.par = sc.par[u]
		}
		cands = append(cands, c)
		if !b.storePaths && int(d) == MaxDist {
			needSeq = true
			break search
		}
		nd := int(d) + 1
		for _, w := range b.h.Neighbors(u) {
			if sc.dist[w] == InfDist {
				if nd > MaxDist {
					needSeq = true
					break search
				}
				sc.dist[w] = uint8(nd)
				if b.storePaths {
					sc.par[w] = u
				}
				que = append(que, w)
			}
		}
	}
	sc.reset(que, lv)
	sc.queue = que[:0]
	return cands, needSeq
}

// mergeCands finalizes root vk's batch search: each candidate (u, d) is
// re-tested against the label-tail entries with hub >= batchStart — the
// only entries the relaxed search could not see — and survivors are
// appended, reproducing the sequential pruning decisions exactly.
func (b *builder) mergeCands(vk, batchStart int32, cands []labelCand) {
	// T is the root's label as of now, i.e. including entries added by
	// earlier roots of this batch — exactly what the sequential BFS from
	// vk would have loaded.
	lv, ld := b.labV[vk], b.labD[vk]
	rl := b.sc.rootLab
	for i, w := range lv {
		rl[w] = ld[i]
	}
	for _, c := range cands {
		u, d := c.v, c.d
		uv, ud := b.labV[u], b.labD[u]
		covered := false
		for i := len(uv) - 1; i >= 0 && uv[i] >= batchStart; i-- {
			if tw := rl[uv[i]]; tw != InfDist && int(tw)+int(ud[i]) <= int(d) {
				covered = true
				break
			}
		}
		if !covered {
			b.labV[u] = append(b.labV[u], vk)
			b.labD[u] = append(b.labD[u], d)
		}
	}
	for _, w := range lv {
		rl[w] = InfDist
	}
}

// replayPrunedBFS is the path-storing merge: parent pointers must match
// the sequential BFS-tree exactly, and the tree depends on the queue
// order, so the merge re-runs the full BFS queue discipline. The prune
// tests stay cheap: the batch search already decided every vertex
// against the frozen labels, so the replay only needs the candidate
// marks plus a label-tail scan for hubs >= batchStart.
func (b *builder) replayPrunedBFS(vk, batchStart int32, cands []labelCand) error {
	for _, c := range cands {
		if c.pruned {
			b.candPruned[c.v] = true
		} else {
			b.candD[c.v] = c.d
		}
	}

	sc := &b.sc
	lv, ld := b.labV[vk], b.labD[vk]
	for i, w := range lv {
		sc.rootLab[w] = ld[i]
	}
	que := sc.queue[:0]
	que = append(que, vk)
	sc.dist[vk] = 0
	sc.par[vk] = -1
	var err error
replay:
	for qh := 0; qh < len(que); qh++ {
		u := que[qh]
		d := sc.dist[u]
		// Sequential prune decision, reconstructed:
		//  - pruned against frozen labels in the batch search, or first
		//    reached later than the batch search did (which per the
		//    invariant means the pair is already covered): pruned;
		//  - otherwise a candidate at its exact distance: pruned iff a
		//    same-batch label tail covers it.
		covered := true
		if !b.candPruned[u] && b.candD[u] == d {
			covered = false
			uv, ud := b.labV[u], b.labD[u]
			for i := len(uv) - 1; i >= 0 && uv[i] >= batchStart; i-- {
				if tw := sc.rootLab[uv[i]]; tw != InfDist && int(tw)+int(ud[i]) <= int(d) {
					covered = true
					break
				}
			}
		}
		if covered {
			continue
		}
		b.labV[u] = append(b.labV[u], vk)
		b.labD[u] = append(b.labD[u], d)
		b.labP[u] = append(b.labP[u], sc.par[u])
		nd := int(d) + 1
		for _, w := range b.h.Neighbors(u) {
			if sc.dist[w] == InfDist {
				if nd > MaxDist {
					// The replay reproduces the sequential execution
					// exactly, so this error fires precisely where a
					// sequential build would fail. (It is reachable even
					// when the relaxed search succeeded: the relaxed
					// search may have reached w earlier along a route
					// the sequential order prunes.)
					err = ErrDiameterTooLarge
					break replay
				}
				sc.dist[w] = uint8(nd)
				sc.par[w] = u
				que = append(que, w)
			}
		}
	}
	sc.reset(que, lv)
	sc.queue = que[:0]
	for _, c := range cands {
		if c.pruned {
			b.candPruned[c.v] = false
		} else {
			b.candD[c.v] = InfDist
		}
	}
	return err
}
