package core

import (
	"fmt"
	"math"

	"pll/internal/graph"
	"pll/internal/order"
	"pll/internal/rng"
)

// InfWeight32 is the in-label encoding of "unreachable" for weighted
// indexes, which use 32-bit distances instead of the 8-bit distances of
// the unweighted index.
const InfWeight32 uint32 = math.MaxUint32

// UnreachableW is returned by WeightedIndex.Query for disconnected pairs.
const UnreachableW = uint64(math.MaxUint64)

// WeightedIndex is the §6 "Weighted Graphs" variant: identical labeling
// framework, but labels are produced by pruned Dijkstra searches and
// store 32-bit distances. Bit-parallel labeling does not apply (§6).
type WeightedIndex struct {
	n    int
	perm []int32
	rank []int32

	labelOff    []int64
	labelVertex []int32 // hub ranks, ascending, sentinel n
	labelDist   []uint32
	labelParent []int32 // optional Dijkstra-tree parents (ranks); nil unless StorePaths
}

// WeightedOptions configures BuildWeighted.
type WeightedOptions struct {
	// Ordering selects the vertex order; Degree (on the unweighted
	// structure) is the default, as in the unweighted case.
	Ordering order.Strategy
	// Seed drives ordering tie-breaks.
	Seed uint64
	// CustomOrder, if non-nil, overrides Ordering.
	CustomOrder []int32
	// StorePaths records a parent pointer per label entry so QueryPath
	// can reconstruct minimum-weight paths (§6).
	StorePaths bool
}

// BuildWeighted constructs a pruned-landmark-labeling index for a
// weighted undirected graph by pruned Dijkstra searches. Distances along
// any shortest path must fit in 32 bits.
func BuildWeighted(g *graph.Weighted, opt WeightedOptions) (*WeightedIndex, error) {
	n := g.NumVertices()
	perm := opt.CustomOrder
	if perm == nil {
		perm = order.Compute(g.Unweighted(), opt.Ordering, opt.Seed)
	} else if len(perm) != n {
		return nil, fmt.Errorf("core: CustomOrder length %d != n %d", len(perm), n)
	}
	h, err := g.Relabel(perm)
	if err != nil {
		return nil, fmt.Errorf("core: invalid CustomOrder: %w", err)
	}

	labV := make([][]int32, n)
	labD := make([][]uint32, n)
	var labP [][]int32
	var par []int32
	if opt.StorePaths {
		labP = make([][]int32, n)
		par = make([]int32, n)
	}
	dist := make([]uint64, n)
	rootLab := make([]uint64, n+1)
	const inf = uint64(math.MaxUint64)
	for i := range dist {
		dist[i] = inf
	}
	for i := range rootLab {
		rootLab[i] = inf
	}
	visited := make([]int32, 0, 1024)
	var heap wHeap

	for vk := int32(0); int(vk) < n; vk++ {
		lv, ld := labV[vk], labD[vk]
		for i, w := range lv {
			rootLab[w] = uint64(ld[i])
		}
		visited = visited[:0]
		heap = heap[:0]
		dist[vk] = 0
		if par != nil {
			par[vk] = -1
		}
		visited = append(visited, vk)
		heap.push(wItem{0, vk})
		for len(heap) > 0 {
			it := heap.pop()
			u, d := it.v, it.dist
			if d != dist[u] {
				continue // stale entry
			}
			// Prune test: scan L(u) against the root-label array.
			pruned := false
			uv, ud := labV[u], labD[u]
			for i, w := range uv {
				if tw := rootLab[w]; tw != inf && tw+uint64(ud[i]) <= d {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
			if d > uint64(InfWeight32)-1 {
				return nil, fmt.Errorf("core: weighted distance %d exceeds 32-bit label budget", d)
			}
			labV[u] = append(labV[u], vk)
			labD[u] = append(labD[u], uint32(d))
			if labP != nil {
				labP[u] = append(labP[u], par[u])
			}
			ws := h.Weights(u)
			for i, w := range h.Neighbors(u) {
				nd := d + uint64(ws[i])
				if nd < dist[w] {
					if dist[w] == inf {
						visited = append(visited, w)
					}
					dist[w] = nd
					if par != nil {
						par[w] = u
					}
					heap.push(wItem{nd, w})
				}
			}
		}
		for _, v := range visited {
			dist[v] = inf
		}
		for _, w := range lv {
			rootLab[w] = inf
		}
	}

	ix := &WeightedIndex{
		n:    n,
		perm: append([]int32(nil), perm...),
		rank: order.RankOf(perm),
	}
	total := int64(0)
	for v := 0; v < n; v++ {
		total += int64(len(labV[v])) + 1
	}
	ix.labelOff = make([]int64, n+1)
	ix.labelVertex = make([]int32, total)
	ix.labelDist = make([]uint32, total)
	if opt.StorePaths {
		ix.labelParent = make([]int32, total)
	}
	w := int64(0)
	for v := 0; v < n; v++ {
		ix.labelOff[v] = w
		copy(ix.labelVertex[w:], labV[v])
		copy(ix.labelDist[w:], labD[v])
		if opt.StorePaths {
			copy(ix.labelParent[w:], labP[v])
		}
		w += int64(len(labV[v]))
		ix.labelVertex[w] = int32(n)
		ix.labelDist[w] = InfWeight32
		if opt.StorePaths {
			ix.labelParent[w] = -1
		}
		w++
	}
	ix.labelOff[n] = w
	return ix, nil
}

// HasPaths reports whether the index can answer QueryPath.
func (ix *WeightedIndex) HasPaths() bool { return ix.labelParent != nil }

// QueryPath returns one minimum-weight s-t path (inclusive of both
// endpoints) and its total weight, or (nil, UnreachableW) for
// disconnected pairs. The index must have been built with StorePaths.
func (ix *WeightedIndex) QueryPath(s, t int32) ([]int32, uint64, error) {
	if ix.labelParent == nil {
		return nil, 0, fmt.Errorf("core: weighted index was built without StorePaths")
	}
	if s == t {
		return []int32{s}, 0, nil
	}
	rs, rt := ix.rank[s], ix.rank[t]
	best := UnreachableW
	hub := int32(-1)
	i, j := ix.labelOff[rs], ix.labelOff[rt]
	for {
		vs, vt := ix.labelVertex[i], ix.labelVertex[j]
		if vs == vt {
			if int(vs) == ix.n {
				break
			}
			if d := uint64(ix.labelDist[i]) + uint64(ix.labelDist[j]); d < best {
				best = d
				hub = vs
			}
			i++
			j++
		} else if vs < vt {
			i++
		} else {
			j++
		}
	}
	if hub < 0 {
		return nil, UnreachableW, nil
	}
	up, err := ix.chainToHub(rs, hub)
	if err != nil {
		return nil, 0, err
	}
	down, err := ix.chainToHub(rt, hub)
	if err != nil {
		return nil, 0, err
	}
	path := make([]int32, 0, len(up)+len(down)-1)
	for _, r := range up {
		path = append(path, ix.perm[r])
	}
	for k := len(down) - 2; k >= 0; k-- {
		path = append(path, ix.perm[down[k]])
	}
	return path, best, nil
}

// chainToHub follows Dijkstra-tree parent pointers from rank r to hub.
func (ix *WeightedIndex) chainToHub(r, hub int32) ([]int32, error) {
	chain := []int32{r}
	cur := r
	for cur != hub {
		lo, hi := ix.labelOff[cur], ix.labelOff[cur+1]-1
		idx := searchLabel(ix.labelVertex[lo:hi], hub)
		if idx < 0 {
			return nil, fmt.Errorf("core: broken weighted parent chain at rank %d for hub %d", cur, hub)
		}
		p := ix.labelParent[lo+int64(idx)]
		if p < 0 {
			break
		}
		chain = append(chain, p)
		cur = p
	}
	return chain, nil
}

// NumVertices returns the number of vertices the index covers.
func (ix *WeightedIndex) NumVertices() int { return ix.n }

// Query returns the exact weighted s-t distance, or UnreachableW.
func (ix *WeightedIndex) Query(s, t int32) uint64 {
	if s == t {
		return 0
	}
	rs, rt := ix.rank[s], ix.rank[t]
	best := UnreachableW
	i, j := ix.labelOff[rs], ix.labelOff[rt]
	for {
		vs, vt := ix.labelVertex[i], ix.labelVertex[j]
		switch {
		case vs == vt:
			if int(vs) == ix.n {
				if best >= uint64(InfWeight32)*2 {
					return UnreachableW
				}
				return best
			}
			if d := uint64(ix.labelDist[i]) + uint64(ix.labelDist[j]); d < best {
				best = d
			}
			i++
			j++
		case vs < vt:
			i++
		default:
			j++
		}
	}
}

// LabelSize returns the number of entries in v's label (sentinel
// excluded).
func (ix *WeightedIndex) LabelSize(v int32) int {
	r := ix.rank[v]
	return int(ix.labelOff[r+1] - ix.labelOff[r] - 1)
}

// AvgLabelSize returns the mean label size over all vertices.
func (ix *WeightedIndex) AvgLabelSize() float64 {
	if ix.n == 0 {
		return 0
	}
	return float64(ix.labelOff[ix.n]-int64(ix.n)) / float64(ix.n)
}

// ComputeStats scans the weighted index and returns summary statistics.
func (ix *WeightedIndex) ComputeStats() Stats {
	st := Stats{
		Variant:           VariantWeighted,
		NumVertices:       ix.n,
		HasParentPointers: ix.labelParent != nil,
	}
	sizes := make([]int, ix.n)
	for r := 0; r < ix.n; r++ {
		sz := int(ix.labelOff[r+1] - ix.labelOff[r] - 1)
		sizes[r] = sz
		st.TotalLabelEntries += int64(sz)
		if sz > st.MaxLabelSize {
			st.MaxLabelSize = sz
		}
	}
	if ix.n > 0 {
		st.AvgLabelSize = float64(st.TotalLabelEntries) / float64(ix.n)
	}
	insertionSortQuantiles(sizes, &st.LabelSizeQuantiles)
	st.NormalLabelBytes = int64(len(ix.labelVertex))*4 + int64(len(ix.labelDist))*4
	if ix.labelParent != nil {
		st.NormalLabelBytes += int64(len(ix.labelParent)) * 4
	}
	st.IndexBytes = st.NormalLabelBytes + int64(len(ix.labelOff))*8 + int64(len(ix.perm))*8
	return st
}

// wItem and wHeap form a lazy-deletion binary min-heap for the pruned
// Dijkstra searches.
type wItem struct {
	dist uint64
	v    int32
}

type wHeap []wItem

func (h *wHeap) push(it wItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].dist <= (*h)[i].dist {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *wHeap) pop() wItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h)[l].dist < (*h)[small].dist {
			small = l
		}
		if r < last && (*h)[r].dist < (*h)[small].dist {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// randPairs is a shared test/experiment helper that samples k vertex
// pairs uniformly with a deterministic seed.
func randPairs(n int, k int, seed uint64) [][2]int32 {
	r := rng.New(seed)
	pairs := make([][2]int32, k)
	for i := range pairs {
		pairs[i] = [2]int32{r.Int31n(int32(n)), r.Int31n(int32(n))}
	}
	return pairs
}
