package core

import (
	"fmt"
	"math"
	"sync"

	"pll/internal/graph"
	"pll/internal/order"
	"pll/internal/rng"
)

// InfWeight32 is the in-label encoding of "unreachable" for weighted
// indexes, which use 32-bit distances instead of the 8-bit distances of
// the unweighted index.
const InfWeight32 uint32 = math.MaxUint32

// UnreachableW is returned by WeightedIndex.Query for disconnected pairs.
const UnreachableW = uint64(math.MaxUint64)

// WeightedIndex is the §6 "Weighted Graphs" variant: identical labeling
// framework, but labels are produced by pruned Dijkstra searches and
// store 32-bit distances. Bit-parallel labeling does not apply (§6).
type WeightedIndex struct {
	n    int
	perm []int32
	rank []int32

	labelOff    []int64
	labelVertex []int32 // hub ranks, ascending, sentinel n
	labelDist   []uint32
	labelParent []int32 // optional Dijkstra-tree parents (ranks); nil unless StorePaths

	batchPool sync.Pool   // recycles *rankScratch32 for DistanceFrom
	search    searchState // lazily built hub-inverted index (search.go)
}

// WeightedOptions configures BuildWeighted.
type WeightedOptions struct {
	// Ordering selects the vertex order; Degree (on the unweighted
	// structure) is the default, as in the unweighted case.
	Ordering order.Strategy
	// Seed drives ordering tie-breaks.
	Seed uint64
	// CustomOrder, if non-nil, overrides Ordering.
	CustomOrder []int32
	// StorePaths records a parent pointer per label entry so QueryPath
	// can reconstruct minimum-weight paths (§6).
	StorePaths bool
	// Workers parallelizes the pruned Dijkstra labeling (see
	// Options.Workers); the index is byte-identical regardless of the
	// worker count. 0 selects GOMAXPROCS.
	Workers int
}

// infWeight is the scratch encoding of "not reached" during pruned
// Dijkstra searches (label entries themselves stay within 32 bits).
const infWeight = uint64(math.MaxUint64)

// BuildWeighted constructs a pruned-landmark-labeling index for a
// weighted undirected graph by pruned Dijkstra searches. Distances along
// any shortest path must fit in 32 bits.
func BuildWeighted(g *graph.Weighted, opt WeightedOptions) (*WeightedIndex, error) {
	n := g.NumVertices()
	perm := opt.CustomOrder
	if perm == nil {
		perm = order.Compute(g.Unweighted(), opt.Ordering, opt.Seed)
	} else if len(perm) != n {
		return nil, fmt.Errorf("core: CustomOrder length %d != n %d", len(perm), n)
	}
	h, err := g.Relabel(perm)
	if err != nil {
		return nil, fmt.Errorf("core: invalid CustomOrder: %w", err)
	}

	wb := newWgtBuilder(h, opt.StorePaths)
	if workers := EffectiveWorkers(opt.Workers); workers > 1 {
		err = wb.runParallel(workers)
	} else {
		err = wb.runSequential()
	}
	if err != nil {
		return nil, err
	}

	ix := &WeightedIndex{
		n:    n,
		perm: append([]int32(nil), perm...),
		rank: order.RankOf(perm),
	}
	labV, labD, labP := wb.labV, wb.labD, wb.labP
	total := int64(0)
	for v := 0; v < n; v++ {
		total += int64(len(labV[v])) + 1
	}
	ix.labelOff = make([]int64, n+1)
	ix.labelVertex = make([]int32, total)
	ix.labelDist = make([]uint32, total)
	if opt.StorePaths {
		ix.labelParent = make([]int32, total)
	}
	w := int64(0)
	for v := 0; v < n; v++ {
		ix.labelOff[v] = w
		copy(ix.labelVertex[w:], labV[v])
		copy(ix.labelDist[w:], labD[v])
		if opt.StorePaths {
			copy(ix.labelParent[w:], labP[v])
		}
		w += int64(len(labV[v]))
		ix.labelVertex[w] = int32(n)
		ix.labelDist[w] = InfWeight32
		if opt.StorePaths {
			ix.labelParent[w] = -1
		}
		w++
	}
	ix.labelOff[n] = w
	return ix, nil
}

// wgtBuilder holds the growing labels and the sequential-search scratch
// of one weighted construction run.
type wgtBuilder struct {
	h *graph.Weighted // rank-relabeled graph
	n int

	labV [][]int32
	labD [][]uint32
	labP [][]int32 // parents; nil unless storing paths

	storePaths bool
	sc         wgtScratch

	// Per-vertex marks for path-storing batch replays (parallel_weighted.go).
	candD      []uint32
	candPruned []bool
}

// wgtScratch is the per-search scratch of one pruned Dijkstra.
type wgtScratch struct {
	dist    []uint64
	par     []int32 // nil unless storing paths
	rootLab []uint64
	visited []int32
	heap    wHeap
}

func newWgtScratch(n int, storePaths bool) *wgtScratch {
	sc := &wgtScratch{
		dist:    make([]uint64, n),
		rootLab: make([]uint64, n+1),
		visited: make([]int32, 0, 1024),
	}
	if storePaths {
		sc.par = make([]int32, n)
	}
	for i := range sc.dist {
		sc.dist[i] = infWeight
	}
	for i := range sc.rootLab {
		sc.rootLab[i] = infWeight
	}
	return sc
}

func (sc *wgtScratch) reset(rootLabelVertices []int32) {
	for _, v := range sc.visited {
		sc.dist[v] = infWeight
	}
	for _, w := range rootLabelVertices {
		sc.rootLab[w] = infWeight
	}
	sc.visited = sc.visited[:0]
	sc.heap = sc.heap[:0]
}

func newWgtBuilder(h *graph.Weighted, storePaths bool) *wgtBuilder {
	n := h.NumVertices()
	wb := &wgtBuilder{
		h: h, n: n,
		labV:       make([][]int32, n),
		labD:       make([][]uint32, n),
		storePaths: storePaths,
		sc:         *newWgtScratch(n, storePaths),
	}
	if storePaths {
		wb.labP = make([][]int32, n)
	}
	return wb
}

func (wb *wgtBuilder) runSequential() error {
	for vk := int32(0); int(vk) < wb.n; vk++ {
		if err := wb.prunedDijkstra(vk); err != nil {
			return err
		}
	}
	return nil
}

// prunedDijkstra runs one pruned Dijkstra from vk, appending labels.
func (wb *wgtBuilder) prunedDijkstra(vk int32) error {
	sc := &wb.sc
	lv, ld := wb.labV[vk], wb.labD[vk]
	for i, w := range lv {
		sc.rootLab[w] = uint64(ld[i])
	}
	sc.visited = sc.visited[:0]
	sc.heap = sc.heap[:0]
	sc.dist[vk] = 0
	if sc.par != nil {
		sc.par[vk] = -1
	}
	sc.visited = append(sc.visited, vk)
	sc.heap.push(wItem{0, vk})
	for len(sc.heap) > 0 {
		it := sc.heap.pop()
		u, d := it.v, it.dist
		if d != sc.dist[u] {
			continue // stale entry
		}
		// Prune test: scan L(u) against the root-label array.
		pruned := false
		uv, ud := wb.labV[u], wb.labD[u]
		for i, w := range uv {
			if tw := sc.rootLab[w]; tw != infWeight && tw+uint64(ud[i]) <= d {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		if d > uint64(InfWeight32)-1 {
			sc.reset(lv)
			return fmt.Errorf("core: weighted distance %d exceeds 32-bit label budget", d)
		}
		wb.labV[u] = append(wb.labV[u], vk)
		wb.labD[u] = append(wb.labD[u], uint32(d))
		if wb.labP != nil {
			wb.labP[u] = append(wb.labP[u], sc.par[u])
		}
		ws := wb.h.Weights(u)
		for i, w := range wb.h.Neighbors(u) {
			nd := d + uint64(ws[i])
			if nd < sc.dist[w] {
				if sc.dist[w] == infWeight {
					sc.visited = append(sc.visited, w)
				}
				sc.dist[w] = nd
				if sc.par != nil {
					sc.par[w] = u
				}
				sc.heap.push(wItem{nd, w})
			}
		}
	}
	sc.reset(lv)
	return nil
}

// HasPaths reports whether the index can answer QueryPath.
func (ix *WeightedIndex) HasPaths() bool { return ix.labelParent != nil }

// QueryPath returns one minimum-weight s-t path (inclusive of both
// endpoints) and its total weight, or (nil, UnreachableW) for
// disconnected pairs. The index must have been built with StorePaths.
func (ix *WeightedIndex) QueryPath(s, t int32) ([]int32, uint64, error) {
	if ix.labelParent == nil {
		return nil, 0, fmt.Errorf("core: weighted index was built without StorePaths")
	}
	if s == t {
		return []int32{s}, 0, nil
	}
	rs, rt := ix.rank[s], ix.rank[t]
	best := UnreachableW
	hub := int32(-1)
	i, j := ix.labelOff[rs], ix.labelOff[rt]
	for {
		vs, vt := ix.labelVertex[i], ix.labelVertex[j]
		if vs == vt {
			if int(vs) == ix.n {
				break
			}
			if d := uint64(ix.labelDist[i]) + uint64(ix.labelDist[j]); d < best {
				best = d
				hub = vs
			}
			i++
			j++
		} else if vs < vt {
			i++
		} else {
			j++
		}
	}
	if hub < 0 {
		return nil, UnreachableW, nil
	}
	up, err := ix.chainToHub(rs, hub)
	if err != nil {
		return nil, 0, err
	}
	down, err := ix.chainToHub(rt, hub)
	if err != nil {
		return nil, 0, err
	}
	path := make([]int32, 0, len(up)+len(down)-1)
	for _, r := range up {
		path = append(path, ix.perm[r])
	}
	for k := len(down) - 2; k >= 0; k-- {
		path = append(path, ix.perm[down[k]])
	}
	return path, best, nil
}

// chainToHub follows Dijkstra-tree parent pointers from rank r to hub.
func (ix *WeightedIndex) chainToHub(r, hub int32) ([]int32, error) {
	chain := []int32{r}
	cur := r
	for cur != hub {
		lo, hi := ix.labelOff[cur], ix.labelOff[cur+1]-1
		idx := searchLabel(ix.labelVertex[lo:hi], hub)
		if idx < 0 {
			return nil, fmt.Errorf("core: broken weighted parent chain at rank %d for hub %d", cur, hub)
		}
		p := ix.labelParent[lo+int64(idx)]
		if p < 0 {
			break
		}
		chain = append(chain, p)
		cur = p
	}
	return chain, nil
}

// NumVertices returns the number of vertices the index covers.
func (ix *WeightedIndex) NumVertices() int { return ix.n }

// Query returns the exact weighted s-t distance, or UnreachableW.
func (ix *WeightedIndex) Query(s, t int32) uint64 {
	if s == t {
		return 0
	}
	rs, rt := ix.rank[s], ix.rank[t]
	best := UnreachableW
	i, j := ix.labelOff[rs], ix.labelOff[rt]
	for {
		vs, vt := ix.labelVertex[i], ix.labelVertex[j]
		switch {
		case vs == vt:
			if int(vs) == ix.n {
				if best >= uint64(InfWeight32)*2 {
					return UnreachableW
				}
				return best
			}
			if d := uint64(ix.labelDist[i]) + uint64(ix.labelDist[j]); d < best {
				best = d
			}
			i++
			j++
		case vs < vt:
			i++
		default:
			j++
		}
	}
}

// LabelSize returns the number of entries in v's label (sentinel
// excluded).
func (ix *WeightedIndex) LabelSize(v int32) int {
	r := ix.rank[v]
	return int(ix.labelOff[r+1] - ix.labelOff[r] - 1)
}

// AvgLabelSize returns the mean label size over all vertices.
func (ix *WeightedIndex) AvgLabelSize() float64 {
	if ix.n == 0 {
		return 0
	}
	return float64(ix.labelOff[ix.n]-int64(ix.n)) / float64(ix.n)
}

// ComputeStats scans the weighted index and returns summary statistics.
func (ix *WeightedIndex) ComputeStats() Stats {
	st := Stats{
		Variant:           VariantWeighted,
		NumVertices:       ix.n,
		HasParentPointers: ix.labelParent != nil,
	}
	sizes := make([]int, ix.n)
	for r := 0; r < ix.n; r++ {
		sz := int(ix.labelOff[r+1] - ix.labelOff[r] - 1)
		sizes[r] = sz
		st.TotalLabelEntries += int64(sz)
		if sz > st.MaxLabelSize {
			st.MaxLabelSize = sz
		}
	}
	if ix.n > 0 {
		st.AvgLabelSize = float64(st.TotalLabelEntries) / float64(ix.n)
	}
	insertionSortQuantiles(sizes, &st.LabelSizeQuantiles)
	applyHubStats(&st, ix.n, ix.labelVertex)
	st.NormalLabelBytes = int64(len(ix.labelVertex))*4 + int64(len(ix.labelDist))*4
	if ix.labelParent != nil {
		st.NormalLabelBytes += int64(len(ix.labelParent)) * 4
	}
	st.IndexBytes = st.NormalLabelBytes + int64(len(ix.labelOff))*8 + int64(len(ix.perm))*8
	return st
}

// wItem and wHeap form a lazy-deletion binary min-heap for the pruned
// Dijkstra searches.
type wItem struct {
	dist uint64
	v    int32
}

type wHeap []wItem

func (h *wHeap) push(it wItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].dist <= (*h)[i].dist {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *wHeap) pop() wItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h)[l].dist < (*h)[small].dist {
			small = l
		}
		if r < last && (*h)[r].dist < (*h)[small].dist {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// randPairs is a shared test/experiment helper that samples k vertex
// pairs uniformly with a deterministic seed.
func randPairs(n int, k int, seed uint64) [][2]int32 {
	r := rng.New(seed)
	pairs := make([][2]int32, k)
	for i := range pairs {
		pairs[i] = [2]int32{r.Int31n(int32(n)), r.Int31n(int32(n))}
	}
	return pairs
}
