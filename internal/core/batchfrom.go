package core

// Single-source batch distance engines: DistanceFrom(s, targets, dst)
// answers |targets| queries sharing the source s with the source-side
// label expanded into a rank-indexed array once (the §4.5 "Querying"
// technique the paper uses during construction), so each target costs
// one scan of its own label instead of a full merge join — the §4
// merge-join amortization for the paper's one-to-many workloads
// (socially-sensitive search, context-aware ranking).
//
// Every variant implements the same contract:
//
//   - dst is reused when its capacity suffices, and the returned slice
//     has len(targets), dst[i] = d(s, targets[i]).
//   - Distances follow the Oracle convention: int64, Unreachable (-1)
//     for disconnected pairs.
//   - Out-of-range vertices panic, mirroring Query; validate first.
//
// Scratch arrays (O(n) each) are recycled through per-index sync.Pools,
// so concurrent batches on immutable variants are safe and allocation-
// free in steady state.

import "sync"

// ensureI64 returns dst resized to n entries, reusing its capacity.
func ensureI64(dst []int64, n int) []int64 {
	if cap(dst) < n {
		return make([]int64, n)
	}
	return dst[:n]
}

// DistanceFrom answers a single-source batch: dst[i] = d(s, targets[i])
// with the Oracle convention (-1 unreachable). The source's normal and
// bit-parallel labels are pinned once; each target then costs one label
// scan. Safe for concurrent use.
func (ix *Index) DistanceFrom(s int32, targets []int32, dst []int64) []int64 {
	dst = ensureI64(dst, len(targets))
	if len(targets) == 0 {
		return dst
	}
	bs, _ := ix.batchPool.Get().(*BatchSource)
	if bs == nil {
		bs = ix.NewBatchSource(s)
	} else {
		bs.Reset(s)
	}
	for i, t := range targets {
		dst[i] = int64(bs.Query(t))
	}
	ix.batchPool.Put(bs)
	return dst
}

// rankScratch8 is the pooled T array of one 8-bit-distance batch:
// t[w] = distance from the source to hub rank w, InfDist if absent.
type rankScratch8 struct {
	t      []uint8
	loaded []int32
}

func getScratch8(pool *sync.Pool, n int) *rankScratch8 {
	sc, _ := pool.Get().(*rankScratch8)
	if sc == nil {
		sc = &rankScratch8{t: make([]uint8, n+1)}
		for i := range sc.t {
			sc.t[i] = InfDist
		}
	}
	return sc
}

func (sc *rankScratch8) release(pool *sync.Pool) {
	for _, w := range sc.loaded {
		sc.t[w] = InfDist
	}
	sc.loaded = sc.loaded[:0]
	pool.Put(sc)
}

// DistanceFrom answers a single-source directed batch:
// dst[i] = d(s, targets[i]) (directed, -1 unreachable). L_OUT(s) is
// expanded once; each target costs one scan of L_IN(target). Safe for
// concurrent use.
func (ix *DirectedIndex) DistanceFrom(s int32, targets []int32, dst []int64) []int64 {
	dst = ensureI64(dst, len(targets))
	if len(targets) == 0 {
		return dst
	}
	rs := ix.rank[s]
	sc := getScratch8(&ix.batchPool, ix.n)
	lo, hi := ix.outOff[rs], ix.outOff[rs+1]-1
	for i := lo; i < hi; i++ {
		w := ix.outVertex[i]
		sc.t[w] = ix.outDist[i]
		sc.loaded = append(sc.loaded, w)
	}
	for k, tv := range targets {
		if tv == s {
			dst[k] = 0
			continue
		}
		rt := ix.rank[tv]
		best := infQuery
		jlo, jhi := ix.inOff[rt], ix.inOff[rt+1]-1
		for j := jlo; j < jhi; j++ {
			if tw := sc.t[ix.inVertex[j]]; tw != InfDist {
				if d := int(tw) + int(ix.inDist[j]); d < best {
					best = d
				}
			}
		}
		if best >= infQuery {
			dst[k] = Unreachable
		} else {
			dst[k] = int64(best)
		}
	}
	sc.release(&ix.batchPool)
	return dst
}

// rankScratch32 is the 32-bit-distance T array of one weighted batch.
type rankScratch32 struct {
	t      []uint32
	loaded []int32
}

// DistanceFrom answers a single-source weighted batch:
// dst[i] = d(s, targets[i]) as summed edge weights, -1 unreachable.
// Safe for concurrent use.
func (ix *WeightedIndex) DistanceFrom(s int32, targets []int32, dst []int64) []int64 {
	dst = ensureI64(dst, len(targets))
	if len(targets) == 0 {
		return dst
	}
	rs := ix.rank[s]
	sc, _ := ix.batchPool.Get().(*rankScratch32)
	if sc == nil {
		sc = &rankScratch32{t: make([]uint32, ix.n+1)}
		for i := range sc.t {
			sc.t[i] = InfWeight32
		}
	}
	lo, hi := ix.labelOff[rs], ix.labelOff[rs+1]-1
	for i := lo; i < hi; i++ {
		w := ix.labelVertex[i]
		sc.t[w] = ix.labelDist[i]
		sc.loaded = append(sc.loaded, w)
	}
	for k, tv := range targets {
		if tv == s {
			dst[k] = 0
			continue
		}
		rt := ix.rank[tv]
		best := UnreachableW
		jlo, jhi := ix.labelOff[rt], ix.labelOff[rt+1]-1
		for j := jlo; j < jhi; j++ {
			if tw := sc.t[ix.labelVertex[j]]; tw != InfWeight32 {
				if d := uint64(tw) + uint64(ix.labelDist[j]); d < best {
					best = d
				}
			}
		}
		if best == UnreachableW {
			dst[k] = Unreachable
		} else {
			dst[k] = int64(best)
		}
	}
	for _, w := range sc.loaded {
		sc.t[w] = InfWeight32
	}
	sc.loaded = sc.loaded[:0]
	ix.batchPool.Put(sc)
	return dst
}

// DistanceFrom answers a single-source batch over the current labels
// (-1 unreachable). Like every DynamicIndex read it may run under a
// ConcurrentOracle read lock concurrently with other reads, so the
// scratch is pooled rather than owned.
func (di *DynamicIndex) DistanceFrom(s int32, targets []int32, dst []int64) []int64 {
	dst = ensureI64(dst, len(targets))
	if len(targets) == 0 {
		return dst
	}
	rs := di.rank[s]
	sc := getScratch8(&di.batchPool, di.n)
	sv, sd := di.labV[rs], di.labD[rs]
	for i, w := range sv {
		sc.t[w] = sd[i]
		sc.loaded = append(sc.loaded, w)
	}
	for k, tv := range targets {
		if tv == s {
			dst[k] = 0
			continue
		}
		rt := di.rank[tv]
		best := infQuery
		bv, bd := di.labV[rt], di.labD[rt]
		for j, w := range bv {
			if tw := sc.t[w]; tw != InfDist {
				if d := int(tw) + int(bd[j]); d < best {
					best = d
				}
			}
		}
		if best >= infQuery {
			dst[k] = Unreachable
		} else {
			dst[k] = int64(best)
		}
	}
	sc.release(&di.batchPool)
	return dst
}
