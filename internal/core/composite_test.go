package core

import (
	"math/rand"
	"reflect"
	"testing"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/order"
)

// naiveComposite answers a normalized composite request by scanning
// every vertex against ground-truth distance rows — the reference the
// per-variant engines must match exactly.
func naiveComposite(n int, rows [][]int64, req *CompositeRequest) *CompositeResult {
	var ms []CompositeMatch
	for v := int32(0); int(v) < n; v++ {
		if !naiveClause(rows, req.Where, v) {
			continue
		}
		m := CompositeMatch{Vertex: v}
		if len(req.Rank.Terms) > 0 {
			m.Terms = make([]int64, len(req.Rank.Terms))
		}
		for i, t := range req.Rank.Terms {
			d := rows[t.Source][v]
			m.Terms[i] = d
			if d < 0 {
				m.Score = -1
			} else if m.Score >= 0 {
				if w := t.Weight * d; req.Rank.By == "max" {
					if w > m.Score {
						m.Score = w
					}
				} else {
					m.Score += w
				}
			}
		}
		ms = append(ms, m)
	}
	sortCompositeMatches(ms)
	out := &CompositeResult{Total: len(ms), Exact: true}
	if req.K > 0 && len(ms) > req.K {
		ms = ms[:req.K]
	}
	out.Matches = ms
	return out
}

func sortCompositeMatches(ms []CompositeMatch) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && compositeLess(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func compositeLess(a, b CompositeMatch) bool {
	if (a.Score < 0) != (b.Score < 0) {
		return b.Score < 0
	}
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Vertex < b.Vertex
}

func naiveClause(rows [][]int64, c *CompositeClause, v int32) bool {
	switch {
	case c.Near != nil:
		d := rows[c.Near.Source][v]
		return d >= 0 && d <= c.Near.MaxDist
	case c.In != nil:
		for _, m := range c.In {
			if m == v {
				return true
			}
		}
		return false
	case c.Not != nil:
		return !naiveClause(rows, c.Not, v)
	case c.And != nil:
		for _, k := range c.And {
			if !naiveClause(rows, k, v) {
				return false
			}
		}
		return true
	default:
		for _, k := range c.Or {
			if naiveClause(rows, k, v) {
				return true
			}
		}
		return false
	}
}

// randomClause builds a valid random clause tree in ID space.
func randomClause(rng *rand.Rand, n, depth int, maxDist int64) *CompositeClause {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(4) == 0 {
			count := 1 + rng.Intn(4)
			members := make([]int32, 0, count)
			for i := 0; i < count; i++ {
				members = append(members, int32(rng.Intn(n))) // dups allowed: Normalize dedups
			}
			return &CompositeClause{In: members}
		}
		return &CompositeClause{Near: &NearClause{
			Source:  int32(rng.Intn(n)),
			MaxDist: int64(rng.Intn(int(maxDist) + 1)),
		}}
	}
	switch rng.Intn(3) {
	case 0:
		kids := []*CompositeClause{randomClause(rng, n, depth-1, maxDist)}
		for extra := rng.Intn(3); extra > 0; extra-- {
			if rng.Intn(3) == 0 {
				kids = append(kids, &CompositeClause{Not: randomClause(rng, n, depth-1, maxDist)})
			} else {
				kids = append(kids, randomClause(rng, n, depth-1, maxDist))
			}
		}
		return &CompositeClause{And: kids}
	case 1:
		kids := []*CompositeClause{randomClause(rng, n, depth-1, maxDist)}
		for extra := rng.Intn(3); extra > 0; extra-- {
			kids = append(kids, randomClause(rng, n, depth-1, maxDist))
		}
		return &CompositeClause{Or: kids}
	default:
		return randomClause(rng, n, depth-1, maxDist)
	}
}

func randomCompositeRequest(rng *rand.Rand, n int, maxDist int64) *CompositeRequest {
	req := &CompositeRequest{Where: randomClause(rng, n, 3, maxDist), K: rng.Intn(8)}
	switch rng.Intn(3) {
	case 0: // default ranking (near sources, weight 1, sum)
	case 1:
		req.Rank = &CompositeRank{By: "max"}
	default:
		rank := &CompositeRank{Terms: []CompositeTerm{}}
		if rng.Intn(2) == 0 {
			rank.By = "max"
		}
		seen := map[int32]bool{}
		for i := rng.Intn(4); i >= 0; i-- {
			s := int32(rng.Intn(n))
			if !seen[s] {
				seen[s] = true
				rank.Terms = append(rank.Terms, CompositeTerm{Source: s, Weight: int64(rng.Intn(4))})
			}
		}
		if len(rank.Terms) == 0 {
			rank.Terms = append(rank.Terms, CompositeTerm{Source: int32(rng.Intn(n)), Weight: 1})
		}
		req.Rank = rank
	}
	return req
}

type compositeOracle interface {
	Composite(req *CompositeRequest) (*CompositeResult, error)
}

// checkComposite runs random requests through the variant under test
// and asserts exact agreement with the full-scan reference.
func checkComposite(t *testing.T, name string, n int, o compositeOracle, rows [][]int64, maxDist int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		req := randomCompositeRequest(rng, n, maxDist)
		if err := req.Validate(); err != nil {
			t.Fatalf("%s trial %d: generator produced invalid request: %v", name, trial, err)
		}
		req.Normalize()
		got, err := o.Composite(req)
		if err != nil {
			t.Fatalf("%s trial %d: Composite: %v", name, trial, err)
		}
		want := naiveComposite(n, rows, req)
		if !reflect.DeepEqual(got.Matches, want.Matches) {
			t.Fatalf("%s trial %d: matches diverge\nrequest: %+v\ngot:  %+v\nwant: %+v",
				name, trial, req, got.Matches, want.Matches)
		}
		if got.Exact && got.Total != want.Total {
			t.Fatalf("%s trial %d: exact Total = %d, want %d", name, trial, got.Total, want.Total)
		}
		if !got.Exact && (got.Total > want.Total || got.Total < len(got.Matches)) {
			t.Fatalf("%s trial %d: lower-bound Total %d inconsistent (true %d, kept %d)",
				name, trial, got.Total, want.Total, len(got.Matches))
		}
	}
}

func bfsRows(n int, row func(s int32) []int64) [][]int64 {
	rows := make([][]int64, n)
	for s := 0; s < n; s++ {
		rows[s] = row(int32(s))
	}
	return rows
}

func TestCompositeUndirected(t *testing.T) {
	for _, bp := range []int{0, 4, 8} {
		g := gen.ErdosRenyi(50, 100, 5)
		ix, err := Build(g, Options{Ordering: order.Degree, Seed: 5, NumBitParallel: bp})
		if err != nil {
			t.Fatal(err)
		}
		rows := bfsRows(50, func(s int32) []int64 {
			row := bfs.AllDistances(g, s)
			out := make([]int64, len(row))
			for i, d := range row {
				out[i] = int64(d)
			}
			return out
		})
		checkComposite(t, map[int]string{0: "bp0", 4: "bp4", 8: "bp8"}[bp], 50, ix, rows, 8)
	}
}

// TestCompositeDisconnected covers components and isolated vertices:
// cross-component constraints must intersect to nothing, and ranking
// terms across components must produce -1 scores that sort last.
func TestCompositeDisconnected(t *testing.T) {
	g := gen.ErdosRenyi(40, 30, 9) // sparse: very likely disconnected
	ix, err := Build(g, Options{Ordering: order.Degree, Seed: 9, NumBitParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := bfsRows(40, func(s int32) []int64 {
		row := bfs.AllDistances(g, s)
		out := make([]int64, len(row))
		for i, d := range row {
			out[i] = int64(d)
		}
		return out
	})
	checkComposite(t, "disconnected", 40, ix, rows, 12)
}

func TestCompositeDirected(t *testing.T) {
	n := 45
	dg := gen.RandomDigraph(n, 130, 13)
	ix, err := BuildDirected(dg, DirectedOptions{Ordering: order.Degree, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rows := bfsRows(n, func(s int32) []int64 {
		row := bfs.DirectedAllDistances(dg, s, true)
		out := make([]int64, len(row))
		for i, d := range row {
			out[i] = int64(d)
		}
		return out
	})
	checkComposite(t, "directed", n, ix, rows, 8)
}

func TestCompositeWeighted(t *testing.T) {
	n := 40
	gg := gen.ErdosRenyi(n, 90, 17)
	wg := gen.RandomWeights(gg, 1, 9, 18)
	ix, err := BuildWeighted(wg, WeightedOptions{Ordering: order.Degree, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	rows := bfsRows(n, func(s int32) []int64 {
		row := bfs.DijkstraAll(wg, s)
		out := make([]int64, len(row))
		for i, d := range row {
			if d == bfs.InfWeight {
				out[i] = -1
			} else {
				out[i] = int64(d)
			}
		}
		return out
	})
	checkComposite(t, "weighted", n, ix, rows, 30)
}

// TestCompositeRequestErrors pins the error surface: structural
// problems and out-of-range vertices are errors, never panics.
func TestCompositeRequestErrors(t *testing.T) {
	g := gen.ErdosRenyi(10, 20, 3)
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	near := func(s int32, d int64) *CompositeClause {
		return &CompositeClause{Near: &NearClause{Source: s, MaxDist: d}}
	}
	bad := []*CompositeRequest{
		{},                              // no where
		{Where: &CompositeClause{}},     // empty clause
		{Where: near(0, 1), K: -1},      // negative k
		{Where: near(0, -1)},            // negative cutoff
		{Where: near(12, 1)},            // source out of range
		{Where: &CompositeClause{In: []int32{}}},                   // empty in
		{Where: &CompositeClause{In: []int32{-3}}},                 // member out of range
		{Where: &CompositeClause{Not: near(0, 1)}},                 // top-level not
		{Where: &CompositeClause{Or: []*CompositeClause{{Not: near(0, 1)}, near(1, 1)}}},  // not under or
		{Where: &CompositeClause{And: []*CompositeClause{{Not: near(0, 1)}}}},             // no positive child
		{Where: &CompositeClause{Near: &NearClause{Source: 0}, In: []int32{1}}},           // two fields
		{Where: near(0, 1), Rank: &CompositeRank{By: "median"}},                           // unknown agg
		{Where: near(0, 1), Rank: &CompositeRank{Terms: []CompositeTerm{{Source: 44}}}},   // term out of range
		{Where: near(0, 1), Rank: &CompositeRank{Terms: []CompositeTerm{{Source: 1, Weight: -2}}}}, // negative weight
		{Where: near(0, 1), Rank: &CompositeRank{Terms: []CompositeTerm{{Source: 1}, {Source: 1}}}}, // dup term
	}
	for i, req := range bad {
		if _, err := ix.Composite(req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	// Depth cap.
	deep := near(0, 1)
	for i := 0; i < maxCompositeDepth+2; i++ {
		deep = &CompositeClause{And: []*CompositeClause{deep}}
	}
	if _, err := ix.Composite(&CompositeRequest{Where: deep}); err == nil {
		t.Error("over-deep clause tree accepted")
	}
	// And a well-formed request straight through Composite.
	res, err := ix.Composite(&CompositeRequest{
		Where: &CompositeClause{And: []*CompositeClause{
			near(0, 3),
			{Or: []*CompositeClause{near(1, 4), {In: []int32{2, 5, 5, 3}}}},
			{Not: near(2, 0)},
		}},
		K: 5,
	})
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if !res.Exact && res.Total < len(res.Matches) {
		t.Fatalf("inconsistent result: %+v", res)
	}
}
