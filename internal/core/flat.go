package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"

	"pll/internal/hubsearch"
)

// Container format version 2 ("flat"): the index laid out in its
// query-ready columnar form so a file can be memory-mapped (or read in
// one call) and served with zero per-entry decoding. Where version 1
// stores interleaved per-vertex label records that must be parsed into
// slices, version 2 stores the in-memory arrays themselves — offsets,
// hub ranks, distances, bit-parallel blocks, sentinels included — each
// 8-byte aligned so a mapped file doubles as the backing store of an
// *Index / *DirectedIndex / *WeightedIndex.
//
// Layout (little endian; offsets absolute from the file start):
//
//	container header  16 bytes   magic "PLLBOX", version=2, variant,
//	                             flags, bit-parallel width (container.go)
//	flat header       16 bytes   n uint64, nsec uint32, reserved uint32
//	section table     nsec * 24  id uint32, elemSize uint32,
//	                             off uint64, count uint64
//	sections          ...        raw arrays, zero-padded to 8-byte
//	                             alignment
//
// Every variant stores perm and rank (the rank array is redundant but
// storing it keeps startup free of per-entry work), then its label
// arrays exactly as held in memory. OpenFlat maps a file and aliases
// the sections; LoadAny reads a version-2 stream onto the heap with
// full per-entry validation, so both paths answer identically.
const (
	secPerm        uint32 = 1  // int32, n        rank -> vertex
	secRank        uint32 = 2  // int32, n        vertex -> rank
	secLabelOff    uint32 = 3  // int64, n+1      per-rank label offsets
	secLabelVertex uint32 = 4  // int32, L        hub ranks + sentinels
	secLabelDist8  uint32 = 5  // uint8, L        8-bit distances
	secLabelParent uint32 = 6  // int32, L        parent pointers (paths)
	secBPDist      uint32 = 7  // uint8, n*bp     bit-parallel distances
	secBPS1        uint32 = 8  // uint64, n*bp    S^{-1} masks
	secBPS0        uint32 = 9  // uint64, n*bp    S^{0} masks
	secOutOff      uint32 = 10 // int64, n+1      directed L_OUT offsets
	secOutVertex   uint32 = 11 // int32
	secOutDist     uint32 = 12 // uint8
	secInOff       uint32 = 13 // int64, n+1      directed L_IN offsets
	secInVertex    uint32 = 14 // int32
	secInDist      uint32 = 15 // uint8
	secLabelDist32 uint32 = 16 // uint32, L       weighted distances
	secInvOff      uint32 = 17 // int64, runs+1   hub-inverted search offsets
	secInvVertex   uint32 = 18 // int32, L        inverted entries: vertex ranks
	secInvDist     uint32 = 19 // uint32, L       inverted entries: distances
)

// ContainerVersionFlat is the flat (zero-copy) container format version.
const ContainerVersionFlat uint16 = 2

// ErrNotFlat is returned by OpenFlat for well-formed index files that
// are not flat (version-2) containers — version-1 containers and bare
// legacy payloads must be heap-loaded (LoadAny) or rewritten with
// WriteFlat ("pll convert").
var ErrNotFlat = errors.New("core: not a flat (version-2) container")

const (
	flatHeaderSize  = 16
	flatSectionSize = 24
	// flatMaxSections bounds the table a parser will consider; the
	// largest variant writes nine sections.
	flatMaxSections = 32
)

// flatSection is one entry of the section table.
//
// pllvet:untrusted — id/elem/off/count are decoded file bytes; parseFlat
// bounds-checks them against len(data) before any section is touched.
type flatSection struct {
	id    uint32
	elem  uint32
	off   uint64
	count uint64
}

// hostLittleEndian reports whether the running machine stores integers
// little endian, the precondition for aliasing file bytes as typed
// slices. On big-endian hosts every section falls back to a decoded
// copy, keeping Open functional (just not zero-copy).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func align8(off uint64) uint64 { return (off + 7) &^ 7 }

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

// flatInt is the element set of typed flat sections; byte sections are
// handled separately (no endianness, no alignment).
type flatInt interface {
	~int32 | ~uint32 | ~int64 | ~uint64
}

// flatWriter accumulates the section table for one flat container and
// then streams header, table and payloads in order.
type flatWriter struct {
	n        uint64
	sections []flatSection
	emit     []func(io.Writer) error
}

// addInts registers one integer section (element size inferred from T).
func addInts[T flatInt](fw *flatWriter, id uint32, xs []T) {
	var zero T
	fw.add(id, uint32(unsafe.Sizeof(zero)), uint64(len(xs)),
		func(w io.Writer) error { return writeInts(w, xs) })
}

func (fw *flatWriter) addU8(id uint32, xs []uint8) {
	fw.add(id, 1, uint64(len(xs)), func(w io.Writer) error {
		_, err := w.Write(xs)
		return err
	})
}

func (fw *flatWriter) add(id, elem uint32, count uint64, emit func(io.Writer) error) {
	fw.sections = append(fw.sections, flatSection{id: id, elem: elem, count: count})
	fw.emit = append(fw.emit, emit)
}

// writeTo lays the sections out (assigning aligned offsets) and writes
// the complete flat payload: flat header, section table, padded arrays.
func (fw *flatWriter) writeTo(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	off := uint64(containerHeaderSize + flatHeaderSize + flatSectionSize*len(fw.sections))
	off = align8(off)
	starts := make([]uint64, len(fw.sections))
	for i := range fw.sections {
		starts[i] = off
		fw.sections[i].off = off
		off = align8(off + fw.sections[i].count*uint64(fw.sections[i].elem))
	}

	var hdr [flatHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], fw.n)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(fw.sections)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var ent [flatSectionSize]byte
	for _, s := range fw.sections {
		binary.LittleEndian.PutUint32(ent[0:4], s.id)
		binary.LittleEndian.PutUint32(ent[4:8], s.elem)
		binary.LittleEndian.PutUint64(ent[8:16], s.off)
		binary.LittleEndian.PutUint64(ent[16:24], s.count)
		if _, err := bw.Write(ent[:]); err != nil {
			return err
		}
	}
	var pad [8]byte
	written := uint64(containerHeaderSize + flatHeaderSize + flatSectionSize*len(fw.sections))
	for i, s := range fw.sections {
		if starts[i] > written {
			if _, err := bw.Write(pad[:starts[i]-written]); err != nil {
				return err
			}
			written = starts[i]
		}
		if err := fw.emit[i](bw); err != nil {
			return err
		}
		written += s.count * uint64(s.elem)
	}
	return bw.Flush()
}

// writeInts streams xs little endian through a fixed chunk buffer.
func writeInts[T flatInt](w io.Writer, xs []T) error {
	var buf [4096]byte
	var zero T
	size := int(unsafe.Sizeof(zero))
	for len(xs) > 0 {
		k := min(len(xs), len(buf)/size)
		for i := 0; i < k; i++ {
			if size == 4 {
				binary.LittleEndian.PutUint32(buf[4*i:], uint32(xs[i]))
			} else {
				binary.LittleEndian.PutUint64(buf[8*i:], uint64(xs[i]))
			}
		}
		if _, err := w.Write(buf[:size*k]); err != nil {
			return err
		}
		xs = xs[k:]
	}
	return nil
}

// FlatOption configures WriteFlat.
type FlatOption func(*flatOptions)

type flatOptions struct{ search bool }

// FlatSearch makes WriteFlat persist the hub-inverted search index as
// additional aligned sections, so a memory-mapped container answers
// KNN/Range/NearestIn queries with zero build cost. The inverted index
// is built first if the index has not served a search query yet.
func FlatSearch() FlatOption {
	return func(o *flatOptions) { o.search = true }
}

func applyFlatOptions(opts []FlatOption) flatOptions {
	var o flatOptions
	for _, f := range opts {
		f(&o)
	}
	return o
}

// addSearchSections registers the inverted-index sections.
func (fw *flatWriter) addSearchSections(inv *hubsearch.Inverted) {
	addInts(fw, secInvOff, inv.Off)
	addInts(fw, secInvVertex, inv.Vertex)
	addInts(fw, secInvDist, inv.Dist)
}

// WriteFlat writes the index as a flat (version-2) container whose
// sections OpenFlat can serve zero-copy. Loading the result yields an
// index answering identically to this one. With FlatSearch, the
// hub-inverted search index rides along as optional sections.
func (ix *Index) WriteFlat(w io.Writer, opts ...FlatOption) (int64, error) {
	o := applyFlatOptions(opts)
	h := ContainerHeader{
		Version:     ContainerVersionFlat,
		Variant:     ix.Variant(),
		BitParallel: uint32(ix.numBP),
	}
	if ix.labelParent != nil {
		h.Flags |= ContainerFlagPaths
	}
	fw := &flatWriter{n: uint64(ix.n)}
	addInts(fw, secPerm, ix.perm)
	addInts(fw, secRank, ix.rank)
	addInts(fw, secLabelOff, ix.labelOff)
	addInts(fw, secLabelVertex, ix.labelVertex)
	fw.addU8(secLabelDist8, ix.labelDist)
	if ix.labelParent != nil {
		addInts(fw, secLabelParent, ix.labelParent)
	}
	if ix.numBP > 0 {
		fw.addU8(secBPDist, ix.bpDist)
		addInts(fw, secBPS1, ix.bpS1)
		addInts(fw, secBPS0, ix.bpS0)
	}
	if o.search {
		h.Flags |= ContainerFlagSearch
		fw.addSearchSections(ix.EnsureSearch())
	}
	return writeContainer(w, h, fw.writeTo)
}

// WriteFlat writes the directed index as a flat (version-2) container.
// Parent pointers (StorePaths) are not serialized, matching WriteTo.
// With FlatSearch, the inverted L_IN search index rides along.
func (ix *DirectedIndex) WriteFlat(w io.Writer, opts ...FlatOption) (int64, error) {
	if ix.outParent != nil {
		return 0, fmt.Errorf("core: directed format does not support parent pointers")
	}
	o := applyFlatOptions(opts)
	h := ContainerHeader{Version: ContainerVersionFlat, Variant: VariantDirected}
	fw := &flatWriter{n: uint64(ix.n)}
	addInts(fw, secPerm, ix.perm)
	addInts(fw, secRank, ix.rank)
	addInts(fw, secOutOff, ix.outOff)
	addInts(fw, secOutVertex, ix.outVertex)
	fw.addU8(secOutDist, ix.outDist)
	addInts(fw, secInOff, ix.inOff)
	addInts(fw, secInVertex, ix.inVertex)
	fw.addU8(secInDist, ix.inDist)
	if o.search {
		h.Flags |= ContainerFlagSearch
		fw.addSearchSections(ix.EnsureSearch())
	}
	return writeContainer(w, h, fw.writeTo)
}

// WriteFlat writes the weighted index as a flat (version-2) container.
// Parent pointers (StorePaths) are not serialized, matching WriteTo.
// With FlatSearch, the inverted search index rides along.
func (ix *WeightedIndex) WriteFlat(w io.Writer, opts ...FlatOption) (int64, error) {
	if ix.labelParent != nil {
		return 0, fmt.Errorf("core: weighted format does not support parent pointers")
	}
	o := applyFlatOptions(opts)
	h := ContainerHeader{Version: ContainerVersionFlat, Variant: VariantWeighted}
	fw := &flatWriter{n: uint64(ix.n)}
	addInts(fw, secPerm, ix.perm)
	addInts(fw, secRank, ix.rank)
	addInts(fw, secLabelOff, ix.labelOff)
	addInts(fw, secLabelVertex, ix.labelVertex)
	addInts(fw, secLabelDist32, ix.labelDist)
	if o.search {
		h.Flags |= ContainerFlagSearch
		fw.addSearchSections(ix.EnsureSearch())
	}
	return writeContainer(w, h, fw.writeTo)
}

// WriteFlat freezes the dynamic index and writes the snapshot as a flat
// container tagged VariantDynamic (loading yields a static *Index).
func (di *DynamicIndex) WriteFlat(w io.Writer, opts ...FlatOption) (int64, error) {
	return di.Freeze().WriteFlat(w, opts...)
}

// ---------------------------------------------------------------------
// Parsing (shared by the mmap and heap paths)
// ---------------------------------------------------------------------

// flatParser decodes one flat container from a complete file image.
// When alias is true, sections are reinterpreted in place (zero copy)
// wherever alignment and host endianness allow; otherwise they are
// copied out. When full is true, per-entry label validation runs so
// that a hostile stream can never produce an index whose queries read
// out of bounds — the heap loader (LoadAny) always validates fully,
// the mmap path (OpenFlat) trusts label contents and checks structure
// only.
//
// pllvet:sharedro — data may be a memory mapping shared read-only with
// every process serving the same file; slices derived from it (the
// section views) must never be written.
type flatParser struct {
	data     []byte
	h        ContainerHeader
	n        int
	alias    bool
	full     bool
	zeroCopy bool // stays true only if every typed section aliased
	secs     map[uint32]flatSection
}

func parseFlat(data []byte, h ContainerHeader, alias, full bool) (any, bool, error) {
	if len(data) < containerHeaderSize+flatHeaderSize {
		return nil, false, fmt.Errorf("%w: truncated flat header", ErrBadIndexFile)
	}
	n64 := binary.LittleEndian.Uint64(data[16:24])
	nsec := binary.LittleEndian.Uint32(data[24:28])
	if n64 > math.MaxInt32 {
		return nil, false, fmt.Errorf("%w: implausible n=%d", ErrBadIndexFile, n64)
	}
	if nsec > flatMaxSections {
		return nil, false, fmt.Errorf("%w: implausible section count %d", ErrBadIndexFile, nsec)
	}
	tableEnd := uint64(containerHeaderSize+flatHeaderSize) + uint64(nsec)*flatSectionSize
	if uint64(len(data)) < tableEnd {
		return nil, false, fmt.Errorf("%w: truncated flat section table", ErrBadIndexFile)
	}
	p := &flatParser{
		data:     data,
		h:        h,
		n:        int(n64),
		alias:    alias,
		full:     full,
		zeroCopy: alias,
		secs:     make(map[uint32]flatSection, nsec), //pllvet:ignore untrustedalloc nsec validated against flatMaxSections (32) above
	}
	for i := uint64(0); i < uint64(nsec); i++ {
		b := data[containerHeaderSize+flatHeaderSize+i*flatSectionSize:]
		s := flatSection{
			id:    binary.LittleEndian.Uint32(b[0:4]),
			elem:  binary.LittleEndian.Uint32(b[4:8]),
			off:   binary.LittleEndian.Uint64(b[8:16]),
			count: binary.LittleEndian.Uint64(b[16:24]),
		}
		if _, dup := p.secs[s.id]; dup {
			return nil, false, fmt.Errorf("%w: duplicate flat section %d", ErrBadIndexFile, s.id)
		}
		if s.off%8 != 0 || s.off < tableEnd {
			return nil, false, fmt.Errorf("%w: misplaced flat section %d at offset %d", ErrBadIndexFile, s.id, s.off)
		}
		if s.elem != 1 && s.elem != 4 && s.elem != 8 {
			return nil, false, fmt.Errorf("%w: flat section %d has element size %d", ErrBadIndexFile, s.id, s.elem)
		}
		// Bound off and count individually before the sum so a huge
		// offset cannot wrap the uint64 arithmetic past the check.
		if s.off > uint64(len(data)) || s.count > uint64(len(data)) ||
			s.off+s.count*uint64(s.elem) > uint64(len(data)) {
			return nil, false, fmt.Errorf("%w: flat section %d out of bounds", ErrBadIndexFile, s.id)
		}
		p.secs[s.id] = s
	}
	var (
		oracle any
		err    error
	)
	switch h.Variant {
	case VariantUndirected, VariantDynamic:
		oracle, err = p.parseUndirected()
	case VariantDirected:
		oracle, err = p.parseDirected()
	case VariantWeighted:
		oracle, err = p.parseWeighted()
	default:
		err = fmt.Errorf("%w: unknown variant tag %d", ErrBadIndexFile, uint8(h.Variant))
	}
	if err != nil {
		return nil, false, err
	}
	return oracle, p.zeroCopy, nil
}

// section fetches a table entry, checking the declared element size.
func (p *flatParser) section(id, elem uint32, what string) (flatSection, error) {
	s, ok := p.secs[id]
	if !ok {
		return s, fmt.Errorf("%w: missing flat section %q", ErrBadIndexFile, what)
	}
	if s.elem != elem {
		return s, fmt.Errorf("%w: flat section %q has element size %d, want %d",
			ErrBadIndexFile, what, s.elem, elem)
	}
	return s, nil
}

// The typed accessors below reinterpret a section's bytes in place when
// the parser may alias (and the platform allows), and decode a copy
// otherwise. Bounds were established by parseFlat.

// u8s returns one byte section.
//
// pllvet:roview — the result may alias read-only mapped pages; treat
// it as immutable even on the copying path.
func (p *flatParser) u8s(id uint32, what string) ([]uint8, error) {
	s, err := p.section(id, 1, what)
	if err != nil {
		return nil, err
	}
	out := p.data[s.off : s.off+s.count : s.off+s.count]
	if !p.alias {
		//pllvet:ignore untrustedalloc s.count bounds-checked against len(data) by parseFlat
		out = append(make([]uint8, 0, s.count), out...)
	}
	return out, nil
}

// flatInts returns one integer section, aliased in place when the
// parser may alias and the platform allows, decoded into a copy
// otherwise (element size and alignment inferred from T).
//
// pllvet:roview — the result may alias read-only mapped pages; treat
// it as immutable even on the copying path.
func flatInts[T flatInt](p *flatParser, id uint32, what string) ([]T, error) {
	var zero T
	size := uintptr(unsafe.Sizeof(zero))
	s, err := p.section(id, uint32(size), what)
	if err != nil {
		return nil, err
	}
	b := p.data[s.off:]
	if s.count == 0 {
		return []T{}, nil
	}
	if p.alias && hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%size == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), int(s.count)), nil
	}
	p.zeroCopy = false
	//pllvet:ignore untrustedalloc s.count bounds-checked against len(data) by parseFlat
	out := make([]T, s.count)
	for i := range out {
		if size == 4 {
			out[i] = T(binary.LittleEndian.Uint32(b[4*i:]))
		} else {
			out[i] = T(binary.LittleEndian.Uint64(b[8*i:]))
		}
	}
	return out, nil
}

// permRank loads and cross-validates the perm and rank sections: both
// must be permutations of [0,n) and mutual inverses. O(n), no label
// pages touched.
func (p *flatParser) permRank() (perm, rank []int32, err error) {
	if perm, err = flatInts[int32](p, secPerm, "permutation"); err != nil {
		return nil, nil, err
	}
	if rank, err = flatInts[int32](p, secRank, "rank"); err != nil {
		return nil, nil, err
	}
	if len(perm) != p.n || len(rank) != p.n {
		return nil, nil, fmt.Errorf("%w: permutation sections sized %d/%d, want n=%d",
			ErrBadIndexFile, len(perm), len(rank), p.n)
	}
	for i, v := range perm {
		if v < 0 || int(v) >= p.n || rank[v] != int32(i) {
			return nil, nil, fmt.Errorf("%w: perm/rank mismatch at rank %d", ErrBadIndexFile, i)
		}
	}
	return perm, rank, nil
}

// checkLabelFamily validates one (off, vertex) label family: offsets
// monotone with room for the per-vertex sentinel, final offset matching
// the array length, and a sentinel hub value of n closing every label.
// In full mode each entry is additionally checked (hubs strictly
// ascending and in range), which is what makes queries on untrusted
// heap-loaded input panic-free.
func (p *flatParser) checkLabelFamily(off []int64, vertex []int32, what string) error {
	n := p.n
	if len(off) != n+1 {
		return fmt.Errorf("%w: %s offsets sized %d, want n+1=%d", ErrBadIndexFile, what, len(off), n+1)
	}
	if off[0] != 0 || off[n] != int64(len(vertex)) {
		return fmt.Errorf("%w: %s offsets do not span the label array", ErrBadIndexFile, what)
	}
	// Establish monotonicity over the whole array first: together with
	// the span check above it bounds every offset inside the label
	// array, so the sentinel probes below cannot index out of range.
	for v := 0; v < n; v++ {
		if off[v+1] <= off[v] {
			return fmt.Errorf("%w: %s offsets not increasing at vertex %d", ErrBadIndexFile, what, v)
		}
	}
	for v := 0; v < n; v++ {
		if vertex[off[v+1]-1] != int32(n) {
			return fmt.Errorf("%w: %s label of vertex %d lacks its sentinel", ErrBadIndexFile, what, v)
		}
	}
	if !p.full {
		return nil
	}
	for v := 0; v < n; v++ {
		prev := int32(-1)
		for i := off[v]; i < off[v+1]-1; i++ {
			hub := vertex[i]
			if hub <= prev || int(hub) >= n {
				return fmt.Errorf("%w: %s label of vertex %d not strictly sorted in range", ErrBadIndexFile, what, v)
			}
			prev = hub
		}
	}
	return nil
}

// parseSearch decodes the optional hub-inverted search sections,
// validating their structure (and, in full mode, every entry) before
// they are attached to the index.
func (p *flatParser) parseSearch(numBP int, bps1, bps0 []uint64) (*hubsearch.Inverted, error) {
	off, err := flatInts[int64](p, secInvOff, "inverted search offsets")
	if err != nil {
		return nil, err
	}
	vs, err := flatInts[int32](p, secInvVertex, "inverted search vertices")
	if err != nil {
		return nil, err
	}
	ds, err := flatInts[uint32](p, secInvDist, "inverted search distances")
	if err != nil {
		return nil, err
	}
	inv := &hubsearch.Inverted{N: p.n, NumBP: numBP, Off: off, Vertex: vs, Dist: ds, BPS1: bps1, BPS0: bps0}
	if err := inv.Validate(p.full); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexFile, err)
	}
	return inv, nil
}

func (p *flatParser) parseUndirected() (*Index, error) {
	if p.h.Flags&ContainerFlagCompressed != 0 {
		return nil, fmt.Errorf("%w: flat containers are never compressed", ErrBadIndexFile)
	}
	perm, rank, err := p.permRank()
	if err != nil {
		return nil, err
	}
	ix := &Index{n: p.n, numBP: int(p.h.BitParallel), perm: perm, rank: rank}
	if p.h.Variant == VariantDynamic {
		ix.origin = VariantDynamic
	}
	if ix.labelOff, err = flatInts[int64](p, secLabelOff, "label offsets"); err != nil {
		return nil, err
	}
	if ix.labelVertex, err = flatInts[int32](p, secLabelVertex, "label hubs"); err != nil {
		return nil, err
	}
	if ix.labelDist, err = p.u8s(secLabelDist8, "label distances"); err != nil {
		return nil, err
	}
	if len(ix.labelDist) != len(ix.labelVertex) {
		return nil, fmt.Errorf("%w: label hub/distance sections differ in length", ErrBadIndexFile)
	}
	if err := p.checkLabelFamily(ix.labelOff, ix.labelVertex, "label"); err != nil {
		return nil, err
	}
	if p.h.Flags&ContainerFlagPaths != 0 {
		if ix.labelParent, err = flatInts[int32](p, secLabelParent, "parent pointers"); err != nil {
			return nil, err
		}
		if len(ix.labelParent) != len(ix.labelVertex) {
			return nil, fmt.Errorf("%w: parent section differs in length", ErrBadIndexFile)
		}
		if p.full {
			for _, par := range ix.labelParent {
				if par < -1 || int(par) >= p.n {
					return nil, fmt.Errorf("%w: parent pointer %d out of range", ErrBadIndexFile, par)
				}
			}
		}
	}
	if ix.numBP > 0 {
		if uint64(ix.numBP) > 1<<16 {
			return nil, fmt.Errorf("%w: implausible bit-parallel width %d", ErrBadIndexFile, ix.numBP)
		}
		want := uint64(ix.numBP) * uint64(p.n)
		if ix.bpDist, err = p.u8s(secBPDist, "bit-parallel distances"); err != nil {
			return nil, err
		}
		if ix.bpS1, err = flatInts[uint64](p, secBPS1, "bit-parallel S-1 sets"); err != nil {
			return nil, err
		}
		if ix.bpS0, err = flatInts[uint64](p, secBPS0, "bit-parallel S0 sets"); err != nil {
			return nil, err
		}
		if uint64(len(ix.bpDist)) != want || uint64(len(ix.bpS1)) != want || uint64(len(ix.bpS0)) != want {
			return nil, fmt.Errorf("%w: bit-parallel sections sized %d/%d/%d, want %d",
				ErrBadIndexFile, len(ix.bpDist), len(ix.bpS1), len(ix.bpS0), want)
		}
	}
	if p.h.Flags&ContainerFlagSearch != 0 {
		inv, err := p.parseSearch(ix.numBP, ix.bpS1, ix.bpS0)
		if err != nil {
			return nil, err
		}
		ix.search.inv = inv
	}
	return ix, nil
}

func (p *flatParser) parseDirected() (*DirectedIndex, error) {
	if p.h.Flags&^ContainerFlagSearch != 0 {
		return nil, fmt.Errorf("%w: unexpected flags %#x for a flat directed container", ErrBadIndexFile, p.h.Flags)
	}
	perm, rank, err := p.permRank()
	if err != nil {
		return nil, err
	}
	ix := &DirectedIndex{n: p.n, perm: perm, rank: rank}
	side := func(offID, vertID, distID uint32, what string) ([]int64, []int32, []uint8, error) {
		off, err := flatInts[int64](p, offID, what+" offsets")
		if err != nil {
			return nil, nil, nil, err
		}
		vs, err := flatInts[int32](p, vertID, what+" hubs")
		if err != nil {
			return nil, nil, nil, err
		}
		ds, err := p.u8s(distID, what+" distances")
		if err != nil {
			return nil, nil, nil, err
		}
		if len(ds) != len(vs) {
			return nil, nil, nil, fmt.Errorf("%w: %s hub/distance sections differ in length", ErrBadIndexFile, what)
		}
		if err := p.checkLabelFamily(off, vs, what); err != nil {
			return nil, nil, nil, err
		}
		return off, vs, ds, nil
	}
	if ix.outOff, ix.outVertex, ix.outDist, err = side(secOutOff, secOutVertex, secOutDist, "L_OUT"); err != nil {
		return nil, err
	}
	if ix.inOff, ix.inVertex, ix.inDist, err = side(secInOff, secInVertex, secInDist, "L_IN"); err != nil {
		return nil, err
	}
	if p.h.Flags&ContainerFlagSearch != 0 {
		inv, err := p.parseSearch(0, nil, nil)
		if err != nil {
			return nil, err
		}
		ix.search.inv = inv
	}
	return ix, nil
}

func (p *flatParser) parseWeighted() (*WeightedIndex, error) {
	if p.h.Flags&^ContainerFlagSearch != 0 || p.h.BitParallel != 0 {
		return nil, fmt.Errorf("%w: unexpected flags/bp for a flat weighted container", ErrBadIndexFile)
	}
	perm, rank, err := p.permRank()
	if err != nil {
		return nil, err
	}
	ix := &WeightedIndex{n: p.n, perm: perm, rank: rank}
	if ix.labelOff, err = flatInts[int64](p, secLabelOff, "label offsets"); err != nil {
		return nil, err
	}
	if ix.labelVertex, err = flatInts[int32](p, secLabelVertex, "label hubs"); err != nil {
		return nil, err
	}
	if ix.labelDist, err = flatInts[uint32](p, secLabelDist32, "label distances"); err != nil {
		return nil, err
	}
	if len(ix.labelDist) != len(ix.labelVertex) {
		return nil, fmt.Errorf("%w: label hub/distance sections differ in length", ErrBadIndexFile)
	}
	if err := p.checkLabelFamily(ix.labelOff, ix.labelVertex, "label"); err != nil {
		return nil, err
	}
	if p.h.Flags&ContainerFlagSearch != 0 {
		inv, err := p.parseSearch(0, nil, nil)
		if err != nil {
			return nil, err
		}
		ix.search.inv = inv
	}
	return ix, nil
}

// ---------------------------------------------------------------------
// Heap loading (reader path, full validation)
// ---------------------------------------------------------------------

// loadFlatFromReader reads a version-2 payload from a stream into one
// heap buffer and parses it with full per-entry validation. The
// container header was already consumed by LoadAny.
func loadFlatFromReader(br *bufio.Reader, h ContainerHeader) (any, error) {
	fixed, err := readBytesCapped(br, flatHeaderSize, "flat header")
	if err != nil {
		return nil, err
	}
	nsec := binary.LittleEndian.Uint32(fixed[8:12])
	if nsec > flatMaxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrBadIndexFile, nsec)
	}
	table, err := readBytesCapped(br, int64(nsec)*flatSectionSize, "flat section table")
	if err != nil {
		return nil, err
	}
	end := uint64(containerHeaderSize+flatHeaderSize) + uint64(nsec)*flatSectionSize
	for i := uint64(0); i < uint64(nsec); i++ {
		b := table[i*flatSectionSize:]
		off := binary.LittleEndian.Uint64(b[8:16])
		count := binary.LittleEndian.Uint64(b[16:24])
		elem := uint64(binary.LittleEndian.Uint32(b[4:8]))
		if elem == 0 || elem > 8 || count > math.MaxUint64/8 || off > math.MaxUint64-count*elem {
			return nil, fmt.Errorf("%w: flat section table overflow", ErrBadIndexFile)
		}
		if e := off + count*elem; e > end {
			end = e
		}
	}
	if end > math.MaxInt64/2 {
		return nil, fmt.Errorf("%w: implausible flat payload size %d", ErrBadIndexFile, end)
	}
	// Reassemble a complete file image (section offsets are absolute),
	// reading the payload in capped chunks so a bogus table cannot force
	// a giant allocation ahead of real bytes.
	hdr := h.encode()
	data := make([]byte, 0, min(int64(end), allocChunk))
	data = append(data, hdr[:]...)
	data = append(data, fixed...)
	data = append(data, table...)
	rest, err := readBytesCapped(br, int64(end)-int64(len(data)), "flat sections")
	if err != nil {
		return nil, err
	}
	data = append(data, rest...)
	oracle, _, err := parseFlat(data, h, false, true)
	return oracle, err
}

// ---------------------------------------------------------------------
// Memory-mapped opening
// ---------------------------------------------------------------------

// FlatStore is an open flat container: the mapped (or slurped) file
// image plus the oracle whose arrays alias it. Queries on the oracle
// read the mapped pages directly — nothing is decoded, copied or
// allocated per label entry at open time (validation is O(n) in the
// vertex count: perm/offset checks and one sentinel probe per vertex,
// which on a cold page cache streams the hub section in once), the
// kernel shares the pages across processes serving the same file, and
// the index may exceed the heap.
//
// Close unmaps the image; the oracle must not be used afterwards.
type FlatStore struct {
	header   ContainerHeader
	oracle   any // *Index, *DirectedIndex or *WeightedIndex
	size     int64
	zeroCopy bool
	unmap    func() error
}

// OpenFlat maps path and returns its flat store. Files that are valid
// indexes but not flat (version-2) containers yield ErrNotFlat;
// malformed files yield errors wrapping ErrBadIndexFile.
//
// The structural metadata (section table, perm/rank, offsets,
// sentinels) is validated up front; label contents are trusted, exactly
// like the in-memory arrays of a built index. Use the heap loader
// (LoadAny) for untrusted input.
func OpenFlat(path string) (*FlatStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < containerHeaderSize+flatHeaderSize {
		return nil, fmt.Errorf("%w: file too small for a flat container", ErrBadIndexFile)
	}
	data, unmap, err := mapFlatFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("core: mapping %s: %w", path, err)
	}
	fs, err := newFlatStore(data, st.Size(), unmap)
	if err != nil {
		unmap() //nolint:errcheck // the parse error is the one to report
		return nil, err
	}
	return fs, nil
}

// newFlatStore parses a complete flat file image into a store.
func newFlatStore(data []byte, size int64, unmap func() error) (*FlatStore, error) {
	if [8]byte(data[:8]) != containerMagic {
		switch [8]byte(data[:8]) {
		case indexMagic, compressedMagic, weightedMagic, directedMagic:
			return nil, fmt.Errorf("%w (bare legacy payload; rewrite with WriteFlat)", ErrNotFlat)
		}
		return nil, fmt.Errorf("%w: unrecognized magic %q", ErrBadIndexFile, data[:8])
	}
	h, err := parseContainerHeader(data[:containerHeaderSize])
	if err != nil {
		return nil, err
	}
	if h.Version != ContainerVersionFlat {
		return nil, fmt.Errorf("%w (container version %d; rewrite with WriteFlat)", ErrNotFlat, h.Version)
	}
	oracle, zeroCopy, err := parseFlat(data, h, true, false)
	if err != nil {
		return nil, err
	}
	return &FlatStore{header: h, oracle: oracle, size: size, zeroCopy: zeroCopy, unmap: unmap}, nil
}

// Oracle returns the aliasing index: *Index, *DirectedIndex or
// *WeightedIndex.
func (fs *FlatStore) Oracle() any { return fs.oracle }

// Header returns the parsed container header.
func (fs *FlatStore) Header() ContainerHeader { return fs.header }

// MappedBytes returns the size of the mapped file image.
func (fs *FlatStore) MappedBytes() int64 { return fs.size }

// ZeroCopy reports whether every section aliases the mapped image
// (false on big-endian hosts or pathologically misaligned files, where
// sections were decoded into heap copies instead).
func (fs *FlatStore) ZeroCopy() bool { return fs.zeroCopy }

// Close releases the mapping. It is idempotent; the oracle must not be
// queried after the first Close.
func (fs *FlatStore) Close() error {
	u := fs.unmap
	fs.unmap = nil
	if u == nil {
		return nil
	}
	return u()
}
