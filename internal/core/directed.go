package core

import (
	"fmt"
	"sync"

	"pll/internal/graph"
	"pll/internal/order"
)

// DirectedIndex is the §6 "Directed Graphs" variant: every vertex v
// carries two labels, L_OUT(v) of pairs (w, d(v,w)) and L_IN(v) of pairs
// (w, d(w,v)); the distance from s to t is the merge-join minimum over
// L_OUT(s) and L_IN(t). Labels are produced by a forward and a backward
// pruned BFS from each vertex in rank order.
type DirectedIndex struct {
	n    int
	perm []int32
	rank []int32

	outOff    []int64
	outVertex []int32
	outDist   []uint8
	outParent []int32 // successor toward the hub (ranks); nil unless StorePaths

	inOff    []int64
	inVertex []int32
	inDist   []uint8
	inParent []int32 // predecessor from the hub (ranks); nil unless StorePaths

	batchPool sync.Pool   // recycles *rankScratch8 for DistanceFrom
	search    searchState // lazily built hub-inverted L_IN index (search.go)
}

// DirectedOptions configures BuildDirected.
type DirectedOptions struct {
	// Ordering ranks vertices on the underlying undirected structure
	// (total degree); Degree is the paper's default.
	Ordering order.Strategy
	// Seed drives ordering tie-breaks.
	Seed uint64
	// CustomOrder, if non-nil, overrides Ordering.
	CustomOrder []int32
	// StorePaths records a parent pointer per label entry so QueryPath
	// can reconstruct directed shortest paths (§6).
	StorePaths bool
	// Workers parallelizes the pruned labeling (see Options.Workers);
	// the index is byte-identical regardless of the worker count.
	// 0 selects GOMAXPROCS.
	Workers int
}

// BuildDirected constructs a directed pruned-landmark-labeling index.
func BuildDirected(g *graph.Digraph, opt DirectedOptions) (*DirectedIndex, error) {
	n := g.NumVertices()
	perm := opt.CustomOrder
	if perm == nil {
		perm = order.Compute(g.Underlying(), opt.Ordering, opt.Seed)
	} else if len(perm) != n {
		return nil, fmt.Errorf("core: CustomOrder length %d != n %d", len(perm), n)
	}
	h, err := g.Relabel(perm)
	if err != nil {
		return nil, fmt.Errorf("core: invalid CustomOrder: %w", err)
	}

	db := newDirBuilder(h, opt.StorePaths)
	if workers := EffectiveWorkers(opt.Workers); workers > 1 {
		err = db.runParallel(workers)
	} else {
		err = db.runSequential()
	}
	if err != nil {
		return nil, err
	}

	ix := &DirectedIndex{
		n:    n,
		perm: append([]int32(nil), perm...),
		rank: order.RankOf(perm),
	}
	ix.outOff, ix.outVertex, ix.outDist = flattenLabels(n, db.outV, db.outD)
	ix.inOff, ix.inVertex, ix.inDist = flattenLabels(n, db.inV, db.inD)
	if opt.StorePaths {
		ix.outParent = flattenParents(n, ix.outOff, db.outP)
		ix.inParent = flattenParents(n, ix.inOff, db.inP)
	}
	return ix, nil
}

// dirBuilder holds the growing label families and the sequential-sweep
// scratch of one directed construction run. outV[u] holds L_OUT(u)
// hubs; inV[u] holds L_IN(u) hubs.
type dirBuilder struct {
	h *graph.Digraph // rank-relabeled digraph
	n int

	outV, inV [][]int32
	outD, inD [][]uint8
	outP, inP [][]int32 // parents; nil unless storing paths

	storePaths bool
	sc         dirScratch

	// Per-vertex marks for path-storing batch replays (parallel_directed.go).
	candD      []uint8
	candPruned []bool
}

// dirScratch is the per-sweep scratch of one directed pruned BFS.
type dirScratch struct {
	dist    []uint8
	par     []int32 // nil unless storing paths
	rootLab []uint8
	queue   []int32
}

func newDirScratch(n int, storePaths bool) *dirScratch {
	sc := &dirScratch{
		dist:    make([]uint8, n),
		rootLab: make([]uint8, n+1),
		queue:   make([]int32, 0, 1024),
	}
	if storePaths {
		sc.par = make([]int32, n)
	}
	for i := range sc.dist {
		sc.dist[i] = InfDist
	}
	for i := range sc.rootLab {
		sc.rootLab[i] = InfDist
	}
	return sc
}

func (sc *dirScratch) reset(visited []int32, rootLabelVertices []int32) {
	for _, v := range visited {
		sc.dist[v] = InfDist
	}
	for _, w := range rootLabelVertices {
		sc.rootLab[w] = InfDist
	}
}

func newDirBuilder(h *graph.Digraph, storePaths bool) *dirBuilder {
	n := h.NumVertices()
	db := &dirBuilder{
		h: h, n: n,
		outV: make([][]int32, n),
		outD: make([][]uint8, n),
		inV:  make([][]int32, n),
		inD:  make([][]uint8, n),

		storePaths: storePaths,
		sc:         *newDirScratch(n, storePaths),
	}
	if storePaths {
		db.outP = make([][]int32, n)
		db.inP = make([][]int32, n)
	}
	return db
}

// dir returns the machinery of one sweep direction. A forward sweep
// (fwd) runs over out-arcs, loads T from L_OUT(vk) and scans/extends
// L_IN(u); a backward sweep is the mirror image. The returned slices
// share backing with the builder, so appends through them are visible.
func (db *dirBuilder) dir(fwd bool) (neighbors func(int32) []int32, rootV [][]int32, rootD [][]uint8, scanV [][]int32, scanD [][]uint8, scanP [][]int32) {
	if fwd {
		return db.h.OutNeighbors, db.outV, db.outD, db.inV, db.inD, db.inP
	}
	return db.h.InNeighbors, db.inV, db.inD, db.outV, db.outD, db.outP
}

func (db *dirBuilder) runSequential() error {
	for vk := int32(0); int(vk) < db.n; vk++ {
		// Forward: from vk over out-arcs; tests L_OUT(vk) against
		// L_IN(u); labels go into L_IN(u).
		if err := db.sweep(vk, true); err != nil {
			return err
		}
		// Backward: from vk over in-arcs; tests L_IN(vk) against
		// L_OUT(u); labels go into L_OUT(u).
		if err := db.sweep(vk, false); err != nil {
			return err
		}
	}
	return nil
}

// sweep runs one pruned BFS from vk along the given arc direction,
// appending labels to the scan-side family. With StorePaths the
// BFS-tree predecessor of each labeled vertex is recorded too.
func (db *dirBuilder) sweep(vk int32, fwd bool) error {
	neighbors, rootV, rootD, scanV, scanD, scanP := db.dir(fwd)
	sc := &db.sc
	lv, ld := rootV[vk], rootD[vk]
	for i, w := range lv {
		sc.rootLab[w] = ld[i]
	}
	queue := sc.queue[:0]
	queue = append(queue, vk)
	sc.dist[vk] = 0
	if sc.par != nil {
		sc.par[vk] = -1
	}
	for qh := 0; qh < len(queue); qh++ {
		u := queue[qh]
		d := sc.dist[u]
		pruned := false
		uv, ud := scanV[u], scanD[u]
		for i, w := range uv {
			if tw := sc.rootLab[w]; tw != InfDist && int(tw)+int(ud[i]) <= int(d) {
				pruned = true
				break
			}
		}
		if !pruned {
			scanV[u] = append(scanV[u], vk)
			scanD[u] = append(scanD[u], d)
			if scanP != nil {
				scanP[u] = append(scanP[u], sc.par[u])
			}
			nd := int(d) + 1
			for _, w := range neighbors(u) {
				if sc.dist[w] == InfDist {
					if nd > MaxDist {
						sc.reset(queue, lv)
						sc.queue = queue[:0]
						return ErrDiameterTooLarge
					}
					sc.dist[w] = uint8(nd)
					if sc.par != nil {
						sc.par[w] = u
					}
					queue = append(queue, w)
				}
			}
		}
	}
	sc.reset(queue, lv)
	sc.queue = queue[:0]
	return nil
}

// flattenParents lays parent slices out parallel to already-flattened
// labels (off includes one sentinel slot per vertex).
func flattenParents(n int, off []int64, labP [][]int32) []int32 {
	out := make([]int32, off[n])
	w := int64(0)
	for v := 0; v < n; v++ {
		copy(out[w:], labP[v])
		w += int64(len(labP[v]))
		out[w] = -1 // sentinel
		w++
	}
	return out
}

func flattenLabels(n int, labV [][]int32, labD [][]uint8) ([]int64, []int32, []uint8) {
	total := int64(0)
	for v := 0; v < n; v++ {
		total += int64(len(labV[v])) + 1
	}
	off := make([]int64, n+1)
	vs := make([]int32, total)
	ds := make([]uint8, total)
	w := int64(0)
	for v := 0; v < n; v++ {
		off[v] = w
		copy(vs[w:], labV[v])
		copy(ds[w:], labD[v])
		w += int64(len(labV[v]))
		vs[w] = int32(n)
		ds[w] = InfDist
		w++
	}
	off[n] = w
	return off, vs, ds
}

// NumVertices returns the number of vertices the index covers.
func (ix *DirectedIndex) NumVertices() int { return ix.n }

// Query returns the exact directed distance from s to t, or Unreachable.
func (ix *DirectedIndex) Query(s, t int32) int {
	if s == t {
		return 0
	}
	rs, rt := ix.rank[s], ix.rank[t]
	best := infQuery
	i, j := ix.outOff[rs], ix.inOff[rt]
	for {
		vs, vt := ix.outVertex[i], ix.inVertex[j]
		switch {
		case vs == vt:
			if int(vs) == ix.n {
				if best >= infQuery {
					return Unreachable
				}
				return best
			}
			if d := int(ix.outDist[i]) + int(ix.inDist[j]); d < best {
				best = d
			}
			i++
			j++
		case vs < vt:
			i++
		default:
			j++
		}
	}
}

// HasPaths reports whether the index can answer QueryPath.
func (ix *DirectedIndex) HasPaths() bool { return ix.outParent != nil }

// QueryPath returns one directed shortest s-to-t path (inclusive of both
// endpoints), or nil if t is unreachable from s. The index must have
// been built with StorePaths.
func (ix *DirectedIndex) QueryPath(s, t int32) ([]int32, error) {
	if ix.outParent == nil {
		return nil, fmt.Errorf("core: directed index was built without StorePaths")
	}
	if s == t {
		return []int32{s}, nil
	}
	rs, rt := ix.rank[s], ix.rank[t]
	best := infQuery
	hub := int32(-1)
	i, j := ix.outOff[rs], ix.inOff[rt]
	for {
		vs, vt := ix.outVertex[i], ix.inVertex[j]
		if vs == vt {
			if int(vs) == ix.n {
				break
			}
			if d := int(ix.outDist[i]) + int(ix.inDist[j]); d < best {
				best = d
				hub = vs
			}
			i++
			j++
		} else if vs < vt {
			i++
		} else {
			j++
		}
	}
	if hub < 0 {
		return nil, nil
	}
	// s -> hub: L_OUT(s) parents are successors toward the hub (they
	// come from the backward BFS tree rooted at the hub).
	fwd, err := chainDirected(ix.n, rs, hub, ix.outOff, ix.outVertex, ix.outParent)
	if err != nil {
		return nil, err
	}
	// t <- hub: L_IN(t) parents are predecessors along the hub-to-t path.
	back, err := chainDirected(ix.n, rt, hub, ix.inOff, ix.inVertex, ix.inParent)
	if err != nil {
		return nil, err
	}
	path := make([]int32, 0, len(fwd)+len(back)-1)
	for _, r := range fwd {
		path = append(path, ix.perm[r])
	}
	for k := len(back) - 2; k >= 0; k-- {
		path = append(path, ix.perm[back[k]])
	}
	return path, nil
}

// chainDirected follows one label family's parent pointers from rank r
// toward hub, returning [r ... hub].
func chainDirected(n int, r, hub int32, off []int64, vs []int32, ps []int32) ([]int32, error) {
	chain := []int32{r}
	cur := r
	for cur != hub {
		lo, hi := off[cur], off[cur+1]-1
		idx := searchLabel(vs[lo:hi], hub)
		if idx < 0 {
			return nil, fmt.Errorf("core: broken directed parent chain at rank %d for hub %d", cur, hub)
		}
		p := ps[lo+int64(idx)]
		if p < 0 {
			break
		}
		chain = append(chain, p)
		cur = p
	}
	return chain, nil
}

// AvgLabelSize returns the mean of |L_IN| + |L_OUT| over all vertices.
func (ix *DirectedIndex) AvgLabelSize() float64 {
	if ix.n == 0 {
		return 0
	}
	total := (ix.outOff[ix.n] - int64(ix.n)) + (ix.inOff[ix.n] - int64(ix.n))
	return float64(total) / float64(ix.n)
}

// ComputeStats scans the directed index and returns summary statistics.
// Per-vertex label sizes are |L_OUT(v)| + |L_IN(v)|.
func (ix *DirectedIndex) ComputeStats() Stats {
	st := Stats{
		Variant:           VariantDirected,
		NumVertices:       ix.n,
		HasParentPointers: ix.outParent != nil,
	}
	sizes := make([]int, ix.n)
	for r := 0; r < ix.n; r++ {
		sz := int(ix.outOff[r+1]-ix.outOff[r]-1) + int(ix.inOff[r+1]-ix.inOff[r]-1)
		sizes[r] = sz
		st.TotalLabelEntries += int64(sz)
		if sz > st.MaxLabelSize {
			st.MaxLabelSize = sz
		}
	}
	if ix.n > 0 {
		st.AvgLabelSize = float64(st.TotalLabelEntries) / float64(ix.n)
	}
	insertionSortQuantiles(sizes, &st.LabelSizeQuantiles)
	applyHubStats(&st, ix.n, ix.outVertex, ix.inVertex)
	st.NormalLabelBytes = int64(len(ix.outVertex))*4 + int64(len(ix.outDist)) +
		int64(len(ix.inVertex))*4 + int64(len(ix.inDist))
	if ix.outParent != nil {
		st.NormalLabelBytes += int64(len(ix.outParent))*4 + int64(len(ix.inParent))*4
	}
	st.IndexBytes = st.NormalLabelBytes +
		int64(len(ix.outOff))*8 + int64(len(ix.inOff))*8 + int64(len(ix.perm))*8
	return st
}
