package core

// BatchSource answers many queries that share one endpoint faster than
// repeated merge joins. It applies the §4.5 "Querying" trick used during
// construction to the query path: the source's label is expanded into a
// rank-indexed array T once, after which each target costs a single scan
// of its own label, O(|L(t)|) instead of O(|L(s)|+|L(t)|).
//
// Typical use is the paper's motivating workloads — socially-sensitive
// search and context-aware search — where one user/page is compared
// against hundreds of candidates per request.
//
// BatchSource is the engine behind Index.DistanceFrom (the Batcher
// capability), which pools instances and should be preferred by new
// code. A BatchSource holds scratch arrays sized to the graph; reuse it
// across sources via Reset. Like Query, it panics on out-of-range
// vertices — callers validate. Not safe for concurrent use.
type BatchSource struct {
	ix *Index
	// t[w] = distance from the current source to hub rank w, InfDist if
	// absent from the source's label.
	t []uint8
	// loaded hub ranks, for O(|L(s)|) reset.
	loaded []int32
	src    int32
	// source-side bit-parallel mirrors.
	bpDv  []uint8
	bpS1v []uint64
	bpS0v []uint64
}

// NewBatchSource prepares batched querying from source s.
func (ix *Index) NewBatchSource(s int32) *BatchSource {
	b := &BatchSource{
		ix:    ix,
		t:     make([]uint8, ix.n+1),
		bpDv:  make([]uint8, ix.numBP),
		bpS1v: make([]uint64, ix.numBP),
		bpS0v: make([]uint64, ix.numBP),
	}
	for i := range b.t {
		b.t[i] = InfDist
	}
	b.Reset(s)
	return b
}

// Reset switches the batch to a new source vertex.
func (b *BatchSource) Reset(s int32) {
	ix := b.ix
	for _, w := range b.loaded {
		b.t[w] = InfDist
	}
	b.loaded = b.loaded[:0]
	b.src = s
	rs := ix.rank[s]
	lo, hi := ix.labelOff[rs], ix.labelOff[rs+1]-1
	for i := lo; i < hi; i++ {
		w := ix.labelVertex[i]
		b.t[w] = ix.labelDist[i]
		b.loaded = append(b.loaded, w)
	}
	os := int(rs) * ix.numBP
	for i := 0; i < ix.numBP; i++ {
		b.bpDv[i] = ix.bpDist[os+i]
		b.bpS1v[i] = ix.bpS1[os+i]
		b.bpS0v[i] = ix.bpS0[os+i]
	}
}

// Source returns the current source vertex.
func (b *BatchSource) Source() int32 { return b.src }

// Query returns the exact distance from the batch source to t, or
// Unreachable. Results are identical to Index.Query(source, t).
func (b *BatchSource) Query(t int32) int {
	if t == b.src {
		return 0
	}
	ix := b.ix
	rt := ix.rank[t]
	best := infQuery
	// Bit-parallel part, reading the cached source mirrors.
	ot := int(rt) * ix.numBP
	for i := 0; i < ix.numBP; i++ {
		dv := b.bpDv[i]
		if dv == InfDist {
			continue
		}
		du := ix.bpDist[ot+i]
		if du == InfDist {
			continue
		}
		td := int(dv) + int(du)
		if td-2 < best {
			if b.bpS1v[i]&ix.bpS1[ot+i] != 0 {
				td -= 2
			} else if b.bpS1v[i]&ix.bpS0[ot+i] != 0 || b.bpS0v[i]&ix.bpS1[ot+i] != 0 {
				td -= 1
			}
			if td < best {
				best = td
			}
		}
	}
	// Normal labels: one scan of L(t) against the T array.
	lo, hi := ix.labelOff[rt], ix.labelOff[rt+1]-1
	for i := lo; i < hi; i++ {
		tw := b.t[ix.labelVertex[i]]
		if tw != InfDist {
			if d := int(tw) + int(ix.labelDist[i]); d < best {
				best = d
			}
		}
	}
	if best >= infQuery {
		return Unreachable
	}
	return best
}
