package core

import (
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/rng"
)

// assertDynamicExact verifies all pairs of a small graph against BFS.
func assertDynamicExact(t *testing.T, g *graph.Graph, di *DynamicIndex) {
	t.Helper()
	n := g.NumVertices()
	for s := int32(0); int(s) < n; s++ {
		truth := bfs.AllDistances(g, s)
		for u := int32(0); int(u) < n; u++ {
			want := int(truth[u])
			if truth[u] == bfs.Unreachable {
				want = Unreachable
			}
			if got := di.Query(s, u); got != want {
				t.Fatalf("Query(%d,%d) = %d, want %d", s, u, got, want)
			}
		}
	}
}

func TestDynamicMatchesStaticInitially(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 5)
	di, err := BuildDynamic(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildOrFail(t, g, Options{Seed: 5})
	for _, p := range randPairs(150, 300, 7) {
		if di.Query(p[0], p[1]) != ix.Query(p[0], p[1]) {
			t.Fatalf("dynamic/static mismatch at (%d,%d)", p[0], p[1])
		}
	}
}

func TestDynamicInsertBridgesComponents(t *testing.T) {
	// Two disjoint paths; inserting a bridge must make cross queries
	// exact.
	g, err := graph.NewGraph(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}})
	if err != nil {
		t.Fatal(err)
	}
	di, err := BuildDynamic(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := di.Query(0, 5); d != Unreachable {
		t.Fatalf("pre-insert Query(0,5) = %d", d)
	}
	if _, err := di.InsertEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	after, err := graph.NewGraph(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	assertDynamicExact(t, after, di)
}

func TestDynamicInsertShortcut(t *testing.T) {
	// A long cycle; inserting a chord shortens many pairs at once.
	g := gen.Cycle(20)
	di, err := BuildDynamic(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	edges = append(edges, graph.Edge{U: 0, V: 10})
	after, err := graph.NewGraph(20, edges)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := di.InsertEdge(0, 10); err != nil {
		t.Fatal(err)
	}
	assertDynamicExact(t, after, di)
}

func TestDynamicInsertExistingEdgeNoop(t *testing.T) {
	g := gen.Path(5)
	di, err := BuildDynamic(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := di.InsertEdge(0, 1)
	if err != nil || n != 0 {
		t.Fatalf("existing edge: updated=%d err=%v", n, err)
	}
	n, err = di.InsertEdge(2, 2)
	if err != nil || n != 0 {
		t.Fatalf("self loop: updated=%d err=%v", n, err)
	}
	if _, err := di.InsertEdge(0, 99); err == nil {
		t.Fatal("expected range error")
	}
}

func TestDynamicRandomInsertionSequences(t *testing.T) {
	// The heavy validation: start from a random graph, insert random
	// edges one at a time, and after every insertion check all pairs
	// against BFS on the updated graph.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(25) + 5
		m := r.Intn(2 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: r.Int31n(int32(n)), V: r.Int31n(int32(n))})
		}
		g, err := graph.NewGraph(n, edges)
		if err != nil {
			return false
		}
		di, err := BuildDynamic(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		cur := g.Edges()
		for step := 0; step < 8; step++ {
			a, b := r.Int31n(int32(n)), r.Int31n(int32(n))
			if a == b {
				continue
			}
			if _, err := di.InsertEdge(a, b); err != nil {
				return false
			}
			cur = append(cur, graph.Edge{U: a, V: b})
			updated, err := graph.NewGraph(n, cur)
			if err != nil {
				return false
			}
			for s := int32(0); int(s) < n; s++ {
				truth := bfs.AllDistances(updated, s)
				for u := int32(0); int(u) < n; u++ {
					want := int(truth[u])
					if truth[u] == bfs.Unreachable {
						want = Unreachable
					}
					if di.Query(s, u) != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicManyInsertionsOnLargerGraph(t *testing.T) {
	// Spot-check (sampled pairs) on a bigger graph with many insertions.
	g := gen.BarabasiAlbert(400, 2, 9)
	di, err := BuildDynamic(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	cur := g.Edges()
	for step := 0; step < 60; step++ {
		a, b := r.Int31n(400), r.Int31n(400)
		if a == b {
			continue
		}
		if _, err := di.InsertEdge(a, b); err != nil {
			t.Fatal(err)
		}
		cur = append(cur, graph.Edge{U: a, V: b})
	}
	updated, err := graph.NewGraph(400, cur)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range randPairs(400, 400, 13) {
		want := int(bfs.Distance(updated, p[0], p[1]))
		if got := di.Query(p[0], p[1]); got != want {
			t.Fatalf("Query(%d,%d) = %d, want %d", p[0], p[1], got, want)
		}
	}
}

func TestDynamicRejectsUnsupportedOptions(t *testing.T) {
	g := gen.Path(5)
	if _, err := BuildDynamic(g, Options{NumBitParallel: 4}); err == nil {
		t.Fatal("expected error for bit-parallel dynamic index")
	}
	if _, err := BuildDynamic(g, Options{StorePaths: true}); err == nil {
		t.Fatal("expected error for path-storing dynamic index")
	}
}

func TestDynamicAvgLabelSizeGrowsModestly(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 4)
	di, err := BuildDynamic(g, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := di.AvgLabelSize()
	r := rng.New(77)
	for i := 0; i < 30; i++ {
		a, b := r.Int31n(300), r.Int31n(300)
		if a != b {
			if _, err := di.InsertEdge(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	after := di.AvgLabelSize()
	if after < before {
		t.Fatalf("labels shrank: %v -> %v", before, after)
	}
	if after > 3*before+10 {
		t.Fatalf("labels exploded after 30 insertions: %v -> %v", before, after)
	}
}

func BenchmarkDynamicInsertEdge(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 4, 1)
	di, err := BuildDynamic(g, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := r.Int31n(5000), r.Int31n(5000)
		if a == c {
			continue
		}
		if _, err := di.InsertEdge(a, c); err != nil {
			b.Fatal(err)
		}
	}
}
