package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"pll/internal/gen"
)

func TestWeightedSaveLoadRoundTrip(t *testing.T) {
	wg := randomWeightedGraph(3, 80, 15)
	ix, err := BuildWeighted(wg, WeightedOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadWeighted(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := wg.NumVertices()
	for _, p := range randPairs(n, 300, 9) {
		if ix.Query(p[0], p[1]) != loaded.Query(p[0], p[1]) {
			t.Fatalf("weighted round trip mismatch at (%d,%d)", p[0], p[1])
		}
	}
}

func TestWeightedSaveLoadFile(t *testing.T) {
	wg := randomWeightedGraph(5, 40, 9)
	ix, err := BuildWeighted(wg, WeightedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.pll")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadWeightedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != wg.NumVertices() {
		t.Fatal("vertex count lost")
	}
}

func TestWeightedLoadRejectsCorruption(t *testing.T) {
	wg := randomWeightedGraph(7, 40, 9)
	ix, err := BuildWeighted(wg, WeightedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	bad := append([]byte{}, full...)
	bad[3] = 'X'
	if _, err := LoadWeighted(bytes.NewReader(bad)); !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("magic err = %v", err)
	}
	for cut := 0; cut < len(full)-1; cut += 71 {
		if _, err := LoadWeighted(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadIndexFile) {
			t.Fatalf("truncation at %d: %v", cut, err)
		}
	}
	if _, err := LoadWeightedFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestDirectedSaveLoadRoundTrip(t *testing.T) {
	g := gen.RandomDigraph(70, 300, 3)
	ix, err := BuildDirected(g, DirectedOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDirected(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range randPairs(70, 300, 11) {
		if ix.Query(p[0], p[1]) != loaded.Query(p[0], p[1]) {
			t.Fatalf("directed round trip mismatch at (%d,%d)", p[0], p[1])
		}
	}
}

func TestDirectedSaveLoadFile(t *testing.T) {
	g := gen.RandomDigraph(30, 100, 5)
	ix, err := BuildDirected(g, DirectedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.pll")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDirectedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != 30 {
		t.Fatal("vertex count lost")
	}
}

func TestDirectedLoadRejectsCorruption(t *testing.T) {
	g := gen.RandomDigraph(40, 150, 7)
	ix, err := BuildDirected(g, DirectedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	bad := append([]byte{}, full...)
	bad[7] = '9'
	if _, err := LoadDirected(bytes.NewReader(bad)); !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("magic err = %v", err)
	}
	for cut := 0; cut < len(full)-1; cut += 83 {
		if _, err := LoadDirected(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadIndexFile) {
			t.Fatalf("truncation at %d: %v", cut, err)
		}
	}
	if _, err := LoadDirectedFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestFormatsRejectCrossLoading(t *testing.T) {
	// A weighted file must not load as plain/directed and vice versa.
	wg := randomWeightedGraph(9, 30, 5)
	wix, err := BuildWeighted(wg, WeightedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wbuf bytes.Buffer
	if err := wix.Save(&wbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(wbuf.Bytes())); !errors.Is(err, ErrBadIndexFile) {
		t.Fatal("plain loader accepted weighted file")
	}
	if _, err := LoadDirected(bytes.NewReader(wbuf.Bytes())); !errors.Is(err, ErrBadIndexFile) {
		t.Fatal("directed loader accepted weighted file")
	}
	if _, err := LoadCompressed(bytes.NewReader(wbuf.Bytes())); !errors.Is(err, ErrBadIndexFile) {
		t.Fatal("compressed loader accepted weighted file")
	}
}
