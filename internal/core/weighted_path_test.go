package core

import (
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/rng"
)

func TestWeightedQueryPathValid(t *testing.T) {
	check := func(seed uint64) bool {
		wg := randomWeightedGraph(seed, 40, 12)
		ix, err := BuildWeighted(wg, WeightedOptions{Seed: seed, StorePaths: true})
		if err != nil {
			return false
		}
		n := int32(wg.NumVertices())
		r := rng.New(seed ^ 0x9afe)
		for i := 0; i < 15; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			truth := bfs.DijkstraDistance(wg, s, u)
			p, w, err := ix.QueryPath(s, u)
			if err != nil {
				return false
			}
			if truth == bfs.InfWeight {
				if p != nil || w != UnreachableW {
					return false
				}
				continue
			}
			if w != truth || len(p) == 0 || p[0] != s || p[len(p)-1] != u {
				return false
			}
			// The path must exist and its edge weights must sum to w.
			sum := uint64(0)
			for j := 1; j < len(p); j++ {
				wt, ok := edgeWeight(wg, p[j-1], p[j])
				if !ok {
					return false
				}
				sum += uint64(wt)
			}
			if sum != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func edgeWeight(g *graph.Weighted, a, b int32) (uint32, bool) {
	ws := g.Weights(a)
	for i, u := range g.Neighbors(a) {
		if u == b {
			return ws[i], true
		}
	}
	return 0, false
}

func TestWeightedQueryPathSelf(t *testing.T) {
	wg := graph.UniformWeighted(gen.Path(5), 3)
	ix, err := BuildWeighted(wg, WeightedOptions{StorePaths: true})
	if err != nil {
		t.Fatal(err)
	}
	p, w, err := ix.QueryPath(2, 2)
	if err != nil || w != 0 || len(p) != 1 {
		t.Fatalf("self path = %v, %d, %v", p, w, err)
	}
	if !ix.HasPaths() {
		t.Fatal("HasPaths should be true")
	}
}

func TestWeightedQueryPathRequiresStorePaths(t *testing.T) {
	wg := graph.UniformWeighted(gen.Path(5), 1)
	ix, err := BuildWeighted(wg, WeightedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.QueryPath(0, 4); err == nil {
		t.Fatal("expected error without StorePaths")
	}
	if ix.HasPaths() {
		t.Fatal("HasPaths should be false")
	}
}

func TestWeightedSaveRejectsParents(t *testing.T) {
	wg := graph.UniformWeighted(gen.Path(5), 1)
	ix, err := BuildWeighted(wg, WeightedOptions{StorePaths: true})
	if err != nil {
		t.Fatal(err)
	}
	var sink discardWriter
	if err := ix.Save(&sink); err == nil {
		t.Fatal("expected error saving a path-storing weighted index")
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
