package core

import (
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/order"
	"pll/internal/rng"
)

func randomWeightedGraph(seed uint64, maxN int, maxW uint32) *graph.Weighted {
	g := randomGraph(seed, maxN)
	return gen.RandomWeights(g, 1, maxW, seed^0x77)
}

func TestWeightedMatchesDijkstra(t *testing.T) {
	check := func(seed uint64) bool {
		wg := randomWeightedGraph(seed, 50, 20)
		ix, err := BuildWeighted(wg, WeightedOptions{Seed: seed})
		if err != nil {
			return false
		}
		n := int32(wg.NumVertices())
		r := rng.New(seed ^ 0xd1d1)
		for i := 0; i < 25; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			want := bfs.DijkstraDistance(wg, s, u)
			got := ix.Query(s, u)
			if want == bfs.InfWeight {
				if got != UnreachableW {
					return false
				}
			} else if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedUniformMatchesUnweighted(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 7)
	wg := graph.UniformWeighted(g, 1)
	wix, err := BuildWeighted(wg, WeightedOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	uix := buildOrFail(t, g, Options{Seed: 3})
	for _, p := range randPairs(120, 200, 9) {
		got := wix.Query(p[0], p[1])
		want := uix.Query(p[0], p[1])
		if want == Unreachable {
			if got != UnreachableW {
				t.Fatalf("(%d,%d): weighted %d, unweighted unreachable", p[0], p[1], got)
			}
			continue
		}
		if got != uint64(want) {
			t.Fatalf("(%d,%d): weighted %d, unweighted %d", p[0], p[1], got, want)
		}
	}
}

func TestWeightedScaledWeightsScaleDistances(t *testing.T) {
	g := gen.BarabasiAlbert(80, 2, 5)
	w1 := graph.UniformWeighted(g, 1)
	w7 := graph.UniformWeighted(g, 7)
	ix1, err := BuildWeighted(w1, WeightedOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ix7, err := BuildWeighted(w7, WeightedOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range randPairs(80, 100, 4) {
		d1, d7 := ix1.Query(p[0], p[1]), ix7.Query(p[0], p[1])
		if d1 == UnreachableW {
			if d7 != UnreachableW {
				t.Fatal("reachability mismatch")
			}
			continue
		}
		if d7 != 7*d1 {
			t.Fatalf("(%d,%d): d7=%d, want 7*%d", p[0], p[1], d7, d1)
		}
	}
}

func TestWeightedSelfAndDisconnected(t *testing.T) {
	wg, err := graph.NewWeighted(4, []graph.WeightedEdge{{U: 0, V: 1, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildWeighted(wg, WeightedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Query(2, 2); d != 0 {
		t.Fatalf("self distance %d", d)
	}
	if d := ix.Query(0, 3); d != UnreachableW {
		t.Fatalf("disconnected distance %d", d)
	}
	if d := ix.Query(0, 1); d != 3 {
		t.Fatalf("edge distance %d, want 3", d)
	}
}

func TestWeightedZeroWeightEdges(t *testing.T) {
	wg, err := graph.NewWeighted(3, []graph.WeightedEdge{
		{U: 0, V: 1, Weight: 0},
		{U: 1, V: 2, Weight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildWeighted(wg, WeightedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Query(0, 2); d != 4 {
		t.Fatalf("distance with zero-weight edge = %d, want 4", d)
	}
}

func TestWeightedLabelStats(t *testing.T) {
	wg := randomWeightedGraph(5, 60, 10)
	ix, err := BuildWeighted(wg, WeightedOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumVertices() != wg.NumVertices() {
		t.Fatal("vertex count mismatch")
	}
	if ix.AvgLabelSize() <= 0 {
		t.Fatal("average label size should be positive")
	}
	total := 0
	for v := int32(0); int(v) < wg.NumVertices(); v++ {
		total += ix.LabelSize(v)
	}
	if float64(total)/float64(wg.NumVertices()) != ix.AvgLabelSize() {
		t.Fatal("AvgLabelSize disagrees with per-vertex sizes")
	}
}

func TestWeightedCustomOrderValidation(t *testing.T) {
	wg := graph.UniformWeighted(gen.Path(4), 1)
	if _, err := BuildWeighted(wg, WeightedOptions{CustomOrder: []int32{0}}); err == nil {
		t.Fatal("expected error for short order")
	}
	if _, err := BuildWeighted(wg, WeightedOptions{CustomOrder: []int32{0, 0, 1, 2}}); err == nil {
		t.Fatal("expected error for duplicate order")
	}
}

func TestWeightedOrderingStrategies(t *testing.T) {
	wg := randomWeightedGraph(11, 50, 8)
	for _, s := range []order.Strategy{order.Degree, order.Random, order.Closeness} {
		ix, err := BuildWeighted(wg, WeightedOptions{Ordering: s, Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		n := int32(wg.NumVertices())
		r := rng.New(uint64(s) + 13)
		for i := 0; i < 20; i++ {
			a, b := r.Int31n(n), r.Int31n(n)
			want := bfs.DijkstraDistance(wg, a, b)
			got := ix.Query(a, b)
			if want == bfs.InfWeight {
				if got != UnreachableW {
					t.Fatalf("%v: reachability mismatch (%d,%d)", s, a, b)
				}
			} else if got != want {
				t.Fatalf("%v: Query(%d,%d)=%d, want %d", s, a, b, got, want)
			}
		}
	}
}

func BenchmarkWeightedConstruction(b *testing.B) {
	wg := gen.RandomWeights(gen.BarabasiAlbert(1000, 4, 1), 1, 100, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildWeighted(wg, WeightedOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeightedQuery(b *testing.B) {
	wg := gen.RandomWeights(gen.BarabasiAlbert(5000, 4, 1), 1, 100, 2)
	ix, err := BuildWeighted(wg, WeightedOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pairs := randPairs(5000, 1024, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		ix.Query(p[0], p[1])
	}
}
