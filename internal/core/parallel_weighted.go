package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Batch-parallel construction for the weighted variant: the scheme of
// parallel.go with pruned Dijkstra searches. The superset/exactness
// argument carries over unchanged — a search pruning against fewer
// labels settles a superset of vertices, each at its exact distance —
// and the weighted prune test has no bit-parallel part, so the merge is
// the same label-tail re-test. Path-storing builds replay the exact
// heap discipline (parents depend on pop order) with candidate-mark
// prune decisions.

// wgtCand is one vertex settled by a relaxed batch Dijkstra.
type wgtCand struct {
	v      int32
	par    int32
	d      uint32
	pruned bool
}

func (wb *wgtBuilder) runParallel(workers int) error {
	if wb.storePaths {
		wb.candD = make([]uint32, wb.n)
		wb.candPruned = make([]bool, wb.n)
		for i := range wb.candD {
			wb.candD[i] = InfWeight32
		}
	}
	scratches := make([]*wgtScratch, workers)
	cands := make([][]wgtCand, maxPrunedBatch)
	overflow := make([]bool, maxPrunedBatch)

	done := 0
	for done < wb.n {
		size := prunedBatchSize(done, workers)
		if size > wb.n-done {
			size = wb.n - done
		}
		batchStart := int32(done)
		done += size
		if size == 1 {
			if err := wb.prunedDijkstra(batchStart); err != nil {
				return err
			}
			continue
		}

		spawn := workers
		if spawn > size {
			spawn = size
		}
		var wg sync.WaitGroup
		next := int32(-1)
		for w := 0; w < spawn; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if scratches[w] == nil {
					scratches[w] = newWgtScratch(wb.n, wb.storePaths)
				}
				sc := scratches[w]
				for {
					i := int(atomic.AddInt32(&next, 1))
					if i >= size {
						return
					}
					cands[i], overflow[i] = wb.relaxedDijkstra(batchStart+int32(i), sc, cands[i][:0])
				}
			}(w)
		}
		wg.Wait()

		for i := 0; i < size; i++ {
			vk := batchStart + int32(i)
			switch {
			case overflow[i]:
				// The relaxed search blew the 32-bit label budget; the
				// sequential search prunes harder and might not. Fall
				// back to it — failing identically if it does.
				if err := wb.prunedDijkstra(vk); err != nil {
					return err
				}
			case wb.storePaths:
				if err := wb.replayDijkstra(vk, batchStart, cands[i]); err != nil {
					return err
				}
			default:
				wb.mergeCands(vk, batchStart, cands[i])
			}
		}
	}
	return nil
}

// relaxedDijkstra runs root vk's pruned Dijkstra against the frozen
// labels, writing nothing but sc and cands. overflow reports a settled
// distance beyond the 32-bit label budget. Unlike the BFS variants, no
// at-the-budget-edge guard is needed: the sequential budget check fires
// on the settled (exact) distance of a non-pruned pop, and any vertex
// the sequential search settles non-pruned beyond the budget is settled
// at the same exact distance here (the frozen labels prune less), so
// this search always overflows whenever the sequential one would.
func (wb *wgtBuilder) relaxedDijkstra(vk int32, sc *wgtScratch, cands []wgtCand) (_ []wgtCand, overflow bool) {
	lv, ld := wb.labV[vk], wb.labD[vk]
	for i, w := range lv {
		sc.rootLab[w] = uint64(ld[i])
	}
	sc.dist[vk] = 0
	if sc.par != nil {
		sc.par[vk] = -1
	}
	sc.visited = append(sc.visited[:0], vk)
	sc.heap = append(sc.heap[:0], wItem{0, vk})
	for len(sc.heap) > 0 {
		it := sc.heap.pop()
		u, d := it.v, it.dist
		if d != sc.dist[u] {
			continue
		}
		pruned := false
		uv, ud := wb.labV[u], wb.labD[u]
		for i, w := range uv {
			if tw := sc.rootLab[w]; tw != infWeight && tw+uint64(ud[i]) <= d {
				pruned = true
				break
			}
		}
		if pruned {
			if wb.storePaths {
				cands = append(cands, wgtCand{v: u, pruned: true})
			}
			continue
		}
		if d > uint64(InfWeight32)-1 {
			overflow = true
			break
		}
		c := wgtCand{v: u, d: uint32(d)}
		if wb.storePaths {
			c.par = sc.par[u]
		}
		cands = append(cands, c)
		ws := wb.h.Weights(u)
		for i, w := range wb.h.Neighbors(u) {
			nd := d + uint64(ws[i])
			if nd < sc.dist[w] {
				if sc.dist[w] == infWeight {
					sc.visited = append(sc.visited, w)
				}
				sc.dist[w] = nd
				if sc.par != nil {
					sc.par[w] = u
				}
				sc.heap.push(wItem{nd, w})
			}
		}
	}
	sc.reset(lv)
	return cands, overflow
}

// mergeCands finalizes root vk's batch search by re-testing each
// candidate against the label-tail entries with hub >= batchStart (the
// only ones the relaxed search could not see) and appending survivors.
func (wb *wgtBuilder) mergeCands(vk, batchStart int32, cands []wgtCand) {
	lv, ld := wb.labV[vk], wb.labD[vk]
	rl := wb.sc.rootLab
	for i, w := range lv {
		rl[w] = uint64(ld[i])
	}
	for _, c := range cands {
		u, d := c.v, uint64(c.d)
		uv, ud := wb.labV[u], wb.labD[u]
		covered := false
		for i := len(uv) - 1; i >= 0 && uv[i] >= batchStart; i-- {
			if tw := rl[uv[i]]; tw != infWeight && tw+uint64(ud[i]) <= d {
				covered = true
				break
			}
		}
		if !covered {
			wb.labV[u] = append(wb.labV[u], vk)
			wb.labD[u] = append(wb.labD[u], c.d)
		}
	}
	for _, w := range lv {
		rl[w] = infWeight
	}
}

// replayDijkstra is the path-storing merge: it reproduces the exact
// sequential heap discipline (Dijkstra-tree parents depend on pop and
// relaxation order) with candidate-mark prune decisions plus a
// label-tail scan.
func (wb *wgtBuilder) replayDijkstra(vk, batchStart int32, cands []wgtCand) error {
	for _, c := range cands {
		if c.pruned {
			wb.candPruned[c.v] = true
		} else {
			wb.candD[c.v] = c.d
		}
	}

	sc := &wb.sc
	lv, ld := wb.labV[vk], wb.labD[vk]
	for i, w := range lv {
		sc.rootLab[w] = uint64(ld[i])
	}
	sc.dist[vk] = 0
	sc.par[vk] = -1
	sc.visited = append(sc.visited[:0], vk)
	sc.heap = append(sc.heap[:0], wItem{0, vk})
	var err error
	for len(sc.heap) > 0 {
		it := sc.heap.pop()
		u, d := it.v, it.dist
		if d != sc.dist[u] {
			continue
		}
		covered := true
		if !wb.candPruned[u] && wb.candD[u] != InfWeight32 && uint64(wb.candD[u]) == d {
			covered = false
			uv, ud := wb.labV[u], wb.labD[u]
			for i := len(uv) - 1; i >= 0 && uv[i] >= batchStart; i-- {
				if tw := sc.rootLab[uv[i]]; tw != infWeight && tw+uint64(ud[i]) <= d {
					covered = true
					break
				}
			}
		}
		if covered {
			continue
		}
		if d > uint64(InfWeight32)-1 {
			// Unreachable: the relaxed search settles every vertex at a
			// distance <= the replay's, so it would have overflowed
			// first and taken the fallback path.
			err = fmt.Errorf("core: weighted distance %d exceeds 32-bit label budget", d)
			break
		}
		wb.labV[u] = append(wb.labV[u], vk)
		wb.labD[u] = append(wb.labD[u], uint32(d))
		wb.labP[u] = append(wb.labP[u], sc.par[u])
		ws := wb.h.Weights(u)
		for i, w := range wb.h.Neighbors(u) {
			nd := d + uint64(ws[i])
			if nd < sc.dist[w] {
				if sc.dist[w] == infWeight {
					sc.visited = append(sc.visited, w)
				}
				sc.dist[w] = nd
				sc.par[w] = u
				sc.heap.push(wItem{nd, w})
			}
		}
	}
	sc.reset(lv)
	for _, c := range cands {
		if c.pruned {
			wb.candPruned[c.v] = false
		} else {
			wb.candD[c.v] = InfWeight32
		}
	}
	return err
}
