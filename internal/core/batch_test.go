package core

import (
	"testing"
	"testing/quick"

	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/rng"
)

func TestBatchSourceMatchesQuery(t *testing.T) {
	check := func(seed uint64, bp uint8) bool {
		g := randomGraph(seed, 60)
		ix, err := Build(g, Options{Seed: seed, NumBitParallel: int(bp % 6)})
		if err != nil {
			return false
		}
		n := int32(g.NumVertices())
		r := rng.New(seed ^ 0xba7c4)
		s := r.Int31n(n)
		bs := ix.NewBatchSource(s)
		for i := 0; i < 40; i++ {
			u := r.Int31n(n)
			if bs.Query(u) != ix.Query(s, u) {
				return false
			}
		}
		// Reset to a second source and re-check.
		s2 := r.Int31n(n)
		bs.Reset(s2)
		if bs.Source() != s2 {
			return false
		}
		for i := 0; i < 40; i++ {
			u := r.Int31n(n)
			if bs.Query(u) != ix.Query(s2, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSourceSelf(t *testing.T) {
	g := gen.Path(10)
	ix := buildOrFail(t, g, Options{})
	bs := ix.NewBatchSource(3)
	if bs.Query(3) != 0 {
		t.Fatal("self distance wrong")
	}
}

func TestBatchSourceDisconnected(t *testing.T) {
	// Star plus one isolated vertex.
	gBig, err := graph.NewGraph(6, gen.Star(5).Edges())
	if err != nil {
		t.Fatal(err)
	}
	ix := buildOrFail(t, gBig, Options{})
	bs := ix.NewBatchSource(0)
	if bs.Query(5) != Unreachable {
		t.Fatal("expected unreachable")
	}
}

func TestVerifyAcceptsFreshIndexes(t *testing.T) {
	for _, bp := range []int{0, 4} {
		g := gen.BarabasiAlbert(150, 3, 7)
		ix := buildOrFail(t, g, Options{NumBitParallel: bp, Seed: 1})
		if err := ix.Verify(g, VerifyOptions{SampledPairs: 300, Seed: 2}); err != nil {
			t.Fatalf("bp=%d: %v", bp, err)
		}
	}
}

func TestVerifyRejectsWrongGraph(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 1)
	other := gen.BarabasiAlbert(100, 2, 2) // different topology, same size
	ix := buildOrFail(t, g, Options{Seed: 1})
	if err := ix.Verify(other, VerifyOptions{SampledPairs: 500, Seed: 3}); err == nil {
		t.Fatal("verification against a different graph should fail")
	}
	small := gen.Path(5)
	if err := ix.Verify(small, VerifyOptions{}); err == nil {
		t.Fatal("verification against a smaller graph should fail")
	}
}

func TestVerifyDetectsCorruptedLabels(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 5)
	ix := buildOrFail(t, g, Options{Seed: 1})
	// Corrupt one label distance.
	for i := range ix.labelDist {
		if ix.labelDist[i] != InfDist && ix.labelDist[i] > 0 {
			ix.labelDist[i]++
			break
		}
	}
	if err := ix.Verify(g, VerifyOptions{SampledPairs: 2000, Seed: 4}); err == nil {
		t.Fatal("verification should detect a corrupted distance")
	}
}

func TestVerifySkipsExactnessWhenNegative(t *testing.T) {
	g := gen.Path(10)
	ix := buildOrFail(t, g, Options{})
	if err := ix.Verify(g, VerifyOptions{SampledPairs: -1}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBatchSourceQuery(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 5, 1)
	ix, err := Build(g, Options{NumBitParallel: 8})
	if err != nil {
		b.Fatal(err)
	}
	bs := ix.NewBatchSource(0)
	targets := make([]int32, 1024)
	r := rng.New(5)
	for i := range targets {
		targets[i] = r.Int31n(20000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Query(targets[i&1023])
	}
}

func BenchmarkPairwiseQueryForComparison(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 5, 1)
	ix, err := Build(g, Options{NumBitParallel: 8})
	if err != nil {
		b.Fatal(err)
	}
	targets := make([]int32, 1024)
	r := rng.New(5)
	for i := range targets {
		targets[i] = r.Int31n(20000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(0, targets[i&1023])
	}
}
