package core

import (
	"fmt"

	"pll/internal/bfs"
	"pll/internal/graph"
	"pll/internal/rng"
)

// VerifyOptions configures Verify.
type VerifyOptions struct {
	// SampledPairs is the number of random pairs cross-checked against
	// BFS ground truth (default 1000; 0 keeps the default, negative
	// skips the exactness check).
	SampledPairs int
	// Seed drives the pair sampling.
	Seed uint64
}

// Verify checks an index against the graph it claims to cover: the
// structural invariants of the label arrays (strict hub sorting,
// sentinels, the canonical hub-rank property, finite distances) and the
// exactness of sampled queries. It returns a descriptive error on the
// first violation. Intended for debugging pipelines that move indexes
// between systems; it is O(index + pairs·BFS), not cheap.
func (ix *Index) Verify(g *graph.Graph, opt VerifyOptions) error {
	if g.NumVertices() != ix.n {
		return fmt.Errorf("core: verify: graph has %d vertices, index %d", g.NumVertices(), ix.n)
	}
	if len(ix.perm) != ix.n || len(ix.rank) != ix.n {
		return fmt.Errorf("core: verify: permutation arrays sized %d/%d, want %d", len(ix.perm), len(ix.rank), ix.n)
	}
	for r := 0; r < ix.n; r++ {
		if ix.rank[ix.perm[r]] != int32(r) {
			return fmt.Errorf("core: verify: rank/perm mismatch at rank %d", r)
		}
	}
	// Label structure.
	if len(ix.labelOff) != ix.n+1 {
		return fmt.Errorf("core: verify: labelOff length %d, want %d", len(ix.labelOff), ix.n+1)
	}
	for r := 0; r < ix.n; r++ {
		lo, hi := ix.labelOff[r], ix.labelOff[r+1]
		if hi <= lo {
			return fmt.Errorf("core: verify: vertex rank %d has no sentinel slot", r)
		}
		if ix.labelVertex[hi-1] != int32(ix.n) || ix.labelDist[hi-1] != InfDist {
			return fmt.Errorf("core: verify: vertex rank %d missing sentinel", r)
		}
		prev := int32(-1)
		for i := lo; i < hi-1; i++ {
			hub := ix.labelVertex[i]
			if hub <= prev {
				return fmt.Errorf("core: verify: label of rank %d not strictly sorted at entry %d", r, i-lo)
			}
			prev = hub
			if hub < 0 || int(hub) >= ix.n {
				return fmt.Errorf("core: verify: hub rank %d out of range in label of rank %d", hub, r)
			}
			if hub > int32(r) {
				return fmt.Errorf("core: verify: canonical property violated: hub rank %d > vertex rank %d", hub, r)
			}
			if ix.labelDist[i] == InfDist {
				return fmt.Errorf("core: verify: infinite distance stored in label of rank %d", r)
			}
		}
	}
	// Bit-parallel block sizes.
	if len(ix.bpDist) != ix.numBP*ix.n || len(ix.bpS1) != ix.numBP*ix.n || len(ix.bpS0) != ix.numBP*ix.n {
		return fmt.Errorf("core: verify: bit-parallel arrays sized %d/%d/%d, want %d",
			len(ix.bpDist), len(ix.bpS1), len(ix.bpS0), ix.numBP*ix.n)
	}
	// Sampled exactness.
	pairs := opt.SampledPairs
	if pairs == 0 {
		pairs = 1000
	}
	if pairs < 0 || ix.n == 0 {
		return nil
	}
	r := rng.New(opt.Seed)
	for i := 0; i < pairs; i++ {
		s := r.Int31n(int32(ix.n))
		t := r.Int31n(int32(ix.n))
		want := bfs.Distance(g, s, t)
		got := ix.Query(s, t)
		if want == bfs.Unreachable {
			if got != Unreachable {
				return fmt.Errorf("core: verify: Query(%d,%d) = %d, want unreachable", s, t, got)
			}
			continue
		}
		if got != int(want) {
			return fmt.Errorf("core: verify: Query(%d,%d) = %d, want %d", s, t, got, want)
		}
	}
	return nil
}
