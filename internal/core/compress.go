package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Compressed index format, version 1 ("PLLIDXC1"). The paper's §8 lists
// index-size reduction as future work; this format applies the two
// standard tricks for hub labels:
//
//   - hub ranks are stored as varint *deltas* within each (sorted)
//     per-vertex label, which shrinks them dramatically because early
//     ranks dominate labels;
//   - distances are stored as raw bytes (they are tiny already).
//
// Compressed files answer the same queries after LoadCompressed; the
// DiskIndex fast path requires the fixed-stride uncompressed format.
var compressedMagic = [8]byte{'P', 'L', 'L', 'I', 'D', 'X', 'C', '1'}

// SaveCompressed writes the index with delta-varint label encoding.
// Parent pointers (StorePaths) are not supported in the compressed
// format; use Save for path-reconstructing indexes.
func (ix *Index) SaveCompressed(w io.Writer) error {
	if ix.labelParent != nil {
		return fmt.Errorf("core: compressed format does not support parent pointers")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(compressedMagic[:]); err != nil {
		return err
	}
	writeU64(bw, uint64(ix.n))
	writeU64(bw, uint64(ix.numBP))
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:k])
		return err
	}
	for _, v := range ix.perm {
		if err := putUvarint(uint64(v)); err != nil {
			return err
		}
	}
	for r := 0; r < ix.n; r++ {
		lo, hi := ix.labelOff[r], ix.labelOff[r+1]-1
		if err := putUvarint(uint64(hi - lo)); err != nil {
			return err
		}
		prev := int64(-1)
		for i := lo; i < hi; i++ {
			hub := int64(ix.labelVertex[i])
			if err := putUvarint(uint64(hub - prev - 1)); err != nil {
				return err
			}
			prev = hub
			if err := bw.WriteByte(ix.labelDist[i]); err != nil {
				return err
			}
		}
	}
	if _, err := bw.Write(ix.bpDist); err != nil {
		return err
	}
	for _, v := range ix.bpS1 {
		writeU64(bw, v)
	}
	for _, v := range ix.bpS0 {
		writeU64(bw, v)
	}
	return bw.Flush()
}

// SaveCompressedFile writes the compressed index to a path.
func (ix *Index) SaveCompressedFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.SaveCompressed(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCompressed reads an index written by SaveCompressed.
func LoadCompressed(r io.Reader) (*Index, error) {
	return loadCompressedPayload(bufio.NewReaderSize(r, 1<<20))
}

// loadCompressedPayload reads the compressed payload format from an
// established reader (shared with the container dispatcher).
func loadCompressedPayload(br *bufio.Reader) (*Index, error) {
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadIndexFile, err)
	}
	if magic != compressedMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadIndexFile, magic[:])
	}
	var fixed [16]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadIndexFile, err)
	}
	n64 := binary.LittleEndian.Uint64(fixed[0:])
	bp64 := binary.LittleEndian.Uint64(fixed[8:])
	if n64 > 1<<31-1 || bp64 > 1<<16 {
		return nil, fmt.Errorf("%w: implausible sizes n=%d numBP=%d", ErrBadIndexFile, n64, bp64)
	}
	n := int(n64)
	ix := &Index{n: n, numBP: int(bp64)}
	// The permutation grows by append (duplicates checked after the
	// bytes actually arrived) so a bogus n cannot force a huge upfront
	// allocation; see allocChunk in serialize.go.
	rawPerm := make([]uint32, 0, min(n, allocChunk/4))
	for i := 0; i < n; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated permutation: %v", ErrBadIndexFile, err)
		}
		if v >= uint64(n) {
			return nil, fmt.Errorf("%w: invalid permutation entry %d", ErrBadIndexFile, v)
		}
		rawPerm = append(rawPerm, uint32(v))
	}
	var err error
	if ix.perm, ix.rank, err = permFromRaw(rawPerm, n); err != nil {
		return nil, err
	}
	//pllvet:ignore untrustedalloc n is paid for: the permutation loop above read n uvarints
	ix.labelOff = make([]int64, n+1)
	// Two passes are avoided by growing slices; labels are modest.
	ix.labelVertex = make([]int32, 0, min(n*2, allocChunk/4))
	ix.labelDist = make([]uint8, 0, min(n*2, allocChunk))
	w := int64(0)
	for v := 0; v < n; v++ {
		ix.labelOff[v] = w
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated label count at %d: %v", ErrBadIndexFile, v, err)
		}
		if count > uint64(n) {
			return nil, fmt.Errorf("%w: label count %d exceeds n at %d", ErrBadIndexFile, count, v)
		}
		prev := int64(-1)
		for k := uint64(0); k < count; k++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: truncated label delta at %d: %v", ErrBadIndexFile, v, err)
			}
			hub := prev + 1 + int64(delta)
			if hub >= int64(n) {
				return nil, fmt.Errorf("%w: hub rank %d out of range at %d", ErrBadIndexFile, hub, v)
			}
			prev = hub
			d, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("%w: truncated label distance at %d: %v", ErrBadIndexFile, v, err)
			}
			ix.labelVertex = append(ix.labelVertex, int32(hub))
			ix.labelDist = append(ix.labelDist, d)
			w++
		}
		ix.labelVertex = append(ix.labelVertex, int32(n))
		ix.labelDist = append(ix.labelDist, InfDist)
		w++
	}
	ix.labelOff[n] = w
	bpTotal := int64(ix.numBP) * int64(n)
	if ix.bpDist, err = readBytesCapped(br, bpTotal, "bit-parallel distances"); err != nil {
		return nil, err
	}
	if ix.bpS1, err = readU64sCapped(br, bpTotal, "S-1 sets"); err != nil {
		return nil, err
	}
	if ix.bpS0, err = readU64sCapped(br, bpTotal, "S0 sets"); err != nil {
		return nil, err
	}
	return ix, nil
}

// LoadCompressedFile reads a compressed index from a path.
func LoadCompressedFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCompressed(f)
}
