package core

import (
	"math/rand"
	"sort"
	"testing"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/order"
)

// bruteNeighbors derives the expected search answers from a
// ground-truth distance row: exclude the source, keep reachable
// vertices, order by (distance, vertex), trim to k keeping smallest
// IDs at the cutoff (k <= 0 means no trim, i.e. a range query's full
// set).
func bruteNeighbors(dist []int64, s int32, radius int64, k int) []Neighbor {
	var out []Neighbor
	for v, d := range dist {
		if int32(v) == s || d < 0 {
			continue
		}
		if radius >= 0 && d > radius {
			continue
		}
		out = append(out, Neighbor{Vertex: int32(v), Distance: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Vertex < out[j].Vertex
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// searchOracle is the per-variant query surface under test.
type searchOracle interface {
	KNN(s int32, k int) []Neighbor
	SearchRange(s int32, radius int64) []Neighbor
	NewVertexSet(members []int32) (*VertexSet, error)
	KNNIn(s int32, set *VertexSet, k int) ([]Neighbor, error)
}

// checkSearch cross-validates KNN, SearchRange and KNNIn against the
// ground-truth row oracle for a handful of sources, k values and
// radii.
func checkSearch(t *testing.T, name string, n int, o searchOracle, truth func(s int32) []int64) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	members := make([]int32, 0, n/3+1)
	for v := 0; v < n; v++ {
		if r.Intn(3) == 0 {
			members = append(members, int32(v))
		}
	}
	if len(members) == 0 {
		members = append(members, int32(0))
	}
	set, err := o.NewVertexSet(members)
	if err != nil {
		t.Fatalf("%s: NewVertexSet: %v", name, err)
	}
	inSet := make(map[int32]bool, len(members))
	for _, m := range members {
		inSet[m] = true
	}

	sources := []int32{0, int32(n - 1)}
	for i := 0; i < 6; i++ {
		sources = append(sources, int32(r.Intn(n)))
	}
	for _, s := range sources {
		row := truth(s)
		var maxd int64
		for _, d := range row {
			if d > maxd {
				maxd = d
			}
		}
		for _, k := range []int{1, 2, 5, n / 2, n, n + 7} {
			if k <= 0 {
				continue
			}
			got := o.KNN(s, k)
			want := bruteNeighbors(row, s, -1, k)
			if !neighborsEqual(got, want) {
				t.Fatalf("%s: KNN(%d, %d) = %v, want %v", name, s, k, got, want)
			}
			gotIn, err := o.KNNIn(s, set, k)
			if err != nil {
				t.Fatalf("%s: KNNIn(%d, %d): %v", name, s, k, err)
			}
			rowIn := make([]int64, len(row))
			for v := range rowIn {
				if inSet[int32(v)] {
					rowIn[v] = row[v]
				} else {
					rowIn[v] = -1
				}
			}
			wantIn := bruteNeighbors(rowIn, s, -1, k)
			if !neighborsEqual(gotIn, wantIn) {
				t.Fatalf("%s: KNNIn(%d, %d) = %v, want %v", name, s, k, gotIn, wantIn)
			}
		}
		for _, radius := range []int64{0, 1, 2, maxd / 2, maxd, maxd + 3} {
			got := o.SearchRange(s, radius)
			want := bruteNeighbors(row, s, radius, 0)
			if !neighborsEqual(got, want) {
				t.Fatalf("%s: SearchRange(%d, %d) = %v, want %v", name, s, radius, got, want)
			}
		}
	}
}

func TestSearchUndirected(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		m    int64
		bp   int
	}{
		{"sparse-bp0", 60, 90, 0},
		{"sparse-bp4", 60, 90, 4},
		{"dense-bp8", 80, 400, 8},
		{"tiny-bp2", 9, 10, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := gen.ErdosRenyi(tc.n, tc.m, 7)
			ix, err := Build(g, Options{Ordering: order.Degree, Seed: 7, NumBitParallel: tc.bp})
			if err != nil {
				t.Fatal(err)
			}
			checkSearch(t, tc.name, tc.n, ix, func(s int32) []int64 {
				row := bfs.AllDistances(g, s)
				out := make([]int64, len(row))
				for i, d := range row {
					out[i] = int64(d)
				}
				return out
			})
		})
	}
}

func TestSearchUndirectedPaths(t *testing.T) {
	g := gen.ErdosRenyi(50, 80, 11)
	ix, err := Build(g, Options{Ordering: order.Degree, Seed: 11, StorePaths: true})
	if err != nil {
		t.Fatal(err)
	}
	checkSearch(t, "paths", 50, ix, func(s int32) []int64 {
		row := bfs.AllDistances(g, s)
		out := make([]int64, len(row))
		for i, d := range row {
			out[i] = int64(d)
		}
		return out
	})
}

func TestSearchDirected(t *testing.T) {
	n := 70
	dg := gen.RandomDigraph(n, 200, 13)
	ix, err := BuildDirected(dg, DirectedOptions{Ordering: order.Degree, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	checkSearch(t, "directed", n, ix, func(s int32) []int64 {
		row := bfs.DirectedAllDistances(dg, s, true)
		out := make([]int64, len(row))
		for i, d := range row {
			out[i] = int64(d)
		}
		return out
	})
}

func TestSearchWeighted(t *testing.T) {
	n := 60
	gg := gen.ErdosRenyi(n, 140, 17)
	wg := gen.RandomWeights(gg, 1, 9, 18)
	ix, err := BuildWeighted(wg, WeightedOptions{Ordering: order.Degree, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	checkSearch(t, "weighted", n, ix, func(s int32) []int64 {
		row := bfs.DijkstraAll(wg, s)
		out := make([]int64, len(row))
		for i, d := range row {
			if d == bfs.InfWeight {
				out[i] = -1
			} else {
				out[i] = int64(d)
			}
		}
		return out
	})
}

// TestSearchDisconnected pins the edge cases: isolated sources return
// nothing, unreachable vertices never appear, k larger than the
// component returns the whole component.
func TestSearchDisconnected(t *testing.T) {
	// Two components {0,1,2} and {3,4}, vertex 5 isolated.
	g, err := graph.NewGraph(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{NumBitParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.KNN(5, 4); len(got) != 0 {
		t.Fatalf("KNN from isolated vertex = %v, want empty", got)
	}
	if got := ix.SearchRange(5, 10); len(got) != 0 {
		t.Fatalf("SearchRange from isolated vertex = %v, want empty", got)
	}
	got := ix.KNN(0, 10)
	want := []Neighbor{{Vertex: 1, Distance: 1}, {Vertex: 2, Distance: 2}}
	if !neighborsEqual(got, want) {
		t.Fatalf("KNN(0, 10) = %v, want %v", got, want)
	}
	if got := ix.KNN(3, 10); !neighborsEqual(got, []Neighbor{{Vertex: 4, Distance: 1}}) {
		t.Fatalf("KNN(3, 10) = %v", got)
	}
}

// TestSearchSetValidation pins the registration error paths.
func TestSearchSetValidation(t *testing.T) {
	g := gen.ErdosRenyi(20, 40, 3)
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.NewVertexSet([]int32{0, 21}); err == nil {
		t.Fatal("NewVertexSet accepted an out-of-range member")
	}
	other, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	set, err := other.NewVertexSet([]int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.KNNIn(0, set, 2); err != ErrForeignSet {
		t.Fatalf("KNNIn with a foreign set: err = %v, want ErrForeignSet", err)
	}
	// Duplicates collapse.
	dup, err := ix.NewVertexSet([]int32{4, 4, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if dup.Size() != 2 {
		t.Fatalf("set of {4,4,4,5} has size %d, want 2", dup.Size())
	}
}

// TestSearchStats pins the hub-occupancy fields: the path graph
// 0-1-2-3 under a fixed order has a predictable inversion.
func TestSearchStats(t *testing.T) {
	g, err := graph.NewGraph(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := ix.ComputeStats()
	if st.DistinctHubs <= 0 || st.MaxHubLoad <= 0 || st.AvgHubLoad <= 0 {
		t.Fatalf("hub occupancy not populated: %+v", st)
	}
	if int64(st.DistinctHubs)*int64(st.MaxHubLoad) < st.TotalLabelEntries {
		t.Fatalf("occupancy inconsistent with label mass: %+v", st)
	}
}
