package core

import (
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/rng"
)

// hasArc reports whether the digraph has the arc a -> b.
func hasArc(g *graph.Digraph, a, b int32) bool {
	for _, u := range g.OutNeighbors(a) {
		if u == b {
			return true
		}
	}
	return false
}

func TestDirectedQueryPathValid(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(35) + 3
		g := gen.RandomDigraph(n, int64(r.Intn(4*n)+n), seed)
		ix, err := BuildDirected(g, DirectedOptions{Seed: seed, StorePaths: true})
		if err != nil {
			return false
		}
		rr := rng.New(seed ^ 0xd1ec7)
		for i := 0; i < 15; i++ {
			s, u := rr.Int31n(int32(n)), rr.Int31n(int32(n))
			want := bfs.DirectedDistance(g, s, u)
			p, err := ix.QueryPath(s, u)
			if err != nil {
				return false
			}
			if want == bfs.Unreachable {
				if p != nil {
					return false
				}
				continue
			}
			if len(p) != int(want)+1 || p[0] != s || p[len(p)-1] != u {
				return false
			}
			for j := 1; j < len(p); j++ {
				if !hasArc(g, p[j-1], p[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedQueryPathOneWay(t *testing.T) {
	g, err := graph.NewDigraph(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildDirected(g, DirectedOptions{StorePaths: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ix.QueryPath(0, 3)
	if err != nil || len(p) != 4 {
		t.Fatalf("forward path = %v, %v", p, err)
	}
	p, err = ix.QueryPath(3, 0)
	if err != nil || p != nil {
		t.Fatalf("reverse path should be nil, got %v, %v", p, err)
	}
	pSelf, err := ix.QueryPath(2, 2)
	if err != nil || len(pSelf) != 1 {
		t.Fatalf("self path = %v, %v", pSelf, err)
	}
	if !ix.HasPaths() {
		t.Fatal("HasPaths should be true")
	}
}

func TestDirectedQueryPathRequiresStorePaths(t *testing.T) {
	g := gen.RandomDigraph(5, 10, 1)
	ix, err := BuildDirected(g, DirectedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.QueryPath(0, 1); err == nil {
		t.Fatal("expected error without StorePaths")
	}
	if ix.HasPaths() {
		t.Fatal("HasPaths should be false")
	}
}

func TestDirectedSaveRejectsParents(t *testing.T) {
	g := gen.RandomDigraph(5, 10, 1)
	ix, err := BuildDirected(g, DirectedOptions{StorePaths: true})
	if err != nil {
		t.Fatal(err)
	}
	var sink discardWriter
	if err := ix.Save(&sink); err == nil {
		t.Fatal("expected error saving a path-storing directed index")
	}
}
