package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Index file format (little endian), version 1:
//
//	magic   [8]byte  "PLLIDX01"
//	flags   uint32   bit 0: parent pointers present
//	n       uint64
//	numBP   uint64
//	perm    n * int32
//	counts  n * uint32          label entries per vertex (no sentinels)
//	labels  per vertex, contiguous:
//	          hub    int32
//	          dist   uint8
//	          parent int32      only if flag bit 0
//	bpDist  numBP*n * uint8
//	bpS1    numBP*n * uint64
//	bpS0    numBP*n * uint64
//
// The per-vertex label block is contiguous so that DiskIndex can answer a
// query with exactly two ranged reads (§6 "Disk-based Query Answering").
var indexMagic = [8]byte{'P', 'L', 'L', 'I', 'D', 'X', '0', '1'}

const flagParents uint32 = 1

// ErrBadIndexFile is wrapped by all load-time format errors.
var ErrBadIndexFile = errors.New("core: malformed index file")

// Save writes the index to w in the versioned binary format.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if ix.labelParent != nil {
		flags |= flagParents
	}
	writeU32(bw, flags)
	writeU64(bw, uint64(ix.n))
	writeU64(bw, uint64(ix.numBP))
	for _, v := range ix.perm {
		writeU32(bw, uint32(v))
	}
	for r := 0; r < ix.n; r++ {
		writeU32(bw, uint32(ix.labelOff[r+1]-ix.labelOff[r]-1))
	}
	for r := 0; r < ix.n; r++ {
		lo, hi := ix.labelOff[r], ix.labelOff[r+1]-1
		for i := lo; i < hi; i++ {
			writeU32(bw, uint32(ix.labelVertex[i]))
			if err := bw.WriteByte(ix.labelDist[i]); err != nil {
				return err
			}
			if ix.labelParent != nil {
				writeU32(bw, uint32(ix.labelParent[i]))
			}
		}
	}
	if _, err := bw.Write(ix.bpDist); err != nil {
		return err
	}
	for _, v := range ix.bpS1 {
		writeU64(bw, v)
	}
	for _, v := range ix.bpS0 {
		writeU64(bw, v)
	}
	return bw.Flush()
}

// SaveFile writes the index to a file path.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index previously written by Save. Any structural problem
// yields an error wrapping ErrBadIndexFile; Load never panics on
// malformed input.
func Load(r io.Reader) (*Index, error) {
	return loadPlain(bufio.NewReaderSize(r, 1<<20))
}

// loadPlain reads the plain payload format from an established reader
// (shared between Load and the container dispatcher).
func loadPlain(br *bufio.Reader) (*Index, error) {
	hdr, err := loadHeader(br)
	if err != nil {
		return nil, err
	}
	ix := &Index{n: hdr.n, numBP: hdr.numBP, perm: hdr.perm, rank: hdr.rank}
	n := hdr.n
	total := int64(0)
	for _, c := range hdr.counts {
		total += int64(c) + 1
	}
	ix.labelOff = make([]int64, n+1)
	ix.labelVertex = make([]int32, total)
	ix.labelDist = make([]uint8, total)
	if hdr.hasParents {
		ix.labelParent = make([]int32, total)
	}
	w := int64(0)
	entry := make([]byte, hdr.entrySize)
	for v := 0; v < n; v++ {
		ix.labelOff[v] = w
		prev := int32(-1)
		for k := uint32(0); k < hdr.counts[v]; k++ {
			if _, err := io.ReadFull(br, entry); err != nil {
				return nil, fmt.Errorf("%w: truncated labels at vertex %d: %v", ErrBadIndexFile, v, err)
			}
			hub := int32(binary.LittleEndian.Uint32(entry))
			if hub < 0 || int(hub) >= n {
				return nil, fmt.Errorf("%w: hub rank %d out of range at vertex %d", ErrBadIndexFile, hub, v)
			}
			if hub <= prev {
				return nil, fmt.Errorf("%w: label of vertex %d not strictly sorted", ErrBadIndexFile, v)
			}
			prev = hub
			ix.labelVertex[w] = hub
			ix.labelDist[w] = entry[4]
			if hdr.hasParents {
				ix.labelParent[w] = int32(binary.LittleEndian.Uint32(entry[5:]))
			}
			w++
		}
		ix.labelVertex[w] = int32(n)
		ix.labelDist[w] = InfDist
		if hdr.hasParents {
			ix.labelParent[w] = -1
		}
		w++
	}
	ix.labelOff[n] = w
	ix.bpDist = make([]uint8, hdr.numBP*n)
	if _, err := io.ReadFull(br, ix.bpDist); err != nil {
		return nil, fmt.Errorf("%w: truncated bit-parallel distances: %v", ErrBadIndexFile, err)
	}
	ix.bpS1 = make([]uint64, hdr.numBP*n)
	ix.bpS0 = make([]uint64, hdr.numBP*n)
	buf := make([]byte, 8)
	for i := range ix.bpS1 {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated bit-parallel S-1 sets: %v", ErrBadIndexFile, err)
		}
		ix.bpS1[i] = binary.LittleEndian.Uint64(buf)
	}
	for i := range ix.bpS0 {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated bit-parallel S0 sets: %v", ErrBadIndexFile, err)
		}
		ix.bpS0[i] = binary.LittleEndian.Uint64(buf)
	}
	return ix, nil
}

// LoadFile reads an index from a file path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// header is the parsed fixed-size prefix plus the perm and counts tables.
type header struct {
	hasParents bool
	n          int
	numBP      int
	entrySize  int
	perm       []int32
	rank       []int32
	counts     []uint32
}

func loadHeader(r io.Reader) (*header, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadIndexFile, err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadIndexFile, magic[:])
	}
	var fixed [20]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadIndexFile, err)
	}
	flags := binary.LittleEndian.Uint32(fixed[0:])
	if flags&^flagParents != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrBadIndexFile, flags)
	}
	n64 := binary.LittleEndian.Uint64(fixed[4:])
	numBP64 := binary.LittleEndian.Uint64(fixed[12:])
	const maxReasonable = math.MaxInt32 // vertex IDs are int32
	if n64 > maxReasonable || numBP64 > 1<<16 {
		return nil, fmt.Errorf("%w: implausible sizes n=%d numBP=%d", ErrBadIndexFile, n64, numBP64)
	}
	h := &header{
		hasParents: flags&flagParents != 0,
		n:          int(n64),
		numBP:      int(numBP64),
	}
	h.entrySize = 5
	if h.hasParents {
		h.entrySize = 9
	}
	h.perm = make([]int32, h.n)
	buf := make([]byte, 4)
	for i := range h.perm {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated permutation: %v", ErrBadIndexFile, err)
		}
		h.perm[i] = int32(binary.LittleEndian.Uint32(buf))
		if h.perm[i] < 0 || int(h.perm[i]) >= h.n {
			return nil, fmt.Errorf("%w: permutation entry %d out of range", ErrBadIndexFile, h.perm[i])
		}
	}
	h.rank = make([]int32, h.n)
	seen := make([]bool, h.n)
	for rk, v := range h.perm {
		if seen[v] {
			return nil, fmt.Errorf("%w: duplicate permutation entry %d", ErrBadIndexFile, v)
		}
		seen[v] = true
		h.rank[v] = int32(rk)
	}
	h.counts = make([]uint32, h.n)
	for i := range h.counts {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated label counts: %v", ErrBadIndexFile, err)
		}
		h.counts[i] = binary.LittleEndian.Uint32(buf)
		if uint64(h.counts[i]) > uint64(h.n) {
			return nil, fmt.Errorf("%w: label count %d exceeds n", ErrBadIndexFile, h.counts[i])
		}
	}
	return h, nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:]) //nolint:errcheck // flushed error reported by Flush
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:]) //nolint:errcheck // flushed error reported by Flush
}
