package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Index file format (little endian), version 1:
//
//	magic   [8]byte  "PLLIDX01"
//	flags   uint32   bit 0: parent pointers present
//	n       uint64
//	numBP   uint64
//	perm    n * int32
//	counts  n * uint32          label entries per vertex (no sentinels)
//	labels  per vertex, contiguous:
//	          hub    int32
//	          dist   uint8
//	          parent int32      only if flag bit 0
//	bpDist  numBP*n * uint8
//	bpS1    numBP*n * uint64
//	bpS0    numBP*n * uint64
//
// The per-vertex label block is contiguous so that DiskIndex can answer a
// query with exactly two ranged reads (§6 "Disk-based Query Answering").
var indexMagic = [8]byte{'P', 'L', 'L', 'I', 'D', 'X', '0', '1'}

const flagParents uint32 = 1

// ErrBadIndexFile is wrapped by all load-time format errors.
var ErrBadIndexFile = errors.New("core: malformed index file")

// allocChunk bounds how many bytes any loader allocates ahead of the
// bytes actually read. Header fields of a malformed (or adversarial)
// file can declare sizes in the gigabytes while the stream holds a few
// hundred bytes; the capped readers below therefore grow their result
// incrementally, so bogus sizes fail with a small footprint instead of
// an OOM. The pll.FuzzLoad target leans on this.
const allocChunk = 1 << 20

// readBytesCapped reads exactly n bytes, allocating in bounded chunks.
func readBytesCapped(r io.Reader, n int64, what string) ([]byte, error) {
	out := make([]byte, 0, min(n, allocChunk))
	for int64(len(out)) < n {
		k := min(n-int64(len(out)), allocChunk)
		start := len(out)
		out = append(out, make([]byte, k)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, fmt.Errorf("%w: truncated %s: %v", ErrBadIndexFile, what, err)
		}
	}
	return out, nil
}

// readU32sCapped reads n little-endian uint32s in bounded chunks.
func readU32sCapped(r io.Reader, n int, what string) ([]uint32, error) {
	const step = allocChunk / 4
	out := make([]uint32, 0, min(n, step))
	buf := make([]byte, 4*min(n, step))
	for len(out) < n {
		k := min(n-len(out), step)
		if _, err := io.ReadFull(r, buf[:4*k]); err != nil {
			return nil, fmt.Errorf("%w: truncated %s: %v", ErrBadIndexFile, what, err)
		}
		for i := 0; i < k; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return out, nil
}

// readU64sCapped reads n little-endian uint64s in bounded chunks.
func readU64sCapped(r io.Reader, n int64, what string) ([]uint64, error) {
	const step = int64(allocChunk / 8)
	out := make([]uint64, 0, min(n, step))
	buf := make([]byte, 8*min(n, step))
	for int64(len(out)) < n {
		k := min(n-int64(len(out)), step)
		if _, err := io.ReadFull(r, buf[:8*k]); err != nil {
			return nil, fmt.Errorf("%w: truncated %s: %v", ErrBadIndexFile, what, err)
		}
		for i := int64(0); i < k; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	return out, nil
}

// permFromRaw validates raw as a permutation of [0, n) and derives the
// inverse. It is called after the permutation bytes were actually read,
// so the n-sized allocations here are backed by real input.
func permFromRaw(raw []uint32, n int) (perm, rank []int32, err error) {
	perm = make([]int32, n)
	rank = make([]int32, n)
	seen := make([]bool, n)
	for i, u := range raw {
		v := int32(u)
		if v < 0 || int(v) >= n {
			return nil, nil, fmt.Errorf("%w: permutation entry %d out of range", ErrBadIndexFile, v)
		}
		if seen[v] {
			return nil, nil, fmt.Errorf("%w: duplicate permutation entry %d", ErrBadIndexFile, v)
		}
		seen[v] = true
		perm[i] = v
		rank[v] = int32(i)
	}
	return perm, rank, nil
}

// Save writes the index to w in the versioned binary format.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(indexMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if ix.labelParent != nil {
		flags |= flagParents
	}
	writeU32(bw, flags)
	writeU64(bw, uint64(ix.n))
	writeU64(bw, uint64(ix.numBP))
	for _, v := range ix.perm {
		writeU32(bw, uint32(v))
	}
	for r := 0; r < ix.n; r++ {
		writeU32(bw, uint32(ix.labelOff[r+1]-ix.labelOff[r]-1))
	}
	for r := 0; r < ix.n; r++ {
		lo, hi := ix.labelOff[r], ix.labelOff[r+1]-1
		for i := lo; i < hi; i++ {
			writeU32(bw, uint32(ix.labelVertex[i]))
			if err := bw.WriteByte(ix.labelDist[i]); err != nil {
				return err
			}
			if ix.labelParent != nil {
				writeU32(bw, uint32(ix.labelParent[i]))
			}
		}
	}
	if _, err := bw.Write(ix.bpDist); err != nil {
		return err
	}
	for _, v := range ix.bpS1 {
		writeU64(bw, v)
	}
	for _, v := range ix.bpS0 {
		writeU64(bw, v)
	}
	return bw.Flush()
}

// SaveFile writes the index to a file path.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index previously written by Save. Any structural problem
// yields an error wrapping ErrBadIndexFile; Load never panics on
// malformed input.
func Load(r io.Reader) (*Index, error) {
	return loadPlain(bufio.NewReaderSize(r, 1<<20))
}

// loadPlain reads the plain payload format from an established reader
// (shared between Load and the container dispatcher).
func loadPlain(br *bufio.Reader) (*Index, error) {
	hdr, err := loadHeader(br)
	if err != nil {
		return nil, err
	}
	ix := &Index{n: hdr.n, numBP: hdr.numBP, perm: hdr.perm, rank: hdr.rank}
	n := hdr.n
	total := int64(0)
	for _, c := range hdr.counts {
		total += int64(c) + 1
	}
	// Label arrays grow by append, capacity-capped: the declared total is
	// only trusted once the corresponding entries actually arrive.
	//pllvet:ignore untrustedalloc n is paid for: loadHeader read 8n bytes of perm+counts before this point
	ix.labelOff = make([]int64, n+1)
	ix.labelVertex = make([]int32, 0, min(total, allocChunk/4))
	ix.labelDist = make([]uint8, 0, min(total, allocChunk))
	if hdr.hasParents {
		ix.labelParent = make([]int32, 0, min(total, allocChunk/4))
	}
	entry := make([]byte, hdr.entrySize) //pllvet:ignore untrustedalloc entrySize is 5 or 9 by construction, set from flags, never file-sized
	for v := 0; v < n; v++ {
		ix.labelOff[v] = int64(len(ix.labelVertex))
		prev := int32(-1)
		for k := uint32(0); k < hdr.counts[v]; k++ {
			if _, err := io.ReadFull(br, entry); err != nil {
				return nil, fmt.Errorf("%w: truncated labels at vertex %d: %v", ErrBadIndexFile, v, err)
			}
			hub := int32(binary.LittleEndian.Uint32(entry))
			if hub < 0 || int(hub) >= n {
				return nil, fmt.Errorf("%w: hub rank %d out of range at vertex %d", ErrBadIndexFile, hub, v)
			}
			if hub <= prev {
				return nil, fmt.Errorf("%w: label of vertex %d not strictly sorted", ErrBadIndexFile, v)
			}
			prev = hub
			ix.labelVertex = append(ix.labelVertex, hub)
			ix.labelDist = append(ix.labelDist, entry[4])
			if hdr.hasParents {
				ix.labelParent = append(ix.labelParent, int32(binary.LittleEndian.Uint32(entry[5:])))
			}
		}
		ix.labelVertex = append(ix.labelVertex, int32(n))
		ix.labelDist = append(ix.labelDist, InfDist)
		if hdr.hasParents {
			ix.labelParent = append(ix.labelParent, -1)
		}
	}
	ix.labelOff[n] = int64(len(ix.labelVertex))
	bpTotal := int64(hdr.numBP) * int64(n)
	if ix.bpDist, err = readBytesCapped(br, bpTotal, "bit-parallel distances"); err != nil {
		return nil, err
	}
	if ix.bpS1, err = readU64sCapped(br, bpTotal, "bit-parallel S-1 sets"); err != nil {
		return nil, err
	}
	if ix.bpS0, err = readU64sCapped(br, bpTotal, "bit-parallel S0 sets"); err != nil {
		return nil, err
	}
	return ix, nil
}

// LoadFile reads an index from a file path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// header is the parsed fixed-size prefix plus the perm and counts tables.
//
// pllvet:untrusted — n, numBP and counts are decoded file bytes
// (sanity-capped, but still sized by the file, not by memory actually
// read); allocations they size must be capped or grown behind reads.
type header struct {
	hasParents bool
	n          int
	numBP      int
	entrySize  int
	perm       []int32
	rank       []int32
	counts     []uint32
}

func loadHeader(r io.Reader) (*header, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadIndexFile, err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadIndexFile, magic[:])
	}
	var fixed [20]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadIndexFile, err)
	}
	flags := binary.LittleEndian.Uint32(fixed[0:])
	if flags&^flagParents != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrBadIndexFile, flags)
	}
	n64 := binary.LittleEndian.Uint64(fixed[4:])
	numBP64 := binary.LittleEndian.Uint64(fixed[12:])
	const maxReasonable = math.MaxInt32 // vertex IDs are int32
	if n64 > maxReasonable || numBP64 > 1<<16 {
		return nil, fmt.Errorf("%w: implausible sizes n=%d numBP=%d", ErrBadIndexFile, n64, numBP64)
	}
	h := &header{
		hasParents: flags&flagParents != 0,
		n:          int(n64),
		numBP:      int(numBP64),
	}
	h.entrySize = 5
	if h.hasParents {
		h.entrySize = 9
	}
	raw, err := readU32sCapped(r, h.n, "permutation")
	if err != nil {
		return nil, err
	}
	if h.perm, h.rank, err = permFromRaw(raw, h.n); err != nil {
		return nil, err
	}
	if h.counts, err = readU32sCapped(r, h.n, "label counts"); err != nil {
		return nil, err
	}
	for _, c := range h.counts {
		if uint64(c) > uint64(h.n) {
			return nil, fmt.Errorf("%w: label count %d exceeds n", ErrBadIndexFile, c)
		}
	}
	return h, nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:]) //nolint:errcheck // flushed error reported by Flush
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:]) //nolint:errcheck // flushed error reported by Flush
}
