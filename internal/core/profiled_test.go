package core

import (
	"testing"

	"pll/internal/trace"
)

// TestProfiledEquivalence checks that the profiled entry points return
// byte-identical answers to the unprofiled ones — with and without a
// profile — and that a profile actually accumulates merge and scan
// counters.
func TestProfiledEquivalence(t *testing.T) {
	g := randomGraph(77, 60)
	ix := buildOrFail(t, g, Options{Seed: 77, NumBitParallel: 2})
	n := int32(g.NumVertices())

	p := &trace.QueryProfile{}
	targets := make([]int32, 0, n)
	for v := int32(0); v < n; v++ {
		targets = append(targets, v)
	}
	for s := int32(0); s < n; s++ {
		for u := int32(0); u < n; u++ {
			want := ix.Query(s, u)
			if got := ix.DistanceProfiled(s, u, nil); got != want {
				t.Fatalf("DistanceProfiled(%d,%d,nil) = %d, want %d", s, u, got, want)
			}
			if got := ix.DistanceProfiled(s, u, p); got != want {
				t.Fatalf("DistanceProfiled(%d,%d,p) = %d, want %d", s, u, got, want)
			}
		}
		plain := ix.DistanceFrom(s, targets, nil)
		prof := ix.DistanceFromProfiled(s, targets, nil, p)
		for i := range plain {
			if plain[i] != prof[i] {
				t.Fatalf("DistanceFromProfiled(%d)[%d] = %d, want %d", s, i, prof[i], plain[i])
			}
		}
		wantKNN := ix.KNN(s, 5)
		gotKNN := ix.KNNProfiled(s, 5, p)
		if len(wantKNN) != len(gotKNN) {
			t.Fatalf("KNNProfiled(%d) returned %d results, want %d", s, len(gotKNN), len(wantKNN))
		}
		for i := range wantKNN {
			if wantKNN[i] != gotKNN[i] {
				t.Fatalf("KNNProfiled(%d)[%d] = %v, want %v", s, i, gotKNN[i], wantKNN[i])
			}
		}
	}
	snap := p.Snapshot()
	if snap.MergeCalls == 0 || snap.MergeEntries == 0 {
		t.Fatalf("profile recorded no merges: %+v", snap)
	}
	if snap.ScanRuns == 0 || snap.ScanItems == 0 {
		t.Fatalf("profile recorded no scans: %+v", snap)
	}
}

// TestProfiledDynamic exercises the dynamic variant's profiled methods.
func TestProfiledDynamic(t *testing.T) {
	g := randomGraph(5, 40)
	di, err := BuildDynamic(g, Options{Seed: 5})
	if err != nil {
		t.Fatalf("BuildDynamic: %v", err)
	}
	n := int32(g.NumVertices())
	p := &trace.QueryProfile{}
	targets := []int32{0, n - 1, n / 2}
	for s := int32(0); s < n; s++ {
		for u := int32(0); u < n; u++ {
			if got, want := di.DistanceProfiled(s, u, p), di.Query(s, u); got != want {
				t.Fatalf("dynamic DistanceProfiled(%d,%d) = %d, want %d", s, u, got, want)
			}
		}
		plain := di.DistanceFrom(s, targets, nil)
		prof := di.DistanceFromProfiled(s, targets, nil, p)
		for i := range plain {
			if plain[i] != prof[i] {
				t.Fatalf("dynamic DistanceFromProfiled(%d)[%d] = %d, want %d", s, i, prof[i], plain[i])
			}
		}
	}
	if snap := p.Snapshot(); snap.MergeCalls == 0 {
		t.Fatalf("dynamic profile recorded no merges: %+v", snap)
	}
}
