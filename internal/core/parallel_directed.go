package core

import (
	"sync"
	"sync/atomic"
)

// Batch-parallel construction for the directed variant. The scheme is
// the one documented in parallel.go, applied per sweep direction: each
// batch root runs its forward and backward relaxed sweeps against the
// frozen label families, and the sequential merge interleaves them in
// the sequential order (fwd_k, bwd_k, fwd_k+1, ...). The directed prune
// test has no bit-parallel part, so the tail argument is the same: the
// only label entries a relaxed sweep could not see carry hubs of this
// batch, which sit at the tails of L_IN/L_OUT.

// dirCandPair is the candidate output of one batch root: the forward
// sweep proposes L_IN entries, the backward sweep L_OUT entries. The
// *Seq flags request a sequential fallback for that direction.
type dirCandPair struct {
	fwd, bwd       []labelCand
	fwdSeq, bwdSeq bool
}

func (db *dirBuilder) runParallel(workers int) error {
	if db.storePaths {
		db.candD = make([]uint8, db.n)
		db.candPruned = make([]bool, db.n)
		for i := range db.candD {
			db.candD[i] = InfDist
		}
	}
	scratches := make([]*dirScratch, workers)
	cands := make([]dirCandPair, maxPrunedBatch)

	done := 0
	for done < db.n {
		size := prunedBatchSize(done, workers)
		if size > db.n-done {
			size = db.n - done
		}
		batchStart := int32(done)
		done += size
		if size == 1 {
			if err := db.sweep(batchStart, true); err != nil {
				return err
			}
			if err := db.sweep(batchStart, false); err != nil {
				return err
			}
			continue
		}

		spawn := workers
		if spawn > size {
			spawn = size
		}
		var wg sync.WaitGroup
		next := int32(-1)
		for w := 0; w < spawn; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if scratches[w] == nil {
					scratches[w] = newDirScratch(db.n, db.storePaths)
				}
				sc := scratches[w]
				for {
					i := int(atomic.AddInt32(&next, 1))
					if i >= size {
						return
					}
					vk := batchStart + int32(i)
					c := &cands[i]
					c.fwd, c.fwdSeq = db.relaxedSweep(vk, true, sc, c.fwd[:0])
					c.bwd, c.bwdSeq = db.relaxedSweep(vk, false, sc, c.bwd[:0])
				}
			}(w)
		}
		wg.Wait()

		for i := 0; i < size; i++ {
			vk := batchStart + int32(i)
			if err := db.mergeSweep(vk, batchStart, true, cands[i].fwd, cands[i].fwdSeq); err != nil {
				return err
			}
			if err := db.mergeSweep(vk, batchStart, false, cands[i].bwd, cands[i].bwdSeq); err != nil {
				return err
			}
		}
	}
	return nil
}

// relaxedSweep is sweep against the frozen labels: reads only, all
// writes go to sc and cands. needSeq asks for a sequential fallback: a
// MaxDist overrun, or — for distance-only builds — a candidate exactly
// at MaxDist, since the sequential overflow check depends on visit
// state the candidate filter does not replay (see relaxedPrunedBFS).
func (db *dirBuilder) relaxedSweep(vk int32, fwd bool, sc *dirScratch, cands []labelCand) (_ []labelCand, needSeq bool) {
	neighbors, rootV, rootD, scanV, scanD, _ := db.dir(fwd)
	lv, ld := rootV[vk], rootD[vk]
	for i, w := range lv {
		sc.rootLab[w] = ld[i]
	}
	queue := sc.queue[:0]
	queue = append(queue, vk)
	sc.dist[vk] = 0
	if sc.par != nil {
		sc.par[vk] = -1
	}
search:
	for qh := 0; qh < len(queue); qh++ {
		u := queue[qh]
		d := sc.dist[u]
		pruned := false
		uv, ud := scanV[u], scanD[u]
		for i, w := range uv {
			if tw := sc.rootLab[w]; tw != InfDist && int(tw)+int(ud[i]) <= int(d) {
				pruned = true
				break
			}
		}
		if pruned {
			if db.storePaths {
				cands = append(cands, labelCand{v: u, d: d, pruned: true})
			}
			continue
		}
		c := labelCand{v: u, d: d}
		if db.storePaths {
			c.par = sc.par[u]
		}
		cands = append(cands, c)
		if !db.storePaths && int(d) == MaxDist {
			needSeq = true
			break search
		}
		nd := int(d) + 1
		for _, w := range neighbors(u) {
			if sc.dist[w] == InfDist {
				if nd > MaxDist {
					needSeq = true
					break search
				}
				sc.dist[w] = uint8(nd)
				if sc.par != nil {
					sc.par[w] = u
				}
				queue = append(queue, w)
			}
		}
	}
	sc.reset(queue, lv)
	sc.queue = queue[:0]
	return cands, needSeq
}

// mergeSweep finalizes one direction of one batch root, dispatching to
// the filter (distance-only) or the queue replay (path-storing), or —
// when the relaxed sweep flagged needSeq — to the real sequential
// sweep, which fails exactly where a sequential build would.
func (db *dirBuilder) mergeSweep(vk, batchStart int32, fwd bool, cands []labelCand, needSeq bool) error {
	if needSeq {
		return db.sweep(vk, fwd)
	}
	if db.storePaths {
		return db.replaySweep(vk, batchStart, fwd, cands)
	}
	_, rootV, rootD, scanV, scanD, _ := db.dir(fwd)
	lv, ld := rootV[vk], rootD[vk]
	rl := db.sc.rootLab
	for i, w := range lv {
		rl[w] = ld[i]
	}
	for _, c := range cands {
		u, d := c.v, c.d
		uv, ud := scanV[u], scanD[u]
		covered := false
		for i := len(uv) - 1; i >= 0 && uv[i] >= batchStart; i-- {
			if tw := rl[uv[i]]; tw != InfDist && int(tw)+int(ud[i]) <= int(d) {
				covered = true
				break
			}
		}
		if !covered {
			scanV[u] = append(scanV[u], vk)
			scanD[u] = append(scanD[u], d)
		}
	}
	for _, w := range lv {
		rl[w] = InfDist
	}
	return nil
}

// replaySweep is the path-storing merge: it re-runs the BFS queue
// discipline (parents depend on visit order) with candidate-mark prune
// decisions plus a label-tail scan, as in replayPrunedBFS.
func (db *dirBuilder) replaySweep(vk, batchStart int32, fwd bool, cands []labelCand) error {
	for _, c := range cands {
		if c.pruned {
			db.candPruned[c.v] = true
		} else {
			db.candD[c.v] = c.d
		}
	}

	neighbors, rootV, rootD, scanV, scanD, scanP := db.dir(fwd)
	sc := &db.sc
	lv, ld := rootV[vk], rootD[vk]
	for i, w := range lv {
		sc.rootLab[w] = ld[i]
	}
	queue := sc.queue[:0]
	queue = append(queue, vk)
	sc.dist[vk] = 0
	sc.par[vk] = -1
	var err error
replay:
	for qh := 0; qh < len(queue); qh++ {
		u := queue[qh]
		d := sc.dist[u]
		covered := true
		if !db.candPruned[u] && db.candD[u] == d {
			covered = false
			uv, ud := scanV[u], scanD[u]
			for i := len(uv) - 1; i >= 0 && uv[i] >= batchStart; i-- {
				if tw := sc.rootLab[uv[i]]; tw != InfDist && int(tw)+int(ud[i]) <= int(d) {
					covered = true
					break
				}
			}
		}
		if covered {
			continue
		}
		scanV[u] = append(scanV[u], vk)
		scanD[u] = append(scanD[u], d)
		scanP[u] = append(scanP[u], sc.par[u])
		nd := int(d) + 1
		for _, w := range neighbors(u) {
			if sc.dist[w] == InfDist {
				if nd > MaxDist {
					err = ErrDiameterTooLarge
					break replay
				}
				sc.dist[w] = uint8(nd)
				sc.par[w] = u
				queue = append(queue, w)
			}
		}
	}
	sc.reset(queue, lv)
	sc.queue = queue[:0]
	for _, c := range cands {
		if c.pruned {
			db.candPruned[c.v] = false
		} else {
			db.candD[c.v] = InfDist
		}
	}
	return err
}
