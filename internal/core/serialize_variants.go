package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Weighted and directed index file formats (little endian), version 1.
// Both share the plain format's philosophy: a fixed header, the
// permutation, per-vertex label counts, then contiguous label blocks.
var (
	weightedMagic = [8]byte{'P', 'L', 'L', 'I', 'D', 'X', 'W', '1'}
	directedMagic = [8]byte{'P', 'L', 'L', 'I', 'D', 'X', 'D', '1'}
)

// Save writes the weighted index. Parent pointers (StorePaths) are not
// serialized; save path-reconstructing weighted indexes is unsupported.
func (ix *WeightedIndex) Save(w io.Writer) error {
	if ix.labelParent != nil {
		return fmt.Errorf("core: weighted format does not support parent pointers")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(weightedMagic[:]); err != nil {
		return err
	}
	writeU64(bw, uint64(ix.n))
	for _, v := range ix.perm {
		writeU32(bw, uint32(v))
	}
	for r := 0; r < ix.n; r++ {
		writeU32(bw, uint32(ix.labelOff[r+1]-ix.labelOff[r]-1))
	}
	for r := 0; r < ix.n; r++ {
		lo, hi := ix.labelOff[r], ix.labelOff[r+1]-1
		for i := lo; i < hi; i++ {
			writeU32(bw, uint32(ix.labelVertex[i]))
			writeU32(bw, ix.labelDist[i])
		}
	}
	return bw.Flush()
}

// SaveFile writes the weighted index to a path.
func (ix *WeightedIndex) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadWeighted reads an index written by WeightedIndex.Save.
func LoadWeighted(r io.Reader) (*WeightedIndex, error) {
	return loadWeightedPayload(bufio.NewReaderSize(r, 1<<20))
}

// loadWeightedPayload reads the weighted payload format from an
// established reader (shared with the container dispatcher).
func loadWeightedPayload(br *bufio.Reader) (*WeightedIndex, error) {
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadIndexFile, err)
	}
	if magic != weightedMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadIndexFile, magic[:])
	}
	n, perm, rank, counts, err := loadVariantHeader(br)
	if err != nil {
		return nil, err
	}
	ix := &WeightedIndex{n: n, perm: perm, rank: rank}
	total := int64(0)
	for _, c := range counts {
		total += int64(c) + 1
	}
	// Grown by append with capped capacity: the declared total is only
	// trusted once the entries actually arrive (see allocChunk).
	ix.labelOff = make([]int64, n+1)
	ix.labelVertex = make([]int32, 0, min(total, allocChunk/4))
	ix.labelDist = make([]uint32, 0, min(total, allocChunk/4))
	var buf [8]byte
	for v := 0; v < n; v++ {
		ix.labelOff[v] = int64(len(ix.labelVertex))
		prev := int32(-1)
		for k := uint32(0); k < counts[v]; k++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("%w: truncated labels at vertex %d: %v", ErrBadIndexFile, v, err)
			}
			hub := int32(binary.LittleEndian.Uint32(buf[:4]))
			if hub <= prev || int(hub) >= n {
				return nil, fmt.Errorf("%w: bad hub %d at vertex %d", ErrBadIndexFile, hub, v)
			}
			prev = hub
			ix.labelVertex = append(ix.labelVertex, hub)
			ix.labelDist = append(ix.labelDist, binary.LittleEndian.Uint32(buf[4:]))
		}
		ix.labelVertex = append(ix.labelVertex, int32(n))
		ix.labelDist = append(ix.labelDist, InfWeight32)
	}
	ix.labelOff[n] = int64(len(ix.labelVertex))
	return ix, nil
}

// LoadWeightedFile reads a weighted index from a path.
func LoadWeightedFile(path string) (*WeightedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadWeighted(f)
}

// Save writes the directed index (both label families). Parent pointers
// (StorePaths) are not serialized.
func (ix *DirectedIndex) Save(w io.Writer) error {
	if ix.outParent != nil {
		return fmt.Errorf("core: directed format does not support parent pointers")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(directedMagic[:]); err != nil {
		return err
	}
	writeU64(bw, uint64(ix.n))
	for _, v := range ix.perm {
		writeU32(bw, uint32(v))
	}
	writeSide := func(off []int64, vs []int32, ds []uint8) {
		for r := 0; r < ix.n; r++ {
			writeU32(bw, uint32(off[r+1]-off[r]-1))
		}
		for r := 0; r < ix.n; r++ {
			lo, hi := off[r], off[r+1]-1
			for i := lo; i < hi; i++ {
				writeU32(bw, uint32(vs[i]))
				bw.WriteByte(ds[i]) //nolint:errcheck // reported by Flush
			}
		}
	}
	writeSide(ix.outOff, ix.outVertex, ix.outDist)
	writeSide(ix.inOff, ix.inVertex, ix.inDist)
	return bw.Flush()
}

// SaveFile writes the directed index to a path.
func (ix *DirectedIndex) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDirected reads an index written by DirectedIndex.Save.
func LoadDirected(r io.Reader) (*DirectedIndex, error) {
	return loadDirectedPayload(bufio.NewReaderSize(r, 1<<20))
}

// loadDirectedPayload reads the directed payload format from an
// established reader (shared with the container dispatcher).
func loadDirectedPayload(br *bufio.Reader) (*DirectedIndex, error) {
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadIndexFile, err)
	}
	if magic != directedMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadIndexFile, magic[:])
	}
	var nb [8]byte
	if _, err := io.ReadFull(br, nb[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadIndexFile, err)
	}
	n64 := binary.LittleEndian.Uint64(nb[:])
	if n64 > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible n=%d", ErrBadIndexFile, n64)
	}
	n := int(n64)
	perm, rank, err := loadPerm(br, n)
	if err != nil {
		return nil, err
	}
	ix := &DirectedIndex{n: n, perm: perm, rank: rank}
	readSide := func() ([]int64, []int32, []uint8, error) {
		counts, err := readU32sCapped(br, n, "counts")
		if err != nil {
			return nil, nil, nil, err
		}
		total := int64(0)
		for _, c := range counts {
			if uint64(c) > uint64(n) {
				return nil, nil, nil, fmt.Errorf("%w: label count %d exceeds n", ErrBadIndexFile, c)
			}
			total += int64(c) + 1
		}
		//pllvet:ignore untrustedalloc n is paid for: readU32sCapped read 4n count bytes above
		off := make([]int64, n+1)
		vs := make([]int32, 0, min(total, allocChunk/4))
		ds := make([]uint8, 0, min(total, allocChunk))
		var buf [5]byte
		for v := 0; v < n; v++ {
			off[v] = int64(len(vs))
			prev := int32(-1)
			for k := uint32(0); k < counts[v]; k++ {
				if _, err := io.ReadFull(br, buf[:]); err != nil {
					return nil, nil, nil, fmt.Errorf("%w: truncated labels at %d: %v", ErrBadIndexFile, v, err)
				}
				hub := int32(binary.LittleEndian.Uint32(buf[:4]))
				if hub <= prev || int(hub) >= n {
					return nil, nil, nil, fmt.Errorf("%w: bad hub %d at %d", ErrBadIndexFile, hub, v)
				}
				prev = hub
				vs = append(vs, hub)
				ds = append(ds, buf[4])
			}
			vs = append(vs, int32(n))
			ds = append(ds, InfDist)
		}
		off[n] = int64(len(vs))
		return off, vs, ds, nil
	}
	if ix.outOff, ix.outVertex, ix.outDist, err = readSide(); err != nil {
		return nil, err
	}
	if ix.inOff, ix.inVertex, ix.inDist, err = readSide(); err != nil {
		return nil, err
	}
	return ix, nil
}

// LoadDirectedFile reads a directed index from a path.
func LoadDirectedFile(path string) (*DirectedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDirected(f)
}

// loadVariantHeader reads n, the permutation and per-vertex counts used
// by the weighted format.
func loadVariantHeader(br *bufio.Reader) (int, []int32, []int32, []uint32, error) {
	var nb [8]byte
	if _, err := io.ReadFull(br, nb[:]); err != nil {
		return 0, nil, nil, nil, fmt.Errorf("%w: truncated header: %v", ErrBadIndexFile, err)
	}
	n64 := binary.LittleEndian.Uint64(nb[:])
	if n64 > math.MaxInt32 {
		return 0, nil, nil, nil, fmt.Errorf("%w: implausible n=%d", ErrBadIndexFile, n64)
	}
	n := int(n64)
	perm, rank, err := loadPerm(br, n)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	counts, err := readU32sCapped(br, n, "counts")
	if err != nil {
		return 0, nil, nil, nil, err
	}
	for _, c := range counts {
		if uint64(c) > uint64(n) {
			return 0, nil, nil, nil, fmt.Errorf("%w: label count %d exceeds n", ErrBadIndexFile, c)
		}
	}
	return n, perm, rank, counts, nil
}

// loadPerm reads and validates a permutation of [0, n).
func loadPerm(br *bufio.Reader, n int) ([]int32, []int32, error) {
	raw, err := readU32sCapped(br, n, "permutation")
	if err != nil {
		return nil, nil, err
	}
	return permFromRaw(raw, n)
}
