//go:build unix

package core

import (
	"fmt"
	"os"
	"syscall"
)

// mapFlatFile memory-maps an open flat container read-only. The mapping
// survives the file descriptor being closed; pages are shared with
// every other process mapping the same file and are paged in on
// demand, so an index larger than the heap still opens without any
// per-entry decoding or heap copies.
func mapFlatFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, fmt.Errorf("unmappable file size %d", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
