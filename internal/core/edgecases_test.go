package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/rng"
)

func TestLabelOfBPConsumedVertexIsSmall(t *testing.T) {
	// Vertices consumed as bit-parallel roots or neighbors skip their
	// own pruned BFS; their normal labels exist only from later roots.
	g := gen.Star(50)
	ix := buildOrFail(t, g, Options{NumBitParallel: 1, CustomOrder: starOrder(50)})
	// The hub (rank 0) and its first 49... all leaves are consumed by
	// the single BP root's neighbor set (up to 64), so normal labels
	// should be nearly empty.
	st := ix.ComputeStats()
	if st.TotalLabelEntries > 5 {
		t.Fatalf("BP should have consumed the star; %d normal entries remain", st.TotalLabelEntries)
	}
}

func TestQueryPathWhenHubIsEndpoint(t *testing.T) {
	// On a star ordered hub-first, the hub is the best hub for every
	// pair; paths through it must still terminate correctly when one
	// endpoint *is* the hub.
	g := gen.Star(10)
	ix := buildOrFail(t, g, Options{StorePaths: true, CustomOrder: starOrder(10)})
	p, err := ix.QueryPath(0, 7)
	if err != nil || len(p) != 2 || p[0] != 0 || p[1] != 7 {
		t.Fatalf("hub-endpoint path = %v, %v", p, err)
	}
	p, err = ix.QueryPath(3, 0)
	if err != nil || len(p) != 2 {
		t.Fatalf("endpoint-hub path = %v, %v", p, err)
	}
}

func TestQueryPathAdjacent(t *testing.T) {
	g := gen.Path(5)
	ix := buildOrFail(t, g, Options{StorePaths: true})
	p, err := ix.QueryPath(2, 3)
	if err != nil || len(p) != 2 {
		t.Fatalf("adjacent path = %v, %v", p, err)
	}
}

func TestDiskIndexTinyGraphs(t *testing.T) {
	for _, n := range []int{1, 2} {
		g, err := graph.NewGraph(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		ix := buildOrFail(t, g, Options{})
		path := t.TempDir() + "/tiny.pll"
		if err := ix.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		di, err := OpenDiskIndex(path)
		if err != nil {
			t.Fatal(err)
		}
		d, err := di.Query(0, 0)
		if err != nil || d != 0 {
			t.Fatalf("n=%d: self query = %d, %v", n, d, err)
		}
		di.Close()
	}
}

func TestCompressedRandomRoundTripProperty(t *testing.T) {
	check := func(seed uint64, bp uint8) bool {
		g := randomGraph(seed, 50)
		ix, err := Build(g, Options{Seed: seed, NumBitParallel: int(bp % 5)})
		if err != nil {
			return false
		}
		var buf1 bytes.Buffer
		if err := ix.SaveCompressed(&buf1); err != nil {
			return false
		}
		loaded, err := LoadCompressed(&buf1)
		if err != nil {
			return false
		}
		n := int32(g.NumVertices())
		r := rng.New(seed ^ 0xcafe)
		for i := 0; i < 25; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			if ix.Query(s, u) != loaded.Query(s, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryAfterManyMixedOperations(t *testing.T) {
	// Long-haul sanity: build, query, serialize, reload, query again,
	// on a moderately sized BA graph with all features on.
	g := gen.BarabasiAlbert(600, 3, 99)
	ix := buildOrFail(t, g, Options{NumBitParallel: 8, Workers: 4, Seed: 9})
	truth := bfs.AllDistances(g, 42)
	for v := int32(0); v < 600; v += 11 {
		want := int(truth[v])
		if truth[v] == bfs.Unreachable {
			want = Unreachable
		}
		if got := ix.Query(42, v); got != want {
			t.Fatalf("Query(42,%d) = %d, want %d", v, got, want)
		}
	}
	if err := ix.Verify(g, VerifyOptions{SampledPairs: 200, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}
