package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// DiskIndex answers distance queries from an index file without loading
// the label arrays into memory — §6 "Disk-based Query Answering": the
// per-vertex label blocks are contiguous on disk, so a query costs two
// ranged reads (one per endpoint) plus in-memory bit-parallel checks.
//
// The permutation, per-vertex offsets and bit-parallel arrays are kept in
// memory; only the (dominant) normal label blocks stay on disk.
type DiskIndex struct {
	f          *os.File
	n          int
	numBP      int
	hasParents bool
	entrySize  int
	rank       []int32
	blockOff   []int64 // byte offset of each vertex's label block, len n+1
	bpDist     []uint8
	bpS1       []uint64
	bpS0       []uint64

	bufS, bufT []byte // per-query read buffers, reused
}

// OpenDiskIndex opens an index file for disk-resident querying. Both
// self-describing containers (undirected or frozen-dynamic variants
// with a plain payload) and bare legacy payloads are accepted;
// compressed payloads are rejected because ranged reads need the
// fixed-stride layout.
func OpenDiskIndex(path string) (*DiskIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadIndexFile, err)
	}
	base := int64(0)
	if magic == containerMagic {
		var rest [containerHeaderSize - 8]byte
		if _, err := io.ReadFull(f, rest[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: truncated container header: %v", ErrBadIndexFile, err)
		}
		h, err := parseContainerHeader(append(magic[:], rest[:]...))
		if err != nil {
			f.Close()
			return nil, err
		}
		if h.Version == ContainerVersionFlat {
			f.Close()
			return nil, fmt.Errorf("%w: flat containers are served by OpenFlat (mmap), not DiskIndex", ErrBadIndexFile)
		}
		if h.Variant != VariantUndirected && h.Variant != VariantDynamic {
			f.Close()
			return nil, fmt.Errorf("%w: disk querying requires an undirected index, got %s",
				ErrBadIndexFile, h.Variant)
		}
		if h.Flags&ContainerFlagCompressed != 0 {
			f.Close()
			return nil, fmt.Errorf("%w: disk querying requires the uncompressed payload", ErrBadIndexFile)
		}
		base = containerHeaderSize
	} else if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	hdr, err := loadHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	di := &DiskIndex{
		f:          f,
		n:          hdr.n,
		numBP:      hdr.numBP,
		hasParents: hdr.hasParents,
		entrySize:  hdr.entrySize,
		rank:       hdr.rank,
	}
	// The header reader consumed magic(8) + fixed(20) + perm(4n) +
	// counts(4n) bytes past the (possibly empty) container prefix; label
	// blocks start right after.
	labelStart := base + int64(8+20+8*hdr.n)
	//pllvet:ignore untrustedalloc hdr.n is paid for: loadHeader read 8n bytes of perm+counts before returning
	di.blockOff = make([]int64, hdr.n+1)
	off := labelStart
	for v := 0; v < hdr.n; v++ {
		di.blockOff[v] = off
		off += int64(hdr.counts[v]) * int64(hdr.entrySize)
	}
	di.blockOff[hdr.n] = off
	// Bit-parallel arrays follow the label region; load them in memory.
	// The capped readers grow behind actual reads, so a hostile header
	// (numBP*n in the billions backed by a kilobyte of file) costs at
	// most allocChunk of memory before the truncation is detected.
	nbp := int64(hdr.numBP) * int64(hdr.n)
	sr := io.NewSectionReader(f, off, 17*nbp) // 1 dist byte + two 8-byte words per entry
	if di.bpDist, err = readBytesCapped(sr, nbp, "bit-parallel distances"); err != nil {
		f.Close()
		return nil, err
	}
	if di.bpS1, err = readU64sCapped(sr, nbp, "S-1 sets"); err != nil {
		f.Close()
		return nil, err
	}
	if di.bpS0, err = readU64sCapped(sr, nbp, "S0 sets"); err != nil {
		f.Close()
		return nil, err
	}
	return di, nil
}

// Close releases the underlying file.
func (di *DiskIndex) Close() error { return di.f.Close() }

// NumVertices returns the number of vertices the index covers.
func (di *DiskIndex) NumVertices() int { return di.n }

// Query returns the exact s-t distance with two ranged file reads, or
// Unreachable. Out-of-range vertices yield an error (unlike the
// in-memory Query, there is no cheap caller-side validation surface).
// DiskIndex is not safe for concurrent use (the read buffers are
// shared); wrap it in a pool for concurrent workloads.
func (di *DiskIndex) Query(s, t int32) (int, error) {
	if s < 0 || int(s) >= di.n || t < 0 || int(t) >= di.n {
		return 0, fmt.Errorf("core: vertex pair (%d,%d) out of range [0,%d)", s, t, di.n)
	}
	if s == t {
		return 0, nil
	}
	rs, rt := di.rank[s], di.rank[t]
	best := infQuery
	// In-memory bit-parallel part (layout v*numBP+i, as written by Save).
	os, ot := int(rs)*di.numBP, int(rt)*di.numBP
	for i := 0; i < di.numBP; i++ {
		ds, dt := di.bpDist[os+i], di.bpDist[ot+i]
		if ds == InfDist || dt == InfDist {
			continue
		}
		td := int(ds) + int(dt)
		if td-2 < best {
			s1s, s1t := di.bpS1[os+i], di.bpS1[ot+i]
			s0s, s0t := di.bpS0[os+i], di.bpS0[ot+i]
			if s1s&s1t != 0 {
				td -= 2
			} else if s1s&s0t != 0 || s0s&s1t != 0 {
				td -= 1
			}
			if td < best {
				best = td
			}
		}
	}
	// Two contiguous disk reads, one per endpoint.
	var err error
	di.bufS, err = di.readBlock(di.bufS, rs)
	if err != nil {
		return 0, err
	}
	di.bufT, err = di.readBlock(di.bufT, rt)
	if err != nil {
		return 0, err
	}
	best = mergeJoinBlocks(di.bufS, di.bufT, di.entrySize, best)
	if best >= infQuery {
		return Unreachable, nil
	}
	return best, nil
}

// readBlock reads the label block of rank r into buf (grown as needed).
func (di *DiskIndex) readBlock(buf []byte, r int32) ([]byte, error) {
	lo, hi := di.blockOff[r], di.blockOff[r+1]
	need := int(hi - lo)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if need == 0 {
		return buf, nil
	}
	if _, err := di.f.ReadAt(buf, lo); err != nil {
		return buf, fmt.Errorf("core: reading label block of rank %d: %w", r, err)
	}
	return buf, nil
}

// mergeJoinBlocks merge-joins two on-disk label blocks (entries of
// [hub int32][dist uint8][parent int32?]) and returns the improved best.
func mergeJoinBlocks(a, b []byte, entrySize, best int) int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		va := int32(binary.LittleEndian.Uint32(a[i:]))
		vb := int32(binary.LittleEndian.Uint32(b[j:]))
		switch {
		case va == vb:
			if d := int(a[i+4]) + int(b[j+4]); d < best {
				best = d
			}
			i += entrySize
			j += entrySize
		case va < vb:
			i += entrySize
		default:
			j += entrySize
		}
	}
	return best
}
