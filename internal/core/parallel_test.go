package core

import (
	"testing"

	"pll/internal/gen"
)

func TestParallelBuildEqualsSequential(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 3)
	seq := buildOrFail(t, g, Options{NumBitParallel: 16, Seed: 2})
	par := buildOrFail(t, g, Options{NumBitParallel: 16, Seed: 2, Workers: 8})
	if seq.ComputeStats() != par.ComputeStats() {
		t.Fatalf("parallel build diverged: %+v vs %+v", seq.ComputeStats(), par.ComputeStats())
	}
	for _, p := range randPairs(500, 500, 5) {
		if seq.Query(p[0], p[1]) != par.Query(p[0], p[1]) {
			t.Fatalf("query mismatch at (%d,%d)", p[0], p[1])
		}
	}
}

func TestParallelBuildWithRace(t *testing.T) {
	// Small but multi-worker; meaningful under -race.
	g := gen.BarabasiAlbert(200, 3, 9)
	ix := buildOrFail(t, g, Options{NumBitParallel: 32, Workers: 4})
	assertMatchesBFS(t, g, ix, 200, 11)
}

func TestParallelBuildMoreWorkersThanRoots(t *testing.T) {
	g := gen.Path(20)
	ix := buildOrFail(t, g, Options{NumBitParallel: 2, Workers: 16})
	assertMatchesBFS(t, g, ix, 100, 3)
}

func TestParallelBuildDiameterError(t *testing.T) {
	g := gen.Path(600)
	if _, err := Build(g, Options{NumBitParallel: 8, Workers: 4}); err == nil {
		t.Fatal("expected diameter error from parallel BP phase")
	}
}

func BenchmarkConstructionParallelBP(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, Options{NumBitParallel: 64, Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructionSequentialBP(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, Options{NumBitParallel: 64}); err != nil {
			b.Fatal(err)
		}
	}
}
