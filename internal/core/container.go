package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Self-describing container format (little endian), version 1.
//
// Every index variant serializes to one uniform envelope so that a
// server can load an index file blind — LoadAny inspects the header and
// returns the right in-memory oracle:
//
//	magic    [8]byte  "PLLBOX" + two zero bytes
//	version  uint16   container format version: 1 = record-oriented
//	                  payloads (this file), 2 = flat zero-copy columnar
//	                  sections (flat.go)
//	variant  uint8    VariantUndirected | VariantDirected |
//	                  VariantWeighted | VariantDynamic
//	flags    uint8    bit 0: compressed payload (delta-varint labels)
//	                  bit 1: payload carries parent pointers (paths)
//	bp       uint32   bit-parallel width (number of BP roots, 0 if none)
//	payload  []byte   the variant's own format, including its magic
//
// The payload keeps its legacy per-variant magic ("PLLIDX01" etc.), so
// a container is also recoverable by tools that only understand the
// inner formats, and LoadAny accepts bare legacy files (no container
// header) by sniffing the first eight bytes.
var containerMagic = [8]byte{'P', 'L', 'L', 'B', 'O', 'X', 0, 0}

// ContainerVersion is the current container format version.
const ContainerVersion uint16 = 1

// Variant tags index flavors inside the container header.
type Variant uint8

const (
	// VariantUndirected is the plain unweighted Index (bit-parallel
	// labels and parent pointers optional).
	VariantUndirected Variant = 1
	// VariantDirected is the DirectedIndex (two label families).
	VariantDirected Variant = 2
	// VariantWeighted is the WeightedIndex (32-bit distances).
	VariantWeighted Variant = 3
	// VariantDynamic tags a snapshot frozen from a DynamicIndex; the
	// payload is the undirected format (plain or compressed) and loads
	// as an Index whose Stats keep the dynamic provenance.
	VariantDynamic Variant = 4
)

// String names the variant for stats output and error messages.
func (v Variant) String() string {
	switch v {
	case VariantUndirected:
		return "undirected"
	case VariantDirected:
		return "directed"
	case VariantWeighted:
		return "weighted"
	case VariantDynamic:
		return "dynamic"
	}
	return fmt.Sprintf("variant(%d)", uint8(v))
}

// Container flag bits.
const (
	// ContainerFlagCompressed marks a delta-varint compressed payload.
	ContainerFlagCompressed uint8 = 1 << 0
	// ContainerFlagPaths marks a payload with per-label parent pointers.
	ContainerFlagPaths uint8 = 1 << 1
	// ContainerFlagSearch marks a flat (version-2) payload carrying the
	// hub-inverted search sections (secInv*), so Open serves
	// KNN/Range/NearestIn zero-copy with no lazy build.
	ContainerFlagSearch uint8 = 1 << 2

	containerKnownFlags = ContainerFlagCompressed | ContainerFlagPaths | ContainerFlagSearch
)

// containerHeaderSize is the fixed byte length of the container header.
const containerHeaderSize = 16

// ContainerHeader is the parsed fixed-size container prefix.
//
// pllvet:untrusted — fields come straight from the file; any
// allocation they size must be capped or grown behind reads.
type ContainerHeader struct {
	Version     uint16
	Variant     Variant
	Flags       uint8
	BitParallel uint32
}

func (h ContainerHeader) encode() [containerHeaderSize]byte {
	var b [containerHeaderSize]byte
	copy(b[:8], containerMagic[:])
	binary.LittleEndian.PutUint16(b[8:10], h.Version)
	b[10] = uint8(h.Variant)
	b[11] = h.Flags
	binary.LittleEndian.PutUint32(b[12:16], h.BitParallel)
	return b
}

// parseContainerHeader validates a fixed-size header buffer. The magic
// must already have been matched by the caller.
func parseContainerHeader(b []byte) (ContainerHeader, error) {
	h := ContainerHeader{
		Version:     binary.LittleEndian.Uint16(b[8:10]),
		Variant:     Variant(b[10]),
		Flags:       b[11],
		BitParallel: binary.LittleEndian.Uint32(b[12:16]),
	}
	if h.Version != ContainerVersion && h.Version != ContainerVersionFlat {
		return h, fmt.Errorf("%w: unsupported container version %d (this build reads versions %d and %d)",
			ErrBadIndexFile, h.Version, ContainerVersion, ContainerVersionFlat)
	}
	switch h.Variant {
	case VariantUndirected, VariantDirected, VariantWeighted, VariantDynamic:
	default:
		return h, fmt.Errorf("%w: unknown variant tag %d", ErrBadIndexFile, uint8(h.Variant))
	}
	if h.Flags&^containerKnownFlags != 0 {
		return h, fmt.Errorf("%w: unknown container flags %#x", ErrBadIndexFile, h.Flags)
	}
	if h.Flags&ContainerFlagCompressed != 0 &&
		h.Variant != VariantUndirected && h.Variant != VariantDynamic {
		return h, fmt.Errorf("%w: compressed flag is not valid for the %s variant", ErrBadIndexFile, h.Variant)
	}
	if h.Version == ContainerVersionFlat && h.Flags&ContainerFlagCompressed != 0 {
		return h, fmt.Errorf("%w: flat containers are never compressed", ErrBadIndexFile)
	}
	if h.Version != ContainerVersionFlat && h.Flags&ContainerFlagSearch != 0 {
		return h, fmt.Errorf("%w: only flat containers carry inverted search sections", ErrBadIndexFile)
	}
	return h, nil
}

// countWriter counts bytes for the io.WriterTo contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// writeContainer emits the header and then the payload, returning the
// total bytes written.
func writeContainer(w io.Writer, h ContainerHeader, payload func(io.Writer) error) (int64, error) {
	cw := &countWriter{w: w}
	hdr := h.encode()
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	if err := payload(cw); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteTo writes the index as a self-describing container (plain
// payload). It implements io.WriterTo. Indexes frozen from a
// DynamicIndex keep the dynamic variant tag so the provenance survives
// round trips.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	h := ContainerHeader{
		Version:     ContainerVersion,
		Variant:     ix.Variant(),
		BitParallel: uint32(ix.numBP),
	}
	if ix.labelParent != nil {
		h.Flags |= ContainerFlagPaths
	}
	return writeContainer(w, h, ix.Save)
}

// WriteToCompressed writes the index as a container with a delta-varint
// compressed payload. Parent pointers are not supported.
func (ix *Index) WriteToCompressed(w io.Writer) (int64, error) {
	if ix.labelParent != nil {
		// Checked before the header goes out so a failed call writes no
		// bytes (a partial header would corrupt the destination).
		return 0, fmt.Errorf("core: compressed format does not support parent pointers")
	}
	h := ContainerHeader{
		Version:     ContainerVersion,
		Variant:     ix.Variant(),
		Flags:       ContainerFlagCompressed,
		BitParallel: uint32(ix.numBP),
	}
	return writeContainer(w, h, ix.SaveCompressed)
}

// WriteTo writes the directed index as a self-describing container.
func (ix *DirectedIndex) WriteTo(w io.Writer) (int64, error) {
	if ix.outParent != nil {
		return 0, fmt.Errorf("core: directed format does not support parent pointers")
	}
	h := ContainerHeader{Version: ContainerVersion, Variant: VariantDirected}
	return writeContainer(w, h, ix.Save)
}

// WriteTo writes the weighted index as a self-describing container.
func (ix *WeightedIndex) WriteTo(w io.Writer) (int64, error) {
	if ix.labelParent != nil {
		return 0, fmt.Errorf("core: weighted format does not support parent pointers")
	}
	h := ContainerHeader{Version: ContainerVersion, Variant: VariantWeighted}
	return writeContainer(w, h, ix.Save)
}

// WriteTo freezes the dynamic index and writes the snapshot as a
// container tagged VariantDynamic. Loading it yields a static Index
// whose Stats keep the dynamic provenance (edge insertion does not
// survive serialization).
func (di *DynamicIndex) WriteTo(w io.Writer) (int64, error) {
	return di.Freeze().WriteTo(w)
}

// LoadAny reads any index file — a version-1 container or a bare legacy
// payload ("PLLIDX01" / "PLLIDXC1" / "PLLIDXW1" / "PLLIDXD1") — and
// returns the matching oracle: *Index, *DirectedIndex or
// *WeightedIndex. VariantDynamic containers load as a static *Index
// snapshot. Malformed input yields an error wrapping ErrBadIndexFile.
func LoadAny(r io.Reader) (any, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadIndexFile, err)
	}
	if [8]byte(magic) != containerMagic {
		// Bare legacy payload; each loader re-checks its own magic.
		switch [8]byte(magic) {
		case indexMagic:
			return loadPlain(br)
		case compressedMagic:
			return loadCompressedPayload(br)
		case weightedMagic:
			return loadWeightedPayload(br)
		case directedMagic:
			return loadDirectedPayload(br)
		}
		return nil, fmt.Errorf("%w: unrecognized magic %q", ErrBadIndexFile, magic)
	}
	var hdr [containerHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated container header: %v", ErrBadIndexFile, err)
	}
	h, err := parseContainerHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if h.Version == ContainerVersionFlat {
		// Flat (version-2) payload: one columnar image, heap-loaded here
		// with full per-entry validation. OpenFlat is the zero-copy path.
		return loadFlatFromReader(br, h)
	}
	switch h.Variant {
	case VariantUndirected, VariantDynamic:
		var ix *Index
		if h.Flags&ContainerFlagCompressed != 0 {
			ix, err = loadCompressedPayload(br)
		} else {
			ix, err = loadPlain(br)
		}
		if err != nil {
			return nil, err
		}
		if h.Variant == VariantDynamic {
			ix.origin = VariantDynamic
		}
		return ix, nil
	case VariantDirected:
		return loadDirectedPayload(br)
	case VariantWeighted:
		return loadWeightedPayload(br)
	}
	return nil, fmt.Errorf("%w: unknown variant tag %d", ErrBadIndexFile, uint8(h.Variant))
}

// LoadAnyFile reads any index file from a path.
func LoadAnyFile(path string) (any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadAny(f)
}
