package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pll/internal/gen"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 7)
	ix := buildOrFail(t, g, Options{NumBitParallel: 4, Seed: 2})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != 150 || loaded.NumBitParallelRoots() != 4 {
		t.Fatalf("loaded header wrong: n=%d bp=%d", loaded.NumVertices(), loaded.NumBitParallelRoots())
	}
	for _, p := range randPairs(150, 400, 5) {
		if ix.Query(p[0], p[1]) != loaded.Query(p[0], p[1]) {
			t.Fatalf("query mismatch after round trip at (%d,%d)", p[0], p[1])
		}
	}
	if loaded.ComputeStats() != ix.ComputeStats() {
		t.Fatal("stats changed through round trip")
	}
}

func TestSaveLoadWithParents(t *testing.T) {
	g := gen.BarabasiAlbert(80, 2, 9)
	ix := buildOrFail(t, g, Options{StorePaths: true, Seed: 1})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasPaths() {
		t.Fatal("parent pointers lost in round trip")
	}
	for _, p := range randPairs(80, 60, 3) {
		want, err1 := ix.QueryPath(p[0], p[1])
		got, err2 := loaded.QueryPath(p[0], p[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("path errors: %v %v", err1, err2)
		}
		if len(want) != len(got) {
			t.Fatalf("path length changed: %d vs %d", len(want), len(got))
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := gen.Path(20)
	ix := buildOrFail(t, g, Options{})
	path := filepath.Join(t.TempDir(), "ix.pll")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Query(0, 19) != 19 {
		t.Fatal("loaded index answers wrong")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.pll")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	data := []byte("NOTANIDX0000000000000000000000000000")
	_, err := Load(bytes.NewReader(data))
	if !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("err = %v, want ErrBadIndexFile", err)
	}
}

func TestLoadRejectsEmpty(t *testing.T) {
	_, err := Load(bytes.NewReader(nil))
	if !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("err = %v, want ErrBadIndexFile", err)
	}
}

func TestLoadRejectsTruncationEverywhere(t *testing.T) {
	// Chop a valid index file at many byte offsets; every prefix must be
	// rejected with ErrBadIndexFile (and must not panic).
	g := gen.BarabasiAlbert(40, 2, 3)
	ix := buildOrFail(t, g, Options{NumBitParallel: 2})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full)-1; cut += 97 {
		_, err := Load(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
		if !errors.Is(err, ErrBadIndexFile) {
			t.Fatalf("truncation at %d: err = %v, want ErrBadIndexFile", cut, err)
		}
	}
}

func TestLoadRejectsCorruptPermutation(t *testing.T) {
	g := gen.Path(10)
	ix := buildOrFail(t, g, Options{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// First perm entry lives right after magic(8)+flags(4)+n(8)+numBP(8).
	off := 28
	copy(data[off:], []byte{0xff, 0xff, 0xff, 0x7f}) // out of range
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("err = %v, want ErrBadIndexFile", err)
	}
}

func TestLoadRejectsUnknownFlags(t *testing.T) {
	g := gen.Path(5)
	ix := buildOrFail(t, g, Options{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] |= 0x80 // set an undefined flag bit
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("err = %v, want ErrBadIndexFile", err)
	}
}

func TestLoadRejectsImplausibleSizes(t *testing.T) {
	// Header claiming n = 2^40 vertices must be rejected before any
	// allocation is attempted.
	data := append([]byte{}, indexMagic[:]...)
	hdr := make([]byte, 20)
	// flags = 0, n = 1<<40, numBP = 0.
	hdr[4+5] = 0x01 // byte 5 of the little-endian n field => 2^40
	data = append(data, hdr...)
	_, err := Load(bytes.NewReader(data))
	if !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("err = %v, want ErrBadIndexFile", err)
	}
	// Implausible bit-parallel root count.
	data2 := append([]byte{}, indexMagic[:]...)
	hdr2 := make([]byte, 20)
	hdr2[4] = 1    // n = 1
	hdr2[12+2] = 1 // numBP = 1<<16
	data2 = append(data2, hdr2...)
	if _, err := Load(bytes.NewReader(data2)); !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("numBP err = %v, want ErrBadIndexFile", err)
	}
}

func TestDiskIndexMatchesMemory(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 19)
	ix := buildOrFail(t, g, Options{NumBitParallel: 4, Seed: 6})
	path := filepath.Join(t.TempDir(), "disk.pll")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDiskIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	if di.NumVertices() != 200 {
		t.Fatalf("disk index n = %d", di.NumVertices())
	}
	for _, p := range randPairs(200, 500, 21) {
		got, err := di.Query(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if want := ix.Query(p[0], p[1]); got != want {
			t.Fatalf("disk Query(%d,%d) = %d, want %d", p[0], p[1], got, want)
		}
	}
}

func TestDiskIndexWithParents(t *testing.T) {
	// Parent pointers widen on-disk entries; distance queries must still
	// be correct.
	g := gen.BarabasiAlbert(100, 2, 23)
	ix := buildOrFail(t, g, Options{StorePaths: true})
	path := filepath.Join(t.TempDir(), "diskp.pll")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	di, err := OpenDiskIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	for _, p := range randPairs(100, 200, 2) {
		got, err := di.Query(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if want := ix.Query(p[0], p[1]); got != want {
			t.Fatalf("disk Query(%d,%d) = %d, want %d", p[0], p[1], got, want)
		}
	}
}

func TestOpenDiskIndexMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenDiskIndex(filepath.Join(dir, "missing.pll")); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.pll")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskIndex(bad); err == nil {
		t.Fatal("expected error for corrupt file")
	}
}

func BenchmarkDiskQuery(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 4, 1)
	ix, err := Build(g, Options{NumBitParallel: 8})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.pll")
	if err := ix.SaveFile(path); err != nil {
		b.Fatal(err)
	}
	di, err := OpenDiskIndex(path)
	if err != nil {
		b.Fatal(err)
	}
	defer di.Close()
	pairs := randPairs(5000, 1024, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		if _, err := di.Query(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}
