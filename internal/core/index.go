// Package core implements pruned landmark labeling (PLL), the primary
// contribution of Akiba, Iwata and Yoshida (SIGMOD 2013), together with
// its bit-parallel labeling extension and the directed / weighted /
// shortest-path variants of §6.
//
// An Index is a distance-aware 2-hop cover: each vertex v carries a label
// L(v) of (hub, distance) pairs such that for every reachable pair (s,t)
// some hub on a shortest s-t path appears in both L(s) and L(t). A query
// is a merge join of two sorted label arrays plus a constant-time check
// against each bit-parallel root set (§5.3).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// InfDist is the in-label encoding of "unreachable". Labels store 8-bit
// distances (§4.5 "Arrays"): real distances must stay below InfDist.
const InfDist uint8 = math.MaxUint8

// MaxDist is the largest representable finite distance.
const MaxDist = int(InfDist) - 1

// Unreachable is returned by Query for disconnected pairs.
const Unreachable = -1

// infQuery is the query accumulator's initial value. Any real answer is
// at most 2*MaxDist = 508 (two 8-bit label distances summed as ints), so
// a result that still equals infQuery means no hub connects the pair.
const infQuery = int(InfDist) + int(InfDist)

// ErrDiameterTooLarge is returned by Build when a breadth-first search
// exceeds the 8-bit distance budget. The paper targets small-world
// networks where this cannot happen; structured graphs with diameter
// >= 255 need the weighted variant (32-bit distances).
var ErrDiameterTooLarge = errors.New("core: graph diameter exceeds the 8-bit distance budget (254)")

// Index is an immutable pruned-landmark-labeling index over an
// undirected, unweighted graph. Build one with Build; query it with
// Query, QueryPath, or through a DiskIndex.
//
// Internally vertices are identified by rank (position in the
// construction order): labels store ranks so that they are sorted
// automatically (§4.5 "Sorting Labels"), and the arrays of hub ranks and
// distances are kept separate (§4.5 "Querying"). Each per-vertex label
// ends with a sentinel pair (n, InfDist) so the merge join needs no
// bounds checks.
type Index struct {
	n      int
	origin Variant // VariantDynamic when frozen from a DynamicIndex, else undirected
	perm   []int32 // rank -> original vertex ID
	rank   []int32 // original vertex ID -> rank

	labelOff    []int64 // len n+1, offsets into the label arrays, indexed by rank
	labelVertex []int32 // hub ranks, ascending per vertex, sentinel n
	labelDist   []uint8 // distances parallel to labelVertex, sentinel InfDist
	labelParent []int32 // optional BFS-tree parents (ranks), sentinel -1; nil unless built with StorePaths

	numBP  int      // number of bit-parallel roots (t in §5.4)
	bpDist []uint8  // [n][numBP] distances from BP root i, flattened v*numBP+i (per-vertex interleaving keeps prune tests and queries on one cache line)
	bpS1   []uint64 // S^{-1} sets as 64-bit masks, same layout
	bpS0   []uint64 // S^{0} sets, same layout

	batchPool sync.Pool   // recycles *BatchSource scratch for DistanceFrom
	search    searchState // lazily built hub-inverted index (search.go)
}

// NumVertices returns the number of vertices the index covers.
func (ix *Index) NumVertices() int { return ix.n }

// Variant reports the flavor recorded in container headers and Stats:
// undirected, or dynamic for indexes frozen from a DynamicIndex (the
// provenance survives serialization round trips).
func (ix *Index) Variant() Variant {
	if ix.origin == VariantDynamic {
		return VariantDynamic
	}
	return VariantUndirected
}

// NumBitParallelRoots returns how many bit-parallel BFS roots were used.
func (ix *Index) NumBitParallelRoots() int { return ix.numBP }

// HasPaths reports whether the index stores parent pointers and can
// answer QueryPath.
func (ix *Index) HasPaths() bool { return ix.labelParent != nil }

// Query returns the exact shortest-path distance between vertices s and
// t, or Unreachable if they are in different components. It panics if s
// or t is out of range, mirroring slice indexing semantics.
func (ix *Index) Query(s, t int32) int {
	if s == t {
		return 0
	}
	rs, rt := ix.rank[s], ix.rank[t]
	best := ix.bpQuery(rs, rt, infQuery)
	best = ix.normalQuery(rs, rt, best)
	if best >= infQuery {
		return Unreachable
	}
	return best
}

// bpQuery lowers best using the bit-parallel labels (§5.3): for each BP
// root r with neighbor set S_r, the distance through {r} ∪ S_r is
// d(s,r)+d(r,t) minus 2 if the S^{-1} sets intersect, minus 1 if an
// S^{-1} set meets an S^{0} set.
func (ix *Index) bpQuery(rs, rt int32, best int) int {
	os, ot := int(rs)*ix.numBP, int(rt)*ix.numBP
	for i := 0; i < ix.numBP; i++ {
		ds, dt := ix.bpDist[os+i], ix.bpDist[ot+i]
		if ds == InfDist || dt == InfDist {
			continue
		}
		td := int(ds) + int(dt)
		if td-2 < best {
			s1s, s1t := ix.bpS1[os+i], ix.bpS1[ot+i]
			s0s, s0t := ix.bpS0[os+i], ix.bpS0[ot+i]
			if s1s&s1t != 0 {
				td -= 2
			} else if s1s&s0t != 0 || s0s&s1t != 0 {
				td -= 1
			}
			if td < best {
				best = td
			}
		}
	}
	return best
}

// normalQuery lowers best using the sentinel-terminated merge join over
// the two sorted label arrays.
func (ix *Index) normalQuery(rs, rt int32, best int) int {
	i, j := ix.labelOff[rs], ix.labelOff[rt]
	for {
		vs, vt := ix.labelVertex[i], ix.labelVertex[j]
		switch {
		case vs == vt:
			if int(vs) == ix.n { // both hit the sentinel
				return best
			}
			if d := int(ix.labelDist[i]) + int(ix.labelDist[j]); d < best {
				best = d
			}
			i++
			j++
		case vs < vt:
			i++
		default:
			j++
		}
	}
}

// Label returns the (hub, distance) pairs of vertex v's normal label with
// hubs translated back to original vertex IDs, excluding the sentinel.
// It is intended for inspection and experiments, not hot paths.
func (ix *Index) Label(v int32) (hubs []int32, dists []uint8) {
	r := ix.rank[v]
	lo, hi := ix.labelOff[r], ix.labelOff[r+1]-1 // drop sentinel
	hubs = make([]int32, 0, hi-lo)
	dists = make([]uint8, 0, hi-lo)
	for i := lo; i < hi; i++ {
		hubs = append(hubs, ix.perm[ix.labelVertex[i]])
		dists = append(dists, ix.labelDist[i])
	}
	return hubs, dists
}

// LabelSize returns the number of entries in v's normal label (sentinel
// excluded).
func (ix *Index) LabelSize(v int32) int {
	r := ix.rank[v]
	return int(ix.labelOff[r+1] - ix.labelOff[r] - 1)
}

// Stats summarizes an index for the paper's IS / LN columns. Every
// variant produces the same struct, so metrics and serving layers can
// introspect any oracle uniformly; Variant names the flavor.
type Stats struct {
	Variant            Variant
	NumVertices        int
	NumBitParallel     int
	TotalLabelEntries  int64   // normal label entries over all vertices (no sentinels)
	AvgLabelSize       float64 // LN's left component
	MaxLabelSize       int
	IndexBytes         int64 // estimated in-memory footprint of label + BP arrays
	BitParallelBytes   int64
	NormalLabelBytes   int64
	HasParentPointers  bool
	LabelSizeQuantiles [5]int // min, p25, p50, p75, max of per-vertex label sizes

	// Hub-occupancy distribution: how the normal label entries spread
	// over hubs (the inverted view behind the search subsystem).
	DistinctHubs int     // hubs carried by at least one label entry
	MaxHubLoad   int     // label entries carried by the most frequent hub
	AvgHubLoad   float64 // label entries per occupied hub
}

// ComputeStats scans the index and returns summary statistics.
func (ix *Index) ComputeStats() Stats {
	st := Stats{
		Variant:           ix.Variant(),
		NumVertices:       ix.n,
		NumBitParallel:    ix.numBP,
		HasParentPointers: ix.HasPaths(),
	}
	sizes := make([]int, ix.n)
	for r := 0; r < ix.n; r++ {
		sz := int(ix.labelOff[r+1] - ix.labelOff[r] - 1)
		sizes[r] = sz
		st.TotalLabelEntries += int64(sz)
		if sz > st.MaxLabelSize {
			st.MaxLabelSize = sz
		}
	}
	if ix.n > 0 {
		st.AvgLabelSize = float64(st.TotalLabelEntries) / float64(ix.n)
	}
	insertionSortQuantiles(sizes, &st.LabelSizeQuantiles)
	applyHubStats(&st, ix.n, ix.labelVertex)
	st.NormalLabelBytes = int64(len(ix.labelVertex))*4 + int64(len(ix.labelDist))
	if ix.labelParent != nil {
		st.NormalLabelBytes += int64(len(ix.labelParent)) * 4
	}
	st.BitParallelBytes = int64(len(ix.bpDist)) + int64(len(ix.bpS1))*8 + int64(len(ix.bpS0))*8
	st.IndexBytes = st.NormalLabelBytes + st.BitParallelBytes + int64(len(ix.labelOff))*8 + int64(len(ix.perm))*8
	return st
}

// insertionSortQuantiles fills q with min/p25/p50/p75/max of sizes.
func insertionSortQuantiles(sizes []int, q *[5]int) {
	if len(sizes) == 0 {
		return
	}
	sorted := make([]int, len(sizes))
	copy(sorted, sizes)
	sort.Ints(sorted)
	n := len(sorted)
	q[0] = sorted[0]
	q[1] = sorted[n/4]
	q[2] = sorted[n/2]
	q[3] = sorted[3*n/4]
	q[4] = sorted[n-1]
}

// LabelSizeDistribution returns per-vertex normal label sizes sorted
// ascending (Figure 3c).
func (ix *Index) LabelSizeDistribution() []int {
	sizes := make([]int, ix.n)
	for r := 0; r < ix.n; r++ {
		sizes[r] = int(ix.labelOff[r+1] - ix.labelOff[r] - 1)
	}
	sort.Ints(sizes)
	return sizes
}

// QueryPath returns one exact shortest path (inclusive of endpoints)
// between s and t, or nil if unreachable. The index must have been built
// with StorePaths; otherwise an error is returned.
func (ix *Index) QueryPath(s, t int32) ([]int32, error) {
	if ix.labelParent == nil {
		return nil, errors.New("core: index was built without StorePaths")
	}
	if s == t {
		return []int32{s}, nil
	}
	rs, rt := ix.rank[s], ix.rank[t]
	// Find the hub achieving the minimum via the merge join.
	best := infQuery
	hub := int32(-1)
	i, j := ix.labelOff[rs], ix.labelOff[rt]
	for {
		vs, vt := ix.labelVertex[i], ix.labelVertex[j]
		if vs == vt {
			if int(vs) == ix.n {
				break
			}
			if d := int(ix.labelDist[i]) + int(ix.labelDist[j]); d < best {
				best = d
				hub = vs
			}
			i++
			j++
		} else if vs < vt {
			i++
		} else {
			j++
		}
	}
	if hub < 0 {
		return nil, nil // unreachable
	}
	// Walk parent chains from both endpoints up to the hub. Every vertex
	// on the pruned-BFS tree path from the hub to a labeled vertex is
	// itself labeled with the hub (it was expanded, hence labeled), so
	// the chains are well defined.
	up, err := ix.chainToHub(rs, hub)
	if err != nil {
		return nil, err
	}
	down, err := ix.chainToHub(rt, hub)
	if err != nil {
		return nil, err
	}
	// up = [s ... hub], down = [t ... hub]; join them.
	path := make([]int32, 0, len(up)+len(down)-1)
	for _, r := range up {
		path = append(path, ix.perm[r])
	}
	for k := len(down) - 2; k >= 0; k-- {
		path = append(path, ix.perm[down[k]])
	}
	return path, nil
}

// chainToHub follows parent pointers from rank r to the hub rank,
// returning the rank sequence [r ... hub].
func (ix *Index) chainToHub(r, hub int32) ([]int32, error) {
	chain := []int32{r}
	cur := r
	for cur != hub {
		lo, hi := ix.labelOff[cur], ix.labelOff[cur+1]-1
		idx := searchLabel(ix.labelVertex[lo:hi], hub)
		if idx < 0 {
			return nil, fmt.Errorf("core: broken parent chain at rank %d for hub %d", cur, hub)
		}
		p := ix.labelParent[lo+int64(idx)]
		if p < 0 { // reached the hub's own self entry
			break
		}
		chain = append(chain, p)
		cur = p
	}
	return chain, nil
}

// searchLabel finds hub in the sorted rank slice, returning its position
// or -1.
func searchLabel(vertices []int32, hub int32) int {
	lo, hi := 0, len(vertices)
	for lo < hi {
		mid := (lo + hi) / 2
		if vertices[mid] < hub {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(vertices) && vertices[lo] == hub {
		return lo
	}
	return -1
}
