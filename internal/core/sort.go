package core

import "sort"

func sortInts(s []int) { sort.Ints(s) }
