package core

// Internals of the flat (version-2) container: section alignment, the
// zero-copy aliasing guarantee, and agreement between the mmap parser
// (structural validation) and the heap parser (full validation).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pll/internal/gen"
)

func buildFlatTestIndex(t testing.TB) *Index {
	t.Helper()
	g := gen.BarabasiAlbert(300, 3, 11)
	ix, err := Build(g, Options{Seed: 11, NumBitParallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestFlatSectionsAligned walks the written section table: every
// section must start 8-byte aligned, lie inside the file, and not
// overlap the table.
func TestFlatSectionsAligned(t *testing.T) {
	ix := buildFlatTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteFlat(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	nsec := binary.LittleEndian.Uint32(data[24:28])
	if nsec != 8 { // perm, rank, off, vertex, dist, bpDist, bpS1, bpS0
		t.Fatalf("bit-parallel index wrote %d sections, want 8", nsec)
	}
	tableEnd := uint64(32 + 24*nsec)
	for i := uint64(0); i < uint64(nsec); i++ {
		b := data[32+24*i:]
		off := binary.LittleEndian.Uint64(b[8:16])
		count := binary.LittleEndian.Uint64(b[16:24])
		elem := uint64(binary.LittleEndian.Uint32(b[4:8]))
		if off%8 != 0 {
			t.Fatalf("section %d starts at unaligned offset %d", i, off)
		}
		if off < tableEnd || off+count*elem > uint64(len(data)) {
			t.Fatalf("section %d [%d, %d) escapes the file of %d bytes",
				i, off, off+count*elem, len(data))
		}
	}
}

// TestOpenFlatAliasesMapping proves zero-copy on little-endian hosts:
// the opened index's arrays must point into the mapped image, not at
// heap copies.
func TestOpenFlatAliasesMapping(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("aliasing requires a little-endian host")
	}
	ix := buildFlatTestIndex(t)
	path := filepath.Join(t.TempDir(), "flat.pllbox")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteFlat(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if !fs.ZeroCopy() {
		t.Fatal("OpenFlat fell back to copying on a little-endian host")
	}
	got, ok := fs.Oracle().(*Index)
	if !ok {
		t.Fatalf("oracle is %T, want *Index", fs.Oracle())
	}
	if got.n != ix.n || got.numBP != ix.numBP {
		t.Fatalf("header mismatch: n=%d bp=%d, want n=%d bp=%d", got.n, got.numBP, ix.n, ix.numBP)
	}
	// Exhaustive answer equivalence against the built index.
	for s := int32(0); s < int32(ix.n); s += 7 {
		for v := int32(0); v < int32(ix.n); v++ {
			if got.Query(s, v) != ix.Query(s, v) {
				t.Fatalf("mapped Query(%d,%d) diverges", s, v)
			}
		}
	}
}

// TestFlatHeapAndMapAgree runs the same bytes through the reader-based
// full-validation loader and the aliasing parser; both must accept and
// answer identically.
func TestFlatHeapAndMapAgree(t *testing.T) {
	ix := buildFlatTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteFlat(&buf); err != nil {
		t.Fatal(err)
	}
	heapLoaded, err := LoadAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	hx := heapLoaded.(*Index)

	data := append([]byte(nil), buf.Bytes()...)
	fs, err := newFlatStore(data, int64(len(data)), func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	mx := fs.Oracle().(*Index)
	for s := int32(0); s < int32(ix.n); s += 13 {
		for v := int32(0); v < int32(ix.n); v++ {
			if hx.Query(s, v) != mx.Query(s, v) || hx.Query(s, v) != ix.Query(s, v) {
				t.Fatalf("heap/map/built answers diverge at (%d,%d)", s, v)
			}
		}
	}
}

// TestOpenFlatRejectsV1 ensures version-1 files are routed to the heap
// loader with the ErrNotFlat sentinel rather than a format error.
func TestOpenFlatRejectsV1(t *testing.T) {
	ix := buildFlatTestIndex(t)
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.pllbox")
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenFlat(v1); !errors.Is(err, ErrNotFlat) {
		t.Fatalf("OpenFlat(v1): got %v, want ErrNotFlat", err)
	}
	if errors.Is(ErrNotFlat, ErrBadIndexFile) {
		t.Fatal("ErrNotFlat must not wrap ErrBadIndexFile: it marks a valid, convertible file")
	}
}

// TestDiskIndexRejectsFlat keeps the two on-disk paths from being
// crossed: DiskIndex ranged reads need the version-1 record layout.
func TestDiskIndexRejectsFlat(t *testing.T) {
	ix := buildFlatTestIndex(t)
	path := filepath.Join(t.TempDir(), "flat.pllbox")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteFlat(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenDiskIndex(path); !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("OpenDiskIndex(flat): got %v, want ErrBadIndexFile", err)
	}
}
