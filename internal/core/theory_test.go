package core

import (
	"math"
	"testing"

	"pll/internal/baseline"
	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/order"
	"pll/internal/rng"
)

// TestTheorem43CoverageBoundsLabelSize checks the §4.6.2 bound: if k
// degree-ordered landmarks answer a (1-ε) fraction of pairs exactly,
// then the average PLL label size is O(k + εn).
func TestTheorem43CoverageBoundsLabelSize(t *testing.T) {
	g := gen.BarabasiAlbert(600, 3, 17)
	n := g.NumVertices()
	const k = 32
	perm := order.ByDegree(g, 1)
	lm := baseline.BuildLandmarks(g, perm, k)

	// Estimate ε by sampling.
	r := rng.New(5)
	const pairs = 4000
	miss := 0
	for i := 0; i < pairs; i++ {
		s, u := r.Int31n(int32(n)), r.Int31n(int32(n))
		if lm.Estimate(s, u) != int(bfs.Distance(g, s, u)) {
			miss++
		}
	}
	eps := float64(miss) / pairs

	ix := buildOrFail(t, g, Options{CustomOrder: perm})
	avg := ix.ComputeStats().AvgLabelSize
	// Theorem: avg = O(k + εn). Allow a generous constant of 4 plus the
	// sampling slack.
	bound := 4 * (float64(k) + (eps+0.02)*float64(n))
	if avg > bound {
		t.Fatalf("avg label %.1f exceeds Theorem 4.3 bound %.1f (k=%d, eps=%.3f, n=%d)",
			avg, bound, k, eps, n)
	}
}

// TestTheorem44TreesLogarithmicLabels checks the §4.6.3 regime on
// tree-width-1 inputs: with a good (centroid-like) order, label sizes
// are O(log n). Degree order is not centroid order, but on random trees
// it still produces labels growing far slower than n — quadrupling n
// must grow the average label far less than 4x.
func TestTheorem44TreesLogarithmicLabels(t *testing.T) {
	avgFor := func(n int) float64 {
		g := gen.RandomTree(n, 3)
		ix := buildOrFail(t, g, Options{Ordering: order.Degree, Seed: 1})
		return ix.ComputeStats().AvgLabelSize
	}
	small := avgFor(1000)
	big := avgFor(4000)
	if big > 2*small {
		t.Fatalf("tree labels grew %.1f -> %.1f on 4x vertices; expected sublinear (Thm 4.4)", small, big)
	}
	// Absolute scale: should be within a small factor of log2(n).
	if big > 8*math.Log2(4000) {
		t.Fatalf("tree avg label %.1f far above O(log n) (log2(n)=%.1f)", big, math.Log2(4000))
	}
}

// TestTheorem44CentroidOrderOnPath demonstrates the theorem's
// constructive side: ordering a path by centroid decomposition (repeated
// bisection) yields labels of size exactly O(log n).
func TestTheorem44CentroidOrderOnPath(t *testing.T) {
	const n = 256
	g := gen.Path(n)
	// Centroid order of a path = breadth-first midpoints: 128, 64, 192, ...
	perm := make([]int32, 0, n)
	type seg struct{ lo, hi int32 }
	queue := []seg{{0, n - 1}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s.lo > s.hi {
			continue
		}
		mid := (s.lo + s.hi) / 2
		perm = append(perm, mid)
		queue = append(queue, seg{s.lo, mid - 1}, seg{mid + 1, s.hi})
	}
	ix := buildOrFail(t, g, Options{CustomOrder: perm})
	st := ix.ComputeStats()
	// Every label is bounded by the recursion depth + 1.
	maxAllowed := int(math.Log2(n)) + 2
	if st.MaxLabelSize > maxAllowed {
		t.Fatalf("centroid-ordered path max label %d > %d (= log2(n)+2)", st.MaxLabelSize, maxAllowed)
	}
	assertMatchesBFS(t, g, ix, 200, 9)
}

// TestGridLabelsScaleWithWidth exercises the O(w log n) claim: a grid's
// tree-width is its smaller side; widening it grows labels roughly
// linearly in w while the vertex count is held fixed.
func TestGridLabelsScaleWithWidth(t *testing.T) {
	narrow := buildOrFail(t, gen.Grid(4, 256), Options{Seed: 1}) // w=4,  n=1024
	wide := buildOrFail(t, gen.Grid(32, 32), Options{Seed: 1})   // w=32, n=1024
	a := narrow.ComputeStats().AvgLabelSize
	b := wide.ComputeStats().AvgLabelSize
	if b < a {
		t.Fatalf("wider grid should carry bigger labels: w=4 -> %.1f, w=32 -> %.1f", a, b)
	}
	// And both stay far below n.
	if b > 1024/4 {
		t.Fatalf("grid labels %.1f not sublinear in n", b)
	}
}
