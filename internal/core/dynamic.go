package core

import (
	"fmt"
	"sort"
	"sync"

	"pll/internal/graph"
	"pll/internal/order"
)

// DynamicIndex is an incrementally updatable pruned-landmark-labeling
// index: edges can be inserted after construction and queries stay
// exact. This implements the paper's stated direction of handling
// evolving networks (§8), following the resumed-pruned-BFS technique
// of the authors' follow-up work (Akiba, Iwata, Yoshida, WWW 2014):
// inserting edge (a,b) resumes a pruned BFS from every hub of L(a)
// through b and vice versa, inserting or decreasing label entries.
// After updates the index remains a correct 2-hop cover; it may lose
// minimality (stale over-estimates are kept but never win a merge join).
//
// Bit-parallel labels are not used: they cannot be patched incrementally.
type DynamicIndex struct {
	n    int
	perm []int32
	rank []int32

	// adjacency by rank, growable.
	adj [][]int32

	// labels by rank, sorted by hub rank ascending.
	labV [][]int32
	labD [][]uint8

	// scratch for resumed BFSs.
	dist    []uint8
	rootLab []uint8
	queue   []int32

	batchPool sync.Pool // recycles *rankScratch8 for DistanceFrom
}

// BuildDynamic constructs a dynamic index. Options follow Build except
// that bit-parallel labeling and path storage are unavailable.
func BuildDynamic(g *graph.Graph, opt Options) (*DynamicIndex, error) {
	if opt.NumBitParallel != 0 {
		return nil, fmt.Errorf("core: DynamicIndex does not support bit-parallel labels")
	}
	if opt.StorePaths {
		return nil, fmt.Errorf("core: DynamicIndex does not support path storage")
	}
	n := g.NumVertices()
	perm := opt.CustomOrder
	if perm == nil {
		perm = order.Compute(g, opt.Ordering, opt.Seed)
	} else if len(perm) != n {
		return nil, fmt.Errorf("core: CustomOrder length %d != n %d", len(perm), n)
	}
	h, err := g.Relabel(perm)
	if err != nil {
		return nil, fmt.Errorf("core: invalid CustomOrder: %w", err)
	}

	ix := &Index{n: n, perm: append([]int32(nil), perm...), rank: order.RankOf(perm)}
	b := newBuilder(h, ix, false, nil)
	if err := b.runBitParallelPhase(0, 1); err != nil {
		return nil, err
	}
	// The initial build is the batch-parallel pruned labeling of
	// parallel.go (byte-identical to sequential); incremental updates
	// stay sequential — resumed BFSs patch labels in place.
	if workers := EffectiveWorkers(opt.Workers); workers > 1 {
		if err := b.runPrunedPhaseParallel(workers); err != nil {
			return nil, err
		}
	} else if err := b.runPrunedPhase(); err != nil {
		return nil, err
	}

	di := &DynamicIndex{
		n:       n,
		perm:    ix.perm,
		rank:    ix.rank,
		adj:     make([][]int32, n),
		labV:    b.labV,
		labD:    b.labD,
		dist:    make([]uint8, n),
		rootLab: make([]uint8, n+1),
		queue:   make([]int32, 0, 1024),
	}
	for v := int32(0); int(v) < n; v++ {
		di.adj[v] = append([]int32(nil), h.Neighbors(v)...)
	}
	for i := range di.dist {
		di.dist[i] = InfDist
	}
	for i := range di.rootLab {
		di.rootLab[i] = InfDist
	}
	return di, nil
}

// NumVertices returns the number of vertices the index covers.
func (di *DynamicIndex) NumVertices() int { return di.n }

// Query returns the exact s-t distance under all edges inserted so far,
// or Unreachable.
func (di *DynamicIndex) Query(s, t int32) int {
	if s == t {
		return 0
	}
	return di.queryRank(di.rank[s], di.rank[t])
}

func (di *DynamicIndex) queryRank(rs, rt int32) int {
	best := infQuery
	av, ad := di.labV[rs], di.labD[rs]
	bv, bd := di.labV[rt], di.labD[rt]
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		switch {
		case av[i] == bv[j]:
			if d := int(ad[i]) + int(bd[j]); d < best {
				best = d
			}
			i++
			j++
		case av[i] < bv[j]:
			i++
		default:
			j++
		}
	}
	if best >= infQuery {
		return Unreachable
	}
	return best
}

// InsertEdge adds the undirected edge {a, b} and repairs the labels so
// queries remain exact. Inserting an existing edge or a self-loop is a
// no-op. It returns the number of label entries added or decreased.
func (di *DynamicIndex) InsertEdge(a, b int32) (updated int, err error) {
	if a < 0 || int(a) >= di.n || b < 0 || int(b) >= di.n {
		return 0, fmt.Errorf("core: edge (%d,%d) out of range [0,%d)", a, b, di.n)
	}
	if a == b {
		return 0, nil
	}
	ra, rb := di.rank[a], di.rank[b]
	if containsSorted(di.adj[ra], rb) {
		return 0, nil
	}
	di.adj[ra] = insertSorted(di.adj[ra], rb)
	di.adj[rb] = insertSorted(di.adj[rb], ra)

	// Resume pruned BFSs from every hub of both endpoints, in rank
	// order (labels are stored sorted by rank, so plain iteration is
	// already rank order).
	type seedEntry struct {
		root  int32
		start int32
		d     int
	}
	var seeds []seedEntry
	for i, r := range di.labV[ra] {
		seeds = append(seeds, seedEntry{root: r, start: rb, d: int(di.labD[ra][i]) + 1})
	}
	for i, r := range di.labV[rb] {
		seeds = append(seeds, seedEntry{root: r, start: ra, d: int(di.labD[rb][i]) + 1})
	}
	sort.SliceStable(seeds, func(i, j int) bool { return seeds[i].root < seeds[j].root })
	for _, s := range seeds {
		if s.d > MaxDist {
			return updated, ErrDiameterTooLarge
		}
		n, err := di.resumePBFS(s.root, s.start, uint8(s.d))
		if err != nil {
			return updated, err
		}
		updated += n
	}
	return updated, nil
}

// resumePBFS continues root's pruned BFS from start at distance d,
// inserting or decreasing (root, ·) entries.
func (di *DynamicIndex) resumePBFS(root, start int32, d uint8) (updated int, err error) {
	// Load the T array with root's current label.
	lv, ld := di.labV[root], di.labD[root]
	for i, w := range lv {
		di.rootLab[w] = ld[i]
	}
	que := di.queue[:0]
	que = append(que, start)
	di.dist[start] = d
	for qh := 0; qh < len(que); qh++ {
		u := que[qh]
		du := di.dist[u]
		// Prune when current labels already certify a distance <= du
		// between root and u.
		if di.coveredBy(u, du) {
			continue
		}
		if di.upsertLabel(u, root, du) {
			updated++
		}
		nd := int(du) + 1
		for _, w := range di.adj[u] {
			if di.dist[w] == InfDist && w != root {
				if nd > MaxDist {
					di.resetResume(que, lv)
					return updated, ErrDiameterTooLarge
				}
				di.dist[w] = uint8(nd)
				que = append(que, w)
			}
		}
	}
	di.resetResume(que, lv)
	di.queue = que[:0]
	return updated, nil
}

func (di *DynamicIndex) resetResume(visited []int32, rootLabelVertices []int32) {
	for _, v := range visited {
		di.dist[v] = InfDist
	}
	for _, w := range rootLabelVertices {
		di.rootLab[w] = InfDist
	}
}

// coveredBy reports whether labels certify d(root, u) <= d via the
// preloaded T array.
func (di *DynamicIndex) coveredBy(u int32, d uint8) bool {
	uv, ud := di.labV[u], di.labD[u]
	for i, w := range uv {
		if tw := di.rootLab[w]; tw != InfDist && int(tw)+int(ud[i]) <= int(d) {
			return true
		}
	}
	return false
}

// upsertLabel inserts (root, d) into u's sorted label, or decreases an
// existing entry. It reports whether anything changed.
func (di *DynamicIndex) upsertLabel(u, root int32, d uint8) bool {
	lv := di.labV[u]
	i := sort.Search(len(lv), func(i int) bool { return lv[i] >= root })
	if i < len(lv) && lv[i] == root {
		if di.labD[u][i] <= d {
			return false
		}
		di.labD[u][i] = d
		return true
	}
	di.labV[u] = append(di.labV[u], 0)
	copy(di.labV[u][i+1:], di.labV[u][i:])
	di.labV[u][i] = root
	di.labD[u] = append(di.labD[u], 0)
	copy(di.labD[u][i+1:], di.labD[u][i:])
	di.labD[u][i] = d
	return true
}

// AvgLabelSize returns the mean label size per vertex.
func (di *DynamicIndex) AvgLabelSize() float64 {
	if di.n == 0 {
		return 0
	}
	total := 0
	for _, l := range di.labV {
		total += len(l)
	}
	return float64(total) / float64(di.n)
}

// ComputeStats scans the dynamic index and returns summary statistics.
func (di *DynamicIndex) ComputeStats() Stats {
	st := Stats{Variant: VariantDynamic, NumVertices: di.n}
	sizes := make([]int, di.n)
	for r, l := range di.labV {
		sizes[r] = len(l)
		st.TotalLabelEntries += int64(len(l))
		if len(l) > st.MaxLabelSize {
			st.MaxLabelSize = len(l)
		}
	}
	if di.n > 0 {
		st.AvgLabelSize = float64(st.TotalLabelEntries) / float64(di.n)
	}
	insertionSortQuantiles(sizes, &st.LabelSizeQuantiles)
	applyHubStats(&st, di.n, di.labV...)
	st.NormalLabelBytes = st.TotalLabelEntries * 5 // int32 hub + uint8 dist per entry
	st.IndexBytes = st.NormalLabelBytes + int64(len(di.perm))*8
	return st
}

// Freeze snapshots the dynamic index into a static Index (flattened,
// sentinel-terminated label arrays; no bit-parallel labels). The
// snapshot answers the same queries and can be serialized, disk-queried
// and verified like any statically built index; further InsertEdge
// calls on the dynamic index do not affect it.
func (di *DynamicIndex) Freeze() *Index {
	off, vs, ds := flattenLabels(di.n, di.labV, di.labD)
	return &Index{
		n:           di.n,
		origin:      VariantDynamic,
		perm:        append([]int32(nil), di.perm...),
		rank:        append([]int32(nil), di.rank...),
		labelOff:    off,
		labelVertex: vs,
		labelDist:   ds,
	}
}

func containsSorted(s []int32, v int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

func insertSorted(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
