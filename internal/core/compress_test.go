package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"pll/internal/gen"
)

func TestCompressedRoundTrip(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 11)
	ix := buildOrFail(t, g, Options{NumBitParallel: 4, Seed: 2})
	var buf bytes.Buffer
	if err := ix.SaveCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range randPairs(200, 500, 3) {
		if ix.Query(p[0], p[1]) != loaded.Query(p[0], p[1]) {
			t.Fatalf("query mismatch after compressed round trip at (%d,%d)", p[0], p[1])
		}
	}
	if loaded.ComputeStats() != ix.ComputeStats() {
		t.Fatal("stats changed through compressed round trip")
	}
}

func TestCompressedSmallerThanPlain(t *testing.T) {
	g := gen.BarabasiAlbert(1000, 4, 7)
	ix := buildOrFail(t, g, Options{Seed: 1})
	var plain, compressed bytes.Buffer
	if err := ix.Save(&plain); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveCompressed(&compressed); err != nil {
		t.Fatal(err)
	}
	if compressed.Len() >= plain.Len() {
		t.Fatalf("compressed %d >= plain %d bytes", compressed.Len(), plain.Len())
	}
	// Delta-varint hubs should cut the label region roughly in half.
	if float64(compressed.Len()) > 0.8*float64(plain.Len()) {
		t.Fatalf("compression too weak: %d vs %d", compressed.Len(), plain.Len())
	}
}

func TestCompressedRejectsParents(t *testing.T) {
	g := gen.Path(10)
	ix := buildOrFail(t, g, Options{StorePaths: true})
	var buf bytes.Buffer
	if err := ix.SaveCompressed(&buf); err == nil {
		t.Fatal("expected error for parent-pointer index")
	}
}

func TestCompressedFileRoundTrip(t *testing.T) {
	g := gen.Path(30)
	ix := buildOrFail(t, g, Options{})
	path := filepath.Join(t.TempDir(), "c.pllc")
	if err := ix.SaveCompressedFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCompressedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Query(0, 29) != 29 {
		t.Fatal("compressed file index answers wrong")
	}
}

func TestCompressedRejectsCorruption(t *testing.T) {
	g := gen.BarabasiAlbert(60, 2, 3)
	ix := buildOrFail(t, g, Options{NumBitParallel: 1})
	var buf bytes.Buffer
	if err := ix.SaveCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Wrong magic.
	bad := append([]byte{}, full...)
	bad[0] = 'X'
	if _, err := LoadCompressed(bytes.NewReader(bad)); !errors.Is(err, ErrBadIndexFile) {
		t.Fatalf("magic: err = %v", err)
	}
	// Truncations at many offsets.
	for cut := 0; cut < len(full)-1; cut += 53 {
		if _, err := LoadCompressed(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadIndexFile) {
			t.Fatalf("truncation at %d: err = %v", cut, err)
		}
	}
	// Missing file.
	if _, err := LoadCompressedFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestConcurrentQueriesAreSafe(t *testing.T) {
	// The index is immutable after Build; concurrent readers must agree
	// with sequential answers. Run with -race to verify.
	g := gen.BarabasiAlbert(300, 3, 7)
	ix := buildOrFail(t, g, Options{NumBitParallel: 4})
	pairs := randPairs(300, 256, 3)
	want := make([]int, len(pairs))
	for i, p := range pairs {
		want[i] = ix.Query(p[0], p[1])
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, p := range pairs {
				if got := ix.Query(p[0], p[1]); got != want[i] {
					errs <- errMismatch
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

var errMismatch = errors.New("concurrent query mismatch")
