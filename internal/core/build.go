package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pll/internal/graph"
	"pll/internal/order"
)

// Options configures Build.
type Options struct {
	// Ordering selects the vertex-ordering strategy (§4.4). Default:
	// order.Degree, the paper's default.
	Ordering order.Strategy
	// Seed drives ordering tie-breaks and sampling; fixed seeds give
	// byte-identical indexes.
	Seed uint64
	// NumBitParallel is t, the number of bit-parallel BFSs performed
	// before pruned labeling starts (§5.4). 0 disables bit-parallel
	// labels. The paper uses 16 for small and 64 for large networks.
	NumBitParallel int
	// StorePaths records a parent pointer per label entry so QueryPath
	// can reconstruct shortest paths (§6). Path reconstruction needs
	// every covered pair to have a hub in the *normal* labels, so
	// StorePaths forces NumBitParallel to 0.
	StorePaths bool
	// CustomOrder, if non-nil, overrides Ordering with an explicit
	// permutation perm[rank] = vertex. Used by experiments and tests.
	CustomOrder []int32
	// CollectStats, if non-nil, receives per-BFS construction counters
	// (the instrumentation behind Figures 3 and 4).
	CollectStats *BuildStats
	// Workers parallelizes construction across goroutines: the
	// bit-parallel prelude (the §4.5 thread-level-parallelism note; the
	// BFSs are mutually independent) and the pruned labeling phase
	// itself, which runs rank-ordered batches of pruned searches against
	// the frozen labels of all earlier ranks and merges them
	// deterministically (see parallel.go). The resulting index is
	// byte-identical to a sequential build for every option combination.
	// 0 selects GOMAXPROCS; 1 (or negative) forces the sequential code
	// path. Builds that collect per-BFS statistics (CollectStats) always
	// run the pruned phase sequentially, since the relaxed batch
	// searches would skew the visited counters.
	Workers int
}

// BuildStats records what each pruned BFS did during construction.
type BuildStats struct {
	// LabelsPerBFS[k] is the number of label entries added by the k-th
	// root overall (bit-parallel roots count the vertices they reached).
	LabelsPerBFS []int64
	// VisitedPerBFS[k] is the number of vertices each root's search
	// visited (labeled or pruned); bit-parallel roots count reached
	// vertices.
	VisitedPerBFS []int64
	// RootRank[k] is the rank of the k-th root.
	RootRank []int32
	// IsBitParallel[k] marks roots processed by bit-parallel BFS.
	IsBitParallel []bool
}

// bitParallelWidth is b, the number of neighbor roots packed into one
// machine word (§5: 32 or 64; we always use 64-bit words).
const bitParallelWidth = 64

// Build constructs a pruned-landmark-labeling index for g.
func Build(g *graph.Graph, opt Options) (*Index, error) {
	n := g.NumVertices()
	if opt.NumBitParallel < 0 {
		return nil, fmt.Errorf("core: negative NumBitParallel %d", opt.NumBitParallel)
	}
	numBP := opt.NumBitParallel
	if opt.StorePaths {
		numBP = 0
	}
	if numBP > n {
		numBP = n
	}

	// Rank vertices and relabel the graph so that vertex IDs *are* ranks:
	// labels then store ranks and come out sorted for free (§4.5).
	perm := opt.CustomOrder
	if perm == nil {
		perm = order.Compute(g, opt.Ordering, opt.Seed)
	} else if len(perm) != n {
		return nil, fmt.Errorf("core: CustomOrder length %d != n %d", len(perm), n)
	}
	h, err := g.Relabel(perm)
	if err != nil {
		return nil, fmt.Errorf("core: invalid CustomOrder: %w", err)
	}

	ix := &Index{
		n:    n,
		perm: append([]int32(nil), perm...),
		rank: order.RankOf(perm),
	}

	b := newBuilder(h, ix, opt.StorePaths, opt.CollectStats)
	workers := EffectiveWorkers(opt.Workers)
	if err := b.runBitParallelPhase(numBP, workers); err != nil {
		return nil, err
	}
	if workers > 1 && opt.CollectStats == nil {
		if err := b.runPrunedPhaseParallel(workers); err != nil {
			return nil, err
		}
	} else if err := b.runPrunedPhase(); err != nil {
		return nil, err
	}
	b.flatten()
	return ix, nil
}

// builder holds the scratch state of one construction run.
type builder struct {
	h  *graph.Graph // rank-relabeled graph
	ix *Index
	n  int

	// Per-vertex growing labels, indexed by rank.
	labV       [][]int32
	labD       [][]uint8
	labP       [][]int32 // parents; nil unless storing paths
	storePaths bool

	used []bool // vertex consumed as a bit-parallel root or neighbor

	// sc is the scratch of the sequential pruned searches and of the
	// batch-merge replays; concurrent batch searches use their own
	// prunedScratch each (parallel.go).
	sc prunedScratch

	// Per-vertex marks scattered from a batch search's candidate list
	// during a path-storing replay (parallel.go); nil otherwise.
	candD      []uint8
	candPruned []bool

	stats *BuildStats
}

// prunedScratch is the per-search scratch of one pruned BFS,
// re-initialized incrementally (§4.5 "Initialization"): dist is the BFS
// distance array P, rootLab is the array T of distances from the current
// root's label, and the bp* arrays mirror the root's bit-parallel label
// entries for the prune test.
type prunedScratch struct {
	dist    []uint8
	par     []int32 // nil unless storing paths
	rootLab []uint8
	queue   []int32
	bpDv    []uint8
	bpS1v   []uint64
	bpS0v   []uint64
}

// newPrunedScratch allocates an all-InfDist scratch for a graph of n
// vertices and numBP bit-parallel roots.
func newPrunedScratch(n, numBP int, storePaths bool) *prunedScratch {
	sc := &prunedScratch{
		dist:    make([]uint8, n),
		rootLab: make([]uint8, n+1), // +1: sentinel rank may be probed
		queue:   make([]int32, 0, 1024),
		bpDv:    make([]uint8, numBP),
		bpS1v:   make([]uint64, numBP),
		bpS0v:   make([]uint64, numBP),
	}
	if storePaths {
		sc.par = make([]int32, n)
	}
	for i := range sc.dist {
		sc.dist[i] = InfDist
	}
	for i := range sc.rootLab {
		sc.rootLab[i] = InfDist
	}
	return sc
}

func newBuilder(h *graph.Graph, ix *Index, storePaths bool, stats *BuildStats) *builder {
	n := h.NumVertices()
	b := &builder{
		h: h, ix: ix, n: n,
		labV:       make([][]int32, n),
		labD:       make([][]uint8, n),
		storePaths: storePaths,
		used:       make([]bool, n),
		sc:         *newPrunedScratch(n, 0, storePaths),
		stats:      stats,
	}
	if storePaths {
		b.labP = make([][]int32, n)
	}
	return b
}

// bpRoot is one selected bit-parallel root with its neighbor set.
type bpRoot struct {
	r  int32
	sr []int32
}

// selectBPRoots greedily picks up to t roots and neighbor sets (§5.4),
// marking them used. Selection is sequential and deterministic; the
// BFSs themselves are independent of one another.
func (b *builder) selectBPRoots(t int) []bpRoot {
	roots := make([]bpRoot, 0, t)
	r := int32(0)
	for i := 0; i < t; i++ {
		for int(r) < b.n && b.used[r] {
			r++
		}
		if int(r) >= b.n {
			break // fewer vertices than requested roots
		}
		b.used[r] = true
		var sr []int32
		for _, u := range b.h.Neighbors(r) {
			if len(sr) == bitParallelWidth {
				break
			}
			if !b.used[u] {
				b.used[u] = true
				sr = append(sr, u)
			}
		}
		roots = append(roots, bpRoot{r: r, sr: sr})
	}
	return roots
}

// runBitParallelPhase performs up to t bit-parallel BFSs (§5.4). With
// workers > 1 the BFSs run concurrently — the paper's "thread-level
// parallelism" note (§4.5) applies cleanly here because bit-parallel
// searches never consult each other's labels.
func (b *builder) runBitParallelPhase(t, workers int) error {
	n := b.n
	ix := b.ix
	roots := b.selectBPRoots(t)
	performed := len(roots)
	ix.bpDist = make([]uint8, performed*n)
	ix.bpS1 = make([]uint64, performed*n)
	ix.bpS0 = make([]uint64, performed*n)
	ix.numBP = performed
	b.sc.bpDv = make([]uint8, performed)
	b.sc.bpS1v = make([]uint64, performed)
	b.sc.bpS0v = make([]uint64, performed)

	// Each BFS runs over contiguous per-root scratch, then scatters into
	// the per-vertex-interleaved index arrays (layout v*numBP+i), which
	// keeps the later prune tests and queries on single cache lines.
	type bpScratch struct {
		dist []uint8
		s1   []uint64
		s0   []uint64
		que  []int32
	}
	runOne := func(i int, sc *bpScratch) error {
		var err error
		sc.que, err = bitParallelBFS(b.h, roots[i].r, roots[i].sr, sc.dist, sc.s1, sc.s0, sc.que)
		if err != nil {
			return err
		}
		for v := 0; v < n; v++ {
			o := v*performed + i
			ix.bpDist[o] = sc.dist[v]
			ix.bpS1[o] = sc.s1[v]
			ix.bpS0[o] = sc.s0[v]
		}
		return nil
	}
	newScratch := func() *bpScratch {
		return &bpScratch{
			dist: make([]uint8, n),
			s1:   make([]uint64, n),
			s0:   make([]uint64, n),
			que:  make([]int32, 0, 1024),
		}
	}
	if workers <= 1 || performed <= 1 {
		sc := newScratch()
		for i := range roots {
			if err := runOne(i, sc); err != nil {
				return err
			}
		}
	} else {
		if workers > performed {
			workers = performed
		}
		var wg sync.WaitGroup
		errs := make([]error, workers)
		next := int32(-1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sc := newScratch()
				for {
					i := int(atomic.AddInt32(&next, 1))
					if i >= performed {
						return
					}
					if err := runOne(i, sc); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	if b.stats != nil {
		for i := range roots {
			reached := int64(0)
			for v := 0; v < n; v++ {
				if ix.bpDist[v*performed+i] != InfDist {
					reached++
				}
			}
			b.stats.LabelsPerBFS = append(b.stats.LabelsPerBFS, reached)
			b.stats.VisitedPerBFS = append(b.stats.VisitedPerBFS, reached)
			b.stats.RootRank = append(b.stats.RootRank, roots[i].r)
			b.stats.IsBitParallel = append(b.stats.IsBitParallel, true)
		}
	}
	return nil
}

// bitParallelBFS is Algorithm 3: a single BFS from r that simultaneously
// tracks, for every reached vertex v, the subsets of S_r lying on paths
// of length d(r,v)-1 (S^{-1}) and d(r,v) (S^{0}), using one bit per
// element of S_r. que is scratch; the (possibly regrown) buffer is
// returned for reuse.
func bitParallelBFS(h *graph.Graph, r int32, sr []int32, dist []uint8, s1, s0 []uint64, que []int32) ([]int32, error) {
	for i := range dist {
		dist[i] = InfDist
	}
	// The set arrays may be reused across roots; they accumulate via OR
	// and must start clean.
	for i := range s1 {
		s1[i] = 0
		s0[i] = 0
	}
	que = que[:0]
	que = append(que, r)
	dist[r] = 0
	for i, v := range sr {
		dist[v] = 1
		s1[v] = 1 << uint(i)
		que = append(que, v)
	}
	// Frontier [qt0, qt1) holds the vertices at the current distance d.
	// sr members are pre-enqueued at positions [1, 1+len(sr)) and belong
	// to level 1, which the child-edge rule below handles naturally.
	type edge struct{ v, u int32 }
	var sib, chd []edge
	qt0, qt1 := 0, 1
	d := uint8(0)
	for qt0 < len(que) {
		sib, chd = sib[:0], chd[:0]
		for qi := qt0; qi < qt1; qi++ {
			v := que[qi]
			for _, u := range h.Neighbors(v) {
				du := dist[u]
				switch {
				case du == InfDist:
					if int(d)+1 > MaxDist {
						return que, ErrDiameterTooLarge
					}
					dist[u] = d + 1
					que = append(que, u)
					chd = append(chd, edge{v, u})
				case du == d+1:
					chd = append(chd, edge{v, u})
				case du == d && v < u:
					sib = append(sib, edge{v, u})
				}
			}
		}
		for _, e := range sib {
			s0[e.v] |= s1[e.u]
			s0[e.u] |= s1[e.v]
		}
		for _, e := range chd {
			s1[e.u] |= s1[e.v]
			s0[e.u] |= s0[e.v]
		}
		qt0, qt1 = qt1, len(que)
		d++
	}
	// The recurrence can re-add an S^{-1} member to S^{0} through a
	// same-level neighbor; strip those so the sets match their §5.1
	// definitions exactly (the reference implementation does the same).
	for _, v := range que {
		s0[v] &^= s1[v]
	}
	return que[:0], nil
}

// runPrunedPhase performs the pruned BFSs of §4.2 from every vertex not
// consumed by the bit-parallel phase, in rank order.
func (b *builder) runPrunedPhase() error {
	for vk := int32(0); int(vk) < b.n; vk++ {
		if b.used[vk] {
			continue
		}
		added, visited, err := b.prunedBFS(vk)
		if err != nil {
			return err
		}
		if b.stats != nil {
			b.stats.LabelsPerBFS = append(b.stats.LabelsPerBFS, added)
			b.stats.VisitedPerBFS = append(b.stats.VisitedPerBFS, visited)
			b.stats.RootRank = append(b.stats.RootRank, vk)
			b.stats.IsBitParallel = append(b.stats.IsBitParallel, false)
		}
	}
	return nil
}

// prunedBFS is Algorithm 1 with the engineering of §4.5: the prune test
// scans only L(u) against the root-label array T (rootLab), consults
// bit-parallel labels first, and all scratch arrays are reset by
// revisiting exactly the entries that were touched.
func (b *builder) prunedBFS(vk int32) (added, visited int64, err error) {
	sc := &b.sc
	// Load T with the root's current label (§4.5 "Querying").
	lv, ld := b.labV[vk], b.labD[vk]
	for i, w := range lv {
		sc.rootLab[w] = ld[i]
	}
	b.mirrorBP(sc, vk)

	que := sc.queue[:0]
	que = append(que, vk)
	sc.dist[vk] = 0
	if b.storePaths {
		sc.par[vk] = -1
	}
	for qh := 0; qh < len(que); qh++ {
		u := que[qh]
		d := sc.dist[u]
		if !b.pruned(sc, u, d) {
			// Label u with (vk, d) and expand.
			b.labV[u] = append(b.labV[u], vk)
			b.labD[u] = append(b.labD[u], d)
			if b.storePaths {
				b.labP[u] = append(b.labP[u], sc.par[u])
			}
			added++
			nd := int(d) + 1
			for _, w := range b.h.Neighbors(u) {
				if sc.dist[w] == InfDist {
					if nd > MaxDist {
						sc.reset(que, lv)
						return 0, 0, ErrDiameterTooLarge
					}
					sc.dist[w] = uint8(nd)
					if b.storePaths {
						sc.par[w] = u
					}
					que = append(que, w)
				}
			}
		}
	}
	visited = int64(len(que))
	sc.reset(que, lv)
	sc.queue = que[:0]
	return added, visited, nil
}

// mirrorBP loads the root's bit-parallel label entries into the scratch.
func (b *builder) mirrorBP(sc *prunedScratch, vk int32) {
	ix := b.ix
	ov := int(vk) * ix.numBP
	for i := 0; i < ix.numBP; i++ {
		sc.bpDv[i] = ix.bpDist[ov+i]
		sc.bpS1v[i] = ix.bpS1[ov+i]
		sc.bpS0v[i] = ix.bpS0[ov+i]
	}
}

// pruned reports whether the vertex u at BFS distance d from the current
// root is already covered by existing labels (line 7 of Algorithm 1).
// The root's side of the test lives in sc (T array and BP mirrors), so
// concurrent batch searches can each bring their own.
func (b *builder) pruned(sc *prunedScratch, u int32, d uint8) bool {
	ix := b.ix
	// Bit-parallel labels first: distance through BP root i and its
	// neighbor set, adjusted by the set intersections (§5.3). The
	// per-vertex interleaved layout makes this loop one contiguous scan.
	ou := int(u) * ix.numBP
	for i := 0; i < ix.numBP; i++ {
		dv := sc.bpDv[i]
		if dv == InfDist {
			continue
		}
		du := ix.bpDist[ou+i]
		if du == InfDist {
			continue
		}
		td := int(dv) + int(du)
		if td-2 <= int(d) {
			if sc.bpS1v[i]&ix.bpS1[ou+i] != 0 {
				td -= 2
			} else if sc.bpS1v[i]&ix.bpS0[ou+i] != 0 || sc.bpS0v[i]&ix.bpS1[ou+i] != 0 {
				td -= 1
			}
			if td <= int(d) {
				return true
			}
		}
	}
	// Normal labels: scan L(u) against the root-label array T.
	lv, ld := b.labV[u], b.labD[u]
	for i, w := range lv {
		tw := sc.rootLab[w]
		if tw != InfDist && int(tw)+int(ld[i]) <= int(d) {
			return true
		}
	}
	return false
}

// reset restores dist and rootLab to all-InfDist by touching only the
// entries the search wrote (§4.5 "Initialization").
func (sc *prunedScratch) reset(visited []int32, rootLabelVertices []int32) {
	for _, v := range visited {
		sc.dist[v] = InfDist
	}
	for _, w := range rootLabelVertices {
		sc.rootLab[w] = InfDist
	}
}

// flatten converts the per-vertex growing labels into the final CSR
// arrays with one sentinel entry per vertex.
func (b *builder) flatten() {
	ix := b.ix
	n := b.n
	total := int64(0)
	for v := 0; v < n; v++ {
		total += int64(len(b.labV[v])) + 1 // +1 sentinel
	}
	ix.labelOff = make([]int64, n+1)
	ix.labelVertex = make([]int32, total)
	ix.labelDist = make([]uint8, total)
	if b.storePaths {
		ix.labelParent = make([]int32, total)
	}
	w := int64(0)
	for v := 0; v < n; v++ {
		ix.labelOff[v] = w
		copy(ix.labelVertex[w:], b.labV[v])
		copy(ix.labelDist[w:], b.labD[v])
		if b.storePaths {
			copy(ix.labelParent[w:], b.labP[v])
		}
		w += int64(len(b.labV[v]))
		ix.labelVertex[w] = int32(n) // sentinel
		ix.labelDist[w] = InfDist
		if b.storePaths {
			ix.labelParent[w] = -1
		}
		w++
		b.labV[v], b.labD[v] = nil, nil
		if b.storePaths {
			b.labP[v] = nil
		}
	}
	ix.labelOff[n] = w
}
