package core

// The equivalence layer behind the parallel builder: for every variant,
// every option combination and several batch schedules, a parallel
// build must be BYTE-IDENTICAL to the sequential build — same labels,
// same distances, same parents, same serialized container — and both
// must match BFS/Dijkstra ground truth. These tests are the proof
// obligation for parallel.go's determinism argument; if a future change
// breaks a pruning-order subtlety, this file is what catches it.

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/order"
	"pll/internal/rng"
)

// containerBytes serializes any index through its container WriteTo.
func containerBytes(t *testing.T, wt io.WriterTo) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := wt.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// forceBatchSchedule overrides the batch-ramp knobs for the duration of
// the test, so that even tiny graphs exercise real batches. The output
// must not depend on the schedule; several tests sweep it.
func forceBatchSchedule(t *testing.T, prefix, div, cap_ int) {
	t.Helper()
	op, od, oc := parallelSeqPrefix, parallelBatchDiv, maxPrunedBatch
	parallelSeqPrefix, parallelBatchDiv, maxPrunedBatch = prefix, div, cap_
	t.Cleanup(func() {
		parallelSeqPrefix, parallelBatchDiv, maxPrunedBatch = op, od, oc
	})
}

// equivGraphs is the undirected test corpus: preferential-attachment,
// grid, tree, and sparse multi-component random graphs.
func equivGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"ba":     gen.BarabasiAlbert(180, 3, 11),
		"grid":   gen.Grid(9, 14),
		"tree":   gen.RandomTree(150, 5),
		"rand1":  randomGraph(21, 90),
		"rand2":  randomGraph(22, 120),
		"sparse": randomGraph(23, 40),
	}
}

func TestParallelEquivUndirected(t *testing.T) {
	forceBatchSchedule(t, 8, 2, 64)
	type combo struct {
		bp    int
		paths bool
	}
	combos := []combo{{0, false}, {16, false}, {0, true}, {16, true}}
	orderings := []order.Strategy{order.Degree, order.Random}
	for name, g := range equivGraphs() {
		for _, ord := range orderings {
			for _, c := range combos {
				opt := Options{Ordering: ord, Seed: 3, NumBitParallel: c.bp, StorePaths: c.paths, Workers: 1}
				seq := buildOrFail(t, g, opt)
				want := containerBytes(t, seq)
				for _, workers := range []int{2, 8} {
					opt.Workers = workers
					par := buildOrFail(t, g, opt)
					if got := containerBytes(t, par); !bytes.Equal(got, want) {
						t.Fatalf("%s ord=%v bp=%d paths=%v workers=%d: parallel container differs from sequential (%d vs %d bytes)",
							name, ord, c.bp, c.paths, workers, len(got), len(want))
					}
				}
				// Parallel output == sequential bytes; one ground-truth
				// pass against BFS distances covers both.
				opt.Workers = 8
				assertMatchesBFS(t, g, buildOrFail(t, g, opt), 120, 17)
			}
		}
	}
}

func TestParallelEquivUndirectedPaths(t *testing.T) {
	// Parents must reproduce the sequential BFS tree exactly; also check
	// the reconstructed paths are valid shortest paths.
	forceBatchSchedule(t, 4, 1, 32)
	g := gen.BarabasiAlbert(300, 2, 9)
	seq := buildOrFail(t, g, Options{StorePaths: true, Workers: 1})
	par := buildOrFail(t, g, Options{StorePaths: true, Workers: 8})
	if !reflect.DeepEqual(seq.labelParent, par.labelParent) {
		t.Fatal("parallel parent pointers differ from sequential")
	}
	for _, p := range randPairs(300, 150, 31) {
		want, err := seq.QueryPath(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.QueryPath(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("QueryPath(%d,%d): parallel %v != sequential %v", p[0], p[1], got, want)
		}
	}
}

// randomDigraphFor builds a sparse random digraph, sometimes with
// several components.
func randomDigraphFor(seed uint64, maxN int) *graph.Digraph {
	r := rng.New(seed)
	n := r.Intn(maxN) + 2
	m := int64(r.Intn(4 * n))
	return gen.RandomDigraph(n, m, seed^0xd1a9)
}

func TestParallelEquivDirected(t *testing.T) {
	forceBatchSchedule(t, 8, 2, 64)
	for seed := uint64(1); seed <= 6; seed++ {
		g := randomDigraphFor(seed, 130)
		for _, ord := range []order.Strategy{order.Degree, order.Random} {
			for _, paths := range []bool{false, true} {
				opt := DirectedOptions{Ordering: ord, Seed: 5, StorePaths: paths, Workers: 1}
				seq, err := BuildDirected(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 8} {
					opt.Workers = workers
					par, err := BuildDirected(g, opt)
					if err != nil {
						t.Fatal(err)
					}
					// The container format rejects directed parent
					// pointers, so compare the in-memory index
					// representation (covers labels AND parents);
					// serializable builds also compare container bytes.
					if !reflect.DeepEqual(seq, par) {
						t.Fatalf("seed=%d ord=%v paths=%v workers=%d: parallel directed index differs", seed, ord, paths, workers)
					}
					if !paths {
						if !bytes.Equal(containerBytes(t, seq), containerBytes(t, par)) {
							t.Fatalf("seed=%d ord=%v workers=%d: directed container bytes differ", seed, ord, workers)
						}
					}
				}
				// Ground truth: directed BFS distances.
				n := g.NumVertices()
				for _, p := range randPairs(n, 120, seed+41) {
					want := int(bfs.DirectedDistance(g, p[0], p[1]))
					if got := seq.Query(p[0], p[1]); got != want {
						t.Fatalf("directed Query(%d,%d) = %d, want %d", p[0], p[1], got, want)
					}
				}
			}
		}
	}
}

// randomWeightedFor attaches random weights (including zero-weight
// edges, which stress Dijkstra tie-breaking) to a random graph.
func randomWeightedFor(seed uint64, maxN int, minW, maxW uint32) *graph.Weighted {
	return gen.RandomWeights(randomGraph(seed, maxN), minW, maxW, seed^0x77)
}

func TestParallelEquivWeighted(t *testing.T) {
	forceBatchSchedule(t, 8, 2, 64)
	for seed := uint64(1); seed <= 6; seed++ {
		minW := uint32(1)
		if seed%2 == 0 {
			minW = 0 // zero-weight edges: many equal-distance pops
		}
		g := randomWeightedFor(seed, 130, minW, 9)
		for _, ord := range []order.Strategy{order.Degree, order.Random} {
			for _, paths := range []bool{false, true} {
				opt := WeightedOptions{Ordering: ord, Seed: 5, StorePaths: paths, Workers: 1}
				seq, err := BuildWeighted(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 8} {
					opt.Workers = workers
					par, err := BuildWeighted(g, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(seq, par) {
						t.Fatalf("seed=%d ord=%v paths=%v workers=%d: parallel weighted index differs", seed, ord, paths, workers)
					}
					if !paths {
						if !bytes.Equal(containerBytes(t, seq), containerBytes(t, par)) {
							t.Fatalf("seed=%d ord=%v workers=%d: weighted container bytes differ", seed, ord, workers)
						}
					}
				}
				// Ground truth: Dijkstra distances.
				n := g.NumVertices()
				for _, p := range randPairs(n, 120, seed+43) {
					want := bfs.DijkstraDistance(g, p[0], p[1])
					if want == bfs.InfWeight {
						want = UnreachableW
					}
					if got := seq.Query(p[0], p[1]); got != want {
						t.Fatalf("weighted Query(%d,%d) = %d, want %d", p[0], p[1], got, want)
					}
				}
			}
		}
	}
}

func TestParallelEquivDynamic(t *testing.T) {
	forceBatchSchedule(t, 8, 2, 64)
	for seed := uint64(1); seed <= 4; seed++ {
		g := randomGraph(seed+50, 130)
		n := g.NumVertices()
		seq, err := BuildDynamic(g, Options{Seed: 2, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := BuildDynamic(g, Options{Seed: 2, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(containerBytes(t, seq.Freeze()), containerBytes(t, par.Freeze())) {
			t.Fatalf("seed=%d: parallel dynamic initial build differs from sequential", seed)
		}
		// Incremental updates are sequential and unchanged; after the
		// same insertions both indexes must still agree bit for bit.
		r := rng.New(seed ^ 0xabc)
		for i := 0; i < 25; i++ {
			a, b := r.Int31n(int32(n)), r.Int31n(int32(n))
			if _, err := seq.InsertEdge(a, b); err != nil {
				t.Fatal(err)
			}
			if _, err := par.InsertEdge(a, b); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(containerBytes(t, seq.Freeze()), containerBytes(t, par.Freeze())) {
			t.Fatalf("seed=%d: dynamic indexes diverged after identical insertions", seed)
		}
	}
}

// TestParallelEquivScheduleSweep pins down that the batch schedule is a
// pure performance knob: wildly different prefixes, ramps and caps must
// all produce the sequential bytes.
func TestParallelEquivScheduleSweep(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 13)
	seqIx := buildOrFail(t, g, Options{NumBitParallel: 8, Seed: 1, Workers: 1})
	want := containerBytes(t, seqIx)
	schedules := []struct{ prefix, div, cap_ int }{
		{1, 1, 4},      // tiny batches from the second root on
		{1, 1, 100000}, // batch size doubles without bound
		{0, 1, 100000}, // no sequential prefix at all
		{64, 8, 512},   // production-like
	}
	for _, s := range schedules {
		forceBatchSchedule(t, s.prefix, s.div, s.cap_)
		par := buildOrFail(t, g, Options{NumBitParallel: 8, Seed: 1, Workers: 4})
		if !bytes.Equal(containerBytes(t, par), want) {
			t.Fatalf("schedule %+v: parallel container differs from sequential", s)
		}
	}
}

// TestParallelEquivLarger runs one bigger instance per variant so that
// the production ramp (not just the forced tiny schedules) sees real
// multi-batch construction.
func TestParallelEquivLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("larger equivalence corpus")
	}
	g := gen.BarabasiAlbert(2500, 4, 3)
	seq := buildOrFail(t, g, Options{NumBitParallel: 16, Seed: 7, Workers: 1})
	par := buildOrFail(t, g, Options{NumBitParallel: 16, Seed: 7, Workers: 8})
	if !bytes.Equal(containerBytes(t, seq), containerBytes(t, par)) {
		t.Fatal("undirected: parallel container differs at production schedule")
	}

	dg := gen.RandomDigraph(1200, 4800, 5)
	dseq, err := BuildDirected(dg, DirectedOptions{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dpar, err := BuildDirected(dg, DirectedOptions{Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(containerBytes(t, dseq), containerBytes(t, dpar)) {
		t.Fatal("directed: parallel container differs at production schedule")
	}

	wg := gen.RandomWeights(gen.BarabasiAlbert(1200, 3, 9), 1, 12, 4)
	wseq, err := BuildWeighted(wg, WeightedOptions{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wpar, err := BuildWeighted(wg, WeightedOptions{Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(containerBytes(t, wseq), containerBytes(t, wpar)) {
		t.Fatal("weighted: parallel container differs at production schedule")
	}
}

// TestParallelDiameterOverflow pins the fallback path: when a relaxed
// batch search overruns — or brushes against — the 8-bit distance
// budget, the merge re-runs the root sequentially, so parallel builds
// fail (or succeed) exactly like sequential ones, including right at
// the budget boundary.
func TestParallelDiameterOverflow(t *testing.T) {
	forceBatchSchedule(t, 1, 1, 100000)
	long := gen.Path(400)
	if _, err := Build(long, Options{Workers: 4}); err == nil {
		t.Fatal("expected diameter error from parallel build on a 400-path")
	}
	// Path graphs bracketing the budget (eccentricities land on either
	// side of MaxDist depending on the rank-0 root's position): whatever
	// the sequential build does — error or index — the parallel build
	// must do identically, for paths on and off.
	for _, n := range []int{250, 255, 256, 300} {
		for _, paths := range []bool{false, true} {
			g := gen.Path(n)
			seq, seqErr := Build(g, Options{StorePaths: paths, Workers: 1})
			par, parErr := Build(g, Options{StorePaths: paths, Workers: 4})
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("Path(%d) paths=%v: sequential err=%v, parallel err=%v", n, paths, seqErr, parErr)
			}
			if seqErr != nil {
				continue
			}
			if !bytes.Equal(containerBytes(t, seq), containerBytes(t, par)) {
				t.Fatalf("Path(%d) paths=%v: parallel container differs", n, paths)
			}
		}
	}
	// Directed chain beyond the budget: both builds must fail.
	arcs := make([]graph.Edge, 299)
	for i := range arcs {
		arcs[i] = graph.Edge{U: int32(i), V: int32(i + 1)}
	}
	dg, err := graph.NewDigraph(300, arcs)
	if err != nil {
		t.Fatal(err)
	}
	_, seqErr := BuildDirected(dg, DirectedOptions{Workers: 1})
	_, parErr := BuildDirected(dg, DirectedOptions{Workers: 4})
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("directed chain: sequential err=%v, parallel err=%v", seqErr, parErr)
	}
}

// TestRaceParallelConstructionAllVariants is the dedicated race-detector
// workload: build every variant with 8 workers on graphs big enough for
// multi-batch schedules. Run it with -race (see the CI race job).
func TestRaceParallelConstructionAllVariants(t *testing.T) {
	g := gen.BarabasiAlbert(1500, 4, 21)
	if _, err := Build(g, Options{NumBitParallel: 16, Seed: 1, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, Options{StorePaths: true, Seed: 1, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	dg := gen.RandomDigraph(800, 3200, 22)
	if _, err := BuildDirected(dg, DirectedOptions{Seed: 1, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	wg := gen.RandomWeights(gen.BarabasiAlbert(800, 3, 23), 1, 9, 24)
	if _, err := BuildWeighted(wg, WeightedOptions{Seed: 1, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDynamic(gen.BarabasiAlbert(800, 3, 25), Options{Seed: 1, Workers: 8}); err != nil {
		t.Fatal(err)
	}
}
