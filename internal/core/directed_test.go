package core

import (
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/rng"
)

func TestDirectedCycle(t *testing.T) {
	// Directed 4-cycle: distances are asymmetric.
	g, err := graph.NewDigraph(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildDirected(g, DirectedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Query(0, 3); d != 3 {
		t.Fatalf("0->3 = %d, want 3", d)
	}
	if d := ix.Query(3, 0); d != 1 {
		t.Fatalf("3->0 = %d, want 1", d)
	}
}

func TestDirectedOneWay(t *testing.T) {
	g, err := graph.NewDigraph(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildDirected(g, DirectedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Query(0, 2); d != 2 {
		t.Fatalf("0->2 = %d, want 2", d)
	}
	if d := ix.Query(2, 0); d != Unreachable {
		t.Fatalf("2->0 = %d, want Unreachable", d)
	}
	if d := ix.Query(1, 1); d != 0 {
		t.Fatalf("self = %d, want 0", d)
	}
}

func TestDirectedMatchesBFSRandom(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(40) + 3
		g := gen.RandomDigraph(n, int64(r.Intn(4*n)+1), seed)
		ix, err := BuildDirected(g, DirectedOptions{Seed: seed})
		if err != nil {
			return false
		}
		rr := rng.New(seed ^ 0xd1e)
		for i := 0; i < 25; i++ {
			s, u := rr.Int31n(int32(n)), rr.Int31n(int32(n))
			want := bfs.DirectedDistance(g, s, u)
			got := ix.Query(s, u)
			if want == bfs.Unreachable {
				if got != Unreachable {
					return false
				}
			} else if got != int(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedSymmetricGraphMatchesUndirected(t *testing.T) {
	// A digraph with both arc directions for every edge behaves like the
	// undirected graph.
	und := gen.BarabasiAlbert(80, 2, 9)
	var arcs []graph.Edge
	for _, e := range und.Edges() {
		arcs = append(arcs, e, graph.Edge{U: e.V, V: e.U})
	}
	dg, err := graph.NewDigraph(80, arcs)
	if err != nil {
		t.Fatal(err)
	}
	dix, err := BuildDirected(dg, DirectedOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	uix := buildOrFail(t, und, Options{Seed: 4})
	for _, p := range randPairs(80, 150, 6) {
		if dix.Query(p[0], p[1]) != uix.Query(p[0], p[1]) {
			t.Fatalf("(%d,%d): directed %d vs undirected %d",
				p[0], p[1], dix.Query(p[0], p[1]), uix.Query(p[0], p[1]))
		}
	}
}

func TestDirectedStats(t *testing.T) {
	g := gen.RandomDigraph(60, 200, 3)
	ix, err := BuildDirected(g, DirectedOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumVertices() != 60 {
		t.Fatal("vertex count mismatch")
	}
	if ix.AvgLabelSize() <= 0 {
		t.Fatal("avg label size should be positive")
	}
}

func TestDirectedCustomOrderValidation(t *testing.T) {
	g := gen.RandomDigraph(5, 8, 1)
	if _, err := BuildDirected(g, DirectedOptions{CustomOrder: []int32{0, 1}}); err == nil {
		t.Fatal("expected error for short order")
	}
}

func BenchmarkDirectedConstruction(b *testing.B) {
	g := gen.RandomDigraph(1000, 5000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildDirected(g, DirectedOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDirectedQuery(b *testing.B) {
	g := gen.RandomDigraph(5000, 30000, 1)
	ix, err := BuildDirected(g, DirectedOptions{})
	if err != nil {
		b.Fatal(err)
	}
	pairs := randPairs(5000, 1024, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		ix.Query(p[0], p[1])
	}
}
