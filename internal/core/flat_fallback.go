//go:build !unix

package core

import (
	"fmt"
	"io"
	"os"
)

// mapFlatFile on platforms without mmap support slurps the file in one
// read. Opening is still free of per-entry decoding — the heap buffer
// is aliased exactly like a mapped image — it just is not shared
// between processes and must fit in memory.
func mapFlatFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, fmt.Errorf("unreadable file size %d", size)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
