package core

// Hub-search capability: every immutable index variant can invert its
// labels (internal/hubsearch) and answer neighborhood queries — k
// nearest vertices, all vertices within a radius, and nearest members
// of a registered subset — straight from the 2-hop cover, with no graph
// traversal. The inverted index is built lazily on first use (O(total
// label size) plus per-run sorting) and cached for the index lifetime;
// flat (version-2) containers can persist it so a memory-mapped index
// serves search queries with zero build cost (flat.go).
//
// DynamicIndex has no search capability: edge insertions mutate labels
// in place and would silently invalidate the inversion.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"pll/internal/hubsearch"
)

// Neighbor is one search answer: a vertex (original ID) and its exact
// distance from the query source.
type Neighbor struct {
	Vertex   int32 `json:"vertex"`
	Distance int64 `json:"distance"`
}

// ErrForeignSet is returned when a VertexSet is used with an index
// other than the one it was registered on.
var ErrForeignSet = errors.New("core: vertex set was registered on a different index")

// VertexSet is a registered vertex subset with its own filtered
// inverted index, sized O(total label mass of the members): nearest-in
// queries merge only runs that can yield members, so they cost the same
// as a kNN over an index containing just the subset. Immutable and safe
// for concurrent use; valid only with the index that created it.
type VertexSet struct {
	owner any
	inv   *hubsearch.Inverted
	size  int
}

// Size returns the number of distinct vertices in the set.
func (vs *VertexSet) Size() int { return vs.size }

// searchState is the lazily built inverted index of one immutable
// index plus its pooled query scratch.
type searchState struct {
	once sync.Once
	inv  *hubsearch.Inverted // may be pre-populated by the flat loader
	pool sync.Pool           // recycles *hubsearch.Scratch
}

// ensure builds the inverted index exactly once, unless the flat
// loader already attached a persisted one.
func (st *searchState) ensure(build func() *hubsearch.Inverted) *hubsearch.Inverted {
	st.once.Do(func() {
		if st.inv == nil {
			st.inv = build()
		}
	})
	return st.inv
}

func (st *searchState) getScratch(n int) *hubsearch.Scratch {
	sc, _ := st.pool.Get().(*hubsearch.Scratch)
	if sc == nil || !sc.Fits(n) {
		sc = hubsearch.NewScratch(n)
	}
	return sc
}

// finishNeighbors maps rank-space results to vertex IDs, orders them by
// (distance, vertex) and, when limit > 0, trims to the limit — the
// deterministic tie-break rule shared by every variant: ties at the
// k-th distance resolve to the smallest vertex IDs.
func finishNeighbors(perm []int32, res []hubsearch.Result, limit int) []Neighbor {
	out := make([]Neighbor, len(res))
	for i, r := range res {
		out[i] = Neighbor{Vertex: perm[r.Rank], Distance: r.Dist}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Vertex < out[j].Vertex
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// rankMembers validates and deduplicates a member list, returning the
// members as ranks. Costs O(len(members)), not O(n) — set
// registration must stay cheap on huge indexes.
func rankMembers(n int, rank []int32, members []int32) ([]int32, error) {
	seen := make(map[int32]struct{}, len(members))
	out := make([]int32, 0, len(members))
	for _, v := range members {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("core: set member %d out of range [0,%d)", v, n)
		}
		r := rank[v]
		if _, dup := seen[r]; !dup {
			seen[r] = struct{}{}
			out = append(out, r)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Undirected (and frozen-dynamic) Index
// ---------------------------------------------------------------------

// invertedEmit replays the label entries (and bit-parallel rows) of the
// given ranks — or of every vertex when ranks is nil — into add.
func (ix *Index) invertedEmit(ranks []int32) func(add func(run, vertex int32, dist uint32)) {
	return func(add func(run, vertex int32, dist uint32)) {
		one := func(r int32) {
			for i := ix.labelOff[r]; i < ix.labelOff[r+1]-1; i++ {
				add(ix.labelVertex[i], r, uint32(ix.labelDist[i]))
			}
			o := int(r) * ix.numBP
			for i := 0; i < ix.numBP; i++ {
				if d := ix.bpDist[o+i]; d != InfDist {
					add(int32(ix.n+i), r, uint32(d))
				}
			}
		}
		if ranks == nil {
			for r := int32(0); int(r) < ix.n; r++ {
				one(r)
			}
			return
		}
		for _, r := range ranks {
			one(r)
		}
	}
}

// EnsureSearch returns the index's inverted label index, building and
// caching it on first call. Safe for concurrent use.
func (ix *Index) EnsureSearch() *hubsearch.Inverted {
	return ix.search.ensure(func() *hubsearch.Inverted {
		return hubsearch.Build(ix.n, ix.numBP, ix.bpS1, ix.bpS0, ix.invertedEmit(nil))
	})
}

// searchSource expands s's label (and bit-parallel rows) into merge
// runs plus the source-side masks for §5.3 corrections.
func (ix *Index) searchSource(rs int32) (runs []hubsearch.Run, s1, s0 []uint64) {
	lo, hi := ix.labelOff[rs], ix.labelOff[rs+1]-1
	runs = make([]hubsearch.Run, 0, hi-lo+int64(ix.numBP))
	for i := lo; i < hi; i++ {
		runs = append(runs, hubsearch.Run{ID: ix.labelVertex[i], Base: int64(ix.labelDist[i])})
	}
	if ix.numBP > 0 {
		o := int(rs) * ix.numBP
		s1 = ix.bpS1[o : o+ix.numBP]
		s0 = ix.bpS0[o : o+ix.numBP]
		for i := 0; i < ix.numBP; i++ {
			if d := ix.bpDist[o+i]; d != InfDist {
				runs = append(runs, hubsearch.Run{ID: int32(ix.n + i), Base: int64(d)})
			}
		}
	}
	return runs, s1, s0
}

// KNN returns the k nearest vertices to s (s itself excluded), sorted
// by (distance, vertex ID); ties at the cutoff resolve to the smallest
// IDs. Fewer than k results mean fewer than k vertices are reachable.
// Out-of-range vertices panic, mirroring Query. Safe for concurrent
// use.
func (ix *Index) KNN(s int32, k int) []Neighbor {
	inv := ix.EnsureSearch()
	rs := ix.rank[s]
	runs, s1, s0 := ix.searchSource(rs)
	sc := ix.search.getScratch(ix.n)
	res := inv.KNN(runs, rs, s1, s0, k, sc)
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, k)
}

// SearchRange returns every vertex within distance radius of s (s
// itself excluded), sorted by (distance, vertex ID). Safe for
// concurrent use.
func (ix *Index) SearchRange(s int32, radius int64) []Neighbor {
	inv := ix.EnsureSearch()
	rs := ix.rank[s]
	runs, s1, s0 := ix.searchSource(rs)
	sc := ix.search.getScratch(ix.n)
	res := inv.Range(runs, rs, s1, s0, radius, sc)
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, 0)
}

// NewVertexSet registers a subset of vertices (by ID) for NearestIn
// queries, building its filtered inverted index.
func (ix *Index) NewVertexSet(members []int32) (*VertexSet, error) {
	ranks, err := rankMembers(ix.n, ix.rank, members)
	if err != nil {
		return nil, err
	}
	inv := hubsearch.BuildSubset(ix.n, ix.numBP, ix.bpS1, ix.bpS0, ix.invertedEmit(ranks))
	return &VertexSet{owner: ix, inv: inv, size: len(ranks)}, nil
}

// KNNIn returns the k members of set nearest to s (s itself excluded
// if a member), with the KNN ordering contract. The set must have been
// registered on this index.
func (ix *Index) KNNIn(s int32, set *VertexSet, k int) ([]Neighbor, error) {
	if set == nil || set.owner != any(ix) {
		return nil, ErrForeignSet
	}
	rs := ix.rank[s]
	runs, s1, s0 := ix.searchSource(rs)
	sc := ix.search.getScratch(ix.n)
	res := set.inv.KNN(runs, rs, s1, s0, k, sc)
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, k), nil
}

// ---------------------------------------------------------------------
// DirectedIndex: forward search (distances s -> v) by inverting L_IN
// and merging from L_OUT(s).
// ---------------------------------------------------------------------

func (ix *DirectedIndex) invertedEmit(ranks []int32) func(add func(run, vertex int32, dist uint32)) {
	return func(add func(run, vertex int32, dist uint32)) {
		one := func(r int32) {
			for i := ix.inOff[r]; i < ix.inOff[r+1]-1; i++ {
				add(ix.inVertex[i], r, uint32(ix.inDist[i]))
			}
		}
		if ranks == nil {
			for r := int32(0); int(r) < ix.n; r++ {
				one(r)
			}
			return
		}
		for _, r := range ranks {
			one(r)
		}
	}
}

// EnsureSearch returns the inverted L_IN index behind forward search
// queries, building and caching it on first call.
func (ix *DirectedIndex) EnsureSearch() *hubsearch.Inverted {
	return ix.search.ensure(func() *hubsearch.Inverted {
		return hubsearch.Build(ix.n, 0, nil, nil, ix.invertedEmit(nil))
	})
}

func (ix *DirectedIndex) searchSource(rs int32) []hubsearch.Run {
	lo, hi := ix.outOff[rs], ix.outOff[rs+1]-1
	runs := make([]hubsearch.Run, 0, hi-lo)
	for i := lo; i < hi; i++ {
		runs = append(runs, hubsearch.Run{ID: ix.outVertex[i], Base: int64(ix.outDist[i])})
	}
	return runs
}

// KNN returns the k vertices nearest to s by directed distance
// d(s, v), with the KNN ordering contract of the undirected variant.
func (ix *DirectedIndex) KNN(s int32, k int) []Neighbor {
	inv := ix.EnsureSearch()
	rs := ix.rank[s]
	sc := ix.search.getScratch(ix.n)
	res := inv.KNN(ix.searchSource(rs), rs, nil, nil, k, sc)
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, k)
}

// SearchRange returns every vertex v with d(s, v) <= radius, sorted by
// (distance, vertex ID).
func (ix *DirectedIndex) SearchRange(s int32, radius int64) []Neighbor {
	inv := ix.EnsureSearch()
	rs := ix.rank[s]
	sc := ix.search.getScratch(ix.n)
	res := inv.Range(ix.searchSource(rs), rs, nil, nil, radius, sc)
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, 0)
}

// NewVertexSet registers a subset for directed NearestIn queries.
func (ix *DirectedIndex) NewVertexSet(members []int32) (*VertexSet, error) {
	ranks, err := rankMembers(ix.n, ix.rank, members)
	if err != nil {
		return nil, err
	}
	inv := hubsearch.BuildSubset(ix.n, 0, nil, nil, ix.invertedEmit(ranks))
	return &VertexSet{owner: ix, inv: inv, size: len(ranks)}, nil
}

// KNNIn returns the k members of set nearest to s by directed
// distance.
func (ix *DirectedIndex) KNNIn(s int32, set *VertexSet, k int) ([]Neighbor, error) {
	if set == nil || set.owner != any(ix) {
		return nil, ErrForeignSet
	}
	rs := ix.rank[s]
	sc := ix.search.getScratch(ix.n)
	res := set.inv.KNN(ix.searchSource(rs), rs, nil, nil, k, sc)
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, k), nil
}

// ---------------------------------------------------------------------
// WeightedIndex
// ---------------------------------------------------------------------

func (ix *WeightedIndex) invertedEmit(ranks []int32) func(add func(run, vertex int32, dist uint32)) {
	return func(add func(run, vertex int32, dist uint32)) {
		one := func(r int32) {
			for i := ix.labelOff[r]; i < ix.labelOff[r+1]-1; i++ {
				add(ix.labelVertex[i], r, ix.labelDist[i])
			}
		}
		if ranks == nil {
			for r := int32(0); int(r) < ix.n; r++ {
				one(r)
			}
			return
		}
		for _, r := range ranks {
			one(r)
		}
	}
}

// EnsureSearch returns the inverted label index, building and caching
// it on first call.
func (ix *WeightedIndex) EnsureSearch() *hubsearch.Inverted {
	return ix.search.ensure(func() *hubsearch.Inverted {
		return hubsearch.Build(ix.n, 0, nil, nil, ix.invertedEmit(nil))
	})
}

func (ix *WeightedIndex) searchSource(rs int32) []hubsearch.Run {
	lo, hi := ix.labelOff[rs], ix.labelOff[rs+1]-1
	runs := make([]hubsearch.Run, 0, hi-lo)
	for i := lo; i < hi; i++ {
		runs = append(runs, hubsearch.Run{ID: ix.labelVertex[i], Base: int64(ix.labelDist[i])})
	}
	return runs
}

// KNN returns the k nearest vertices to s by summed edge weight, with
// the KNN ordering contract of the undirected variant.
func (ix *WeightedIndex) KNN(s int32, k int) []Neighbor {
	inv := ix.EnsureSearch()
	rs := ix.rank[s]
	sc := ix.search.getScratch(ix.n)
	res := inv.KNN(ix.searchSource(rs), rs, nil, nil, k, sc)
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, k)
}

// SearchRange returns every vertex within weighted distance radius of
// s, sorted by (distance, vertex ID).
func (ix *WeightedIndex) SearchRange(s int32, radius int64) []Neighbor {
	inv := ix.EnsureSearch()
	rs := ix.rank[s]
	sc := ix.search.getScratch(ix.n)
	res := inv.Range(ix.searchSource(rs), rs, nil, nil, radius, sc)
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, 0)
}

// NewVertexSet registers a subset for weighted NearestIn queries.
func (ix *WeightedIndex) NewVertexSet(members []int32) (*VertexSet, error) {
	ranks, err := rankMembers(ix.n, ix.rank, members)
	if err != nil {
		return nil, err
	}
	inv := hubsearch.BuildSubset(ix.n, 0, nil, nil, ix.invertedEmit(ranks))
	return &VertexSet{owner: ix, inv: inv, size: len(ranks)}, nil
}

// KNNIn returns the k members of set nearest to s by weighted
// distance.
func (ix *WeightedIndex) KNNIn(s int32, set *VertexSet, k int) ([]Neighbor, error) {
	if set == nil || set.owner != any(ix) {
		return nil, ErrForeignSet
	}
	rs := ix.rank[s]
	sc := ix.search.getScratch(ix.n)
	res := set.inv.KNN(ix.searchSource(rs), rs, nil, nil, k, sc)
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, k), nil
}

// ---------------------------------------------------------------------
// Hub-occupancy statistics
// ---------------------------------------------------------------------

// applyHubStats fills the hub-occupancy Stats fields from one or more
// label-hub arrays (sentinel entries, which store n, fall outside the
// counted range and are skipped automatically).
func applyHubStats(st *Stats, n int, families ...[]int32) {
	if n == 0 {
		return
	}
	counts := make([]int32, n)
	for _, f := range families {
		for _, h := range f {
			if int(h) < n && h >= 0 {
				counts[h]++
			}
		}
	}
	var total int64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		st.DistinctHubs++
		total += int64(c)
		if int(c) > st.MaxHubLoad {
			st.MaxHubLoad = int(c)
		}
	}
	if st.DistinctHubs > 0 {
		st.AvgHubLoad = float64(total) / float64(st.DistinctHubs)
	}
}
