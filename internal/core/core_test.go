package core

import (
	"errors"
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/order"
	"pll/internal/rng"
)

// buildOrFail builds an index with the given options and fails the test
// on error.
func buildOrFail(t *testing.T, g *graph.Graph, opt Options) *Index {
	t.Helper()
	ix, err := Build(g, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

// assertMatchesBFS checks the index against ground-truth BFS distances
// for numPairs sampled pairs plus every pair involving vertex 0.
func assertMatchesBFS(t *testing.T, g *graph.Graph, ix *Index, numPairs int, seed uint64) {
	t.Helper()
	n := g.NumVertices()
	if n == 0 {
		return
	}
	for _, p := range randPairs(n, numPairs, seed) {
		want := bfs.Distance(g, p[0], p[1])
		got := ix.Query(p[0], p[1])
		wantInt := int(want)
		if want == bfs.Unreachable {
			wantInt = Unreachable
		}
		if got != wantInt {
			t.Fatalf("Query(%d,%d) = %d, want %d", p[0], p[1], got, wantInt)
		}
	}
	truth := bfs.AllDistances(g, 0)
	for v := 0; v < n; v++ {
		want := int(truth[v])
		if truth[v] == bfs.Unreachable {
			want = Unreachable
		}
		if got := ix.Query(0, int32(v)); got != want {
			t.Fatalf("Query(0,%d) = %d, want %d", v, got, want)
		}
	}
}

func randomGraph(seed uint64, maxN int) *graph.Graph {
	r := rng.New(seed)
	n := r.Intn(maxN) + 2
	m := r.Intn(3 * n)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: r.Int31n(int32(n)), V: r.Int31n(int32(n))})
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestQueryOnPath(t *testing.T) {
	g := gen.Path(20)
	ix := buildOrFail(t, g, Options{})
	for s := int32(0); s < 20; s++ {
		for u := int32(0); u < 20; u++ {
			want := int(abs32(s - u))
			if got := ix.Query(s, u); got != want {
				t.Fatalf("Query(%d,%d) = %d, want %d", s, u, got, want)
			}
		}
	}
}

func TestQueryOnStar(t *testing.T) {
	g := gen.Star(30)
	ix := buildOrFail(t, g, Options{})
	if d := ix.Query(1, 2); d != 2 {
		t.Fatalf("leaf-leaf distance = %d, want 2", d)
	}
	if d := ix.Query(0, 5); d != 1 {
		t.Fatalf("center-leaf distance = %d, want 1", d)
	}
	// A star indexed degree-first stores tiny labels: the hub covers all.
	st := ix.ComputeStats()
	if st.AvgLabelSize > 2.1 {
		t.Fatalf("star average label size %.2f, want <= ~2", st.AvgLabelSize)
	}
}

func TestQueryOnCycle(t *testing.T) {
	g := gen.Cycle(17)
	ix := buildOrFail(t, g, Options{})
	for s := int32(0); s < 17; s++ {
		for u := int32(0); u < 17; u++ {
			diff := int(abs32(s - u))
			want := diff
			if 17-diff < diff {
				want = 17 - diff
			}
			if got := ix.Query(s, u); got != want {
				t.Fatalf("Query(%d,%d) = %d, want %d", s, u, got, want)
			}
		}
	}
}

func TestQueryOnGrid(t *testing.T) {
	g := gen.Grid(7, 9)
	ix := buildOrFail(t, g, Options{})
	assertMatchesBFS(t, g, ix, 200, 1)
}

func TestQueryDisconnected(t *testing.T) {
	g, err := graph.NewGraph(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildOrFail(t, g, Options{})
	if d := ix.Query(0, 3); d != Unreachable {
		t.Fatalf("cross-component Query = %d, want Unreachable", d)
	}
	if d := ix.Query(5, 0); d != Unreachable {
		t.Fatalf("isolated vertex Query = %d, want Unreachable", d)
	}
	if d := ix.Query(5, 5); d != 0 {
		t.Fatalf("self Query on isolated vertex = %d, want 0", d)
	}
}

func TestQuerySelf(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 3)
	ix := buildOrFail(t, g, Options{})
	for v := int32(0); v < 100; v += 7 {
		if d := ix.Query(v, v); d != 0 {
			t.Fatalf("Query(%d,%d) = %d, want 0", v, v, d)
		}
	}
}

func TestRandomGraphsMatchBFSNoBP(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 60)
		ix, err := Build(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		n := int32(g.NumVertices())
		r := rng.New(seed ^ 0xfeed)
		for i := 0; i < 30; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			want := bfs.Distance(g, s, u)
			got := ix.Query(s, u)
			if want == bfs.Unreachable {
				if got != Unreachable {
					return false
				}
			} else if got != int(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGraphsMatchBFSWithBP(t *testing.T) {
	check := func(seed uint64, bpSmall uint8) bool {
		g := randomGraph(seed, 60)
		numBP := int(bpSmall % 8)
		ix, err := Build(g, Options{Seed: seed, NumBitParallel: numBP})
		if err != nil {
			return false
		}
		n := int32(g.NumVertices())
		r := rng.New(seed ^ 0xbeef)
		for i := 0; i < 30; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			want := bfs.Distance(g, s, u)
			got := ix.Query(s, u)
			if want == bfs.Unreachable {
				if got != Unreachable {
					return false
				}
			} else if got != int(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBPOnlyCoversEverything(t *testing.T) {
	// With enough BP roots every vertex is consumed by the BP phase, and
	// queries must still be exact.
	g := gen.BarabasiAlbert(120, 3, 5)
	ix := buildOrFail(t, g, Options{NumBitParallel: 120})
	assertMatchesBFS(t, g, ix, 300, 7)
	if ix.NumBitParallelRoots() == 0 {
		t.Fatal("expected at least one BP root")
	}
}

func TestAllOrderingStrategiesExact(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 11)
	for _, s := range []order.Strategy{order.Degree, order.Random, order.Closeness} {
		ix := buildOrFail(t, g, Options{Ordering: s, Seed: 2})
		assertMatchesBFS(t, g, ix, 150, uint64(s)+9)
	}
}

func TestDegreeOrderingBeatsRandom(t *testing.T) {
	// Table 5's headline: Random labels are far larger than Degree labels.
	g := gen.BarabasiAlbert(400, 3, 21)
	deg := buildOrFail(t, g, Options{Ordering: order.Degree, Seed: 1})
	rnd := buildOrFail(t, g, Options{Ordering: order.Random, Seed: 1})
	ds := deg.ComputeStats()
	rs := rnd.ComputeStats()
	if rs.AvgLabelSize < 1.5*ds.AvgLabelSize {
		t.Fatalf("Random avg label %.1f should far exceed Degree %.1f",
			rs.AvgLabelSize, ds.AvgLabelSize)
	}
}

func TestCustomOrder(t *testing.T) {
	g := gen.Path(10)
	perm := make([]int32, 10)
	for i := range perm {
		perm[i] = int32(9 - i)
	}
	ix := buildOrFail(t, g, Options{CustomOrder: perm})
	assertMatchesBFS(t, g, ix, 50, 3)
}

func TestCustomOrderValidation(t *testing.T) {
	g := gen.Path(5)
	if _, err := Build(g, Options{CustomOrder: []int32{0, 1}}); err == nil {
		t.Fatal("expected error for short CustomOrder")
	}
	if _, err := Build(g, Options{CustomOrder: []int32{0, 0, 1, 2, 3}}); err == nil {
		t.Fatal("expected error for duplicate CustomOrder")
	}
}

func TestNegativeBPRejected(t *testing.T) {
	if _, err := Build(gen.Path(3), Options{NumBitParallel: -1}); err == nil {
		t.Fatal("expected error for negative NumBitParallel")
	}
}

func TestDiameterTooLarge(t *testing.T) {
	// Every root of a 600-path has eccentricity >= 300 > 254, so both
	// construction phases must report the 8-bit overflow.
	g := gen.Path(600)
	_, err := Build(g, Options{})
	if !errors.Is(err, ErrDiameterTooLarge) {
		t.Fatalf("err = %v, want ErrDiameterTooLarge", err)
	}
	_, err = Build(g, Options{NumBitParallel: 4})
	if !errors.Is(err, ErrDiameterTooLarge) {
		t.Fatalf("BP err = %v, want ErrDiameterTooLarge", err)
	}
}

func TestLongPathWithinPerBFSBudget(t *testing.T) {
	// A 300-path has diameter 299 > 254, but a mid-path root keeps every
	// individual BFS within the 8-bit budget; queries sum two label
	// distances as ints, so even d=299 is answered exactly.
	g := gen.Path(300)
	ix, err := Build(g, Options{})
	if err != nil {
		t.Skipf("ordering picked an off-center root: %v", err)
	}
	if d := ix.Query(0, 299); d != 299 {
		t.Fatalf("Query(0,299) = %d, want 299", d)
	}
	assertMatchesBFS(t, g, ix, 100, 3)
}

func TestMinimalityTheorem42(t *testing.T) {
	// Theorem 4.2: every label entry is necessary — removing (w, δ) from
	// L(v) makes the query between v and w incorrect. Verified
	// exhaustively on small random graphs without bit-parallel labels.
	check := func(seed uint64) bool {
		g := randomGraph(seed, 25)
		ix, err := Build(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		n := g.NumVertices()
		for v := int32(0); int(v) < n; v++ {
			hubs, _ := ix.Label(v)
			for _, w := range hubs {
				if w == v {
					continue // the self entry answers (v,v); removing it breaks d(v,v) coverage of other pairs
				}
				d := ix.Query(v, w)
				// Remove the entry and re-answer via remaining labels.
				if queryWithout(ix, v, w) <= d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// queryWithout answers Query(v, w) ignoring the hub-w entry of L(v)
// (simulating its removal). Both labels may still share other hubs.
func queryWithout(ix *Index, v, w int32) int {
	rv, rw := ix.rank[v], ix.rank[w]
	best := int(InfDist) + int(InfDist)
	i, j := ix.labelOff[rv], ix.labelOff[rw]
	for {
		vs, vt := ix.labelVertex[i], ix.labelVertex[j]
		switch {
		case vs == vt:
			if int(vs) == ix.n {
				return best
			}
			if vs != rw { // skip the removed entry (hub w inside L(v))
				if d := int(ix.labelDist[i]) + int(ix.labelDist[j]); d < best {
					best = d
				}
			}
			i++
			j++
		case vs < vt:
			i++
		default:
			j++
		}
	}
}

func TestLabelAccessors(t *testing.T) {
	g := gen.Path(6)
	ix := buildOrFail(t, g, Options{})
	total := 0
	for v := int32(0); v < 6; v++ {
		hubs, dists := ix.Label(v)
		if len(hubs) != len(dists) {
			t.Fatal("hub/dist length mismatch")
		}
		if len(hubs) != ix.LabelSize(v) {
			t.Fatalf("LabelSize(%d)=%d but Label returned %d entries", v, ix.LabelSize(v), len(hubs))
		}
		total += len(hubs)
		for i, h := range hubs {
			want := bfs.Distance(g, v, h)
			if int(dists[i]) != int(want) {
				t.Fatalf("label of %d claims d(%d,%d)=%d, truth %d", v, v, h, dists[i], want)
			}
		}
	}
	st := ix.ComputeStats()
	if st.TotalLabelEntries != int64(total) {
		t.Fatalf("stats total %d != summed %d", st.TotalLabelEntries, total)
	}
}

func TestComputeStats(t *testing.T) {
	g := gen.BarabasiAlbert(200, 2, 13)
	ix := buildOrFail(t, g, Options{NumBitParallel: 2})
	st := ix.ComputeStats()
	if st.NumVertices != 200 || st.NumBitParallel != 2 {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.AvgLabelSize <= 0 || st.MaxLabelSize < int(st.AvgLabelSize) {
		t.Fatalf("label size stats inconsistent: %+v", st)
	}
	if st.IndexBytes <= 0 || st.BitParallelBytes != int64(2*200*(1+8+8)) {
		t.Fatalf("byte accounting wrong: %+v", st)
	}
	q := st.LabelSizeQuantiles
	if q[0] > q[1] || q[1] > q[2] || q[2] > q[3] || q[3] > q[4] {
		t.Fatalf("quantiles not monotone: %v", q)
	}
	dist := ix.LabelSizeDistribution()
	if len(dist) != 200 {
		t.Fatal("distribution length wrong")
	}
	for i := 1; i < len(dist); i++ {
		if dist[i-1] > dist[i] {
			t.Fatal("distribution not sorted")
		}
	}
}

func TestBuildStatsCollected(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 17)
	var bs BuildStats
	ix := buildOrFail(t, g, Options{NumBitParallel: 2, CollectStats: &bs})
	if len(bs.LabelsPerBFS) == 0 || len(bs.LabelsPerBFS) != len(bs.RootRank) ||
		len(bs.LabelsPerBFS) != len(bs.IsBitParallel) || len(bs.LabelsPerBFS) != len(bs.VisitedPerBFS) {
		t.Fatalf("stats arrays inconsistent: %d/%d/%d/%d",
			len(bs.LabelsPerBFS), len(bs.RootRank), len(bs.IsBitParallel), len(bs.VisitedPerBFS))
	}
	if !bs.IsBitParallel[0] || !bs.IsBitParallel[1] || bs.IsBitParallel[2] {
		t.Fatal("first two roots should be bit-parallel")
	}
	// Normal label totals must agree with the index.
	var sum int64
	for i, c := range bs.LabelsPerBFS {
		if !bs.IsBitParallel[i] {
			sum += c
		}
	}
	if sum != ix.ComputeStats().TotalLabelEntries {
		t.Fatalf("per-BFS sum %d != total entries %d", sum, ix.ComputeStats().TotalLabelEntries)
	}
	// Figure 3a's effect: the first pruned BFS labels far more vertices
	// than the last one.
	first, last := int64(-1), int64(-1)
	for i, c := range bs.LabelsPerBFS {
		if bs.IsBitParallel[i] {
			continue
		}
		if first == -1 {
			first = c
		}
		last = c
	}
	if first <= last {
		t.Fatalf("pruning ineffective: first BFS labeled %d, last %d", first, last)
	}
}

func TestPruningShrinksSearchVsNaive(t *testing.T) {
	// The whole point of the paper: total labels with pruning must be far
	// below the n^2/2-ish entries the naive method stores.
	g := gen.BarabasiAlbert(500, 3, 23)
	ix := buildOrFail(t, g, Options{})
	total := ix.ComputeStats().TotalLabelEntries
	naive := int64(500) * 500 / 2
	if total*10 > naive {
		t.Fatalf("pruned index has %d entries; naive would be ~%d — pruning too weak", total, naive)
	}
}

func TestQueryPath(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 40)
		ix, err := Build(g, Options{StorePaths: true, Seed: seed})
		if err != nil {
			return false
		}
		n := int32(g.NumVertices())
		r := rng.New(seed + 5)
		for i := 0; i < 15; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			want := bfs.Distance(g, s, u)
			p, err := ix.QueryPath(s, u)
			if err != nil {
				return false
			}
			if want == bfs.Unreachable {
				if p != nil {
					return false
				}
				continue
			}
			if len(p) != int(want)+1 || p[0] != s || p[len(p)-1] != u {
				return false
			}
			for j := 1; j < len(p); j++ {
				if !g.HasEdge(p[j-1], p[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryPathSelf(t *testing.T) {
	g := gen.Path(5)
	ix := buildOrFail(t, g, Options{StorePaths: true})
	p, err := ix.QueryPath(2, 2)
	if err != nil || len(p) != 1 || p[0] != 2 {
		t.Fatalf("self path = %v, %v", p, err)
	}
}

func TestQueryPathRequiresStorePaths(t *testing.T) {
	g := gen.Path(5)
	ix := buildOrFail(t, g, Options{})
	if _, err := ix.QueryPath(0, 4); err == nil {
		t.Fatal("expected error without StorePaths")
	}
}

func TestStorePathsDisablesBP(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 3)
	ix := buildOrFail(t, g, Options{StorePaths: true, NumBitParallel: 16})
	if ix.NumBitParallelRoots() != 0 {
		t.Fatal("StorePaths must disable bit-parallel labeling")
	}
	if !ix.HasPaths() {
		t.Fatal("HasPaths should be true")
	}
}

func TestMetricPropertiesOfOracle(t *testing.T) {
	// The oracle must behave like the graph metric: symmetric, zero only
	// on the diagonal (for connected distinct pairs), triangle inequality.
	g := gen.BarabasiAlbert(150, 3, 31)
	ix := buildOrFail(t, g, Options{NumBitParallel: 4})
	r := rng.New(77)
	for i := 0; i < 300; i++ {
		a, b, c := r.Int31n(150), r.Int31n(150), r.Int31n(150)
		dab, dba := ix.Query(a, b), ix.Query(b, a)
		if dab != dba {
			t.Fatalf("asymmetric: d(%d,%d)=%d, d(%d,%d)=%d", a, b, dab, b, a, dba)
		}
		dbc, dac := ix.Query(b, c), ix.Query(a, c)
		if dab >= 0 && dbc >= 0 && dac >= 0 && dac > dab+dbc {
			t.Fatalf("triangle violated: d(%d,%d)=%d > %d+%d", a, c, dac, dab, dbc)
		}
		if a != b && dab == 0 {
			t.Fatalf("zero distance for distinct pair (%d,%d)", a, b)
		}
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		g, err := graph.NewGraph(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		ix := buildOrFail(t, g, Options{NumBitParallel: 4})
		if n >= 1 {
			if d := ix.Query(0, 0); d != 0 {
				t.Fatalf("n=%d: self distance %d", n, d)
			}
		}
		if n == 2 {
			if d := ix.Query(0, 1); d != Unreachable {
				t.Fatalf("edgeless pair distance %d", d)
			}
		}
	}
}

func TestDeterministicBuilds(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 41)
	a := buildOrFail(t, g, Options{Seed: 5, NumBitParallel: 4})
	b := buildOrFail(t, g, Options{Seed: 5, NumBitParallel: 4})
	if a.ComputeStats() != b.ComputeStats() {
		t.Fatal("same seed produced different indexes")
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func BenchmarkPrunedBFSConstruction(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructionWithBP(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, Options{NumBitParallel: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 5, 1)
	ix, err := Build(g, Options{NumBitParallel: 8})
	if err != nil {
		b.Fatal(err)
	}
	pairs := randPairs(20000, 1024, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i&1023]
		ix.Query(p[0], p[1])
	}
}
