package core

// Profiled query entry points: each variant's Distance / DistanceFrom /
// KNN with a per-query profile threaded through. The profiled methods
// time the label-merge or hub-scan work and record how much of the
// index it touched (merged label entries, runs seeded, entries
// advanced); a nil profile falls straight through to the unprofiled
// method, so the untraced path pays one branch and nothing else.

import (
	"time"

	"pll/internal/trace"
)

// labelEntries returns the sentinel-free label length of rank r in a
// flattened (off, …) label family.
func labelEntries(off []int64, r int32) int64 {
	return off[r+1] - off[r] - 1
}

// mergeEntries counts the label entries Query merges for an s-t pair:
// both normal labels plus both sides' bit-parallel rows.
func (ix *Index) mergeEntries(s, t int32) int64 {
	rs, rt := ix.rank[s], ix.rank[t]
	return labelEntries(ix.labelOff, rs) + labelEntries(ix.labelOff, rt) + int64(2*ix.numBP)
}

// DistanceProfiled is Query with merge profiling.
func (ix *Index) DistanceProfiled(s, t int32, p *trace.QueryProfile) int {
	if p == nil {
		return ix.Query(s, t)
	}
	start := time.Now()
	d := ix.Query(s, t)
	p.AddMerge(ix.mergeEntries(s, t), time.Since(start))
	return d
}

// DistanceFromProfiled is DistanceFrom with merge profiling: one merge
// record covering the whole batch.
func (ix *Index) DistanceFromProfiled(s int32, targets []int32, dst []int64, p *trace.QueryProfile) []int64 {
	if p == nil {
		return ix.DistanceFrom(s, targets, dst)
	}
	start := time.Now()
	dst = ix.DistanceFrom(s, targets, dst)
	entries := labelEntries(ix.labelOff, ix.rank[s]) + int64((len(targets)+1)*ix.numBP)
	for _, t := range targets {
		entries += labelEntries(ix.labelOff, ix.rank[t]) + int64(ix.numBP)
	}
	p.AddMerge(entries, time.Since(start))
	return dst
}

// KNNProfiled is KNN with hub-scan profiling.
func (ix *Index) KNNProfiled(s int32, k int, p *trace.QueryProfile) []Neighbor {
	if p == nil {
		return ix.KNN(s, k)
	}
	start := time.Now()
	inv := ix.EnsureSearch()
	rs := ix.rank[s]
	runs, s1, s0 := ix.searchSource(rs)
	sc := ix.search.getScratch(ix.n)
	res := inv.KNN(runs, rs, s1, s0, k, sc)
	// Read the counters before the scratch returns to the pool: another
	// goroutine may start a query on it immediately.
	p.AddScan(int64(sc.Runs), sc.Scanned, time.Since(start))
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, k)
}

func (ix *DirectedIndex) mergeEntries(s, t int32) int64 {
	rs, rt := ix.rank[s], ix.rank[t]
	return labelEntries(ix.outOff, rs) + labelEntries(ix.inOff, rt)
}

// DistanceProfiled is Query with merge profiling.
func (ix *DirectedIndex) DistanceProfiled(s, t int32, p *trace.QueryProfile) int {
	if p == nil {
		return ix.Query(s, t)
	}
	start := time.Now()
	d := ix.Query(s, t)
	p.AddMerge(ix.mergeEntries(s, t), time.Since(start))
	return d
}

// DistanceFromProfiled is DistanceFrom with merge profiling.
func (ix *DirectedIndex) DistanceFromProfiled(s int32, targets []int32, dst []int64, p *trace.QueryProfile) []int64 {
	if p == nil {
		return ix.DistanceFrom(s, targets, dst)
	}
	start := time.Now()
	dst = ix.DistanceFrom(s, targets, dst)
	entries := labelEntries(ix.outOff, ix.rank[s])
	for _, t := range targets {
		entries += labelEntries(ix.inOff, ix.rank[t])
	}
	p.AddMerge(entries, time.Since(start))
	return dst
}

// KNNProfiled is KNN with hub-scan profiling.
func (ix *DirectedIndex) KNNProfiled(s int32, k int, p *trace.QueryProfile) []Neighbor {
	if p == nil {
		return ix.KNN(s, k)
	}
	start := time.Now()
	inv := ix.EnsureSearch()
	rs := ix.rank[s]
	sc := ix.search.getScratch(ix.n)
	res := inv.KNN(ix.searchSource(rs), rs, nil, nil, k, sc)
	p.AddScan(int64(sc.Runs), sc.Scanned, time.Since(start))
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, k)
}

func (ix *WeightedIndex) mergeEntries(s, t int32) int64 {
	rs, rt := ix.rank[s], ix.rank[t]
	return labelEntries(ix.labelOff, rs) + labelEntries(ix.labelOff, rt)
}

// DistanceProfiled is Query with merge profiling.
func (ix *WeightedIndex) DistanceProfiled(s, t int32, p *trace.QueryProfile) uint64 {
	if p == nil {
		return ix.Query(s, t)
	}
	start := time.Now()
	d := ix.Query(s, t)
	p.AddMerge(ix.mergeEntries(s, t), time.Since(start))
	return d
}

// DistanceFromProfiled is DistanceFrom with merge profiling.
func (ix *WeightedIndex) DistanceFromProfiled(s int32, targets []int32, dst []int64, p *trace.QueryProfile) []int64 {
	if p == nil {
		return ix.DistanceFrom(s, targets, dst)
	}
	start := time.Now()
	dst = ix.DistanceFrom(s, targets, dst)
	entries := labelEntries(ix.labelOff, ix.rank[s])
	for _, t := range targets {
		entries += labelEntries(ix.labelOff, ix.rank[t])
	}
	p.AddMerge(entries, time.Since(start))
	return dst
}

// KNNProfiled is KNN with hub-scan profiling.
func (ix *WeightedIndex) KNNProfiled(s int32, k int, p *trace.QueryProfile) []Neighbor {
	if p == nil {
		return ix.KNN(s, k)
	}
	start := time.Now()
	inv := ix.EnsureSearch()
	rs := ix.rank[s]
	sc := ix.search.getScratch(ix.n)
	res := inv.KNN(ix.searchSource(rs), rs, nil, nil, k, sc)
	p.AddScan(int64(sc.Runs), sc.Scanned, time.Since(start))
	ix.search.pool.Put(sc)
	return finishNeighbors(ix.perm, res, k)
}

func (di *DynamicIndex) mergeEntries(s, t int32) int64 {
	rs, rt := di.rank[s], di.rank[t]
	return int64(len(di.labV[rs]) + len(di.labV[rt]))
}

// DistanceProfiled is Query with merge profiling.
func (di *DynamicIndex) DistanceProfiled(s, t int32, p *trace.QueryProfile) int {
	if p == nil {
		return di.Query(s, t)
	}
	start := time.Now()
	d := di.Query(s, t)
	p.AddMerge(di.mergeEntries(s, t), time.Since(start))
	return d
}

// DistanceFromProfiled is DistanceFrom with merge profiling.
func (di *DynamicIndex) DistanceFromProfiled(s int32, targets []int32, dst []int64, p *trace.QueryProfile) []int64 {
	if p == nil {
		return di.DistanceFrom(s, targets, dst)
	}
	start := time.Now()
	dst = di.DistanceFrom(s, targets, dst)
	entries := int64(len(di.labV[di.rank[s]]))
	for _, t := range targets {
		entries += int64(len(di.labV[di.rank[t]]))
	}
	p.AddMerge(entries, time.Since(start))
	return dst
}
