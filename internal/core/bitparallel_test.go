package core

import (
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/rng"
)

// runBPBFS exposes the bit-parallel BFS (Algorithm 3) for white-box
// validation against the set definitions of §5.1.
func runBPBFS(t *testing.T, g *graph.Graph, r int32, sr []int32) (dist []uint8, s1, s0 []uint64) {
	t.Helper()
	n := g.NumVertices()
	dist = make([]uint8, n)
	s1 = make([]uint64, n)
	s0 = make([]uint64, n)
	if _, err := bitParallelBFS(g, r, sr, dist, s1, s0, nil); err != nil {
		t.Fatal(err)
	}
	return dist, s1, s0
}

func TestBitParallelSetsMatchDefinition(t *testing.T) {
	// S^i_r(v) = {u in S_r | d(u,v) - d(r,v) = i} (§5.1). Verify the
	// computed bit masks against per-neighbor BFS ground truth.
	check := func(seed uint64) bool {
		rr := rng.New(seed)
		n := rr.Intn(40) + 3
		m := rr.Intn(4*n) + n
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: rr.Int31n(int32(n)), V: rr.Int31n(int32(n))})
		}
		g, err := graph.NewGraph(n, edges)
		if err != nil {
			return false
		}
		r := rr.Int31n(int32(n))
		nbrs := g.Neighbors(r)
		if len(nbrs) == 0 {
			return true // nothing to verify
		}
		srLen := rr.Intn(len(nbrs)) + 1
		if srLen > 64 {
			srLen = 64
		}
		sr := append([]int32(nil), nbrs[:srLen]...)

		dist, s1, s0 := runBPBFS(t, g, r, sr)
		truthR := bfs.AllDistances(g, r)
		truthS := make([][]int32, len(sr))
		for i, s := range sr {
			truthS[i] = bfs.AllDistances(g, s)
		}
		for v := 0; v < n; v++ {
			wantD := truthR[v]
			if wantD == bfs.Unreachable {
				// v may still be reachable from an S_r member? No: S_r
				// members are neighbors of r, same component.
				if dist[v] != InfDist {
					return false
				}
				continue
			}
			if int32(dist[v]) != wantD {
				return false
			}
			for i := range sr {
				du := truthS[i][v]
				inS1 := s1[v]&(1<<uint(i)) != 0
				inS0 := s0[v]&(1<<uint(i)) != 0
				wantS1 := du != bfs.Unreachable && du == wantD-1
				wantS0 := du != bfs.Unreachable && du == wantD
				if inS1 != wantS1 || inS0 != wantS0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBitParallelDistanceAdjustment(t *testing.T) {
	// §5.3: the distance through {r} ∪ S_r is d(s,r)+d(r,t) adjusted by
	// -2 / -1 / 0 according to the set intersections. Verify the full
	// query path on a graph engineered so that the true distance goes
	// through an S_r member, not through r itself.
	//
	//	0 (root r) — 1, 2 (S_r); 3—1, 4—2, 3—4 shortcut.
	g, err := graph.NewGraph(5, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2},
		{U: 1, V: 3}, {U: 2, V: 4},
		{U: 3, V: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// d(3,4) via root 0 would be 2+2=4; via S_r adjustment it must be
	// computed as the exact 1? No: true d(3,4)=1 via the direct edge, and
	// {r}∪S_r detour gives 3 (3-1-0-2-4 minus adjustments: S1(3)={1},
	// S1(4)={2}, no overlap; S0 sets empty) — the BP estimate through
	// this root set is d=4-? ... the exact answer needs the direct edge,
	// so PLL must still answer 1 via normal labels.
	ix, err := Build(g, Options{NumBitParallel: 1, CustomOrder: []int32{0, 1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for s := int32(0); s < 5; s++ {
		for u := int32(0); u < 5; u++ {
			want := bfs.Distance(g, s, u)
			if got := ix.Query(s, u); got != int(want) {
				t.Fatalf("Query(%d,%d) = %d, want %d", s, u, got, want)
			}
		}
	}
}

func TestBitParallelSiblingAdjustment(t *testing.T) {
	// Triangle root: r=0 with S_r={1,2} and edge (1,2). d(1,2) computed
	// through the BP label must be 1 (S^0 adjustment), not 2.
	g, err := graph.NewGraph(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{NumBitParallel: 1, CustomOrder: []int32{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if d := ix.Query(1, 2); d != 1 {
		t.Fatalf("Query(1,2) = %d, want 1 (S^0 sibling adjustment)", d)
	}
}

func TestBitParallelConsumesRootsAndNeighbors(t *testing.T) {
	// On a star, one BP BFS consumes the hub and all leaves: the pruned
	// phase then has nothing to do and normal labels stay empty.
	g := gen.Star(40)
	var bs BuildStats
	ix, err := Build(g, Options{NumBitParallel: 4, CollectStats: &bs, CustomOrder: starOrder(40)})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBitParallelRoots() == 0 {
		t.Fatal("expected BP roots")
	}
	// Exactness regardless.
	for v := int32(1); v < 40; v++ {
		if ix.Query(0, v) != 1 {
			t.Fatalf("center-leaf distance wrong for %d", v)
		}
	}
	if ix.Query(5, 6) != 2 {
		t.Fatal("leaf-leaf distance wrong")
	}
}

func starOrder(n int) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

func TestBitParallelMoreRootsThanVertices(t *testing.T) {
	g := gen.Path(6)
	ix, err := Build(g, Options{NumBitParallel: 100})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBitParallelRoots() > 6 {
		t.Fatalf("BP roots %d exceed n", ix.NumBitParallelRoots())
	}
	assertMatchesBFS(t, g, ix, 30, 2)
}

func BenchmarkBitParallelBFS(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 5, 1)
	n := g.NumVertices()
	dist := make([]uint8, n)
	s1 := make([]uint64, n)
	s0 := make([]uint64, n)
	sr := g.Neighbors(0)
	if len(sr) > 64 {
		sr = sr[:64]
	}
	var que []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if que, err = bitParallelBFS(g, 0, sr, dist, s1, s0, que); err != nil {
			b.Fatal(err)
		}
	}
}
