package runquery

import "sort"

// Execute answers a query against a backend. The query is validated
// first; execution then follows one of two plans:
//
//   - Ranked streaming, when a top-k limit is set and the cheapest
//     positive root conjunct is a near-constraint whose source carries a
//     positive ranking weight: that constraint's neighborhood streams
//     lazily in distance order (hubsearch.Stream), remaining conjuncts
//     are answered by label probes per candidate, and the scan stops as
//     soon as the weighted driver distance alone exceeds the current
//     k-th best score.
//   - Boolean enumeration otherwise: the tree is materialized bottom-up
//     with cutoff-pushed Range scans at the leaves, galloping
//     intersections driven by the most selective conjunct, and probe
//     fallback for wide conjuncts; every match is then scored.
//
// Both plans yield the same match set up to the documented trim rule.
func Execute(b Backend, q *Query) (*ResultSet, error) {
	if err := q.Validate(b.NumVertices()); err != nil {
		return nil, err
	}
	e := &exec{b: b, q: q}
	defer e.release()
	if drv := e.streamDriver(); drv != nil {
		return e.executeStreamed(drv), nil
	}
	return e.executeBool(), nil
}

// exec carries one execution's state: the backend, the query, and the
// probers pinned so far (one label expansion per distinct source, reused
// across every candidate probe).
type exec struct {
	b       Backend
	q       *Query
	probers map[int32]Prober
	scanned int64 // label entries advanced across every hub-run scan
}

func (e *exec) prober(rs int32) Prober {
	if e.probers == nil {
		e.probers = make(map[int32]Prober)
	}
	p, ok := e.probers[rs]
	if !ok {
		p = e.b.NewProber(rs)
		e.probers[rs] = p
	}
	return p
}

func (e *exec) release() {
	for _, p := range e.probers {
		p.Release()
	}
}

func (e *exec) termWeight(src int32) (int64, bool) {
	for _, t := range e.q.Terms {
		if t.Source == src {
			return t.Weight, true
		}
	}
	return 0, false
}

// streamDriver picks the constraint whose neighborhood should stream
// lazily, or nil when the query must run in boolean mode. Streaming
// needs a top-k limit, a near-constraint as the cheapest positive root
// conjunct, and a positive ranking weight on its source — the weight is
// what ties the stream's distance order to a lower bound on the score.
func (e *exec) streamDriver() *Node {
	if e.q.K <= 0 {
		return nil
	}
	var drv *Node
	switch root := e.q.Root; root.Op {
	case OpNear:
		drv = root
	case OpAnd:
		best := unbounded
		for _, k := range root.Kids {
			if k.Op == OpNot {
				continue
			}
			if v := e.estimate(k); drv == nil || v < best {
				best, drv = v, k
			}
		}
		if drv == nil || drv.Op != OpNear {
			return nil
		}
	default:
		return nil
	}
	if w, ok := e.termWeight(drv.Source); !ok || w <= 0 {
		return nil
	}
	return drv
}

// executeStreamed runs the ranked plan: pull candidates off the driver
// stream in nondecreasing distance order, filter through the sibling
// conjuncts, score, and stop once the k-th best score cannot be beaten
// or tied by anything still in the stream.
func (e *exec) executeStreamed(drv *Node) *ResultSet {
	b := e.b
	wDrv, _ := e.termWeight(drv.Source)
	k := e.q.K
	var (
		matches []Match
		reach   scoreHeap // k smallest reachable scores so far
		stopped bool
	)
	consider := func(v int32, d int64) {
		if !e.passesSiblings(drv, v) {
			return
		}
		m := e.score(v, drv.Source, d)
		matches = append(matches, m)
		if m.Score >= 0 {
			reach.offer(m.Score, k)
		}
	}
	runs, s1, s0 := b.SourceRuns(drv.Source)
	sc := b.GetScratch()
	st := b.Inverted().NewStream(runs, drv.Source, s1, s0, drv.Cutoff, sc)
	consider(drv.Source, 0) // the stream excludes the source itself
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		if len(reach) >= k && wDrv*r.Dist > reach[0] {
			// Upper-bound pruning: every future candidate is at least
			// this far from the driver source, so it scores at least
			// wDrv*dist — strictly beyond the current k-th best, with no
			// possible tie. The trim rule stays exact; only Total
			// degrades to a lower bound.
			stopped = true
			break
		}
		consider(r.Rank, r.Dist)
	}
	st.Close()
	// The scan counters survive the reset inside Close; read them before
	// the scratch goes back to the pool.
	e.scanned += sc.Scanned
	b.PutScratch(sc)
	return e.finish(matches, !stopped)
}

// passesSiblings checks every root conjunct other than the driver.
func (e *exec) passesSiblings(drv *Node, v int32) bool {
	root := e.q.Root
	if root == drv {
		return true
	}
	for _, k := range root.Kids {
		if k == drv {
			continue
		}
		if k.Op == OpNot {
			if e.eval(k.Kids[0], v) {
				return false
			}
		} else if !e.eval(k, v) {
			return false
		}
	}
	return true
}

// executeBool runs the enumeration plan and scores every match.
func (e *exec) executeBool() *ResultSet {
	cands := e.enumerate(e.q.Root)
	matches := make([]Match, 0, len(cands))
	for _, v := range cands {
		matches = append(matches, e.score(v, -1, 0))
	}
	return e.finish(matches, true)
}

// enumFanout is how much larger a conjunct's estimate may be than the
// current candidate list before per-candidate probing beats enumerating
// and intersecting it: a probe costs one label scan, an enumeration
// costs the conjunct's whole scan mass.
const enumFanout = 8

// enumerate materializes a subtree's match set as a strictly ascending
// rank slice. The result never aliases query-owned memory.
func (e *exec) enumerate(nd *Node) []int32 {
	switch nd.Op {
	case OpNear:
		return e.enumerateNear(nd)
	case OpIn:
		return append([]int32(nil), nd.Members...)
	case OpOr:
		var acc []int32
		for _, k := range nd.Kids {
			acc = unionSorted(acc, e.enumerate(k))
		}
		return acc
	case OpAnd:
		// The cheapest positive conjunct drives; validation guarantees
		// one exists.
		var drv *Node
		best := unbounded
		for _, k := range nd.Kids {
			if k.Op == OpNot {
				continue
			}
			if v := e.estimate(k); drv == nil || v < best {
				best, drv = v, k
			}
		}
		cands := e.enumerate(drv)
		for _, k := range nd.Kids {
			if k == drv {
				continue
			}
			if len(cands) == 0 {
				break
			}
			switch {
			case k.Op == OpNot:
				cands = filterInPlace(cands, func(v int32) bool { return !e.eval(k.Kids[0], v) })
			case k.Op == OpIn:
				cands = gallopIntersect(cands, k.Members)
			case e.estimate(k) <= enumFanout*int64(len(cands)):
				cands = gallopIntersect(cands, e.enumerate(k))
			default:
				cands = filterInPlace(cands, func(v int32) bool { return e.eval(k, v) })
			}
		}
		return cands
	}
	return nil
}

// enumerateNear materializes one near-constraint via a cutoff-pushed
// Range scan, adding the source itself (d(s,s)=0, and cutoffs are
// non-negative, so the source always matches its own constraint).
func (e *exec) enumerateNear(nd *Node) []int32 {
	b := e.b
	runs, s1, s0 := b.SourceRuns(nd.Source)
	sc := b.GetScratch()
	res := b.Inverted().Range(runs, nd.Source, s1, s0, nd.Cutoff, sc)
	out := make([]int32, 0, len(res)+1)
	out = append(out, nd.Source)
	for _, r := range res {
		out = append(out, r.Rank)
	}
	e.scanned += sc.Scanned
	b.PutScratch(sc)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// eval answers one membership test by point probes — no enumeration.
func (e *exec) eval(nd *Node, v int32) bool {
	switch nd.Op {
	case OpNear:
		if v == nd.Source {
			return true
		}
		d := e.prober(nd.Source).Dist(v)
		return d >= 0 && d <= nd.Cutoff
	case OpIn:
		i := sort.Search(len(nd.Members), func(i int) bool { return nd.Members[i] >= v })
		return i < len(nd.Members) && nd.Members[i] == v
	case OpAnd:
		for _, k := range nd.Kids {
			if k.Op == OpNot {
				if e.eval(k.Kids[0], v) {
					return false
				}
			} else if !e.eval(k, v) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range nd.Kids {
			if e.eval(k, v) {
				return true
			}
		}
		return false
	case OpNot:
		return !e.eval(nd.Kids[0], v)
	}
	return false
}

// score computes v's ranking-term distances and combined score.
// knownSrc/knownDist short-circuit the term matching the driver stream
// (pass knownSrc -1 when there is none). An unreachable term makes the
// whole score -1; its raw distance stays -1 in Terms.
func (e *exec) score(v int32, knownSrc int32, knownDist int64) Match {
	m := Match{Rank: v}
	if len(e.q.Terms) == 0 {
		return m
	}
	m.Terms = make([]int64, len(e.q.Terms))
	for i, t := range e.q.Terms {
		var d int64
		switch {
		case t.Source == v:
			d = 0
		case t.Source == knownSrc:
			d = knownDist
		default:
			d = e.prober(t.Source).Dist(v)
		}
		m.Terms[i] = d
		if d < 0 {
			m.Score = -1
		} else if m.Score >= 0 {
			if w := t.Weight * d; e.q.Agg == AggMax {
				if w > m.Score {
					m.Score = w
				}
			} else {
				m.Score += w
			}
		}
	}
	return m
}

// finish sorts the match set, records totals and applies the K trim,
// keeping every tie at the k-th score for the caller's own tie-break.
func (e *exec) finish(matches []Match, exact bool) *ResultSet {
	sortMatches(matches)
	if len(matches) == 0 {
		matches = nil // empty and nil answers marshal identically
	}
	rs := &ResultSet{Total: len(matches), Exact: exact, Scanned: e.scanned}
	if k := e.q.K; k > 0 && len(matches) > k {
		end := k
		for end < len(matches) && matches[end].Score == matches[k-1].Score {
			end++
		}
		matches = matches[:end]
	}
	rs.Matches = matches
	return rs
}

// sortMatches orders by (reachability class, score, rank): every fully
// reachable match before any -1-scored one, then ascending score, then
// ascending rank.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if (a.Score < 0) != (b.Score < 0) {
			return b.Score < 0
		}
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.Rank < b.Rank
	})
}

// filterInPlace keeps the elements satisfying keep, reusing s's backing
// array (s must not alias query-owned memory).
func filterInPlace(s []int32, keep func(int32) bool) []int32 {
	out := s[:0]
	for _, v := range s {
		if keep(v) {
			out = append(out, v)
		}
	}
	return out
}

// unionSorted merges two strictly ascending slices. Inputs must not
// alias query-owned memory (one of them may be returned as-is).
func unionSorted(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// gallopIntersect intersects two strictly ascending slices into a fresh
// slice, walking the smaller one and galloping (exponential probe +
// binary search) through the larger — O(|small| · log |large|) when the
// sizes are lopsided, never worse than a linear merge.
func gallopIntersect(a, b []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]int32, 0, len(a))
	i := 0
	for _, v := range a {
		// Exponential probe for a window containing the first b >= v.
		step := 1
		j := i
		for j < len(b) && b[j] < v {
			i = j + 1
			j = i + step
			step <<= 1
		}
		end := j + 1
		if end > len(b) {
			end = len(b)
		}
		lo, hi := i, end
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if b[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		i = lo
		if i >= len(b) {
			break
		}
		if b[i] == v {
			out = append(out, v)
			i++
		}
	}
	return out
}

// scoreHeap is a size-capped max-heap holding the k smallest reachable
// scores seen so far; once full, its root is the pruning bound.
type scoreHeap []int64

func (h *scoreHeap) offer(s int64, k int) {
	if len(*h) < k {
		*h = append(*h, s)
		i := len(*h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if (*h)[p] >= (*h)[i] {
				break
			}
			(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
			i = p
		}
		return
	}
	if s >= (*h)[0] {
		return
	}
	(*h)[0] = s
	i := 0
	for {
		l := 2*i + 1
		if l >= len(*h) {
			return
		}
		m := l
		if r := l + 1; r < len(*h) && (*h)[r] > (*h)[l] {
			m = r
		}
		if (*h)[i] >= (*h)[m] {
			return
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
}
