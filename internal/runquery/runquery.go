// Package runquery is a streaming multi-constraint query engine over
// the hub-inverted label runs of internal/hubsearch. A query is a small
// boolean algebra over distance constraints —
//
//	near(s, d)   every vertex within distance d of source s
//	in(V)        membership in an explicit vertex set
//	and / or     intersection and union of subtrees
//	not          exclusion (only inside an and, next to a positive term)
//
// — plus a ranking expression (sum, max or weighted sum of distances to
// named sources) and an optional top-k limit. One request can therefore
// express "vertices within d₁ of A and d₂ of B, not within d₃ of C,
// ranked by combined distance, top k" without materializing any
// intermediate neighborhood.
//
// The engine works entirely in rank space (the construction order of
// the owning index); internal/core adapts each index variant through
// the Backend interface and maps ranks back to vertex IDs. Execution
// follows three ideas borrowed from clause-based datalog planners:
//
//   - Predicate pushdown: every leaf scan pushes its distance cutoff
//     into the inverted runs (hubsearch.Range / hubsearch.Stream), so a
//     leaf costs its cutoff-bounded scan mass, never O(n).
//   - Selectivity-ordered evaluation: a tiny planner estimates each
//     subtree's cardinality from run-prefix lengths (PrefixWithin) and
//     lets the smallest stream drive; the remaining conjuncts are
//     either gallop-intersected (when enumerably small) or answered by
//     pinned-label probes that cost one label scan per candidate.
//   - Top-k upper-bound pruning: when the driver constraint's source
//     participates in the ranking with positive weight, the driver
//     streams candidates in nondecreasing distance order and the scan
//     stops as soon as the weighted driver distance alone exceeds the
//     current k-th best score — the composition never looks at the far
//     tail of the neighborhood.
package runquery

import (
	"errors"
	"fmt"
	"math"

	"pll/internal/hubsearch"
)

// Op identifies a constraint-tree node kind.
type Op uint8

const (
	// OpNear matches vertices within Cutoff of Source.
	OpNear Op = iota
	// OpIn matches the explicit Members set.
	OpIn
	// OpAnd intersects its children; OpNot children act as exclusions.
	OpAnd
	// OpOr unions its children.
	OpOr
	// OpNot negates its single child; valid only directly under OpAnd.
	OpNot
)

// Node is one constraint-tree node in rank space.
type Node struct {
	Op      Op
	Source  int32   // OpNear: source rank
	Cutoff  int64   // OpNear: maximum distance, inclusive
	Members []int32 // OpIn: member ranks, strictly ascending
	Kids    []*Node // OpAnd/OpOr children; OpNot's single child
}

// Agg selects how ranked term distances combine into one score.
type Agg uint8

const (
	// AggSum scores by the weighted sum of term distances.
	AggSum Agg = iota
	// AggMax scores by the maximum weighted term distance.
	AggMax
)

// Term is one ranking term: the distance from Source scaled by Weight.
type Term struct {
	Source int32
	Weight int64
}

// Query is a full rank-space request: the constraint tree, the ranking
// expression and the result limit.
type Query struct {
	Root *Node
	Agg  Agg
	// Terms are the ranking terms; distinct sources only. Empty terms
	// score every match 0, ordering results by rank alone.
	Terms []Term
	// K trims the result to the k best scores, keeping ties at the
	// k-th score (the caller applies the final tie-break); 0 keeps all.
	K int
}

// Match is one query answer in rank space.
type Match struct {
	Rank  int32
	Score int64 // -1 when a ranked term is unreachable; sorts last
	Terms []int64
}

// MaxWeight caps ranking weights and MaxTerms caps the term count so a
// weighted sum of label distances (each under 2^33) stays well inside
// int64: 64 · 2^20 · 2^33 < 2^60.
const (
	MaxWeight = 1 << 20
	MaxTerms  = 64
)

// ResultSet is the engine's answer: matches sorted by (score, rank)
// with unreachable-scored matches last, ties at the k-th score kept.
type ResultSet struct {
	Matches []Match
	// Total counts the matches found before the K trim — exact when
	// Exact is set, a lower bound when top-k pruning stopped the scan.
	Total int
	Exact bool
	// Scanned counts the label entries advanced across every hub-run
	// scan of the execution, for per-query profiling.
	Scanned int64
}

// Backend adapts one index variant to the engine. All methods are in
// rank space and must be safe for concurrent use.
type Backend interface {
	// NumVertices returns the vertex count n; ranks are [0, n).
	NumVertices() int
	// Inverted returns the hub-inverted label index.
	Inverted() *hubsearch.Inverted
	// SourceRuns expands source rs into merge runs plus the source-side
	// bit-parallel masks (nil when the variant has none).
	SourceRuns(rs int32) (runs []hubsearch.Run, s1, s0 []uint64)
	// NewProber pins rs's label for repeated point probes. Callers
	// Release probers when done.
	NewProber(rs int32) Prober
	// GetScratch and PutScratch recycle merge workspaces.
	GetScratch() *hubsearch.Scratch
	PutScratch(sc *hubsearch.Scratch)
}

// Prober answers exact distance probes from one pinned source:
// Dist(rv) = d(source, rv), -1 when unreachable.
type Prober interface {
	Dist(rv int32) int64
	Release()
}

// Validate checks a query against an index of n vertices: tree shape
// (see the package comment for the not-placement rule), vertex ranges,
// member ordering, and ranking sanity. Execution assumes a validated
// query.
func (q *Query) Validate(n int) error {
	if q.Root == nil {
		return errors.New("runquery: empty constraint tree")
	}
	if q.K < 0 {
		return fmt.Errorf("runquery: negative k %d", q.K)
	}
	if err := validateNode(q.Root, n, false); err != nil {
		return err
	}
	if len(q.Terms) > MaxTerms {
		return fmt.Errorf("runquery: %d rank terms exceed the limit of %d", len(q.Terms), MaxTerms)
	}
	seen := make(map[int32]struct{}, len(q.Terms))
	for _, t := range q.Terms {
		if t.Source < 0 || int(t.Source) >= n {
			return fmt.Errorf("runquery: rank term source %d out of range [0,%d)", t.Source, n)
		}
		if t.Weight < 0 || t.Weight > MaxWeight {
			return fmt.Errorf("runquery: rank weight %d for source %d outside [0,%d]", t.Weight, t.Source, MaxWeight)
		}
		if _, dup := seen[t.Source]; dup {
			return fmt.Errorf("runquery: duplicate rank term for source %d", t.Source)
		}
		seen[t.Source] = struct{}{}
	}
	return nil
}

// validateNode checks one subtree. underAnd reports whether the parent
// is an OpAnd — the only place OpNot may appear: anywhere else a
// negation would make the subtree's match set unbounded (the complement
// of a neighborhood), which no cutoff-pushed scan can enumerate.
func validateNode(nd *Node, n int, underAnd bool) error {
	switch nd.Op {
	case OpNear:
		if nd.Source < 0 || int(nd.Source) >= n {
			return fmt.Errorf("runquery: near source %d out of range [0,%d)", nd.Source, n)
		}
		if nd.Cutoff < 0 {
			return fmt.Errorf("runquery: negative near cutoff %d", nd.Cutoff)
		}
	case OpIn:
		if len(nd.Members) == 0 {
			return errors.New("runquery: empty in-set")
		}
		prev := int32(-1)
		for _, m := range nd.Members {
			if m < 0 || int(m) >= n {
				return fmt.Errorf("runquery: in-set member %d out of range [0,%d)", m, n)
			}
			if m <= prev {
				return errors.New("runquery: in-set members must be strictly ascending")
			}
			prev = m
		}
	case OpAnd:
		positive := 0
		for _, k := range nd.Kids {
			if k.Op != OpNot {
				positive++
			}
			if err := validateNode(k, n, true); err != nil {
				return err
			}
		}
		if positive == 0 {
			return errors.New("runquery: and-clause needs at least one positive child")
		}
	case OpOr:
		if len(nd.Kids) == 0 {
			return errors.New("runquery: empty or-clause")
		}
		for _, k := range nd.Kids {
			if k.Op == OpNot {
				return errors.New("runquery: not-clause must sit directly under an and-clause")
			}
			if err := validateNode(k, n, false); err != nil {
				return err
			}
		}
	case OpNot:
		if !underAnd {
			return errors.New("runquery: not-clause must sit directly under an and-clause")
		}
		if len(nd.Kids) != 1 {
			return errors.New("runquery: not-clause needs exactly one child")
		}
		if nd.Kids[0].Op == OpNot {
			return errors.New("runquery: nested not-clauses are not supported")
		}
		return validateNode(nd.Kids[0], n, false)
	default:
		return fmt.Errorf("runquery: unknown node op %d", nd.Op)
	}
	return nil
}

// NearSources appends, in tree order without duplicates, every OpNear
// source in the tree — the default ranking terms when a request names
// none.
func (nd *Node) NearSources(dst []int32) []int32 {
	switch nd.Op {
	case OpNear:
		for _, s := range dst {
			if s == nd.Source {
				return dst
			}
		}
		return append(dst, nd.Source)
	case OpNot:
		return nd.Kids[0].NearSources(dst)
	default:
		for _, k := range nd.Kids {
			dst = k.NearSources(dst)
		}
		return dst
	}
}

// unbounded is the planner's "don't pick me" cardinality estimate.
const unbounded = int64(math.MaxInt64)

// estimate upper-bounds a subtree's match count without scanning:
// leaves from run-prefix lengths (duplicates included) or member
// counts, intersections by their cheapest positive child, unions by the
// sum of their children.
func (e *exec) estimate(nd *Node) int64 {
	switch nd.Op {
	case OpNear:
		runs, _, _ := e.b.SourceRuns(nd.Source)
		inv := e.b.Inverted()
		total := int64(1) // the source itself, absent from its own runs
		for _, r := range runs {
			total += inv.PrefixWithin(r.ID, nd.Cutoff-r.Base)
			if total < 0 {
				return unbounded // overflow on a pathological cutoff
			}
		}
		return total
	case OpIn:
		return int64(len(nd.Members))
	case OpAnd:
		best := unbounded
		for _, k := range nd.Kids {
			if k.Op == OpNot {
				continue
			}
			if v := e.estimate(k); v < best {
				best = v
			}
		}
		return best
	case OpOr:
		var sum int64
		for _, k := range nd.Kids {
			v := e.estimate(k)
			if sum += v; sum < 0 || v == unbounded {
				return unbounded
			}
		}
		return sum
	}
	return unbounded
}
