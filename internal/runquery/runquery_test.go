package runquery

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pll/internal/hubsearch"
)

// matrixBackend adapts an all-pairs distance matrix to the engine: the
// label family is the trivial complete cover (every vertex stores its
// distance to every reachable vertex), so merges and probes are exact
// by construction and the engine's answers can be checked against plain
// matrix arithmetic.
type matrixBackend struct {
	n    int
	dist [][]int64 // -1 = unreachable
	inv  *hubsearch.Inverted
	src  [][]hubsearch.Run
}

func newMatrixBackend(rng *rand.Rand, n int, p float64) *matrixBackend {
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				adj[u] = append(adj[u], int32(v))
				adj[v] = append(adj[v], int32(u))
			}
		}
	}
	dist := make([][]int64, n)
	for s := 0; s < n; s++ {
		d := make([]int64, n)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range adj[u] {
				if d[w] < 0 {
					d[w] = d[u] + 1
					queue = append(queue, w)
				}
			}
		}
		dist[s] = d
	}
	inv := hubsearch.Build(n, 0, nil, nil, func(add func(run, vertex int32, dist uint32)) {
		for v := 0; v < n; v++ {
			for h := 0; h < n; h++ {
				if dist[v][h] >= 0 {
					add(int32(h), int32(v), uint32(dist[v][h]))
				}
			}
		}
	})
	src := make([][]hubsearch.Run, n)
	for s := 0; s < n; s++ {
		for h := 0; h < n; h++ {
			if dist[s][h] >= 0 {
				src[s] = append(src[s], hubsearch.Run{ID: int32(h), Base: dist[s][h]})
			}
		}
	}
	return &matrixBackend{n: n, dist: dist, inv: inv, src: src}
}

func (b *matrixBackend) NumVertices() int               { return b.n }
func (b *matrixBackend) Inverted() *hubsearch.Inverted  { return b.inv }
func (b *matrixBackend) GetScratch() *hubsearch.Scratch { return hubsearch.NewScratch(b.n) }
func (b *matrixBackend) PutScratch(*hubsearch.Scratch)  {}

func (b *matrixBackend) SourceRuns(rs int32) ([]hubsearch.Run, []uint64, []uint64) {
	return b.src[rs], nil, nil
}

type matrixProber struct {
	row []int64
}

func (p matrixProber) Dist(rv int32) int64 { return p.row[rv] }
func (p matrixProber) Release()            {}

func (b *matrixBackend) NewProber(rs int32) Prober { return matrixProber{row: b.dist[rs]} }

// naiveExecute answers a query by scanning every vertex against the
// matrix — the reference the engine must match exactly.
func naiveExecute(b *matrixBackend, q *Query) *ResultSet {
	var matches []Match
	for v := 0; v < b.n; v++ {
		if !naiveEval(b, q.Root, int32(v)) {
			continue
		}
		m := Match{Rank: int32(v)}
		if len(q.Terms) > 0 {
			m.Terms = make([]int64, len(q.Terms))
		}
		for i, t := range q.Terms {
			d := b.dist[t.Source][v]
			m.Terms[i] = d
			if d < 0 {
				m.Score = -1
			} else if m.Score >= 0 {
				if w := t.Weight * d; q.Agg == AggMax {
					if w > m.Score {
						m.Score = w
					}
				} else {
					m.Score += w
				}
			}
		}
		matches = append(matches, m)
	}
	sortMatches(matches)
	rs := &ResultSet{Total: len(matches), Exact: true}
	if q.K > 0 && len(matches) > q.K {
		end := q.K
		for end < len(matches) && matches[end].Score == matches[q.K-1].Score {
			end++
		}
		matches = matches[:end]
	}
	rs.Matches = matches
	return rs
}

func naiveEval(b *matrixBackend, nd *Node, v int32) bool {
	switch nd.Op {
	case OpNear:
		d := b.dist[nd.Source][v]
		return d >= 0 && d <= nd.Cutoff
	case OpIn:
		for _, m := range nd.Members {
			if m == v {
				return true
			}
		}
		return false
	case OpAnd:
		for _, k := range nd.Kids {
			if !naiveEval(b, k, v) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range nd.Kids {
			if naiveEval(b, k, v) {
				return true
			}
		}
		return false
	case OpNot:
		return !naiveEval(b, nd.Kids[0], v)
	}
	return false
}

// randomTree builds a valid random constraint tree. underAnd permits an
// OpNot result.
func randomTree(rng *rand.Rand, n int, depth int, underAnd bool) *Node {
	if depth <= 0 || rng.Intn(3) == 0 {
		// Leaf.
		if rng.Intn(4) == 0 {
			k := 1 + rng.Intn(5)
			seen := map[int32]bool{}
			var members []int32
			for len(members) < k {
				m := int32(rng.Intn(n))
				if !seen[m] {
					seen[m] = true
					members = append(members, m)
				}
			}
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			return &Node{Op: OpIn, Members: members}
		}
		return &Node{Op: OpNear, Source: int32(rng.Intn(n)), Cutoff: int64(rng.Intn(7))}
	}
	switch rng.Intn(3) {
	case 0: // and, possibly with nots
		kids := []*Node{randomTree(rng, n, depth-1, false)} // guaranteed positive child
		for extra := rng.Intn(3); extra > 0; extra-- {
			if rng.Intn(3) == 0 {
				kids = append(kids, &Node{Op: OpNot, Kids: []*Node{randomTree(rng, n, depth-1, false)}})
			} else {
				kids = append(kids, randomTree(rng, n, depth-1, true))
			}
		}
		// A directly generated child can itself be OpNot only when we
		// asked for one; randomTree(underAnd=true) never returns OpNot,
		// so positivity holds via kids[0].
		return &Node{Op: OpAnd, Kids: kids}
	case 1:
		kids := []*Node{randomTree(rng, n, depth-1, false)}
		for extra := rng.Intn(3); extra > 0; extra-- {
			kids = append(kids, randomTree(rng, n, depth-1, false))
		}
		return &Node{Op: OpOr, Kids: kids}
	default:
		return randomTree(rng, n, depth-1, underAnd)
	}
}

func randomQuery(rng *rand.Rand, n int) *Query {
	q := &Query{Root: randomTree(rng, n, 3, false)}
	if rng.Intn(2) == 0 {
		q.Agg = AggMax
	}
	// Ranking terms: usually the tree's near sources, sometimes extras,
	// sometimes none.
	switch rng.Intn(4) {
	case 0: // none
	case 1:
		for _, s := range q.Root.NearSources(nil) {
			q.Terms = append(q.Terms, Term{Source: s, Weight: 1})
		}
	default:
		seen := map[int32]bool{}
		for _, s := range q.Root.NearSources(nil) {
			if !seen[s] {
				seen[s] = true
				q.Terms = append(q.Terms, Term{Source: s, Weight: int64(1 + rng.Intn(4))})
			}
		}
		for extra := rng.Intn(2); extra > 0; extra-- {
			s := int32(rng.Intn(n))
			if !seen[s] {
				seen[s] = true
				q.Terms = append(q.Terms, Term{Source: s, Weight: int64(rng.Intn(3))})
			}
		}
	}
	q.K = rng.Intn(8) // 0 = unbounded
	return q
}

// TestExecuteMatchesNaive is the core conformance property: on random
// graphs and random valid trees, the engine's matches must equal the
// full-scan reference exactly — same vertices, scores, term distances
// and order — and Total must be exact whenever the engine says so.
func TestExecuteMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		n int
		p float64
	}{{5, 0.5}, {18, 0.15}, {30, 0.08}, {30, 0.25}, {12, 0.02}} {
		b := newMatrixBackend(rng, tc.n, tc.p)
		for trial := 0; trial < 300; trial++ {
			q := randomQuery(rng, tc.n)
			got, err := Execute(b, q)
			if err != nil {
				t.Fatalf("n=%d trial %d: Execute failed on a valid query: %v", tc.n, trial, err)
			}
			want := naiveExecute(b, q)
			if !reflect.DeepEqual(got.Matches, want.Matches) {
				t.Fatalf("n=%d trial %d: matches diverge\nquery: %+v\ngot:  %+v\nwant: %+v",
					tc.n, trial, q, got.Matches, want.Matches)
			}
			if got.Exact && got.Total != want.Total {
				t.Fatalf("n=%d trial %d: exact Total = %d, want %d", tc.n, trial, got.Total, want.Total)
			}
			if !got.Exact && got.Total > want.Total {
				t.Fatalf("n=%d trial %d: lower-bound Total %d exceeds true %d", tc.n, trial, got.Total, want.Total)
			}
		}
	}
}

// TestStreamedPruningTriggers pins down that the ranked fast path both
// engages and actually stops early on a graph where k is much smaller
// than the neighborhood.
func TestStreamedPruningTriggers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := newMatrixBackend(rng, 60, 0.2)
	q := &Query{
		Root:  &Node{Op: OpNear, Source: 0, Cutoff: 50},
		Terms: []Term{{Source: 0, Weight: 1}},
		K:     3,
	}
	e := &exec{b: b, q: q}
	if e.streamDriver() == nil {
		t.Fatal("ranked fast path did not engage for a near-root top-k query")
	}
	got, err := Execute(b, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Exact {
		t.Fatal("expected top-k pruning to stop the scan early (Exact=false)")
	}
	want := naiveExecute(b, q)
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("pruned matches diverge: got %+v want %+v", got.Matches, want.Matches)
	}
}

func TestValidateRejects(t *testing.T) {
	near := func(s int32, c int64) *Node { return &Node{Op: OpNear, Source: s, Cutoff: c} }
	cases := []struct {
		name string
		q    *Query
	}{
		{"nil root", &Query{}},
		{"negative k", &Query{Root: near(0, 1), K: -1}},
		{"source out of range", &Query{Root: near(99, 1)}},
		{"negative cutoff", &Query{Root: near(0, -1)}},
		{"empty in-set", &Query{Root: &Node{Op: OpIn}}},
		{"unsorted in-set", &Query{Root: &Node{Op: OpIn, Members: []int32{3, 1}}}},
		{"duplicate in-set", &Query{Root: &Node{Op: OpIn, Members: []int32{1, 1}}}},
		{"member out of range", &Query{Root: &Node{Op: OpIn, Members: []int32{12}}}},
		{"empty or", &Query{Root: &Node{Op: OpOr}}},
		{"top-level not", &Query{Root: &Node{Op: OpNot, Kids: []*Node{near(0, 1)}}}},
		{"not under or", &Query{Root: &Node{Op: OpOr, Kids: []*Node{&Node{Op: OpNot, Kids: []*Node{near(0, 1)}}}}}},
		{"and without positive child", &Query{Root: &Node{Op: OpAnd, Kids: []*Node{&Node{Op: OpNot, Kids: []*Node{near(0, 1)}}}}}},
		{"nested not", &Query{Root: &Node{Op: OpAnd, Kids: []*Node{near(0, 1),
			&Node{Op: OpNot, Kids: []*Node{&Node{Op: OpNot, Kids: []*Node{near(1, 1)}}}}}}}},
		{"term out of range", &Query{Root: near(0, 1), Terms: []Term{{Source: 50, Weight: 1}}}},
		{"negative weight", &Query{Root: near(0, 1), Terms: []Term{{Source: 0, Weight: -1}}}},
		{"oversized weight", &Query{Root: near(0, 1), Terms: []Term{{Source: 0, Weight: MaxWeight + 1}}}},
		{"duplicate term", &Query{Root: near(0, 1), Terms: []Term{{Source: 0, Weight: 1}, {Source: 0, Weight: 2}}}},
	}
	for _, tc := range cases {
		if err := tc.q.Validate(10); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	ok := &Query{
		Root: &Node{Op: OpAnd, Kids: []*Node{
			near(0, 2),
			&Node{Op: OpOr, Kids: []*Node{near(1, 3), &Node{Op: OpIn, Members: []int32{2, 5}}}},
			&Node{Op: OpNot, Kids: []*Node{near(3, 1)}},
		}},
		Terms: []Term{{Source: 0, Weight: 1}, {Source: 1, Weight: 2}},
		K:     4,
	}
	if err := ok.Validate(10); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

func TestGallopIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		mk := func(max, count int) []int32 {
			seen := map[int32]bool{}
			var s []int32
			for i := 0; i < count; i++ {
				v := int32(rng.Intn(max))
				if !seen[v] {
					seen[v] = true
					s = append(s, v)
				}
			}
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			return s
		}
		a, b := mk(50, rng.Intn(20)), mk(50, rng.Intn(40))
		want := []int32{}
		for _, v := range a {
			for _, w := range b {
				if v == w {
					want = append(want, v)
				}
			}
		}
		got := gallopIntersect(a, b)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("gallopIntersect(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}
