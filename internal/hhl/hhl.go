// Package hhl is a clean-room stand-in for hierarchical hub labeling
// (Abraham, Delling, Goldberg, Werneck, ESA 2012), the strongest
// labeling-based competitor in the paper's Table 3.
//
// For a fixed vertex order, the canonical hierarchical hub labeling keeps
// (v, d(v,u)) in L(u) exactly when no higher-ranked vertex lies on any
// shortest v-u path — the same label set pruned landmark labeling
// produces (PLL is precisely a fast constructor of canonical labels).
// The defining difference is construction: HHL-style construction here
// derives the labels from full shortest-path information, i.e. a
// complete BFS from every vertex plus a label-containment check, which
// costs Θ(n·m) plus Θ(n · avg-label) query tests. That reproduces the
// comparison shape of Table 3 — essentially identical labels and query
// times, indexing orders of magnitude slower than PLL — without
// pretending to be the authors' exact binary (see DESIGN.md §3,
// "Baseline substitutions").
package hhl

import (
	"fmt"

	"pll/internal/bfs"
	"pll/internal/graph"
	"pll/internal/order"
)

// Unreachable is returned by Query for disconnected pairs.
const Unreachable = -1

// Index is a canonical hub labeling over a fixed vertex order.
type Index struct {
	n    int
	rank []int32

	off   []int64
	hubs  []int32 // hub ranks, ascending, sentinel n
	dists []uint8
}

// Build constructs canonical hub labels for the order perm[rank]=vertex
// by running a full (unpruned) BFS from every vertex in rank order and
// adding (v_k, d) to L(u) whenever the current labels cannot already
// certify d(v_k, u). Exact, deliberately Θ(nm).
func Build(g *graph.Graph, perm []int32) (*Index, error) {
	n := g.NumVertices()
	h, err := g.Relabel(perm)
	if err != nil {
		return nil, err
	}
	labH := make([][]int32, n)
	labD := make([][]uint8, n)
	// rootLab plays the same role as PLL's T array: distances from the
	// current root keyed by hub rank.
	rootLab := make([]uint8, n+1)
	for i := range rootLab {
		rootLab[i] = 255
	}
	for vk := int32(0); int(vk) < n; vk++ {
		lv, ld := labH[vk], labD[vk]
		for i, w := range lv {
			rootLab[w] = ld[i]
		}
		// Full BFS — no pruning of the search itself.
		dist := bfs.AllDistances(h, vk)
		for u := 0; u < n; u++ {
			d := dist[u]
			if d == bfs.Unreachable {
				continue
			}
			if d > 254 {
				return nil, fmt.Errorf("hhl: distance %d exceeds the 8-bit label budget", d)
			}
			// Containment check: can existing labels certify d(vk,u)?
			covered := false
			uv, ud := labH[u], labD[u]
			for i, w := range uv {
				if tw := rootLab[w]; tw != 255 && int(tw)+int(ud[i]) <= int(d) {
					covered = true
					break
				}
			}
			if !covered {
				labH[u] = append(labH[u], vk)
				labD[u] = append(labD[u], uint8(d))
			}
		}
		for _, w := range lv {
			rootLab[w] = 255
		}
	}

	ix := &Index{n: n, rank: order.RankOf(perm)}
	total := int64(0)
	for v := 0; v < n; v++ {
		total += int64(len(labH[v])) + 1
	}
	ix.off = make([]int64, n+1)
	ix.hubs = make([]int32, total)
	ix.dists = make([]uint8, total)
	w := int64(0)
	for v := 0; v < n; v++ {
		ix.off[v] = w
		copy(ix.hubs[w:], labH[v])
		copy(ix.dists[w:], labD[v])
		w += int64(len(labH[v]))
		ix.hubs[w] = int32(n)
		ix.dists[w] = 255
		w++
	}
	ix.off[n] = w
	return ix, nil
}

// Query returns the exact s-t distance via the merge join, or Unreachable.
func (ix *Index) Query(s, t int32) int {
	if s == t {
		return 0
	}
	rs, rt := ix.rank[s], ix.rank[t]
	best := 1 << 20
	i, j := ix.off[rs], ix.off[rt]
	for {
		vs, vt := ix.hubs[i], ix.hubs[j]
		switch {
		case vs == vt:
			if int(vs) == ix.n {
				if best >= 1<<20 {
					return Unreachable
				}
				return best
			}
			if d := int(ix.dists[i]) + int(ix.dists[j]); d < best {
				best = d
			}
			i++
			j++
		case vs < vt:
			i++
		default:
			j++
		}
	}
}

// AvgLabelSize returns the mean label size (sentinels excluded).
func (ix *Index) AvgLabelSize() float64 {
	if ix.n == 0 {
		return 0
	}
	return float64(ix.off[ix.n]-int64(ix.n)) / float64(ix.n)
}

// TotalLabelEntries returns the total number of label entries.
func (ix *Index) TotalLabelEntries() int64 { return ix.off[ix.n] - int64(ix.n) }
