package hhl

import (
	"testing"
	"testing/quick"

	"pll/internal/bfs"
	"pll/internal/core"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/order"
	"pll/internal/rng"
)

func randomGraph(seed uint64, maxN int) *graph.Graph {
	r := rng.New(seed)
	n := r.Intn(maxN) + 2
	m := r.Intn(3 * n)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: r.Int31n(int32(n)), V: r.Int31n(int32(n))})
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestHHLExactRandom(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 50)
		ix, err := Build(g, order.ByDegree(g, seed))
		if err != nil {
			return false
		}
		n := int32(g.NumVertices())
		r := rng.New(seed + 3)
		for i := 0; i < 25; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			want := bfs.Distance(g, s, u)
			got := ix.Query(s, u)
			if want == bfs.Unreachable {
				if got != Unreachable {
					return false
				}
			} else if got != int(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHHLLabelsMatchPLLCanonicalLabels(t *testing.T) {
	// For the same vertex order, pruned landmark labeling and this
	// unpruned canonical construction must produce identical label sets
	// (both compute the canonical hierarchical hub labeling).
	check := func(seed uint64) bool {
		g := randomGraph(seed, 40)
		perm := order.ByDegree(g, seed)
		hix, err := Build(g, perm)
		if err != nil {
			return false
		}
		pix, err := core.Build(g, core.Options{CustomOrder: perm})
		if err != nil {
			return false
		}
		if hix.TotalLabelEntries() != pix.ComputeStats().TotalLabelEntries {
			return false
		}
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			ph, pd := pix.Label(v)
			if len(ph) != labelSize(hix, v) {
				return false
			}
			// Distances must agree hub by hub (translate via Query).
			for i, hub := range ph {
				if hix.Query(v, hub) != int(pd[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func labelSize(ix *Index, v int32) int {
	r := ix.rank[v]
	return int(ix.off[r+1] - ix.off[r] - 1)
}

func TestHHLSelfAndDisconnected(t *testing.T) {
	g, err := graph.NewGraph(4, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, order.ByDegree(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Query(2, 2) != 0 {
		t.Fatal("self distance wrong")
	}
	if ix.Query(0, 3) != Unreachable {
		t.Fatal("disconnected distance wrong")
	}
}

func TestHHLRejectsHugeDiameter(t *testing.T) {
	g := gen.Path(400)
	if _, err := Build(g, order.ByDegree(g, 1)); err == nil {
		// Only fails if some BFS exceeds 254; with a path the first
		// degree-2 root is near-arbitrary, so force it with an endpoint
		// order.
		perm := make([]int32, 400)
		for i := range perm {
			perm[i] = int32(i)
		}
		if _, err := Build(g, perm); err == nil {
			t.Fatal("expected 8-bit budget error for 400-path from endpoint root")
		}
	}
}

func TestHHLAvgLabelSize(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 5)
	ix, err := Build(g, order.ByDegree(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ix.AvgLabelSize() <= 0 {
		t.Fatal("avg label size should be positive")
	}
	if ix.AvgLabelSize() > 50 {
		t.Fatalf("avg label %.1f implausibly large for a BA graph", ix.AvgLabelSize())
	}
}

func BenchmarkHHLConstruction(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 4, 1)
	perm := order.ByDegree(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, perm); err != nil {
			b.Fatal(err)
		}
	}
}
