package bfs

import (
	"testing"
	"testing/quick"

	"pll/internal/graph"
	"pll/internal/rng"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func path(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	return mustGraph(t, n, edges)
}

func randomGraph(seed uint64, maxN int) *graph.Graph {
	r := rng.New(seed)
	n := r.Intn(maxN) + 2
	m := r.Intn(3 * n)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: r.Int31n(int32(n)), V: r.Int31n(int32(n))})
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestAllDistancesOnPath(t *testing.T) {
	g := path(t, 10)
	dist := AllDistances(g, 0)
	for i, d := range dist {
		if d != int32(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, d, i)
		}
	}
}

func TestDistanceSelf(t *testing.T) {
	g := path(t, 3)
	if d := Distance(g, 1, 1); d != 0 {
		t.Fatalf("Distance(1,1) = %d, want 0", d)
	}
}

func TestDistanceDisconnected(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if d := Distance(g, 0, 3); d != Unreachable {
		t.Fatalf("Distance across components = %d, want Unreachable", d)
	}
	if d := BidirectionalDistance(g, 0, 3); d != Unreachable {
		t.Fatalf("BidirectionalDistance across components = %d, want Unreachable", d)
	}
}

func TestBidirectionalMatchesBFSRandom(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 50)
		n := int32(g.NumVertices())
		r := rng.New(seed ^ 0xabcdef)
		for i := 0; i < 20; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			if Distance(g, s, u) != BidirectionalDistance(g, s, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPathValidity(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 40)
		n := int32(g.NumVertices())
		r := rng.New(seed + 1)
		for i := 0; i < 10; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			d := Distance(g, s, u)
			p := Path(g, s, u)
			if d == Unreachable {
				if p != nil {
					return false
				}
				continue
			}
			if len(p) != int(d)+1 || p[0] != s || p[len(p)-1] != u {
				return false
			}
			for j := 1; j < len(p); j++ {
				if !g.HasEdge(p[j-1], p[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEccentricity(t *testing.T) {
	g := path(t, 5)
	if e := Eccentricity(g, 0); e != 4 {
		t.Fatalf("Eccentricity(0) = %d, want 4", e)
	}
	if e := Eccentricity(g, 2); e != 2 {
		t.Fatalf("Eccentricity(2) = %d, want 2", e)
	}
}

func TestDirectedDistances(t *testing.T) {
	g, err := graph.NewDigraph(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if d := DirectedDistance(g, 0, 2); d != 2 {
		t.Fatalf("0->2 = %d, want 2", d)
	}
	if d := DirectedDistance(g, 2, 0); d != Unreachable {
		t.Fatalf("2->0 = %d, want Unreachable", d)
	}
	back := DirectedAllDistances(g, 2, false)
	if back[0] != 2 || back[1] != 1 {
		t.Fatalf("reverse distances = %v", back)
	}
}

func TestDijkstraMatchesBFSOnUniformWeights(t *testing.T) {
	check := func(seed uint64) bool {
		g := randomGraph(seed, 40)
		wg := graph.UniformWeighted(g, 1)
		n := int32(g.NumVertices())
		r := rng.New(seed * 3)
		for i := 0; i < 10; i++ {
			s, u := r.Int31n(n), r.Int31n(n)
			bd := Distance(g, s, u)
			dd := DijkstraDistance(wg, s, u)
			if bd == Unreachable {
				if dd != InfWeight {
					return false
				}
			} else if dd != uint64(bd) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle where going around is cheaper than the direct edge.
	g, err := graph.NewWeighted(3, []graph.WeightedEdge{
		{U: 0, V: 1, Weight: 10},
		{U: 0, V: 2, Weight: 1},
		{U: 2, V: 1, Weight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := DijkstraDistance(g, 0, 1); d != 3 {
		t.Fatalf("Dijkstra(0,1) = %d, want 3", d)
	}
}

func TestDijkstraZeroWeightEdges(t *testing.T) {
	g, err := graph.NewWeighted(3, []graph.WeightedEdge{
		{U: 0, V: 1, Weight: 0},
		{U: 1, V: 2, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := DijkstraDistance(g, 0, 2); d != 5 {
		t.Fatalf("Dijkstra with zero-weight edge = %d, want 5", d)
	}
}

func BenchmarkBFSDistance(b *testing.B) {
	g := randomGraph(7, 5000)
	r := rng.New(1)
	n := int32(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(g, r.Int31n(n), r.Int31n(n))
	}
}

func BenchmarkBidirectionalDistance(b *testing.B) {
	g := randomGraph(7, 5000)
	r := rng.New(1)
	n := int32(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BidirectionalDistance(g, r.Int31n(n), r.Int31n(n))
	}
}
