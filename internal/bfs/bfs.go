// Package bfs provides the plain shortest-path primitives (breadth-first
// search, bidirectional BFS, Dijkstra) that the paper uses both as the
// online-query baseline (Table 3's "BFS" column) and as the ground truth
// that every index in this repository is tested against.
package bfs

import (
	"pll/internal/graph"
)

// Unreachable is the distance reported for disconnected pairs.
const Unreachable = -1

// AllDistances runs a BFS from s and returns the distance from s to every
// vertex (Unreachable for vertices in other components).
func AllDistances(g *graph.Graph, s int32) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	queue := make([]int32, 0, 1024)
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, u := range g.Neighbors(v) {
			if dist[u] == Unreachable {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Distance returns the s-t distance by a single BFS, or Unreachable.
func Distance(g *graph.Graph, s, t int32) int32 {
	if s == t {
		return 0
	}
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	queue := []int32{s}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, u := range g.Neighbors(v) {
			if dist[u] == Unreachable {
				if u == t {
					return dv + 1
				}
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return Unreachable
}

// BidirectionalDistance returns the s-t distance by alternating BFS
// frontiers from both endpoints, expanding the smaller frontier first.
// It is the fast online baseline for small-world graphs.
func BidirectionalDistance(g *graph.Graph, s, t int32) int32 {
	if s == t {
		return 0
	}
	n := g.NumVertices()
	distS := make([]int32, n)
	distT := make([]int32, n)
	for i := range distS {
		distS[i] = Unreachable
		distT[i] = Unreachable
	}
	distS[s] = 0
	distT[t] = 0
	frontS := []int32{s}
	frontT := []int32{t}
	total := int32(0)
	for len(frontS) > 0 && len(frontT) > 0 {
		// Expand the smaller frontier.
		if len(frontS) <= len(frontT) {
			next := frontS[:0:0]
			for _, v := range frontS {
				for _, u := range g.Neighbors(v) {
					if distT[u] != Unreachable {
						return distS[v] + 1 + distT[u]
					}
					if distS[u] == Unreachable {
						distS[u] = distS[v] + 1
						next = append(next, u)
					}
				}
			}
			frontS = next
		} else {
			next := frontT[:0:0]
			for _, v := range frontT {
				for _, u := range g.Neighbors(v) {
					if distS[u] != Unreachable {
						return distT[v] + 1 + distS[u]
					}
					if distT[u] == Unreachable {
						distT[u] = distT[v] + 1
						next = append(next, u)
					}
				}
			}
			frontT = next
		}
		total++
		if int(total) > n {
			break // defensive; cannot happen on a finite simple graph
		}
	}
	return Unreachable
}

// Path returns one shortest s-t path (inclusive of both endpoints) or nil
// if t is unreachable from s.
func Path(g *graph.Graph, s, t int32) []int32 {
	if s == t {
		return []int32{s}
	}
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[s] = -1
	queue := []int32{s}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.Neighbors(v) {
			if parent[u] == -2 {
				parent[u] = v
				if u == t {
					return buildPath(parent, t)
				}
				queue = append(queue, u)
			}
		}
	}
	return nil
}

func buildPath(parent []int32, t int32) []int32 {
	var rev []int32
	for v := t; v != -1; v = parent[v] {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Eccentricity returns the greatest finite distance from s (0 if s is
// isolated).
func Eccentricity(g *graph.Graph, s int32) int32 {
	var ecc int32
	for _, d := range AllDistances(g, s) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// DirectedAllDistances runs a BFS from s over out-arcs (forward=true) or
// in-arcs (forward=false) of a digraph.
func DirectedAllDistances(g *graph.Digraph, s int32, forward bool) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	queue := []int32{s}
	neighbors := g.OutNeighbors
	if !forward {
		neighbors = g.InNeighbors
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, u := range neighbors(v) {
			if dist[u] == Unreachable {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// DirectedDistance returns the s->t distance in a digraph.
func DirectedDistance(g *graph.Digraph, s, t int32) int32 {
	if s == t {
		return 0
	}
	dist := DirectedAllDistances(g, s, true)
	return dist[t]
}
