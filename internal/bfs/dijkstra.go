package bfs

import (
	"math"

	"pll/internal/graph"
)

// InfWeight is the weighted-distance value meaning "unreachable".
const InfWeight = uint64(math.MaxUint64)

// heap is a minimal binary min-heap of (vertex, distance) pairs keyed by
// distance. A lazy-deletion strategy is used: stale entries are skipped
// when popped, which keeps the implementation small and allocation-free
// across repeated pushes of the same vertex.
type heapItem struct {
	dist uint64
	v    int32
}

type minHeap []heapItem

func (h *minHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].dist <= (*h)[i].dist {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *minHeap) pop() heapItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h)[l].dist < (*h)[small].dist {
			small = l
		}
		if r < last && (*h)[r].dist < (*h)[small].dist {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// DijkstraAll returns the weighted distance from s to every vertex of g
// (InfWeight for unreachable vertices).
func DijkstraAll(g *graph.Weighted, s int32) []uint64 {
	n := g.NumVertices()
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = InfWeight
	}
	dist[s] = 0
	h := make(minHeap, 0, 1024)
	h.push(heapItem{0, s})
	for len(h) > 0 {
		it := h.pop()
		if it.dist != dist[it.v] {
			continue // stale
		}
		ws := g.Weights(it.v)
		for i, u := range g.Neighbors(it.v) {
			nd := it.dist + uint64(ws[i])
			if nd < dist[u] {
				dist[u] = nd
				h.push(heapItem{nd, u})
			}
		}
	}
	return dist
}

// DijkstraDistance returns the weighted s-t distance, or InfWeight.
func DijkstraDistance(g *graph.Weighted, s, t int32) uint64 {
	if s == t {
		return 0
	}
	return DijkstraAll(g, s)[t]
}
