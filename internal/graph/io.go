package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list in the SNAP text
// format used by the paper's datasets: one "u v" pair per line, lines
// beginning with '#' or '%' are comments, blank lines are ignored.
// Vertex IDs may be sparse; they are compacted to a dense [0, n) range in
// first-appearance order. It returns the dense edge list and the number
// of distinct vertices.
func ReadEdgeList(r io.Reader) ([]Edge, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	idOf := make(map[int64]int32)
	var edges []Edge
	dense := func(raw int64) int32 {
		if id, ok := idOf[raw]; ok {
			return id
		}
		id := int32(len(idOf))
		idOf[raw] = id
		return id
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[1], err)
		}
		edges = append(edges, Edge{U: dense(u), V: dense(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return edges, len(idOf), nil
}

// ReadWeightedEdgeList parses lines of the form "u v w" with the same
// comment conventions as ReadEdgeList.
func ReadWeightedEdgeList(r io.Reader) ([]WeightedEdge, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	idOf := make(map[int64]int32)
	var edges []WeightedEdge
	dense := func(raw int64) int32 {
		if id, ok := idOf[raw]; ok {
			return id
		}
		id := int32(len(idOf))
		idOf[raw] = id
		return id
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, 0, fmt.Errorf("graph: line %d: want 3 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[1], err)
		}
		w, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
		}
		edges = append(edges, WeightedEdge{U: dense(u), V: dense(v), Weight: uint32(w)})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return edges, len(idOf), nil
}

// WriteEdgeList writes g as a "u v" text edge list with a header comment,
// one line per undirected edge (U < V).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# undirected graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}

// LoadGraphFile reads an undirected graph from a text edge-list file.
func LoadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	edges, n, err := ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return NewGraph(n, edges)
}

// SaveGraphFile writes g to path as a text edge list.
func SaveGraphFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
