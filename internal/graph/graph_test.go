package graph

import (
	"testing"
	"testing/quick"

	"pll/internal/rng"
)

// pathGraph returns the path 0-1-2-...-(n-1).
func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{int32(i), int32(i + 1)})
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphBasic(t *testing.T) {
	g, err := NewGraph(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	for v := int32(0); v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
}

func TestNewGraphDropsSelfLoopsAndDuplicates(t *testing.T) {
	g, err := NewGraph(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (self-loops and duplicates removed)", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("Degree(2) = %d, want 0", g.Degree(2))
	}
}

func TestNewGraphRejectsOutOfRange(t *testing.T) {
	if _, err := NewGraph(2, []Edge{{0, 2}}); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
	if _, err := NewGraph(2, []Edge{{-1, 0}}); err == nil {
		t.Fatal("expected error for negative endpoint")
	}
	if _, err := NewGraph(-1, nil); err == nil {
		t.Fatal("expected error for negative n")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g, err := NewGraph(5, []Edge{{0, 4}, {0, 2}, {0, 1}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	adj := g.Neighbors(0)
	for i := 1; i < len(adj); i++ {
		if adj[i-1] >= adj[i] {
			t.Fatalf("adjacency not sorted: %v", adj)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := pathGraph(t, 5)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("HasEdge(1,2) should be true")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("HasEdge(0,2) should be false")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	orig := []Edge{{0, 1}, {1, 2}, {3, 4}, {0, 4}}
	g, err := NewGraph(5, orig)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Edges()
	if len(got) != len(orig) {
		t.Fatalf("Edges() returned %d edges, want %d", len(got), len(orig))
	}
	g2, err := NewGraph(5, got)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed edge count")
	}
	for v := int32(0); v < 5; v++ {
		if g.Degree(v) != g2.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestMaxDegree(t *testing.T) {
	g, err := NewGraph(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := pathGraph(t, 6)
	perm := []int32{5, 4, 3, 2, 1, 0} // reverse
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("relabel changed edge count")
	}
	// Old edge {0,1} becomes {5,4} under reversal.
	if !h.HasEdge(5, 4) {
		t.Fatal("expected relabeled edge {5,4}")
	}
	if h.HasEdge(0, 2) {
		t.Fatal("unexpected edge after relabel")
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := g.Relabel([]int32{0, 1}); err == nil {
		t.Fatal("expected error for short permutation")
	}
	if _, err := g.Relabel([]int32{0, 0, 1}); err == nil {
		t.Fatal("expected error for duplicate entries")
	}
	if _, err := g.Relabel([]int32{0, 1, 3}); err == nil {
		t.Fatal("expected error for out-of-range entry")
	}
}

func TestRelabelRandomizedInvariant(t *testing.T) {
	r := rng.New(99)
	check := func(seed uint64) bool {
		rr := rng.New(seed)
		n := rr.Intn(40) + 2
		m := rr.Intn(3 * n)
		edges := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, Edge{rr.Int31n(int32(n)), rr.Int31n(int32(n))})
		}
		g, err := NewGraph(n, edges)
		if err != nil {
			return false
		}
		perm := r.Perm(n)
		h, err := g.Relabel(perm)
		if err != nil {
			return false
		}
		if h.NumEdges() != g.NumEdges() {
			return false
		}
		// Every original edge must exist under the new names.
		inv := make([]int32, n)
		for newID, oldID := range perm {
			inv[oldID] = int32(newID)
		}
		for _, e := range g.Edges() {
			if !h.HasEdge(inv[e.U], inv[e.V]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph should have no vertices or edges")
	}
	if g.MaxDegree() != 0 {
		t.Fatal("empty graph MaxDegree should be 0")
	}
}

func TestSingleVertex(t *testing.T) {
	g, err := NewGraph(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 0 {
		t.Fatal("isolated vertex should have degree 0")
	}
}
