// Package graph provides the compressed sparse row (CSR) graph substrate
// used by every algorithm in this repository.
//
// Three concrete representations are provided:
//
//   - Graph: simple undirected, unweighted graphs (the paper's default
//     setting, §3.2);
//   - Digraph: directed, unweighted graphs (paper §6 "Directed Graphs");
//   - Weighted: undirected graphs with non-negative integer edge weights
//     (paper §6 "Weighted Graphs").
//
// All three store adjacency in flat arrays (offsets + targets), which is
// what makes the pruned breadth-first searches of the paper cache
// friendly. Vertices are identified by dense int32 IDs in [0, N).
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected or directed edge between two vertices, depending
// on the builder it is given to.
type Edge struct {
	U, V int32
}

// Graph is an immutable undirected, unweighted graph in CSR form.
// Parallel edges and self-loops are removed at construction time.
type Graph struct {
	offsets []int64 // len = n+1; adjacency of v is targets[offsets[v]:offsets[v+1]]
	targets []int32
}

// NewGraph builds an undirected graph with n vertices from the given edge
// list. Self-loops are dropped; parallel edges are collapsed. Each kept
// edge {u,v} appears in both adjacency lists. It returns an error if any
// endpoint is outside [0, n).
func NewGraph(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	targets := make([]int32, deg[n])
	pos := make([]int64, n)
	copy(pos, deg[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		targets[pos[e.U]] = e.V
		pos[e.U]++
		targets[pos[e.V]] = e.U
		pos[e.V]++
	}
	g := &Graph{offsets: deg, targets: targets}
	g.sortAndDedup()
	return g, nil
}

// sortAndDedup sorts every adjacency list and removes duplicates,
// compacting the CSR arrays in place.
func (g *Graph) sortAndDedup() {
	n := g.NumVertices()
	newOff := make([]int64, n+1)
	w := int64(0)
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		adj := g.targets[lo:hi]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		start := w
		var prev int32 = -1
		for _, t := range adj {
			if t != prev {
				g.targets[w] = t
				w++
				prev = t
			}
		}
		newOff[v] = start
	}
	newOff[n] = w
	g.offsets = newOff
	g.targets = g.targets[:w]
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.offsets[g.NumVertices()] / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u,v} is an edge, by binary search on the
// shorter adjacency list.
func (g *Graph) HasEdge(u, v int32) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Edges returns a copy of the edge list with U < V for every edge.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				edges = append(edges, Edge{U: v, V: u})
			}
		}
	}
	return edges
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(int32(v)); d > max {
			max = d
		}
	}
	return max
}

// Relabel returns a copy of g in which vertex perm[i] of the original
// graph becomes vertex i of the new graph. perm must be a permutation of
// [0, n): perm[newID] = oldID.
func (g *Graph) Relabel(perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), n)
	}
	inv := make([]int32, n) // oldID -> newID
	seen := make([]bool, n)
	for newID, oldID := range perm {
		if oldID < 0 || int(oldID) >= n || seen[oldID] {
			return nil, fmt.Errorf("graph: invalid permutation entry %d", oldID)
		}
		seen[oldID] = true
		inv[oldID] = int32(newID)
	}
	offsets := make([]int64, n+1)
	for newID := 0; newID < n; newID++ {
		offsets[newID+1] = offsets[newID] + int64(g.Degree(perm[newID]))
	}
	targets := make([]int32, offsets[n])
	for newID := 0; newID < n; newID++ {
		w := offsets[newID]
		for _, t := range g.Neighbors(perm[newID]) {
			targets[w] = inv[t]
			w++
		}
		adj := targets[offsets[newID]:offsets[newID+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	return &Graph{offsets: offsets, targets: targets}, nil
}
