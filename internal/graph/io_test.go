package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment line
% another comment

10 20
20 30
10 30
`
	edges, n, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("n = %d, want 3 (IDs compacted)", n)
	}
	if len(edges) != 3 {
		t.Fatalf("len(edges) = %d, want 3", len(edges))
	}
	// 10 -> 0, 20 -> 1, 30 -> 2 in first-appearance order.
	if edges[0] != (Edge{0, 1}) || edges[1] != (Edge{1, 2}) || edges[2] != (Edge{0, 2}) {
		t.Fatalf("unexpected dense edges %v", edges)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",                        // too few fields
		"a b\n",                      // non-numeric u
		"1 b\n",                      // non-numeric v
		"1 2\n3\n",                   // bad later line
		"9999999999999999999999 1\n", // overflow
	}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected parse error", in)
		}
	}
}

func TestReadWeightedEdgeList(t *testing.T) {
	in := "0 1 5\n1 2 7\n"
	edges, n, err := ReadWeightedEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(edges) != 2 {
		t.Fatalf("n=%d edges=%d", n, len(edges))
	}
	if edges[0].Weight != 5 || edges[1].Weight != 7 {
		t.Fatalf("weights %v", edges)
	}
}

func TestReadWeightedEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0 1\n", "0 1 x\n", "0 1 -3\n", "z 1 2\n", "0 z 2\n"} {
		if _, _, err := ReadWeightedEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected parse error", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g, err := NewGraph(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	edges, n, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: got %d/%d, want %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
}

func TestSaveLoadGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g, err := NewGraph(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("loaded %d edges, want 3", g2.NumEdges())
	}
}

func TestLoadGraphFileMissing(t *testing.T) {
	if _, err := LoadGraphFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadGraphFileMalformed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("not an edge list\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGraphFile(path); err == nil {
		t.Fatal("expected error for malformed file")
	}
}
