package graph

// ConnectedComponents labels every vertex with a component ID in
// [0, count) and returns the labels and the number of components.
// Component IDs are assigned in order of the smallest vertex they contain.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, 1024)
	for s := int32(0); int(s) < n; s++ {
		if labels[s] != -1 {
			continue
		}
		id := int32(count)
		count++
		labels[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if labels[u] == -1 {
					labels[u] = id
					queue = append(queue, u)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the vertices of the largest connected
// component of g, sorted ascending.
func LargestComponent(g *Graph) []int32 {
	labels, count := ConnectedComponents(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int64, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := int32(0)
	for i := int32(1); int(i) < count; i++ {
		if sizes[i] > sizes[best] {
			best = i
		}
	}
	out := make([]int32, 0, sizes[best])
	for v, l := range labels {
		if l == best {
			out = append(out, int32(v))
		}
	}
	return out
}

// InducedSubgraph returns the subgraph of g induced by the given vertex
// set (which must contain no duplicates), together with the mapping
// newID -> oldID. Vertices keep the relative order of the input slice.
func InducedSubgraph(g *Graph, vertices []int32) (*Graph, []int32, error) {
	inv := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		inv[v] = int32(i)
	}
	var edges []Edge
	for i, v := range vertices {
		for _, u := range g.Neighbors(v) {
			if j, ok := inv[u]; ok && int32(i) < j {
				edges = append(edges, Edge{U: int32(i), V: j})
			}
		}
	}
	sub, err := NewGraph(len(vertices), edges)
	if err != nil {
		return nil, nil, err
	}
	mapping := make([]int32, len(vertices))
	copy(mapping, vertices)
	return sub, mapping, nil
}

// IsConnected reports whether g is connected (vacuously true for n <= 1).
func IsConnected(g *Graph) bool {
	_, count := ConnectedComponents(g)
	return count <= 1
}
