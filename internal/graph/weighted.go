package graph

import (
	"fmt"
	"sort"
)

// WeightedEdge is an undirected edge with a non-negative integer weight.
type WeightedEdge struct {
	U, V   int32
	Weight uint32
}

// Weighted is an immutable undirected graph with non-negative integer
// edge weights, in CSR form. Parallel edges are collapsed keeping the
// minimum weight; self-loops are dropped.
type Weighted struct {
	offsets []int64
	targets []int32
	weights []uint32
}

// NewWeighted builds a weighted undirected graph with n vertices.
func NewWeighted(n int, edges []WeightedEdge) (*Weighted, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	off := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		off[e.U+1]++
		off[e.V+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	targets := make([]int32, off[n])
	weights := make([]uint32, off[n])
	pos := make([]int64, n)
	copy(pos, off[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		targets[pos[e.U]], weights[pos[e.U]] = e.V, e.Weight
		pos[e.U]++
		targets[pos[e.V]], weights[pos[e.V]] = e.U, e.Weight
		pos[e.V]++
	}
	g := &Weighted{offsets: off, targets: targets, weights: weights}
	g.sortAndDedupMin()
	return g, nil
}

type adjPair struct {
	to int32
	w  uint32
}

func (g *Weighted) sortAndDedupMin() {
	n := g.NumVertices()
	newOff := make([]int64, n+1)
	w := int64(0)
	scratch := make([]adjPair, 0, 64)
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		scratch = scratch[:0]
		for i := lo; i < hi; i++ {
			scratch = append(scratch, adjPair{g.targets[i], g.weights[i]})
		}
		sort.Slice(scratch, func(i, j int) bool {
			if scratch[i].to != scratch[j].to {
				return scratch[i].to < scratch[j].to
			}
			return scratch[i].w < scratch[j].w
		})
		start := w
		var prev int32 = -1
		for _, p := range scratch {
			if p.to != prev {
				g.targets[w], g.weights[w] = p.to, p.w
				w++
				prev = p.to
			}
		}
		newOff[v] = start
	}
	newOff[n] = w
	g.offsets = newOff
	g.targets = g.targets[:w]
	g.weights = g.weights[:w]
}

// NumVertices returns the number of vertices.
func (g *Weighted) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Weighted) NumEdges() int64 { return g.offsets[g.NumVertices()] / 2 }

// Degree returns the number of neighbors of v.
func (g *Weighted) Degree(v int32) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbors returns the sorted neighbor IDs of v; Weights returns the
// parallel weight slice. Both alias internal storage.
func (g *Weighted) Neighbors(v int32) []int32 { return g.targets[g.offsets[v]:g.offsets[v+1]] }

// Weights returns the weights parallel to Neighbors(v).
func (g *Weighted) Weights(v int32) []uint32 { return g.weights[g.offsets[v]:g.offsets[v+1]] }

// Relabel returns a copy of g with vertex perm[i] renamed to i
// (perm[newID] = oldID).
func (g *Weighted) Relabel(perm []int32) (*Weighted, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), n)
	}
	inv := make([]int32, n)
	seen := make([]bool, n)
	for newID, oldID := range perm {
		if oldID < 0 || int(oldID) >= n || seen[oldID] {
			return nil, fmt.Errorf("graph: invalid permutation entry %d", oldID)
		}
		seen[oldID] = true
		inv[oldID] = int32(newID)
	}
	edges := make([]WeightedEdge, 0, g.NumEdges())
	for v := int32(0); int(v) < n; v++ {
		ws := g.Weights(v)
		for i, u := range g.Neighbors(v) {
			if v < u {
				edges = append(edges, WeightedEdge{U: inv[v], V: inv[u], Weight: ws[i]})
			}
		}
	}
	return NewWeighted(n, edges)
}

// Unweighted returns the underlying unweighted undirected graph.
func (g *Weighted) Unweighted() *Graph {
	edges := make([]Edge, 0, g.NumEdges())
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				edges = append(edges, Edge{U: v, V: u})
			}
		}
	}
	und, err := NewGraph(g.NumVertices(), edges)
	if err != nil {
		panic(err) // edges validated at construction
	}
	return und
}

// UniformWeighted lifts an unweighted graph into a Weighted with every
// edge given weight w (useful for cross-checking the weighted oracle
// against the unweighted one).
func UniformWeighted(g *Graph, w uint32) *Weighted {
	edges := make([]WeightedEdge, 0, g.NumEdges())
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if v < u {
				edges = append(edges, WeightedEdge{U: v, V: u, Weight: w})
			}
		}
	}
	wg, err := NewWeighted(g.NumVertices(), edges)
	if err != nil {
		panic(err)
	}
	return wg
}
