package graph

import "testing"

func TestDigraphBasic(t *testing.T) {
	g, err := NewDigraph(3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumArcs() != 3 {
		t.Fatalf("got n=%d m=%d, want 3,3", g.NumVertices(), g.NumArcs())
	}
	if got := g.OutNeighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("OutNeighbors(0) = %v, want [1]", got)
	}
	if got := g.InNeighbors(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("InNeighbors(0) = %v, want [2]", got)
	}
	if g.OutDegree(0) != 1 || g.InDegree(0) != 1 {
		t.Fatal("degree mismatch")
	}
}

func TestDigraphAsymmetry(t *testing.T) {
	g, err := NewDigraph(2, []Edge{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(1) != 0 {
		t.Fatal("arc 0->1 should not create 1->0")
	}
	if g.InDegree(1) != 1 {
		t.Fatal("arc 0->1 should appear in in-adjacency of 1")
	}
}

func TestDigraphDropsLoopsAndDups(t *testing.T) {
	g, err := NewDigraph(2, []Edge{{0, 1}, {0, 1}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 1 {
		t.Fatalf("NumArcs = %d, want 1", g.NumArcs())
	}
}

func TestDigraphRejectsOutOfRange(t *testing.T) {
	if _, err := NewDigraph(1, []Edge{{0, 1}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestDigraphRelabel(t *testing.T) {
	g, err := NewDigraph(3, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.Relabel([]int32{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// old arc 0->1 becomes 2->1; old 1->2 becomes 1->0.
	if got := h.OutNeighbors(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("OutNeighbors(2) = %v, want [1]", got)
	}
	if got := h.OutNeighbors(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("OutNeighbors(1) = %v, want [0]", got)
	}
}

func TestDigraphUnderlying(t *testing.T) {
	g, err := NewDigraph(3, []Edge{{0, 1}, {1, 0}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	u := g.Underlying()
	if u.NumEdges() != 2 {
		t.Fatalf("underlying edges = %d, want 2", u.NumEdges())
	}
	if !u.HasEdge(0, 1) || !u.HasEdge(1, 2) {
		t.Fatal("underlying graph missing edges")
	}
}

func TestWeightedBasic(t *testing.T) {
	g, err := NewWeighted(3, []WeightedEdge{{0, 1, 5}, {1, 2, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	adj, ws := g.Neighbors(1), g.Weights(1)
	if len(adj) != 2 || len(ws) != 2 {
		t.Fatalf("vertex 1 adjacency %v weights %v", adj, ws)
	}
	for i, u := range adj {
		want := uint32(5)
		if u == 2 {
			want = 7
		}
		if ws[i] != want {
			t.Fatalf("weight to %d = %d, want %d", u, ws[i], want)
		}
	}
}

func TestWeightedKeepsMinWeightOnDup(t *testing.T) {
	g, err := NewWeighted(2, []WeightedEdge{{0, 1, 9}, {0, 1, 3}, {1, 0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w := g.Weights(0)[0]; w != 3 {
		t.Fatalf("kept weight %d, want min 3", w)
	}
}

func TestWeightedRelabelAndUnweighted(t *testing.T) {
	g, err := NewWeighted(3, []WeightedEdge{{0, 1, 2}, {1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.Relabel([]int32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Fatal("relabel changed edge count")
	}
	u := g.Unweighted()
	if u.NumEdges() != 2 || !u.HasEdge(0, 1) {
		t.Fatal("Unweighted lost structure")
	}
}

func TestUniformWeighted(t *testing.T) {
	base, err := NewGraph(3, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	wg := UniformWeighted(base, 10)
	if wg.NumEdges() != 2 {
		t.Fatal("edge count changed")
	}
	for v := int32(0); v < 3; v++ {
		for _, w := range wg.Weights(v) {
			if w != 10 {
				t.Fatalf("weight %d, want 10", w)
			}
		}
	}
}
