package graph

import "testing"

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4}; vertex 5 isolated.
	g, err := NewGraph(6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Fatal("3,4 should share a component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("5 should be isolated")
	}
}

func TestLargestComponent(t *testing.T) {
	g, err := NewGraph(6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	lc := LargestComponent(g)
	if len(lc) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(lc))
	}
	if lc[0] != 0 || lc[1] != 1 || lc[2] != 2 {
		t.Fatalf("largest component = %v, want [0 1 2]", lc)
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	g, err := NewGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lc := LargestComponent(g); lc != nil {
		t.Fatalf("expected nil for empty graph, got %v", lc)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, err := NewGraph(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	sub, mapping, err := InducedSubgraph(g, []int32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("induced subgraph: n=%d m=%d, want 3,2", sub.NumVertices(), sub.NumEdges())
	}
	if mapping[0] != 0 || mapping[1] != 1 || mapping[2] != 2 {
		t.Fatalf("mapping = %v", mapping)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatal("wrong induced edges")
	}
}

func TestIsConnected(t *testing.T) {
	conn, err := NewGraph(3, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(conn) {
		t.Fatal("path should be connected")
	}
	disc, err := NewGraph(3, []Edge{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if IsConnected(disc) {
		t.Fatal("graph with isolated vertex should be disconnected")
	}
	empty, err := NewGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(empty) {
		t.Fatal("empty graph is vacuously connected")
	}
}
