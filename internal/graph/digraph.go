package graph

import (
	"fmt"
	"sort"
)

// Digraph is an immutable directed, unweighted graph in CSR form, with
// both out-adjacency and in-adjacency stored so that forward and reverse
// breadth-first searches are equally cheap (the directed variant of the
// paper, §6, runs a pruned BFS in each direction from every vertex).
type Digraph struct {
	outOff []int64
	outTo  []int32
	inOff  []int64
	inTo   []int32
}

// NewDigraph builds a directed graph with n vertices. Each Edge{U,V} is
// the arc U -> V. Self-loops are dropped and parallel arcs collapsed.
func NewDigraph(n int, edges []Edge) (*Digraph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: arc (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	outOff, outTo := buildCSR(n, edges, false)
	inOff, inTo := buildCSR(n, edges, true)
	return &Digraph{outOff: outOff, outTo: outTo, inOff: inOff, inTo: inTo}, nil
}

// buildCSR builds one direction of adjacency; reverse swaps arc ends.
func buildCSR(n int, edges []Edge, reverse bool) ([]int64, []int32) {
	off := make([]int64, n+1)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		src := e.U
		if reverse {
			src = e.V
		}
		off[src+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	to := make([]int32, off[n])
	pos := make([]int64, n)
	copy(pos, off[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		src, dst := e.U, e.V
		if reverse {
			src, dst = dst, src
		}
		to[pos[src]] = dst
		pos[src]++
	}
	// Sort and dedup each list, compacting.
	newOff := make([]int64, n+1)
	w := int64(0)
	for v := 0; v < n; v++ {
		adj := to[off[v]:off[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		start := w
		var prev int32 = -1
		for _, t := range adj {
			if t != prev {
				to[w] = t
				w++
				prev = t
			}
		}
		newOff[v] = start
	}
	newOff[n] = w
	return newOff, to[:w]
}

// NumVertices returns the number of vertices.
func (g *Digraph) NumVertices() int { return len(g.outOff) - 1 }

// NumArcs returns the number of directed arcs.
func (g *Digraph) NumArcs() int64 { return g.outOff[g.NumVertices()] }

// OutNeighbors returns the sorted successors of v (aliases internal storage).
func (g *Digraph) OutNeighbors(v int32) []int32 { return g.outTo[g.outOff[v]:g.outOff[v+1]] }

// InNeighbors returns the sorted predecessors of v (aliases internal storage).
func (g *Digraph) InNeighbors(v int32) []int32 { return g.inTo[g.inOff[v]:g.inOff[v+1]] }

// OutDegree returns the number of successors of v.
func (g *Digraph) OutDegree(v int32) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the number of predecessors of v.
func (g *Digraph) InDegree(v int32) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Relabel returns a copy of g with vertex perm[i] renamed to i
// (perm[newID] = oldID).
func (g *Digraph) Relabel(perm []int32) (*Digraph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), n)
	}
	inv := make([]int32, n)
	seen := make([]bool, n)
	for newID, oldID := range perm {
		if oldID < 0 || int(oldID) >= n || seen[oldID] {
			return nil, fmt.Errorf("graph: invalid permutation entry %d", oldID)
		}
		seen[oldID] = true
		inv[oldID] = int32(newID)
	}
	edges := make([]Edge, 0, g.NumArcs())
	for v := int32(0); int(v) < n; v++ {
		for _, u := range g.OutNeighbors(v) {
			edges = append(edges, Edge{U: inv[v], V: inv[u]})
		}
	}
	return NewDigraph(n, edges)
}

// Underlying returns the undirected graph obtained by forgetting arc
// directions (used for ordering heuristics on directed inputs).
func (g *Digraph) Underlying() *Graph {
	edges := make([]Edge, 0, g.NumArcs())
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(v) {
			edges = append(edges, Edge{U: v, V: u})
		}
	}
	und, err := NewGraph(g.NumVertices(), edges)
	if err != nil {
		// Cannot happen: arcs were validated at construction.
		panic(err)
	}
	return und
}
