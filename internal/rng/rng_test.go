package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 64, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Uint64n(0)")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, size uint16) bool {
		n := int(size%500) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformityCoarse(t *testing.T) {
	// Position of element 0 across many 4-permutations should be roughly
	// uniform over the 4 slots.
	counts := [4]int{}
	r := New(123)
	const trials = 40000
	for i := 0; i < trials; i++ {
		p := r.Perm(4)
		for pos, v := range p {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		frac := float64(c) / trials
		if frac < 0.22 || frac > 0.28 {
			t.Fatalf("slot %d frequency %v, want ~0.25", pos, frac)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(3); v < 0 || v > 2 {
			t.Fatalf("Intn(3) = %d", v)
		}
	}
}

func TestInt31n(t *testing.T) {
	r := New(6)
	seen := map[int32]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Int31n(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Int31n(5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Int31n(5) only produced %d distinct values", len(seen))
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64n(1000003)
	}
	_ = sink
}
