package stats

import (
	"math"
	"testing"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
)

func TestDegreeCCDFStar(t *testing.T) {
	g := gen.Star(11) // center degree 10, ten leaves degree 1
	degrees, counts := DegreeCCDF(g)
	if len(degrees) != 2 {
		t.Fatalf("distinct degrees = %v", degrees)
	}
	if degrees[0] != 1 || counts[0] != 11 {
		t.Fatalf("CCDF at degree 1 = %d, want 11", counts[0])
	}
	if degrees[1] != 10 || counts[1] != 1 {
		t.Fatalf("CCDF at degree 10 = %d, want 1", counts[1])
	}
}

func TestDegreeCCDFMonotone(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 7)
	degrees, counts := DegreeCCDF(g)
	for i := 1; i < len(counts); i++ {
		if degrees[i-1] >= degrees[i] {
			t.Fatal("degrees not ascending")
		}
		if counts[i-1] < counts[i] {
			t.Fatal("CCDF not non-increasing")
		}
	}
	if counts[0] != 500 {
		t.Fatalf("CCDF at min degree = %d, want n", counts[0])
	}
}

func TestDegreeCCDFEmpty(t *testing.T) {
	g, err := graph.NewGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d, c := DegreeCCDF(g); d != nil || c != nil {
		t.Fatal("empty graph should return nil series")
	}
}

func TestDistanceDistributionSumsToOne(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 3)
	frac, unreach := DistanceDistribution(g, 5000, 1)
	sum := unreach
	for _, f := range frac {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v, want 1", sum)
	}
	if unreach != 0 {
		t.Fatalf("BA graph is connected; unreachable frac %v", unreach)
	}
	// Small world: almost all mass within distance 8.
	mass := 0.0
	for d := 0; d < len(frac) && d <= 8; d++ {
		mass += frac[d]
	}
	if mass < 0.95 {
		t.Fatalf("distance mass within 8 hops = %v, want small-world", mass)
	}
}

func TestDistanceDistributionDisconnected(t *testing.T) {
	g, err := graph.NewGraph(10, []graph.Edge{{U: 0, V: 1}}) // mostly isolated
	if err != nil {
		t.Fatal(err)
	}
	_, unreach := DistanceDistribution(g, 2000, 2)
	if unreach < 0.5 {
		t.Fatalf("unreachable fraction %v too low for a shattered graph", unreach)
	}
}

func TestSamplePairsTruth(t *testing.T) {
	g := gen.Path(30)
	ps := SamplePairs(g, 500, 3)
	if len(ps.S) != 500 || len(ps.T) != 500 || len(ps.Truth) != 500 {
		t.Fatal("sample size wrong")
	}
	for i := range ps.S {
		want := bfs.Distance(g, ps.S[i], ps.T[i])
		if ps.Truth[i] != want {
			t.Fatalf("truth[%d] = %d, want %d", i, ps.Truth[i], want)
		}
	}
}

func TestCoveragePerfectOracle(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 5)
	ps := SamplePairs(g, 1000, 7)
	exact := QuerierFunc(func(s, t int32) int { return int(bfs.Distance(g, s, t)) })
	if c := Coverage(ps, exact); c != 1 {
		t.Fatalf("perfect oracle coverage = %v, want 1", c)
	}
	wrong := QuerierFunc(func(s, t int32) int { return 1 << 20 })
	if c := Coverage(ps, wrong); c >= 0.05 {
		t.Fatalf("broken oracle coverage = %v, want ~0", c)
	}
}

func TestCoverageByDistance(t *testing.T) {
	g := gen.Path(20)
	ps := SamplePairs(g, 2000, 9)
	// An oracle that is right only for distances <= 2.
	q := QuerierFunc(func(s, t int32) int {
		d := int(bfs.Distance(g, s, t))
		if d <= 2 {
			return d
		}
		return d + 1
	})
	cov := CoverageByDistance(ps, q)
	for d, c := range cov {
		if d <= 2 && c != 1 {
			t.Fatalf("coverage at distance %d = %v, want 1", d, c)
		}
		if d > 2 && c != 0 {
			t.Fatalf("coverage at distance %d = %v, want 0", d, c)
		}
	}
}

func TestCumulativeFractions(t *testing.T) {
	out := CumulativeFractions([]int64{2, 2, 4, 2})
	want := []float64{0.2, 0.4, 0.8, 1.0}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("cum[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if got := CumulativeFractions(nil); len(got) != 0 {
		t.Fatal("nil input should give empty output")
	}
	zero := CumulativeFractions([]int64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("all-zero counts should give zero fractions")
	}
}

func TestLogSpacedIndexes(t *testing.T) {
	idx := LogSpacedIndexes(100)
	if idx[0] != 1 {
		t.Fatal("should start at 1")
	}
	for i := 1; i < len(idx); i++ {
		if idx[i-1] >= idx[i] {
			t.Fatalf("not strictly increasing: %v", idx)
		}
	}
	if idx[len(idx)-1] != 99 {
		t.Fatalf("should end at limit-1, got %v", idx)
	}
}
