// Package stats provides the measurement machinery behind the paper's
// Figures 2–4: degree distributions, sampled distance distributions,
// label-size distributions and pair-coverage curves.
package stats

import (
	"pll/internal/bfs"
	"pll/internal/graph"
	"pll/internal/rng"
)

// DegreeCCDF returns the complementary cumulative degree distribution:
// points (d, count of vertices with degree >= d) for every degree d that
// occurs in g, ascending in d (Figure 2a/2b's log-log series).
func DegreeCCDF(g *graph.Graph) (degrees []int, counts []int64) {
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	maxDeg := g.MaxDegree()
	hist := make([]int64, maxDeg+1)
	for v := 0; v < n; v++ {
		hist[g.Degree(int32(v))]++
	}
	// Suffix sums give the CCDF.
	suffix := int64(0)
	ccdf := make([]int64, maxDeg+1)
	for d := maxDeg; d >= 0; d-- {
		suffix += hist[d]
		ccdf[d] = suffix
	}
	for d := 0; d <= maxDeg; d++ {
		if hist[d] > 0 {
			degrees = append(degrees, d)
			counts = append(counts, ccdf[d])
		}
	}
	return degrees, counts
}

// DistanceDistribution samples pairs of vertices uniformly and returns
// the fraction of pairs at each distance (Figure 2c/2d). Disconnected
// pairs are counted in unreachableFrac. The sampling runs one BFS per
// distinct source, so sources are drawn with replacement but reused.
func DistanceDistribution(g *graph.Graph, pairs int, seed uint64) (frac []float64, unreachableFrac float64) {
	n := g.NumVertices()
	if n == 0 || pairs == 0 {
		return nil, 0
	}
	r := rng.New(seed)
	// Group samples by source so each BFS serves many pairs.
	const perSource = 64
	counts := make(map[int]int64)
	unreachable := int64(0)
	done := 0
	for done < pairs {
		s := r.Int31n(int32(n))
		dist := bfs.AllDistances(g, s)
		batch := perSource
		if pairs-done < batch {
			batch = pairs - done
		}
		for i := 0; i < batch; i++ {
			t := r.Int31n(int32(n))
			if d := dist[t]; d == bfs.Unreachable {
				unreachable++
			} else {
				counts[int(d)]++
			}
		}
		done += batch
	}
	maxD := 0
	for d := range counts {
		if d > maxD {
			maxD = d
		}
	}
	frac = make([]float64, maxD+1)
	for d, c := range counts {
		frac[d] = float64(c) / float64(pairs)
	}
	unreachableFrac = float64(unreachable) / float64(pairs)
	return frac, unreachableFrac
}

// DistanceQuerier is anything that answers exact or estimated distances
// (PLL indexes, landmark prefixes, ...).
type DistanceQuerier interface {
	Query(s, t int32) int
}

// QuerierFunc adapts a function to DistanceQuerier.
type QuerierFunc func(s, t int32) int

// Query calls f.
func (f QuerierFunc) Query(s, t int32) int { return f(s, t) }

// PairSample is a fixed set of query pairs with precomputed ground-truth
// distances, reused across coverage sweeps so curves are comparable.
type PairSample struct {
	S, T  []int32
	Truth []int32 // bfs.Unreachable for disconnected pairs
}

// SamplePairs draws `pairs` uniform vertex pairs and computes their true
// distances, batching BFSs by source.
func SamplePairs(g *graph.Graph, pairs int, seed uint64) *PairSample {
	n := g.NumVertices()
	ps := &PairSample{
		S:     make([]int32, 0, pairs),
		T:     make([]int32, 0, pairs),
		Truth: make([]int32, 0, pairs),
	}
	if n == 0 {
		return ps
	}
	r := rng.New(seed)
	const perSource = 64
	for len(ps.S) < pairs {
		s := r.Int31n(int32(n))
		dist := bfs.AllDistances(g, s)
		batch := perSource
		if pairs-len(ps.S) < batch {
			batch = pairs - len(ps.S)
		}
		for i := 0; i < batch; i++ {
			t := r.Int31n(int32(n))
			ps.S = append(ps.S, s)
			ps.T = append(ps.T, t)
			ps.Truth = append(ps.Truth, dist[t])
		}
	}
	return ps
}

// Coverage returns the fraction of the sample's connected pairs answered
// exactly by q (Figure 4a's y-axis).
func Coverage(ps *PairSample, q DistanceQuerier) float64 {
	connected, exact := 0, 0
	for i := range ps.S {
		if ps.Truth[i] == bfs.Unreachable {
			continue
		}
		connected++
		if q.Query(ps.S[i], ps.T[i]) == int(ps.Truth[i]) {
			exact++
		}
	}
	if connected == 0 {
		return 1
	}
	return float64(exact) / float64(connected)
}

// CoverageByDistance returns, for each true distance d present in the
// sample, the fraction of distance-d pairs answered exactly (Figure
// 4b–4d's per-distance curves). The map keys are distances.
func CoverageByDistance(ps *PairSample, q DistanceQuerier) map[int]float64 {
	total := map[int]int{}
	exact := map[int]int{}
	for i := range ps.S {
		if ps.Truth[i] == bfs.Unreachable {
			continue
		}
		d := int(ps.Truth[i])
		total[d]++
		if q.Query(ps.S[i], ps.T[i]) == d {
			exact[d]++
		}
	}
	out := make(map[int]float64, len(total))
	for d, c := range total {
		out[d] = float64(exact[d]) / float64(c)
	}
	return out
}

// CumulativeFractions turns per-step counts into a cumulative fraction
// series (Figure 3b): out[i] = sum(counts[0..i]) / sum(counts).
func CumulativeFractions(counts []int64) []float64 {
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	run := int64(0)
	for i, c := range counts {
		run += c
		out[i] = float64(run) / float64(total)
	}
	return out
}

// LogSpacedIndexes returns deduplicated indexes 1, 2, 4, ..., capped at
// limit-1, used to thin log-x plots (Figures 3 and 4 sample the x axis
// logarithmically).
func LogSpacedIndexes(limit int) []int {
	var out []int
	prev := -1
	for x := 1; x < limit; x *= 2 {
		if x != prev {
			out = append(out, x)
			prev = x
		}
	}
	if limit > 0 && (len(out) == 0 || out[len(out)-1] != limit-1) {
		out = append(out, limit-1)
	}
	return out
}
