package hubsearch

import (
	"reflect"
	"sort"
	"testing"
)

// buildToy inverts a tiny hand-written label family over 5 vertices:
// L(v) lists (hub, dist) pairs forming a valid 2-hop cover of the path
// graph 0-1-2-3-4 under the identity order (hub 0 = vertex 0, etc.).
func buildToy() (*Inverted, [][]Run) {
	labels := [][]struct {
		h int32
		d uint32
	}{
		{{0, 0}},                                 // L(0)
		{{0, 1}, {1, 0}},                         // L(1)
		{{0, 2}, {1, 1}, {2, 0}},                 // L(2)
		{{0, 3}, {1, 2}, {2, 1}, {3, 0}},         // L(3)
		{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}, // L(4)
	}
	inv := Build(5, 0, nil, nil, func(add func(run, vertex int32, dist uint32)) {
		for v, lab := range labels {
			for _, e := range lab {
				add(e.h, int32(v), e.d)
			}
		}
	})
	src := make([][]Run, len(labels))
	for v, lab := range labels {
		for _, e := range lab {
			src[v] = append(src[v], Run{ID: e.h, Base: int64(e.d)})
		}
	}
	return inv, src
}

func TestBuildLayout(t *testing.T) {
	inv, _ := buildToy()
	if err := inv.Validate(true); err != nil {
		t.Fatalf("built index fails validation: %v", err)
	}
	if inv.Entries() != 15 {
		t.Fatalf("entries = %d, want 15", inv.Entries())
	}
	// Run 0 holds every vertex, sorted by distance then vertex.
	run0v := inv.Vertex[inv.Off[0]:inv.Off[1]]
	run0d := inv.Dist[inv.Off[0]:inv.Off[1]]
	if !reflect.DeepEqual(run0v, []int32{0, 1, 2, 3, 4}) ||
		!reflect.DeepEqual(run0d, []uint32{0, 1, 2, 3, 4}) {
		t.Fatalf("run 0 = %v / %v", run0v, run0d)
	}
	// Run sizes follow the path-graph cover: hub 0 carries everything,
	// each later hub one fewer vertex.
	for h, want := range []int64{5, 4, 3, 2, 1} {
		if sz := inv.Off[h+1] - inv.Off[h]; sz != want {
			t.Fatalf("run %d holds %d entries, want %d", h, sz, want)
		}
	}
}

func TestKNNAndRangeToy(t *testing.T) {
	inv, src := buildToy()
	sc := NewScratch(5)
	// From vertex 2 on the path 0-1-2-3-4 the exact distances are
	// {0:2, 1:1, 3:1, 4:2}.
	res := inv.KNN(src[2], 2, nil, nil, 2, sc)
	sort.Slice(res, func(i, j int) bool {
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].Rank < res[j].Rank
	})
	want := []Result{{Rank: 1, Dist: 1}, {Rank: 3, Dist: 1}}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("KNN(2, 2) = %v, want %v", res, want)
	}
	res = inv.Range(src[2], 2, nil, nil, 1, sc)
	sort.Slice(res, func(i, j int) bool { return res[i].Rank < res[j].Rank })
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("Range(2, 1) = %v, want %v", res, want)
	}
	if got := inv.KNN(src[0], 0, nil, nil, 10, sc); len(got) != 4 {
		t.Fatalf("KNN(0, 10) returned %d results, want 4", len(got))
	}
	if got := inv.KNN(src[0], 0, nil, nil, 0, sc); got != nil {
		t.Fatalf("KNN with k=0 = %v, want nil", got)
	}
	if got := inv.Range(src[0], 0, nil, nil, -1, sc); got != nil {
		t.Fatalf("Range with negative radius = %v, want nil", got)
	}
}

func TestValidateRejects(t *testing.T) {
	mutate := func(f func(*Inverted)) error {
		inv, _ := buildToy()
		f(inv)
		return inv.Validate(true)
	}
	if err := mutate(func(inv *Inverted) { inv.Off = inv.Off[:3] }); err == nil {
		t.Fatal("short offsets accepted")
	}
	if err := mutate(func(inv *Inverted) { inv.Off[5] = 3 }); err == nil {
		t.Fatal("non-spanning offsets accepted")
	}
	if err := mutate(func(inv *Inverted) { inv.Off[2] = inv.Off[3] + 1 }); err == nil {
		t.Fatal("decreasing offsets accepted")
	}
	if err := mutate(func(inv *Inverted) { inv.Vertex[0] = 99 }); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if err := mutate(func(inv *Inverted) { inv.Dist[0], inv.Dist[4] = 9, 0 }); err == nil {
		t.Fatal("unsorted run accepted")
	}
	if err := mutate(func(inv *Inverted) { inv.Dist = inv.Dist[:5] }); err == nil {
		t.Fatal("vertex/dist length mismatch accepted")
	}
}
