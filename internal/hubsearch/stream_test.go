package hubsearch

import (
	"math/rand"
	"sort"
	"testing"
)

// completeCover builds the trivial all-hubs 2-hop cover of a random
// undirected graph: every vertex stores its BFS distance to every
// reachable vertex, so every source run merge is exact by construction.
// Returns the inversion, per-source runs, and the distance matrix
// (-1 = unreachable).
func completeCover(n int, edges [][2]int32) (*Inverted, [][]Run, [][]int64) {
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	dist := make([][]int64, n)
	for s := 0; s < n; s++ {
		d := make([]int64, n)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range adj[u] {
				if d[w] < 0 {
					d[w] = d[u] + 1
					queue = append(queue, w)
				}
			}
		}
		dist[s] = d
	}
	inv := Build(n, 0, nil, nil, func(add func(run, vertex int32, dist uint32)) {
		for v := 0; v < n; v++ {
			for h := 0; h < n; h++ {
				if dist[v][h] >= 0 {
					add(int32(h), int32(v), uint32(dist[v][h]))
				}
			}
		}
	})
	src := make([][]Run, n)
	for s := 0; s < n; s++ {
		for h := 0; h < n; h++ {
			if dist[s][h] >= 0 {
				src[s] = append(src[s], Run{ID: int32(h), Base: dist[s][h]})
			}
		}
	}
	return inv, src, dist
}

func randomGraph(rng *rand.Rand, n int, p float64) [][2]int32 {
	var edges [][2]int32
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int32{int32(u), int32(v)})
			}
		}
	}
	return edges
}

// TestStreamMatchesRange checks the pull-based merge against Range on
// random graphs: same vertex set, exact distances, nondecreasing yield
// order, cutoff respected, each vertex at most once.
func TestStreamMatchesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		n int
		p float64
	}{{1, 0}, {8, 0.3}, {25, 0.12}, {40, 0.05}, {40, 0.3}} {
		inv, src, dist := completeCover(tc.n, randomGraph(rng, tc.n, tc.p))
		sc := NewScratch(tc.n)
		for s := 0; s < tc.n; s++ {
			for _, cutoff := range []int64{-1, 0, 1, 2, 5, int64(tc.n)} {
				want := inv.Range(src[s], int32(s), nil, nil, cutoff, sc)
				st := inv.NewStream(src[s], int32(s), nil, nil, cutoff, sc)
				var got []Result
				prev := int64(-1)
				seen := map[int32]bool{}
				for {
					r, ok := st.Next()
					if !ok {
						break
					}
					if r.Dist < prev {
						t.Fatalf("n=%d s=%d cutoff=%d: distances not nondecreasing (%d after %d)", tc.n, s, cutoff, r.Dist, prev)
					}
					prev = r.Dist
					if seen[r.Rank] {
						t.Fatalf("n=%d s=%d cutoff=%d: vertex %d yielded twice", tc.n, s, cutoff, r.Rank)
					}
					seen[r.Rank] = true
					if r.Dist > cutoff {
						t.Fatalf("n=%d s=%d cutoff=%d: yielded dist %d beyond cutoff", tc.n, s, cutoff, r.Dist)
					}
					if r.Dist != dist[s][r.Rank] {
						t.Fatalf("n=%d s=%d: stream says d(%d)=%d, matrix says %d", tc.n, s, r.Rank, r.Dist, dist[s][r.Rank])
					}
					got = append(got, r)
				}
				st.Close()
				byRank := func(rs []Result) {
					sort.Slice(rs, func(i, j int) bool { return rs[i].Rank < rs[j].Rank })
				}
				byRank(got)
				byRank(want)
				if len(got) != len(want) {
					t.Fatalf("n=%d s=%d cutoff=%d: stream yielded %d vertices, Range %d", tc.n, s, cutoff, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d s=%d cutoff=%d: stream[%d]=%v, Range=%v", tc.n, s, cutoff, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestStreamEarlyClose checks that abandoning a stream mid-iteration
// leaves the scratch reusable.
func TestStreamEarlyClose(t *testing.T) {
	inv, src := buildToy()
	sc := NewScratch(5)
	st := inv.NewStream(src[0], 0, nil, nil, 10, sc)
	if _, ok := st.Next(); !ok {
		t.Fatal("stream from vertex 0 yielded nothing")
	}
	st.Close()
	// The scratch must be clean: a full Range over it sees all 4.
	if got := inv.Range(src[0], 0, nil, nil, 10, sc); len(got) != 4 {
		t.Fatalf("Range after early Close found %d vertices, want 4", len(got))
	}
}

func TestPrefixWithin(t *testing.T) {
	inv, _ := buildToy()
	// Run 0 of the toy path graph holds dists 0,1,2,3,4.
	for maxDist, want := range map[int64]int64{-1: 0, 0: 1, 2: 3, 4: 5, 100: 5, int64(^uint32(0)) + 7: 5} {
		if got := inv.PrefixWithin(0, maxDist); got != want {
			t.Fatalf("PrefixWithin(0, %d) = %d, want %d", maxDist, got, want)
		}
	}
	if got := inv.PrefixWithin(4, 0); got != 1 {
		t.Fatalf("PrefixWithin(4, 0) = %d, want 1", got)
	}
	if got := inv.PrefixWithin(99, 5); got != 0 {
		t.Fatalf("PrefixWithin on out-of-range run = %d, want 0", got)
	}
	// Compact inversions answer through RunIndex; absent runs are empty.
	sub := BuildSubset(5, 0, nil, nil, func(add func(run, vertex int32, dist uint32)) {
		add(2, 3, 1)
		add(2, 4, 2)
	})
	if got := sub.PrefixWithin(2, 1); got != 1 {
		t.Fatalf("subset PrefixWithin(2, 1) = %d, want 1", got)
	}
	if got := sub.PrefixWithin(0, 5); got != 0 {
		t.Fatalf("subset PrefixWithin on absent run = %d, want 0", got)
	}
}
