package hubsearch

// Stream is the pull-based form of the run merge behind KNN and Range:
// it yields each reachable candidate exactly once, in nondecreasing
// (corrected) distance order, stopping at a caller-supplied cutoff that
// is pushed into the run scans — a run is abandoned the moment its raw
// key can no longer correct to within the cutoff, and the whole merge
// stops when the smallest raw key is out of reach.
//
// The streaming query engine (internal/runquery) drives one Stream per
// leaf constraint so that composed queries — AND/OR trees over several
// distance constraints — never materialize a full neighborhood: the
// consumer stops pulling as soon as its own top-k bound is met, and the
// work done is bounded by the entries actually pulled plus the pending
// frontier, not by the cutoff's total coverage.
//
// A Stream borrows its Scratch for the duration of the iteration; Close
// resets the scratch so it can be pooled again. Like KNN, results with
// equal distance arrive in unspecified order — callers apply their own
// tie-break.

// Stream iterates the merge incrementally; see the package comment on
// ordering and the slack rule for bit-parallel corrections.
type Stream struct {
	inv          *Inverted
	sc           *Scratch
	srcRank      int32
	srcS1, srcS0 []uint64
	cutoff       int64
	slack        int64
}

// NewStream starts a cutoff-bounded merge over the source's runs. src,
// srcRank and the mask slices have the KNN contract; cutoff bounds the
// corrected distances yielded (negative yields nothing). The scratch
// must be reset between queries — Close does so.
func (inv *Inverted) NewStream(src []Run, srcRank int32, srcS1, srcS0 []uint64, cutoff int64, sc *Scratch) *Stream {
	st := &Stream{
		inv:     inv,
		sc:      sc,
		srcRank: srcRank,
		srcS1:   srcS1,
		srcS0:   srcS0,
		cutoff:  cutoff,
		slack:   inv.slack(),
	}
	sc.Scanned, sc.Runs = 0, 0
	if cutoff >= 0 {
		inv.seed(sc, src)
	}
	return st
}

// Next returns the next candidate in nondecreasing distance order, or
// false when every vertex within the cutoff has been yielded. Each
// vertex is yielded at most once, with its exact (corrected) distance.
func (st *Stream) Next() (Result, bool) {
	sc, inv := st.sc, st.inv
	for {
		// Finalize the nearest pending candidate once nothing left in
		// the merge can improve it: every future corrected distance is
		// at least the current minimum raw key minus the slack.
		if len(sc.pend) > 0 && (len(sc.runs) == 0 || sc.pend[0].dist+st.slack <= sc.runs[0].key) {
			e := sc.pend.pop()
			if sc.state[e.rank] != statePending || sc.best[e.rank] != e.dist {
				continue // stale: superseded or already finalized
			}
			sc.state[e.rank] = stateFinalized
			return Result{Rank: e.rank, Dist: e.dist}, true
		}
		if len(sc.runs) == 0 {
			return Result{}, false
		}
		r := sc.runs[0].key
		if r-st.slack > st.cutoff {
			// Cutoff pushdown: the smallest raw key still in the merge
			// cannot correct to within the cutoff, and keys only grow —
			// drop every run and drain the pending heap above.
			sc.runs = sc.runs[:0]
			continue
		}
		v := inv.Vertex[sc.runs[0].pos]
		bp := sc.runs[0].bp
		// The in-range guard keeps corrupt persisted sections degrading
		// to wrong answers instead of a panic, mirroring KNN.
		if uint32(v) < uint32(inv.N) && v != st.srcRank && sc.state[v] != stateFinalized {
			d := inv.corrected(r, bp, v, st.srcS1, st.srcS0)
			if d <= st.cutoff {
				switch {
				case sc.state[v] == stateNew:
					sc.state[v] = statePending
					sc.touched = append(sc.touched, v)
					sc.best[v] = d
					sc.pend.push(pendEntry{dist: d, rank: v})
				case sc.state[v] == statePending && d < sc.best[v]:
					sc.best[v] = d
					sc.pend.push(pendEntry{dist: d, rank: v})
				}
			}
		}
		// Advance the run in place and restore the heap order.
		c := &sc.runs[0]
		c.pos++
		sc.Scanned++
		if c.pos == c.end {
			sc.runs.pop()
		} else {
			c.key = c.base + int64(inv.Dist[c.pos])
			sc.runs.siftDown()
		}
	}
}

// Close resets the borrowed scratch so it can serve another query. The
// stream must not be used afterwards.
func (st *Stream) Close() { st.sc.reset() }

// PrefixWithin returns how many entries of run id store a distance of
// at most maxDist — the length of the prefix a cutoff-bounded scan of
// the run would visit. It is the per-run building block of the query
// planner's selectivity estimate: summed over a source's runs (with
// maxDist = cutoff - base) it upper-bounds, duplicates included, the
// number of entries a constraint scan touches.
func (inv *Inverted) PrefixWithin(id int32, maxDist int64) int64 {
	if maxDist < 0 {
		return 0
	}
	slot := id
	if inv.RunIndex != nil {
		var ok bool
		if slot, ok = inv.RunIndex[id]; !ok {
			return 0
		}
	}
	if slot < 0 || int(slot) >= len(inv.Off)-1 {
		return 0
	}
	lo, hi := inv.Off[slot], inv.Off[slot+1]
	if maxDist >= int64(^uint32(0)) {
		return hi - lo
	}
	// Binary search for the first entry beyond maxDist; the run is
	// sorted by (dist, vertex), so distances are nondecreasing.
	d := uint32(maxDist)
	for lo < hi {
		mid := (lo + hi) / 2
		if inv.Dist[mid] <= d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - inv.Off[slot]
}
