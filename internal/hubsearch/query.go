package hubsearch

// Query engines over an Inverted index. Both KNN and Range merge the
// inverted runs of the source's hubs in increasing raw key order, where
// the raw key of an entry (v, d) in run h is base(h) + d — for normal
// hubs exactly the two-hop distance bound d(s,h)+d(h,v), for a
// bit-parallel root the uncorrected sum, which the §5.3 mask
// corrections may lower by one or two. The engines therefore treat raw
// keys as exact when no bit-parallel runs exist (slack 0) and as
// 2-overestimates otherwise (slack 2): a candidate's tentative distance
// is final once the smallest raw key still in the merge cannot produce
// anything smaller.
//
// All inputs and outputs are in rank space. The source vertex itself is
// never reported.

// Run is one merge input: the inverted run of a source hub (ID < N,
// Base = d(s, hub)) or of a bit-parallel root (ID = N+i, Base = the
// root's distance from the source).
type Run struct {
	ID   int32
	Base int64
}

// Result is one search answer in rank space.
type Result struct {
	Rank int32
	Dist int64
}

// candidate states in Scratch.state.
const (
	stateNew       uint8 = 0
	statePending   uint8 = 1
	stateFinalized uint8 = 2
)

// Scratch is the reusable per-query workspace: O(n) arrays reset via
// the touched list, so a pooled Scratch makes steady-state queries
// allocation-light. A Scratch serves one query at a time; pool them for
// concurrent use.
type Scratch struct {
	best    []int64 // tentative distance per rank; valid when state != stateNew
	state   []uint8
	touched []int32

	runs cursorHeap
	pend pendHeap
	topk topkHeap

	// Scanned and Runs count label entries advanced and runs seeded by
	// the last query on this scratch, for per-query profiling. They are
	// zeroed when a query starts — not in reset — so callers can read
	// them after a deferred reset has returned the scratch.
	Scanned int64
	Runs    int
}

// NewScratch allocates a workspace for indexes of n vertices.
func NewScratch(n int) *Scratch {
	return &Scratch{
		best:  make([]int64, n),
		state: make([]uint8, n),
	}
}

// Fits reports whether the scratch is large enough for an index of n
// vertices (pools share scratches across same-sized indexes).
func (sc *Scratch) Fits(n int) bool { return len(sc.state) >= n }

func (sc *Scratch) reset() {
	for _, v := range sc.touched {
		sc.state[v] = stateNew
	}
	sc.touched = sc.touched[:0]
	sc.runs = sc.runs[:0]
	sc.pend = sc.pend[:0]
	sc.topk = sc.topk[:0]
}

// cursor walks one inverted run; key is Base + Dist[pos].
type cursor struct {
	key  int64
	pos  int64
	end  int64
	base int64
	bp   int32 // bit-parallel root index, -1 for normal runs
}

// cursorHeap is a hand-rolled min-heap over run cursors by key.
type cursorHeap []cursor

func (h *cursorHeap) push(c cursor) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].key <= (*h)[i].key {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *cursorHeap) pop() cursor {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.siftDown()
	return top
}

func (h cursorHeap) siftDown() {
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h[r].key < h[l].key {
			m = r
		}
		if h[i].key <= h[m].key {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// pendEntry is a tentative candidate awaiting finalization.
type pendEntry struct {
	dist int64
	rank int32
}

// pendHeap is a min-heap by dist with lazy deletion: stale entries
// (superseded by a smaller tentative distance, or already finalized)
// are skipped at pop time.
type pendHeap []pendEntry

func (h *pendHeap) push(e pendEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].dist <= (*h)[i].dist {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *pendHeap) pop() pendEntry {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && old[r].dist < old[l].dist {
			m = r
		}
		if old[i].dist <= old[m].dist {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}

// topkHeap is a size-capped max-heap of first-sighting distances. Its
// root, once the heap holds k entries, upper-bounds the k-th smallest
// final distance (first sightings only overestimate), which is the
// bound behind run pruning.
type topkHeap []int64

func (h *topkHeap) offer(d int64, k int) {
	if len(*h) < k {
		*h = append(*h, d)
		i := len(*h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if (*h)[p] >= (*h)[i] {
				break
			}
			(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
			i = p
		}
		return
	}
	if d >= (*h)[0] {
		return
	}
	(*h)[0] = d
	i := 0
	for {
		l := 2*i + 1
		if l >= len(*h) {
			return
		}
		m := l
		if r := l + 1; r < len(*h) && (*h)[r] > (*h)[l] {
			m = r
		}
		if (*h)[i] >= (*h)[m] {
			return
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
}

// slack is how far a raw merge key may overestimate the corrected
// distance: 2 when bit-parallel runs can apply mask corrections.
func (inv *Inverted) slack() int64 {
	if inv.NumBP > 0 {
		return 2
	}
	return 0
}

// seed pushes every non-empty source run onto the cursor heap. On a
// compact (subset) inversion, source hubs absent from the subset's
// labels simply have no run.
func (inv *Inverted) seed(sc *Scratch, src []Run) {
	for _, r := range src {
		slot := r.ID
		if inv.RunIndex != nil {
			var ok bool
			if slot, ok = inv.RunIndex[r.ID]; !ok {
				continue
			}
		}
		lo, hi := inv.Off[slot], inv.Off[slot+1]
		if lo == hi {
			continue
		}
		bp := int32(-1)
		if int(r.ID) >= inv.N {
			bp = r.ID - int32(inv.N)
		}
		sc.runs.push(cursor{
			key:  r.Base + int64(inv.Dist[lo]),
			pos:  lo,
			end:  hi,
			base: r.Base,
			bp:   bp,
		})
		sc.Runs++
	}
}

// corrected applies the §5.3 mask correction of bit-parallel root bp to
// the raw key of candidate v; srcS1/srcS0 are the source's masks.
func (inv *Inverted) corrected(key int64, bp, v int32, srcS1, srcS0 []uint64) int64 {
	if bp < 0 {
		return key
	}
	o := int(v)*inv.NumBP + int(bp)
	s1v, s0v := inv.BPS1[o], inv.BPS0[o]
	if srcS1[bp]&s1v != 0 {
		return key - 2
	}
	if srcS1[bp]&s0v != 0 || srcS0[bp]&s1v != 0 {
		return key - 1
	}
	return key
}

// KNN returns every candidate whose exact distance from the source is
// at most the k-th smallest (so ties at the cutoff are all included),
// in non-decreasing distance order with ties unordered; the caller
// applies its own tie-break and trims to k. src holds the source's
// label runs, srcRank its own rank (excluded from results), and
// srcS1/srcS0 its bit-parallel masks (nil when NumBP is 0).
func (inv *Inverted) KNN(src []Run, srcRank int32, srcS1, srcS0 []uint64, k int, sc *Scratch) []Result {
	if k <= 0 {
		return nil
	}
	sc.Scanned, sc.Runs = 0, 0
	defer sc.reset()
	inv.seed(sc, src)
	slack := inv.slack()
	var out []Result

	for len(sc.runs) > 0 {
		r := sc.runs[0].key
		// Finalize pending candidates nothing in the merge can improve:
		// every future corrected distance is at least r - slack.
		for len(sc.pend) > 0 && sc.pend[0].dist+slack <= r {
			e := sc.pend.pop()
			if sc.state[e.rank] != statePending || sc.best[e.rank] != e.dist {
				continue // stale: superseded or already finalized
			}
			sc.state[e.rank] = stateFinalized
			out = append(out, Result{Rank: e.rank, Dist: e.dist})
		}
		if len(out) >= k && r-slack > out[k-1].Dist {
			return out // every candidate at or under the cutoff is final
		}
		// Run-level pruning: once k candidates are known, a run whose
		// current key cannot beat the k-th first-sighting bound is dead —
		// keys only grow within a run.
		if len(sc.topk) >= k && r-slack > sc.topk[0] {
			sc.runs.pop()
			continue
		}
		v := inv.Vertex[sc.runs[0].pos]
		bp := sc.runs[0].bp
		// The in-range guard keeps a corrupt persisted section (mmap
		// Open trusts entry contents, like the label arrays) degrading
		// to wrong answers instead of an index-out-of-range panic.
		if uint32(v) < uint32(inv.N) && v != srcRank && sc.state[v] != stateFinalized {
			d := inv.corrected(r, bp, v, srcS1, srcS0)
			switch {
			case sc.state[v] == stateNew:
				sc.state[v] = statePending
				sc.touched = append(sc.touched, v)
				sc.best[v] = d
				sc.pend.push(pendEntry{dist: d, rank: v})
				sc.topk.offer(d, k)
			case d < sc.best[v]:
				sc.best[v] = d
				sc.pend.push(pendEntry{dist: d, rank: v})
			}
		}
		// Advance the run in place and restore the heap order.
		c := &sc.runs[0]
		c.pos++
		sc.Scanned++
		if c.pos == c.end {
			sc.runs.pop()
		} else {
			c.key = c.base + int64(inv.Dist[c.pos])
			sc.runs.siftDown()
		}
	}
	// Merge exhausted: drain the pending heap in distance order.
	for len(sc.pend) > 0 {
		e := sc.pend.pop()
		if sc.state[e.rank] != statePending || sc.best[e.rank] != e.dist {
			continue
		}
		sc.state[e.rank] = stateFinalized
		out = append(out, Result{Rank: e.rank, Dist: e.dist})
		if len(out) >= k {
			cut := out[k-1].Dist
			// Keep draining only while ties at the cutoff remain.
			for len(sc.pend) > 0 && sc.pend[0].dist <= cut {
				e := sc.pend.pop()
				if sc.state[e.rank] != statePending || sc.best[e.rank] != e.dist {
					continue
				}
				sc.state[e.rank] = stateFinalized
				out = append(out, Result{Rank: e.rank, Dist: e.dist})
			}
			break
		}
	}
	return out
}

// Range returns every vertex within distance radius of the source
// (source excluded), in no particular order; the caller sorts. The
// merge visits only entries whose raw key can still land within the
// radius, cutting each dist-sorted run at its first out-of-range
// entry.
func (inv *Inverted) Range(src []Run, srcRank int32, srcS1, srcS0 []uint64, radius int64, sc *Scratch) []Result {
	if radius < 0 {
		return nil
	}
	sc.Scanned, sc.Runs = 0, 0
	defer sc.reset()
	inv.seed(sc, src)
	slack := inv.slack()

	for len(sc.runs) > 0 {
		if sc.runs[0].key-slack > radius {
			break // smallest raw key already out of reach
		}
		v := inv.Vertex[sc.runs[0].pos]
		bp := sc.runs[0].bp
		if uint32(v) < uint32(inv.N) && v != srcRank { // in-range guard: see KNN

			d := inv.corrected(sc.runs[0].key, bp, v, srcS1, srcS0)
			if d <= radius {
				if sc.state[v] == stateNew {
					sc.state[v] = statePending
					sc.touched = append(sc.touched, v)
					sc.best[v] = d
				} else if d < sc.best[v] {
					sc.best[v] = d
				}
			}
		}
		c := &sc.runs[0]
		c.pos++
		sc.Scanned++
		if c.pos == c.end {
			sc.runs.pop()
		} else {
			c.key = c.base + int64(inv.Dist[c.pos])
			sc.runs.siftDown()
		}
	}
	out := make([]Result, 0, len(sc.touched))
	for _, v := range sc.touched {
		out = append(out, Result{Rank: v, Dist: sc.best[v]})
	}
	return out
}
