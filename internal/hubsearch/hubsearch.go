// Package hubsearch turns a finished 2-hop label set into a search
// structure. The pruned-landmark labels of the paper answer
// point-to-point queries by merge-joining two label arrays; inverting
// the same labels — hub -> the dist-sorted list of vertices that carry
// the hub — yields an index over *neighborhoods*: the k nearest
// vertices to s, every vertex within distance r of s, and the nearest
// members of a registered subset all fall out of a heap merge over the
// inverted lists of s's own hubs, with no graph traversal at all.
//
// The package is deliberately self-contained: it operates on plain
// arrays in rank space (the caller's construction order), knows nothing
// about graphs or containers, and is driven by internal/core, which
// owns the label arrays, persists inverted sections in flat containers,
// and maps ranks back to vertex IDs.
//
// Correctness rests on the 2-hop cover property: for every reachable
// pair (s,v) some shortest-path hub lies in both labels, so the merge
// over {(h, d(s,h)+d(h,v)) : h in L(s), v in inv(h)} attains the exact
// distance for every reachable v. Bit-parallel roots (§5.4 of the
// paper) take part as additional runs — their -1/-2 mask corrections
// break the heap's global ordering by at most two, which the query
// engines absorb with a fixed slack (see query.go).
package hubsearch

import (
	"fmt"
	"sort"
)

// Inverted is the hub-inverted form of one label family in CSR layout:
// run h (a hub rank) owns Vertex[Off[h]:Off[h+1]] and the parallel
// Dist array, sorted by (dist, vertex) ascending. Runs N..N+NumBP-1
// are the bit-parallel roots in selection order.
//
// An Inverted is immutable after Build (or after being decoded from a
// flat container) and safe for concurrent queries.
//
// pllvet:sharedro — the arrays may alias read-only mapped flat-container
// sections; only the builders below (marked ignore) fill them, before
// publication.
type Inverted struct {
	N     int // vertices (and normal-hub runs)
	NumBP int // bit-parallel runs appended after the N hub runs

	Off    []int64  // len N+NumBP+1, offsets into Vertex/Dist
	Vertex []int32  // vertex ranks, grouped by run
	Dist   []uint32 // distances parallel to Vertex, ascending per run

	// BPS1 and BPS0 are the S^{-1} and S^{0} root-neighbor masks of
	// every vertex (stride NumBP, layout v*NumBP+i), aliased from the
	// owning index so the query engines can apply the §5.3 distance
	// corrections. nil when NumBP is 0.
	BPS1 []uint64
	BPS0 []uint64

	// RunIndex, when non-nil, marks a compact (subset) inversion: Off
	// holds len(RunIndex) runs and RunIndex maps a global run ID (hub
	// rank, or N+i for bit-parallel root i) to its slot; absent IDs
	// have empty runs. Full inversions leave it nil and index Off by
	// run ID directly — the layout persisted in flat containers.
	RunIndex map[int32]int32
}

// NumRuns returns the number of runs: normal hubs plus bit-parallel
// roots for a full inversion, occupied runs only for a compact one.
func (inv *Inverted) NumRuns() int {
	if inv.RunIndex != nil {
		return len(inv.RunIndex)
	}
	return inv.N + inv.NumBP
}

// Entries returns the total number of inverted entries.
func (inv *Inverted) Entries() int64 { return int64(len(inv.Vertex)) }

// Build constructs the inverted index for one label family. emit must
// call add once per label entry (run = hub rank for normal entries,
// N+i for bit-parallel root i; vertex = the rank carrying the entry;
// dist = the label distance); it is invoked twice — a counting pass and
// a fill pass — and must produce the same entries both times. The
// result is deterministic regardless of emission order: entries are
// grouped by run and each run is sorted by (dist, vertex), a total
// order because a vertex appears at most once per run.
//
//pllvet:ignore mmapwrite builder fills freshly allocated arrays before the Inverted is published
func Build(n, numBP int, bps1, bps0 []uint64, emit func(add func(run, vertex int32, dist uint32))) *Inverted {
	runs := n + numBP
	off := make([]int64, runs+1)
	emit(func(run, vertex int32, dist uint32) { off[run+1]++ })
	for i := 0; i < runs; i++ {
		off[i+1] += off[i]
	}
	total := off[runs]
	inv := &Inverted{
		N:      n,
		NumBP:  numBP,
		Off:    off,
		Vertex: make([]int32, total),
		Dist:   make([]uint32, total),
		BPS1:   bps1,
		BPS0:   bps0,
	}
	next := append([]int64(nil), off...)
	emit(func(run, vertex int32, dist uint32) {
		p := next[run]
		inv.Vertex[p] = vertex
		inv.Dist[p] = dist
		next[run] = p + 1
	})
	for i := 0; i < runs; i++ {
		if off[i+1]-off[i] > 1 {
			sort.Sort(runSorter{inv: inv, lo: off[i], hi: off[i+1]})
		}
	}
	return inv
}

// BuildSubset constructs a compact filtered inversion: runs exist only
// for the hubs (and bit-parallel roots) that actually occur in the
// emitted entries, addressed through RunIndex, so a small vertex
// subset costs O(its label mass) — not O(n) — to register. emit has
// the Build contract.
//
//pllvet:ignore mmapwrite builder fills freshly allocated arrays before the Inverted is published
func BuildSubset(n, numBP int, bps1, bps0 []uint64, emit func(add func(run, vertex int32, dist uint32))) *Inverted {
	counts := map[int32]int64{}
	emit(func(run, vertex int32, dist uint32) { counts[run]++ })
	present := make([]int32, 0, len(counts))
	for run := range counts {
		present = append(present, run)
	}
	sort.Slice(present, func(i, j int) bool { return present[i] < present[j] })
	runIndex := make(map[int32]int32, len(present))
	off := make([]int64, len(present)+1)
	for i, run := range present {
		runIndex[run] = int32(i)
		off[i+1] = off[i] + counts[run]
	}
	total := off[len(present)]
	inv := &Inverted{
		N:        n,
		NumBP:    numBP,
		Off:      off,
		Vertex:   make([]int32, total),
		Dist:     make([]uint32, total),
		BPS1:     bps1,
		BPS0:     bps0,
		RunIndex: runIndex,
	}
	next := append([]int64(nil), off...)
	emit(func(run, vertex int32, dist uint32) {
		i := runIndex[run]
		p := next[i]
		inv.Vertex[p] = vertex
		inv.Dist[p] = dist
		next[i] = p + 1
	})
	for i := range present {
		if off[i+1]-off[i] > 1 {
			sort.Sort(runSorter{inv: inv, lo: off[i], hi: off[i+1]})
		}
	}
	return inv
}

// runSorter orders one run by (dist, vertex).
type runSorter struct {
	inv    *Inverted
	lo, hi int64
}

func (s runSorter) Len() int { return int(s.hi - s.lo) }
func (s runSorter) Less(i, j int) bool {
	a, b := s.lo+int64(i), s.lo+int64(j)
	if s.inv.Dist[a] != s.inv.Dist[b] {
		return s.inv.Dist[a] < s.inv.Dist[b]
	}
	return s.inv.Vertex[a] < s.inv.Vertex[b]
}

//pllvet:ignore mmapwrite sorts runs during Build, before the Inverted is published
func (s runSorter) Swap(i, j int) {
	a, b := s.lo+int64(i), s.lo+int64(j)
	s.inv.Dist[a], s.inv.Dist[b] = s.inv.Dist[b], s.inv.Dist[a]
	s.inv.Vertex[a], s.inv.Vertex[b] = s.inv.Vertex[b], s.inv.Vertex[a]
}

// Validate checks the structural invariants the query engines rely on:
// offsets spanning the entry arrays monotonically and, when full is
// set, every vertex in range and every run sorted by distance. Callers
// feed it decoded container sections; a built Inverted always passes.
func (inv *Inverted) Validate(full bool) error {
	runs := inv.NumRuns()
	if len(inv.Off) != runs+1 {
		return fmt.Errorf("inverted offsets sized %d, want %d runs+1", len(inv.Off), runs)
	}
	if len(inv.Dist) != len(inv.Vertex) {
		return fmt.Errorf("inverted vertex/dist sections differ in length (%d vs %d)", len(inv.Vertex), len(inv.Dist))
	}
	if inv.Off[0] != 0 || inv.Off[runs] != int64(len(inv.Vertex)) {
		return fmt.Errorf("inverted offsets do not span the entry array")
	}
	for i := 0; i < runs; i++ {
		if inv.Off[i+1] < inv.Off[i] {
			return fmt.Errorf("inverted offsets decreasing at run %d", i)
		}
	}
	if inv.NumBP > 0 {
		want := inv.NumBP * inv.N
		if len(inv.BPS1) != want || len(inv.BPS0) != want {
			return fmt.Errorf("inverted bit-parallel masks sized %d/%d, want %d", len(inv.BPS1), len(inv.BPS0), want)
		}
	}
	if !full {
		return nil
	}
	for i := 0; i < runs; i++ {
		prev := int64(-1)
		prevV := int32(-1)
		for p := inv.Off[i]; p < inv.Off[i+1]; p++ {
			v, d := inv.Vertex[p], int64(inv.Dist[p])
			if v < 0 || int(v) >= inv.N {
				return fmt.Errorf("inverted entry of run %d names vertex %d out of range [0,%d)", i, v, inv.N)
			}
			if d < prev || (d == prev && v <= prevV) {
				return fmt.Errorf("inverted run %d not sorted by (dist, vertex) at entry %d", i, p-inv.Off[i])
			}
			prev, prevV = d, v
		}
	}
	return nil
}
