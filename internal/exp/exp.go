// Package exp contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (§7) on the synthetic
// dataset stand-ins of internal/datasets. Each driver returns typed rows
// or series (so tests can assert the paper's qualitative shape — who
// wins, by what factor, where curves bend) and has a Print companion
// that writes the same rows the paper reports.
package exp

import (
	"fmt"
	"io"
	"time"

	"pll/internal/baseline"
	"pll/internal/core"
	"pll/internal/datasets"
	"pll/internal/graph"
	"pll/internal/hhl"
	"pll/internal/order"
	"pll/internal/rng"
	"pll/internal/treedec"
)

// Config controls the scale of every experiment. The zero value is
// usable: Normalize fills laptop-scale defaults.
type Config struct {
	// ScaleDiv divides the paper's |V| for every dataset stand-in
	// (default 64; 1 reproduces the paper's sizes and needs a big
	// machine and hours).
	ScaleDiv int64
	// Seed drives generation, ordering and query sampling.
	Seed uint64
	// QueryPairs is the number of random query pairs per measurement
	// (the paper uses 1,000,000; default 20,000).
	QueryPairs int
	// HHLMaxN skips the Θ(nm) hierarchical-hub-labeling baseline above
	// this vertex count and reports DNF, mirroring Table 3 (default 6000).
	HHLMaxN int
	// TDMaxBag and TDMaxCore bound the tree-decomposition baseline; a
	// core above TDMaxCore reports DNF as in Table 3 (defaults 16, 4000).
	TDMaxBag  int
	TDMaxCore int
	// Workers parallelizes every PLL construction (0 = GOMAXPROCS,
	// 1 = sequential). Indexes are byte-identical either way, so only
	// the reported indexing times change.
	Workers int
}

// BuildWorkers reports the worker count the PLL constructions will
// actually use, for inclusion next to indexing-time measurements.
func (c Config) BuildWorkers() int { return core.EffectiveWorkers(c.Workers) }

// Normalize fills zero fields with defaults and returns the config.
func (c Config) Normalize() Config {
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 64
	}
	if c.QueryPairs <= 0 {
		c.QueryPairs = 20000
	}
	if c.HHLMaxN <= 0 {
		c.HHLMaxN = 6000
	}
	if c.TDMaxBag <= 0 {
		c.TDMaxBag = 16
	}
	if c.TDMaxCore <= 0 {
		c.TDMaxCore = 4000
	}
	return c
}

// queryPairs draws uniform pairs for timing runs.
func queryPairs(n int, k int, seed uint64) [][2]int32 {
	r := rng.New(seed)
	pairs := make([][2]int32, k)
	for i := range pairs {
		pairs[i] = [2]int32{r.Int31n(int32(n)), r.Int31n(int32(n))}
	}
	return pairs
}

// MethodResult is one method's measurements on one dataset (Table 3's
// IT / IS / QT / LN cells).
type MethodResult struct {
	DNF        bool
	DNFReason  string
	Indexing   time.Duration
	IndexBytes int64
	QueryTime  time.Duration // average per query
	LabelSize  float64       // average normal label entries per vertex
}

// Table3Row is one dataset's row of Table 3.
type Table3Row struct {
	Dataset     string
	Kind        datasets.Kind
	N           int
	M           int64
	BitParallel int

	PLL MethodResult
	HHL MethodResult
	TD  MethodResult
	// BFSQuery is the average online-BFS query time (Table 3's last column).
	BFSQuery time.Duration
}

// Table3 runs the paper's main comparison on the given recipes.
func Table3(cfg Config, recipes []datasets.Recipe) ([]Table3Row, error) {
	cfg = cfg.Normalize()
	rows := make([]Table3Row, 0, len(recipes))
	for _, rec := range recipes {
		g := rec.Generate(cfg.ScaleDiv, cfg.Seed)
		row := Table3Row{
			Dataset:     rec.Name,
			Kind:        rec.Kind,
			N:           g.NumVertices(),
			M:           g.NumEdges(),
			BitParallel: rec.BitParallel,
		}
		pairs := queryPairs(g.NumVertices(), cfg.QueryPairs, cfg.Seed^0x9a77)

		// Pruned landmark labeling (this paper).
		start := time.Now()
		ix, err := core.Build(g, core.Options{
			Ordering:       order.Degree,
			Seed:           cfg.Seed,
			NumBitParallel: rec.BitParallel,
			Workers:        cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("exp: PLL on %s: %w", rec.Name, err)
		}
		row.PLL.Indexing = time.Since(start)
		st := ix.ComputeStats()
		row.PLL.IndexBytes = st.IndexBytes
		row.PLL.LabelSize = st.AvgLabelSize
		row.PLL.QueryTime = timePerQuery(len(pairs), func(i int) {
			ix.Query(pairs[i][0], pairs[i][1])
		})

		// Hierarchical hub labeling baseline: same labels, Θ(nm)
		// construction; DNF above the budget.
		if g.NumVertices() > cfg.HHLMaxN {
			row.HHL = MethodResult{DNF: true, DNFReason: fmt.Sprintf("n=%d > HHLMaxN=%d", g.NumVertices(), cfg.HHLMaxN)}
		} else {
			start = time.Now()
			hix, err := hhl.Build(g, order.ByDegree(g, cfg.Seed))
			if err != nil {
				row.HHL = MethodResult{DNF: true, DNFReason: err.Error()}
			} else {
				row.HHL.Indexing = time.Since(start)
				row.HHL.LabelSize = hix.AvgLabelSize()
				row.HHL.IndexBytes = hix.TotalLabelEntries() * 5
				row.HHL.QueryTime = timePerQuery(len(pairs), func(i int) {
					hix.Query(pairs[i][0], pairs[i][1])
				})
			}
		}

		// Tree-decomposition baseline: DNF when the residual core is
		// too large, as on all the paper's larger networks.
		start = time.Now()
		tix, err := treedec.Build(g, treedec.Options{MaxBag: cfg.TDMaxBag, MaxCore: cfg.TDMaxCore})
		if err != nil {
			row.TD = MethodResult{DNF: true, DNFReason: err.Error()}
		} else {
			row.TD.Indexing = time.Since(start)
			tst := tix.ComputeStats()
			row.TD.IndexBytes = tst.IndexBytes
			row.TD.QueryTime = timePerQuery(len(pairs), func(i int) {
				tix.Query(pairs[i][0], pairs[i][1])
			})
		}

		// Online BFS baseline, measured on fewer pairs (it is slow).
		oracle := baseline.NewOracle(g)
		bfsPairs := len(pairs)
		if bfsPairs > 200 {
			bfsPairs = 200
		}
		row.BFSQuery = timePerQuery(bfsPairs, func(i int) {
			oracle.Query(pairs[i][0], pairs[i][1])
		})

		rows = append(rows, row)
	}
	return rows, nil
}

// timePerQuery runs f for i in [0,k) and returns the mean wall time.
func timePerQuery(k int, f func(i int)) time.Duration {
	if k == 0 {
		return 0
	}
	start := time.Now()
	for i := 0; i < k; i++ {
		f(i)
	}
	return time.Since(start) / time.Duration(k)
}

// PrintTable3 writes rows in the layout of the paper's Table 3.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-11s %9s %10s | %9s %9s %9s %8s | %9s %9s %9s | %9s %9s | %10s\n",
		"Dataset", "|V|", "|E|",
		"PLL-IT", "PLL-IS", "PLL-QT", "PLL-LN",
		"HHL-IT", "HHL-QT", "HHL-LN",
		"TD-IT", "TD-QT", "BFS-QT")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %9d %10d | %9s %9s %9s %5.0f+%2d | %9s %9s %9.0f | %9s %9s | %10s\n",
			r.Dataset, r.N, r.M,
			durShort(r.PLL.Indexing), bytesShort(r.PLL.IndexBytes), durShort(r.PLL.QueryTime), r.PLL.LabelSize, r.BitParallel,
			dnfOr(r.HHL, durShort(r.HHL.Indexing)), dnfOr(r.HHL, durShort(r.HHL.QueryTime)), r.HHL.LabelSize,
			dnfOr(r.TD, durShort(r.TD.Indexing)), dnfOr(r.TD, durShort(r.TD.QueryTime)),
			durShort(r.BFSQuery))
	}
}

func dnfOr(m MethodResult, s string) string {
	if m.DNF {
		return "DNF"
	}
	return s
}

func durShort(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

func bytesShort(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%dB", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	}
}

// Table1Row is one line of the paper's Table 1 summary (our measured
// subset: PLL plus the reimplemented baselines on the largest two
// stand-ins we run).
type Table1Row struct {
	Method  string
	Network string
	N       int
	M       int64
	Index   time.Duration
	Query   time.Duration
	DNF     bool
}

// Table1 distills Table 3 results into the summary layout of Table 1.
func Table1(rows []Table3Row) []Table1Row {
	var out []Table1Row
	for _, r := range rows {
		out = append(out,
			Table1Row{Method: "PLL", Network: r.Dataset, N: r.N, M: r.M, Index: r.PLL.Indexing, Query: r.PLL.QueryTime},
			Table1Row{Method: "HHL", Network: r.Dataset, N: r.N, M: r.M, Index: r.HHL.Indexing, Query: r.HHL.QueryTime, DNF: r.HHL.DNF},
			Table1Row{Method: "TD", Network: r.Dataset, N: r.N, M: r.M, Index: r.TD.Indexing, Query: r.TD.QueryTime, DNF: r.TD.DNF},
		)
	}
	return out
}

// PrintTable1 writes the Table 1 summary.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-8s %-11s %9s %10s %10s %10s\n", "Method", "Network", "|V|", "|E|", "Indexing", "Query")
	for _, r := range rows {
		if r.DNF {
			fmt.Fprintf(w, "%-8s %-11s %9d %10d %10s %10s\n", r.Method, r.Network, r.N, r.M, "DNF", "DNF")
			continue
		}
		fmt.Fprintf(w, "%-8s %-11s %9d %10d %10s %10s\n", r.Method, r.Network, r.N, r.M, durShort(r.Index), durShort(r.Query))
	}
}

// Table5Row is one dataset's row of Table 5: average label size per
// ordering strategy (no bit-parallel labels, as in the paper).
type Table5Row struct {
	Dataset string
	// Sizes[strategy] is the average label size; a NaN-free -1 marks DNF
	// (the paper reports DNF for Random on its larger small datasets).
	Random, Degree, Closeness float64
	RandomDNF                 bool
}

// Table5 measures the ordering-strategy ablation on the given recipes.
// randomMaxN guards the Random strategy, whose labels explode: above it
// the cell reports DNF like the paper.
func Table5(cfg Config, recipes []datasets.Recipe, randomMaxN int) ([]Table5Row, error) {
	cfg = cfg.Normalize()
	var rows []Table5Row
	for _, rec := range recipes {
		g := rec.Generate(cfg.ScaleDiv, cfg.Seed)
		row := Table5Row{Dataset: rec.Name}
		avg := func(s order.Strategy) (float64, error) {
			ix, err := core.Build(g, core.Options{Ordering: s, Seed: cfg.Seed, Workers: cfg.Workers})
			if err != nil {
				return 0, err
			}
			return ix.ComputeStats().AvgLabelSize, nil
		}
		var err error
		if row.Degree, err = avg(order.Degree); err != nil {
			return nil, fmt.Errorf("exp: %s/Degree: %w", rec.Name, err)
		}
		if row.Closeness, err = avg(order.Closeness); err != nil {
			return nil, fmt.Errorf("exp: %s/Closeness: %w", rec.Name, err)
		}
		if randomMaxN > 0 && g.NumVertices() > randomMaxN {
			row.RandomDNF = true
		} else if row.Random, err = avg(order.Random); err != nil {
			return nil, fmt.Errorf("exp: %s/Random: %w", rec.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable5 writes rows in the layout of the paper's Table 5.
func PrintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintf(w, "%-11s %10s %10s %10s\n", "Dataset", "Random", "Degree", "Closeness")
	for _, r := range rows {
		rand := fmt.Sprintf("%10.1f", r.Random)
		if r.RandomDNF {
			rand = fmt.Sprintf("%10s", "DNF")
		}
		fmt.Fprintf(w, "%-11s %s %10.1f %10.1f\n", r.Dataset, rand, r.Degree, r.Closeness)
	}
}

// dataset is a small helper tying a recipe to its generated stand-in.
type dataset struct {
	rec datasets.Recipe
	g   *graph.Graph
}

func generate(cfg Config, recipes []datasets.Recipe) []dataset {
	out := make([]dataset, 0, len(recipes))
	for _, rec := range recipes {
		out = append(out, dataset{rec: rec, g: rec.Generate(cfg.ScaleDiv, cfg.Seed)})
	}
	return out
}
