package exp

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pll/internal/baseline"
	"pll/internal/core"
	"pll/internal/datasets"
	"pll/internal/gen"
	"pll/internal/order"
	"pll/internal/stats"
)

// Fig1Step records what one pruned BFS of the Figure 1 walkthrough did.
type Fig1Step struct {
	Root    int32 // original vertex ID of the k-th root
	Labeled int64 // vertices that received a label
	Visited int64 // vertices visited (labeled or pruned)
}

// Fig1 reruns the paper's Figure 1 walkthrough: pruned BFSs on a small
// 12-vertex example graph, reporting how each successive search is
// pruned harder. (The paper's exact drawing is not recoverable from the
// text; the stand-in graph has the same hub structure — see
// gen.ExampleGraph12.)
func Fig1() ([]Fig1Step, error) {
	g := gen.ExampleGraph12()
	var bs core.BuildStats
	_, err := core.Build(g, core.Options{
		Ordering:     order.Degree,
		CollectStats: &bs,
	})
	if err != nil {
		return nil, err
	}
	steps := make([]Fig1Step, len(bs.LabelsPerBFS))
	perm := order.ByDegree(g, 0)
	for i := range steps {
		steps[i] = Fig1Step{
			Root:    perm[bs.RootRank[i]],
			Labeled: bs.LabelsPerBFS[i],
			Visited: bs.VisitedPerBFS[i],
		}
	}
	return steps, nil
}

// PrintFig1 writes the walkthrough steps.
func PrintFig1(w io.Writer, steps []Fig1Step) {
	fmt.Fprintf(w, "%-6s %-8s %-8s %-8s\n", "BFS#", "root", "labeled", "pruned")
	for i, s := range steps {
		fmt.Fprintf(w, "%-6d %-8d %-8d %-8d\n", i+1, s.Root, s.Labeled, s.Visited-s.Labeled)
	}
}

// Fig2Series holds one dataset's statistics for Figure 2 (degree CCDF)
// and Table 4 (sizes).
type Fig2Series struct {
	Dataset        string
	Kind           datasets.Kind
	N              int
	M              int64
	Degrees        []int
	CumFreq        []int64
	DistanceFrac   []float64
	UnreachablePct float64
}

// Fig2 computes degree and distance distributions for the recipes.
func Fig2(cfg Config, recipes []datasets.Recipe) []Fig2Series {
	cfg = cfg.Normalize()
	var out []Fig2Series
	for _, ds := range generate(cfg, recipes) {
		s := Fig2Series{Dataset: ds.rec.Name, Kind: ds.rec.Kind, N: ds.g.NumVertices(), M: ds.g.NumEdges()}
		s.Degrees, s.CumFreq = stats.DegreeCCDF(ds.g)
		frac, unreach := stats.DistanceDistribution(ds.g, cfg.QueryPairs, cfg.Seed^0xf16)
		s.DistanceFrac = frac
		s.UnreachablePct = unreach * 100
		out = append(out, s)
	}
	return out
}

// PrintFig2 writes both panels of Figure 2 as text series plus the Table
// 4 dataset summary.
func PrintFig2(w io.Writer, series []Fig2Series) {
	fmt.Fprintf(w, "# Table 4: datasets\n%-11s %-9s %9s %10s\n", "Dataset", "Network", "|V|", "|E|")
	for _, s := range series {
		fmt.Fprintf(w, "%-11s %-9s %9d %10d\n", s.Dataset, s.Kind, s.N, s.M)
	}
	fmt.Fprintf(w, "\n# Figure 2a/2b: degree CCDF (degree, count-with-degree>=d)\n")
	for _, s := range series {
		fmt.Fprintf(w, "## %s\n", s.Dataset)
		idx := stats.LogSpacedIndexes(len(s.Degrees))
		for _, i := range idx {
			fmt.Fprintf(w, "%d %d\n", s.Degrees[i], s.CumFreq[i])
		}
	}
	fmt.Fprintf(w, "\n# Figure 2c/2d: distance distribution (distance, fraction)\n")
	for _, s := range series {
		fmt.Fprintf(w, "## %s (unreachable %.2f%%)\n", s.Dataset, s.UnreachablePct)
		for d, f := range s.DistanceFrac {
			if f > 0 {
				fmt.Fprintf(w, "%d %.4f\n", d, f)
			}
		}
	}
}

// Fig3Series holds one dataset's construction traces for Figure 3.
type Fig3Series struct {
	Dataset string
	// LabelsPerBFS[k] = labels added by the k-th pruned BFS (Fig 3a).
	LabelsPerBFS []int64
	// Cumulative[k] = fraction of all labels stored by step k (Fig 3b).
	Cumulative []float64
	// LabelSizes = per-vertex label sizes ascending (Fig 3c).
	LabelSizes []int
}

// Fig3 traces pruned-BFS construction without bit-parallel labels, as in
// the paper's Figure 3 ("We did not use bit-parallel BFSs for these
// experiments").
func Fig3(cfg Config, recipes []datasets.Recipe) ([]Fig3Series, error) {
	cfg = cfg.Normalize()
	var out []Fig3Series
	for _, ds := range generate(cfg, recipes) {
		var bs core.BuildStats
		ix, err := core.Build(ds.g, core.Options{
			Ordering:     order.Degree,
			Seed:         cfg.Seed,
			CollectStats: &bs,
		})
		if err != nil {
			return nil, fmt.Errorf("exp: Fig3 %s: %w", ds.rec.Name, err)
		}
		out = append(out, Fig3Series{
			Dataset:      ds.rec.Name,
			LabelsPerBFS: bs.LabelsPerBFS,
			Cumulative:   stats.CumulativeFractions(bs.LabelsPerBFS),
			LabelSizes:   ix.LabelSizeDistribution(),
		})
	}
	return out, nil
}

// PrintFig3 writes the three panels as log-sampled text series.
func PrintFig3(w io.Writer, series []Fig3Series) {
	fmt.Fprintf(w, "# Figure 3a: labels added by x-th BFS\n")
	for _, s := range series {
		fmt.Fprintf(w, "## %s\n", s.Dataset)
		for _, i := range stats.LogSpacedIndexes(len(s.LabelsPerBFS)) {
			fmt.Fprintf(w, "%d %d\n", i+1, s.LabelsPerBFS[i])
		}
	}
	fmt.Fprintf(w, "\n# Figure 3b: cumulative fraction of labels by x-th BFS\n")
	for _, s := range series {
		fmt.Fprintf(w, "## %s\n", s.Dataset)
		for _, i := range stats.LogSpacedIndexes(len(s.Cumulative)) {
			fmt.Fprintf(w, "%d %.4f\n", i+1, s.Cumulative[i])
		}
	}
	fmt.Fprintf(w, "\n# Figure 3c: label size by vertex percentile\n")
	for _, s := range series {
		fmt.Fprintf(w, "## %s\n", s.Dataset)
		n := len(s.LabelSizes)
		for p := 0; p <= 10; p++ {
			i := p * (n - 1) / 10
			fmt.Fprintf(w, "%.1f %d\n", float64(p)/10, s.LabelSizes[i])
		}
	}
}

// Fig4Series holds one dataset's pair-coverage curves for Figure 4.
type Fig4Series struct {
	Dataset string
	// Ks are the x-axis sample points (number of BFSs performed).
	Ks []int
	// Average[ki] = fraction of pairs answered exactly by the first
	// Ks[ki] roots (Fig 4a).
	Average []float64
	// ByDistance[d][ki] = same restricted to pairs at true distance d
	// (Fig 4b-4d); only distances with enough samples are included.
	ByDistance map[int][]float64
}

// Fig4 measures pair coverage against the number of performed BFSs.
// Coverage after k pruned BFSs equals the exactness of the k-landmark
// estimate for degree-ordered landmarks (Theorem 4.1 makes the pruned
// index answer exactly the pairs the first k roots cover), so the sweep
// reuses one landmark table instead of rebuilding indexes.
func Fig4(cfg Config, recipes []datasets.Recipe, maxK int) []Fig4Series {
	cfg = cfg.Normalize()
	if maxK <= 0 {
		maxK = 1024
	}
	var out []Fig4Series
	for _, ds := range generate(cfg, recipes) {
		n := ds.g.NumVertices()
		k := maxK
		if k > n {
			k = n
		}
		perm := order.ByDegree(ds.g, cfg.Seed)
		lm := baseline.BuildLandmarks(ds.g, perm, k)
		ps := stats.SamplePairs(ds.g, cfg.QueryPairs, cfg.Seed^0xf46)

		s := Fig4Series{Dataset: ds.rec.Name, ByDistance: map[int][]float64{}}
		for _, ki := range stats.LogSpacedIndexes(k + 1) {
			s.Ks = append(s.Ks, ki)
			q := stats.QuerierFunc(func(a, b int32) int { return lm.EstimateWithPrefix(a, b, ki) })
			s.Average = append(s.Average, stats.Coverage(ps, q))
			for d, c := range stats.CoverageByDistance(ps, q) {
				s.ByDistance[d] = append(s.ByDistance[d], c)
			}
		}
		// Drop distances with few samples (noisy curves).
		counts := map[int]int{}
		for _, tr := range ps.Truth {
			if tr >= 0 {
				counts[int(tr)]++
			}
		}
		for d := range s.ByDistance {
			if counts[d] < 50 {
				delete(s.ByDistance, d)
			}
		}
		out = append(out, s)
	}
	return out
}

// PrintFig4 writes the average and per-distance coverage curves.
func PrintFig4(w io.Writer, series []Fig4Series) {
	fmt.Fprintf(w, "# Figure 4a: average pair coverage vs number of BFSs\n")
	for _, s := range series {
		fmt.Fprintf(w, "## %s\n", s.Dataset)
		for i, k := range s.Ks {
			fmt.Fprintf(w, "%d %.4f\n", k, s.Average[i])
		}
	}
	fmt.Fprintf(w, "\n# Figure 4b-4d: coverage by true distance\n")
	for _, s := range series {
		fmt.Fprintf(w, "## %s\n", s.Dataset)
		ds := make([]int, 0, len(s.ByDistance))
		for d := range s.ByDistance {
			ds = append(ds, d)
		}
		sort.Ints(ds)
		for _, d := range ds {
			fmt.Fprintf(w, "### d=%d\n", d)
			for i, k := range s.Ks {
				fmt.Fprintf(w, "%d %.4f\n", k, s.ByDistance[d][i])
			}
		}
	}
}

// Fig5Point is one (t, measurements) sample of Figure 5's sweep over the
// number of bit-parallel BFSs.
type Fig5Point struct {
	T               int
	Preprocess      time.Duration
	QueryTime       time.Duration
	NormalLabelSize float64
	IndexBytes      int64
}

// Fig5Series is one dataset's sweep.
type Fig5Series struct {
	Dataset string
	Points  []Fig5Point
}

// Fig5 sweeps the bit-parallel BFS count t over powers of four, as in
// the paper's Figure 5 (x axis 1..1024).
func Fig5(cfg Config, recipes []datasets.Recipe, ts []int) ([]Fig5Series, error) {
	cfg = cfg.Normalize()
	if len(ts) == 0 {
		ts = []int{1, 4, 16, 64, 256, 1024}
	}
	var out []Fig5Series
	for _, ds := range generate(cfg, recipes) {
		s := Fig5Series{Dataset: ds.rec.Name}
		pairs := queryPairs(ds.g.NumVertices(), cfg.QueryPairs, cfg.Seed^0xf56)
		for _, t := range ts {
			if t > ds.g.NumVertices() {
				continue
			}
			start := time.Now()
			ix, err := core.Build(ds.g, core.Options{
				Ordering:       order.Degree,
				Seed:           cfg.Seed,
				NumBitParallel: t,
				Workers:        cfg.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("exp: Fig5 %s t=%d: %w", ds.rec.Name, t, err)
			}
			p := Fig5Point{T: t, Preprocess: time.Since(start)}
			st := ix.ComputeStats()
			p.NormalLabelSize = st.AvgLabelSize
			p.IndexBytes = st.IndexBytes
			p.QueryTime = timePerQuery(len(pairs), func(i int) {
				ix.Query(pairs[i][0], pairs[i][1])
			})
			s.Points = append(s.Points, p)
		}
		out = append(out, s)
	}
	return out, nil
}

// PrintFig5 writes the four panels of Figure 5.
func PrintFig5(w io.Writer, series []Fig5Series) {
	for _, panel := range []struct {
		title string
		cell  func(p Fig5Point) string
	}{
		{"Figure 5a: preprocessing time vs #bit-parallel BFSs", func(p Fig5Point) string { return durShort(p.Preprocess) }},
		{"Figure 5b: query time", func(p Fig5Point) string { return durShort(p.QueryTime) }},
		{"Figure 5c: average normal label size", func(p Fig5Point) string { return fmt.Sprintf("%.1f", p.NormalLabelSize) }},
		{"Figure 5d: index size", func(p Fig5Point) string { return bytesShort(p.IndexBytes) }},
	} {
		fmt.Fprintf(w, "# %s\n", panel.title)
		for _, s := range series {
			fmt.Fprintf(w, "## %s\n", s.Dataset)
			for _, p := range s.Points {
				fmt.Fprintf(w, "%d %s\n", p.T, panel.cell(p))
			}
		}
		fmt.Fprintln(w)
	}
}
