package exp

import (
	"testing"

	"pll/internal/datasets"
)

// TestTable3LargeRecipesAtTinyScale exercises the six large-dataset
// recipes (Skitter..Indochina) through the full Table 3 driver at a
// scale where everything finishes quickly, covering the DNF paths.
func TestTable3LargeRecipesAtTinyScale(t *testing.T) {
	cfg := Config{
		ScaleDiv:   4096,
		Seed:       3,
		QueryPairs: 300,
		HHLMaxN:    1500,
		TDMaxBag:   8,
		TDMaxCore:  800,
	}
	var large []datasets.Recipe
	for _, r := range datasets.All() {
		if !r.Small {
			large = append(large, r)
		}
	}
	if len(large) != 6 {
		t.Fatalf("large recipes = %d, want 6", len(large))
	}
	rows, err := Table3(cfg, large)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PLL.QueryTime <= 0 {
			t.Fatalf("%s: missing PLL measurement", r.Dataset)
		}
		if r.BitParallel != 64 {
			t.Fatalf("%s: large datasets use t=64", r.Dataset)
		}
	}
}

// TestFig5RespectsVertexCount drops sweep points above n rather than
// failing.
func TestFig5RespectsVertexCount(t *testing.T) {
	cfg := tinyCfg()
	cfg.ScaleDiv = 8192 // tiny graphs
	series, err := Fig5(cfg, datasets.Fig3Sets()[:1], []int{1, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range series[0].Points {
		if p.T > 1<<19 {
			t.Fatal("oversized sweep point not dropped")
		}
	}
}

// TestFig2AllRecipes covers the large-dataset statistics path.
func TestFig2AllRecipes(t *testing.T) {
	cfg := Config{ScaleDiv: 8192, Seed: 1, QueryPairs: 200}
	series := Fig2(cfg, datasets.All())
	if len(series) != 11 {
		t.Fatalf("series = %d, want 11", len(series))
	}
}
