package exp

import (
	"bytes"
	"strings"
	"testing"

	"pll/internal/datasets"
)

// tinyCfg keeps every experiment test laptop-fast.
func tinyCfg() Config {
	return Config{
		ScaleDiv:   512,
		Seed:       7,
		QueryPairs: 1500,
		HHLMaxN:    3000,
		TDMaxBag:   8,
		TDMaxCore:  1500,
	}
}

func TestTable3ShapeOnSmallDatasets(t *testing.T) {
	// Asymptotic shape needs non-toy sizes: ScaleDiv 64 gives ~1-2k
	// vertices for the small datasets, enough for the Θ(nm) HHL
	// construction to fall visibly behind PLL.
	cfg := tinyCfg()
	cfg.ScaleDiv = 64
	rows, err := Table3(cfg, datasets.Small()[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PLL.DNF {
			t.Fatalf("%s: PLL must never DNF", r.Dataset)
		}
		if r.PLL.Indexing <= 0 || r.PLL.QueryTime <= 0 || r.PLL.LabelSize <= 0 {
			t.Fatalf("%s: empty PLL measurements %+v", r.Dataset, r.PLL)
		}
		// The paper's headline: PLL indexes far faster than the
		// HHL-style construction when the latter finishes.
		if !r.HHL.DNF && r.HHL.Indexing < r.PLL.Indexing {
			t.Fatalf("%s: HHL indexing %v faster than PLL %v — comparison shape inverted",
				r.Dataset, r.HHL.Indexing, r.PLL.Indexing)
		}
		// PLL queries are orders of magnitude below online BFS at real
		// scales (see EXPERIMENTS.md and the root benchmarks, which
		// measure this without contention). Unit tests run in parallel
		// with instrumentation, so require only the direction here.
		if r.BFSQuery < r.PLL.QueryTime {
			t.Fatalf("%s: BFS query %v faster than PLL %v",
				r.Dataset, r.BFSQuery, r.PLL.QueryTime)
		}
	}
}

func TestTable3PrintAndTable1(t *testing.T) {
	rows, err := Table3(tinyCfg(), datasets.Small()[:2])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Dataset", "PLL-IT", "Gnutella", "BFS-QT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 3 output missing %q:\n%s", want, out)
		}
	}
	t1 := Table1(rows)
	if len(t1) != 6 {
		t.Fatalf("Table1 rows = %d, want 6", len(t1))
	}
	buf.Reset()
	PrintTable1(&buf, t1)
	if !strings.Contains(buf.String(), "PLL") || !strings.Contains(buf.String(), "HHL") {
		t.Fatal("Table 1 output incomplete")
	}
}

func TestTable5RandomWorstDegreeBest(t *testing.T) {
	cfg := tinyCfg()
	rows, err := Table5(cfg, datasets.Small()[:3], 0 /* no DNF guard at this scale */)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RandomDNF {
			continue
		}
		// Table 5's shape: Random much worse than Degree; Closeness in
		// the same ballpark as Degree.
		if r.Random < 1.3*r.Degree {
			t.Fatalf("%s: Random %.1f not clearly worse than Degree %.1f",
				r.Dataset, r.Random, r.Degree)
		}
		if r.Closeness > r.Random {
			t.Fatalf("%s: Closeness %.1f worse than Random %.1f", r.Dataset, r.Closeness, r.Random)
		}
	}
	var buf bytes.Buffer
	PrintTable5(&buf, rows)
	if !strings.Contains(buf.String(), "Random") {
		t.Fatal("Table 5 header missing")
	}
}

func TestTable5DNFGuard(t *testing.T) {
	rows, err := Table5(tinyCfg(), datasets.Small()[:1], 1 /* force DNF */)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0].RandomDNF {
		t.Fatal("expected Random DNF under tiny guard")
	}
	var buf bytes.Buffer
	PrintTable5(&buf, rows)
	if !strings.Contains(buf.String(), "DNF") {
		t.Fatal("DNF cell not printed")
	}
}

func TestFig1Walkthrough(t *testing.T) {
	steps, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 12 {
		t.Fatalf("steps = %d, want one per vertex", len(steps))
	}
	if steps[0].Labeled != 12 {
		t.Fatalf("first BFS should label all 12 vertices, labeled %d", steps[0].Labeled)
	}
	// Figure 1's phenomenon: later searches label fewer vertices.
	if steps[1].Labeled >= steps[0].Labeled {
		t.Fatal("second BFS should be pruned below the first")
	}
	last := steps[len(steps)-1]
	if last.Labeled > 2 {
		t.Fatalf("final BFS labeled %d vertices; pruning should leave ~1", last.Labeled)
	}
	var buf bytes.Buffer
	PrintFig1(&buf, steps)
	if !strings.Contains(buf.String(), "labeled") {
		t.Fatal("Fig1 output incomplete")
	}
}

func TestFig2Series(t *testing.T) {
	series := Fig2(tinyCfg(), datasets.Small()[:2])
	if len(series) != 2 {
		t.Fatal("series count wrong")
	}
	for _, s := range series {
		if len(s.Degrees) == 0 || s.CumFreq[0] != int64(s.N) {
			t.Fatalf("%s: CCDF malformed", s.Dataset)
		}
		sum := s.UnreachablePct / 100
		for _, f := range s.DistanceFrac {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: distance fractions sum %v", s.Dataset, sum)
		}
		// Small-world shape: mass concentrated at small distances.
		if len(s.DistanceFrac) > 40 {
			t.Fatalf("%s: distances extend to %d — not small-world", s.Dataset, len(s.DistanceFrac))
		}
	}
	var buf bytes.Buffer
	PrintFig2(&buf, series)
	if !strings.Contains(buf.String(), "Table 4") || !strings.Contains(buf.String(), "Figure 2") {
		t.Fatal("Fig2 output incomplete")
	}
}

func TestFig3PruningDecay(t *testing.T) {
	series, err := Fig3(tinyCfg(), datasets.Fig3Sets()[:1])
	if err != nil {
		t.Fatal(err)
	}
	s := series[0]
	if len(s.LabelsPerBFS) == 0 {
		t.Fatal("no construction trace")
	}
	// Figure 3a/3b: the beginning dominates. The first 10% of BFSs must
	// account for well over half the labels.
	tenth := len(s.Cumulative)/10 + 1
	if s.Cumulative[tenth] < 0.5 {
		t.Fatalf("first 10%% of BFSs stored only %.2f of labels", s.Cumulative[tenth])
	}
	if s.Cumulative[len(s.Cumulative)-1] < 0.9999 {
		t.Fatal("cumulative curve must end at 1")
	}
	// Figure 3c: label sizes ascending.
	for i := 1; i < len(s.LabelSizes); i++ {
		if s.LabelSizes[i-1] > s.LabelSizes[i] {
			t.Fatal("label size distribution not sorted")
		}
	}
	var buf bytes.Buffer
	PrintFig3(&buf, series)
	if !strings.Contains(buf.String(), "Figure 3a") {
		t.Fatal("Fig3 output incomplete")
	}
}

func TestFig4CoverageMonotoneAndDistantFirst(t *testing.T) {
	series := Fig4(tinyCfg(), datasets.Fig4Sets()[:1], 256)
	s := series[0]
	if len(s.Ks) == 0 {
		t.Fatal("no sweep points")
	}
	for i := 1; i < len(s.Average); i++ {
		if s.Average[i] < s.Average[i-1]-1e-9 {
			t.Fatal("average coverage must be monotone in k")
		}
	}
	if s.Average[len(s.Average)-1] < 0.8 {
		t.Fatalf("coverage after %d BFSs = %.2f; degree-ordered roots should cover most pairs",
			s.Ks[len(s.Ks)-1], s.Average[len(s.Average)-1])
	}
	// Figure 4b-d: distant pairs are covered earlier than close pairs.
	// Compare coverage at an early k between a small and a large distance.
	if len(s.ByDistance) >= 2 {
		minD, maxD := 1<<30, -1
		for d := range s.ByDistance {
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
		early := 2 // the 3rd sweep point (k=4)
		if early < len(s.Ks) && minD < maxD {
			if s.ByDistance[maxD][early] < s.ByDistance[minD][early] {
				t.Fatalf("at k=%d distant pairs (d=%d) covered %.2f < close pairs (d=%d) %.2f — paper's Figure 4 shape inverted",
					s.Ks[early], maxD, s.ByDistance[maxD][early], minD, s.ByDistance[minD][early])
			}
		}
	}
	var buf bytes.Buffer
	PrintFig4(&buf, series)
	if !strings.Contains(buf.String(), "Figure 4a") {
		t.Fatal("Fig4 output incomplete")
	}
}

func TestFig5SweepShape(t *testing.T) {
	series, err := Fig5(tinyCfg(), datasets.Fig3Sets()[:1], []int{1, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	s := series[0]
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Figure 5c: more bit-parallel roots shrink the normal labels.
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	if last.NormalLabelSize >= first.NormalLabelSize {
		t.Fatalf("normal label size did not shrink: t=%d -> %.1f, t=%d -> %.1f",
			first.T, first.NormalLabelSize, last.T, last.NormalLabelSize)
	}
	var buf bytes.Buffer
	PrintFig5(&buf, series)
	for _, want := range []string{"Figure 5a", "Figure 5b", "Figure 5c", "Figure 5d"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Fig5 output missing %q", want)
		}
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.ScaleDiv == 0 || c.QueryPairs == 0 || c.HHLMaxN == 0 || c.TDMaxBag == 0 || c.TDMaxCore == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}
