package exp

import (
	"bytes"
	"strings"
	"testing"

	"pll/internal/datasets"
)

func TestApproxErrorClosePairsWorse(t *testing.T) {
	series := ApproxError(tinyCfg(), datasets.Fig4Sets()[:1], 32)
	if len(series) != 1 {
		t.Fatal("series count wrong")
	}
	s := series[0]
	if len(s.Rows) < 2 {
		t.Skipf("not enough distance buckets at tiny scale: %d", len(s.Rows))
	}
	// §2.2 / §7.3.3: close pairs are covered far worse than distant
	// pairs. Compare the smallest and the largest distance buckets.
	first, last := s.Rows[0], s.Rows[len(s.Rows)-1]
	if first.ExactFrac > last.ExactFrac {
		t.Fatalf("close pairs (d=%d, %.2f exact) should be harder than distant (d=%d, %.2f exact)",
			first.Distance, first.ExactFrac, last.Distance, last.ExactFrac)
	}
	// Estimates are upper bounds: relative error can never be negative.
	for _, r := range s.Rows {
		if r.MeanRelError < 0 {
			t.Fatalf("negative mean relative error at d=%d", r.Distance)
		}
	}
}

func TestApproxErrorPrint(t *testing.T) {
	series := ApproxError(tinyCfg(), datasets.Fig4Sets()[:1], 16)
	var buf bytes.Buffer
	PrintApproxError(&buf, series)
	if !strings.Contains(buf.String(), "mean-rel-err") {
		t.Fatal("output incomplete")
	}
}
