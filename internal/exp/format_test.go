package exp

import (
	"testing"
	"time"
)

func TestDurShort(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.5us",
		2500 * time.Microsecond: "2.5ms",
		1500 * time.Millisecond: "1.5s",
	}
	for in, want := range cases {
		if got := durShort(in); got != want {
			t.Fatalf("durShort(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestBytesShort(t *testing.T) {
	cases := map[int64]string{
		12:      "12B",
		2048:    "2.0KB",
		3 << 20: "3.0MB",
		5 << 30: "5.0GB",
	}
	for in, want := range cases {
		if got := bytesShort(in); got != want {
			t.Fatalf("bytesShort(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestDnfOr(t *testing.T) {
	if dnfOr(MethodResult{DNF: true}, "x") != "DNF" {
		t.Fatal("DNF not reported")
	}
	if dnfOr(MethodResult{}, "x") != "x" {
		t.Fatal("value not passed through")
	}
}

func TestTimePerQuery(t *testing.T) {
	if timePerQuery(0, func(int) {}) != 0 {
		t.Fatal("zero queries should cost zero")
	}
	d := timePerQuery(10, func(int) { time.Sleep(time.Millisecond) })
	if d < 500*time.Microsecond {
		t.Fatalf("per-query time %v implausibly low", d)
	}
}
