package exp

import (
	"fmt"
	"io"
	"sort"

	"pll/internal/baseline"
	"pll/internal/datasets"
	"pll/internal/order"
	"pll/internal/stats"
)

// ApproxErrorRow quantifies the landmark-based approximate method's
// error at one true distance — the §2.2 phenomenon motivating the paper:
// estimates are good on average but poor exactly where applications need
// them, at close pairs.
type ApproxErrorRow struct {
	Distance     int
	Pairs        int
	ExactFrac    float64 // fraction answered exactly
	MeanRelError float64 // mean (est - true) / true
}

// ApproxErrorSeries is one dataset's error profile.
type ApproxErrorSeries struct {
	Dataset   string
	Landmarks int
	Rows      []ApproxErrorRow
}

// ApproxError measures the standard landmark method (k degree-ordered
// landmarks) against ground truth, bucketed by true distance.
func ApproxError(cfg Config, recipes []datasets.Recipe, landmarks int) []ApproxErrorSeries {
	cfg = cfg.Normalize()
	if landmarks <= 0 {
		landmarks = 64
	}
	var out []ApproxErrorSeries
	for _, ds := range generate(cfg, recipes) {
		perm := order.ByDegree(ds.g, cfg.Seed)
		lm := baseline.BuildLandmarks(ds.g, perm, landmarks)
		ps := stats.SamplePairs(ds.g, cfg.QueryPairs, cfg.Seed^0xae77)

		type acc struct {
			pairs, exact int
			relSum       float64
		}
		buckets := map[int]*acc{}
		for i := range ps.S {
			truth := ps.Truth[i]
			if truth <= 0 {
				continue // skip self and unreachable pairs
			}
			est := lm.Estimate(ps.S[i], ps.T[i])
			if est == baseline.Unreachable {
				continue
			}
			b := buckets[int(truth)]
			if b == nil {
				b = &acc{}
				buckets[int(truth)] = b
			}
			b.pairs++
			if est == int(truth) {
				b.exact++
			}
			b.relSum += float64(est-int(truth)) / float64(truth)
		}
		s := ApproxErrorSeries{Dataset: ds.rec.Name, Landmarks: landmarks}
		ds2 := make([]int, 0, len(buckets))
		for d := range buckets {
			ds2 = append(ds2, d)
		}
		sort.Ints(ds2)
		for _, d := range ds2 {
			b := buckets[d]
			if b.pairs < 30 {
				continue // too noisy
			}
			s.Rows = append(s.Rows, ApproxErrorRow{
				Distance:     d,
				Pairs:        b.pairs,
				ExactFrac:    float64(b.exact) / float64(b.pairs),
				MeanRelError: b.relSum / float64(b.pairs),
			})
		}
		out = append(out, s)
	}
	return out
}

// PrintApproxError writes the per-distance error profile.
func PrintApproxError(w io.Writer, series []ApproxErrorSeries) {
	fmt.Fprintf(w, "# Landmark-based approximate method: error by true distance (§2.2 motivation)\n")
	for _, s := range series {
		fmt.Fprintf(w, "## %s (%d degree-ordered landmarks)\n", s.Dataset, s.Landmarks)
		fmt.Fprintf(w, "%-9s %8s %10s %12s\n", "distance", "pairs", "exact", "mean-rel-err")
		for _, r := range s.Rows {
			fmt.Fprintf(w, "%-9d %8d %9.1f%% %12.3f\n", r.Distance, r.Pairs, 100*r.ExactFrac, r.MeanRelError)
		}
	}
}
