package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// Golden-file harness in the style of
// golang.org/x/tools/go/analysis/analysistest: fixture packages live
// under testdata/src/<path> (ignored by the go tool), and each line
// that should produce a finding carries a
//
//	// want `regex` [`regex` ...]
//
// comment; RunTest fails on any unmatched diagnostic or unsatisfied
// expectation. Fixture imports resolve against testdata/src first
// (so a fake pll package can stand in for the real one) and the
// standard library second.

// RunTest loads testdata/src/<path>, runs one analyzer through the
// directive-aware driver, and matches diagnostics against the
// fixture's want comments.
func RunTest(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	ld := newFixtureLoader("testdata/src")
	pkg, err := ld.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}
	checkWants(t, ld.fset, pkg.Files, diags)
}

// RunTestDiags is RunTest returning the surviving diagnostics so a
// test can additionally exercise their suggested fixes.
func RunTestDiags(t *testing.T, a *Analyzer, path string) (*token.FileSet, []Diagnostic) {
	t.Helper()
	ld := newFixtureLoader("testdata/src")
	pkg, err := ld.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}
	checkWants(t, ld.fset, pkg.Files, diags)
	return ld.fset, diags
}

// want is one pending expectation on a (file, line).
type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRx = regexp.MustCompile("`([^`]+)`")

// collectWants parses the fixtures' want comments, keyed by file:line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := indexWord(text, "want")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRx.FindAllStringSubmatch(text[i:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// indexWord finds "// want" style markers without tripping on
// substrings of ordinary prose.
func indexWord(text, word string) int {
	for i := 0; i+len(word) <= len(text); i++ {
		if text[i:i+len(word)] != word {
			continue
		}
		before := i == 0 || text[i-1] == ' ' || text[i-1] == '/' || text[i-1] == '\t'
		after := i+len(word) == len(text) || text[i+len(word)] == ' ' || text[i+len(word)] == '`'
		if before && after {
			return i
		}
	}
	return -1
}

// checkWants reconciles diagnostics against expectations.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

// fixtureLoader resolves imports under a testdata/src root, falling
// back to the standard library.
type fixtureLoader struct {
	fset    *token.FileSet
	root    string
	pkgs    map[string]*Package
	loading map[string]bool
	stdlib  types.Importer
}

func newFixtureLoader(root string) *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		fset:    fset,
		root:    root,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		stdlib:  importer.ForCompiler(fset, "source", nil),
	}
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(ld.root, path)); err == nil && st.IsDir() {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.stdlib.Import(path)
}

func (ld *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)
	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture %s has no .go files", dir)
	}
	files, err := parseDir(ld.fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg, err := typeCheck(ld.fset, path, files, ld)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	ld.pkgs[path] = pkg
	return pkg, nil
}
