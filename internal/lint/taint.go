package lint

import (
	"go/ast"
	"go/types"
)

// Intra-procedural taint tracking shared by the data-flow analyzers
// (untrustedalloc, mmapwrite, distsentinel). Each analyzer declares
// what a source looks like; the tracker computes, per function body, a
// fixed point of local variables reached by source values through
// assignments, arithmetic, slicing and range statements. The analysis
// is deliberately function-local: values escaping through calls or
// struct fields are handled by the analyzers' marker directives
// (pllvet:untrusted, pllvet:roview, pllvet:sharedro), which turn the
// relevant cross-function boundaries into declared sources.

// taintConfig declares analyzer-specific taint behavior.
type taintConfig struct {
	// source reports whether e is a direct taint source (a decoding
	// call, a marked field read, ...). It is consulted before the
	// structural rules.
	source func(e ast.Expr) bool
	// tupleResults reports per-result taint for a multi-result call
	// used as the RHS of a tuple assignment (nil = no taint).
	tupleResults func(call *ast.CallExpr) []bool
	// call decides taint for a call expression that is not a source,
	// not a conversion and not handled structurally. handled=false
	// falls through to "untainted".
	call func(t *tainter, call *ast.CallExpr) (tainted, handled bool)
	// binary propagates taint through arithmetic (d1+d2).
	binary bool
	// index propagates taint from a slice to its elements (counts[v]).
	index bool
}

// tainter holds the per-function fixed point.
type tainter struct {
	pass *Pass
	cfg  taintConfig
	objs map[types.Object]bool
}

// newTainter computes the taint fixed point over one function body.
func newTainter(pass *Pass, body ast.Node, cfg taintConfig) *tainter {
	t := &tainter{pass: pass, cfg: cfg, objs: map[types.Object]bool{}}
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				changed = t.assign(s.Lhs, s.Rhs) || changed
			case *ast.ValueSpec:
				if len(s.Values) > 0 {
					lhs := make([]ast.Expr, len(s.Names))
					for i, name := range s.Names {
						lhs[i] = name
					}
					changed = t.assign(lhs, s.Values) || changed
				}
			case *ast.RangeStmt:
				// Ranging over a tainted slice taints the value
				// variable (the index stays clean).
				if t.cfg.index && s.Value != nil && t.tainted(s.X) {
					changed = t.mark(s.Value) || changed
				}
			}
			return true
		})
		if !changed {
			return t
		}
	}
}

// assign propagates RHS taint to LHS objects; reports any change.
func (t *tainter) assign(lhs, rhs []ast.Expr) bool {
	changed := false
	if len(lhs) > 1 && len(rhs) == 1 {
		// Tuple assignment from one multi-result call.
		call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if !ok || t.cfg.tupleResults == nil {
			return false
		}
		results := t.cfg.tupleResults(call)
		for i, l := range lhs {
			if i < len(results) && results[i] {
				changed = t.mark(l) || changed
			}
		}
		return changed
	}
	for i, l := range lhs {
		if i < len(rhs) && t.tainted(rhs[i]) {
			changed = t.mark(l) || changed
		}
	}
	return changed
}

// mark taints the object behind an assignable expression.
func (t *tainter) mark(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := t.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = t.pass.TypesInfo.Uses[id]
	}
	if obj == nil || t.objs[obj] {
		return false
	}
	t.objs[obj] = true
	return true
}

// tainted reports whether the value of e derives from a source.
func (t *tainter) tainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if t.cfg.source != nil && t.cfg.source(e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := t.pass.TypesInfo.Uses[x]
		return obj != nil && t.objs[obj]
	case *ast.ParenExpr:
		return t.tainted(x.X)
	case *ast.BinaryExpr:
		return t.cfg.binary && (t.tainted(x.X) || t.tainted(x.Y))
	case *ast.UnaryExpr:
		return t.tainted(x.X)
	case *ast.StarExpr:
		return t.tainted(x.X)
	case *ast.IndexExpr:
		// Generic instantiation (f[T]) shares this node; element taint
		// only applies to genuine indexing of a tainted slice.
		if t.cfg.index && t.tainted(x.X) {
			if tv, ok := t.pass.TypesInfo.Types[x.X]; ok && !tv.IsType() {
				return true
			}
		}
		return false
	case *ast.SliceExpr:
		return t.tainted(x.X)
	case *ast.SelectorExpr:
		// A field read of a tainted struct value stays tainted; the
		// source hook has already had its chance to match marked types.
		return t.tainted(x.X)
	case *ast.CallExpr:
		if tv, ok := t.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
			// Conversion: taint follows the operand.
			return len(x.Args) == 1 && t.tainted(x.Args[0])
		}
		if t.cfg.call != nil {
			if tainted, handled := t.cfg.call(t, x); handled {
				return tainted
			}
		}
		return false
	}
	return false
}

// calleeFunc resolves a call's target to its types.Func, unwrapping
// parens and generic instantiations. nil for builtins, func values and
// indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(f.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(f.X)
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isBuiltin reports whether a call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// eachFunc visits every function with a body: declarations and
// package-level function literals alike. Nested literals are reached
// by the analyzers' own traversal of the enclosing body.
func eachFunc(files []*ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd, fd.Body)
			}
		}
	}
}
