package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression and marker directives. Three forms, all mandatory-reason:
//
//	//pllvet:ignore <analyzer> <reason>    on or above the flagged line
//	                                       (or in a func doc comment to
//	                                       cover the whole function)
//	// pllvet:untrusted                    in a struct type's doc: its
//	                                       fields hold decoded input
//	                                       (untrustedalloc taint source)
//	// pllvet:roview                       in a function's doc: its
//	                                       result slices alias shared
//	                                       read-only pages (mmapwrite
//	                                       taint source)
//	// pllvet:sharedro                     in a struct type's doc: its
//	                                       slice fields are read-only
//	                                       once published (mmapwrite)
//
// ignore directives bind tightly: an analyzer name that matches nothing
// still suppresses only that analyzer, and a missing reason is itself
// reported so suppressions stay documented.

const (
	directiveIgnore    = "pllvet:ignore"
	markerUntrusted    = "pllvet:untrusted"
	markerReadOnlyView = "pllvet:roview"
	markerSharedRO     = "pllvet:sharedro"
)

// ignoreDirective is one parsed //pllvet:ignore.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	// lines the directive covers (file-scoped); for function-level
	// directives start/end span the whole body.
	file       *token.File
	start, end int // line range, inclusive
	malformed  string
}

// directiveIndex resolves whether a diagnostic position is suppressed.
type directiveIndex struct {
	fset    *token.FileSet
	ignores []*ignoreDirective
}

func newDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{fset: fset}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		// Function-doc directives cover the whole function body.
		funcDocs := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			fd := funcDocs[cg]
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directiveIgnore) {
					continue
				}
				d := parseIgnore(text, c.Pos())
				d.file = tf
				line := tf.Line(c.Pos())
				if fd != nil && fd.Body != nil {
					d.start, d.end = tf.Line(fd.Body.Lbrace), tf.Line(fd.Body.Rbrace)
				} else {
					// A directive covers its own line (the trailing
					// form) and the next (the line-above form).
					d.start, d.end = line, line+1
				}
				idx.ignores = append(idx.ignores, d)
			}
		}
	}
	return idx
}

// parseIgnore splits "pllvet:ignore analyzer reason..." and records
// what is missing.
func parseIgnore(text string, pos token.Pos) *ignoreDirective {
	rest := strings.TrimSpace(strings.TrimPrefix(text, directiveIgnore))
	d := &ignoreDirective{pos: pos}
	fields := strings.Fields(rest)
	switch {
	case len(fields) == 0:
		d.malformed = "pllvet:ignore needs an analyzer name and a reason"
	case len(fields) == 1:
		d.analyzer = fields[0]
		d.malformed = "pllvet:ignore " + fields[0] + " needs a reason"
	default:
		d.analyzer = fields[0]
		d.reason = strings.Join(fields[1:], " ")
	}
	return d
}

// suppressed reports whether a diagnostic of analyzer name at pos is
// covered by a well-formed ignore directive.
func (idx *directiveIndex) suppressed(name string, pos token.Pos) bool {
	tf := idx.fset.File(pos)
	if tf == nil {
		return false
	}
	line := tf.Line(pos)
	for _, d := range idx.ignores {
		if d.malformed != "" || d.analyzer != name || d.file != tf {
			continue
		}
		if line >= d.start && line <= d.end {
			return true
		}
	}
	return false
}

// problems reports malformed directives as diagnostics of the "pllvet"
// pseudo-analyzer, so an undocumented suppression fails the build.
func (idx *directiveIndex) problems() []Diagnostic {
	var out []Diagnostic
	for _, d := range idx.ignores {
		if d.malformed != "" {
			out = append(out, Diagnostic{Analyzer: "pllvet", Pos: d.pos, Message: d.malformed})
		}
	}
	return out
}

// hasMarker reports whether a doc comment group carries the given
// marker directive (pllvet:untrusted, pllvet:roview, pllvet:sharedro).
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}
