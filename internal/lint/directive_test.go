package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestIgnoreDirectiveRanges(t *testing.T) {
	src := `package d

func a() {
	x := 1 //pllvet:ignore fake trailing form covers its own line
	_ = x
	//pllvet:ignore fake line-above form covers the next line
	y := 2
	_ = y
}

//pllvet:ignore fake doc form covers the whole body
func b() {
	z := 3
	_ = z
}
`
	fset, f := parseOne(t, src)
	idx := newDirectiveIndex(fset, []*ast.File{f})
	if got := len(idx.problems()); got != 0 {
		t.Fatalf("well-formed directives reported %d problems", got)
	}
	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	cases := []struct {
		line int
		want bool
	}{
		{4, true},  // trailing: own line
		{5, true},  // a directive also covers the following line
		{7, true},  // line above
		{8, false}, // coverage stops after one line
		{13, true}, // inside b's body, via doc directive
		{14, true}, // still inside b
	}
	for _, c := range cases {
		if got := idx.suppressed("fake", pos(c.line)); got != c.want {
			t.Errorf("line %d: suppressed = %v, want %v", c.line, got, c.want)
		}
	}
	if idx.suppressed("other", pos(4)) {
		t.Error("directive for one analyzer suppressed another")
	}
}

func TestMalformedIgnoresReported(t *testing.T) {
	src := `package d

func a() {
	x := 1 //pllvet:ignore
	y := 2 //pllvet:ignore mmapwrite
	_, _ = x, y
}
`
	fset, f := parseOne(t, src)
	idx := newDirectiveIndex(fset, []*ast.File{f})
	probs := idx.problems()
	if len(probs) != 2 {
		t.Fatalf("got %d problems, want 2: %v", len(probs), probs)
	}
	if !strings.Contains(probs[0].Message, "needs an analyzer name") {
		t.Errorf("bare directive: %q", probs[0].Message)
	}
	if !strings.Contains(probs[1].Message, "needs a reason") {
		t.Errorf("reasonless directive: %q", probs[1].Message)
	}
	// A malformed directive must not suppress anything.
	pos := fset.File(f.Pos()).LineStart(5)
	if idx.suppressed("mmapwrite", pos) {
		t.Error("reasonless directive still suppressed its line")
	}
}

func TestHasMarker(t *testing.T) {
	src := `package d

// header holds decoded fields.
//
// pllvet:untrusted — straight from the file.
type header struct{ n int }

// plain is unmarked; its doc mentions pllvet:untrustedish prose that
// must not count.
type plain struct{ n int }
`
	_, f := parseOne(t, src)
	var hdr, pln *ast.GenDecl
	for _, d := range f.Decls {
		gd := d.(*ast.GenDecl)
		switch gd.Specs[0].(*ast.TypeSpec).Name.Name {
		case "header":
			hdr = gd
		case "plain":
			pln = gd
		}
	}
	if !hasMarker(hdr.Doc, markerUntrusted) {
		t.Error("marker on header not detected")
	}
	if hasMarker(pln.Doc, markerUntrusted) {
		t.Error("prose mention counted as a marker")
	}
}
