package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CapAssert enforces the capability-discovery protocol around the
// optional query interfaces (pll.Batcher, pll.Searcher,
// pll.CompositeSearcher, pll.Closer).
//
// Capabilities are probed, never assumed: an oracle that arrived
// through the generic constructors may be any variant, so a
// single-result assertion o.(pll.Batcher) is a latent panic the first
// time a non-batching oracle (or a future variant) flows through.
// The analyzer reports every single-result assertion to a capability
// interface and suggests the two-result form with an explicit guard.
//
// It also polices the error half of the protocol: search queries (KNN,
// Range, NearestIn, Composite) report missing capabilities through
// their error result (ErrNoSearch, ErrStaleSet) rather than by
// panicking, so a discarded error silently converts "this oracle
// cannot search" into "no neighbors found". Calls whose error result
// is dropped — an expression statement or a blank-identifier
// assignment — are flagged.
var CapAssert = &Analyzer{
	Name: "capassert",
	Doc: "flag single-result assertions to capability interfaces and " +
		"discarded search errors (ErrNoSearch, ErrStaleSet)",
	Run: runCapAssert,
}

// searcherMethods are the pll.Searcher and pll.CompositeSearcher
// methods whose error result carries the capability signal.
var searcherMethods = map[string]bool{
	"KNN":       true,
	"Range":     true,
	"NearestIn": true,
	"Composite": true,
}

func runCapAssert(pass *Pass) error {
	// Assertions already in a two-result (comma-ok) context.
	checked := map[*ast.TypeAssertExpr]bool{}
	// Single-LHS definitions v := x.(T), eligible for the mechanical
	// comma-ok rewrite.
	defines := map[*ast.TypeAssertExpr]*ast.AssignStmt{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 {
					return true
				}
				if ta, ok := ast.Unparen(s.Rhs[0]).(*ast.TypeAssertExpr); ok {
					if len(s.Lhs) == 2 {
						checked[ta] = true
					} else if len(s.Lhs) == 1 {
						defines[ta] = s
					}
				}
			case *ast.ValueSpec:
				if len(s.Values) == 1 && len(s.Names) == 2 {
					if ta, ok := ast.Unparen(s.Values[0]).(*ast.TypeAssertExpr); ok {
						checked[ta] = true
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.TypeAssertExpr:
				if x.Type == nil || checked[x] { // x.(type) belongs to a type switch
					return true
				}
				name := capabilityName(pass.TypesInfo.Types[x.Type].Type)
				if name == "" {
					return true
				}
				d := Diagnostic{
					Pos: x.Pos(),
					Message: fmt.Sprintf(
						"single-result assertion to capability interface pll.%s panics on oracles without it; use the two-result form",
						name),
				}
				if def, ok := defines[x]; ok {
					d.SuggestedFixes = []SuggestedFix{commaOKFix(def, name)}
				}
				pass.Report(d)
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
					if m := searchCallee(pass.TypesInfo, call); m != "" {
						pass.Reportf(x.Pos(),
							"result of %s discarded: its error reports missing capabilities (ErrNoSearch, ErrStaleSet)", m)
					}
				}
			case *ast.AssignStmt:
				if len(x.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				m := searchCallee(pass.TypesInfo, call)
				if m == "" {
					return true
				}
				// The error is the last result; a blank there drops the
				// capability signal.
				if last := x.Lhs[len(x.Lhs)-1]; isBlank(last) {
					pass.Reportf(last.Pos(),
						"error of %s assigned to _: it reports missing capabilities (ErrNoSearch, ErrStaleSet)", m)
				}
			}
			return true
		})
	}
	return nil
}

// capabilityName returns the bare interface name if t is one of the
// pll capability interfaces, "" otherwise.
func capabilityName(t types.Type) string {
	if t == nil {
		return ""
	}
	obj := namedObj(t)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "pll" {
		return ""
	}
	if _, ok := obj.Type().Underlying().(*types.Interface); !ok {
		return ""
	}
	switch obj.Name() {
	case "Batcher", "Searcher", "CompositeSearcher", "Closer":
		return obj.Name()
	}
	return ""
}

// searchCallee returns "Method" when call invokes a Searcher-protocol
// method (by name, method receiver, error last result), "" otherwise.
func searchCallee(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || !searcherMethods[fn.Name()] {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
		return ""
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if named, ok := last.(*types.Named); !ok || named.Obj().Name() != "error" {
		return ""
	}
	return fn.Name()
}

// commaOKFix rewrites `v := x.(T)` into the two-result form with an
// explicit guard. The inserted text leans on gofmt (the fix applier
// formats whole files) rather than reproducing indentation.
func commaOKFix(def *ast.AssignStmt, iface string) SuggestedFix {
	return SuggestedFix{
		Message: "use the two-result form and guard the missing capability",
		TextEdits: []TextEdit{
			{Pos: def.Lhs[0].End(), NewText: []byte(", ok")},
			{Pos: def.End(), NewText: []byte(fmt.Sprintf(
				"\nif !ok {\npanic(\"oracle does not implement pll.%s\")\n}", iface))},
		},
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
