package lint

import (
	"go/ast"
	"go/types"
)

// ProfileScope polices the lifetime of context-carried trace state.
//
// trace.FromContext and trace.ProfileFromContext hand out pointers that
// are owned by one in-flight request: the middleware finishes (and may
// commit to the trace ring) the moment the handler returns, so a
// profile stashed in a struct field, a package-level variable, or a
// composite literal outlives its request and keeps being written — a
// data race against the ring's readers and a cross-request corruption
// of whatever trace the pointer ends up in. The analyzer tracks the
// results of those calls (directly and through local variables) and
// reports every store that escapes the request scope. Passing the
// profile down the call stack, nil checks, and method calls on it are
// all fine — only stores that survive the handler are flagged.
var ProfileScope = &Analyzer{
	Name: "profilescope",
	Doc: "flag request-scoped trace profiles (trace.FromContext, " +
		"trace.ProfileFromContext) stored past the request lifetime",
	Run: runProfileScope,
}

// profileSources are the trace package functions whose results are
// request-scoped.
var profileSources = map[string]bool{
	"FromContext":        true,
	"ProfileFromContext": true,
}

func runProfileScope(pass *Pass) error {
	for _, f := range pass.Files {
		// First pass: local variables holding a profile. Only simple
		// `v := trace.ProfileFromContext(...)` shapes are tracked — the
		// idiom the real handlers use — so aliasing through further
		// assignments stays out of scope.
		profileVars := map[types.Object]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok || !isProfileCall(pass.TypesInfo, as.Rhs[0]) {
				return true
			}
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				profileVars[obj] = true
			}
			return true
		})
		isProfile := func(e ast.Expr) bool {
			e = ast.Unparen(e)
			if isProfileCall(pass.TypesInfo, e) {
				return true
			}
			if id, ok := e.(*ast.Ident); ok {
				return profileVars[pass.TypesInfo.ObjectOf(id)]
			}
			return false
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					var rhs ast.Expr
					switch {
					case len(x.Rhs) == len(x.Lhs):
						rhs = x.Rhs[i]
					case len(x.Rhs) == 1:
						rhs = x.Rhs[0]
					default:
						continue
					}
					if !isProfile(rhs) {
						continue
					}
					switch l := ast.Unparen(lhs).(type) {
					case *ast.SelectorExpr:
						pass.Reportf(x.Pos(),
							"request-scoped trace profile stored in a struct field; it is owned by the in-flight request and must not outlive the handler")
					case *ast.IndexExpr:
						pass.Reportf(x.Pos(),
							"request-scoped trace profile stored in a map or slice; it is owned by the in-flight request and must not outlive the handler")
					case *ast.Ident:
						if obj := pass.TypesInfo.ObjectOf(l); obj != nil && obj.Pkg() != nil &&
							obj.Parent() == obj.Pkg().Scope() {
							pass.Reportf(x.Pos(),
								"request-scoped trace profile stored in package-level variable %s; it must not outlive the handler", l.Name)
						}
					}
				}
			case *ast.CompositeLit:
				for _, elt := range x.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isProfile(v) {
						pass.Reportf(v.Pos(),
							"request-scoped trace profile captured in a composite literal; the value may outlive the handler that owns the profile")
					}
				}
			case *ast.ValueSpec:
				// Package-level `var p = trace.ProfileFromContext(...)`.
				for i, name := range x.Names {
					if i >= len(x.Values) || !isProfileCall(pass.TypesInfo, x.Values[i]) {
						continue
					}
					if obj := pass.TypesInfo.ObjectOf(name); obj != nil && obj.Pkg() != nil &&
						obj.Parent() == obj.Pkg().Scope() {
						pass.Reportf(x.Values[i].Pos(),
							"request-scoped trace profile stored in package-level variable %s; it must not outlive the handler", name.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// isProfileCall reports whether e is a call to one of the trace
// package's request-scoped accessors.
func isProfileCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "trace" && profileSources[fn.Name()]
}
