package lint

import (
	"go/ast"
	"go/types"
)

// MmapWrite flags writes through slices that alias memory-mapped flat
// container sections.
//
// pll.Open serves a flat container zero-copy: the query arrays of the
// returned index are unsafe.Slice views over the mapped file image,
// whose pages the kernel shares read-only across every process serving
// the same file. A single write through such a view faults (PROT_READ)
// or, worse, corrupts the file for every reader if the mapping is ever
// widened — so views must be treated as immutable everywhere.
//
// The contract is declared in source and enforced here: functions
// whose doc carries `pllvet:roview` return aliasing views (flatInts,
// (*flatParser).u8s), and struct types marked `pllvet:sharedro` hold
// slice fields that may alias a mapping once published
// (core.flatParser, hubsearch.Inverted). The analyzer taints those
// values and reports element assignments, copy() into them, and
// append() onto them. Builders that legitimately fill the arrays
// before publication carry function-level
// //pllvet:ignore mmapwrite <reason> directives.
var MmapWrite = &Analyzer{
	Name: "mmapwrite",
	Doc: "flag writes into slices derived from flat-section accessors " +
		"(shared read-only mapped pages)",
	Run: runMmapWrite,
}

func runMmapWrite(pass *Pass) error {
	shared := markedStructs(pass, markerSharedRO)
	roFuncs := markedFuncs(pass, markerReadOnlyView)
	cfg := taintConfig{
		binary: false,
		index:  false, // elements are scalar copies; only the slice matters
		call: func(t *tainter, call *ast.CallExpr) (bool, bool) {
			// unsafe.Slice(&view[0], n) re-derives a view over the
			// same backing array. (unsafe builtins resolve to
			// *types.Builtin, not *types.Func, hence no calleeFunc.)
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Slice" {
				if _, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Builtin); ok &&
					len(call.Args) > 0 && t.tainted(pointerBase(call.Args[0])) {
					return true, true
				}
			}
			return false, false
		},
	}
	cfg.source = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, x)
			return fn != nil && roFuncs[fn]
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return false
			}
			if !shared[namedObj(sel.Recv())] {
				return false
			}
			// Only the slice fields alias the mapping; scalar fields
			// (lengths, flags) are free to use.
			_, isSlice := sel.Obj().Type().Underlying().(*types.Slice)
			return isSlice
		}
		return false
	}
	eachFunc(pass.Files, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		t := newTainter(pass, body, cfg)
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && t.tainted(ix.X) {
						pass.Reportf(lhs.Pos(),
							"write into %s, a slice aliasing read-only mapped flat-container pages",
							types.ExprString(ix.X))
					}
				}
			case *ast.IncDecStmt:
				if ix, ok := ast.Unparen(s.X).(*ast.IndexExpr); ok && t.tainted(ix.X) {
					pass.Reportf(s.Pos(),
						"write into %s, a slice aliasing read-only mapped flat-container pages",
						types.ExprString(ix.X))
				}
			case *ast.CallExpr:
				if isBuiltin(pass.TypesInfo, s, "copy") && len(s.Args) == 2 && t.tainted(s.Args[0]) {
					pass.Reportf(s.Pos(),
						"copy into %s, a slice aliasing read-only mapped flat-container pages",
						types.ExprString(s.Args[0]))
				}
				if isBuiltin(pass.TypesInfo, s, "append") && len(s.Args) > 0 && t.tainted(s.Args[0]) {
					pass.Reportf(s.Pos(),
						"append to %s may write into the mapped backing array; copy the view first",
						types.ExprString(s.Args[0]))
				}
			}
			return true
		})
	})
	return nil
}

// pointerBase unwraps &x[i], (*unsafe.Pointer-ish conversions aside)
// to the expression whose backing array a pointer argument addresses.
func pointerBase(e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	for {
		switch x := e.(type) {
		case *ast.UnaryExpr:
			e = ast.Unparen(x.X)
		case *ast.CallExpr:
			// unsafe.Pointer(...) / (*T)(...) conversion chains.
			if len(x.Args) == 1 {
				e = ast.Unparen(x.Args[0])
				continue
			}
			return e
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			return ast.Unparen(x.X)
		default:
			return e
		}
	}
}

// markedFuncs collects the functions of this package whose doc comment
// carries the given marker directive.
func markedFuncs(pass *Pass, marker string) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasMarker(fd.Doc, marker) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = true
			}
		}
	}
	return out
}
