package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// DistSentinel enforces the distance contract: every public distance
// is an int64 and Unreachable == -1 marks disconnected pairs.
//
// Two bug families follow from the sentinel. Narrowing a distance
// (int32(d), uint8(d)) silently corrupts -1 (uint conversions turn it
// into MaxUint); and ordering comparisons (d < best, min(d1, d2))
// sort -1 *below* every real distance, so an unreachable pair wins
// every "nearest" contest unless the code guards the sentinel first.
// The analyzer taints results of Distance/DistanceFrom calls (the
// int64 contract surface) and reports (a) conversions of tainted
// values to narrower or unsigned integer types and (b) </<=/>/>=
// comparisons and min()/max() calls on tainted values in functions
// that never compare the value against the sentinel (d != Unreachable,
// d >= 0, d == -1 and friends count as guards).
var DistSentinel = &Analyzer{
	Name: "distsentinel",
	Doc: "flag narrowing conversions of int64 distances and unguarded " +
		"orderings that mis-rank the -1 unreachable sentinel",
	Run: runDistSentinel,
}

func runDistSentinel(pass *Pass) error {
	cfg := taintConfig{
		binary: true,
		index:  true,
	}
	cfg.source = func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			return false
		}
		res := sig.Results().At(0).Type()
		switch fn.Name() {
		case "Distance":
			return isInt64(res)
		case "DistanceFrom", "BatchDistances":
			s, ok := res.Underlying().(*types.Slice)
			return ok && isInt64(s.Elem())
		}
		return false
	}
	eachFunc(pass.Files, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		t := newTainter(pass, body, cfg)
		guarded := sentinelGuards(pass, body)
		safe := func(e ast.Expr) bool {
			// A tainted operand is safe when it is a variable the
			// function sentinel-checks somewhere.
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && guarded[obj] {
					return true
				}
			}
			return !t.tainted(e)
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				switch x.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ:
				default:
					return true
				}
				// Comparisons against the sentinel or zero ARE the
				// guard, never a finding.
				if isSentinelValue(pass, x.X) || isSentinelValue(pass, x.Y) {
					return true
				}
				for _, side := range []ast.Expr{x.X, x.Y} {
					if t.tainted(side) && !safe(side) {
						pass.Reportf(x.Pos(),
							"ordering %s on a distance mis-ranks the -1 unreachable sentinel; guard with >= 0 or != Unreachable first",
							types.ExprString(x))
						break
					}
				}
			case *ast.CallExpr:
				if isBuiltin(pass.TypesInfo, x, "min") || isBuiltin(pass.TypesInfo, x, "max") {
					for _, a := range x.Args {
						if t.tainted(a) && !safe(a) {
							pass.Reportf(x.Pos(),
								"%s on distances picks the -1 unreachable sentinel as smallest; guard the sentinel first",
								types.ExprString(x.Fun))
							break
						}
					}
					return true
				}
				// Narrowing / sign-losing conversions of distances.
				if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
					if t.tainted(x.Args[0]) && narrowsInt64(tv.Type) {
						pass.Reportf(x.Pos(),
							"conversion %s(...) cannot represent the int64/-1 distance contract",
							types.ExprString(x.Fun))
					}
				}
			}
			return true
		})
	})
	return nil
}

// sentinelGuards collects objects the function compares against the
// sentinel (-1, Unreachable) or against zero anywhere in its body.
func sentinelGuards(pass *Pass, body ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for e, other := range map[ast.Expr]ast.Expr{be.X: be.Y, be.Y: be.X} {
			if !isSentinelValue(pass, other) {
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isSentinelValue matches -1, 0 and anything named Unreachable.
func isSentinelValue(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Int64Val(tv.Value); ok && (v == -1 || v == 0) {
			return true
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name == "Unreachable"
	case *ast.SelectorExpr:
		return x.Sel.Name == "Unreachable"
	}
	return false
}

// isInt64 reports whether t's underlying type is exactly int64.
func isInt64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// narrowsInt64 reports whether converting an int64 distance to t can
// corrupt values under the contract (narrower than 64 bits, or
// unsigned, which maps -1 to MaxUint).
func narrowsInt64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int8, types.Int16, types.Int32,
		types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}
