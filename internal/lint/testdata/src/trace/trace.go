// Package trace is a fixture stub standing in for the real
// pll/internal/trace package: just the request-scoped context accessors
// the profilescope analyzer tracks, resolved by package name.
package trace

import "context"

// Request is one in-flight traced request.
type Request struct{}

// QueryProfile accumulates per-stage counters for one request.
type QueryProfile struct{}

func (p *QueryProfile) CacheLookup(hit bool) {}

// FromContext returns the request placed in ctx by the middleware.
func FromContext(ctx context.Context) *Request { return nil }

// ProfileFromContext returns the per-request profile from ctx.
func ProfileFromContext(ctx context.Context) *QueryProfile { return nil }
