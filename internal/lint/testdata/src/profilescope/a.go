// Fixture for the profilescope analyzer: the results of the trace
// package's context accessors are owned by one in-flight request — the
// middleware commits them when the handler returns — so storing one
// anywhere that survives the handler is a cross-request data race.
package profilescope

import (
	"context"
	"net/http"

	"trace"
)

type server struct {
	lastProfile *trace.QueryProfile
	lastRequest *trace.Request
}

type record struct {
	prof *trace.QueryProfile
}

var globalProfile = trace.ProfileFromContext(context.Background()) // want `package-level variable`

var sink *trace.QueryProfile

var cache = map[string]*trace.QueryProfile{}

func use(p *trace.QueryProfile) {}

// handleGood is the blessed idiom: fetch the profile, call methods on
// it, pass it down the stack — nothing outlives the handler.
func (s *server) handleGood(w http.ResponseWriter, r *http.Request) {
	p := trace.ProfileFromContext(r.Context())
	p.CacheLookup(true)
	use(p)
	if p == nil {
		return
	}
}

func (s *server) handleFieldStore(w http.ResponseWriter, r *http.Request) {
	s.lastProfile = trace.ProfileFromContext(r.Context()) // want `stored in a struct field`
}

func (s *server) handleVarThenField(w http.ResponseWriter, r *http.Request) {
	p := trace.ProfileFromContext(r.Context())
	s.lastProfile = p // want `stored in a struct field`
}

func (s *server) handleRequestField(w http.ResponseWriter, r *http.Request) {
	s.lastRequest = trace.FromContext(r.Context()) // want `stored in a struct field`
}

func (s *server) handleGlobal(w http.ResponseWriter, r *http.Request) {
	sink = trace.ProfileFromContext(r.Context()) // want `package-level variable`
}

func (s *server) handleMapStore(w http.ResponseWriter, r *http.Request) {
	cache["last"] = trace.ProfileFromContext(r.Context()) // want `stored in a map or slice`
}

func (s *server) handleLiteral(w http.ResponseWriter, r *http.Request) *record {
	return &record{prof: trace.ProfileFromContext(r.Context())} // want `composite literal`
}
