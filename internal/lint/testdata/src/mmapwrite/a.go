// Fixture for the mmapwrite analyzer: views over shared read-only
// mapped pages must never be written.
package mmapwrite

import "unsafe"

// parser mirrors the real flat parser over a mapped file image.
//
// pllvet:sharedro
type parser struct {
	data []byte
	n    int
}

// view returns a typed window over the mapping.
//
// pllvet:roview
func view(p *parser) []uint32 {
	return unsafe.Slice((*uint32)(unsafe.Pointer(&p.data[0])), p.n)
}

func writes(p *parser) {
	v := view(p)
	v[0] = 1      // want `write into v`
	v[1]++        // want `write into v`
	p.data[0] = 9 // want `write into p\.data`
	fresh := make([]uint32, 4)
	copy(v, fresh)   // want `copy into v`
	_ = append(v, 7) // want `append to v`
}

func derived(p *parser) {
	w := unsafe.Slice((*uint32)(unsafe.Pointer(&p.data[0])), p.n)
	w[0] = 1 // want `write into w`
	sub := w[1:3]
	sub[0] = 2 // want `write into sub`
}

func clean(p *parser) {
	cp := append([]uint32(nil), view(p)...) // copy first: fine
	cp[0] = 1
	n := p.n // scalar fields are free to use
	buf := make([]byte, n)
	buf[0] = 1
	copy(buf, p.data) // reading the mapping is fine
}

// fill is a builder: it owns the arrays until it returns.
//
//pllvet:ignore mmapwrite fixture builder fills before publication
func fill(p *parser) {
	p.data[0] = 1
}
