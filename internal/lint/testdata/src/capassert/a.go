// Fixture for the capassert analyzer: capabilities are probed with the
// two-result form, and search errors carry the capability signal.
package capassert

import "pll/pll"

func singleResult(o pll.Oracle) {
	b := o.(pll.Batcher) // want `single-result assertion to capability interface pll\.Batcher`
	_ = b
	o.(pll.Closer).Close()                // want `single-result assertion to capability interface pll\.Closer`
	var s pll.Searcher = o.(pll.Searcher) // want `single-result assertion to capability interface pll\.Searcher`
	_ = s
	cs := o.(pll.CompositeSearcher) // want `single-result assertion to capability interface pll\.CompositeSearcher`
	_ = cs
}

func discarded(s pll.Searcher, cs pll.CompositeSearcher, set *pll.VertexSet) {
	s.KNN(1, 2)             // want `result of KNN discarded`
	ns, _ := s.Range(1, 10) // want `error of Range assigned to _`
	_ = ns
	_, _ = s.NearestIn(1, set, 3) // want `error of NearestIn assigned to _`
	req := &pll.CompositeRequest{}
	cs.Composite(req)           // want `result of Composite discarded`
	res, _ := cs.Composite(req) // want `error of Composite assigned to _`
	_ = res
}

func probed(o pll.Oracle) {
	if b, ok := o.(pll.Batcher); ok {
		_ = b
	}
	var c, ok = o.(pll.Closer)
	if ok {
		_ = c.Close()
	}
	switch v := o.(type) { // type switches are inherently checked
	case pll.Searcher:
		if _, err := v.KNN(1, 2); err != nil {
			return
		}
	}
	_ = o.(pll.Oracle) // not a capability interface
}

func handled(s pll.Searcher) error {
	ns, err := s.Range(1, 10)
	if err != nil {
		return err
	}
	_ = ns
	return nil
}

// scattered mirrors a coordinator fan-out: capability probes inside
// spawned func literals follow the same rules as straight-line code.
func scattered(os []pll.Oracle) {
	for _, o := range os {
		go func(o pll.Oracle) {
			b := o.(pll.Batcher) // want `single-result assertion to capability interface pll\.Batcher`
			_ = b
		}(o)
		go func(o pll.Oracle) {
			if sr, ok := o.(pll.Searcher); ok {
				if _, err := sr.KNN(1, 2); err != nil {
					return
				}
				sr.KNN(1, 3) // want `result of KNN discarded`
			}
		}(o)
	}
}
