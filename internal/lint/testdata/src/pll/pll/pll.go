// Package pll is a fixture stand-in for the real pll package: just
// enough surface (capability interfaces, search errors) for the
// capassert fixtures to type-check against import path "pll/pll".
package pll

import "errors"

// Oracle is the minimal distance contract.
type Oracle interface {
	Distance(s, t int32) int64
}

// Neighbor mirrors the real search result entry.
type Neighbor struct {
	Vertex   int32
	Distance int64
}

// VertexSet mirrors the real registered-subset handle.
type VertexSet struct{}

// Batcher is the batched-distance capability.
type Batcher interface {
	DistanceFrom(s int32, targets []int32, dst []int64) []int64
}

// Searcher is the search capability.
type Searcher interface {
	KNN(s int32, k int) ([]Neighbor, error)
	Range(s int32, radius int64) ([]Neighbor, error)
	NearestIn(s int32, set *VertexSet, k int) ([]Neighbor, error)
}

// CompositeClause mirrors the real constraint-tree node: the request's
// fan-out lives in slices nested below pointer fields, never at the
// top level.
type CompositeClause struct {
	And []*CompositeClause
	In  []int32
}

// CompositeRequest mirrors the real composite-query request.
type CompositeRequest struct {
	Where *CompositeClause
	K     int
}

// CompositeResult mirrors the real composite-query answer.
type CompositeResult struct {
	Total int
}

// CompositeSearcher is the composite-query capability.
type CompositeSearcher interface {
	Composite(req *CompositeRequest) (*CompositeResult, error)
}

// Closer marks resource-backed oracles.
type Closer interface {
	Close() error
}

// ErrNoSearch mirrors the real capability-miss error.
var ErrNoSearch = errors.New("pll: oracle does not support search queries")

// ErrStaleSet mirrors the real retired-snapshot error.
var ErrStaleSet = errors.New("pll: vertex set was registered on a retired snapshot")
