// Method-less and debug-surface registrations. A pattern without a
// method matches POST along with everything else, so a body-decoding
// handler registered that way needs the same caps as an explicit POST
// one; the read-only /debug/ surface (pprof, /debug/traces) is exempt
// outright, without a suppression comment.
package handlerlimits

import "net/http"

// handleDebugTraces is a read-only debug handler: it renders in-memory
// ring state and never touches the request body.
func (s *server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	_, _ = w, r
}

func registerAdmin(s *server) {
	mux := http.NewServeMux()
	// Debug handlers pass clean however they are mounted — even one
	// that decodes a body is the operator's own surface.
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("/debug/traces", s.handleDebugTraces)
	mux.HandleFunc("/debug/pprof/", s.handleNoBodyCap)
	// A method-less pattern that decodes a body matches POST too: the
	// body cap is required.
	mux.HandleFunc("/anymethod", s.handleNoBodyCap) // want `never wires http\.MaxBytesReader`
	// Method-less but read-only: nothing is decoded, nothing to cap.
	mux.HandleFunc("/metrics", s.handleDebugTraces)
	// Explicit non-POST methods carry no decodable body.
	mux.HandleFunc("GET /readonly", s.handleNoBodyCap)
}
