// Fixture for the handlerlimits analyzer: POST handlers must wire
// http.MaxBytesReader and cap decoded fan-out against MaxBatch.
package handlerlimits

import (
	"encoding/json"
	"net/http"
)

type config struct {
	MaxBatch int
	MaxBody  int64
}

type server struct {
	cfg config
}

type batchRequest struct {
	Pairs [][2]int32 `json:"pairs"`
}

type scalarRequest struct {
	S int32 `json:"s"`
	T int32 `json:"t"`
}

// clause mirrors a composite-query constraint tree: the client-
// controlled fan-out hides in slices nested below pointer fields.
type clause struct {
	Kids []*clause `json:"kids"`
	In   []int32   `json:"in"`
}

type nestedRequest struct {
	Where *clause `json:"where"`
	K     int     `json:"k"`
}

// decodeBody mirrors the real blessed wrapper: body cap, then decode.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	return json.NewDecoder(r.Body).Decode(v) == nil
}

func (s *server) checkFanout(w http.ResponseWriter, v int) bool {
	return v >= 1 && v <= s.cfg.MaxBatch
}

func (s *server) handleGood(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if !s.checkFanout(w, len(req.Pairs)) {
		return
	}
}

func (s *server) handleNoBodyCap(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	_ = json.NewDecoder(r.Body).Decode(&req)
	if !s.checkFanout(w, len(req.Pairs)) {
		return
	}
}

func (s *server) handleNoFanout(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	_ = req.Pairs
}

func (s *server) handleScalar(w http.ResponseWriter, r *http.Request) {
	var req scalarRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
}

func (s *server) handleNestedNoFanout(w http.ResponseWriter, r *http.Request) {
	var req nestedRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	_ = req.Where
}

func (s *server) handleNestedGood(w http.ResponseWriter, r *http.Request) {
	var req nestedRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if !s.checkFanout(w, len(req.Where.Kids)) {
		return
	}
}

func (s *server) handleInline(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Pairs) > s.cfg.MaxBatch {
		return
	}
}

// instrument mirrors the real observability middleware: the handler is
// registered as a wrapper call result, not a bare method value, and the
// analyzer must keep seeing the wrapped handler's caps through it.
func (s *server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_ = name
		h(w, r)
	}
}

// guarded stacks a second wrapper layer, like admission control over
// instrumentation.
func (s *server) guarded(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrument(name, func(w http.ResponseWriter, r *http.Request) {
		h(w, r)
	})
}

func register(s *server) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /good", s.handleGood)
	mux.HandleFunc("POST /nobodycap", s.handleNoBodyCap)         // want `never wires http\.MaxBytesReader`
	mux.HandleFunc("POST /nofanout", s.handleNoFanout)           // want `never caps its length against MaxBatch`
	mux.HandleFunc("POST /scalar", s.handleScalar)               // scalar body: fanout rule does not apply
	mux.HandleFunc("POST /inline", s.handleInline)               // explicit MaxBatch comparison counts
	mux.HandleFunc("GET /read", s.handleNoBodyCap)               // GET: body limits not required
	mux.Handle("POST /conv", http.HandlerFunc(s.handleNoFanout)) // want `never caps its length against MaxBatch`
	// Fan-out nested below pointer fields (a composite clause tree)
	// counts as slice-bearing too.
	mux.HandleFunc("POST /nested", s.handleNestedNoFanout) // want `never caps its length against MaxBatch`
	mux.HandleFunc("POST /nestedgood", s.handleNestedGood)
	// Middleware-wrapped registrations: the wrapper call result is the
	// handler, and the caps (or their absence) of the wrapped method
	// must still be seen through it — one layer or two.
	mux.HandleFunc("POST /wrapgood", s.instrument("wrapgood", s.handleGood))
	mux.HandleFunc("POST /wrapnofanout", s.instrument("wrapnofanout", s.handleNoFanout)) // want `never caps its length against MaxBatch`
	mux.HandleFunc("POST /wrapnocap", s.guarded("wrapnocap", s.handleNoBodyCap))         // want `never wires http\.MaxBytesReader`
	mux.HandleFunc("POST /wrapdeep", s.guarded("wrapdeep", s.handleGood))
}
