// Coordinator-shaped fixtures: a scatter-gather proxy registers POST
// handlers that decode a client body and then fan out to a backend
// pool. The cap rules are the same — MaxBytesReader before the
// decoder, MaxBatch before the fan-out — but the wiring differs from a
// plain server: the middleware lives on a separate stack type, the
// scatter happens inside spawned func literals, and the decoded slice
// is re-marshaled into per-backend chunks. The analyzer must keep
// seeing the caps (or their absence) through all of it.
package handlerlimits

import (
	"encoding/json"
	"net/http"
)

type stack struct{}

// Guarded mirrors the shared middleware stack: the registration's
// callee is a method on another type, and the handler rides in as a
// func-typed argument the analyzer follows.
func (st *stack) Guarded(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_ = name
		h(w, r)
	}
}

type coordinator struct {
	cfg   config
	stack *stack
}

func (c *coordinator) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBody)
	return json.NewDecoder(r.Body).Decode(v) == nil
}

func (c *coordinator) checkFanout(w http.ResponseWriter, v int) bool {
	return v >= 1 && v <= c.cfg.MaxBatch
}

// scatter stands in for the backend fan-out: whatever reaches it has
// already been paid for across the whole pool.
func (c *coordinator) scatter(body []byte) {
	go func() { _ = body }()
}

// handleScatterGood caps the decoded fan-out before scattering.
func (c *coordinator) handleScatterGood(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if !c.checkFanout(w, len(req.Pairs)) {
		return
	}
	for i := range req.Pairs {
		chunk, _ := json.Marshal(req.Pairs[i : i+1])
		c.scatter(chunk)
	}
}

// handleScatterNoCap decodes the slice and scatters it uncapped: one
// oversized request becomes N oversized backend requests.
func (c *coordinator) handleScatterNoCap(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	for i := range req.Pairs {
		chunk, _ := json.Marshal(req.Pairs[i : i+1])
		c.scatter(chunk)
	}
}

// handleScatterNoBody skips the blessed decode wrapper entirely.
func (c *coordinator) handleScatterNoBody(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	_ = json.NewDecoder(r.Body).Decode(&req)
	if !c.checkFanout(w, len(req.Pairs)) {
		return
	}
	c.scatter(nil)
}

// handleScatterInline caps with an explicit MaxBatch comparison before
// the fan-out, like the real /batch chunk splitter.
func (c *coordinator) handleScatterInline(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if len(req.Pairs) > c.cfg.MaxBatch {
		return
	}
	c.scatter(nil)
}

func registerCoordinator(c *coordinator) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /scatter/good", c.stack.Guarded("good", c.handleScatterGood))
	mux.HandleFunc("POST /scatter/nocap", c.stack.Guarded("nocap", c.handleScatterNoCap))    // want `never caps its length against MaxBatch`
	mux.HandleFunc("POST /scatter/nobody", c.stack.Guarded("nobody", c.handleScatterNoBody)) // want `never wires http\.MaxBytesReader`
	mux.HandleFunc("POST /scatter/inline", c.stack.Guarded("inline", c.handleScatterInline))
}
