// Fixture for the distsentinel analyzer: int64 distances carry the
// Unreachable == -1 sentinel, so narrowing and unguarded ordering are
// bugs.
package distsentinel

type oracle struct{}

func (oracle) Distance(s, t int32) int64                             { return 0 }
func (oracle) DistanceFrom(s int32, ts []int32, dst []int64) []int64 { return dst }

const Unreachable int64 = -1

func narrowing(o oracle) {
	d := o.Distance(1, 2)
	_ = int32(d)  // want `conversion int32`
	_ = uint64(d) // want `conversion uint64`
	_ = uint8(d)  // want `conversion uint8`
	_ = int64(d)  // same width, signed: fine
	_ = float64(d)
}

func ordering(o oracle, ts []int32) {
	d := o.Distance(1, 2)
	best := o.Distance(1, 3)
	if d < best { // want `ordering d < best`
		_ = d
	}
	_ = min(d, best) // want `min on distances`
	ds := o.DistanceFrom(1, ts, nil)
	_ = uint16(ds[0]) // want `conversion uint16`
}

func guarded(o oracle) {
	d := o.Distance(1, 2)
	e := o.Distance(3, 4)
	if d == Unreachable || e == Unreachable {
		return
	}
	if d < e { // both sentinel-checked above: fine
		_ = d
	}
	_ = min(d, e)
}

func guardedByZero(o oracle) {
	d := o.Distance(1, 2)
	e := o.Distance(3, 4)
	if d >= 0 && e >= 0 {
		if e > d { // fine
			_ = e
		}
	}
}

func untouched(a, b int64) {
	if a < b { // not distances: fine
		_ = a
	}
	_ = int32(a)
}
