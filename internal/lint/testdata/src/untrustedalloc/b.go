package untrustedalloc

import (
	"encoding/binary"
	"fmt"
	"io"
)

// readBytesCapped mirrors the real loader idiom verbatim: the
// speculative allocation is capped and growth happens behind actual
// reads, so the whole function is clean under the analyzer.
func readBytesCapped(r io.Reader, n int64, what string) ([]byte, error) {
	out := make([]byte, 0, min(n, allocChunk))
	for int64(len(out)) < n {
		k := min(n-int64(len(out)), allocChunk)
		start := len(out)
		out = append(out, make([]byte, k)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, fmt.Errorf("truncated %s: %v", what, err)
		}
	}
	return out, nil
}

// loadClean mirrors the real header loader: decoded sizes only ever
// reach capped readers.
func loadClean(r io.Reader) ([]byte, error) {
	var fixed [8]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(fixed[:])
	return readBytesCapped(r, int64(n), "payload")
}
