// Fixture for the untrustedalloc analyzer: allocations sized by
// decoded input must be capped or suppressed with a documented reason.
package untrustedalloc

import (
	"bufio"
	"encoding/binary"
)

const allocChunk = 1 << 20

// header mirrors the real parsed file prefix.
//
// pllvet:untrusted
type header struct {
	n      int
	counts []uint32
}

func direct(b []byte, br *bufio.Reader) {
	n := int(binary.LittleEndian.Uint32(b))
	_ = make([]int64, n) // want `allocation sized by untrusted input n`
	m, _ := binary.ReadUvarint(br)
	_ = make([]byte, m)       // want `allocation sized by untrusted input m`
	_ = make([]int32, 0, n+1) // want `allocation sized by untrusted input n \+ 1`
}

func fields(h *header) {
	_ = make([]uint32, h.n*2) // want `allocation sized by untrusted input h\.n \* 2`
	for _, c := range h.counts {
		_ = make([]byte, c) // want `allocation sized by untrusted input c`
	}
}

func capped(b []byte, h *header) {
	n := int(binary.LittleEndian.Uint32(b))
	_ = make([]byte, 0, min(n, allocChunk))     // sanitized by min
	_ = make([]uint32, 0, min(h.n, allocChunk)) // sanitized by min
	_ = make([]byte, len(b))                    // trusted size
	k := cap(b)
	_ = make([]byte, k) // trusted size
}

func suppressed(h *header) {
	//pllvet:ignore untrustedalloc fixture: n is backed by bytes already read
	_ = make([]int64, h.n+1)
	_ = make([]int64, h.n) // want `allocation sized by untrusted input h\.n`
}

func unsanitized(h *header) {
	_ = make([]byte, max(h.n, 16)) // want `allocation sized by untrusted input`
}
