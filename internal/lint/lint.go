// Package lint is the project's static-analysis suite: six analyzers
// that mechanically enforce the safety invariants the index code is
// built on, plus the minimal driver machinery to run them.
//
// The analyzer surface (Analyzer, Pass, Diagnostic, SuggestedFix)
// deliberately mirrors golang.org/x/tools/go/analysis so each checker
// reads like a standard vet pass and can be ported to a real
// multichecker verbatim once the x/tools dependency is available; this
// build vendors none, so the package carries its own loader (load.go)
// and golden-file test harness (analysistest.go) on the standard
// library alone.
//
// The enforced invariants, one analyzer each:
//
//   - untrustedalloc: allocations sized by decoded container/header
//     fields must be capped (min(x, allocChunk)-style) or grown behind
//     actual reads — a hostile 16-byte header must never force an OOM.
//   - mmapwrite: slices obtained from flat-section accessors alias
//     shared read-only mapped pages and must never be written.
//   - distsentinel: the int64 distance contract (Unreachable == -1)
//     forbids narrowing conversions and unguarded </min ordering.
//   - capassert: capability interfaces (pll.Batcher, pll.Searcher,
//     pll.Closer) are probed with the two-result form, and Searcher
//     errors (ErrNoSearch, ErrStaleSet) are never discarded.
//   - handlerlimits: every POST handler wires http.MaxBytesReader (via
//     Server.decodeBody) before touching a request body.
//   - profilescope: request-scoped trace profiles (trace.FromContext,
//     trace.ProfileFromContext) are never stored past the handler that
//     owns them.
//
// False positives are suppressed in source with
//
//	//pllvet:ignore <analyzer> <reason>
//
// on (or immediately above) the offending line, or in a function's doc
// comment to cover its whole body. The reason is mandatory; bare
// ignores are themselves reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static-analysis pass. The shape matches
// golang.org/x/tools/go/analysis.Analyzer (minus Requires/Facts, which
// the suite does not need).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags and
	// //pllvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `pllvet help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package
// and a sink for diagnostics.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags    []Diagnostic
	analyzer *Analyzer
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed diagnostic (with optional fixes).
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.analyzer.Name
	p.diags = append(p.diags, d)
}

// A Diagnostic is one finding: a position, a message, and optional
// mechanical fixes.
type Diagnostic struct {
	Analyzer       string
	Pos            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained rewrite addressing a
// diagnostic, applied by `pllvet -fix`.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces [Pos, End) with NewText. End == token.NoPos
// means a pure insertion at Pos.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics (ignore directives already applied), sorted by position.
// Malformed or unused //pllvet:ignore directives are reported through
// the special "pllvet" pseudo-analyzer so a stale suppression cannot
// linger silently.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		idx := newDirectiveIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				analyzer:  a,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.diags {
				if idx.suppressed(a.Name, d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
		out = append(out, idx.problems()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}
