package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// HandlerLimits checks that every POST handler is registered with its
// resource caps wired in.
//
// The serving surface is exposed to untrusted clients, so two limits
// are load-bearing: the request body must pass through
// http.MaxBytesReader before any decoder touches it (Server.decodeBody
// is the blessed wrapper), and any client-controlled fan-out — a
// decoded slice, a count — must be bounded by Config.MaxBatch (via
// Server.checkFanout or an explicit comparison). The analyzer resolves
// each mux registration whose pattern carries the POST method, walks
// the handler's same-package call closure, and reports
//
//	(a) closures that never reach http.MaxBytesReader, with a fix that
//	    inserts the cap at the top of the handler, and
//	(b) closures that decode a slice-bearing request type but never
//	    consult MaxBatch/checkFanout.
//
// Method-less registrations match POST along with every other method,
// so their handlers face the same rules once they actually decode a
// body; read-only method-less mounts (/metrics on an admin mux) pass.
// The /debug/ surface — pprof, /debug/traces — is exempt outright,
// whatever the method: operator-only debug handlers never need a
// suppression to mount.
var HandlerLimits = &Analyzer{
	Name: "handlerlimits",
	Doc: "flag POST handlers registered without http.MaxBytesReader " +
		"or MaxBatch fan-out caps",
	Run: runHandlerLimits,
}

func runHandlerLimits(pass *Pass) error {
	decls := funcDecls(pass)
	reach := newReachability(pass, decls)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pattern, handler := registration(pass, call)
			if handler == nil {
				return true
			}
			explicitPost, methodless := classifyPattern(strings.Trim(pattern, `"`))
			if !explicitPost && !methodless {
				return true
			}
			bodies := reach.bodies(handler)
			if len(bodies) == 0 {
				return true
			}
			// A method-less pattern matches POST too, so its handler is
			// held to the same caps — but only once it actually decodes a
			// body; read-only handlers mounted without a method (admin
			// /metrics, pprof) have nothing to cap.
			if methodless && !reach.decodesBody(bodies) {
				return true
			}
			if !reach.callsMaxBytesReader(bodies) {
				d := Diagnostic{
					Pos: call.Pos(),
					Message: fmt.Sprintf(
						"POST handler %s never wires http.MaxBytesReader; an unbounded body reaches the decoder",
						handlerName(handler)),
				}
				if fix, ok := maxBytesFix(pass, handler); ok {
					d.SuggestedFixes = []SuggestedFix{fix}
				}
				pass.Report(d)
			}
			if reach.decodesSlice(bodies) && !reach.capsFanout(bodies) {
				pass.Reportf(call.Pos(),
					"POST handler %s decodes a slice-bearing request but never caps its length against MaxBatch (checkFanout)",
					handlerName(handler))
			}
			return true
		})
	}
	return nil
}

// classifyPattern sorts a mux pattern into the shapes the body-cap
// rules care about: an explicit "POST path" registration, or a
// method-less "path" one (which matches POST along with every other
// method). Explicit GET/HEAD/etc. registrations carry no decodable
// body. The read-only /debug/ surface — pprof, /debug/traces — is
// exempt outright, whatever the method: mounting a debug GET handler
// must not require a suppression comment to pass the POST body-cap
// rule.
func classifyPattern(pat string) (explicitPost, methodless bool) {
	method, path, hasMethod := strings.Cut(pat, " ")
	if !hasMethod {
		method, path = "", pat
	}
	if strings.HasPrefix(path, "/debug/") {
		return false, false
	}
	return method == "POST", !hasMethod
}

// registration recognizes mux.HandleFunc/Handle calls and returns the
// raw pattern literal plus the handler expression (http.HandlerFunc
// conversions unwrapped). handler == nil when call is not one.
func registration(pass *Pass, call *ast.CallExpr) (string, ast.Expr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "HandleFunc" && fn.Name() != "Handle") || len(call.Args) != 2 {
		return "", nil
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return "", nil
	}
	h := ast.Unparen(call.Args[1])
	if conv, ok := h.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[conv.Fun]; ok && tv.IsType() {
			h = ast.Unparen(conv.Args[0])
		}
	}
	return lit.Value, h
}

// handlerName renders the handler expression for diagnostics.
func handlerName(h ast.Expr) string {
	switch x := h.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	case *ast.FuncLit:
		return "(func literal)"
	}
	return types.ExprString(h)
}

// funcDecls maps the package's function objects to their declarations.
func funcDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// reachability computes, memoized, the same-package call closure of a
// handler so transitive wrappers (decodeBody → MaxBytesReader) count.
type reachability struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func][]*ast.BlockStmt
}

func newReachability(pass *Pass, decls map[*types.Func]*ast.FuncDecl) *reachability {
	return &reachability{pass: pass, decls: decls, memo: map[*types.Func][]*ast.BlockStmt{}}
}

// bodies returns the bodies of every same-package function reachable
// from the handler expression, the handler itself first.
func (r *reachability) bodies(h ast.Expr) []*ast.BlockStmt {
	return r.exprBodies(ast.Unparen(h), map[*types.Func]bool{})
}

// exprBodies resolves one handler-valued expression. Besides the plain
// shapes (method value, function name, func literal), it sees through
// middleware wrappers: a registration like
//
//	mux.HandleFunc("POST /x", s.guarded("x", s.handleX))
//
// is a CallExpr whose result is the handler, so the closure is the
// union of the wrapper's own bodies and the bodies of every func-typed
// argument — the wrapped handler keeps being checked for its caps no
// matter how many instrumentation layers sit in front of it.
func (r *reachability) exprBodies(h ast.Expr, seen map[*types.Func]bool) []*ast.BlockStmt {
	switch x := h.(type) {
	case *ast.FuncLit:
		return r.closure(x.Body, seen)
	case *ast.Ident:
		if fn, ok := r.pass.TypesInfo.Uses[x].(*types.Func); ok {
			return r.funcBodies(fn, seen)
		}
	case *ast.SelectorExpr:
		if fn, ok := r.pass.TypesInfo.Uses[x.Sel].(*types.Func); ok {
			return r.funcBodies(fn, seen)
		}
	case *ast.CallExpr:
		var out []*ast.BlockStmt
		if fn := calleeFunc(r.pass.TypesInfo, x); fn != nil {
			out = append(out, r.funcBodies(fn, seen)...)
		}
		for _, a := range x.Args {
			a = ast.Unparen(a)
			tv, ok := r.pass.TypesInfo.Types[a]
			if !ok {
				continue
			}
			if _, isFunc := tv.Type.Underlying().(*types.Signature); isFunc {
				out = append(out, r.exprBodies(a, seen)...)
			}
		}
		return out
	}
	return nil
}

func (r *reachability) funcBodies(fn *types.Func, seen map[*types.Func]bool) []*ast.BlockStmt {
	if seen[fn] {
		return nil
	}
	seen[fn] = true
	if cached, ok := r.memo[fn]; ok {
		return cached
	}
	decl, ok := r.decls[fn]
	if !ok {
		return nil
	}
	out := r.closure(decl.Body, seen)
	r.memo[fn] = out
	return out
}

func (r *reachability) closure(body *ast.BlockStmt, seen map[*types.Func]bool) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(r.pass.TypesInfo, call); fn != nil {
			out = append(out, r.funcBodies(fn, seen)...)
		}
		return true
	})
	return out
}

// callsMaxBytesReader reports whether any reachable body calls
// net/http.MaxBytesReader.
func (r *reachability) callsMaxBytesReader(bodies []*ast.BlockStmt) bool {
	return r.anyCall(bodies, func(fn *types.Func) bool {
		return fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "MaxBytesReader"
	})
}

// decodesBody reports whether any reachable body decodes a request
// body at all (Decode/Unmarshal/decodeBody): the trigger that makes a
// method-less registration subject to the body-cap rule.
func (r *reachability) decodesBody(bodies []*ast.BlockStmt) bool {
	return r.anyCall(bodies, func(fn *types.Func) bool {
		switch fn.Name() {
		case "Decode", "Unmarshal", "decodeBody":
			return true
		}
		return false
	})
}

// decodesSlice reports whether any reachable body decodes JSON into a
// value whose struct type carries a slice field (a client-controlled
// fan-out).
func (r *reachability) decodesSlice(bodies []*ast.BlockStmt) bool {
	for _, b := range bodies {
		found := false
		ast.Inspect(b, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(r.pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			var target ast.Expr
			switch {
			case fn.Name() == "Decode" && len(call.Args) == 1:
				target = call.Args[0]
			case fn.Name() == "Unmarshal" && len(call.Args) == 2:
				target = call.Args[1]
			case fn.Name() == "decodeBody" && len(call.Args) == 3:
				target = call.Args[2]
			default:
				return true
			}
			if tv, ok := r.pass.TypesInfo.Types[target]; ok && hasSliceField(tv.Type) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// capsFanout reports whether any reachable body consults the fan-out
// cap: a checkFanout call or a MaxBatch field read.
func (r *reachability) capsFanout(bodies []*ast.BlockStmt) bool {
	for _, b := range bodies {
		found := false
		ast.Inspect(b, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(r.pass.TypesInfo, x); fn != nil && fn.Name() == "checkFanout" {
					found = true
				}
			case *ast.SelectorExpr:
				if x.Sel.Name == "MaxBatch" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func (r *reachability) anyCall(bodies []*ast.BlockStmt, match func(*types.Func) bool) bool {
	for _, b := range bodies {
		found := false
		ast.Inspect(b, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeFunc(r.pass.TypesInfo, call); fn != nil && match(fn) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// hasSliceField reports whether t (struct or pointer-to-struct) has a
// slice-typed field anywhere in its reachable shape: directly, through
// embedding, or nested inside named struct or pointer fields. The
// recursion matters for tree-shaped request types (a composite query's
// clause tree holds its fan-out in nested []*Clause and []int32
// fields, none of them at the top level); a seen-set keeps recursive
// types from looping.
func hasSliceField(t types.Type) bool {
	return hasSliceFieldRec(t, map[types.Type]bool{})
}

func hasSliceFieldRec(t types.Type, seen map[types.Type]bool) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		switch u := ft.Underlying().(type) {
		case *types.Slice:
			return true
		case *types.Pointer:
			if hasSliceFieldRec(u.Elem(), seen) {
				return true
			}
		case *types.Struct:
			if hasSliceFieldRec(ft, seen) {
				return true
			}
		}
	}
	return false
}

// maxBytesFix inserts the body cap at the top of the handler when the
// declaration has the canonical (w http.ResponseWriter, r *http.Request)
// shape with named parameters.
func maxBytesFix(pass *Pass, h ast.Expr) (SuggestedFix, bool) {
	var id *ast.Ident
	switch x := h.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return SuggestedFix{}, false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return SuggestedFix{}, false
	}
	decl, ok := funcDecls(pass)[fn]
	if !ok || decl.Type.Params == nil || len(decl.Type.Params.List) != 2 {
		return SuggestedFix{}, false
	}
	p := decl.Type.Params.List
	if len(p[0].Names) != 1 || len(p[1].Names) != 1 {
		return SuggestedFix{}, false
	}
	w, r := p[0].Names[0].Name, p[1].Names[0].Name
	return SuggestedFix{
		Message: "cap the request body with http.MaxBytesReader",
		TextEdits: []TextEdit{{
			Pos: decl.Body.Lbrace + 1,
			NewText: []byte(fmt.Sprintf(
				"\n%s.Body = http.MaxBytesReader(%s, %s.Body, 1<<20)", r, w, r)),
		}},
	}, true
}
