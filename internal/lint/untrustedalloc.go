package lint

import (
	"go/ast"
	"go/types"
)

// UntrustedAlloc flags allocations whose size flows from decoded
// container/header fields without the chunked/capped loader pattern.
//
// A malformed (or adversarial) index file can declare sizes in the
// gigabytes while holding a few hundred bytes; the loaders therefore
// either cap every speculative allocation (make(T, 0, min(x,
// allocChunk))) or grow slices behind actual reads (the *Capped
// readers in internal/core/serialize.go). This analyzer enforces the
// pattern mechanically: it taints the results of binary decoding
// (binary.LittleEndian.UintNN, binary.ReadUvarint/ReadVarint) and
// every field read of structs marked `pllvet:untrusted` (the parsed
// header types), and reports any make() whose length or capacity is
// reached by that taint. min(x, bound) with an untainted bound
// sanitizes; allocations provably backed by already-read bytes are
// suppressed in source with //pllvet:ignore untrustedalloc <reason>.
var UntrustedAlloc = &Analyzer{
	Name: "untrustedalloc",
	Doc: "flag make() calls sized by decoded header fields without a " +
		"min(x, allocChunk)-style cap",
	Run: runUntrustedAlloc,
}

func runUntrustedAlloc(pass *Pass) error {
	marked := markedStructs(pass, markerUntrusted)
	cfg := taintConfig{
		binary: true,
		index:  true,
		source: nil, // set below, needs the pass closure
		tupleResults: func(call *ast.CallExpr) []bool {
			if fn := calleeFunc(pass.TypesInfo, call); fn != nil &&
				fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" &&
				(fn.Name() == "ReadUvarint" || fn.Name() == "ReadVarint") {
				return []bool{true, false}
			}
			return nil
		},
		call: func(t *tainter, call *ast.CallExpr) (bool, bool) {
			// min(tainted, bound) with any untainted arm is the
			// sanitizer: the result is bounded by trusted input.
			if isBuiltin(pass.TypesInfo, call, "min") {
				for _, a := range call.Args {
					if !t.tainted(a) {
						return false, true
					}
				}
				return true, true
			}
			// max() keeps the unbounded arm: stays tainted.
			if isBuiltin(pass.TypesInfo, call, "max") {
				for _, a := range call.Args {
					if t.tainted(a) {
						return true, true
					}
				}
				return false, true
			}
			return false, false
		},
	}
	cfg.source = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, x)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
				return false
			}
			switch fn.Name() {
			case "Uint16", "Uint32", "Uint64":
				return true
			}
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return false
			}
			return marked[namedObj(sel.Recv())]
		}
		return false
	}
	eachFunc(pass.Files, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		t := newTainter(pass, body, cfg)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(pass.TypesInfo, call, "make") {
				return true
			}
			for _, size := range call.Args[1:] {
				if t.tainted(size) {
					pass.Reportf(call.Pos(),
						"allocation sized by untrusted input %s: cap it with min(x, allocChunk) or grow it behind actual reads (readBytesCapped et al.)",
						types.ExprString(size))
					break
				}
			}
			return true
		})
	})
	return nil
}

// markedStructs collects the named struct types of this package whose
// type declarations carry the given marker directive.
func markedStructs(pass *Pass, marker string) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !hasMarker(doc, marker) && !hasMarker(ts.Comment, marker) {
					continue
				}
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// namedObj unwraps pointers and returns the type-name object of a
// named (or aliased) type, nil otherwise.
func namedObj(t types.Type) types.Object {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return x.Obj()
		default:
			return nil
		}
	}
}
