package lint

import (
	"strings"
	"testing"
)

func TestUntrustedAlloc(t *testing.T) { RunTest(t, UntrustedAlloc, "untrustedalloc") }
func TestMmapWrite(t *testing.T)      { RunTest(t, MmapWrite, "mmapwrite") }
func TestDistSentinel(t *testing.T)   { RunTest(t, DistSentinel, "distsentinel") }
func TestCapAssert(t *testing.T)      { RunTest(t, CapAssert, "capassert") }
func TestHandlerLimits(t *testing.T)  { RunTest(t, HandlerLimits, "handlerlimits") }
func TestProfileScope(t *testing.T)   { RunTest(t, ProfileScope, "profilescope") }

// TestCapAssertFix applies the comma-ok rewrite and checks the result
// both contains the guard and still formats.
func TestCapAssertFix(t *testing.T) {
	fset, diags := RunTestDiags(t, CapAssert, "capassert")
	fixed, err := ApplyFixes(fset, diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(fixed) == 0 {
		t.Fatal("expected at least one fixed file")
	}
	for name, src := range fixed {
		s := string(src)
		if !strings.Contains(s, "b, ok := o.(pll.Batcher)") {
			t.Errorf("%s: fix did not rewrite to the two-result form:\n%s", name, s)
		}
		if !strings.Contains(s, `panic("oracle does not implement pll.Batcher")`) {
			t.Errorf("%s: fix did not insert the capability guard:\n%s", name, s)
		}
	}
}

// TestHandlerLimitsFix applies the MaxBytesReader insertion and checks
// the cap lands at the top of the flagged handler.
func TestHandlerLimitsFix(t *testing.T) {
	fset, diags := RunTestDiags(t, HandlerLimits, "handlerlimits")
	fixed, err := ApplyFixes(fset, diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(fixed) == 0 {
		t.Fatal("expected at least one fixed file")
	}
	for name, src := range fixed {
		if !strings.Contains(string(src), "r.Body = http.MaxBytesReader(w, r.Body, 1<<20)") {
			t.Errorf("%s: fix did not insert the body cap:\n%s", name, src)
		}
	}
}
