package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// All is the suite in reporting order; cmd/pllvet and the tests share
// this registry.
var All = []*Analyzer{
	UntrustedAlloc,
	MmapWrite,
	DistSentinel,
	CapAssert,
	HandlerLimits,
	ProfileScope,
}

// ApplyFixes applies the first suggested fix of every diagnostic and
// returns the rewritten files, gofmt-formatted, keyed by filename.
// Overlapping edits are rejected rather than silently merged —
// diagnostics close enough to collide deserve a human.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (map[string][]byte, error) {
	type edit struct {
		start, end int // byte offsets
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range d.SuggestedFixes[0].TextEdits {
			pos := fset.Position(te.Pos)
			end := pos.Offset
			if te.End.IsValid() {
				end = fset.Position(te.End).Offset
			}
			perFile[pos.Filename] = append(perFile[pos.Filename],
				edit{start: pos.Offset, end: end, text: te.NewText})
		}
	}
	out := map[string][]byte{}
	for name, edits := range perFile {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i, e := range edits {
			if i > 0 && e.end > edits[i-1].start {
				return nil, fmt.Errorf("%s: overlapping fixes around byte %d; apply manually", name, e.start)
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
		}
		formatted, err := format.Source(src)
		if err != nil {
			return nil, fmt.Errorf("%s: fixed source does not format: %w", name, err)
		}
		out[name] = formatted
	}
	return out, nil
}
