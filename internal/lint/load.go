package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Load resolves patterns with `go list` from dir and type-checks every
// matched package: module-local imports are parsed and checked from
// source recursively, the standard library is delegated to the
// compiler's source importer, so the loader works offline with no
// dependencies beyond the go tool itself.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listings, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	ld := newLoader()
	for _, l := range listings {
		if !l.Standard {
			ld.listings[l.ImportPath] = l
		}
	}
	var out []*Package
	for _, l := range listings {
		if l.Standard || l.DepOnly || len(l.GoFiles) == 0 {
			continue
		}
		pkg, err := ld.load(l.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// listing is the subset of `go list -json` output the loader needs.
type listing struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// goList runs `go list -deps -json` so the module-local dependency
// closure of the patterns is known up front (stdlib entries are kept
// only to mark them as such).
func goList(dir string, patterns []string) ([]*listing, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Standard,DepOnly,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []*listing
	dec := json.NewDecoder(&stdout)
	for {
		var l listing
		if err := dec.Decode(&l); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %v", err)
		}
		out = append(out, &l)
	}
	return out, nil
}

// loader type-checks module packages from source, memoized, sharing
// one FileSet with the stdlib source importer.
type loader struct {
	fset     *token.FileSet
	listings map[string]*listing
	pkgs     map[string]*Package
	loading  map[string]bool
	stdlib   types.Importer
}

func newLoader() *loader {
	// The source importer reads build.Default; cgo-tagged file lists
	// cannot be type-checked from source, so resolve the pure-Go view.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		listings: map[string]*listing{},
		pkgs:     map[string]*Package{},
		loading:  map[string]bool{},
		stdlib:   importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over the hybrid resolution.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := ld.listings[path]; ok {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.stdlib.Import(path)
}

// load parses and type-checks one module-local package (memoized).
func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)
	l, ok := ld.listings[path]
	if !ok {
		return nil, fmt.Errorf("package %s not in the go list dependency closure", path)
	}
	files, err := parseDir(ld.fset, l.Dir, l.GoFiles)
	if err != nil {
		return nil, err
	}
	pkg, err := typeCheck(ld.fset, path, files, ld)
	if err != nil {
		return nil, err
	}
	pkg.Dir = l.Dir
	ld.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the named files of one directory with comments.
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck runs the types checker over parsed files with a full Info.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		PkgPath:   path,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
