package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pll/pll"
)

// waitInflight polls until the server reports want executing requests
// or the deadline passes.
func waitInflight(t *testing.T, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.InflightRequests() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("in-flight requests = %d, want %d", s.InflightRequests(), want)
}

// TestShutdownDrainFlatContainer reproduces the shutdown sequence that
// used to crash: a request is still mid-flight over a memory-mapped
// flat container when the listener goes down, and the old code unmapped
// the index while the handler could still be scanning mapped labels.
// The fixed sequence — Drain until the last request finishes, only then
// Close — must (a) refuse to report drained while the slow request is
// executing, (b) report drained once it completes, and (c) let the
// mapping close without any reader touching freed pages (the -race run
// of this test is the regression guard).
func TestShutdownDrainFlatContainer(t *testing.T) {
	dir := t.TempDir()
	path := writeFlatIndexFile(t, dir, "flat.pllbox", 64)
	fi, err := pll.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, fi, Config{})

	// A slow client: the /batch body dribbles through a pipe, so the
	// handler blocks inside the body read while counted as in flight.
	pr, pw := io.Pipe()
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/batch", pr)
		if err != nil {
			done <- result{err: err}
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		done <- result{status: resp.StatusCode}
	}()
	if _, err := io.WriteString(pw, `{"source":0,"targets":[1,2,3`); err != nil {
		t.Fatal(err)
	}
	waitInflight(t, s, 1)

	// The request is executing: a bounded Drain must time out and say
	// how many requests pin the index.
	shortCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(shortCtx); err == nil {
		t.Fatal("Drain returned nil with a request in flight")
	} else if !strings.Contains(err.Error(), "still in flight") {
		t.Fatalf("Drain error = %v, want it to report in-flight requests", err)
	}

	// Finish the upload; the handler now scans the mapped labels and
	// answers, after which Drain must succeed and Close is safe.
	if _, err := io.WriteString(pw, `,4,5]}`); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("slow /batch status = %d, want 200", r.status)
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain after completion: %v", err)
	}
	// Drained: unmapping now cannot race a reader. Close the listener
	// first so no new request sneaks in after the drain.
	ts.Close()
	c, ok := s.Oracle().Snapshot().(pll.Closer)
	if !ok {
		t.Fatal("flat index is not a Closer")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close after drain: %v", err)
	}
}

// TestDrainIdle verifies Drain returns immediately on an idle server.
func TestDrainIdle(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, ix, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain on idle server: %v", err)
	}
}
