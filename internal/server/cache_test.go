package server

import (
	"sync"
	"testing"
)

func TestPairCacheBasics(t *testing.T) {
	c := newPairCache(64)
	if _, ok := c.get(1, 2); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(c.currentEpoch(), 1, 2, 7)
	if d, ok := c.get(1, 2); !ok || d != 7 {
		t.Fatalf("get(1,2) = %d,%v", d, ok)
	}
	// (s,t) and (t,s) are distinct keys (directed indexes are
	// asymmetric).
	if _, ok := c.get(2, 1); ok {
		t.Fatal("reversed pair should miss")
	}
	hits, misses := c.counters()
	if hits != 1 || misses != 2 {
		t.Fatalf("counters = %d hits, %d misses", hits, misses)
	}
	c.put(c.currentEpoch(), 1, 2, 9) // overwrite
	if d, _ := c.get(1, 2); d != 9 {
		t.Fatalf("overwrite lost: %d", d)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestPairCacheDisabled(t *testing.T) {
	var c *pairCache // nil means disabled; every operation is a no-op
	c.put(c.currentEpoch(), 1, 2, 3)
	if _, ok := c.get(1, 2); ok {
		t.Fatal("nil cache hit")
	}
	c.purge()
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if newPairCache(0) != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
}

func TestPairCacheEvictsLRU(t *testing.T) {
	// One entry per shard: inserting a second key into a shard evicts
	// the older one, and a get refreshes recency.
	c := newPairCache(numShards)

	// Find three keys landing in the same shard.
	base := c.shardOf(pairKey(0, 0))
	same := make([][2]int32, 0, 3)
	for t32 := int32(0); len(same) < 3 && t32 < 1<<16; t32++ {
		if c.shardOf(pairKey(0, t32)) == base {
			same = append(same, [2]int32{0, t32})
		}
	}
	if len(same) < 3 {
		t.Fatal("could not find colliding keys")
	}

	c.put(c.currentEpoch(), same[0][0], same[0][1], 10)
	c.put(c.currentEpoch(), same[1][0], same[1][1], 11) // evicts same[0]
	if _, ok := c.get(same[0][0], same[0][1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if d, ok := c.get(same[1][0], same[1][1]); !ok || d != 11 {
		t.Fatalf("newest entry missing: %d,%v", d, ok)
	}
	c.put(c.currentEpoch(), same[2][0], same[2][1], 12) // evicts same[1]
	if _, ok := c.get(same[1][0], same[1][1]); ok {
		t.Fatal("expected eviction of the older entry")
	}
}

func TestPairCacheRecencyOrder(t *testing.T) {
	c := newPairCache(2 * numShards) // two entries per shard

	base := c.shardOf(pairKey(0, 0))
	same := make([][2]int32, 0, 3)
	for t32 := int32(0); len(same) < 3 && t32 < 1<<16; t32++ {
		if c.shardOf(pairKey(0, t32)) == base {
			same = append(same, [2]int32{0, t32})
		}
	}
	if len(same) < 3 {
		t.Fatal("could not find colliding keys")
	}

	c.put(c.currentEpoch(), same[0][0], same[0][1], 10)
	c.put(c.currentEpoch(), same[1][0], same[1][1], 11)
	c.get(same[0][0], same[0][1])                       // refresh [0]: now [1] is LRU
	c.put(c.currentEpoch(), same[2][0], same[2][1], 12) // must evict [1]
	if _, ok := c.get(same[0][0], same[0][1]); !ok {
		t.Fatal("refreshed entry was evicted")
	}
	if _, ok := c.get(same[1][0], same[1][1]); ok {
		t.Fatal("stale entry survived")
	}
}

func TestPairCachePurge(t *testing.T) {
	c := newPairCache(64)
	for i := int32(0); i < 32; i++ {
		c.put(c.currentEpoch(), i, i+1, int64(i))
	}
	if c.len() == 0 {
		t.Fatal("expected entries before purge")
	}
	c.purge()
	if c.len() != 0 {
		t.Fatalf("len after purge = %d", c.len())
	}
	if _, ok := c.get(3, 4); ok {
		t.Fatal("purged entry still present")
	}
	// The cache must be reusable after purge.
	c.put(c.currentEpoch(), 3, 4, 1)
	if d, ok := c.get(3, 4); !ok || d != 1 {
		t.Fatalf("post-purge put/get = %d,%v", d, ok)
	}
}

// TestPairCacheStalePutRejected models the purge race: a request
// captures the epoch, computes its answer against the pre-mutation
// index, and only deposits it after a purge has run. The deposit must
// be dropped, or the stale distance would be served forever.
func TestPairCacheStalePutRejected(t *testing.T) {
	c := newPairCache(64)
	epoch := c.currentEpoch()
	c.purge() // index mutated while the request was computing
	c.put(epoch, 1, 2, 99)
	if _, ok := c.get(1, 2); ok {
		t.Fatal("stale put survived a purge")
	}
	// A put with the fresh epoch works.
	c.put(c.currentEpoch(), 1, 2, 1)
	if d, ok := c.get(1, 2); !ok || d != 1 {
		t.Fatalf("fresh put lost: %d,%v", d, ok)
	}
}

// TestPairCacheConcurrent exercises all shards from many goroutines;
// meaningful under -race.
func TestPairCacheConcurrent(t *testing.T) {
	c := newPairCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			for i := int32(0); i < 500; i++ {
				s, t32 := (seed+i)%64, (seed+2*i)%64
				if d, ok := c.get(s, t32); ok && d != int64(s)+int64(t32) {
					t.Errorf("corrupted value for (%d,%d): %d", s, t32, d)
					return
				}
				c.put(c.currentEpoch(), s, t32, int64(s)+int64(t32))
				if i%97 == 0 && seed == 0 {
					c.purge()
				}
			}
		}(int32(w))
	}
	wg.Wait()
}
