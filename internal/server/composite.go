package server

// POST /query: the composite-search endpoint. One request combines
// several distance constraints (near/and/or/not/in) with optional
// combined-distance ranking and a top-k cut, answered through the
// CompositeSearcher capability — the streaming engine over the inverted
// labels, no intermediate neighborhood materialized. The request body
// is the pll.CompositeRequest JSON shape verbatim:
//
//	{"where": {"and": [{"near": {"source": 3, "max_dist": 4}},
//	                   {"near": {"source": 9, "max_dist": 2}}]},
//	 "rank": {"by": "sum", "terms": [{"source": 3, "weight": 2}]},
//	 "k": 10}
//
// Structural validation happens before the oracle is touched, so a
// hostile body fails with 400 without pinning a snapshot, and the
// clause fan-out (near and in leaves plus ranking terms) is capped by
// Config.MaxBatch like every other client-controlled knob.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"pll/internal/trace"
	"pll/pll"
)

// writeJSONBytes writes pre-marshaled JSON (cached responses).
func writeJSONBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck // nothing to do for a dead client
}

// marshalResponse marshals a response map with a trailing newline, the
// same wire shape json.Encoder produces in writeJSON.
func marshalResponse(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req pll.CompositeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Normalizing before keying makes the cache canonical: requests that
	// differ only in defaults ("by":"sum" vs omitted, unsorted "in"
	// members) collapse onto one entry.
	req.Normalize()
	if !s.checkFanout(w, "constraint fan-out", req.Fanout()) {
		return
	}
	if req.K > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "k=%d outside [0,%d]", req.K, s.cfg.MaxBatch)
		return
	}
	canon, err := json.Marshal(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p := trace.ProfileFromContext(r.Context())
	key := "query:" + string(canon)
	if body, ok := s.results.get("query", key); ok {
		p.CacheLookup(true)
		s.composites.Add(1)
		writeJSONBytes(w, http.StatusOK, body)
		return
	}
	p.CacheLookup(false)
	epoch := s.results.currentEpoch()
	var res *pll.CompositeResult
	queryStart := time.Now()
	err = s.oracle.View(func(o pll.Oracle) error {
		cs, ok := o.(pll.CompositeSearcher)
		if !ok {
			return pll.ErrNoSearch
		}
		var err error
		res, err = cs.Composite(&req)
		return err
	})
	if err == nil && p != nil {
		// The engine reports how many label entries its hub-run scans
		// advanced; the run count is folded into the entry total.
		p.AddScan(0, res.Scanned, time.Since(queryStart))
	}
	if err != nil {
		if errors.Is(err, pll.ErrNoSearch) {
			writeError(w, http.StatusConflict, "served index does not support composite queries (a live dynamic index cannot be inverted; serve a frozen snapshot)")
		} else {
			// Remaining failures are request-shaped: vertices out of range
			// for the served index.
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	// K is capped above, so only an untrimmed (k=0) answer can exceed
	// MaxBatch; cut it like /range does rather than ship an unbounded
	// response.
	matches := res.Matches
	truncated := false
	if len(matches) > s.cfg.MaxBatch {
		matches = matches[:s.cfg.MaxBatch]
		truncated = true
	}
	if matches == nil {
		matches = []pll.CompositeMatch{}
	}
	body, err := marshalResponse(map[string]any{
		"count":       len(matches),
		"total":       res.Total,
		"total_exact": res.Exact,
		"truncated":   truncated,
		"matches":     matches,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.results.put(epoch, key, body)
	s.composites.Add(1)
	writeJSONBytes(w, http.StatusOK, body)
}

// queryCacheKeyKNN canonicalizes a /knn request for the result cache.
func queryCacheKeyKNN(s int32, k int32) string {
	return fmt.Sprintf("knn:s=%d&k=%d", s, k)
}
