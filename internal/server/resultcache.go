package server

import (
	"sync"
	"sync/atomic"
)

// resultCache is a sharded fixed-capacity LRU mapping canonicalized
// search requests to their marshaled JSON responses. It closes the gap
// the pair cache leaves open: /knn and /query answers cost a full merge
// or constraint scan, so repeating a hot request used to repeat the
// work while /distance hits stayed free. Keys carry the endpoint name
// ("knn:s=3&k=8", "query:" + canonical JSON), values are the exact
// response bytes, and the same epoch protocol as pairCache keeps a
// slow request from depositing a pre-mutation answer after an /update
// or /reload purge. Hits and misses are tracked per endpoint so /stats
// can show which surface the cache is actually earning on.
type resultCache struct {
	shards [numShards]resultShard
	epoch  atomic.Uint64
	knn    endpointCounters
	query  endpointCounters
}

// endpointCounters is one endpoint's hit/miss tally.
type endpointCounters struct {
	hits   atomic.Int64
	misses atomic.Int64
}

type resultShard struct {
	mu      sync.Mutex
	entries map[string]int // key -> slot in slab
	slab    []resultEntry
	free    []int
	head    int
	tail    int
	cap     int
}

type resultEntry struct {
	key        string
	body       []byte
	prev, next int
}

// newResultCache returns a cache holding about capacity responses, or
// nil when capacity <= 0 (caching disabled). It shares Config.CacheSize
// with the pair cache: one knob bounds both.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	perShard := (capacity + numShards - 1) / numShards
	c := &resultCache{}
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = perShard
		s.entries = make(map[string]int, perShard)
		s.head, s.tail = -1, -1
	}
	return c
}

// counters returns the tally for one endpoint name; unknown endpoints
// fall back to the query tally (there are only two cached endpoints).
func (c *resultCache) endpoint(name string) *endpointCounters {
	if name == "knn" {
		return &c.knn
	}
	return &c.query
}

// shardOf picks a shard by FNV-1a over the key.
func (c *resultCache) shardOf(key string) *resultShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h&(numShards-1)]
}

// get returns the cached response bytes for key, updating the
// endpoint's hit/miss counters and recency. The returned slice is
// shared — callers must only write it to the wire, never mutate it.
func (c *resultCache) get(endpoint, key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shardOf(key)
	sh.mu.Lock()
	slot, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		c.endpoint(endpoint).misses.Add(1)
		return nil, false
	}
	sh.moveToFront(slot)
	b := sh.slab[slot].body
	sh.mu.Unlock()
	c.endpoint(endpoint).hits.Add(1)
	return b, true
}

// currentEpoch returns the value to pass to put; capture it before
// running the query the cached response describes.
func (c *resultCache) currentEpoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// put records the response computed while epoch was current; a put a
// purge has since invalidated is dropped (see pairCache.put).
func (c *resultCache) put(epoch uint64, key string, body []byte) {
	if c == nil {
		return
	}
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.epoch.Load() != epoch {
		return
	}
	if slot, ok := sh.entries[key]; ok {
		sh.slab[slot].body = body
		sh.moveToFront(slot)
		return
	}
	var slot int
	switch {
	case len(sh.free) > 0:
		slot = sh.free[len(sh.free)-1]
		sh.free = sh.free[:len(sh.free)-1]
	case len(sh.slab) < sh.cap:
		sh.slab = append(sh.slab, resultEntry{})
		slot = len(sh.slab) - 1
	default:
		slot = sh.tail
		sh.unlink(slot)
		delete(sh.entries, sh.slab[slot].key)
	}
	sh.slab[slot] = resultEntry{key: key, body: body, prev: -1, next: -1}
	sh.pushFront(slot)
	sh.entries[key] = slot
}

// purge empties the cache on index mutation; epoch first, so in-flight
// puts against the old index are rejected (see pairCache.purge).
func (c *resultCache) purge() {
	if c == nil {
		return
	}
	c.epoch.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[string]int, sh.cap)
		sh.slab = sh.slab[:0]
		sh.free = sh.free[:0]
		sh.head, sh.tail = -1, -1
		sh.mu.Unlock()
	}
}

// len reports the number of cached responses across all shards.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// capacity reports the effective response bound (configured size
// rounded up to whole shards, like pairCache.capacity).
func (c *resultCache) capacity() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		n += c.shards[i].cap
	}
	return n
}

// hitCount and missCount read one endpoint's tallies for /metrics.
func (c *resultCache) hitCount(endpoint string) int64 {
	if c == nil {
		return 0
	}
	return c.endpoint(endpoint).hits.Load()
}

func (c *resultCache) missCount(endpoint string) int64 {
	if c == nil {
		return 0
	}
	return c.endpoint(endpoint).misses.Load()
}

// stats returns the per-endpoint tallies as a JSON-ready map.
func (c *resultCache) stats() map[string]any {
	if c == nil {
		return map[string]any{
			"entries":  0,
			"capacity": 0,
			"knn":      map[string]int64{"hits": 0, "misses": 0},
			"query":    map[string]int64{"hits": 0, "misses": 0},
		}
	}
	return map[string]any{
		"entries":  c.len(),
		"capacity": c.capacity(),
		"knn":      map[string]int64{"hits": c.knn.hits.Load(), "misses": c.knn.misses.Load()},
		"query":    map[string]int64{"hits": c.query.hits.Load(), "misses": c.query.misses.Load()},
	}
}

func (sh *resultShard) unlink(slot int) {
	e := &sh.slab[slot]
	if e.prev >= 0 {
		sh.slab[e.prev].next = e.next
	} else {
		sh.head = e.next
	}
	if e.next >= 0 {
		sh.slab[e.next].prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

func (sh *resultShard) pushFront(slot int) {
	e := &sh.slab[slot]
	e.prev, e.next = -1, sh.head
	if sh.head >= 0 {
		sh.slab[sh.head].prev = slot
	}
	sh.head = slot
	if sh.tail < 0 {
		sh.tail = slot
	}
}

func (sh *resultShard) moveToFront(slot int) {
	if sh.head == slot {
		return
	}
	sh.unlink(slot)
	sh.pushFront(slot)
}
