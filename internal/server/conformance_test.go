package server

import (
	"fmt"
	"net/http"
	"path/filepath"
	"testing"

	"pll/internal/bfs"
	"pll/internal/gen"
	"pll/internal/graph"
	"pll/internal/rng"
	"pll/pll"
)

// The conformance suite builds every index variant on random graphs
// and checks /distance, /batch and /path answers against the BFS and
// Dijkstra ground truths, going through the exact code path production
// traffic takes: ConcurrentOracle -> handler -> JSON.

// variantCase wires one oracle to its baseline.
type variantCase struct {
	name   string
	oracle pll.Oracle
	// dist returns the ground-truth distance from s to every vertex.
	dist func(s int32) []int64
	// hop returns the weight of the edge/arc u->v, or -1 if absent
	// (used to validate /path answers); nil when paths are unsupported.
	hop func(u, v int32) int64
	n   int
}

// toInt64 widens a BFS distance row.
func toInt64(row []int32) []int64 {
	out := make([]int64, len(row))
	for i, d := range row {
		out[i] = int64(d)
	}
	return out
}

// undirectedCase builds the static undirected index (WithPaths) over
// an Erdos-Renyi graph.
func undirectedCase(t *testing.T, n int, m int64, seed uint64) variantCase {
	t.Helper()
	gg := gen.ErdosRenyi(n, m, seed)
	pg, err := pll.NewGraph(n, gg.Edges())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pll.Build(pg, pll.WithPaths(), pll.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return variantCase{
		name:   "undirected",
		oracle: ix,
		dist:   func(s int32) []int64 { return toInt64(bfs.AllDistances(gg, s)) },
		hop: func(u, v int32) int64 {
			for _, nb := range gg.Neighbors(u) {
				if nb == v {
					return 1
				}
			}
			return -1
		},
		n: n,
	}
}

// directedCase builds the directed index over a random digraph;
// withPaths additionally stores parent pointers (required for the
// /path checks, unsupported by the serialized formats).
func directedCase(t *testing.T, n int, m int64, seed uint64, withPaths bool) variantCase {
	t.Helper()
	dg := gen.RandomDigraph(n, m, seed)
	arcs := make([]pll.Edge, 0, m)
	for v := int32(0); v < int32(n); v++ {
		for _, u := range dg.OutNeighbors(v) {
			arcs = append(arcs, pll.Edge{U: v, V: u})
		}
	}
	pg, err := pll.NewDigraph(n, arcs)
	if err != nil {
		t.Fatal(err)
	}
	opts := []pll.Option{pll.WithSeed(seed)}
	if withPaths {
		opts = append(opts, pll.WithPaths())
	}
	ix, err := pll.BuildDirected(pg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return variantCase{
		name:   "directed",
		oracle: ix,
		dist:   func(s int32) []int64 { return toInt64(bfs.DirectedAllDistances(dg, s, true)) },
		hop: func(u, v int32) int64 {
			for _, nb := range dg.OutNeighbors(u) {
				if nb == v {
					return 1
				}
			}
			return -1
		},
		n: n,
	}
}

// weightedCase builds the weighted index over a random graph with
// weights in [1,10]; withPaths as in directedCase.
func weightedCase(t *testing.T, n int, m int64, seed uint64, withPaths bool) variantCase {
	t.Helper()
	gg := gen.ErdosRenyi(n, m, seed)
	wg := gen.RandomWeights(gg, 1, 10, seed+1)
	var edges []pll.WeightedEdge
	for v := int32(0); v < int32(n); v++ {
		ws := wg.Weights(v)
		for i, u := range wg.Neighbors(v) {
			if v < u {
				edges = append(edges, pll.WeightedEdge{U: v, V: u, Weight: ws[i]})
			}
		}
	}
	pg, err := pll.NewWeightedGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	opts := []pll.Option{pll.WithSeed(seed)}
	if withPaths {
		opts = append(opts, pll.WithPaths())
	}
	ix, err := pll.BuildWeighted(pg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return variantCase{
		name:   "weighted",
		oracle: ix,
		dist: func(s int32) []int64 {
			row := bfs.DijkstraAll(wg, s)
			out := make([]int64, len(row))
			for i, d := range row {
				if d == bfs.InfWeight {
					out[i] = -1
				} else {
					out[i] = int64(d)
				}
			}
			return out
		},
		hop: func(u, v int32) int64 {
			ws := wg.Weights(u)
			for i, nb := range wg.Neighbors(u) {
				if nb == v {
					return int64(ws[i])
				}
			}
			return -1
		},
		n: n,
	}
}

// dynamicCase builds the dynamic index over the same random graph (no
// paths; updates are exercised separately).
func dynamicCase(t *testing.T, n int, m int64, seed uint64) variantCase {
	t.Helper()
	gg := gen.ErdosRenyi(n, m, seed)
	pg, err := pll.NewGraph(n, gg.Edges())
	if err != nil {
		t.Fatal(err)
	}
	di, err := pll.BuildDynamic(pg, pll.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return variantCase{
		name:   "dynamic",
		oracle: di,
		dist:   func(s int32) []int64 { return toInt64(bfs.AllDistances(gg, s)) },
		n:      n,
	}
}

// flatVariant round-trips a case's oracle through WriteFlatFile + Open
// so the same ground-truth checks run against the memory-mapped
// zero-copy FlatIndex, through the same handlers (its /batch answers
// flow through the Batcher capability). withPaths=false drops the
// /path checks for variants whose flat form cannot carry parents.
func flatVariant(t *testing.T, base variantCase, withPaths bool) variantCase {
	t.Helper()
	path := filepath.Join(t.TempDir(), base.name+".pllbox")
	if err := pll.WriteFlatFile(path, base.oracle); err != nil {
		t.Fatal(err)
	}
	fi, err := pll.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fi.Close() })
	out := base
	out.name = "flat-" + base.name
	out.oracle = fi
	if !withPaths {
		out.hop = nil
	}
	return out
}

// checkVariant drives tc.oracle through httptest handlers and compares
// every answer with the baseline.
func checkVariant(t *testing.T, tc variantCase) {
	t.Helper()
	_, ts := newTestServer(t, tc.oracle, Config{CacheSize: 256})
	r := rng.New(99)

	// Single-source /batch sweeps from a few sources cover every target.
	targets := make([]int32, tc.n)
	for i := range targets {
		targets[i] = int32(i)
	}
	for _, src := range []int32{0, r.Int31n(int32(tc.n)), int32(tc.n - 1)} {
		want := tc.dist(src)
		var resp struct {
			Distances []int64 `json:"distances"`
		}
		postJSON(t, ts.URL+"/batch", batchRequest{Source: &src, Targets: targets},
			http.StatusOK, &resp)
		if len(resp.Distances) != tc.n {
			t.Fatalf("%s: batch returned %d distances", tc.name, len(resp.Distances))
		}
		for tt, got := range resp.Distances {
			if got != want[tt] {
				t.Fatalf("%s: batch d(%d,%d) = %d, want %d", tc.name, src, tt, got, want[tt])
			}
		}
	}

	// Random /distance spot checks (also exercises the cache) and, when
	// supported, /path validation: right endpoints, every hop a real
	// edge, total weight exactly the shortest distance.
	for i := 0; i < 25; i++ {
		s := r.Int31n(int32(tc.n))
		tt := r.Int31n(int32(tc.n))
		want := tc.dist(s)[tt]
		var dr distanceResponse
		getJSON(t, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, s, tt), http.StatusOK, &dr)
		if dr.Distance != want {
			t.Fatalf("%s: d(%d,%d) = %d, want %d", tc.name, s, tt, dr.Distance, want)
		}
		if tc.hop == nil {
			continue
		}
		var pr struct {
			Path      []int32 `json:"path"`
			Reachable bool    `json:"reachable"`
		}
		getJSON(t, fmt.Sprintf("%s/path?s=%d&t=%d", ts.URL, s, tt), http.StatusOK, &pr)
		if want == -1 {
			if pr.Reachable {
				t.Fatalf("%s: path(%d,%d) exists for a disconnected pair", tc.name, s, tt)
			}
			continue
		}
		if !pr.Reachable || len(pr.Path) == 0 || pr.Path[0] != s || pr.Path[len(pr.Path)-1] != tt {
			t.Fatalf("%s: path(%d,%d) = %v (reachable=%v)", tc.name, s, tt, pr.Path, pr.Reachable)
		}
		total := int64(0)
		for j := 0; j+1 < len(pr.Path); j++ {
			w := tc.hop(pr.Path[j], pr.Path[j+1])
			if w < 0 {
				t.Fatalf("%s: path(%d,%d) uses nonexistent edge %d->%d",
					tc.name, s, tt, pr.Path[j], pr.Path[j+1])
			}
			total += w
		}
		if total != want {
			t.Fatalf("%s: path(%d,%d) has weight %d, want %d", tc.name, s, tt, total, want)
		}
	}
}

func TestConformanceAllVariants(t *testing.T) {
	const (
		n    = 60
		m    = 150
		seed = 7
	)
	cases := []variantCase{
		undirectedCase(t, n, m, seed),
		directedCase(t, n, m, seed, true),
		weightedCase(t, n, m, seed, true),
		dynamicCase(t, n, m, seed),
	}
	// The same ground truths re-checked against memory-mapped flat
	// containers of each variant. The flat directed/weighted formats
	// (like version 1) cannot serialize parent pointers, so those two
	// cases rebuild path-free on their own graphs.
	cases = append(cases,
		flatVariant(t, cases[0], true), // undirected: flat keeps parents
		flatVariant(t, cases[3], false),
		flatVariant(t, directedCase(t, n, m, seed+1, false), false),
		flatVariant(t, weightedCase(t, n, m, seed+1, false), false),
	)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkVariant(t, tc) })
	}
}

// TestConformanceDynamicAfterUpdates inserts held-out edges through
// POST /update and re-checks every distance against BFS on the full
// graph — the server-path version of the paper's incremental-update
// exactness claim.
func TestConformanceDynamicAfterUpdates(t *testing.T) {
	const (
		n    = 50
		m    = 120
		seed = 11
		hold = 15
	)
	full := gen.ErdosRenyi(n, m, seed)
	edges := full.Edges()
	if len(edges) <= hold {
		t.Fatal("graph too small for holdout")
	}
	initial := edges[:len(edges)-hold]
	held := edges[len(edges)-hold:]

	pg, err := pll.NewGraph(n, initial)
	if err != nil {
		t.Fatal(err)
	}
	di, err := pll.BuildDynamic(pg, pll.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, di, Config{CacheSize: 128})

	// Baseline before updates.
	gInit, err := graph.NewGraph(n, initial)
	if err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Distances []int64 `json:"distances"`
	}
	targets := make([]int32, n)
	for i := range targets {
		targets[i] = int32(i)
	}
	src := int32(0)
	postJSON(t, ts.URL+"/batch", batchRequest{Source: &src, Targets: targets}, http.StatusOK, &resp)
	for tt, got := range resp.Distances {
		if want := int64(bfs.AllDistances(gInit, src)[tt]); got != want {
			t.Fatalf("pre-update d(0,%d) = %d, want %d", tt, got, want)
		}
	}

	// Stream the held-out edges in through the handler.
	upd := make([][2]int32, len(held))
	for i, e := range held {
		upd[i] = [2]int32{e.U, e.V}
	}
	postJSON(t, ts.URL+"/update", updateRequest{Edges: upd}, http.StatusOK, nil)

	// Every pair must now match BFS on the full graph.
	for _, src := range []int32{0, 17, int32(n - 1)} {
		want := bfs.AllDistances(full, src)
		postJSON(t, ts.URL+"/batch", batchRequest{Source: &src, Targets: targets}, http.StatusOK, &resp)
		for tt, got := range resp.Distances {
			if got != int64(want[tt]) {
				t.Fatalf("post-update d(%d,%d) = %d, want %d", src, tt, got, want[tt])
			}
		}
	}
}
