// Package server exposes any pll.Oracle over an HTTP/JSON API: the
// query surface (/distance, /path, /batch), operational endpoints
// (/stats, /healthz) and the mutation endpoints (/update for dynamic
// indexes, /reload for atomic index hot-swap). cmd/pllserved is the
// thin binary around it.
package server

import (
	"sync"
	"sync/atomic"
)

// numShards spreads cache locks so concurrent readers on different
// pairs rarely contend; must be a power of two.
const numShards = 16

// pairCache is a sharded fixed-capacity LRU mapping query pairs to
// distances. Distance queries are microseconds, so the cache only pays
// off under heavy repetition of hot pairs — exactly the serving
// workload — and it must never become the bottleneck itself: each
// shard has its own lock and a hand-rolled intrusive LRU list over a
// flat entry slice (no container/list allocations on the hot path).
// An epoch counter makes purges race-free: a put carries the epoch the
// caller observed *before* computing its answer, and the shard rejects
// it if a purge has bumped the epoch since. Without this, a slow
// request could compute a distance, lose the race with an /update or
// /reload purge, and then deposit the stale answer into the fresh
// cache, serving it forever.
type pairCache struct {
	shards [numShards]cacheShard
	epoch  atomic.Uint64
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[uint64]int // key -> slot in slab
	slab    []cacheEntry
	free    []int
	head    int // most recently used slot, -1 if empty
	tail    int // least recently used slot, -1 if empty
	cap     int
}

type cacheEntry struct {
	key        uint64
	value      int64
	prev, next int // intrusive LRU links, -1 terminated
}

// newPairCache returns a cache holding about capacity entries in
// total, or nil when capacity <= 0 (caching disabled).
func newPairCache(capacity int) *pairCache {
	if capacity <= 0 {
		return nil
	}
	perShard := (capacity + numShards - 1) / numShards
	c := &pairCache{}
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = perShard
		s.entries = make(map[uint64]int, perShard)
		s.head, s.tail = -1, -1
	}
	return c
}

// pairKey packs an (s,t) query pair into one map key.
func pairKey(s, t int32) uint64 { return uint64(uint32(s))<<32 | uint64(uint32(t)) }

// shardOf mixes the key before taking the low bits so that pairs
// sharing a target don't pile onto one shard.
func (c *pairCache) shardOf(key uint64) *cacheShard {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return &c.shards[key&(numShards-1)]
}

// get returns the cached distance for (s,t) and whether it was
// present, updating hit/miss counters and recency.
func (c *pairCache) get(s, t int32) (int64, bool) {
	if c == nil {
		return 0, false
	}
	key := pairKey(s, t)
	sh := c.shardOf(key)
	sh.mu.Lock()
	slot, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return 0, false
	}
	sh.moveToFront(slot)
	v := sh.slab[slot].value
	sh.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// currentEpoch returns the value to pass to put; capture it before
// running the query the result describes.
func (c *pairCache) currentEpoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// put records the distance for (s,t) computed while epoch was current,
// evicting the least recently used pair of the shard when it is full.
// A put whose epoch a purge has since invalidated is dropped.
func (c *pairCache) put(epoch uint64, s, t int32, d int64) {
	if c == nil {
		return
	}
	key := pairKey(s, t)
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.epoch.Load() != epoch {
		return
	}
	if slot, ok := sh.entries[key]; ok {
		sh.slab[slot].value = d
		sh.moveToFront(slot)
		return
	}
	var slot int
	switch {
	case len(sh.free) > 0:
		slot = sh.free[len(sh.free)-1]
		sh.free = sh.free[:len(sh.free)-1]
	case len(sh.slab) < sh.cap:
		sh.slab = append(sh.slab, cacheEntry{})
		slot = len(sh.slab) - 1
	default:
		slot = sh.tail
		sh.unlink(slot)
		delete(sh.entries, sh.slab[slot].key)
	}
	sh.slab[slot] = cacheEntry{key: key, value: d, prev: -1, next: -1}
	sh.pushFront(slot)
	sh.entries[key] = slot
}

// purge empties the cache; called when the index mutates (update or
// hot-reload) so stale distances can never be served. The epoch bump
// happens first, so any in-flight put that computed its answer against
// the pre-mutation index is rejected when it reaches its shard —
// whether that is before or after the shard is cleared below.
func (c *pairCache) purge() {
	if c == nil {
		return
	}
	c.epoch.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[uint64]int, sh.cap)
		sh.slab = sh.slab[:0]
		sh.free = sh.free[:0]
		sh.head, sh.tail = -1, -1
		sh.mu.Unlock()
	}
}

// len reports the number of cached pairs across all shards.
func (c *pairCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// capacity reports the effective entry bound: the configured size
// rounded up to numShards × perShard (newPairCache splits the budget
// evenly, so 100 becomes 16×7 = 112).
func (c *pairCache) capacity() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		n += c.shards[i].cap
	}
	return n
}

// counters returns cumulative hits and misses.
func (c *pairCache) counters() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// unlink removes slot from the LRU list (caller holds the lock).
func (sh *cacheShard) unlink(slot int) {
	e := &sh.slab[slot]
	if e.prev >= 0 {
		sh.slab[e.prev].next = e.next
	} else {
		sh.head = e.next
	}
	if e.next >= 0 {
		sh.slab[e.next].prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

// pushFront makes slot the most recently used (caller holds the lock).
func (sh *cacheShard) pushFront(slot int) {
	e := &sh.slab[slot]
	e.prev, e.next = -1, sh.head
	if sh.head >= 0 {
		sh.slab[sh.head].prev = slot
	}
	sh.head = slot
	if sh.tail < 0 {
		sh.tail = slot
	}
}

// moveToFront refreshes recency for slot (caller holds the lock).
func (sh *cacheShard) moveToFront(slot int) {
	if sh.head == slot {
		return
	}
	sh.unlink(slot)
	sh.pushFront(slot)
}
