package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pll/pll"
)

// lineGraph returns the path graph 0-1-...-(n-1).
func lineGraph(t *testing.T, n int) *pll.Graph {
	t.Helper()
	edges := make([]pll.Edge, n-1)
	for i := range edges {
		edges[i] = pll.Edge{U: int32(i), V: int32(i + 1)}
	}
	g, err := pll.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newTestServer serves the given oracle on an httptest server.
func newTestServer(t *testing.T, o pll.Oracle, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(pll.NewConcurrentOracle(o), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getJSON issues a GET and decodes the JSON response into out.
func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
}

// postJSON issues a POST with a JSON body and decodes the response.
func postJSON(t *testing.T, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: bad JSON: %v", url, err)
		}
	}
}

func TestHealthz(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})
	var resp struct {
		Status     string `json:"status"`
		Vertices   int    `json:"vertices"`
		Variant    string `json:"variant"`
		Generation int64  `json:"generation"`
		Checksum   string `json:"checksum"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &resp)
	if resp.Status != "ok" || resp.Vertices != 5 {
		t.Fatalf("healthz = %+v", resp)
	}
	// The identity fields are the cluster coordinator's pooling key: a
	// replica pool refuses to merge answers across disagreeing values.
	if resp.Variant != "undirected" || resp.Checksum == "" {
		t.Fatalf("healthz identity = %+v", resp)
	}
}

func TestDistanceEndpoint(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})
	var resp distanceResponse
	getJSON(t, ts.URL+"/distance?s=0&t=7", http.StatusOK, &resp)
	if resp.Distance != 7 || !resp.Reachable {
		t.Fatalf("distance = %+v", resp)
	}

	// Bad input shapes.
	for _, q := range []string{"", "?s=0", "?s=0&t=zzz", "?s=0&t=99", "?s=-5&t=0"} {
		getJSON(t, ts.URL+"/distance"+q, http.StatusBadRequest, nil)
	}
}

func TestDistanceUnreachable(t *testing.T) {
	// Two components: 0-1 and 2-3.
	g, err := pll.NewGraph(4, []pll.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pll.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})
	var resp distanceResponse
	getJSON(t, ts.URL+"/distance?s=0&t=3", http.StatusOK, &resp)
	if resp.Reachable || resp.Distance != int64(pll.Unreachable) {
		t.Fatalf("disconnected pair = %+v", resp)
	}
}

func TestPathEndpoint(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 6), pll.WithPaths())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})
	var resp struct {
		Path      []int32 `json:"path"`
		Hops      int     `json:"hops"`
		Reachable bool    `json:"reachable"`
	}
	getJSON(t, ts.URL+"/path?s=1&t=4", http.StatusOK, &resp)
	if !resp.Reachable || resp.Hops != 3 || len(resp.Path) != 4 || resp.Path[0] != 1 || resp.Path[3] != 4 {
		t.Fatalf("path = %+v", resp)
	}
}

func TestPathWithoutParentPointers(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})
	getJSON(t, ts.URL+"/path?s=0&t=3", http.StatusConflict, nil)
}

func TestBatchPairs(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})
	var resp struct {
		Count     int     `json:"count"`
		Distances []int64 `json:"distances"`
	}
	postJSON(t, ts.URL+"/batch",
		batchRequest{Pairs: [][2]int32{{0, 9}, {3, 3}, {2, 5}}},
		http.StatusOK, &resp)
	want := []int64{9, 0, 3}
	if resp.Count != 3 || len(resp.Distances) != 3 {
		t.Fatalf("batch = %+v", resp)
	}
	for i, d := range want {
		if resp.Distances[i] != d {
			t.Fatalf("distances = %v, want %v", resp.Distances, want)
		}
	}
}

func TestBatchSingleSource(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})
	src := int32(0)
	var resp struct {
		Distances []int64 `json:"distances"`
	}
	postJSON(t, ts.URL+"/batch",
		batchRequest{Source: &src, Targets: []int32{1, 5, 9, 0}},
		http.StatusOK, &resp)
	want := []int64{1, 5, 9, 0}
	for i, d := range want {
		if resp.Distances[i] != d {
			t.Fatalf("distances = %v, want %v", resp.Distances, want)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{MaxBatch: 2})
	src := int32(0)
	// Both forms at once.
	postJSON(t, ts.URL+"/batch",
		batchRequest{Source: &src, Targets: []int32{1}, Pairs: [][2]int32{{0, 1}}},
		http.StatusBadRequest, nil)
	// Neither form.
	postJSON(t, ts.URL+"/batch", batchRequest{}, http.StatusBadRequest, nil)
	// Out-of-range vertex.
	postJSON(t, ts.URL+"/batch",
		batchRequest{Pairs: [][2]int32{{0, 17}}},
		http.StatusBadRequest, nil)
	// Over the batch cap.
	postJSON(t, ts.URL+"/batch",
		batchRequest{Pairs: [][2]int32{{0, 1}, {1, 2}, {2, 3}}},
		http.StatusRequestEntityTooLarge, nil)
}

func TestUpdateEndpointDynamic(t *testing.T) {
	di, err := pll.BuildDynamic(lineGraph(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, di, Config{CacheSize: 64})
	var before distanceResponse
	getJSON(t, ts.URL+"/distance?s=0&t=7", http.StatusOK, &before)
	if before.Distance != 7 {
		t.Fatalf("before = %+v", before)
	}
	var upd struct {
		Inserted int `json:"inserted"`
	}
	postJSON(t, ts.URL+"/update",
		updateRequest{Edges: [][2]int32{{0, 6}, {0, 7}}},
		http.StatusOK, &upd)
	if upd.Inserted != 2 {
		t.Fatalf("update = %+v", upd)
	}
	// The cached pre-update distance must be gone.
	var after distanceResponse
	getJSON(t, ts.URL+"/distance?s=0&t=7", http.StatusOK, &after)
	if after.Distance != 1 || after.Cached {
		t.Fatalf("after = %+v", after)
	}

	// Out-of-range edge.
	postJSON(t, ts.URL+"/update",
		updateRequest{Edges: [][2]int32{{0, 1000}}},
		http.StatusBadRequest, nil)
	// Empty body.
	postJSON(t, ts.URL+"/update", updateRequest{}, http.StatusBadRequest, nil)
}

func TestUpdateEndpointStaticConflicts(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})
	postJSON(t, ts.URL+"/update",
		updateRequest{Edges: [][2]int32{{0, 3}}},
		http.StatusConflict, nil)
}

func TestStatsEndpoint(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{CacheSize: 32})
	getJSON(t, ts.URL+"/distance?s=0&t=5", http.StatusOK, nil)
	getJSON(t, ts.URL+"/distance?s=0&t=5", http.StatusOK, nil) // cache hit
	var resp struct {
		Index struct {
			Variant  string `json:"variant"`
			Vertices int    `json:"vertices"`
		} `json:"index"`
		Server struct {
			Queries    int64  `json:"queries"`
			Generation uint64 `json:"generation"`
		} `json:"server"`
		Cache struct {
			Enabled bool  `json:"enabled"`
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Entries int   `json:"entries"`
		} `json:"cache"`
	}
	getJSON(t, ts.URL+"/stats", http.StatusOK, &resp)
	if resp.Index.Variant != "undirected" || resp.Index.Vertices != 6 {
		t.Fatalf("stats.index = %+v", resp.Index)
	}
	if resp.Server.Queries != 2 || resp.Server.Generation != 0 {
		t.Fatalf("stats.server = %+v", resp.Server)
	}
	if !resp.Cache.Enabled || resp.Cache.Hits != 1 || resp.Cache.Misses != 1 || resp.Cache.Entries != 1 {
		t.Fatalf("stats.cache = %+v", resp.Cache)
	}
}

// writeIndexFile builds an index over a line graph of n vertices and
// writes it as a container file.
func writeIndexFile(t *testing.T, dir string, name string, n int) string {
	t.Helper()
	ix, err := pll.Build(lineGraph(t, n))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := pll.WriteFile(path, ix); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeFlatIndexFile writes a line-graph index as a flat (version-2)
// container, the format /reload opens zero-copy.
func writeFlatIndexFile(t *testing.T, dir string, name string, n int) string {
	t.Helper()
	ix, err := pll.Build(lineGraph(t, n))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := pll.WriteFlatFile(path, ix); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReloadFlatContainer hot-swaps the serving oracle onto a memory-
// mapped flat container and then back to a heap-loaded one, exercising
// the zero-copy reload path and the deferred Close of the retired
// mapping (a short CloseGrace lets the retirement actually run).
func TestReloadFlatContainer(t *testing.T) {
	dir := t.TempDir()
	v1 := writeIndexFile(t, dir, "v1.pllbox", 4)
	flat := writeFlatIndexFile(t, dir, "flat.pllbox", 9)

	o, err := pll.LoadFile(v1)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, o, Config{IndexPath: v1, CacheSize: 16, CloseGrace: time.Millisecond})

	var rr struct {
		Vertices   int    `json:"vertices"`
		Variant    string `json:"variant"`
		Generation uint64 `json:"generation"`
	}
	postJSON(t, ts.URL+"/reload", reloadRequest{Path: flat}, http.StatusOK, &rr)
	if rr.Vertices != 9 {
		t.Fatalf("reloaded flat index has %d vertices, want 9", rr.Vertices)
	}
	if _, ok := srv.Oracle().Snapshot().(*pll.FlatIndex); !ok {
		t.Fatalf("serving %T after flat reload, want *pll.FlatIndex", srv.Oracle().Snapshot())
	}
	var dr distanceResponse
	getJSON(t, ts.URL+"/distance?s=0&t=8", http.StatusOK, &dr)
	if dr.Distance != 8 {
		t.Fatalf("d(0,8) = %d on the mapped line graph, want 8", dr.Distance)
	}

	// Swap back to the heap index: the retired FlatIndex must be closed
	// after the grace period without disturbing serving.
	postJSON(t, ts.URL+"/reload", reloadRequest{}, http.StatusOK, &rr)
	if rr.Vertices != 4 {
		t.Fatalf("reloaded v1 index has %d vertices, want 4", rr.Vertices)
	}
	time.Sleep(20 * time.Millisecond) // let the AfterFunc close the mapping
	getJSON(t, ts.URL+"/distance?s=0&t=3", http.StatusOK, &dr)
	if dr.Distance != 3 {
		t.Fatalf("d(0,3) = %d after swapping back, want 3", dr.Distance)
	}
}

func TestReloadEndpoint(t *testing.T) {
	dir := t.TempDir()
	first := writeIndexFile(t, dir, "first.pllbox", 4)
	second := writeIndexFile(t, dir, "second.pllbox", 9)

	o, err := pll.LoadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, o, Config{IndexPath: first, CacheSize: 16})

	// Warm the cache, then swap in the bigger index by explicit path.
	getJSON(t, ts.URL+"/distance?s=0&t=3", http.StatusOK, nil)
	var resp struct {
		Vertices   int    `json:"vertices"`
		Generation uint64 `json:"generation"`
	}
	postJSON(t, ts.URL+"/reload", reloadRequest{Path: second}, http.StatusOK, &resp)
	if resp.Vertices != 9 || resp.Generation != 1 {
		t.Fatalf("reload = %+v", resp)
	}
	var d distanceResponse
	getJSON(t, ts.URL+"/distance?s=0&t=8", http.StatusOK, &d)
	if d.Distance != 8 || d.Cached {
		t.Fatalf("post-reload distance = %+v", d)
	}

	// Empty body re-reads the configured path (back to 4 vertices).
	postJSON(t, ts.URL+"/reload", nil, http.StatusOK, &resp)
	if resp.Vertices != 4 || resp.Generation != 2 {
		t.Fatalf("reload from IndexPath = %+v", resp)
	}

	// A bad path reports failure and keeps serving the old index.
	postJSON(t, ts.URL+"/reload", reloadRequest{Path: filepath.Join(dir, "missing.pllbox")},
		http.StatusUnprocessableEntity, nil)
	var h struct {
		Vertices int `json:"vertices"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Vertices != 4 {
		t.Fatalf("index lost after failed reload: %+v", h)
	}
}

func TestReloadRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	good := writeIndexFile(t, dir, "good.pllbox", 4)
	bad := filepath.Join(dir, "bad.pllbox")
	if err := os.WriteFile(bad, []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := pll.LoadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, o, Config{IndexPath: good})
	postJSON(t, ts.URL+"/reload", reloadRequest{Path: bad}, http.StatusUnprocessableEntity, nil)
}

// TestConcurrentQueriesUpdatesAndReloads is the subsystem's race
// exercise: HTTP readers, an /update writer and a /reload swapper all
// run at once against one server. Run with -race; every response must
// stay well-formed and every distance exact for some generation of the
// index (on a line graph with shortcuts being added, any answer in
// [0, n) is plausible — exactness per generation is covered by the
// conformance suite, this test is about safety under concurrency).
func TestConcurrentQueriesUpdatesAndReloads(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	path := writeIndexFile(t, dir, "reload.pllbox", n)

	di, err := pll.BuildDynamic(lineGraph(t, n))
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, di, Config{IndexPath: path, CacheSize: 128})
	client := ts.Client()

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := (seed + i) % n
				tt := (seed + 3*i) % n
				resp, err := client.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, s, tt))
				if err != nil {
					report("GET /distance: %v", err)
					return
				}
				var dr distanceResponse
				err = json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					report("distance status=%d err=%v", resp.StatusCode, err)
					return
				}
				if dr.Distance < 0 || dr.Distance >= n {
					report("distance(%d,%d) = %d out of range", s, tt, dr.Distance)
					return
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int32(0); i < n-2; i += 2 {
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(updateRequest{Edges: [][2]int32{{i, i + 2}}})
			resp, err := client.Post(ts.URL+"/update", "application/json", &buf)
			if err != nil {
				report("POST /update: %v", err)
				return
			}
			resp.Body.Close()
			// 200 while the dynamic index is serving, 409 after a reload
			// swapped in the static file — both are correct here.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
				report("update status=%d", resp.StatusCode)
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := srv.Reload(path); err != nil {
				report("reload: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
