package server

// Stack is the serving-tier middleware shared by every binary that
// exposes a query surface: cmd/pllserved mounts it in front of the
// index handlers (via Server), and cmd/pllrouted mounts the same stack
// in front of the cluster coordinator's scatter-gather handlers. One
// request passes, outermost first, through
//
//	Wrap       – the global in-flight count Drain waits on at shutdown
//	Instrument – per-endpoint status-class counters, the latency
//	             histogram, and sampled structured request logging
//	Guarded    – admission control (per-client token bucket, global
//	             concurrency cap), shedding 429 + Retry-After
//
// so any handler set mounted behind a Stack gets the same operability
// contract: a Prometheus scrape surface (WriteMetrics), load shedding,
// and drain-aware shutdown.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"pll/internal/trace"
)

// StackConfig tunes the middleware stack. Every field zero yields a
// stack that only instruments (no admission control, no logging).
type StackConfig struct {
	// RatePerSec is the per-client steady-state request rate (keyed by
	// X-Client-Id, else remote IP); excess requests answer 429 with
	// Retry-After. 0 disables rate limiting.
	RatePerSec float64
	// RateBurst is the token-bucket depth a client can spend at once;
	// 0 means 2×RatePerSec (at least 1).
	RateBurst int
	// MaxInflight caps concurrently executing guarded requests; excess
	// requests are shed with 429 + Retry-After instead of queueing.
	// 0 disables the cap.
	MaxInflight int
	// LogEvery emits one structured request log line (slog) per
	// LogEvery requests; 0 disables request logging.
	LogEvery int
	// Logger receives the sampled request logs; nil means
	// slog.Default().
	Logger *slog.Logger
	// Tracer drives distributed tracing and per-query profiling; nil
	// means a default tracer that never head-samples but still mints
	// trace IDs (X-Trace-Id correlation) and records errored requests.
	Tracer *trace.Tracer
}

// Stack bundles the middleware state: per-endpoint metrics, the
// admission controller, the global in-flight count, and the request-log
// sampler. The endpoint set is fixed at construction so every metric
// series exists from the first scrape.
type Stack struct {
	cfg     StackConfig
	metrics *metrics
	admit   *admission
	tracer  *trace.Tracer

	active atomic.Int64 // every executing request; Drain waits on it
	logSeq atomic.Int64 // request-log sampling sequence
}

// NewStack builds a middleware stack whose metrics cover exactly the
// named endpoints.
func NewStack(cfg StackConfig, endpoints ...string) *Stack {
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.New(trace.Config{})
	}
	return &Stack{
		cfg:     cfg,
		metrics: newMetrics(endpoints...),
		admit:   newAdmission(cfg),
		tracer:  tracer,
	}
}

// Tracer returns the stack's tracer (for /debug/traces and stats).
func (st *Stack) Tracer() *trace.Tracer { return st.tracer }

// Wrap registers every request in the global in-flight count. Mount it
// outermost (around the mux) so Drain sees requests that never match a
// route too.
func (st *Stack) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st.active.Add(1)
		defer st.active.Add(-1)
		h.ServeHTTP(w, r)
	})
}

// InflightRequests reports the number of requests currently executing.
func (st *Stack) InflightRequests() int64 { return st.active.Load() }

// Drain blocks until no request is executing or ctx expires. Call it
// after http.Server.Shutdown returns — including on Shutdown timeout,
// when handlers may still be mid-request — before releasing any
// resource those handlers read (a mapped index, a connection pool).
func (st *Stack) Drain(ctx context.Context) error {
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		if st.active.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%d requests still in flight: %w", st.active.Load(), ctx.Err())
		case <-t.C:
		}
	}
}

// statusWriter captures the response status for the metrics and log
// layers. Handlers that never call WriteHeader answered 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Instrument wraps h with the observability layer for the named
// endpoint: status-class counters, the latency histogram, and sampled
// request logging. The name must be one of the endpoints the stack was
// constructed with.
func (st *Stack) Instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := st.metrics.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		req := st.tracer.StartRequest(name, r.Header.Get("traceparent"))
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = req.TraceID.String()
		}
		// Both headers land before the handler runs, so even requests the
		// admission layer sheds carry their correlation IDs.
		w.Header().Set("X-Trace-Id", req.TraceID.String())
		w.Header().Set("X-Request-Id", rid)
		r = r.WithContext(trace.NewContext(r.Context(), req))
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		d := time.Since(start)
		em.observe(status, d)
		req.Finish(status, d)
		if st.tracer.Slow(d) {
			st.logSlow(name, r, rid, req, status, d)
		}
		st.logRequest(name, r, rid, status, d)
	}
}

// Guarded is Instrument plus admission control: requests the limiter
// or the concurrency cap rejects answer 429 with a Retry-After header
// and are recorded like any other response of the endpoint.
func (st *Stack) Guarded(name string, h http.HandlerFunc) http.HandlerFunc {
	admitted := func(w http.ResponseWriter, r *http.Request) {
		waitStart := time.Now()
		release, retryAfter, reason := st.admit.acquire(clientKey(r))
		trace.ProfileFromContext(r.Context()).AddAdmissionWait(time.Since(waitStart))
		if release == nil {
			w.Header().Set("Retry-After", retryAfter)
			writeError(w, http.StatusTooManyRequests, "server over capacity (%s); retry after %ss", reason, retryAfter)
			return
		}
		defer release()
		h(w, r)
	}
	return st.Instrument(name, admitted)
}

// logRequest emits one structured line for every LogEvery-th request;
// LogEvery <= 0 disables logging entirely.
func (st *Stack) logRequest(name string, r *http.Request, rid string, status int, d time.Duration) {
	every := int64(st.cfg.LogEvery)
	if every <= 0 || st.logSeq.Add(1)%every != 0 {
		return
	}
	logger := st.cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("endpoint", name),
		slog.String("method", r.Method),
		slog.String("path", r.URL.RequestURI()),
		slog.Int("status", status),
		slog.Duration("duration", d),
		slog.String("client", clientKey(r)),
		slog.String("request_id", rid),
		slog.Int64("inflight", st.active.Load()),
		slog.Int64("sampled_1_in", every),
	)
}

// logSlow emits one warning line for every request at or over the
// slow-query threshold, with the profile's per-stage breakdown.
func (st *Stack) logSlow(name string, r *http.Request, rid string, req *trace.Request, status int, d time.Duration) {
	logger := st.cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	attrs := []slog.Attr{
		slog.String("endpoint", name),
		slog.String("method", r.Method),
		slog.String("path", r.URL.RequestURI()),
		slog.Int("status", status),
		slog.Duration("duration", d),
		slog.Duration("threshold", st.tracer.SlowThreshold()),
		slog.String("trace_id", req.TraceID.String()),
		slog.String("request_id", rid),
	}
	attrs = append(attrs, req.Profile().LogAttrs()...)
	logger.LogAttrs(r.Context(), slog.LevelWarn, "slow query", attrs...)
}

// TraceStats is the single source for the tracing gauges surfaced by
// both /stats and /metrics, so the two always agree.
func (st *Stack) TraceStats() map[string]any {
	sampled, dropped, slow := st.tracer.Counters()
	return map[string]any{
		"sample_rate":   st.tracer.SampleRate(),
		"slow_query_ms": st.tracer.SlowThreshold().Milliseconds(),
		"ring_capacity": st.tracer.Ring().Cap(),
		"ring_stored":   st.tracer.Ring().Len(),
		"sampled":       sampled,
		"dropped":       dropped,
		"slow":          slow,
	}
}

// WriteMetrics emits the stack's Prometheus series: per-endpoint
// request counters and latency histograms, the in-flight gauge, and
// the admission counters. Callers append their own series after it
// (Server adds cache and index gauges, the cluster coordinator adds
// per-backend series).
func (st *Stack) WriteMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP pll_http_requests_total HTTP responses by endpoint and status-code class.\n")
	fmt.Fprintf(w, "# TYPE pll_http_requests_total counter\n")
	for _, name := range st.metrics.names {
		em := st.metrics.endpoints[name]
		for c := 1; c < statusClasses; c++ {
			fmt.Fprintf(w, "pll_http_requests_total{endpoint=%q,code=\"%dxx\"} %d\n", name, c, em.codes[c].Load())
		}
	}

	fmt.Fprintf(w, "# HELP pll_http_request_duration_seconds Request latency by endpoint, admission rejections included.\n")
	fmt.Fprintf(w, "# TYPE pll_http_request_duration_seconds histogram\n")
	for _, name := range st.metrics.names {
		st.metrics.endpoints[name].hist.WriteSeries(w, "pll_http_request_duration_seconds", fmt.Sprintf("endpoint=%q", name))
	}

	fmt.Fprintf(w, "# HELP pll_http_requests_in_flight Requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE pll_http_requests_in_flight gauge\n")
	fmt.Fprintf(w, "pll_http_requests_in_flight %d\n", st.active.Load())

	fmt.Fprintf(w, "# HELP pll_http_shed_total Requests rejected with 429 by the admission layer.\n")
	fmt.Fprintf(w, "# TYPE pll_http_shed_total counter\n")
	fmt.Fprintf(w, "pll_http_shed_total{reason=\"concurrency\"} %d\n", st.admit.shedConcurrency())
	fmt.Fprintf(w, "pll_http_shed_total{reason=\"rate\"} %d\n", st.admit.shedRate())

	fmt.Fprintf(w, "# HELP pll_ratelimit_clients Client token buckets currently tracked.\n")
	fmt.Fprintf(w, "# TYPE pll_ratelimit_clients gauge\n")
	fmt.Fprintf(w, "pll_ratelimit_clients %d\n", st.admit.trackedClients())

	ts := st.TraceStats()
	fmt.Fprintf(w, "# HELP pll_trace_sampled_total Traces committed with a recorded span tree.\n")
	fmt.Fprintf(w, "# TYPE pll_trace_sampled_total counter\n")
	fmt.Fprintf(w, "pll_trace_sampled_total %d\n", ts["sampled"])
	fmt.Fprintf(w, "# HELP pll_trace_dropped_total Finished requests that recorded no trace.\n")
	fmt.Fprintf(w, "# TYPE pll_trace_dropped_total counter\n")
	fmt.Fprintf(w, "pll_trace_dropped_total %d\n", ts["dropped"])
	fmt.Fprintf(w, "# HELP pll_trace_slow_total Requests at or over the slow-query threshold.\n")
	fmt.Fprintf(w, "# TYPE pll_trace_slow_total counter\n")
	fmt.Fprintf(w, "pll_trace_slow_total %d\n", ts["slow"])
	fmt.Fprintf(w, "# HELP pll_trace_ring_traces Traces currently stored in the debug ring.\n")
	fmt.Fprintf(w, "# TYPE pll_trace_ring_traces gauge\n")
	fmt.Fprintf(w, "pll_trace_ring_traces %d\n", ts["ring_stored"])
	fmt.Fprintf(w, "# HELP pll_trace_ring_capacity Debug ring capacity.\n")
	fmt.Fprintf(w, "# TYPE pll_trace_ring_capacity gauge\n")
	fmt.Fprintf(w, "pll_trace_ring_capacity %d\n", ts["ring_capacity"])
	fmt.Fprintf(w, "# HELP pll_trace_sample_rate Head-sampling probability.\n")
	fmt.Fprintf(w, "# TYPE pll_trace_sample_rate gauge\n")
	fmt.Fprintf(w, "pll_trace_sample_rate %s\n", fmtFloat(ts["sample_rate"].(float64)))
}
