package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pll/internal/trace"
	"pll/pll"
)

// Config tunes a Server.
type Config struct {
	// IndexPath is the container file /reload re-reads when the request
	// names no path (and the file SIGHUP-style reloads come from).
	IndexPath string
	// CacheSize bounds the sharded distance cache in entries; 0
	// disables caching.
	CacheSize int
	// MaxBatch caps the fan-out of one request: pairs per /batch, k per
	// /knn and /nearest, members per /nearest set, results per /range
	// (default 4096). Requests over the cap are rejected up front, so a
	// hostile payload cannot force an unbounded allocation or scan.
	MaxBatch int
	// MaxBody caps the request body in bytes for every POST endpoint
	// (default 1 MiB). Oversized bodies get 413 without being read.
	MaxBody int64
	// CloseGrace is the delay before a reload starts closing a
	// swapped-out resource-backed oracle (pll.Closer, e.g. a memory-
	// mapped pll.FlatIndex). Closing additionally waits for every HTTP
	// request that began before the swap to finish — even a long /stats
	// scan — so the grace only needs to cover non-request readers (a
	// caller holding Snapshot()). 0 means five seconds.
	CloseGrace time.Duration
	// RatePerSec is the per-client steady-state request rate (keyed by
	// X-Client-Id, else remote IP); excess requests answer 429 with
	// Retry-After. 0 disables rate limiting.
	RatePerSec float64
	// RateBurst is the token-bucket depth a client can spend at once;
	// 0 means 2×RatePerSec (at least 1).
	RateBurst int
	// MaxInflight caps concurrently executing requests across every
	// endpoint except /healthz and /metrics; excess requests are shed
	// with 429 + Retry-After instead of queueing. 0 disables the cap.
	MaxInflight int
	// LogEvery emits one structured request log line (slog) per
	// LogEvery requests; 0 disables request logging.
	LogEvery int
	// Logger receives the sampled request logs; nil means
	// slog.Default().
	Logger *slog.Logger
	// TraceSampleRate is the head-sampling probability in [0, 1] for
	// requests arriving without a traceparent decision; 0 records only
	// errored (and, with SlowQuery, slow) requests.
	TraceSampleRate float64
	// TraceRingSize is the /debug/traces ring capacity (default 256).
	TraceRingSize int
	// SlowQuery promotes requests at least this slow into the trace
	// ring and the slow-query log; 0 disables both.
	SlowQuery time.Duration
}

const (
	defaultMaxBatch = 4096
	defaultMaxBody  = 1 << 20
)

// Server serves one ConcurrentOracle over HTTP. All handlers answer
// JSON; errors arrive as {"error": "..."} with a matching status code.
// The zero value is not usable; call New.
type Server struct {
	oracle  *pll.ConcurrentOracle
	cache   *pairCache
	results *resultCache
	cfg     Config
	start   time.Time
	mux     *http.ServeMux

	// stack is the shared middleware (metrics, admission, logging, the
	// global in-flight count Drain waits on at shutdown so the process
	// never unmaps an index under a timed-out reader).
	stack *Stack

	reloadMu sync.Mutex // serializes /reload and SIGHUP reloads

	// inflight counts the requests answering from the current oracle;
	// Reload swaps in a fresh group and waits out the old one before
	// closing a retired resource-backed oracle (see retire).
	inflight atomic.Pointer[sync.WaitGroup]

	statsCache statsCache // memoized pll.Stats for /metrics scrapes

	queries    atomic.Int64 // /distance + /path answers
	batchPairs atomic.Int64 // pairs answered through /batch
	searches   atomic.Int64 // /knn + /range + /nearest answers
	composites atomic.Int64 // /query answers
	updates    atomic.Int64 // edges inserted through /update
	reloads    atomic.Int64 // successful index swaps
}

// New builds a Server around o. The oracle may be shared with other
// components (e.g. a SIGHUP handler calling Reload).
func New(o *pll.ConcurrentOracle, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = defaultMaxBody
	}
	s := &Server{
		oracle:  o,
		cache:   newPairCache(cfg.CacheSize),
		results: newResultCache(cfg.CacheSize),
		cfg:     cfg,
		start:   time.Now(),
		mux:     http.NewServeMux(),
		stack: NewStack(StackConfig{
			RatePerSec:  cfg.RatePerSec,
			RateBurst:   cfg.RateBurst,
			MaxInflight: cfg.MaxInflight,
			LogEvery:    cfg.LogEvery,
			Logger:      cfg.Logger,
			Tracer: trace.New(trace.Config{
				SampleRate: cfg.TraceSampleRate,
				SlowQuery:  cfg.SlowQuery,
				RingSize:   cfg.TraceRingSize,
			}),
		}, "healthz", "metrics", "distance", "path", "batch", "stats",
			"update", "reload", "knn", "range", "nearest", "query", "debug"),
	}
	s.inflight.Store(new(sync.WaitGroup))
	// /healthz and /metrics are instrument-only: liveness probes and
	// scrapes must keep answering while the query surface sheds load.
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /distance", s.guarded("distance", s.handleDistance))
	s.mux.HandleFunc("GET /path", s.guarded("path", s.handlePath))
	s.mux.HandleFunc("POST /batch", s.guarded("batch", s.handleBatch))
	s.mux.HandleFunc("GET /stats", s.guarded("stats", s.handleStats))
	s.mux.HandleFunc("POST /update", s.guarded("update", s.handleUpdate))
	s.mux.HandleFunc("POST /reload", s.guarded("reload", s.handleReload))
	s.mux.HandleFunc("GET /knn", s.guarded("knn", s.handleKNN))
	s.mux.HandleFunc("GET /range", s.guarded("range", s.handleRange))
	s.mux.HandleFunc("POST /nearest", s.guarded("nearest", s.handleNearest))
	s.mux.HandleFunc("POST /query", s.guarded("query", s.handleQuery))
	// Instrument-only like /metrics: the trace ring must stay readable
	// while the query surface sheds load.
	s.mux.HandleFunc("GET /debug/traces", s.instrument("debug", trace.DebugHandler(s.stack.Tracer())))
	return s
}

// DebugTracesHandler returns the /debug/traces handler for mounting on
// a private admin listener.
func (s *Server) DebugTracesHandler() http.Handler {
	return trace.DebugHandler(s.stack.Tracer())
}

// Handler returns the http.Handler serving all endpoints. Every
// request registers in the current in-flight group so a reload can
// tell when the requests predating its swap have drained, and in the
// stack's global active count Drain waits on at shutdown.
func (s *Server) Handler() http.Handler {
	return s.stack.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wg := s.inflight.Load()
		wg.Add(1)
		defer wg.Done()
		s.mux.ServeHTTP(w, r)
	}))
}

// instrument and guarded mount the shared middleware stack under the
// method-set the handler registrations read naturally.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.stack.Instrument(name, h)
}

func (s *Server) guarded(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.stack.Guarded(name, h)
}

// InflightRequests reports the number of requests currently executing.
func (s *Server) InflightRequests() int64 { return s.stack.InflightRequests() }

// Drain blocks until no request is executing or ctx expires. Call it
// after http.Server.Shutdown returns — including on Shutdown timeout,
// when handlers may still be mid-request — and only Close a mapped
// oracle once it returns nil: closing unmaps the label pages, and a
// reader that outlived the shutdown deadline would otherwise segfault.
func (s *Server) Drain(ctx context.Context) error { return s.stack.Drain(ctx) }

// Oracle returns the served oracle (shared, not a copy).
func (s *Server) Oracle() *pll.ConcurrentOracle { return s.oracle }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody reads a JSON request body under the configured size cap,
// writing the error response itself when the body is oversized (413)
// or malformed (400). A hostile Content-Length or an endless stream
// can therefore never force an unbounded read or allocation.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds the %d-byte limit", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		}
		return false
	}
	return true
}

// queryPair parses the s and t query parameters as int32 vertex IDs.
func queryPair(r *http.Request) (int32, int32, error) {
	var s, t int32
	for _, p := range []struct {
		name string
		dst  *int32
	}{{"s", &s}, {"t", &t}} {
		raw := r.URL.Query().Get(p.name)
		if raw == "" {
			return 0, 0, fmt.Errorf("missing query parameter %q", p.name)
		}
		v, err := strconv.ParseInt(raw, 10, 32)
		if err != nil {
			return 0, 0, fmt.Errorf("bad vertex %q", raw)
		}
		*p.dst = int32(v)
	}
	return s, t, nil
}

// handleHealthz answers the liveness probe with a backend-identity
// payload: which index this replica serves (variant, vertex count, a
// content checksum) and which local generation it is on. A scatter-
// gather coordinator uses the identity to refuse pooling replicas that
// serve different indexes; a bare 200 cannot carry that contract.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cachedStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"variant":    st.Variant.String(),
		"generation": s.oracle.Generation(),
		"vertices":   st.NumVertices,
		"checksum":   indexChecksum(st),
	})
}

// indexChecksum fingerprints the served index's content from its
// stats: two indexes with the same variant, shape and label mass are
// interchangeable for query routing. It is intentionally derived from
// the already-memoized Stats rather than hashing the container bytes —
// a health probe must not re-read a multi-gigabyte mapping — so it
// identifies the index, not the file encoding.
func indexChecksum(st pll.Stats) string {
	h := fnv.New64a()
	for _, v := range []int64{
		int64(st.Variant), int64(st.NumVertices), int64(st.NumBitParallel),
		st.TotalLabelEntries, int64(st.MaxLabelSize), st.IndexBytes,
		int64(st.DistinctHubs), int64(st.MaxHubLoad),
	} {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	if st.HasParentPointers {
		h.Write([]byte{1})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// distanceResponse is the /distance (and per-pair /batch) answer shape.
type distanceResponse struct {
	S         int32 `json:"s"`
	T         int32 `json:"t"`
	Distance  int64 `json:"distance"`
	Reachable bool  `json:"reachable"`
	Cached    bool  `json:"cached,omitempty"`
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	sv, tv, err := queryPair(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p := trace.ProfileFromContext(r.Context())
	if d, ok := s.cache.get(sv, tv); ok {
		p.CacheLookup(true)
		s.queries.Add(1)
		writeJSON(w, http.StatusOK, distanceResponse{S: sv, T: tv, Distance: d, Reachable: d != pll.Unreachable, Cached: true})
		return
	}
	p.CacheLookup(false)
	var d int64
	// Capture the cache epoch before querying: if an /update or /reload
	// purge lands while we compute, the put below is dropped instead of
	// poisoning the fresh cache with a pre-mutation answer.
	epoch := s.cache.currentEpoch()
	// Validate and query under one View so a concurrent hot-swap to a
	// smaller index cannot invalidate the check mid-request.
	err = s.oracle.View(func(o pll.Oracle) error {
		if err := pll.Validate(o, sv, tv); err != nil {
			return err
		}
		if po, ok := o.(pll.ProfiledOracle); ok {
			d = po.DistanceProfiled(sv, tv, p)
		} else {
			d = o.Distance(sv, tv)
		}
		return nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.cache.put(epoch, sv, tv, d)
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, distanceResponse{S: sv, T: tv, Distance: d, Reachable: d != pll.Unreachable})
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	sv, tv, err := queryPair(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var p []int32
	var badInput bool
	err = s.oracle.View(func(o pll.Oracle) error {
		if err := pll.Validate(o, sv, tv); err != nil {
			badInput = true
			return err
		}
		p, err = o.Path(sv, tv)
		return err
	})
	if err != nil {
		if badInput {
			writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			// The index exists but cannot answer path queries (not built
			// WithPaths, or a dynamic index): the conflict is with the
			// server's resource, not the request.
			writeError(w, http.StatusConflict, "%v", err)
		}
		return
	}
	s.queries.Add(1)
	resp := map[string]any{"s": sv, "t": tv, "reachable": p != nil}
	if p != nil {
		resp["path"] = p
		resp["hops"] = len(p) - 1
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchRequest asks for many distances at once: either explicit pairs,
// or one source against many targets (the amortized single-source
// form, answered with one label scan per target on undirected static
// indexes).
type batchRequest struct {
	Pairs   [][2]int32 `json:"pairs,omitempty"`
	Source  *int32     `json:"source,omitempty"`
	Targets []int32    `json:"targets,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	switch {
	case req.Source != nil && len(req.Targets) > 0 && len(req.Pairs) == 0:
	case req.Source == nil && len(req.Targets) == 0 && len(req.Pairs) > 0:
	default:
		writeError(w, http.StatusBadRequest, `batch body needs either "pairs" or "source"+"targets"`)
		return
	}
	n := len(req.Pairs) + len(req.Targets)
	if n > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d pairs exceeds the %d limit", n, s.cfg.MaxBatch)
		return
	}

	prof := trace.ProfileFromContext(r.Context())
	distances := make([]int64, 0, n)
	err := s.oracle.View(func(o pll.Oracle) error {
		if req.Source != nil {
			if err := pll.Validate(o, append([]int32{*req.Source}, req.Targets...)...); err != nil {
				return err
			}
			// Single-source batches forward to the Batcher capability —
			// every index variant implements it, pinning the source label
			// once and scanning one label per target; View pins the
			// snapshot so the pinned label cannot outlive its index. The
			// per-pair loop remains as the fallback for foreign oracles.
			if po, ok := o.(pll.ProfiledOracle); ok {
				distances = po.DistanceFromProfiled(*req.Source, req.Targets, distances, prof)
				return nil
			}
			if b, ok := o.(pll.Batcher); ok {
				distances = b.DistanceFrom(*req.Source, req.Targets, distances)
				return nil
			}
			for _, t := range req.Targets {
				distances = append(distances, o.Distance(*req.Source, t))
			}
			return nil
		}
		flat := make([]int32, 0, 2*len(req.Pairs))
		for _, p := range req.Pairs {
			flat = append(flat, p[0], p[1])
		}
		if err := pll.Validate(o, flat...); err != nil {
			return err
		}
		if po, ok := o.(pll.ProfiledOracle); ok && prof != nil {
			for _, p := range req.Pairs {
				distances = append(distances, po.DistanceProfiled(p[0], p[1], prof))
			}
			return nil
		}
		for _, p := range req.Pairs {
			distances = append(distances, o.Distance(p[0], p[1]))
		}
		return nil
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.batchPairs.Add(int64(n))
	writeJSON(w, http.StatusOK, map[string]any{"count": n, "distances": distances})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.oracle.Stats()
	hits, misses := s.cache.counters()
	writeJSON(w, http.StatusOK, map[string]any{
		"index": map[string]any{
			"variant":            st.Variant.String(),
			"vertices":           st.NumVertices,
			"bit_parallel_roots": st.NumBitParallel,
			"label_entries":      st.TotalLabelEntries,
			"avg_label_size":     st.AvgLabelSize,
			"max_label_size":     st.MaxLabelSize,
			"index_bytes":        st.IndexBytes,
			"has_paths":          st.HasParentPointers,
			"distinct_hubs":      st.DistinctHubs,
			"max_hub_load":       st.MaxHubLoad,
			"avg_hub_load":       st.AvgHubLoad,
			"checksum":           indexChecksum(st),
		},
		"server": map[string]any{
			"uptime_seconds": time.Since(s.start).Seconds(),
			"queries":        s.queries.Load(),
			"batch_pairs":    s.batchPairs.Load(),
			"searches":       s.searches.Load(),
			"composites":     s.composites.Load(),
			"updates":        s.updates.Load(),
			"reloads":        s.reloads.Load(),
			"generation":     s.oracle.Generation(),
		},
		"cache": map[string]any{
			"enabled": s.cache != nil,
			// capacity is the effective bound — the configured size
			// rounded up to whole shards (e.g. 100 → 112) — so operators
			// see the limit the eviction actually enforces.
			"capacity":            s.cache.capacity(),
			"configured_capacity": s.cfg.CacheSize,
			"entries":             s.cache.len(),
			"hits":                hits,
			"misses":              misses,
			"results":             s.results.stats(),
		},
		"tracing": s.stack.TraceStats(),
	})
}

// updateRequest inserts edges into a served dynamic index.
type updateRequest struct {
	Edges [][2]int32 `json:"edges"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, `update body needs a non-empty "edges" list`)
		return
	}
	if !s.checkFanout(w, "edges", len(req.Edges)) {
		return
	}
	// Validate and insert the whole batch under one write-locked Update,
	// so the bounds check, every insert, and nothing else all see the
	// same oracle even if a hot-reload swaps it mid-request, and readers
	// never observe a half-applied batch.
	inserted, labelDelta := 0, 0
	var badEdge *[2]int32
	err := s.oracle.Update(func(di *pll.DynamicIndex) error {
		n := int32(di.NumVertices())
		for i, e := range req.Edges {
			if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
				badEdge = &req.Edges[i]
				return fmt.Errorf("edge {%d,%d} out of range [0,%d)", e[0], e[1], n)
			}
		}
		for _, e := range req.Edges {
			d, err := di.InsertEdge(e[0], e[1])
			if err != nil {
				return err
			}
			inserted++
			labelDelta += d
		}
		return nil
	})
	if inserted > 0 {
		// Inserted edges can only shorten distances; drop every cached
		// pair and search result even when a later edge of the batch
		// failed.
		s.updates.Add(int64(inserted))
		s.cache.purge()
		s.results.purge()
	}
	if err != nil {
		switch {
		case err == pll.ErrNotDynamic:
			writeError(w, http.StatusConflict, "served index is the %s variant; only dynamic indexes accept updates", s.oracle.Stats().Variant)
		case badEdge != nil:
			writeError(w, http.StatusBadRequest, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"inserted":    inserted,
		"label_delta": labelDelta,
	})
}

// reloadRequest optionally names the container file to swap in; an
// empty body (or empty path) re-reads the configured index path.
type reloadRequest struct {
	Path string `json:"path"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if r.ContentLength != 0 {
		if !s.decodeBody(w, r, &req) {
			return
		}
	}
	path := req.Path
	if path == "" {
		path = s.cfg.IndexPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "no path in request and the server was started without an index file")
		return
	}
	st, err := s.Reload(path)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "reload %s: %v", path, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path":       path,
		"variant":    st.Variant.String(),
		"vertices":   st.NumVertices,
		"generation": s.oracle.Generation(),
	})
}

// Reload loads the container at path and atomically swaps it in,
// purging the distance cache. Flat (version-2) containers are opened
// zero-copy via pll.Open — the swap is O(1) in the index size — and
// every other format is heap-loaded. In-flight requests keep answering
// from the index they started on; no request fails or blocks. A
// swapped-out resource-backed oracle is closed after CloseGrace. It is
// the shared implementation behind POST /reload and SIGHUP.
func (s *Server) Reload(path string) (pll.Stats, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	o, err := loadOracle(path)
	if err != nil {
		return pll.Stats{}, err
	}
	st := o.Stats()
	old := s.oracle.Swap(o)
	// Swap the in-flight group after the oracle: requests in the old
	// group may hold either oracle (harmless — closing just waits for
	// them too), requests in the new group can only see the new one.
	oldInflight := s.inflight.Swap(new(sync.WaitGroup))
	s.cache.purge()
	s.results.purge()
	s.reloads.Add(1)
	s.retire(old, oldInflight)
	return st, nil
}

// loadOracle opens flat containers zero-copy and heap-loads every
// other supported format.
func loadOracle(path string) (pll.Oracle, error) {
	fi, err := pll.Open(path)
	if err == nil {
		return fi, nil
	}
	if !errors.Is(err, pll.ErrNotFlat) {
		return nil, err
	}
	return pll.LoadFile(path)
}

// retire closes a swapped-out oracle's resources (mapping, file) once
// it can no longer be read: after the grace period it waits for every
// request registered in the pre-swap in-flight group — so even a
// minutes-long /stats scan pins the mapping until it finishes. The
// grace additionally covers the instruction-scale window between a
// request loading the group and registering in it, and any non-request
// reader holding a Snapshot().
func (s *Server) retire(old pll.Oracle, oldInflight *sync.WaitGroup) {
	c, ok := old.(pll.Closer)
	if !ok {
		return
	}
	grace := s.cfg.CloseGrace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	go func() {
		time.Sleep(grace)
		oldInflight.Wait()
		c.Close() //nolint:errcheck // nothing to do for a failed unmap
	}()
}
