package server

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pll/pll"
)

// scrape fetches /metrics and returns the body split into lines.
func scrape(t *testing.T, base string) []string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(string(body), "\n"), "\n")
}

// sampleValue finds the unique sample line with the given name and
// label content and returns its value.
func sampleValue(t *testing.T, lines []string, prefix string) float64 {
	t.Helper()
	var found string
	for _, l := range lines {
		if strings.HasPrefix(l, prefix+" ") {
			if found != "" {
				t.Fatalf("duplicate sample %q", prefix)
			}
			found = l
		}
	}
	if found == "" {
		t.Fatalf("no sample with prefix %q", prefix)
	}
	v, err := strconv.ParseFloat(found[len(prefix)+1:], 64)
	if err != nil {
		t.Fatalf("sample %q has bad value: %v", found, err)
	}
	return v
}

var (
	commentLine = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* \S.*$`)
	sampleLine  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? [-+0-9.eEInf]+$`)
)

// TestMetricsExposition exercises the scrape end to end: the body must
// be line-valid Prometheus text format, every endpoint must expose its
// request counter and latency histogram, and the counters must agree
// exactly with the traffic the test generated.
func TestMetricsExposition(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{CacheSize: 100})

	// Known traffic: two good /distance calls (the second a cache hit),
	// one bad one, one /batch of three pairs.
	getJSON(t, ts.URL+"/distance?s=0&t=5", http.StatusOK, nil)
	getJSON(t, ts.URL+"/distance?s=0&t=5", http.StatusOK, nil)
	getJSON(t, ts.URL+"/distance?s=0&t=banana", http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/batch", map[string]any{"pairs": [][2]int32{{0, 1}, {1, 2}, {2, 3}}}, http.StatusOK, nil)

	lines := scrape(t, ts.URL)

	typed := map[string]bool{}
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "# TYPE "):
			typed[strings.Fields(l)[2]] = true
			fallthrough
		case strings.HasPrefix(l, "#"):
			if !commentLine.MatchString(l) {
				t.Errorf("malformed comment line: %q", l)
			}
		default:
			if !sampleLine.MatchString(l) {
				t.Errorf("malformed sample line: %q", l)
			}
			// Every sample must appear under a preceding # TYPE for its
			// family (histogram series strip the _bucket/_sum/_count
			// suffix).
			name := l[:strings.IndexAny(l, "{ ")]
			family := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if f, ok := strings.CutSuffix(name, suf); ok && typed[f] {
					family = f
				}
			}
			if !typed[family] {
				t.Errorf("sample %q precedes its # TYPE", l)
			}
		}
	}

	// Counter accuracy by status class.
	if got := sampleValue(t, lines, `pll_http_requests_total{endpoint="distance",code="2xx"}`); got != 2 {
		t.Errorf("distance 2xx = %v, want 2", got)
	}
	if got := sampleValue(t, lines, `pll_http_requests_total{endpoint="distance",code="4xx"}`); got != 1 {
		t.Errorf("distance 4xx = %v, want 1", got)
	}
	if got := sampleValue(t, lines, `pll_http_requests_total{endpoint="batch",code="2xx"}`); got != 1 {
		t.Errorf("batch 2xx = %v, want 1", got)
	}

	// Histogram consistency: every wired endpoint has a family, count
	// matches the traffic, cumulative buckets are monotone and the +Inf
	// bucket equals the count.
	for _, ep := range []string{"healthz", "metrics", "distance", "path", "batch", "stats",
		"update", "reload", "knn", "range", "nearest", "query"} {
		want := map[string]float64{"distance": 3, "batch": 1}[ep]
		if got := sampleValue(t, lines, fmt.Sprintf(`pll_http_request_duration_seconds_count{endpoint=%q}`, ep)); got != want {
			t.Errorf("duration count[%s] = %v, want %v", ep, got, want)
		}
		prev := -1.0
		for _, l := range lines {
			if !strings.HasPrefix(l, fmt.Sprintf(`pll_http_request_duration_seconds_bucket{endpoint=%q,`, ep)) {
				continue
			}
			v, err := strconv.ParseFloat(l[strings.LastIndex(l, " ")+1:], 64)
			if err != nil || v < prev {
				t.Errorf("bucket line not cumulative: %q (prev %v)", l, prev)
			}
			prev = v
		}
		if inf := sampleValue(t, lines, fmt.Sprintf(`pll_http_request_duration_seconds_bucket{endpoint=%q,le="+Inf"}`, ep)); inf != want {
			t.Errorf("+Inf bucket[%s] = %v, want %v", ep, inf, want)
		}
	}

	// Cache series: one hit, one miss on the pair cache, and the
	// capacity gauge reports the effective per-shard rounding (100
	// splits into 16 shards of 7 = 112), matching /stats.
	if got := sampleValue(t, lines, `pll_cache_hits_total{cache="pair"}`); got != 1 {
		t.Errorf("pair cache hits = %v, want 1", got)
	}
	if got := sampleValue(t, lines, `pll_cache_misses_total{cache="pair"}`); got != 1 {
		t.Errorf("pair cache misses = %v, want 1", got)
	}
	if got := sampleValue(t, lines, `pll_cache_capacity{cache="pair"}`); got != 112 {
		t.Errorf("pair cache capacity = %v, want 112", got)
	}

	// Index gauges reflect the served index.
	if got := sampleValue(t, lines, "pll_index_vertices"); got != 8 {
		t.Errorf("pll_index_vertices = %v, want 8", got)
	}
	if got := sampleValue(t, lines, "pll_index_generation"); got != 0 {
		t.Errorf("pll_index_generation = %v, want 0", got)
	}
	if got := sampleValue(t, lines, "pll_index_avg_label_size"); got <= 0 {
		t.Errorf("pll_index_avg_label_size = %v, want > 0", got)
	}
	if got := sampleValue(t, lines, "pll_index_hubs_distinct"); got <= 0 {
		t.Errorf("pll_index_hubs_distinct = %v, want > 0", got)
	}
}

// TestMetricsReloadCounters checks the mutation counters: a reload
// bumps pll_reloads_total and the generation gauge, and the stats cache
// keyed on (generation, updates) picks up the new index's gauges.
func TestMetricsReloadCounters(t *testing.T) {
	dir := t.TempDir()
	path := writeFlatIndexFile(t, dir, "next.pllbox", 31)
	ix, err := pll.Build(lineGraph(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})

	lines := scrape(t, ts.URL)
	if got := sampleValue(t, lines, "pll_index_vertices"); got != 8 {
		t.Fatalf("pre-reload vertices = %v, want 8", got)
	}

	postJSON(t, ts.URL+"/reload", map[string]string{"path": path}, http.StatusOK, nil)

	lines = scrape(t, ts.URL)
	if got := sampleValue(t, lines, "pll_reloads_total"); got != 1 {
		t.Errorf("pll_reloads_total = %v, want 1", got)
	}
	if got := sampleValue(t, lines, "pll_index_generation"); got != 1 {
		t.Errorf("pll_index_generation = %v, want 1", got)
	}
	if got := sampleValue(t, lines, "pll_index_vertices"); got != 31 {
		t.Errorf("post-reload vertices = %v, want 31 (stats cache not invalidated?)", got)
	}
}
