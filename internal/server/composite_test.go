package server

import (
	"bytes"
	"net/http"
	"sort"
	"testing"

	"pll/pll"
)

// queryResponse is the /query wire shape.
type queryResponse struct {
	Count      int                  `json:"count"`
	Total      int                  `json:"total"`
	TotalExact bool                 `json:"total_exact"`
	Truncated  bool                 `json:"truncated"`
	Matches    []pll.CompositeMatch `json:"matches"`
}

// bruteQuery answers a composite request from ground-truth rows: eval
// the clause per vertex, score, sort (reachable scores ascending then
// vertex, unreachable last), trim to k.
func bruteQuery(tc variantCase, req *pll.CompositeRequest) queryResponse {
	req.Normalize()
	rows := map[int32][]int64{}
	row := func(s int32) []int64 {
		if r, ok := rows[s]; ok {
			return r
		}
		r := tc.dist(s)
		rows[s] = r
		return r
	}
	var eval func(c *pll.CompositeClause, v int32) bool
	eval = func(c *pll.CompositeClause, v int32) bool {
		switch {
		case c.Near != nil:
			d := row(c.Near.Source)[v]
			return d >= 0 && d <= c.Near.MaxDist
		case c.In != nil:
			for _, m := range c.In {
				if m == v {
					return true
				}
			}
			return false
		case c.Not != nil:
			return !eval(c.Not, v)
		case c.And != nil:
			for _, k := range c.And {
				if !eval(k, v) {
					return false
				}
			}
			return true
		default:
			for _, k := range c.Or {
				if eval(k, v) {
					return true
				}
			}
			return false
		}
	}
	var ms []pll.CompositeMatch
	for v := int32(0); int(v) < tc.n; v++ {
		if !eval(req.Where, v) {
			continue
		}
		m := pll.CompositeMatch{Vertex: v, Terms: make([]int64, len(req.Rank.Terms))}
		for i, t := range req.Rank.Terms {
			d := row(t.Source)[v]
			m.Terms[i] = d
			if d < 0 {
				m.Score = -1
			} else if m.Score >= 0 {
				if w := t.Weight * d; req.Rank.By == "max" {
					if w > m.Score {
						m.Score = w
					}
				} else {
					m.Score += w
				}
			}
		}
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if (a.Score < 0) != (b.Score < 0) {
			return b.Score < 0
		}
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		return a.Vertex < b.Vertex
	})
	total := len(ms)
	if req.K > 0 && len(ms) > req.K {
		ms = ms[:req.K]
	}
	return queryResponse{Count: len(ms), Total: total, TotalExact: true, Matches: ms}
}

func matchesEqual(got, want []pll.CompositeMatch) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Vertex != want[i].Vertex || got[i].Score != want[i].Score {
			return false
		}
	}
	return true
}

// TestQueryConformanceHandlers drives /query for every searchable
// variant (heap and flat-with-persisted-sections) and compares each
// answer with the ground-truth reference.
func TestQueryConformanceHandlers(t *testing.T) {
	const (
		n    = 48
		m    = 120
		seed = 29
	)
	near := func(s int32, d int64) *pll.CompositeClause {
		return &pll.CompositeClause{Near: &pll.NearClause{Source: s, MaxDist: d}}
	}
	requests := func() []*pll.CompositeRequest {
		return []*pll.CompositeRequest{
			{Where: &pll.CompositeClause{And: []*pll.CompositeClause{near(0, 3), near(7, 4)}}},
			{Where: &pll.CompositeClause{Or: []*pll.CompositeClause{near(3, 2), near(11, 2)}}, K: 6},
			{Where: &pll.CompositeClause{And: []*pll.CompositeClause{near(0, 5), {Not: near(9, 1)}}}, K: 4},
			{Where: &pll.CompositeClause{And: []*pll.CompositeClause{near(2, 6), {In: []int32{0, 5, 10, 15, 20}}}}},
			{Where: near(5, 4), Rank: &pll.CompositeRank{
				By:    "max",
				Terms: []pll.CompositeTerm{{Source: 5, Weight: 2}, {Source: 13}},
			}, K: 5},
		}
	}
	cases := []variantCase{
		undirectedCase(t, n, m, seed),
		directedCase(t, n, m, seed, false),
		weightedCase(t, n, m, seed, false),
	}
	cases = append(cases, flatSearchVariant(t, undirectedCase(t, n, m, seed+1)))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, tc.oracle, Config{})
			for i, req := range requests() {
				want := bruteQuery(tc, req)
				var got queryResponse
				postJSON(t, ts.URL+"/query", req, http.StatusOK, &got)
				if !matchesEqual(got.Matches, want.Matches) {
					t.Fatalf("request %d: matches %v, want %v", i, got.Matches, want.Matches)
				}
				if got.Count != want.Count || got.Truncated {
					t.Fatalf("request %d: count=%d truncated=%v, want count=%d", i, got.Count, got.Truncated, want.Count)
				}
				if got.TotalExact && got.Total != want.Total {
					t.Fatalf("request %d: exact total %d, want %d", i, got.Total, want.Total)
				}
				if !got.TotalExact && got.Total > want.Total {
					t.Fatalf("request %d: lower-bound total %d above true %d", i, got.Total, want.Total)
				}
			}
		})
	}
}

// TestQueryHandlerHardening pins the hostile-input behavior of /query:
// structural and range errors 400, fan-out and k caps 400, oversized
// bodies 413, and a live dynamic index 409.
func TestQueryHandlerHardening(t *testing.T) {
	tc := undirectedCase(t, 30, 60, 31)
	_, ts := newTestServer(t, tc.oracle, Config{MaxBatch: 8, MaxBody: 512})
	near := func(s int32, d int64) *pll.CompositeClause {
		return &pll.CompositeClause{Near: &pll.NearClause{Source: s, MaxDist: d}}
	}

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Structural violations.
	postJSON(t, ts.URL+"/query", &pll.CompositeRequest{}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/query", &pll.CompositeRequest{
		Where: &pll.CompositeClause{Not: near(0, 2)},
	}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/query", &pll.CompositeRequest{
		Where: near(0, 2), Rank: &pll.CompositeRank{By: "median"},
	}, http.StatusBadRequest, nil)

	// Vertices beyond the served index.
	postJSON(t, ts.URL+"/query", &pll.CompositeRequest{Where: near(99, 2)}, http.StatusBadRequest, nil)

	// Fan-out cap: nine leaves exceed MaxBatch=8.
	var kids []*pll.CompositeClause
	for i := int32(0); i < 9; i++ {
		kids = append(kids, near(i, 2))
	}
	postJSON(t, ts.URL+"/query", &pll.CompositeRequest{
		Where: &pll.CompositeClause{Or: kids},
	}, http.StatusBadRequest, nil)

	// k cap.
	postJSON(t, ts.URL+"/query", &pll.CompositeRequest{Where: near(0, 2), K: 9}, http.StatusBadRequest, nil)

	// Oversized body.
	huge := append(append([]byte(`{"where":{"in":[0`), bytes.Repeat([]byte(",1"), 400)...), []byte("]}}")...)
	resp, err = http.Post(ts.URL+"/query", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// A live dynamic index cannot answer composite queries.
	dyn := dynamicCase(t, 30, 60, 31)
	_, dts := newTestServer(t, dyn.oracle, Config{})
	postJSON(t, dts.URL+"/query", &pll.CompositeRequest{Where: near(0, 2)}, http.StatusConflict, nil)
}

// TestRangeTotals pins the /range total contract: exact when the scan
// completed, a lower bound (limit+1) when truncated.
func TestRangeTotals(t *testing.T) {
	ix, err := pll.Build(lineGraph(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, ix, Config{})
	var rr struct {
		Count      int  `json:"count"`
		Total      int  `json:"total"`
		TotalExact bool `json:"total_exact"`
		Truncated  bool `json:"truncated"`
	}
	// Untruncated: 0's 4-neighborhood on the line is {1,2,3,4}.
	getJSON(t, ts.URL+"/range?s=0&r=4", http.StatusOK, &rr)
	if rr.Count != 4 || rr.Total != 4 || !rr.TotalExact || rr.Truncated {
		t.Fatalf("untruncated range: %+v", rr)
	}
	// Truncated at limit=2: total is the lower bound limit+1.
	getJSON(t, ts.URL+"/range?s=0&r=8&limit=2", http.StatusOK, &rr)
	if rr.Count != 2 || rr.Total != 3 || rr.TotalExact || !rr.Truncated {
		t.Fatalf("truncated range: %+v", rr)
	}
}

// TestResultCacheEndpoints checks that /knn and /query answers are
// cached per endpoint, that /stats surfaces the split tallies, and
// that a reload purges everything.
func TestResultCacheEndpoints(t *testing.T) {
	dir := t.TempDir()
	path := writeIndexFile(t, dir, "v1.pllbox", 10)
	o, err := pll.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, o, Config{CacheSize: 64, IndexPath: path})

	var first, second struct {
		Neighbors []pll.Neighbor `json:"neighbors"`
	}
	getJSON(t, ts.URL+"/knn?s=0&k=3", http.StatusOK, &first)
	getJSON(t, ts.URL+"/knn?s=0&k=3", http.StatusOK, &second) // hit
	if len(first.Neighbors) != 3 || !neighborsMatch(first.Neighbors, second.Neighbors) {
		t.Fatalf("cached /knn diverges: %v vs %v", first.Neighbors, second.Neighbors)
	}

	req := func() *pll.CompositeRequest {
		return &pll.CompositeRequest{
			Where: &pll.CompositeClause{Near: &pll.NearClause{Source: 0, MaxDist: 3}},
		}
	}
	var q1, q2 queryResponse
	postJSON(t, ts.URL+"/query", req(), http.StatusOK, &q1)
	postJSON(t, ts.URL+"/query", req(), http.StatusOK, &q2) // hit
	if q1.Count == 0 || !matchesEqual(q1.Matches, q2.Matches) {
		t.Fatalf("cached /query diverges: %+v vs %+v", q1, q2)
	}

	var st struct {
		Cache struct {
			Results struct {
				Entries int `json:"entries"`
				KNN     struct {
					Hits   int64 `json:"hits"`
					Misses int64 `json:"misses"`
				} `json:"knn"`
				Query struct {
					Hits   int64 `json:"hits"`
					Misses int64 `json:"misses"`
				} `json:"query"`
			} `json:"results"`
		} `json:"cache"`
	}
	getJSON(t, ts.URL+"/stats", http.StatusOK, &st)
	res := st.Cache.Results
	if res.Entries != 2 || res.KNN.Hits != 1 || res.KNN.Misses != 1 || res.Query.Hits != 1 || res.Query.Misses != 1 {
		t.Fatalf("stats.cache.results = %+v", res)
	}

	// A reload must drop every cached search answer.
	if _, err := s.Reload(path); err != nil {
		t.Fatal(err)
	}
	if got := s.results.len(); got != 0 {
		t.Fatalf("results cache holds %d entries after reload", got)
	}
}
